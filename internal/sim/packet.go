package sim

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/harmless-sdn/harmless/internal/controlplane"
	"github.com/harmless-sdn/harmless/internal/fabric"
	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/softswitch"
)

// Packet-mode guards: every switch is a real softswitch.Switch and
// every packet a real frame on a virtual netem link, so the scale knob
// is fidelity, not fleet size. Flow mode covers the fleet; packet mode
// cross-checks its bookkeeping on small fabrics.
const (
	maxPacketSwitches = 64
	maxPacketHosts    = 256
	maxPacketArrivals = 250000
)

// PacketSim executes a scenario at packet granularity: the generated
// topology is instantiated as softswitch datapaths joined by
// virtual-time netem links (LinkConfig.Scheduler = the engine clock),
// per-destination IPv4 routes are installed as real flow entries along
// the h=0 ECMP paths, and every workload arrival injects real frames
// at the source host port. The whole fabric advances on one event
// loop, so counters are exact and a run is reproducible.
type PacketSim struct {
	eng      *Engine
	topo     *fabric.Topology
	sc       Scenario
	wl       fabric.Workload
	switches map[int]*softswitch.Switch
	hostPort map[int]*netem.Port
	hostRx   map[int]uint64
	links    []*netem.Link
	frames   map[uint64][]byte // (src<<32|dst) -> frame template

	// ctrlFailover rig (PR 5 machinery): the first switch is managed
	// by a master/slave controller pair instead of direct table pokes.
	managedSw *softswitch.Switch
	managedID int
	agent     *softswitch.Agent
	master    *controlplane.Controller
	slave     *controlplane.Controller
	gen       uint64

	res       Result
	eventHash uint64
}

// NewPacketSim builds the packet-mode simulator. Scenarios with
// link/switch faults are rejected — packet mode models the fabric at
// full fidelity or not at all, and remodeling netem link teardown
// mid-run is flow mode's job.
func NewPacketSim(sc Scenario) (*PacketSim, error) {
	sc = sc.withDefaults()
	topo, err := sc.Topology.Build()
	if err != nil {
		return nil, err
	}
	if n := len(topo.SwitchIDs); n > maxPacketSwitches {
		return nil, fmt.Errorf("sim: packet mode caps at %d switches (scenario has %d); use flow mode", maxPacketSwitches, n)
	}
	if n := len(topo.HostIDs); n > maxPacketHosts {
		return nil, fmt.Errorf("sim: packet mode caps at %d hosts (scenario has %d); use flow mode", maxPacketHosts, n)
	}
	if n := sc.Workload.TotalArrivals(); n > maxPacketArrivals {
		return nil, fmt.Errorf("sim: packet mode caps at %d arrivals (scenario has %d); use flow mode", maxPacketArrivals, n)
	}
	needFailover := false
	for _, f := range sc.Faults {
		if f.Kind != FaultCtrlFailover {
			return nil, fmt.Errorf("sim: packet mode supports only %s faults (got %s); use flow mode for link/switch faults", FaultCtrlFailover, f.Kind)
		}
		needFailover = true
	}
	wl, err := sc.Workload.Build(len(topo.HostIDs), sc.Seed)
	if err != nil {
		return nil, err
	}
	s := &PacketSim{
		eng:       NewEngine(sc.Seed),
		topo:      topo,
		sc:        sc,
		wl:        wl,
		switches:  make(map[int]*softswitch.Switch, len(topo.SwitchIDs)),
		hostPort:  make(map[int]*netem.Port, len(topo.HostIDs)),
		hostRx:    make(map[int]uint64, len(topo.HostIDs)),
		frames:    make(map[uint64][]byte),
		managedID: -1,
		eventHash: fnvOffset,
	}
	s.res = Result{
		Scenario: sc.Name,
		Seed:     sc.Seed,
		Mode:     "packet",
		Switches: len(topo.SwitchIDs),
		Hosts:    len(topo.HostIDs),
		Links:    len(topo.Links),
	}
	if err := s.build(needFailover); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// build instantiates switches, links and flow tables.
func (s *PacketSim) build(needFailover bool) error {
	clock := s.eng.Clock()
	for i, id := range s.topo.SwitchIDs {
		s.switches[id] = softswitch.New(s.topo.Nodes[id].Name, uint64(i+1),
			softswitch.WithClock(clock), softswitch.WithNumTables(1))
	}
	// Wire every topology link as a virtual-time netem link. Topology
	// port index i becomes OpenFlow port i+1 (0 is invalid).
	for _, tl := range s.topo.Links {
		l := netem.NewLink(netem.LinkConfig{
			Async:     true,
			Scheduler: clock,
			Latency:   s.sc.LinkLatency.Duration,
			Name:      fmt.Sprintf("%s--%s", s.topo.Nodes[tl.A].Name, s.topo.Nodes[tl.B].Name),
		})
		s.links = append(s.links, l)
		s.attach(tl.A, tl.APort, l.A())
		s.attach(tl.B, tl.BPort, l.B())
	}
	if needFailover {
		if err := s.setupFailoverRig(); err != nil {
			return err
		}
	}
	return s.installRoutes()
}

// attach binds one link end to its node: switches get a datapath port,
// hosts a counting receiver.
func (s *PacketSim) attach(node, topoPort int, p *netem.Port) {
	if sw, ok := s.switches[node]; ok {
		sw.AttachNetPort(uint32(topoPort+1), p.Name(), p)
		return
	}
	s.hostPort[node] = p
	id := node
	p.SetReceiver(func(frame []byte) { s.hostRx[id]++ })
}

// hostIP derives a stable address from the host's index in HostIDs.
func hostIP(idx int) pkt.IPv4 {
	return pkt.IPv4{10, byte(idx >> 16), byte(idx >> 8), byte(idx)}
}

// installRoutes programs every switch with one exact-match IPv4 route
// per destination host along the h=0 ECMP path. The failover-managed
// switch is programmed through its master controller channel — real
// FlowMods over the wire — and everything is barriered before the
// first arrival fires.
func (s *PacketSim) installRoutes() error {
	for hi, dst := range s.topo.HostIDs {
		ip := hostIP(hi)
		for _, swID := range s.topo.SwitchIDs {
			next, ok := s.topo.NextHop(swID, dst, 0)
			if !ok {
				return fmt.Errorf("sim: no next hop from %s to %s",
					s.topo.Nodes[swID].Name, s.topo.Nodes[dst].Name)
			}
			port := s.topo.PortTo(swID, next)
			fm := &openflow.FlowMod{
				Command:  openflow.FlowAdd,
				Priority: 100,
				Match:    *new(openflow.Match).WithEthType(pkt.EtherTypeIPv4).WithIPv4Dst(ip),
				Instructions: []openflow.Instruction{
					&openflow.InstrApplyActions{Actions: []openflow.Action{
						&openflow.ActionOutput{Port: uint32(port + 1), MaxLen: 0xffff},
					}},
				},
			}
			if swID == s.managedID {
				if err := s.master.FlowMod(fm); err != nil {
					return fmt.Errorf("sim: flow-mod via master: %w", err)
				}
				continue
			}
			if _, err := s.switches[swID].ApplyFlowMod(fm); err != nil {
				return fmt.Errorf("sim: flow-mod on %s: %w", s.topo.Nodes[swID].Name, err)
			}
		}
	}
	if s.master != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.master.AwaitBarrier(ctx); err != nil {
			return fmt.Errorf("sim: barrier after route install: %w", err)
		}
	}
	return nil
}

// setupFailoverRig puts the first switch under a master/slave
// controller pair over the real PR 5 control plane (keepalive off —
// liveness here is the failover test's job, proven separately on
// virtual time in the controlplane package tests).
func (s *PacketSim) setupFailoverRig() error {
	s.managedID = s.topo.SwitchIDs[0]
	s.managedSw = s.switches[s.managedID]
	cfg := controlplane.Config{EchoInterval: -1}
	s.agent = s.managedSw.NewAgent(cfg, 0)

	connect := func() (*controlplane.Controller, error) {
		a, b := net.Pipe()
		s.agent.Attach(a)
		return controlplane.Connect(b, cfg, controlplane.Events{})
	}
	var err error
	if s.master, err = connect(); err != nil {
		return fmt.Errorf("sim: master connect: %w", err)
	}
	if s.slave, err = connect(); err != nil {
		return fmt.Errorf("sim: slave connect: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.gen = 1
	if _, _, err := s.master.RequestRole(ctx, openflow.RoleMaster, s.gen); err != nil {
		return fmt.Errorf("sim: master role: %w", err)
	}
	if _, _, err := s.slave.RequestRole(ctx, openflow.RoleSlave, s.gen); err != nil {
		return fmt.Errorf("sim: slave role: %w", err)
	}
	return nil
}

// failover kills the master and promotes the slave — PR 5's
// generation-bumped role takeover — then proves the new master owns
// the datapath with a barriered no-op FlowMod. Runs inside the fault's
// virtual-time callback; the datapath is quiescent while it blocks.
func (s *PacketSim) failover(idx int) {
	now := s.eng.Elapsed()
	s.res.Convergence[idx].At = Duration{now}
	s.master.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.gen++
	if _, _, err := s.slave.RequestRole(ctx, openflow.RoleMaster, s.gen); err != nil {
		s.res.Failures = append(s.res.Failures, fmt.Sprintf("failover promote: %v", err))
		return
	}
	if err := s.slave.AwaitBarrier(ctx); err != nil {
		s.res.Failures = append(s.res.Failures, fmt.Sprintf("failover barrier: %v", err))
		return
	}
	s.master, s.slave = s.slave, nil
	s.eventHash = mix64(s.eventHash, uint64(now))
	s.eventHash = mix64(s.eventHash, faultCode(FaultCtrlFailover))
}

// frameFor builds (once) the wire frame for a src->dst host pair.
func (s *PacketSim) frameFor(a fabric.FlowArrival) []byte {
	key := uint64(a.Src)<<32 | uint64(uint32(a.Dst))
	if f, ok := s.frames[key]; ok {
		return f
	}
	size := a.FrameSize
	minLen := pkt.EthernetHeaderLen + pkt.IPv4MinHeaderLen + pkt.UDPHeaderLen
	if size < minLen {
		size = minLen
	}
	payload := make(pkt.Payload, size-minLen)
	frame, err := pkt.SerializeLayers(pkt.NewSerializeBuffer(),
		&pkt.Ethernet{
			Src:       pkt.MAC{0x02, 0xff, 0, 0, byte(a.Src >> 8), byte(a.Src)},
			Dst:       pkt.MAC{0x02, 0xfe, 0, 0, byte(a.Dst >> 8), byte(a.Dst)},
			EtherType: pkt.EtherTypeIPv4,
		},
		&pkt.IPv4Header{
			TTL: 64, Protocol: pkt.IPProtoUDP,
			Src: hostIP(a.Src), Dst: hostIP(a.Dst),
		},
		&pkt.UDP{SrcPort: 4096, DstPort: 4097},
		&payload,
	)
	if err != nil {
		panic(fmt.Sprintf("sim: frame build: %v", err))
	}
	cp := make([]byte, len(frame))
	copy(cp, frame)
	s.frames[key] = cp
	return cp
}

// Run executes the scenario and returns its verdict.
func (s *PacketSim) Run(wallBudget time.Duration) (Result, error) {
	defer s.Close()
	wallStart := time.Now() //harmless:allow-wallclock wall budget and run-report timing, not simulation time
	for i, f := range s.sc.Faults {
		i := i
		s.res.Convergence = append(s.res.Convergence, ConvergenceRecord{Kind: f.Kind, Node: f.Node, At: f.At})
		s.eng.At(f.At.Duration, func() { s.failover(i) })
	}
	s.scheduleNextArrival()
	st, err := s.eng.Run(RunOpts{Until: s.sc.Horizon.Duration, WallBudget: wallBudget})
	if err != nil {
		return Result{}, err
	}
	s.finish(st, wallStart)
	return s.res, nil
}

// scheduleNextArrival mirrors FleetSim's pull model.
func (s *PacketSim) scheduleNextArrival() {
	a, ok := s.wl.Next()
	if !ok {
		return
	}
	s.eng.At(a.At, func() {
		s.inject(a)
		s.scheduleNextArrival()
	})
}

// inject transmits one arrival's packets at the source host port.
func (s *PacketSim) inject(a fabric.FlowArrival) {
	src := s.topo.HostIDs[a.Src]
	frame := s.frameFor(a)
	port := s.hostPort[src]
	for i := 0; i < a.Packets; i++ {
		_ = port.Send(frame) // tail-drops are counted on the port
	}
	s.res.OfferedFlows++
	s.res.OfferedPackets += uint64(a.Packets)
	s.eventHash = mix64(s.eventHash, uint64(s.eng.Elapsed()))
	s.eventHash = mix64(s.eventHash, uint64(a.FlowID))
	s.eventHash = mix64(s.eventHash, uint64(a.Src)<<32|uint64(uint32(a.Dst)))
}

// finish tallies real datapath counters into the verdict.
func (s *PacketSim) finish(st RunStats, wallStart time.Time) {
	r := &s.res
	r.Events = st.Events
	r.VirtualEnd = Duration{st.VirtualEnd}

	var rx, linkDrops, swDrops uint64
	for _, id := range s.topo.HostIDs {
		rx += s.hostRx[id]
	}
	for _, l := range s.links {
		linkDrops += l.A().Counters().TxDropped.Load() + l.B().Counters().TxDropped.Load()
	}
	for _, sw := range s.switches {
		swDrops += sw.Drops()
	}
	r.DeliveredPackets = rx
	r.LostPackets = linkDrops + swDrops
	r.DeliveredFlows = r.OfferedFlows // flow identity is not tracked per packet
	if r.OfferedPackets > 0 {
		r.LossRate = float64(r.LostPackets) / float64(r.OfferedPackets)
	}

	r.CounterExact = true
	fail := func(format string, args ...any) {
		r.CounterExact = false
		r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
	}
	if r.OfferedPackets != r.DeliveredPackets+r.LostPackets {
		fail("packet conservation: offered %d != delivered %d + dropped %d",
			r.OfferedPackets, r.DeliveredPackets, r.LostPackets)
	}
	if len(s.sc.Faults) > 0 && r.LostPackets != 0 {
		fail("controller failover lost %d packets, want 0 (PR 5 zero-loss property)", r.LostPackets)
	}
	if len(r.Failures) > 0 {
		r.CounterExact = false
	}
	r.Pass = r.CounterExact
	r.EventHash = fmt.Sprintf("%016x", s.eventHash)
	r.WallMS = time.Since(wallStart).Milliseconds() //harmless:allow-wallclock run-report wall duration
	r.Digest = r.digest()
}

// HostRx exposes one host's received-packet count for cross-checks.
func (s *PacketSim) HostRx(hostIdx int) uint64 { return s.hostRx[s.topo.HostIDs[hostIdx]] }

// Switch exposes a datapath by node name for counter cross-checks.
func (s *PacketSim) Switch(name string) *softswitch.Switch {
	id, ok := s.topo.NodeByName(name)
	if !ok {
		return nil
	}
	return s.switches[id]
}

// Close tears down links and the control-plane rig; the returned
// error aggregates controller transport close failures.
func (s *PacketSim) Close() error {
	var errs []error
	if s.master != nil {
		errs = append(errs, s.master.Close())
	}
	if s.slave != nil {
		errs = append(errs, s.slave.Close())
	}
	if s.agent != nil {
		s.agent.Stop()
	}
	for _, l := range s.links {
		l.Close()
	}
	return errors.Join(errs...)
}
