package pkt

import (
	"fmt"
	"strings"
)

// Packet is a fully decoded frame: an ordered stack of layers plus the
// raw bytes it was decoded from. Decoding is eager; a failed layer
// terminates the stack and is reported by Err.
type Packet struct {
	data   []byte
	layers []Layer
	err    error
}

// Decode parses data starting at the given first layer type. The
// returned Packet always contains the layers decoded before any error.
// data is NOT copied; the caller must not mutate it while the Packet is
// in use (the dataplane hands frames over by ownership transfer, so
// this is the gopacket NoCopy model).
func Decode(data []byte, first LayerType) *Packet {
	p := &Packet{data: data}
	rest := data
	next := first
	for next != LayerTypeNone && next != LayerTypePayload {
		l := newLayer(next)
		if l == nil {
			break
		}
		if err := l.DecodeFromBytes(rest); err != nil {
			p.err = err
			return p
		}
		p.layers = append(p.layers, l)
		rest = l.LayerPayload()
		next = l.NextLayerType()
		if len(rest) == 0 {
			return p
		}
	}
	if len(rest) > 0 {
		pl := Payload(rest)
		p.layers = append(p.layers, &pl)
	}
	return p
}

// DecodeEthernet decodes a frame starting from the Ethernet header.
func DecodeEthernet(data []byte) *Packet { return Decode(data, LayerTypeEthernet) }

func newLayer(t LayerType) Layer {
	switch t {
	case LayerTypeEthernet:
		return &Ethernet{}
	case LayerTypeDot1Q:
		return &Dot1Q{}
	case LayerTypeARP:
		return &ARP{}
	case LayerTypeIPv4:
		return &IPv4Header{}
	case LayerTypeIPv6:
		return &IPv6Header{}
	case LayerTypeTCP:
		return &TCP{}
	case LayerTypeUDP:
		return &UDP{}
	case LayerTypeICMPv4:
		return &ICMPv4{}
	case LayerTypeDNS:
		return &DNS{}
	}
	return nil
}

// Data returns the raw bytes the packet was decoded from.
func (p *Packet) Data() []byte { return p.data }

// Err returns the decode error encountered, if any. Layers decoded
// before the error are still available.
func (p *Packet) Err() error { return p.err }

// Layers returns the decoded layer stack in wire order.
func (p *Packet) Layers() []Layer { return p.layers }

// Layer returns the first layer of the given type, or nil.
func (p *Packet) Layer(t LayerType) Layer {
	for _, l := range p.layers {
		if l.LayerType() == t {
			return l
		}
	}
	return nil
}

// Ethernet returns the Ethernet layer, or nil.
func (p *Packet) Ethernet() *Ethernet {
	if l := p.Layer(LayerTypeEthernet); l != nil {
		return l.(*Ethernet)
	}
	return nil
}

// VLAN returns the outermost 802.1Q tag, or nil if untagged.
func (p *Packet) VLAN() *Dot1Q {
	if l := p.Layer(LayerTypeDot1Q); l != nil {
		return l.(*Dot1Q)
	}
	return nil
}

// IPv4 returns the IPv4 layer, or nil.
func (p *Packet) IPv4() *IPv4Header {
	if l := p.Layer(LayerTypeIPv4); l != nil {
		return l.(*IPv4Header)
	}
	return nil
}

// ARP returns the ARP layer, or nil.
func (p *Packet) ARP() *ARP {
	if l := p.Layer(LayerTypeARP); l != nil {
		return l.(*ARP)
	}
	return nil
}

// TCP returns the TCP layer, or nil.
func (p *Packet) TCP() *TCP {
	if l := p.Layer(LayerTypeTCP); l != nil {
		return l.(*TCP)
	}
	return nil
}

// UDP returns the UDP layer, or nil.
func (p *Packet) UDP() *UDP {
	if l := p.Layer(LayerTypeUDP); l != nil {
		return l.(*UDP)
	}
	return nil
}

// ICMPv4 returns the ICMPv4 layer, or nil.
func (p *Packet) ICMPv4() *ICMPv4 {
	if l := p.Layer(LayerTypeICMPv4); l != nil {
		return l.(*ICMPv4)
	}
	return nil
}

// DNS returns the DNS layer, or nil.
func (p *Packet) DNS() *DNS {
	if l := p.Layer(LayerTypeDNS); l != nil {
		return l.(*DNS)
	}
	return nil
}

// ApplicationPayload returns the innermost opaque payload bytes, or nil.
func (p *Packet) ApplicationPayload() []byte {
	if len(p.layers) == 0 {
		return nil
	}
	last := p.layers[len(p.layers)-1]
	if pl, ok := last.(*Payload); ok {
		return []byte(*pl)
	}
	return nil
}

// String renders a one-line-per-layer summary, handy in test failures
// and the capture tooling.
func (p *Packet) String() string {
	var sb strings.Builder
	for i, l := range p.layers {
		if i > 0 {
			sb.WriteString(" / ")
		}
		if s, ok := l.(fmt.Stringer); ok {
			sb.WriteString(s.String())
		} else {
			sb.WriteString(l.LayerType().String())
		}
	}
	if p.err != nil {
		fmt.Fprintf(&sb, " [decode error: %v]", p.err)
	}
	return sb.String()
}
