package openflow

import (
	"encoding/binary"
	"fmt"
)

// Controller roles (ofp_controller_role). A connection starts EQUAL;
// ROLE_REQUEST moves it between MASTER, SLAVE and EQUAL, with the
// switch demoting the previous master when a new one takes over.
const (
	RoleNoChange uint32 = 0
	RoleEqual    uint32 = 1
	RoleMaster   uint32 = 2
	RoleSlave    uint32 = 3
)

// RoleName renders a role constant for logs and errors.
func RoleName(role uint32) string {
	switch role {
	case RoleNoChange:
		return "nochange"
	case RoleEqual:
		return "equal"
	case RoleMaster:
		return "master"
	case RoleSlave:
		return "slave"
	}
	return fmt.Sprintf("role(%d)", role)
}

// Role-request failed codes (ofp_role_request_failed_code).
const (
	RoleRequestFailedStale   uint16 = 0
	RoleRequestFailedUnsup   uint16 = 1
	RoleRequestFailedBadRole uint16 = 2
)

// Bad-request code sent to a SLAVE controller attempting a
// state-changing message (OFPBRC_IS_SLAVE).
const BadRequestIsSlave uint16 = 10

// roleBodyLen is the ROLE_REQUEST/ROLE_REPLY body: role(4) + pad(4) +
// generation_id(8).
const roleBodyLen = 16

func marshalRoleBody(typ uint8, xid, role uint32, gen uint64) []byte {
	buf := make([]byte, HeaderLen+roleBodyLen)
	binary.BigEndian.PutUint32(buf[HeaderLen:], role)
	binary.BigEndian.PutUint64(buf[HeaderLen+8:], gen)
	putHeader(buf, typ, xid)
	return buf
}

func unmarshalRoleBody(body []byte) (role uint32, gen uint64, err error) {
	if len(body) < roleBodyLen {
		return 0, 0, fmt.Errorf("openflow: truncated role message")
	}
	return binary.BigEndian.Uint32(body[0:4]), binary.BigEndian.Uint64(body[8:16]), nil
}

// RoleRequest asks the switch to change (or report, with RoleNoChange)
// this connection's controller role. GenerationID is a monotonically
// increasing master election epoch: the switch rejects MASTER/SLAVE
// requests whose generation id is behind the highest it has seen.
type RoleRequest struct {
	xid
	Role         uint32
	GenerationID uint64
}

// MsgType implements Message.
func (*RoleRequest) MsgType() uint8 { return TypeRoleRequest }

// Marshal implements Message.
func (m *RoleRequest) Marshal() ([]byte, error) {
	return marshalRoleBody(TypeRoleRequest, m.Xid, m.Role, m.GenerationID), nil
}

func (m *RoleRequest) unmarshalBody(body []byte) (err error) {
	m.Role, m.GenerationID, err = unmarshalRoleBody(body)
	return err
}

// RoleReply reports the connection's role after a RoleRequest.
type RoleReply struct {
	xid
	Role         uint32
	GenerationID uint64
}

// MsgType implements Message.
func (*RoleReply) MsgType() uint8 { return TypeRoleReply }

// Marshal implements Message.
func (m *RoleReply) Marshal() ([]byte, error) {
	return marshalRoleBody(TypeRoleReply, m.Xid, m.Role, m.GenerationID), nil
}

func (m *RoleReply) unmarshalBody(body []byte) (err error) {
	m.Role, m.GenerationID, err = unmarshalRoleBody(body)
	return err
}

// AsyncConfig is the per-connection asynchronous-message filter
// (ofp_async_config): one reason bitmask per async message type, with
// slot 0 applying while the controller is MASTER or EQUAL and slot 1
// while it is SLAVE. Bit n of a mask enables delivery for reason n.
type AsyncConfig struct {
	PacketInMask    [2]uint32
	PortStatusMask  [2]uint32
	FlowRemovedMask [2]uint32
}

// DefaultAsyncConfig returns the OpenFlow 1.3 defaults: masters and
// equals receive every async message; slaves receive only port-status.
func DefaultAsyncConfig() AsyncConfig {
	all := uint32(1)<<0 | 1<<1 | 1<<2 | 1<<3
	return AsyncConfig{
		PacketInMask:    [2]uint32{all, 0},
		PortStatusMask:  [2]uint32{all, all},
		FlowRemovedMask: [2]uint32{all, 0},
	}
}

// Wants reports whether a connection holding role should receive the
// async message msgType with the given reason code under this config.
func (c *AsyncConfig) Wants(role uint32, msgType uint8, reason uint8) bool {
	slot := 0
	if role == RoleSlave {
		slot = 1
	}
	var mask uint32
	switch msgType {
	case TypePacketIn:
		mask = c.PacketInMask[slot]
	case TypePortStatus:
		mask = c.PortStatusMask[slot]
	case TypeFlowRemoved:
		mask = c.FlowRemovedMask[slot]
	default:
		return true // not an async type; never filtered
	}
	return mask&(1<<reason) != 0
}

// asyncBodyLen is three [2]uint32 mask pairs.
const asyncBodyLen = 24

func marshalAsyncBody(typ uint8, xid uint32, c AsyncConfig) []byte {
	buf := make([]byte, HeaderLen+asyncBodyLen)
	binary.BigEndian.PutUint32(buf[HeaderLen:], c.PacketInMask[0])
	binary.BigEndian.PutUint32(buf[HeaderLen+4:], c.PacketInMask[1])
	binary.BigEndian.PutUint32(buf[HeaderLen+8:], c.PortStatusMask[0])
	binary.BigEndian.PutUint32(buf[HeaderLen+12:], c.PortStatusMask[1])
	binary.BigEndian.PutUint32(buf[HeaderLen+16:], c.FlowRemovedMask[0])
	binary.BigEndian.PutUint32(buf[HeaderLen+20:], c.FlowRemovedMask[1])
	putHeader(buf, typ, xid)
	return buf
}

func unmarshalAsyncBody(body []byte) (AsyncConfig, error) {
	var c AsyncConfig
	if len(body) < asyncBodyLen {
		return c, fmt.Errorf("openflow: truncated async config")
	}
	c.PacketInMask[0] = binary.BigEndian.Uint32(body[0:4])
	c.PacketInMask[1] = binary.BigEndian.Uint32(body[4:8])
	c.PortStatusMask[0] = binary.BigEndian.Uint32(body[8:12])
	c.PortStatusMask[1] = binary.BigEndian.Uint32(body[12:16])
	c.FlowRemovedMask[0] = binary.BigEndian.Uint32(body[16:20])
	c.FlowRemovedMask[1] = binary.BigEndian.Uint32(body[20:24])
	return c, nil
}

// SetAsync replaces the connection's asynchronous-message filter.
type SetAsync struct {
	xid
	AsyncConfig
}

// MsgType implements Message.
func (*SetAsync) MsgType() uint8 { return TypeSetAsync }

// Marshal implements Message.
func (m *SetAsync) Marshal() ([]byte, error) {
	return marshalAsyncBody(TypeSetAsync, m.Xid, m.AsyncConfig), nil
}

func (m *SetAsync) unmarshalBody(body []byte) (err error) {
	m.AsyncConfig, err = unmarshalAsyncBody(body)
	return err
}

// GetAsyncRequest asks for the connection's current async filter.
type GetAsyncRequest struct{ xid }

// MsgType implements Message.
func (*GetAsyncRequest) MsgType() uint8 { return TypeGetAsyncRequest }

// Marshal implements Message.
func (m *GetAsyncRequest) Marshal() ([]byte, error) {
	buf := make([]byte, HeaderLen)
	putHeader(buf, TypeGetAsyncRequest, m.Xid)
	return buf, nil
}

func (m *GetAsyncRequest) unmarshalBody(body []byte) error { return nil }

// GetAsyncReply reports the connection's async filter.
type GetAsyncReply struct {
	xid
	AsyncConfig
}

// MsgType implements Message.
func (*GetAsyncReply) MsgType() uint8 { return TypeGetAsyncReply }

// Marshal implements Message.
func (m *GetAsyncReply) Marshal() ([]byte, error) {
	return marshalAsyncBody(TypeGetAsyncReply, m.Xid, m.AsyncConfig), nil
}

func (m *GetAsyncReply) unmarshalBody(body []byte) (err error) {
	m.AsyncConfig, err = unmarshalAsyncBody(body)
	return err
}
