package openflow

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Conn frames OpenFlow messages over a byte stream and assigns
// transaction ids. Writes are queued to a dedicated writer goroutine,
// so Send never blocks on transport backpressure (both OpenFlow peers
// send HELLO before reading; over an unbuffered transport like
// net.Pipe synchronous writes would deadlock). Reads and writes may
// proceed concurrently.
type Conn struct {
	rw          io.ReadWriteCloser
	out         chan []byte
	done        chan struct{}
	writerDone  chan struct{}
	closeOnce   sync.Once
	closeErr    error       // transport Close result; read after writerDone
	forceClosed atomic.Bool // Close abandoned a stuck flush and closed rw itself
	writeErr    atomic.Pointer[error]
	nextXID     atomic.Uint32
}

// outboundQueueLen bounds the number of queued unsent messages; a full
// queue makes Send block (flow control towards a dead peer).
const outboundQueueLen = 1024

// closeFlushTimeout bounds how long Close waits for the writer to
// flush queued frames towards a peer that has stopped reading.
const closeFlushTimeout = time.Second

// NewConn wraps a transport (TCP connection or net.Pipe end) and
// starts its writer.
func NewConn(rw io.ReadWriteCloser) *Conn {
	c := &Conn{
		rw:         rw,
		out:        make(chan []byte, outboundQueueLen),
		done:       make(chan struct{}),
		writerDone: make(chan struct{}),
	}
	c.nextXID.Store(1)
	go c.writer()
	return c
}

func (c *Conn) writer() {
	defer close(c.writerDone)
	for {
		select {
		case <-c.done:
			// Flush frames queued before Close so a Send-then-Close
			// sequence still delivers (Close force-closes the transport
			// if this stalls on a peer that stopped reading).
			for {
				select {
				case frame := <-c.out:
					if c.writeErr.Load() != nil {
						continue
					}
					if _, err := c.rw.Write(frame); err != nil {
						werr := fmt.Errorf("openflow: write: %w", err)
						c.writeErr.Store(&werr)
					}
				default:
					c.recordClose()
					return
				}
			}
		case frame := <-c.out:
			if _, err := c.rw.Write(frame); err != nil {
				werr := fmt.Errorf("openflow: write: %w", err)
				c.writeErr.Store(&werr)
				c.closeOnce.Do(func() { close(c.done) })
				c.recordClose()
				return
			}
		}
	}
}

// recordClose closes the transport from the writer, keeping the result
// for Close() — unless Close() already force-closed it, in which case
// this second Close's inevitable "already closed" error is noise.
func (c *Conn) recordClose() {
	err := c.rw.Close()
	if !c.forceClosed.Load() {
		c.closeErr = err
	}
}

// AllocXID returns a fresh transaction id.
func (c *Conn) AllocXID() uint32 { return c.nextXID.Add(1) }

// Send marshals and queues m for transmission, assigning a transaction
// id if unset. It returns immediately unless the outbound queue is
// full; an error is returned if the connection is closed or a previous
// write failed.
func (c *Conn) Send(m Message) error {
	if err := c.writeErr.Load(); err != nil {
		return *err
	}
	// Checked alone first: once closed, Send must fail deterministically
	// rather than racing the (possibly non-empty) queue in the select.
	select {
	case <-c.done:
		return fmt.Errorf("openflow: connection closed")
	default:
	}
	if m.XID() == 0 {
		m.SetXID(c.AllocXID())
	}
	frame, err := m.Marshal()
	if err != nil {
		return err
	}
	select {
	case <-c.done:
		return fmt.Errorf("openflow: connection closed")
	case c.out <- frame:
		return nil
	}
}

// Recv reads the next message (blocking).
func (c *Conn) Recv() (Message, error) {
	return ReadMessage(c.rw)
}

// Close flushes frames already queued by Send, then tears down the
// transport. Safe to call multiple times and from multiple goroutines.
// If the peer has stopped reading, the flush is abandoned after
// closeFlushTimeout and the transport is closed underneath it.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	select {
	case <-c.writerDone:
	case <-time.After(closeFlushTimeout):
		// The flush is stuck in a blocking Write; closing the transport
		// under it unblocks the writer (net.Conn and net.Pipe both
		// return from Write when closed concurrently). The abandon is
		// deliberate, so the writer's follow-up close error is not
		// reported as a Close failure.
		c.forceClosed.Store(true)
		//harmless:allow-droperr deliberate abandon documented above; the writer's own close outcome lands in closeErr
		_ = c.rw.Close()
		<-c.writerDone
	}
	return c.closeErr
}

// Handshake performs the controller-side HELLO + FEATURES exchange and
// returns the switch's features. Any asynchronous message arriving
// during the handshake is delivered to early (may be nil).
func (c *Conn) Handshake(early func(Message)) (*FeaturesReply, error) {
	if err := c.Send(&Hello{}); err != nil {
		return nil, err
	}
	// Wait for the peer's HELLO.
	for {
		m, err := c.Recv()
		if err != nil {
			return nil, err
		}
		if m.MsgType() == TypeHello {
			break
		}
		if e, ok := m.(*Error); ok {
			return nil, e
		}
		if early != nil {
			early(m)
		}
	}
	if err := c.Send(&FeaturesRequest{}); err != nil {
		return nil, err
	}
	for {
		m, err := c.Recv()
		if err != nil {
			return nil, err
		}
		switch t := m.(type) {
		case *FeaturesReply:
			return t, nil
		case *Error:
			return nil, t
		case *EchoRequest:
			if err := c.Send(&EchoReply{Data: t.Data, xid: xid{Xid: t.Xid}}); err != nil {
				return nil, err
			}
		default:
			if early != nil {
				early(m)
			}
		}
	}
}
