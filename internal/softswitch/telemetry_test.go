package softswitch

// Telemetry integration: the flow-telemetry plane observed from the
// datapath side. The invariant under test throughout: exported
// byte/packet totals exactly equal what the datapath classified
// (cache hits + misses, and the injected byte sum) — no packet is
// double-counted or lost, whatever mix of per-frame, batch, expiry
// and flush paths the traffic took.

import (
	"testing"
	"time"

	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/telemetry"
)

// discardBackend swallows egress so only the datapath is in the loop.
type discardBackend struct{ frames int }

func (d *discardBackend) Transmit([]byte)          { d.frames++ }
func (d *discardBackend) TransmitBatch(f [][]byte) { d.frames += len(f) }

// telSwitch builds a two-port switch (netem port 1 in, discard port 2
// out) forwarding everything from port 1 to port 2, with a telemetry
// table attached.
func telSwitch(t testing.TB, cfg telemetry.Config, opts ...Option) (*Switch, *telemetry.Table) {
	t.Helper()
	tab := telemetry.NewTable(cfg)
	sw := New("tel", 0x7e1, append(opts, WithTelemetry(tab))...)
	l := netem.NewLink(netem.LinkConfig{})
	t.Cleanup(l.Close)
	sw.AttachNetPort(1, "in", l.A())
	l.B().SetReceiver(func([]byte) {})
	sw.AttachPort(2, "out", &discardBackend{})
	m := openflow.Match{}
	m.WithInPort(1)
	addFlow(t, sw, 0, 10, m, apply(out(2)))
	return sw, tab
}

// flush force-exports everything and returns the collector totals.
func flush(tab *telemetry.Table, agg *telemetry.Aggregator, col *telemetry.Collector) (pkts, bytes uint64) {
	tab.FlushAll(time.Now().UnixNano())
	agg.Flush()
	return col.Totals()
}

// TestTelemetryCounterExactness drives a mix of per-frame and batched
// traffic over several flows and checks collector totals against the
// datapath's own counters.
func TestTelemetryCounterExactness(t *testing.T) {
	sw, tab := telSwitch(t, telemetry.Config{Shards: 4})
	col := telemetry.NewCollector()
	agg := telemetry.NewAggregator(tab, col, time.Hour)

	var sentPkts, sentBytes uint64
	frame := func(i int) []byte {
		return udpFrame(t, macA, macB, ipA, ipB, uint16(5000+i%7), 80, "telemetry")
	}
	// Per-frame path.
	for i := 0; i < 40; i++ {
		f := frame(i)
		sentPkts++
		sentBytes += uint64(len(f))
		sw.Receive(1, f)
	}
	// Batch path (the 7 flows are all cached by now).
	for b := 0; b < 5; b++ {
		vec := make([][]byte, 16)
		for i := range vec {
			vec[i] = frame(i)
			sentPkts++
			sentBytes += uint64(len(vec[i]))
		}
		sw.ReceiveBatch(1, vec)
	}

	cs := sw.CacheStats()
	classified := cs.Hits.Load() + cs.Misses.Load()
	if classified != sentPkts {
		t.Fatalf("datapath classified %d, sent %d", classified, sentPkts)
	}
	gotPkts, gotBytes := flush(tab, agg, col)
	if gotPkts != sentPkts || gotBytes != sentBytes {
		t.Fatalf("collector totals %d pkts / %d bytes, datapath %d / %d",
			gotPkts, gotBytes, sentPkts, sentBytes)
	}
	// Flow-level sanity: 7 distinct flows, each with the right egress.
	flows := col.Flows()
	if len(flows) != 7 {
		t.Fatalf("collector flows = %d, want 7", len(flows))
	}
	for _, f := range flows {
		if f.OutPort != 2 {
			t.Fatalf("flow %v out-port = %d, want 2", f.Key, f.OutPort)
		}
		if f.Key.InPort != 1 || f.Key.IPSrc != ipA {
			t.Fatalf("flow key wrong: %+v", f.Key)
		}
	}
}

// TestTelemetryExpiryFlushesFinals is the regression test for the
// expiry bug: when the idle-timeout sweep removes a flow entry, the
// flow's accumulated telemetry deltas must be flushed to the exporter
// right then — not sit in the shard until telemetry's own (much
// longer) idle timer fires — so exported totals match CacheCounters
// exactly at the moment the flow died.
func TestTelemetryExpiryFlushesFinals(t *testing.T) {
	clk := netem.NewManualClock()
	// Telemetry timers deliberately enormous: the ONLY way these
	// records can reach the exporter inside this test is the expiry
	// flush under test.
	sw, tab := telSwitch(t, telemetry.Config{
		ActiveTimeout: time.Hour, IdleTimeout: time.Hour, SweepInterval: time.Hour,
	}, WithClock(clk))
	col := telemetry.NewCollector()
	agg := telemetry.NewAggregator(tab, col, time.Hour)

	// The expiring entry covers only the udp/80 conversation; the
	// udp/81 bystander flow rides the permanent catch-all.
	m := openflow.Match{}
	m.WithInPort(1).WithEthType(pkt.EtherTypeIPv4).WithIPProto(pkt.IPProtoUDP).WithUDPDst(80)
	_, err := sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowAdd, Priority: 20,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
		Match: m, IdleTimeout: 1,
		Instructions: []openflow.Instruction{apply(out(2))},
	})
	if err != nil {
		t.Fatal(err)
	}

	var sentPkts, sentBytes uint64
	for i := 0; i < 10; i++ {
		f := udpFrame(t, macA, macB, ipA, ipB, 5000, 80, "x")
		sentPkts++
		sentBytes += uint64(len(f))
		sw.Receive(1, f)
	}
	var byPkts, byBytes uint64
	for i := 0; i < 4; i++ {
		f := udpFrame(t, macA, macB, ipA, ipB, 5000, 81, "bystander")
		byPkts++
		byBytes += uint64(len(f))
		sw.Receive(1, f)
	}
	// Nothing exported yet: the flows are live and telemetry timers
	// are parked at an hour.
	agg.Flush()
	if pkts, _ := col.Totals(); pkts != 0 {
		t.Fatalf("premature export of %d packets", pkts)
	}

	clk.Advance(2 * time.Second) // idle timeout (1s) elapses
	if removed := sw.SweepExpired(); len(removed) != 0 {
		t.Fatalf("unexpected notifications: %v", removed)
	}
	if sw.Table(0).Len() != 1 { // the priority-10 catch-all stays
		t.Fatalf("table len = %d after expiry", sw.Table(0).Len())
	}
	agg.Flush()
	gotPkts, gotBytes := col.Totals()
	if gotPkts != sentPkts || gotBytes != sentBytes {
		t.Fatalf("expiry flush exported %d/%d, expired flow saw %d/%d",
			gotPkts, gotBytes, sentPkts, sentBytes)
	}
	// The flush is selective: the bystander flow's window is intact.
	snaps := tab.Snapshot()
	if len(snaps) != 1 || snaps[0].Packets != byPkts || snaps[0].Bytes != byBytes {
		t.Fatalf("bystander flow disturbed by expiry flush: %+v", snaps)
	}
	// Exactness overall: exported + live == classified.
	cs := sw.CacheStats()
	classified := cs.Hits.Load() + cs.Misses.Load()
	if gotPkts+byPkts != classified {
		t.Fatalf("exported %d + live %d != classified %d", gotPkts, byPkts, classified)
	}
}

// TestTelemetryAttachMidFlight attaches the table after flows are
// already cached: records must resolve lazily off the existing cache
// entries and count only post-attach traffic.
func TestTelemetryAttachMidFlight(t *testing.T) {
	sw, tab := telSwitch(t, telemetry.Config{})
	sw.SetTelemetry(nil) // start detached
	f := func() []byte { return udpFrame(t, macA, macB, ipA, ipB, 5000, 80, "x") }
	for i := 0; i < 5; i++ {
		sw.Receive(1, f())
	}
	sw.SetTelemetry(tab)
	var want uint64
	for i := 0; i < 7; i++ {
		fr := f()
		want += uint64(len(fr))
		sw.Receive(1, fr)
	}
	// Batch path over the same cached flow.
	vec := [][]byte{f(), f()}
	want += uint64(len(vec[0]) + len(vec[1]))
	sw.ReceiveBatch(1, vec)

	col := telemetry.NewCollector()
	agg := telemetry.NewAggregator(tab, col, time.Hour)
	pkts, bytes := flush(tab, agg, col)
	if pkts != 9 || bytes != want {
		t.Fatalf("post-attach totals %d/%d, want 9/%d", pkts, bytes, want)
	}
}

// TestTelemetrySampledExports checks the 1-in-N sampler fires on the
// pure cache-hit path (traffic that never reaches the slow path after
// warm-up).
func TestTelemetrySampledExports(t *testing.T) {
	sw, tab := telSwitch(t, telemetry.Config{SampleRate: 8})
	f := func() []byte { return udpFrame(t, macA, macB, ipA, ipB, 5000, 80, "x") }
	for i := 0; i < 64; i++ {
		sw.Receive(1, f())
	}
	col := telemetry.NewCollector()
	agg := telemetry.NewAggregator(tab, col, time.Hour)
	flush(tab, agg, col)
	if _, _, samples, _ := col.Stats(); samples != 8 {
		t.Fatalf("samples = %d, want 8 (1-in-8 of 64)", samples)
	}
}

// TestTelemetryZeroAllocCacheHit enforces the hot-path contract: the
// cache-hit batch path with telemetry attached and the sampler at
// 1/64 allocates nothing in steady state.
func TestTelemetryZeroAllocCacheHit(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; exactness gate runs unraced")
	}
	tab := telemetry.NewTable(telemetry.Config{
		SampleRate:    64,
		SweepInterval: time.Hour, // keep the sweep out of the measured window
	})
	sw := New("tel", 0x7e2, WithTelemetry(tab))
	sw.AttachPort(2, "out", &discardBackend{})
	m := openflow.Match{}
	m.WithInPort(1)
	addFlow(t, sw, 0, 10, m, apply(out(2)))

	const nFlows, batch = 256, 64
	frames := make([][]byte, nFlows)
	for i := range frames {
		frames[i] = udpFrame(t, macA, macB, ipA, ipB, uint16(1024+i), 80, "payload")
	}
	// Warm: every flow cached, every telemetry record created.
	for _, f := range frames {
		sw.Receive(1, f)
	}
	vec := make([][]byte, batch)
	next := 0
	run := func() {
		for i := range vec {
			vec[i] = frames[next]
			next = (next + 1) % nFlows
		}
		sw.ReceiveBatch(1, vec)
	}
	run() // settle pools
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Fatalf("cache-hit batch path with telemetry allocates %.1f/op, want 0", allocs)
	}
	if got := uint64(sw.CacheStats().Hits.Load()); got == 0 {
		t.Fatal("test did not exercise the cache-hit path")
	}
}

// TestTelemetrySwapTables: swapping the attached table mid-flight
// (different shard count) must not index old records into the new
// table — cached pointers re-resolve against the new plane and only
// post-swap traffic lands there.
func TestTelemetrySwapTables(t *testing.T) {
	sw, tabA := telSwitch(t, telemetry.Config{Shards: 4})
	f := func() []byte { return udpFrame(t, macA, macB, ipA, ipB, 5000, 80, "x") }
	for i := 0; i < 6; i++ {
		sw.Receive(1, f()) // flow cached, record minted by tabA
	}
	tabB := telemetry.NewTable(telemetry.Config{Shards: 1})
	sw.SetTelemetry(tabB)
	for i := 0; i < 5; i++ {
		sw.Receive(1, f()) // pure cache hits with the stale pointer
	}
	vec := [][]byte{f(), f(), f()}
	sw.ReceiveBatch(1, vec)
	if got := tabA.Snapshot()[0].Packets; got != 6 {
		t.Fatalf("old table saw %d packets, want the 6 pre-swap", got)
	}
	if got := tabB.Snapshot()[0].Packets; got != 8 {
		t.Fatalf("new table saw %d packets, want the 8 post-swap", got)
	}
}

// TestTelemetryOutPortFromCachedProgram: the record's egress port
// comes from the recorded megaflow, including on pure hits.
func TestTelemetryOutPortFromCachedProgram(t *testing.T) {
	sw, tab := telSwitch(t, telemetry.Config{})
	for i := 0; i < 3; i++ {
		sw.Receive(1, udpFrame(t, macA, macB, ipA, ipB, 5000, 80, "x"))
	}
	snaps := tab.Snapshot()
	if len(snaps) != 1 || snaps[0].OutPort != 2 {
		t.Fatalf("snapshot = %+v, want out-port 2", snaps)
	}
}
