// Package harmless is the root of the HARMLESS reproduction: a
// Go implementation of "HARMLESS: Cost-Effective Transitioning to SDN"
// (Szalay et al., SIGCOMM 2017 Posters and Demos).
//
// The implementation lives under internal/ (see DESIGN.md for the
// system inventory); runnable entry points are under cmd/ and
// examples/. The experiment suite reproducing the paper's figure and
// claims is in experiments_test.go and bench_test.go next to this
// file; EXPERIMENTS.md records paper-vs-measured results.
package harmless
