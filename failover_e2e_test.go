package harmless_test

// Controller-failover end to end: the acceptance scenario the
// multi-controller control plane exists for. Two controllers hold
// channels to one HARMLESS-S4; the master installs the forwarding
// state, dies mid-traffic, and the standby promotes itself with
// ROLE_REQUEST (generation_id honored) — while the datapath keeps
// forwarding the whole time with zero counter loss. A second test
// proves the active-connect channel redials a restarted controller
// with backoff through the full deployment stack.

import (
	"context"
	"net"
	"testing"
	"time"

	"github.com/harmless-sdn/harmless/internal/controlplane"
	"github.com/harmless-sdn/harmless/internal/fabric"
	"github.com/harmless-sdn/harmless/internal/openflow"
)

func reqCtx(t *testing.T) context.Context {
	c, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return c
}

func TestControllerFailoverZeroLoss(t *testing.T) {
	// Two controller channels over in-memory transports; no in-process
	// app controller — this test is the controller.
	pipeA, ctrlSideA := net.Pipe()
	pipeB, ctrlSideB := net.Pipe()
	dep, err := fabric.BuildDeployment(fabric.DeployConfig{
		NumPorts: 4,
		Controllers: []controlplane.Endpoint{
			{Conn: pipeA},
			{Conn: pipeB},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	slaveErrs := make(chan *openflow.Error, 4)
	ctrlA, err := controlplane.Connect(ctrlSideA, controlplane.Config{}, controlplane.Events{})
	if err != nil {
		t.Fatalf("controller A handshake: %v", err)
	}
	defer ctrlA.Close()
	ctrlB, err := controlplane.Connect(ctrlSideB, controlplane.Config{}, controlplane.Events{
		SwitchError: func(e *openflow.Error) { slaveErrs <- e },
	})
	if err != nil {
		t.Fatalf("controller B handshake: %v", err)
	}
	defer ctrlB.Close()

	// Role election: A is master at epoch 1, B standby slave.
	if role, _, err := ctrlA.RequestRole(reqCtx(t), openflow.RoleMaster, 1); err != nil || role != openflow.RoleMaster {
		t.Fatalf("A promotion: role=%v err=%v", role, err)
	}
	if role, _, err := ctrlB.RequestRole(reqCtx(t), openflow.RoleSlave, 1); err != nil || role != openflow.RoleSlave {
		t.Fatalf("B demotion: role=%v err=%v", role, err)
	}

	// The slave's writes bounce with OFPBRC_IS_SLAVE before promotion.
	flood := func() *openflow.FlowMod {
		return &openflow.FlowMod{
			TableID: 0, Command: openflow.FlowAdd, Priority: 0,
			Instructions: []openflow.Instruction{&openflow.InstrApplyActions{
				Actions: []openflow.Action{&openflow.ActionOutput{Port: openflow.PortFlood, MaxLen: 0xffff}},
			}},
		}
	}
	if err := ctrlB.FlowMod(flood()); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-slaveErrs:
		if e.ErrType != openflow.ErrTypeBadRequest || e.Code != openflow.BadRequestIsSlave {
			t.Fatalf("slave write rejected with %v, want IS_SLAVE", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("slave flow-mod was not rejected")
	}

	// The master installs the forwarding state and fences it.
	if err := ctrlA.FlowMod(flood()); err != nil {
		t.Fatal(err)
	}
	if err := ctrlA.AwaitBarrier(reqCtx(t)); err != nil {
		t.Fatalf("master barrier: %v", err)
	}

	ping := func(phase string, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := dep.Hosts[1].Ping(fabric.HostIP(2), 2*time.Second); err != nil {
				t.Fatalf("%s ping %d h1->h2: %v", phase, i, err)
			}
			if err := dep.Hosts[2].Ping(fabric.HostIP(1), 2*time.Second); err != nil {
				t.Fatalf("%s ping %d h2->h1: %v", phase, i, err)
			}
		}
	}
	ping("pre-failover", 3)

	// Snapshot the datapath state through the master, then kill it
	// mid-traffic.
	statsBefore, err := ctrlA.FlowStats(reqCtx(t), 0)
	if err != nil || len(statsBefore) != 1 {
		t.Fatalf("flow stats via master: %v (%d entries)", err, len(statsBefore))
	}
	trunkRxBefore := dep.S4.SS1.PortCounters(1).RxPackets.Load()
	ctrlA.Close()

	// The datapath must keep forwarding with the master gone: the
	// flows are switch state, not channel state.
	ping("headless", 3)

	// Standby promotes with the next election epoch; a stale epoch is
	// refused first (generation_id honored).
	if _, _, err := ctrlB.RequestRole(reqCtx(t), openflow.RoleMaster, 0); err == nil {
		t.Fatal("stale generation_id accepted during failover")
	}
	role, gen, err := ctrlB.RequestRole(reqCtx(t), openflow.RoleMaster, 2)
	if err != nil || role != openflow.RoleMaster || gen != 2 {
		t.Fatalf("B promotion: role=%v gen=%d err=%v", role, gen, err)
	}

	// The new master has full control (its writes are accepted now —
	// a fresh entry, so the in-place flood rule keeps its counters)
	// and sees continuous state: the original entry's counters carry
	// the pre-failover traffic plus the headless traffic — nothing
	// reset, nothing lost.
	marker := &openflow.FlowMod{
		TableID: 0, Command: openflow.FlowAdd, Priority: 42, Cookie: 0xb,
		Instructions: []openflow.Instruction{&openflow.InstrApplyActions{
			Actions: []openflow.Action{&openflow.ActionOutput{Port: openflow.PortFlood, MaxLen: 0xffff}},
		}},
	}
	marker.Match.WithInPort(3)
	if err := ctrlB.FlowMod(marker); err != nil {
		t.Fatal(err)
	}
	if err := ctrlB.AwaitBarrier(reqCtx(t)); err != nil {
		t.Fatalf("new master barrier: %v", err)
	}
	select {
	case e := <-slaveErrs:
		t.Fatalf("promoted master's write rejected: %v", e)
	default:
	}
	statsAfter, err := ctrlB.FlowStats(reqCtx(t), 0)
	if err != nil || len(statsAfter) != 2 {
		t.Fatalf("flow stats via new master: %v (%d entries, want flood+marker)", err, len(statsAfter))
	}
	var floodAfter *openflow.FlowStats
	for i := range statsAfter {
		if statsAfter[i].Priority == 0 {
			floodAfter = &statsAfter[i]
		}
	}
	if floodAfter == nil {
		t.Fatal("flood entry vanished across failover")
	}
	if floodAfter.PacketCount < statsBefore[0].PacketCount {
		t.Fatalf("flow counters went backwards across failover: %d -> %d",
			statsBefore[0].PacketCount, floodAfter.PacketCount)
	}
	if floodAfter.PacketCount == statsBefore[0].PacketCount {
		t.Fatal("flow counters did not advance during headless traffic")
	}
	if trunkRxAfter := dep.S4.SS1.PortCounters(1).RxPackets.Load(); trunkRxAfter <= trunkRxBefore {
		t.Fatalf("trunk rx stalled across failover: %d -> %d", trunkRxBefore, trunkRxAfter)
	}
	ping("post-promotion", 3)
}

// TestControllerReconnectBackoffE2E: a deployment dialing an external
// controller address keeps the channel alive across a controller
// restart — exponential-backoff redial against the dead address, then
// a fresh handshake (and re-install of forwarding state) when the
// listener comes back.
func TestControllerReconnectBackoffE2E(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	accepted := make(chan *controlplane.Controller, 2)
	serve := func(l net.Listener) {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			ctrl, err := controlplane.Connect(conn, controlplane.Config{}, controlplane.Events{})
			if err == nil {
				accepted <- ctrl
			}
		}
	}
	go serve(l)

	dep, err := fabric.BuildDeployment(fabric.DeployConfig{
		NumPorts:    4,
		Controllers: []controlplane.Endpoint{{Addr: addr}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	chans := dep.S4.Agent().Channels()
	if len(chans) != 1 || chans[0].RemoteAddr() != addr {
		t.Fatalf("agent channels: %v", chans)
	}
	ch := chans[0]

	var first *controlplane.Controller
	select {
	case first = <-accepted:
	case <-time.After(5 * time.Second):
		t.Fatal("switch never dialed the controller")
	}
	if first.DPID() != dep.S4.SS2.DatapathID() {
		t.Fatalf("dpid %#x, want %#x", first.DPID(), dep.S4.SS2.DatapathID())
	}

	// Controller restart: listener and connection die, the channel
	// must back off and redial until the address answers again.
	l.Close()
	first.Close()
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	go serve(l2)

	var second *controlplane.Controller
	select {
	case second = <-accepted:
	case <-time.After(10 * time.Second):
		t.Fatal("switch never redialed the restarted controller")
	}
	defer second.Close()
	if second.DPID() != dep.S4.SS2.DatapathID() {
		t.Fatalf("redial dpid %#x", second.DPID())
	}
	// The redialed channel is fully functional: role negotiation and
	// typed stats work over the new transport.
	if role, _, err := second.RequestRole(reqCtx(t), openflow.RoleMaster, 1); err != nil || role != openflow.RoleMaster {
		t.Fatalf("role over redialed channel: %v err=%v", role, err)
	}
	if _, err := second.PortStats(reqCtx(t)); err != nil {
		t.Fatalf("port stats over redialed channel: %v", err)
	}
	if ch.Redials() == 0 {
		t.Error("channel reports no backoff redials across the restart")
	}
}
