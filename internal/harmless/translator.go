package harmless

import (
	"encoding/binary"
	"fmt"

	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/softswitch"
)

// SS_1 port-numbering convention inside HARMLESS-S4.
const (
	// SS1TrunkPort is SS_1's uplink to the legacy switch trunk.
	SS1TrunkPort uint32 = 1
	// SS1PatchBase + logicalPort is SS_1's patch port towards SS_2's
	// logical port.
	SS1PatchBase uint32 = 1000
)

// translatorPriority is the priority of all generated rules; they are
// mutually exclusive so a single level suffices.
const translatorPriority uint16 = 100

// TranslatorRules generates the SS_1 OpenFlow program realizing the
// paper's "OpenFlow Translator Component": the adaptation layer that
// dispatches packets between the VLAN-tagged trunk and per-port patch
// ports, so the main switch never sees VLAN ids (Fig. 1, Flow table of
// SS_1). The rules are plain FLOW_MODs — SS_1 is an unmodified
// software switch instance, exactly as in the paper.
func TranslatorRules(plan *Plan) []*openflow.FlowMod {
	var out []*openflow.FlowMod
	add := func(match openflow.Match, actions ...openflow.Action) {
		out = append(out, &openflow.FlowMod{
			TableID:  0,
			Command:  openflow.FlowAdd,
			Priority: translatorPriority,
			BufferID: openflow.NoBuffer,
			OutPort:  openflow.PortAny,
			OutGroup: openflow.GroupAny,
			Match:    match,
			Instructions: []openflow.Instruction{
				&openflow.InstrApplyActions{Actions: actions},
			},
		})
	}

	for _, port := range plan.MigratedPorts() {
		vlan := plan.VLANForPort[port]
		patch := SS1PatchBase + uint32(port)

		// Trunk ingress tagged with this port's VLAN: strip the tag
		// and hand to the main switch on the matching patch port.
		in := openflow.Match{}
		in.WithInPort(SS1TrunkPort).WithVLAN(vlan)
		add(in,
			&openflow.ActionPopVLAN{},
			&openflow.ActionOutput{Port: patch, MaxLen: 0xffff},
		)

		// Patch ingress from the main switch: tag with this port's
		// VLAN and hairpin back to the legacy switch.
		vidVal := make([]byte, 2)
		binary.BigEndian.PutUint16(vidVal, vlan|openflow.OXMVIDPresent)
		outM := openflow.Match{}
		outM.WithInPort(patch)
		add(outM,
			&openflow.ActionPushVLAN{EtherType: pkt.EtherTypeDot1Q},
			&openflow.ActionSetField{OXM: openflow.OXM{Field: openflow.OXMVLANVID, Value: vidVal}},
			&openflow.ActionOutput{Port: SS1TrunkPort, MaxLen: 0xffff},
		)
	}

	if plan.LegacySegment {
		patch := SS1PatchBase + plan.LegacySegmentPort
		// Untagged trunk ingress is the unmigrated segment (trunk
		// native VLAN): no tag manipulation either way.
		in := openflow.Match{}
		in.WithInPort(SS1TrunkPort).WithNoVLAN()
		add(in, &openflow.ActionOutput{Port: patch, MaxLen: 0xffff})

		outM := openflow.Match{}
		outM.WithInPort(patch)
		add(outM, &openflow.ActionOutput{Port: SS1TrunkPort, MaxLen: 0xffff})
	}
	return out
}

// InstallTranslator programs ss1 with the rules for plan.
func InstallTranslator(ss1 *softswitch.Switch, plan *Plan) error {
	for _, fm := range TranslatorRules(plan) {
		if _, err := ss1.ApplyFlowMod(fm); err != nil {
			return fmt.Errorf("harmless: installing translator rule %s: %w", fm, err)
		}
	}
	return nil
}
