package openflow

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/harmless-sdn/harmless/internal/pkt"
)

// roundTrip marshals, reparses, and compares via reflect.DeepEqual.
func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	if m.XID() == 0 {
		m.SetXID(77)
	}
	wire, err := m.Marshal()
	if err != nil {
		t.Fatalf("marshal %T: %v", m, err)
	}
	// Header length must equal the frame length.
	h, err := ParseHeader(wire)
	if err != nil {
		t.Fatal(err)
	}
	if int(h.Length) != len(wire) {
		t.Fatalf("%T: header length %d != %d", m, h.Length, len(wire))
	}
	got, err := Parse(wire)
	if err != nil {
		t.Fatalf("parse %T: %v", m, err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("%T round trip mismatch:\n  sent %+v\n  got  %+v", m, m, got)
	}
	return got
}

func TestHelloEchoBarrierRoundTrip(t *testing.T) {
	roundTrip(t, &Hello{})
	roundTrip(t, &EchoRequest{Data: []byte("ping")})
	roundTrip(t, &EchoReply{Data: []byte("pong")})
	roundTrip(t, &BarrierRequest{})
	roundTrip(t, &BarrierReply{})
	roundTrip(t, &FeaturesRequest{})
}

func TestErrorRoundTrip(t *testing.T) {
	e := &Error{ErrType: ErrTypeFlowModFailed, Code: FlowModFailedTableFull, Data: []byte{1, 2, 3}}
	roundTrip(t, e)
	if e.Error() == "" {
		t.Error("Error() empty")
	}
}

func TestFeaturesReplyRoundTrip(t *testing.T) {
	roundTrip(t, &FeaturesReply{
		DatapathID:   0x0000020000000001,
		NBuffers:     256,
		NTables:      4,
		Capabilities: CapFlowStats | CapPortStats,
	})
}

func testMatch() Match {
	m := Match{}
	m.WithInPort(3).
		WithEthType(pkt.EtherTypeIPv4).
		WithEthDst(pkt.MustMAC("02:00:00:00:00:02")).
		WithIPProto(pkt.IPProtoTCP).
		WithIPv4SrcMasked(pkt.MustIPv4("10.0.0.0"), pkt.MustIPv4("255.255.255.0")).
		WithTCPDst(80)
	return m
}

func TestFlowModRoundTrip(t *testing.T) {
	fm := &FlowMod{
		Cookie:      0xdeadbeef,
		TableID:     1,
		Command:     FlowAdd,
		IdleTimeout: 30,
		HardTimeout: 300,
		Priority:    1000,
		BufferID:    NoBuffer,
		OutPort:     PortAny,
		OutGroup:    GroupAny,
		Flags:       FlowFlagSendFlowRem,
		Match:       testMatch(),
		Instructions: []Instruction{
			&InstrMeter{MeterID: 5},
			&InstrApplyActions{Actions: []Action{
				&ActionPushVLAN{EtherType: pkt.EtherTypeDot1Q},
				&ActionSetField{OXM: OXM{Field: OXMVLANVID, Value: []byte{0x10, 0x65}}},
				&ActionOutput{Port: 4, MaxLen: 0xffff},
			}},
			&InstrGotoTable{TableID: 2},
		},
	}
	roundTrip(t, fm)
	if fm.String() == "" {
		t.Error("String() empty")
	}
}

func TestFlowModAllCommands(t *testing.T) {
	for _, cmd := range []uint8{FlowAdd, FlowModify, FlowModifyStrict, FlowDelete, FlowDeleteStrict} {
		roundTrip(t, &FlowMod{Command: cmd, BufferID: NoBuffer, OutPort: PortAny, OutGroup: GroupAny})
	}
}

func TestMatchBuildersAndString(t *testing.T) {
	m := &Match{}
	m.WithVLAN(101).WithVLANPCP(3).WithUDPSrc(53).WithUDPDst(53).
		WithICMPType(8).WithARPOp(1).WithARPSPA(pkt.MustIPv4("10.0.0.1")).
		WithARPTPA(pkt.MustIPv4("10.0.0.2")).WithEthSrc(pkt.MustMAC("02:00:00:00:00:01")).
		WithTCPSrc(1234).WithIPv4Src(pkt.MustIPv4("1.2.3.4")).WithIPv4Dst(pkt.MustIPv4("4.3.2.1")).
		WithIPv4DstMasked(pkt.MustIPv4("4.3.2.0"), pkt.MustIPv4("255.255.255.0")).
		WithEthDstMasked(pkt.MustMAC("01:00:00:00:00:00"), pkt.MustMAC("01:00:00:00:00:00"))
	if s := m.String(); s == "" || s == "any" {
		t.Errorf("String: %q", s)
	}
	// Replacing a field must not duplicate it.
	m2 := &Match{}
	m2.WithInPort(1).WithInPort(2)
	if len(m2.OXMs) != 1 {
		t.Errorf("duplicate field: %v", m2.OXMs)
	}
	if got := m2.Get(OXMInPort); got == nil || got.Value[3] != 2 {
		t.Errorf("Get: %+v", got)
	}
	if (&Match{}).String() != "any" {
		t.Error("empty match string")
	}
	// VLAN match must embed the present bit.
	m3 := &Match{}
	m3.WithVLAN(101)
	if v := m3.Get(OXMVLANVID); v == nil || v.Value[0] != 0x10 || v.Value[1] != 101-0x100+0x100 {
		// 0x1000|101 = 0x1065
		if v.Value[0] != 0x10 || v.Value[1] != 0x65 {
			t.Errorf("vlan oxm: %x", v.Value)
		}
	}
}

func TestMatchEqual(t *testing.T) {
	a, b := testMatch(), testMatch()
	if !a.Equal(&b) {
		t.Error("identical matches not equal")
	}
	b.WithInPort(9)
	if a.Equal(&b) {
		t.Error("different matches equal")
	}
	c := Match{}
	if a.Equal(&c) {
		t.Error("different lengths equal")
	}
}

func TestMatchMarshalPadding(t *testing.T) {
	// in_port only: 4+8 = 12 bytes, padded to 16.
	m := &Match{}
	m.WithInPort(1)
	raw, err := m.marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw)%8 != 0 {
		t.Errorf("match not 8-aligned: %d", len(raw))
	}
	got, consumed, err := unmarshalMatch(raw)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != len(raw) {
		t.Errorf("consumed %d != %d", consumed, len(raw))
	}
	if !got.Equal(m) {
		t.Error("padding round trip failed")
	}
}

func TestMatchRejectsBadOXM(t *testing.T) {
	m := &Match{OXMs: []OXM{{Field: 99, Value: []byte{1}}}}
	if _, err := m.marshal(); err == nil {
		t.Error("unknown field accepted")
	}
	m = &Match{OXMs: []OXM{{Field: OXMInPort, Value: []byte{1}}}}
	if _, err := m.marshal(); err == nil {
		t.Error("short value accepted")
	}
	m = &Match{OXMs: []OXM{{Field: OXMInPort, HasMask: true, Value: []byte{0, 0, 0, 1}, Mask: []byte{1}}}}
	if _, err := m.marshal(); err == nil {
		t.Error("short mask accepted")
	}
}

func TestPacketInRoundTrip(t *testing.T) {
	match := Match{}
	match.WithInPort(7)
	pi := &PacketIn{
		BufferID: NoBuffer,
		TotalLen: 60,
		Reason:   PacketInReasonNoMatch,
		TableID:  0,
		Cookie:   42,
		Match:    match,
		Data:     bytes.Repeat([]byte{0xaa}, 60),
	}
	got := roundTrip(t, pi).(*PacketIn)
	if p, ok := got.InPort(); !ok || p != 7 {
		t.Errorf("InPort: %d %v", p, ok)
	}
}

func TestPacketOutRoundTrip(t *testing.T) {
	roundTrip(t, &PacketOut{
		BufferID: NoBuffer,
		InPort:   PortController,
		Actions:  []Action{&ActionOutput{Port: PortFlood, MaxLen: 0xffff}},
		Data:     []byte{1, 2, 3, 4},
	})
	// Packet out with no actions (drop) and no data.
	roundTrip(t, &PacketOut{BufferID: 7, InPort: 1})
}

func TestFlowRemovedRoundTrip(t *testing.T) {
	match := Match{}
	match.WithEthDst(pkt.MustMAC("02:00:00:00:00:09"))
	roundTrip(t, &FlowRemoved{
		Cookie: 9, Priority: 100, Reason: FlowRemovedIdleTimeout, TableID: 0,
		DurationSec: 5, IdleTimeout: 10, PacketCount: 3, ByteCount: 180,
		Match: match,
	})
}

func TestPortStatusRoundTrip(t *testing.T) {
	roundTrip(t, &PortStatus{
		Reason: PortReasonAdd,
		Desc: PortDesc{
			PortNo: 3, HWAddr: pkt.MustMAC("02:00:00:00:00:03"),
			Name: "harmless-p3", State: PortStateLive, CurrSpeed: 1000000, MaxSpeed: 1000000,
		},
	})
}

func TestGroupModRoundTrip(t *testing.T) {
	roundTrip(t, &GroupMod{
		Command:   GroupAdd,
		GroupType: GroupTypeSelect,
		GroupID:   1,
		Buckets: []Bucket{
			{Weight: 50, WatchPort: PortAny, WatchGroup: GroupAny,
				Actions: []Action{&ActionSetField{OXM: OXM{Field: OXMIPv4Dst, Value: []byte{10, 0, 0, 1}}}, &ActionOutput{Port: 1, MaxLen: 0xffff}}},
			{Weight: 50, WatchPort: PortAny, WatchGroup: GroupAny,
				Actions: []Action{&ActionSetField{OXM: OXM{Field: OXMIPv4Dst, Value: []byte{10, 0, 0, 2}}}, &ActionOutput{Port: 2, MaxLen: 0xffff}}},
		},
	})
}

func TestMeterModRoundTrip(t *testing.T) {
	roundTrip(t, &MeterMod{
		Command: MeterAdd, Flags: MeterFlagPktps, MeterID: 7,
		Bands: []MeterBand{{Type: MeterBandDrop, Rate: 1000, BurstSize: 100}},
	})
}

func TestMultipartRoundTrips(t *testing.T) {
	match := Match{}
	match.WithEthType(pkt.EtherTypeIPv4)
	roundTrip(t, &MultipartRequest{MPType: MultipartDesc})
	roundTrip(t, &MultipartRequest{MPType: MultipartPortDesc})
	roundTrip(t, &MultipartRequest{MPType: MultipartTable})
	roundTrip(t, &MultipartRequest{MPType: MultipartFlow,
		Flow: &FlowStatsRequest{TableID: TableAll, OutPort: PortAny, OutGroup: GroupAny, Match: match}})
	roundTrip(t, &MultipartRequest{MPType: MultipartPortStats, Port: &PortStatsRequest{PortNo: PortAny}})

	roundTrip(t, &MultipartReply{MPType: MultipartDesc, Desc: &SwitchDesc{
		Manufacturer: "HARMLESS project", Hardware: "softswitch", Software: "0.1",
		SerialNum: "s4-001", Datapath: "SS_2",
	}})
	roundTrip(t, &MultipartReply{MPType: MultipartFlow, Flows: []FlowStats{
		{TableID: 0, Priority: 10, PacketCount: 5, ByteCount: 300, Match: match,
			Instructions: []Instruction{&InstrApplyActions{Actions: []Action{&ActionOutput{Port: 2, MaxLen: 0xffff}}}}},
	}})
	roundTrip(t, &MultipartReply{MPType: MultipartPortStats, Ports: []PortStats{
		{PortNo: 1, RxPackets: 10, TxPackets: 20, RxBytes: 1000, TxBytes: 2000},
	}})
	roundTrip(t, &MultipartReply{MPType: MultipartTable, Tables: []TableStats{
		{TableID: 0, ActiveCount: 5, LookupCount: 100, MatchedCount: 90},
	}})
	roundTrip(t, &MultipartReply{MPType: MultipartPortDesc, PortDescs: []PortDesc{
		{PortNo: 1, HWAddr: pkt.MustMAC("02:00:00:00:00:01"), Name: "p1"},
	}})
}

func TestFlowStatsString(t *testing.T) {
	fs := &FlowStats{TableID: 0, Priority: 5}
	if fs.String() == "" {
		t.Error("empty")
	}
}

func TestActionStrings(t *testing.T) {
	actions := []Action{
		&ActionOutput{Port: 1}, &ActionOutput{Port: PortController},
		&ActionOutput{Port: PortFlood}, &ActionOutput{Port: PortAll}, &ActionOutput{Port: PortInPort},
		&ActionPushVLAN{EtherType: 0x8100}, &ActionPopVLAN{}, &ActionGroup{GroupID: 2},
		&ActionDecNwTTL{}, &ActionSetField{OXM: OXM{Field: OXMVLANVID, Value: []byte{0x10, 0x65}}},
	}
	for _, a := range actions {
		if a.String() == "" {
			t.Errorf("%T empty string", a)
		}
	}
	if actionsString(nil) != "drop" {
		t.Error("nil actions should render drop")
	}
	instrs := []Instruction{
		&InstrGotoTable{TableID: 1}, &InstrApplyActions{}, &InstrWriteActions{},
		&InstrClearActions{}, &InstrMeter{MeterID: 1},
	}
	for _, i := range instrs {
		if i.String() == "" {
			t.Errorf("%T empty string", i)
		}
	}
}

func TestSetFieldRejectsMask(t *testing.T) {
	a := &ActionSetField{OXM: OXM{Field: OXMVLANVID, HasMask: true,
		Value: []byte{0, 1}, Mask: []byte{0, 0xff}}}
	if _, err := a.marshal(); err == nil {
		t.Error("masked set_field accepted")
	}
}

func TestParseRejectsBadFrames(t *testing.T) {
	// Wrong version.
	frame := []byte{0x01, TypeHello, 0, 8, 0, 0, 0, 1}
	if _, err := Parse(frame); err == nil {
		t.Error("version 1 accepted")
	}
	// Length mismatch.
	frame = []byte{Version, TypeHello, 0, 12, 0, 0, 0, 1}
	if _, err := Parse(frame); err == nil {
		t.Error("length mismatch accepted")
	}
	// Unknown type.
	frame = []byte{Version, 99, 0, 8, 0, 0, 0, 1}
	if _, err := Parse(frame); err == nil {
		t.Error("unknown type accepted")
	}
	// Short header.
	if _, err := Parse([]byte{1, 2, 3}); err == nil {
		t.Error("short frame accepted")
	}
}

func TestParseGarbageNoPanic(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) >= 4 {
			// Force plausible framing so body parsers get exercised.
			data[0] = Version
			data[2] = byte(len(data) >> 8)
			data[3] = byte(len(data))
		}
		_, _ = Parse(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestReadWriteMessageFraming(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() {
		_ = WriteMessage(c1, &EchoRequest{Data: []byte("abc"), xid: xid{Xid: 5}})
		fm := &FlowMod{Command: FlowAdd, BufferID: NoBuffer, OutPort: PortAny, OutGroup: GroupAny, xid: xid{Xid: 6}}
		fm.Match.WithInPort(1)
		_ = WriteMessage(c1, fm)
	}()
	m1, err := ReadMessage(c2)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := m1.(*EchoRequest); !ok || string(e.Data) != "abc" || e.XID() != 5 {
		t.Errorf("m1: %+v", m1)
	}
	m2, err := ReadMessage(c2)
	if err != nil {
		t.Fatal(err)
	}
	if fm, ok := m2.(*FlowMod); !ok || fm.XID() != 6 {
		t.Errorf("m2: %+v", m2)
	}
}

func TestConnHandshake(t *testing.T) {
	c1, c2 := net.Pipe()
	ctrl := NewConn(c1)
	sw := NewConn(c2)
	defer ctrl.Close()
	defer sw.Close()

	// Minimal switch-side responder.
	go func() {
		_ = sw.Send(&Hello{})
		for {
			m, err := sw.Recv()
			if err != nil {
				return
			}
			switch m.(type) {
			case *Hello:
			case *FeaturesRequest:
				_ = sw.Send(&FeaturesReply{DatapathID: 0xabc, NTables: 2, xid: xid{Xid: m.XID()}})
				return
			}
		}
	}()

	fr, err := ctrl.Handshake(nil)
	if err != nil {
		t.Fatal(err)
	}
	if fr.DatapathID != 0xabc || fr.NTables != 2 {
		t.Errorf("features: %+v", fr)
	}
}

func TestConnXIDAssignment(t *testing.T) {
	c1, c2 := net.Pipe()
	conn := NewConn(c1)
	defer conn.Close()
	go func() {
		m := &Hello{}
		_ = conn.Send(m)
	}()
	m, err := ReadMessage(c2)
	if err != nil {
		t.Fatal(err)
	}
	if m.XID() == 0 {
		t.Error("xid not assigned")
	}
	c2.Close()
}
