// Command ofctl inspects a running HARMLESS switch the way
// ovs-ofctl inspects Open vSwitch: it attaches as an OpenFlow
// controller over the typed controlplane client, issues the requested
// queries, prints the results, and exits. It either listens for the
// switch to dial in (-listen, pair with harmlessd -controllers) or
// dials a switch running a passive listener (-connect, pair with
// harmlessd -of-listen).
//
//	ofctl -listen :6653 dump-flows
//	ofctl -connect 127.0.0.1:6653 dump-ports
//	ofctl -listen :6653 dump-desc
//	ofctl -listen :6653 dump-tables
//	ofctl -listen :6653 show
//	ofctl -listen :6653 role          # negotiate MASTER (see -role, -generation)
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"github.com/harmless-sdn/harmless/internal/controlplane"
	"github.com/harmless-sdn/harmless/internal/openflow"
)

func main() {
	listen := flag.String("listen", ":6653", "address to accept the switch connection on")
	connect := flag.String("connect", "", "dial a passively-listening switch instead of accepting one")
	timeout := flag.Duration("timeout", 30*time.Second, "how long to wait for the switch and for replies")
	roleName := flag.String("role", "master", "role for the `role` command: master|slave|equal")
	generation := flag.Uint64("generation", 1, "generation_id for the `role` command")
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "show"
	}

	ctrl := attach(*listen, *connect, *timeout)
	defer ctrl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	features := ctrl.Features()

	switch cmd {
	case "show":
		fmt.Printf("dpid=%#016x n_tables=%d n_buffers=%d capabilities=%#x\n",
			features.DatapathID, features.NTables, features.NBuffers, features.Capabilities)
		reply, err := ctrl.Multipart(ctx, &openflow.MultipartRequest{MPType: openflow.MultipartPortDesc})
		if err != nil {
			fatal("port-desc: %v", err)
		}
		for _, p := range reply.PortDescs {
			fmt.Printf(" port %d (%s): addr=%s state=%#x speed=%dkbps\n",
				p.PortNo, p.Name, p.HWAddr, p.State, p.CurrSpeed)
		}
	case "dump-flows":
		flows, err := ctrl.FlowStats(ctx, openflow.TableAll)
		if err != nil {
			fatal("flow stats: %v", err)
		}
		for _, f := range flows {
			fmt.Printf(" %s\n", f.String())
		}
		if len(flows) == 0 {
			fmt.Println(" (no flows)")
		}
	case "dump-ports":
		ports, err := ctrl.PortStats(ctx)
		if err != nil {
			fatal("port stats: %v", err)
		}
		for _, p := range ports {
			fmt.Printf(" port %d: rx pkts=%d bytes=%d drop=%d err=%d, tx pkts=%d bytes=%d drop=%d\n",
				p.PortNo, p.RxPackets, p.RxBytes, p.RxDropped, p.RxErrors,
				p.TxPackets, p.TxBytes, p.TxDropped)
		}
	case "dump-tables":
		reply, err := ctrl.Multipart(ctx, &openflow.MultipartRequest{MPType: openflow.MultipartTable})
		if err != nil {
			fatal("table stats: %v", err)
		}
		for _, t := range reply.Tables {
			fmt.Printf(" table %d: active=%d lookups=%d matched=%d\n",
				t.TableID, t.ActiveCount, t.LookupCount, t.MatchedCount)
		}
	case "dump-desc":
		reply, err := ctrl.Multipart(ctx, &openflow.MultipartRequest{MPType: openflow.MultipartDesc})
		if err != nil {
			fatal("desc: %v", err)
		}
		d := reply.Desc
		fmt.Printf(" manufacturer: %s\n hardware:     %s\n software:     %s\n serial:       %s\n datapath:     %s\n",
			d.Manufacturer, d.Hardware, d.Software, d.SerialNum, d.Datapath)
	case "role":
		want := map[string]uint32{
			"master": openflow.RoleMaster, "slave": openflow.RoleSlave, "equal": openflow.RoleEqual,
		}[*roleName]
		if want == 0 {
			fatal("unknown -role %q (want master|slave|equal)", *roleName)
		}
		role, gen, err := ctrl.RequestRole(ctx, want, *generation)
		if err != nil {
			fatal("role request: %v", err)
		}
		fmt.Printf("role=%s generation_id=%d\n", openflow.RoleName(role), gen)
	default:
		fatal("unknown command %q (want show|dump-flows|dump-ports|dump-tables|dump-desc|role)", cmd)
	}
}

// attach obtains the typed controller channel: dialing a passive
// switch listener, or accepting the switch's active connection (port
// probes and health checks are tolerated and skipped).
func attach(listen, connect string, timeout time.Duration) *controlplane.Controller {
	if connect != "" {
		tcp, err := net.DialTimeout("tcp", connect, timeout)
		if err != nil {
			fatal("connect %s: %v", connect, err)
		}
		ctrl, err := controlplane.Connect(tcp, controlplane.Config{}, controlplane.Events{})
		if err != nil {
			fatal("handshake with %s: %v", connect, err)
		}
		return ctrl
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		fatal("listen: %v", err)
	}
	defer l.Close()
	fmt.Fprintf(os.Stderr, "ofctl: waiting for a switch on %s ...\n", listen)
	if dl, ok := l.(*net.TCPListener); ok {
		_ = dl.SetDeadline(time.Now().Add(timeout))
	}
	for {
		tcp, err := l.Accept()
		if err != nil {
			fatal("accept: %v", err)
		}
		ctrl, err := controlplane.Connect(tcp, controlplane.Config{}, controlplane.Events{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ofctl: peer %s did not speak OpenFlow (%v), waiting again\n",
				tcp.RemoteAddr(), err)
			continue
		}
		return ctrl
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ofctl: "+format+"\n", args...)
	os.Exit(1)
}
