package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/harmless-sdn/harmless/internal/softswitch
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSingleFlow/cached-8         	 3000000	       321 ns/op	   3115264 pps	       0 B/op	       0 allocs/op
BenchmarkSingleFlow/cached-8         	 3200000	       299 ns/op	   3344481 pps	       0 B/op	       0 allocs/op
BenchmarkWorkerScaling/workers=4-8   	 1000000	      1042 ns/op	    959692 pps	       0 B/op	       0 allocs/op
PASS
ok  	github.com/harmless-sdn/harmless/internal/softswitch	2.718s
`

func TestParseBench(t *testing.T) {
	results, panics, fails, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(panics) != 0 || len(fails) != 0 {
		t.Fatalf("clean output flagged: panics=%v fails=%v", panics, fails)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(results))
	}
	// The GOMAXPROCS suffix is stripped and -count runs averaged.
	sf := results["BenchmarkSingleFlow/cached"]
	if sf == nil {
		t.Fatal("BenchmarkSingleFlow/cached not found (name not normalized?)")
	}
	if sf.Iterations != 3100000 {
		t.Errorf("iterations = %d, want the 3.1M average", sf.Iterations)
	}
	if got := sf.Metrics["ns/op"]; got != 310 {
		t.Errorf("ns/op = %v, want 310 (average of 321 and 299)", got)
	}
	ws := results["BenchmarkWorkerScaling/workers=4"]
	if ws == nil || ws.Metrics["pps"] != 959692 {
		t.Errorf("worker scaling row = %+v", ws)
	}
}

func TestParseBenchFailureMarkers(t *testing.T) {
	out := `BenchmarkBroken-8   	       0	       0 ns/op
panic: runtime error: index out of range
--- FAIL: TestSomething
FAIL	github.com/harmless-sdn/harmless/internal/netem	0.1s
`
	results, panics, fails, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(panics) != 1 {
		t.Errorf("panics = %v", panics)
	}
	if len(fails) != 2 {
		t.Errorf("fails = %v", fails)
	}
	if results["BenchmarkBroken"].Iterations != 0 {
		t.Errorf("zero-iteration run not preserved: %+v", results["BenchmarkBroken"])
	}
}

func TestDeltaDirection(t *testing.T) {
	// ns/op: up is a regression.
	if d := delta("ns/op", 100, 150); d != 0.5 {
		t.Errorf("ns/op delta = %v, want +0.5", d)
	}
	// pps: down is a regression.
	if d := delta("pps", 1000, 500); d != 0.5 {
		t.Errorf("pps delta = %v, want +0.5", d)
	}
	if d := delta("pps", 1000, 2000); d != -1.0 {
		t.Errorf("pps improvement delta = %v, want -1.0", d)
	}
	if d := delta("ns/op", 0, 100); d != 0 {
		t.Errorf("zero baseline delta = %v, want 0", d)
	}
}

func TestNormalizeName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkSingleFlow/cached-8":       "BenchmarkSingleFlow/cached",
		"BenchmarkWorkerScaling/workers=4-8": "BenchmarkWorkerScaling/workers=4",
		"BenchmarkPlain":                     "BenchmarkPlain",
	} {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
