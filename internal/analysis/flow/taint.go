// Package flow is the small dataflow layer under the repo's
// determinism analyzers: an intra-procedural reaching-taint pass over
// the typed AST plus a package-local call graph.
//
// The engine is deliberately modest — flow-insensitive across
// branches, no aliasing, no pointer analysis — but it tracks the
// propagation that matters for the repo's invariants: values flow
// through assignments, composite literals, indexing, `append`, string
// concatenation, call arguments (a tainted argument taints the
// callee's parameter) and returns (a function returning tainted data
// taints its call sites, via package-local summaries iterated to a
// fixpoint). Analyzers define what introduces taint (SourceRange,
// SourceCall), what removes it (Cleanse — a sort call, typically) and
// inspect program points with Enter/Leave hooks during a final walk
// where Tracker.TaintedAt answers with program-point-accurate state.
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"maps"

	"github.com/harmless-sdn/harmless/internal/analysis"
)

// Config parameterizes one taint analysis.
type Config struct {
	// SourceRange reports whether ranging over x introduces taint on
	// the loop variables (detorder: x has map type). Also consulted
	// for sync.Map-style `x.Range(func(k, v) bool)` callbacks, whose
	// parameters are tainted the same way.
	SourceRange func(x ast.Expr) bool
	// SourceCall reports whether call's results are tainted at birth
	// (e.g. maps.Keys). Optional.
	SourceCall func(call *ast.CallExpr) bool
	// Cleanse reports whether call removes taint: its argument
	// objects are untainted in place (sort.Strings(keys)) and its
	// results are clean (slices.Sorted(...)).
	Cleanse func(call *ast.CallExpr) bool
	// Enter and Leave are invoked around every node of the final
	// walk; the Tracker's TaintedAt is program-point-accurate inside
	// them. Optional.
	Enter func(t *Tracker, n ast.Node)
	Leave func(t *Tracker, n ast.Node)
}

// Tracker holds the taint state of one package run.
type Tracker struct {
	pass *analysis.Pass
	cfg  Config

	// taint maps a variable (or struct field) object to the position
	// of the source that tainted it.
	taint map[types.Object]token.Pos
	// returns summarizes package-local functions that return tainted
	// values.
	returns map[*types.Func]token.Pos

	fn      *types.Func // enclosing declared function during a walk
	changed bool
	final   bool
}

// Run executes the analysis over every function in the pass's package:
// propagation walks to a fixpoint (bounded), then one final walk
// firing the Enter/Leave hooks.
func Run(pass *analysis.Pass, cfg Config) *Tracker {
	t := &Tracker{
		pass:    pass,
		cfg:     cfg,
		taint:   make(map[types.Object]token.Pos),
		returns: make(map[*types.Func]token.Pos),
	}
	const maxWalks = 8 // bounds summary/param chains; package call chains here are far shallower
	for i := 0; i < maxWalks; i++ {
		t.changed = false
		t.walkPackage()
		if !t.changed {
			break
		}
	}
	t.final = true
	t.walkPackage()
	return t
}

// TaintedAt reports whether e holds tainted data at the current
// program point, and the source position that tainted it. Valid
// during Enter/Leave; after Run it answers with end-state.
func (t *Tracker) TaintedAt(e ast.Expr) (token.Pos, bool) {
	return t.eval(e)
}

// TaintedObj reports the taint of one object directly.
func (t *Tracker) TaintedObj(obj types.Object) (token.Pos, bool) {
	pos, ok := t.taint[obj]
	return pos, ok
}

func (t *Tracker) walkPackage() {
	for _, f := range t.pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				fn, _ := t.pass.TypesInfo.Defs[d.Name].(*types.Func)
				t.fn = fn
				t.walkStmt(d.Body)
				t.fn = nil
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						t.assignSpec(vs)
					}
				}
			}
		}
	}
}

func (t *Tracker) enter(n ast.Node) {
	if t.final && t.cfg.Enter != nil && n != nil {
		t.cfg.Enter(t, n)
	}
}

func (t *Tracker) leave(n ast.Node) {
	if t.final && t.cfg.Leave != nil && n != nil {
		t.cfg.Leave(t, n)
	}
}

// --- statements -----------------------------------------------------

func (t *Tracker) walkStmt(s ast.Stmt) {
	if s == nil {
		return
	}
	t.enter(s)
	defer t.leave(s)
	switch x := s.(type) {
	case *ast.BlockStmt:
		for _, s := range x.List {
			t.walkStmt(s)
		}
	case *ast.ExprStmt:
		t.walkExpr(x.X)
	case *ast.AssignStmt:
		t.walkAssign(x)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					t.assignSpec(vs)
				}
			}
		}
	case *ast.RangeStmt:
		t.walkRange(x)
	case *ast.IfStmt:
		t.walkStmt(x.Init)
		t.walkExpr(x.Cond)
		t.walkStmt(x.Body)
		t.walkStmt(x.Else)
	case *ast.ForStmt:
		t.walkStmt(x.Init)
		t.walkExpr(x.Cond)
		t.walkStmt(x.Post)
		t.walkStmt(x.Body)
	case *ast.SwitchStmt:
		t.walkStmt(x.Init)
		t.walkExpr(x.Tag)
		t.walkStmt(x.Body)
	case *ast.TypeSwitchStmt:
		t.walkStmt(x.Init)
		t.walkStmt(x.Assign)
		t.walkStmt(x.Body)
	case *ast.CaseClause:
		for _, e := range x.List {
			t.walkExpr(e)
		}
		for _, s := range x.Body {
			t.walkStmt(s)
		}
	case *ast.SelectStmt:
		t.walkStmt(x.Body)
	case *ast.CommClause:
		t.walkStmt(x.Comm)
		for _, s := range x.Body {
			t.walkStmt(s)
		}
	case *ast.LabeledStmt:
		t.walkStmt(x.Stmt)
	case *ast.DeferStmt:
		t.walkExpr(x.Call)
	case *ast.GoStmt:
		t.walkExpr(x.Call)
	case *ast.SendStmt:
		t.walkExpr(x.Chan)
		t.walkExpr(x.Value)
	case *ast.IncDecStmt:
		t.walkExpr(x.X)
	case *ast.ReturnStmt:
		t.walkReturn(x)
	}
}

func (t *Tracker) walkAssign(x *ast.AssignStmt) {
	for _, rhs := range x.Rhs {
		t.walkExpr(rhs)
	}
	switch {
	case x.Tok == token.ASSIGN || x.Tok == token.DEFINE:
		if len(x.Rhs) == 1 && len(x.Lhs) > 1 {
			// k, v := f(): every target shares the call's taint.
			pos, tainted := t.eval(x.Rhs[0])
			for _, lhs := range x.Lhs {
				t.setTaint(lhs, pos, tainted)
			}
			return
		}
		for i, lhs := range x.Lhs {
			if i >= len(x.Rhs) {
				break
			}
			pos, tainted := t.eval(x.Rhs[i])
			t.setTaint(lhs, pos, tainted)
		}
	default:
		// Augmented assignment (+=, |=, ...): the target keeps its own
		// taint and absorbs the operand's.
		lhs := x.Lhs[0]
		pos, tainted := t.eval(x.Rhs[0])
		if !tainted {
			pos, tainted = t.eval(lhs)
		}
		if tainted {
			t.setTaint(lhs, pos, true)
		}
	}
}

func (t *Tracker) assignSpec(vs *ast.ValueSpec) {
	for _, v := range vs.Values {
		t.walkExpr(v)
	}
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		pos, tainted := t.eval(vs.Values[0])
		for _, name := range vs.Names {
			t.setTaint(name, pos, tainted)
		}
		return
	}
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		pos, tainted := t.eval(vs.Values[i])
		t.setTaint(name, pos, tainted)
	}
}

func (t *Tracker) walkRange(x *ast.RangeStmt) {
	t.walkExpr(x.X)
	pos, tainted := x.X.Pos(), t.cfg.SourceRange != nil && t.cfg.SourceRange(x.X)
	if !tainted {
		pos, tainted = t.eval(x.X)
	}
	if tainted {
		t.setTaint(x.Key, pos, true)
		t.setTaint(x.Value, pos, true)
	}
	t.walkStmt(x.Body)
}

func (t *Tracker) walkReturn(x *ast.ReturnStmt) {
	for _, res := range x.Results {
		t.walkExpr(res)
		if pos, tainted := t.eval(res); tainted {
			t.summarize(pos)
		}
	}
	if len(x.Results) == 0 && t.fn != nil {
		// Naked return: named results carry whatever they hold.
		sig := t.fn.Type().(*types.Signature)
		for i := 0; i < sig.Results().Len(); i++ {
			if pos, tainted := t.taint[sig.Results().At(i)]; tainted {
				t.summarize(pos)
			}
		}
	}
}

func (t *Tracker) summarize(pos token.Pos) {
	if t.fn == nil {
		return
	}
	if _, ok := t.returns[t.fn]; !ok {
		t.returns[t.fn] = pos
		t.changed = true
	}
}

// --- expressions ----------------------------------------------------

// walkExpr traverses an expression for its side effects on the state:
// nested calls (summaries, cleansing, argument-to-parameter taint)
// and function literals. Taintedness itself is answered by eval.
func (t *Tracker) walkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	t.enter(e)
	defer t.leave(e)
	switch x := e.(type) {
	case *ast.CallExpr:
		t.walkExpr(x.Fun)
		for _, arg := range x.Args {
			t.walkExpr(arg)
		}
		t.applyCall(x)
	case *ast.FuncLit:
		// The literal's body runs with the state in scope where it is
		// built; walking it in place keeps closure captures flowing.
		t.walkStmt(x.Body)
	case *ast.ParenExpr:
		t.walkExpr(x.X)
	case *ast.SelectorExpr:
		t.walkExpr(x.X)
	case *ast.IndexExpr:
		t.walkExpr(x.X)
		t.walkExpr(x.Index)
	case *ast.IndexListExpr:
		t.walkExpr(x.X)
	case *ast.SliceExpr:
		t.walkExpr(x.X)
		t.walkExpr(x.Low)
		t.walkExpr(x.High)
		t.walkExpr(x.Max)
	case *ast.StarExpr:
		t.walkExpr(x.X)
	case *ast.UnaryExpr:
		t.walkExpr(x.X)
	case *ast.BinaryExpr:
		t.walkExpr(x.X)
		t.walkExpr(x.Y)
	case *ast.KeyValueExpr:
		t.walkExpr(x.Key)
		t.walkExpr(x.Value)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			t.walkExpr(el)
		}
	case *ast.TypeAssertExpr:
		t.walkExpr(x.X)
	}
}

// applyCall applies a call's state effects once its arguments are
// walked: cleansing untaints argument objects in place; arguments
// tainted at a package-local callee taint the matching parameters
// (the "call arguments" leg of propagation); `m.Range(func(k, v))`
// over a source taints the callback parameters.
func (t *Tracker) applyCall(call *ast.CallExpr) {
	if t.cfg.Cleanse != nil && t.cfg.Cleanse(call) {
		for _, arg := range call.Args {
			t.untaint(arg)
		}
		return
	}
	if t.rangeCallback(call) {
		return
	}
	// A method fed tainted data accumulates it into its receiver:
	// buf.WriteString(k) inside a map range makes buf (and later
	// buf.String()) order-dependent.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isMethod := t.pass.TypesInfo.Selections[sel]; isMethod {
			for _, arg := range call.Args {
				if pos, tainted := t.eval(arg); tainted {
					t.setTaint(sel.X, pos, true)
					break
				}
			}
		}
	}
	callee := t.calleeFunc(call)
	if callee == nil {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pos, tainted := t.eval(arg)
		if !tainted {
			continue
		}
		pi := i
		if sig.Variadic() && pi >= sig.Params().Len() {
			pi = sig.Params().Len() - 1
		}
		if pi < 0 || pi >= sig.Params().Len() {
			continue
		}
		t.setObjTaint(sig.Params().At(pi), pos)
	}
}

// rangeCallback handles `x.Range(func(k, v any) bool { ... })` when x
// is a source (sync.Map.Range and friends): the callback parameters
// are tainted exactly like range loop variables.
func (t *Tracker) rangeCallback(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Range" || len(call.Args) != 1 {
		return false
	}
	lit, ok := call.Args[0].(*ast.FuncLit)
	if !ok || t.cfg.SourceRange == nil || !t.cfg.SourceRange(sel.X) {
		return false
	}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if obj := t.pass.TypesInfo.Defs[name]; obj != nil {
				t.setObjTaint(obj, sel.X.Pos())
			}
		}
	}
	return true
}

// eval answers whether e holds tainted data right now.
func (t *Tracker) eval(e ast.Expr) (token.Pos, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := t.objOf(x)
		if obj == nil {
			return token.NoPos, false
		}
		pos, ok := t.taint[obj]
		return pos, ok
	case *ast.SelectorExpr:
		if sel, ok := t.pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if pos, ok := t.taint[sel.Obj()]; ok {
				return pos, true
			}
		}
		return t.eval(x.X)
	case *ast.IndexExpr:
		// A map lookup by key is order-independent; slice and array
		// elements inherit the container's taint.
		if _, isMap := typeOf(t.pass, x.X).Underlying().(*types.Map); isMap {
			return token.NoPos, false
		}
		return t.eval(x.X)
	case *ast.SliceExpr:
		return t.eval(x.X)
	case *ast.StarExpr:
		return t.eval(x.X)
	case *ast.UnaryExpr:
		return t.eval(x.X)
	case *ast.BinaryExpr:
		if pos, ok := t.eval(x.X); ok {
			return pos, true
		}
		return t.eval(x.Y)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if pos, ok := t.eval(v); ok {
				return pos, true
			}
		}
	case *ast.TypeAssertExpr:
		return t.eval(x.X)
	case *ast.CallExpr:
		return t.evalCall(x)
	}
	return token.NoPos, false
}

func (t *Tracker) evalCall(call *ast.CallExpr) (token.Pos, bool) {
	if t.cfg.Cleanse != nil && t.cfg.Cleanse(call) {
		return token.NoPos, false
	}
	if t.cfg.SourceCall != nil && t.cfg.SourceCall(call) {
		return call.Pos(), true
	}
	// Builtins: append carries its arguments' taint; size queries and
	// the other builtins are clean (a map's length is deterministic
	// even though its order is not).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := t.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name != "append" {
				return token.NoPos, false
			}
			for _, arg := range call.Args {
				if pos, ok := t.eval(arg); ok {
					return pos, true
				}
			}
			return token.NoPos, false
		}
	}
	// Conversions pass taint through.
	if tv, ok := t.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return t.eval(call.Args[0])
		}
		return token.NoPos, false
	}
	// Package-local callee with a "returns tainted" summary.
	if callee := t.calleeFunc(call); callee != nil {
		if pos, ok := t.returns[callee]; ok {
			return pos, true
		}
		if callee.Pkg() == t.pass.Pkg {
			// Local functions are fully summarized; trust the summary.
			return token.NoPos, false
		}
	}
	// Unknown (out-of-module or dynamic) call: derived data keeps the
	// arguments' taint — strings.Join(keys, ",") is as unordered as
	// keys itself.
	for _, arg := range call.Args {
		if pos, ok := t.eval(arg); ok {
			return pos, true
		}
	}
	// A method on a tainted receiver yields tainted data.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isMethod := t.pass.TypesInfo.Selections[sel]; isMethod {
			return t.eval(sel.X)
		}
	}
	return token.NoPos, false
}

// calleeFunc resolves a call to its static *types.Func, or nil.
func (t *Tracker) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := t.pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := t.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// --- state updates --------------------------------------------------

// setTaint propagates into an assignment target. Clean assignment to
// a plain identifier is a strong update (the variable now holds clean
// data); fields, elements and dereferences only ever gain taint — a
// clean write through them cannot prove the rest of the structure
// clean.
func (t *Tracker) setTaint(lhs ast.Expr, pos token.Pos, tainted bool) {
	if lhs == nil {
		return
	}
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := t.objOf(x)
		if obj == nil {
			return
		}
		if tainted {
			t.setObjTaint(obj, pos)
		} else if _, had := t.taint[obj]; had {
			delete(t.taint, obj)
		}
	case *ast.SelectorExpr:
		if !tainted {
			return
		}
		if sel, ok := t.pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
			t.setObjTaint(sel.Obj(), pos)
			return
		}
		t.setTaint(x.X, pos, true)
	case *ast.IndexExpr:
		if !tainted {
			return
		}
		// m[k] = v stores by key: the map stays order-free. Slice and
		// array element writes taint the container.
		if _, isMap := typeOf(t.pass, x.X).Underlying().(*types.Map); isMap {
			return
		}
		t.setTaint(x.X, pos, true)
	case *ast.StarExpr:
		if tainted {
			t.setTaint(x.X, pos, true)
		}
	}
}

func (t *Tracker) setObjTaint(obj types.Object, pos token.Pos) {
	if obj == nil || obj.Name() == "_" {
		return
	}
	if _, ok := t.taint[obj]; !ok {
		t.taint[obj] = pos
		t.changed = true
	}
}

// untaint removes the taint of an argument cleansed in place.
func (t *Tracker) untaint(arg ast.Expr) {
	switch x := ast.Unparen(arg).(type) {
	case *ast.Ident:
		if obj := t.objOf(x); obj != nil {
			delete(t.taint, obj)
		}
	case *ast.SelectorExpr:
		if sel, ok := t.pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
			delete(t.taint, sel.Obj())
		}
	case *ast.UnaryExpr:
		t.untaint(x.X)
	case *ast.StarExpr:
		t.untaint(x.X)
	}
}

// objOf resolves an identifier to its object in Defs or Uses.
func (t *Tracker) objOf(id *ast.Ident) types.Object {
	if obj := t.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return t.pass.TypesInfo.Uses[id]
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return types.Typ[types.Invalid]
}

// Snapshot clones the current taint state; used by tests to assert
// propagation results.
func (t *Tracker) Snapshot() map[types.Object]token.Pos {
	return maps.Clone(t.taint)
}
