// Package apps contains the controller applications showcased by the
// HARMLESS demo (Fig. 1): L2 learning, the source-IP load balancer,
// the DMZ policy filter, and parental control.
package apps

import (
	"sync"

	"github.com/harmless-sdn/harmless/internal/controller"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

// Learning is a reactive L2 learning switch: unknown destinations are
// flooded, known ones get an exact-match flow installed with an idle
// timeout. It operates in a single table so it can terminate an app
// pipeline (filters in lower-numbered tables goto this one).
type Learning struct {
	controller.BaseApp
	// Table is the flow table this app owns.
	Table uint8
	// IdleTimeout for installed flows, seconds (0 = permanent).
	IdleTimeout uint16

	mu  sync.Mutex
	fdb map[uint64]map[pkt.MAC]uint32 // per-dpid MAC -> port
}

// Name implements controller.App.
func (l *Learning) Name() string { return "learning" }

// SwitchConnected installs the table-miss entry.
func (l *Learning) SwitchConnected(sw *controller.SwitchHandle) {
	if err := sw.InstallTableMiss(l.Table); err != nil {
		return
	}
}

// MACTable returns a snapshot of the learned addresses for a switch.
func (l *Learning) MACTable(dpid uint64) map[pkt.MAC]uint32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[pkt.MAC]uint32, len(l.fdb[dpid]))
	for mac, port := range l.fdb[dpid] {
		out[mac] = port
	}
	return out
}

// Lookup returns the learned port of mac on a switch.
func (l *Learning) Lookup(dpid uint64, mac pkt.MAC) (uint32, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	port, ok := l.fdb[dpid][mac]
	return port, ok
}

// PortStatus reacts to topology changes (a port added or removed —
// e.g. an incremental HARMLESS migration moving a host to a new
// logical port): all learned state for the switch is flushed and the
// table-miss entry reinstalled, so stale destination flows cannot
// blackhole traffic to relocated hosts.
func (l *Learning) PortStatus(sw *controller.SwitchHandle, ps *openflow.PortStatus) {
	l.mu.Lock()
	delete(l.fdb, sw.DPID())
	l.mu.Unlock()
	// Non-strict delete with an empty match clears the whole table
	// (including the miss entry), so reinstall it right after.
	_ = sw.FlowMod(&openflow.FlowMod{
		TableID: l.Table, Command: openflow.FlowDelete,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
	})
	_ = sw.InstallTableMiss(l.Table)
}

// PacketIn learns the source and either installs a forward flow or
// floods.
func (l *Learning) PacketIn(sw *controller.SwitchHandle, pi *openflow.PacketIn) {
	if pi.TableID != l.Table {
		return // another app's intercept (e.g. DNS), not an L2 miss
	}
	inPort, ok := pi.InPort()
	if !ok || len(pi.Data) < pkt.EthernetHeaderLen {
		return
	}
	var src, dst pkt.MAC
	copy(dst[:], pi.Data[0:6])
	copy(src[:], pi.Data[6:12])

	l.mu.Lock()
	if l.fdb == nil {
		l.fdb = make(map[uint64]map[pkt.MAC]uint32)
	}
	table := l.fdb[sw.DPID()]
	if table == nil {
		table = make(map[pkt.MAC]uint32)
		l.fdb[sw.DPID()] = table
	}
	if src.IsUnicast() {
		table[src] = inPort
	}
	outPort, known := table[dst]
	l.mu.Unlock()

	if !dst.IsUnicast() || !known {
		_ = sw.FloodPacket(inPort, pi.Data)
		return
	}
	// Install the forward flow and release the packet along it.
	match := openflow.Match{}
	match.WithEthDst(dst)
	_ = sw.FlowMod(&openflow.FlowMod{
		TableID: l.Table, Command: openflow.FlowAdd, Priority: 10,
		IdleTimeout: l.IdleTimeout,
		BufferID:    openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
		Match: match,
		Instructions: []openflow.Instruction{&openflow.InstrApplyActions{
			Actions: []openflow.Action{&openflow.ActionOutput{Port: outPort, MaxLen: 0xffff}},
		}},
	})
	_ = sw.PacketOut(inPort, pi.Data, &openflow.ActionOutput{Port: outPort, MaxLen: 0xffff})
}
