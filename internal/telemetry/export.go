package telemetry

import (
	"net"
	"sync"
	"time"

	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/stats"
)

// Exporter is the transport behind the aggregator: it receives fully
// encoded IPFIX-style messages. Implementations: UDPExporter (the
// wire), Collector (in-process, for tests and live views), and
// TeeExporter (both at once).
type Exporter interface {
	// ExportMessage sends one encoded message. The buffer is reused by
	// the encoder after the call returns; implementations must copy it
	// if they retain it.
	ExportMessage(msg []byte) error
	// Close releases the transport.
	Close() error
}

// UDPExporter ships messages to an IPFIX collector address over UDP.
type UDPExporter struct {
	conn net.Conn
}

// NewUDPExporter dials the collector address (host:port).
func NewUDPExporter(addr string) (*UDPExporter, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	return &UDPExporter{conn: conn}, nil
}

// ExportMessage implements Exporter.
func (u *UDPExporter) ExportMessage(msg []byte) error {
	_, err := u.conn.Write(msg)
	return err
}

// Close implements Exporter.
func (u *UDPExporter) Close() error { return u.conn.Close() }

// TeeExporter fans one message stream out to several exporters; the
// first error wins but every exporter still sees the message.
type TeeExporter []Exporter

// ExportMessage implements Exporter.
func (t TeeExporter) ExportMessage(msg []byte) error {
	var first error
	for _, e := range t {
		if err := e.ExportMessage(msg); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close implements Exporter.
func (t TeeExporter) Close() error {
	var first error
	for _, e := range t {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// AggregatorStats are the aggregator-side counters.
type AggregatorStats struct {
	Drained      uint64 // snapshots drained off the ring
	FlowRecords  uint64 // wire flow records exported
	Biflows      uint64 // records that merged a reverse direction
	Samples      uint64 // wire samples exported
	Messages     uint64 // messages handed to the exporter
	ExportErrors uint64
}

// biKey identifies a bidirectional flow: the endpoint pair in
// canonical (ordered) form plus the invariant header fields.
// Interfaces are direction-dependent and deliberately excluded; the
// MAC pair (also ordered) keeps distinct non-IP conversations — ARP
// exchanges, whose IPs and ports are all zero here — from collapsing
// into one bucket.
type biKey struct {
	aMAC, bMAC   [6]byte
	aIP, bIP     [4]byte
	aPort, bPort uint16
	proto        uint8
	ethType      uint16
	vlan         uint16
}

func macLess(a, b [6]byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// canonKey returns the canonical biflow key of k.
func canonKey(k *FlowKey) biKey {
	b := biKey{proto: k.Proto, ethType: k.EthType, vlan: k.VLANID}
	fwd := false
	for i := 0; i < 4; i++ {
		if k.IPSrc[i] != k.IPDst[i] {
			fwd = k.IPSrc[i] < k.IPDst[i]
			goto ordered
		}
	}
	if k.L4Src != k.L4Dst {
		fwd = k.L4Src < k.L4Dst
	} else {
		fwd = !macLess(k.EthDst, k.EthSrc)
	}
ordered:
	if fwd {
		b.aMAC, b.bMAC = k.EthSrc, k.EthDst
		b.aIP, b.bIP = k.IPSrc, k.IPDst
		b.aPort, b.bPort = k.L4Src, k.L4Dst
	} else {
		b.aMAC, b.bMAC = k.EthDst, k.EthSrc
		b.aIP, b.bIP = k.IPDst, k.IPSrc
		b.aPort, b.bPort = k.L4Dst, k.L4Src
	}
	return b
}

// pendingFlow is one merge bucket of the current aggregation window.
type pendingFlow struct {
	rec    WireRecord
	merged bool // a reverse-direction record was folded in
}

// Aggregator drains the table's shard ring, merges same-window
// records — including opposite directions of one conversation into a
// single biflow record — and exports encoded messages on a flush
// interval. One goroutine (Start/Stop); Flush may also be called
// synchronously at any time, which tests and shutdown paths use for
// determinism.
type Aggregator struct {
	table    *Table
	exporter Exporter
	interval time.Duration
	clock    netem.Clock

	mu      sync.Mutex
	enc     Encoder
	pending map[biKey]*pendingFlow
	order   []biKey // export in first-seen order for determinism
	samples []WireSample

	drained  stats.Counter
	flowsOut stats.Counter
	biflows  stats.Counter
	sampOut  stats.Counter
	msgs     stats.Counter
	errs     stats.Counter

	stopOnce sync.Once
	stopC    chan struct{}
	doneC    chan struct{}
}

// NewAggregator wires an aggregator between t's ring and exp. flush
// is the aggregation window (default 1s): how long opposite-direction
// records may wait to merge before the window is encoded and shipped.
func NewAggregator(t *Table, exp Exporter, flush time.Duration) *Aggregator {
	if flush <= 0 {
		flush = time.Second
	}
	return &Aggregator{
		table:    t,
		exporter: exp,
		interval: flush,
		clock:    netem.RealClock{},
		enc:      Encoder{Domain: 1},
		pending:  make(map[biKey]*pendingFlow),
		stopC:    make(chan struct{}),
		doneC:    make(chan struct{}),
	}
}

// SetClock makes the flush timer and export timestamps run on c —
// virtual time when c is a netem.Scheduler (the fleet simulator's
// export timers). Call before Start; the default is the wall clock.
func (a *Aggregator) SetClock(c netem.Clock) *Aggregator {
	if c != nil {
		a.clock = c
	}
	return a
}

// Clock returns the aggregator's timebase so companion views (the
// /flows HTTP handler) can timestamp against the same timeline.
func (a *Aggregator) Clock() netem.Clock { return a.clock }

// Start spawns the drain/flush loop.
func (a *Aggregator) Start() {
	go func() {
		defer close(a.doneC)
		tick := netem.NewTicker(a.clock, a.interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				a.Flush()
			case <-a.stopC:
				a.Flush()
				return
			}
		}
	}()
}

// Stop flushes once more and joins the loop. Idempotent. It does not
// close the exporter (the caller owns that).
func (a *Aggregator) Stop() {
	a.stopOnce.Do(func() {
		close(a.stopC)
		<-a.doneC
	})
}

// Flush synchronously drains the ring, merges, encodes and exports
// the current window. Safe from any goroutine.
func (a *Aggregator) Flush() {
	a.mu.Lock()
	defer a.mu.Unlock()
	ring := a.table.Ring()
	for {
		e, ok := ring.Pop()
		if !ok {
			break
		}
		a.drained.Inc()
		if e.Kind == ExportSample {
			a.samples = append(a.samples, WireSample{
				Key:      e.Key,
				Size:     uint32(e.Bytes),
				OutPort:  e.OutPort,
				Interval: uint32(a.table.cfg.SampleRate),
			})
			continue
		}
		a.merge(&e)
	}
	if len(a.pending) == 0 && len(a.samples) == 0 {
		return
	}
	flows := make([]WireRecord, 0, len(a.order))
	for _, bk := range a.order {
		p := a.pending[bk]
		flows = append(flows, p.rec)
		if p.merged {
			a.biflows.Inc()
		}
	}
	//harmless:allow-maporder export order follows arrival and forced-eviction order; evictLocked picks victims by map iteration deliberately (pseudo-random eviction) and the digest gates compare totals, not record order
	n, err := a.enc.Encode(flows, a.samples, uint32(a.clock.Now().Unix()), a.exporter.ExportMessage)
	a.msgs.Add(uint64(n))
	if err != nil {
		a.errs.Inc()
	}
	a.flowsOut.Add(uint64(len(flows)))
	a.sampOut.Add(uint64(len(a.samples)))
	a.pending = make(map[biKey]*pendingFlow)
	a.order = a.order[:0]
	a.samples = a.samples[:0]
}

// merge folds one flow snapshot into the window: same-direction
// records add to the forward counters, opposite-direction records to
// the reverse counters of the record that opened the bucket.
func (a *Aggregator) merge(e *Export) {
	bk := canonKey(&e.Key)
	p := a.pending[bk]
	if p == nil {
		p = &pendingFlow{rec: WireRecord{
			Key:       e.Key,
			Packets:   e.Packets,
			Bytes:     e.Bytes,
			First:     e.First,
			Last:      e.Last,
			OutPort:   e.OutPort,
			EndReason: e.EndReason,
		}}
		a.pending[bk] = p
		a.order = append(a.order, bk)
		return
	}
	sameDir := p.rec.Key.IPSrc == e.Key.IPSrc && p.rec.Key.L4Src == e.Key.L4Src &&
		p.rec.Key.IPDst == e.Key.IPDst && p.rec.Key.L4Dst == e.Key.L4Dst &&
		p.rec.Key.EthSrc == e.Key.EthSrc && p.rec.Key.EthDst == e.Key.EthDst
	if sameDir {
		p.rec.Packets += e.Packets
		p.rec.Bytes += e.Bytes
	} else {
		p.rec.RevPackets += e.Packets
		p.rec.RevBytes += e.Bytes
		p.merged = true
	}
	if e.First != 0 && (p.rec.First == 0 || e.First < p.rec.First) {
		p.rec.First = e.First
	}
	if e.Last > p.rec.Last {
		p.rec.Last = e.Last
	}
	if p.rec.EndReason < e.EndReason {
		p.rec.EndReason = e.EndReason
	}
}

// Stats snapshots the aggregator counters.
func (a *Aggregator) Stats() AggregatorStats {
	return AggregatorStats{
		Drained:      a.drained.Load(),
		FlowRecords:  a.flowsOut.Load(),
		Biflows:      a.biflows.Load(),
		Samples:      a.sampOut.Load(),
		Messages:     a.msgs.Load(),
		ExportErrors: a.errs.Load(),
	}
}
