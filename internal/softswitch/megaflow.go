package softswitch

import (
	"sync"
	"sync/atomic"

	"github.com/harmless-sdn/harmless/internal/flowtable"
	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/stats"
)

// The wildcard megaflow tier: one cached program per mask-equivalence
// class instead of per exact flow. The recorder accumulates the
// ConsultMask union of every table a slow-path walk traverses
// (pipeline.go); this tier then maps the packet key PROJECTED through
// that mask (flowtable.MatchMask.Apply) to the program. Any later
// packet agreeing on the consulted fields — whatever its other header
// values — projects to the same key and replays the same program,
// which is sound because no traversed table could have told the two
// packets apart (see MatchMask.Apply and Table.ConsultMask for the
// per-table argument; the walk-level one is induction over the goto
// chain: equal projections select equal entries, so equal
// instructions, so the same next table).
//
// Storage is tuple-space style, one exact-match sub-table per
// distinct mask (the megaflow analogue of the specializer's
// templates): a small RCU list of mask groups, each sharded like the
// exact tier. Lookup scans the groups in insertion order and takes
// the first valid hit — when two groups hold valid entries for the
// same packet, both were recorded against identical table revisions,
// so their programs are interchangeable. Validation, revision
// semantics and eviction policy mirror the microflow tier exactly;
// per-packet operations (meters, SELECT group hashing) are re-run per
// packet at replay, so sharing one entry across many flows does not
// blur them.

// megaflowMaxMasks bounds the group list: each group adds a
// projection+hash+probe to the miss path, so a pathological ruleset
// churning masks falls back to declining installs rather than
// degrading every lookup.
const megaflowMaxMasks = 16

// megaMask is one mask class: an exact-match table over projected
// keys, sharded like the exact tier.
type megaMask struct {
	mask   flowtable.MatchMask
	shards [cacheShards]cacheShard
}

// megaflowTier implements CacheTier over a tuple space of mask groups.
type megaflowTier struct {
	masks atomic.Pointer[[]*megaMask] // RCU: append-only under mu
	mu    sync.Mutex                  // serializes group creation
	cap   int                         // per-group per-shard entry cap
	pool  *entryPool
	stats stats.CacheCounters
}

// newMegaflowTier sizes a wildcard tier for totalCap entries per mask
// group.
func newMegaflowTier(totalCap int, pool *entryPool) *megaflowTier {
	perShard := totalCap / cacheShards
	if perShard < 1 {
		perShard = 1
	}
	t := &megaflowTier{cap: perShard, pool: pool}
	empty := []*megaMask{}
	t.masks.Store(&empty)
	return t
}

// Name implements CacheTier.
func (t *megaflowTier) Name() string { return "megaflow" }

// Exact implements CacheTier: a hit only proves the packet is in the
// entry's mask class, not that it is the recording flow.
func (t *megaflowTier) Exact() bool { return false }

// Counters implements CacheTier.
func (t *megaflowTier) Counters() *stats.CacheCounters { return &t.stats }

// Lookup implements CacheTier. The chain-provided full-key hash is
// unused: each group hashes its own projection of the key.
//
//harmless:hotpath
func (t *megaflowTier) Lookup(k *pkt.Key, _ uint64) *CacheEntry {
	return t.probe(k, true)
}

// probe scans the mask groups for a valid entry. slow selects the
// slow-path contract (count misses, remove stale entries); the batch
// probe passes false and leaves both to the per-frame path.
//
//harmless:hotpath
func (t *megaflowTier) probe(k *pkt.Key, slow bool) *CacheEntry {
	for _, g := range *t.masks.Load() {
		pk := g.mask.Apply(k)
		sh := &g.shards[uint32(pk.Hash())&(cacheShards-1)]
		sh.mu.RLock()
		mf := sh.flows[pk]
		sh.mu.RUnlock()
		if mf == nil {
			continue
		}
		if mf.valid() {
			t.stats.Hits.Inc()
			return mf
		}
		if slow {
			sh.mu.Lock()
			if sh.flows[pk] == mf {
				delete(sh.flows, pk)
				sh.mu.Unlock()
				t.pool.release(mf)
			} else {
				sh.mu.Unlock()
			}
			t.stats.Invalidations.Inc()
		}
	}
	if slow {
		t.stats.Misses.Inc()
	}
	return nil
}

// ProbeBatch implements CacheTier: per-frame group probes for the
// residue the exact tier left nil. The group list is usually tiny
// (one mask class per distinct ruleset shape), so per-frame probing
// without shard grouping is the right trade here.
//
//harmless:hotpath
func (t *megaflowTier) ProbeBatch(keys []pkt.Key, skip []bool, out []*CacheEntry, sc *ProbeScratch) {
	if len(*t.masks.Load()) == 0 {
		return
	}
	for i := range keys {
		if skip[i] || out[i] != nil || sc.ShardBypassed(sc.Hash[i]) {
			continue
		}
		out[i] = t.probe(&keys[i], false)
	}
}

// group returns the sub-table for a mask, creating it on first use
// (nil when the group list is full).
func (t *megaflowTier) group(mask flowtable.MatchMask) *megaMask {
	for _, g := range *t.masks.Load() {
		if g.mask == mask {
			return g
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := *t.masks.Load()
	for _, g := range cur {
		if g.mask == mask {
			return g
		}
	}
	if len(cur) >= megaflowMaxMasks {
		return nil
	}
	g := &megaMask{mask: mask}
	for i := range g.shards {
		g.shards[i].flows = make(map[pkt.Key]*CacheEntry)
	}
	next := make([]*megaMask, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = g
	t.masks.Store(&next)
	return g
}

// Install implements CacheTier: publish the entry under its mask
// class, declining when the mask-group table is full.
func (t *megaflowTier) Install(k *pkt.Key, mf *CacheEntry) bool {
	g := t.group(mf.mask)
	if g == nil {
		return false
	}
	pk := mf.mask.Apply(k)
	sh := &g.shards[uint32(pk.Hash())&(cacheShards-1)]
	var victim, old *CacheEntry
	sh.mu.Lock()
	if prev, exists := sh.flows[pk]; exists {
		old = prev
	} else if len(sh.flows) >= t.cap {
		for vk, v := range sh.flows {
			delete(sh.flows, vk)
			victim = v
			break
		}
	}
	sh.flows[pk] = mf
	sh.mu.Unlock()
	if old != nil {
		t.pool.release(old)
	}
	if victim != nil {
		t.pool.release(victim)
		t.stats.Evictions.Inc()
	}
	t.stats.Inserts.Inc()
	return true
}

// Invalidate implements CacheTier: drop everything (the group list
// itself stays; empty groups are cheap to probe and reappear with the
// same masks anyway).
func (t *megaflowTier) Invalidate() int {
	n := 0
	for _, g := range *t.masks.Load() {
		for i := range g.shards {
			sh := &g.shards[i]
			sh.mu.Lock()
			for k, mf := range sh.flows {
				delete(sh.flows, k)
				t.pool.release(mf)
				n++
			}
			sh.mu.Unlock()
		}
	}
	if n > 0 {
		t.stats.Invalidations.Add(uint64(n))
	}
	return n
}

// Sweep implements CacheTier: remove revision-stale entries.
func (t *megaflowTier) Sweep() int {
	n := 0
	for _, g := range *t.masks.Load() {
		for i := range g.shards {
			sh := &g.shards[i]
			sh.mu.Lock()
			for k, mf := range sh.flows {
				if !mf.valid() {
					delete(sh.flows, k)
					t.pool.release(mf)
					n++
				}
			}
			sh.mu.Unlock()
		}
	}
	if n > 0 {
		t.stats.Invalidations.Add(uint64(n))
	}
	return n
}

// Len implements CacheTier.
func (t *megaflowTier) Len() int {
	n := 0
	for _, g := range *t.masks.Load() {
		for i := range g.shards {
			g.shards[i].mu.RLock()
			n += len(g.shards[i].flows)
			g.shards[i].mu.RUnlock()
		}
	}
	return n
}

// MaskCount returns the number of live mask classes (diagnostics).
func (t *megaflowTier) MaskCount() int { return len(*t.masks.Load()) }
