package openflow

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Action type codes (ofp_action_type).
const (
	ActionTypeOutput   uint16 = 0
	ActionTypePushVLAN uint16 = 17
	ActionTypePopVLAN  uint16 = 18
	ActionTypeGroup    uint16 = 22
	ActionTypeDecNwTTL uint16 = 24
	ActionTypeSetField uint16 = 25
)

// Action is one OpenFlow action.
type Action interface {
	// ActionType returns the ofp_action_type code.
	ActionType() uint16
	// marshal encodes the action including its header and padding.
	marshal() ([]byte, error)
	// String renders the action in ovs-ofctl style.
	String() string
}

// ActionOutput forwards the packet to a port (possibly reserved:
// PortController, PortFlood, PortAll, PortInPort).
type ActionOutput struct {
	Port   uint32
	MaxLen uint16 // bytes to send to the controller; 0xffff = no buffer
}

// ActionType implements Action.
func (a *ActionOutput) ActionType() uint16 { return ActionTypeOutput }

func (a *ActionOutput) marshal() ([]byte, error) {
	buf := make([]byte, 16)
	binary.BigEndian.PutUint16(buf[0:2], ActionTypeOutput)
	binary.BigEndian.PutUint16(buf[2:4], 16)
	binary.BigEndian.PutUint32(buf[4:8], a.Port)
	binary.BigEndian.PutUint16(buf[8:10], a.MaxLen)
	return buf, nil
}

// String implements Action.
func (a *ActionOutput) String() string {
	switch a.Port {
	case PortController:
		return "output:CONTROLLER"
	case PortFlood:
		return "output:FLOOD"
	case PortAll:
		return "output:ALL"
	case PortInPort:
		return "output:IN_PORT"
	}
	return fmt.Sprintf("output:%d", a.Port)
}

// ActionPushVLAN pushes a new VLAN tag with the given TPID (0x8100 or
// 0x88a8).
type ActionPushVLAN struct {
	EtherType uint16
}

// ActionType implements Action.
func (a *ActionPushVLAN) ActionType() uint16 { return ActionTypePushVLAN }

func (a *ActionPushVLAN) marshal() ([]byte, error) {
	buf := make([]byte, 8)
	binary.BigEndian.PutUint16(buf[0:2], ActionTypePushVLAN)
	binary.BigEndian.PutUint16(buf[2:4], 8)
	binary.BigEndian.PutUint16(buf[4:6], a.EtherType)
	return buf, nil
}

// String implements Action.
func (a *ActionPushVLAN) String() string { return fmt.Sprintf("push_vlan:%#x", a.EtherType) }

// ActionPopVLAN removes the outermost VLAN tag.
type ActionPopVLAN struct{}

// ActionType implements Action.
func (a *ActionPopVLAN) ActionType() uint16 { return ActionTypePopVLAN }

func (a *ActionPopVLAN) marshal() ([]byte, error) {
	buf := make([]byte, 8)
	binary.BigEndian.PutUint16(buf[0:2], ActionTypePopVLAN)
	binary.BigEndian.PutUint16(buf[2:4], 8)
	return buf, nil
}

// String implements Action.
func (a *ActionPopVLAN) String() string { return "pop_vlan" }

// ActionGroup hands the packet to a group.
type ActionGroup struct {
	GroupID uint32
}

// ActionType implements Action.
func (a *ActionGroup) ActionType() uint16 { return ActionTypeGroup }

func (a *ActionGroup) marshal() ([]byte, error) {
	buf := make([]byte, 8)
	binary.BigEndian.PutUint16(buf[0:2], ActionTypeGroup)
	binary.BigEndian.PutUint16(buf[2:4], 8)
	binary.BigEndian.PutUint32(buf[4:8], a.GroupID)
	return buf, nil
}

// String implements Action.
func (a *ActionGroup) String() string { return fmt.Sprintf("group:%d", a.GroupID) }

// ActionDecNwTTL decrements the IP TTL.
type ActionDecNwTTL struct{}

// ActionType implements Action.
func (a *ActionDecNwTTL) ActionType() uint16 { return ActionTypeDecNwTTL }

func (a *ActionDecNwTTL) marshal() ([]byte, error) {
	buf := make([]byte, 8)
	binary.BigEndian.PutUint16(buf[0:2], ActionTypeDecNwTTL)
	binary.BigEndian.PutUint16(buf[2:4], 8)
	return buf, nil
}

// String implements Action.
func (a *ActionDecNwTTL) String() string { return "dec_ttl" }

// ActionSetField rewrites one header field, expressed as a single
// (non-masked) OXM TLV.
type ActionSetField struct {
	OXM OXM
}

// ActionType implements Action.
func (a *ActionSetField) ActionType() uint16 { return ActionTypeSetField }

func (a *ActionSetField) marshal() ([]byte, error) {
	wantLen, ok := oxmValueLen[a.OXM.Field]
	if !ok {
		return nil, fmt.Errorf("openflow: set_field: unsupported OXM field %d", a.OXM.Field)
	}
	if a.OXM.HasMask {
		return nil, fmt.Errorf("openflow: set_field must not be masked")
	}
	if len(a.OXM.Value) != wantLen {
		return nil, fmt.Errorf("openflow: set_field %s value length %d", oxmName[a.OXM.Field], len(a.OXM.Value))
	}
	raw := 4 + 4 + wantLen // action hdr + oxm hdr + value
	total := (raw + 7) / 8 * 8
	buf := make([]byte, total)
	binary.BigEndian.PutUint16(buf[0:2], ActionTypeSetField)
	binary.BigEndian.PutUint16(buf[2:4], uint16(total))
	hdr := uint32(OXMClassBasic)<<16 | uint32(a.OXM.Field)<<9 | uint32(wantLen)
	binary.BigEndian.PutUint32(buf[4:8], hdr)
	copy(buf[8:], a.OXM.Value)
	return buf, nil
}

// String implements Action.
func (a *ActionSetField) String() string { return "set_field:" + a.OXM.String() }

// marshalActions concatenates action encodings.
func marshalActions(actions []Action) ([]byte, error) {
	var buf bytes.Buffer
	for _, a := range actions {
		b, err := a.marshal()
		if err != nil {
			return nil, err
		}
		buf.Write(b)
	}
	return buf.Bytes(), nil
}

// unmarshalActions decodes a packed action list.
func unmarshalActions(data []byte) ([]Action, error) {
	var out []Action
	for len(data) > 0 {
		if len(data) < 8 {
			return nil, fmt.Errorf("openflow: truncated action header")
		}
		typ := binary.BigEndian.Uint16(data[0:2])
		alen := int(binary.BigEndian.Uint16(data[2:4]))
		if alen < 8 || alen%8 != 0 || alen > len(data) {
			return nil, fmt.Errorf("openflow: bad action length %d", alen)
		}
		body := data[:alen]
		switch typ {
		case ActionTypeOutput:
			if alen != 16 {
				return nil, fmt.Errorf("openflow: output action length %d", alen)
			}
			out = append(out, &ActionOutput{
				Port:   binary.BigEndian.Uint32(body[4:8]),
				MaxLen: binary.BigEndian.Uint16(body[8:10]),
			})
		case ActionTypePushVLAN:
			out = append(out, &ActionPushVLAN{EtherType: binary.BigEndian.Uint16(body[4:6])})
		case ActionTypePopVLAN:
			out = append(out, &ActionPopVLAN{})
		case ActionTypeGroup:
			out = append(out, &ActionGroup{GroupID: binary.BigEndian.Uint32(body[4:8])})
		case ActionTypeDecNwTTL:
			out = append(out, &ActionDecNwTTL{})
		case ActionTypeSetField:
			if alen < 12 {
				return nil, fmt.Errorf("openflow: set_field action too short")
			}
			hdr := binary.BigEndian.Uint32(body[4:8])
			field := uint8(hdr >> 9 & 0x7f)
			plen := int(hdr & 0xff)
			if uint16(hdr>>16) != OXMClassBasic || hdr&(1<<8) != 0 {
				return nil, fmt.Errorf("openflow: set_field bad OXM header %#x", hdr)
			}
			if 8+plen > alen {
				return nil, fmt.Errorf("openflow: set_field OXM overflows action")
			}
			out = append(out, &ActionSetField{OXM: OXM{
				Field: field,
				Value: append([]byte{}, body[8:8+plen]...),
			}})
		default:
			return nil, fmt.Errorf("openflow: unsupported action type %d", typ)
		}
		data = data[alen:]
	}
	return out, nil
}

// actionsString renders a list like "pop_vlan,output:2".
func actionsString(actions []Action) string {
	var b bytes.Buffer
	for i, a := range actions {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(a.String())
	}
	if b.Len() == 0 {
		return "drop"
	}
	return b.String()
}
