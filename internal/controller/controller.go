// Package controller implements the SDN controller HARMLESS connects
// SS_2 to: a small OpenFlow 1.3 controller core (connection handling,
// handshake, event dispatch, send helpers) plus the network
// applications the paper demos — an L2 learning switch, the
// source-IP load balancer, the DMZ access-policy app, and the
// parental-control app (package apps).
package controller

import (
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"github.com/harmless-sdn/harmless/internal/openflow"
)

// App is a controller application. Implementations receive switch
// lifecycle and asynchronous events; embed BaseApp for no-op defaults.
type App interface {
	// Name identifies the app in logs.
	Name() string
	// SwitchConnected fires after the handshake; proactive apps
	// install their flows here.
	SwitchConnected(sw *SwitchHandle)
	// PacketIn delivers a packet sent to the controller.
	PacketIn(sw *SwitchHandle, pi *openflow.PacketIn)
	// FlowRemoved delivers an expiry/delete notification.
	FlowRemoved(sw *SwitchHandle, fr *openflow.FlowRemoved)
	// PortStatus delivers a port change notification.
	PortStatus(sw *SwitchHandle, ps *openflow.PortStatus)
}

// BaseApp provides no-op App methods for embedding.
type BaseApp struct{}

// SwitchConnected implements App.
func (BaseApp) SwitchConnected(*SwitchHandle) {}

// PacketIn implements App.
func (BaseApp) PacketIn(*SwitchHandle, *openflow.PacketIn) {}

// FlowRemoved implements App.
func (BaseApp) FlowRemoved(*SwitchHandle, *openflow.FlowRemoved) {}

// PortStatus implements App.
func (BaseApp) PortStatus(*SwitchHandle, *openflow.PortStatus) {}

// SwitchHandle is the controller's view of one connected switch.
type SwitchHandle struct {
	conn     *openflow.Conn
	features *openflow.FeaturesReply

	mu   sync.Mutex
	data map[string]any // per-switch app state, keyed by app name
}

// DPID returns the switch's datapath id.
func (h *SwitchHandle) DPID() uint64 { return h.features.DatapathID }

// Features returns the handshake features.
func (h *SwitchHandle) Features() *openflow.FeaturesReply { return h.features }

// Send transmits any message to the switch.
func (h *SwitchHandle) Send(m openflow.Message) error { return h.conn.Send(m) }

// FlowMod sends a flow-mod.
func (h *SwitchHandle) FlowMod(fm *openflow.FlowMod) error {
	if fm.BufferID == 0 {
		fm.BufferID = openflow.NoBuffer
	}
	if fm.OutPort == 0 {
		fm.OutPort = openflow.PortAny
	}
	if fm.OutGroup == 0 {
		fm.OutGroup = openflow.GroupAny
	}
	return h.conn.Send(fm)
}

// InstallFlow is the common proactive install helper.
func (h *SwitchHandle) InstallFlow(table uint8, priority uint16, match openflow.Match, instrs ...openflow.Instruction) error {
	return h.FlowMod(&openflow.FlowMod{
		TableID: table, Command: openflow.FlowAdd, Priority: priority,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
		Match: match, Instructions: instrs,
	})
}

// InstallTableMiss installs the priority-0 send-to-controller entry.
func (h *SwitchHandle) InstallTableMiss(table uint8) error {
	return h.InstallFlow(table, 0, openflow.Match{},
		&openflow.InstrApplyActions{Actions: []openflow.Action{
			&openflow.ActionOutput{Port: openflow.PortController, MaxLen: 0xffff},
		}})
}

// InstallGotoMiss installs a priority-0 goto-table entry (pipeline
// chaining between apps).
func (h *SwitchHandle) InstallGotoMiss(table, next uint8) error {
	return h.InstallFlow(table, 0, openflow.Match{}, &openflow.InstrGotoTable{TableID: next})
}

// PacketOut injects a frame into the switch.
func (h *SwitchHandle) PacketOut(inPort uint32, data []byte, actions ...openflow.Action) error {
	return h.conn.Send(&openflow.PacketOut{
		BufferID: openflow.NoBuffer, InPort: inPort, Actions: actions, Data: data,
	})
}

// FloodPacket floods a frame from inPort.
func (h *SwitchHandle) FloodPacket(inPort uint32, data []byte) error {
	return h.PacketOut(inPort, data, &openflow.ActionOutput{Port: openflow.PortFlood, MaxLen: 0xffff})
}

// AppData returns per-switch storage for an app, creating it with
// init on first use.
func (h *SwitchHandle) AppData(app string, init func() any) any {
	h.mu.Lock()
	defer h.mu.Unlock()
	if v, ok := h.data[app]; ok {
		return v
	}
	v := init()
	h.data[app] = v
	return v
}

// Barrier sends a barrier request (the reply is consumed by the event
// loop; this is a write-side ordering fence).
func (h *SwitchHandle) Barrier() error {
	return h.conn.Send(&openflow.BarrierRequest{})
}

// Controller is the OpenFlow controller core.
type Controller struct {
	apps []App
	log  *log.Logger

	mu       sync.Mutex
	switches map[uint64]*SwitchHandle
}

// Option configures the controller.
type Option func(*Controller)

// WithLogger directs controller diagnostics to l.
func WithLogger(l *log.Logger) Option { return func(c *Controller) { c.log = l } }

// New creates a controller running the given apps. Event dispatch
// order follows the app order (filters first, forwarding last).
func New(apps []App, opts ...Option) *Controller {
	c := &Controller{
		apps:     apps,
		switches: make(map[uint64]*SwitchHandle),
		log:      log.New(io.Discard, "", 0),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Serve accepts switch connections on l until it closes.
func (c *Controller) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			if _, err := c.AttachConn(conn); err != nil {
				c.log.Printf("controller: attach: %v", err)
			}
		}()
	}
}

// AttachConn runs the handshake on an established transport and
// starts the event loop. It returns once the handshake is complete.
func (c *Controller) AttachConn(rw io.ReadWriteCloser) (*SwitchHandle, error) {
	conn := openflow.NewConn(rw)
	h := &SwitchHandle{conn: conn, data: make(map[string]any)}
	var early []openflow.Message
	features, err := conn.Handshake(func(m openflow.Message) { early = append(early, m) })
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("controller: handshake: %w", err)
	}
	h.features = features
	c.mu.Lock()
	c.switches[features.DatapathID] = h
	c.mu.Unlock()
	c.log.Printf("controller: switch %#x connected (%d tables)", features.DatapathID, features.NTables)

	for _, app := range c.apps {
		app.SwitchConnected(h)
	}
	for _, m := range early {
		c.dispatch(h, m)
	}
	go c.eventLoop(h)
	return h, nil
}

// Switch returns the handle for a datapath id.
func (c *Controller) Switch(dpid uint64) (*SwitchHandle, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.switches[dpid]
	return h, ok
}

// Switches returns all connected switch handles.
func (c *Controller) Switches() []*SwitchHandle {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*SwitchHandle, 0, len(c.switches))
	for _, h := range c.switches {
		out = append(out, h)
	}
	return out
}

func (c *Controller) eventLoop(h *SwitchHandle) {
	defer func() {
		h.conn.Close()
		c.mu.Lock()
		if c.switches[h.DPID()] == h {
			delete(c.switches, h.DPID())
		}
		c.mu.Unlock()
	}()
	for {
		m, err := h.conn.Recv()
		if err != nil {
			c.log.Printf("controller: switch %#x disconnected: %v", h.DPID(), err)
			return
		}
		c.dispatch(h, m)
	}
}

func (c *Controller) dispatch(h *SwitchHandle, m openflow.Message) {
	switch t := m.(type) {
	case *openflow.EchoRequest:
		_ = h.conn.Send(&openflow.EchoReply{Data: t.Data})
	case *openflow.PacketIn:
		for _, app := range c.apps {
			app.PacketIn(h, t)
		}
	case *openflow.FlowRemoved:
		for _, app := range c.apps {
			app.FlowRemoved(h, t)
		}
	case *openflow.PortStatus:
		for _, app := range c.apps {
			app.PortStatus(h, t)
		}
	case *openflow.Error:
		c.log.Printf("controller: switch %#x error: %v", h.DPID(), t)
	case *openflow.BarrierReply, *openflow.MultipartReply, *openflow.EchoReply, *openflow.Hello:
		// Consumed silently; synchronous readers are not supported in
		// the event loop (use ofctl for interactive stats).
	}
}
