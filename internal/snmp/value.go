package snmp

import (
	"fmt"

	"github.com/harmless-sdn/harmless/internal/pkt"
)

// Value is an SNMP variable value. The concrete types below mirror the
// SMIv2 base types the agent exposes.
type Value interface {
	// encode returns the BER TLV for the value.
	encode() ([]byte, error)
	// String renders the value for diagnostics.
	String() string
}

// Integer is INTEGER/Integer32.
type Integer int64

func (v Integer) encode() ([]byte, error) { return berWrap(tagInteger, berEncodeInt(int64(v))), nil }
func (v Integer) String() string          { return fmt.Sprintf("INTEGER: %d", int64(v)) }

// OctetString is OCTET STRING.
type OctetString []byte

func (v OctetString) encode() ([]byte, error) { return berWrap(tagOctetString, v), nil }
func (v OctetString) String() string          { return fmt.Sprintf("STRING: %q", []byte(v)) }

// Null is the NULL placeholder used in request varbinds.
type Null struct{}

func (Null) encode() ([]byte, error) { return berWrap(tagNull, nil), nil }
func (Null) String() string          { return "NULL" }

// ObjectIdentifier is OBJECT IDENTIFIER.
type ObjectIdentifier OID

func (v ObjectIdentifier) encode() ([]byte, error) {
	body, err := berEncodeOID(OID(v))
	if err != nil {
		return nil, err
	}
	return berWrap(tagOID, body), nil
}
func (v ObjectIdentifier) String() string { return "OID: " + OID(v).String() }

// IPAddress is IpAddress (4 bytes).
type IPAddress pkt.IPv4

func (v IPAddress) encode() ([]byte, error) { return berWrap(tagIPAddress, v[:]), nil }
func (v IPAddress) String() string          { return "IpAddress: " + pkt.IPv4(v).String() }

// Counter32 is a 32-bit wrapping counter.
type Counter32 uint32

func (v Counter32) encode() ([]byte, error) {
	return berWrap(tagCounter32, berEncodeUint(uint64(v))), nil
}
func (v Counter32) String() string { return fmt.Sprintf("Counter32: %d", uint32(v)) }

// Gauge32 is a 32-bit gauge.
type Gauge32 uint32

func (v Gauge32) encode() ([]byte, error) {
	return berWrap(tagGauge32, berEncodeUint(uint64(v))), nil
}
func (v Gauge32) String() string { return fmt.Sprintf("Gauge32: %d", uint32(v)) }

// TimeTicks is hundredths of seconds since an epoch.
type TimeTicks uint32

func (v TimeTicks) encode() ([]byte, error) {
	return berWrap(tagTimeTicks, berEncodeUint(uint64(v))), nil
}
func (v TimeTicks) String() string { return fmt.Sprintf("Timeticks: (%d)", uint32(v)) }

// Counter64 is a 64-bit counter.
type Counter64 uint64

func (v Counter64) encode() ([]byte, error) {
	return berWrap(tagCounter64, berEncodeUint(uint64(v))), nil
}
func (v Counter64) String() string { return fmt.Sprintf("Counter64: %d", uint64(v)) }

// NoSuchObject is the v2c exception reported for missing objects.
type NoSuchObject struct{}

func (NoSuchObject) encode() ([]byte, error) { return berWrap(tagNoSuchObject, nil), nil }
func (NoSuchObject) String() string          { return "No Such Object" }

// NoSuchInstance is the v2c exception for a missing instance.
type NoSuchInstance struct{}

func (NoSuchInstance) encode() ([]byte, error) { return berWrap(tagNoSuchInstance, nil), nil }
func (NoSuchInstance) String() string          { return "No Such Instance" }

// EndOfMibView terminates GETNEXT walks.
type EndOfMibView struct{}

func (EndOfMibView) encode() ([]byte, error) { return berWrap(tagEndOfMibView, nil), nil }
func (EndOfMibView) String() string          { return "End of MIB View" }

// decodeValue parses one BER TLV into a Value.
func decodeValue(tag byte, content []byte) (Value, error) {
	switch tag {
	case tagInteger:
		v, err := berDecodeInt(content)
		return Integer(v), err
	case tagOctetString:
		return OctetString(append([]byte{}, content...)), nil
	case tagNull:
		return Null{}, nil
	case tagOID:
		o, err := berDecodeOID(content)
		return ObjectIdentifier(o), err
	case tagIPAddress:
		if len(content) != 4 {
			return nil, fmt.Errorf("snmp: IpAddress length %d", len(content))
		}
		var ip IPAddress
		copy(ip[:], content)
		return ip, nil
	case tagCounter32:
		v, err := berDecodeUint(content)
		return Counter32(v), err
	case tagGauge32:
		v, err := berDecodeUint(content)
		return Gauge32(v), err
	case tagTimeTicks:
		v, err := berDecodeUint(content)
		return TimeTicks(v), err
	case tagCounter64:
		v, err := berDecodeUint(content)
		return Counter64(v), err
	case tagNoSuchObject:
		return NoSuchObject{}, nil
	case tagNoSuchInstance:
		return NoSuchInstance{}, nil
	case tagEndOfMibView:
		return EndOfMibView{}, nil
	}
	return nil, fmt.Errorf("snmp: unsupported value tag %#x", tag)
}
