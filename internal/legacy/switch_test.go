package legacy

import (
	"sync"
	"testing"
	"time"

	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

var (
	macA = pkt.MustMAC("02:00:00:00:00:0a")
	macB = pkt.MustMAC("02:00:00:00:00:0b")
	macC = pkt.MustMAC("02:00:00:00:00:0c")
)

// collector records frames delivered to the far end of a link.
type collector struct {
	mu     sync.Mutex
	frames [][]byte
}

func (c *collector) receiver() netem.Receiver {
	return func(f []byte) {
		c.mu.Lock()
		c.frames = append(c.frames, f)
		c.mu.Unlock()
	}
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func (c *collector) last() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.frames) == 0 {
		return nil
	}
	return c.frames[len(c.frames)-1]
}

func (c *collector) reset() {
	c.mu.Lock()
	c.frames = nil
	c.mu.Unlock()
}

// rig is a switch with each port attached to a sync link whose far end
// records frames.
type rig struct {
	sw    *Switch
	hosts map[int]*collector
	ports map[int]*netem.Port // far ends, for injecting frames
}

func newRig(t *testing.T, numPorts int, opts ...Option) *rig {
	t.Helper()
	r := &rig{
		sw:    NewSwitch("sw1", numPorts, opts...),
		hosts: make(map[int]*collector),
		ports: make(map[int]*netem.Port),
	}
	for i := 1; i <= numPorts; i++ {
		l := netem.NewLink(netem.LinkConfig{})
		t.Cleanup(l.Close)
		r.sw.AttachPort(i, l.A())
		col := &collector{}
		l.B().SetReceiver(col.receiver())
		r.hosts[i] = col
		r.ports[i] = l.B()
	}
	return r
}

// inject sends a frame into switch port n.
func (r *rig) inject(t *testing.T, n int, frame []byte) {
	t.Helper()
	if err := r.ports[n].Send(frame); err != nil {
		t.Fatalf("inject port %d: %v", n, err)
	}
}

func ethFrame(t testing.TB, src, dst pkt.MAC, payload string) []byte {
	t.Helper()
	pl := pkt.Payload([]byte(payload))
	f, err := pkt.Serialize(
		&pkt.Ethernet{Src: src, Dst: dst, EtherType: pkt.EtherTypeIPv4},
		&pl,
	)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func taggedFrame(t testing.TB, src, dst pkt.MAC, vid uint16, payload string) []byte {
	t.Helper()
	f, err := pkt.PushVLAN(ethFrame(t, src, dst, payload), pkt.EtherTypeDot1Q, vid)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestUnknownUnicastFloods(t *testing.T) {
	r := newRig(t, 4)
	r.inject(t, 1, ethFrame(t, macA, macB, "hello"))
	// All ports except ingress must receive it (VLAN 1 everywhere).
	for p := 2; p <= 4; p++ {
		if r.hosts[p].count() != 1 {
			t.Errorf("port %d got %d frames, want 1", p, r.hosts[p].count())
		}
	}
	if r.hosts[1].count() != 0 {
		t.Error("frame reflected to ingress port")
	}
}

func TestLearningUnicastForwarding(t *testing.T) {
	r := newRig(t, 4)
	// A on port 1 talks; B on port 2 answers; then A→B must go only
	// to port 2.
	r.inject(t, 1, ethFrame(t, macA, macB, "1"))
	r.inject(t, 2, ethFrame(t, macB, macA, "2"))
	for i := 1; i <= 4; i++ {
		r.hosts[i].reset()
	}
	r.inject(t, 1, ethFrame(t, macA, macB, "3"))
	if r.hosts[2].count() != 1 {
		t.Errorf("port 2 got %d, want 1", r.hosts[2].count())
	}
	for _, p := range []int{1, 3, 4} {
		if r.hosts[p].count() != 0 {
			t.Errorf("port %d got %d, want 0", p, r.hosts[p].count())
		}
	}
}

func TestSameSegmentFiltered(t *testing.T) {
	r := newRig(t, 4)
	// Learn both A and B on port 1 (hub behind the port).
	r.inject(t, 1, ethFrame(t, macA, macB, "x"))
	r.inject(t, 1, ethFrame(t, macB, macA, "y"))
	for i := 1; i <= 4; i++ {
		r.hosts[i].reset()
	}
	// A→B where both live on port 1: the bridge must filter.
	r.inject(t, 1, ethFrame(t, macA, macB, "z"))
	for p := 1; p <= 4; p++ {
		if r.hosts[p].count() != 0 {
			t.Errorf("port %d got %d, want 0 (filtered)", p, r.hosts[p].count())
		}
	}
}

func TestBroadcastFloodsWithinVLAN(t *testing.T) {
	r := newRig(t, 4)
	if err := r.sw.SetPortAccess(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := r.sw.SetPortAccess(2, 10); err != nil {
		t.Fatal(err)
	}
	// Ports 3,4 stay in VLAN 1.
	r.inject(t, 1, ethFrame(t, macA, pkt.BroadcastMAC, "bc"))
	if r.hosts[2].count() != 1 {
		t.Errorf("same-VLAN port got %d", r.hosts[2].count())
	}
	if r.hosts[3].count() != 0 || r.hosts[4].count() != 0 {
		t.Error("broadcast leaked across VLANs")
	}
}

func TestVLANIsolationUnicast(t *testing.T) {
	r := newRig(t, 4)
	_ = r.sw.SetPortAccess(1, 10)
	_ = r.sw.SetPortAccess(2, 20)
	// Learn A in VLAN 10 @1, B in VLAN 20 @2.
	r.inject(t, 1, ethFrame(t, macA, pkt.BroadcastMAC, "a"))
	r.inject(t, 2, ethFrame(t, macB, pkt.BroadcastMAC, "b"))
	for i := 1; i <= 4; i++ {
		r.hosts[i].reset()
	}
	// A→B unicast: B is unknown in VLAN 10, so flood within VLAN 10
	// only — port 2 must NOT see it.
	r.inject(t, 1, ethFrame(t, macA, macB, "x"))
	if r.hosts[2].count() != 0 {
		t.Error("unicast leaked across VLANs")
	}
}

func TestAccessEgressUntagged(t *testing.T) {
	r := newRig(t, 2)
	_ = r.sw.SetPortAccess(1, 10)
	_ = r.sw.SetPortAccess(2, 10)
	r.inject(t, 1, ethFrame(t, macA, pkt.BroadcastMAC, "u"))
	f := r.hosts[2].last()
	if f == nil {
		t.Fatal("no frame")
	}
	if pkt.HasVLAN(f) {
		t.Error("access egress must be untagged")
	}
}

func TestTrunkEgressTagged(t *testing.T) {
	r := newRig(t, 2)
	_ = r.sw.SetPortAccess(1, 101)
	_ = r.sw.SetPortTrunk(2, 1, []uint16{101, 102})
	r.inject(t, 1, ethFrame(t, macA, pkt.BroadcastMAC, "t"))
	f := r.hosts[2].last()
	if f == nil {
		t.Fatal("no frame on trunk")
	}
	vid, ok := pkt.VLANID(f)
	if !ok || vid != 101 {
		t.Errorf("trunk frame vid=%d ok=%v, want tagged 101", vid, ok)
	}
}

func TestTrunkIngressTaggedToAccessUntagged(t *testing.T) {
	// The HARMLESS return path: frame arrives on the trunk tagged with
	// the access port's VLAN and must exit untagged on that port.
	r := newRig(t, 3)
	_ = r.sw.SetPortAccess(1, 101)
	_ = r.sw.SetPortAccess(2, 102)
	_ = r.sw.SetPortTrunk(3, 1, []uint16{101, 102})
	r.inject(t, 3, taggedFrame(t, macC, pkt.BroadcastMAC, 102, "ret"))
	if r.hosts[1].count() != 0 {
		t.Error("VLAN 102 frame delivered to VLAN 101 port")
	}
	f := r.hosts[2].last()
	if f == nil {
		t.Fatal("no frame on access port 2")
	}
	if pkt.HasVLAN(f) {
		t.Error("access egress must be untagged")
	}
}

func TestTrunkDisallowedVLANDropped(t *testing.T) {
	r := newRig(t, 2)
	_ = r.sw.SetPortAccess(1, 30)
	_ = r.sw.SetPortTrunk(2, 1, []uint16{10, 20})
	r.inject(t, 2, taggedFrame(t, macA, pkt.BroadcastMAC, 30, "no"))
	if r.hosts[1].count() != 0 {
		t.Error("disallowed VLAN forwarded")
	}
	if d := r.sw.PortCounters(2).RxDropped.Load(); d != 1 {
		t.Errorf("RxDropped = %d", d)
	}
}

func TestTrunkNativeVLANUntagged(t *testing.T) {
	r := newRig(t, 2)
	_ = r.sw.SetPortAccess(1, 99)
	_ = r.sw.SetPortTrunk(2, 99, nil) // native 99, all allowed
	r.inject(t, 1, ethFrame(t, macA, pkt.BroadcastMAC, "n"))
	f := r.hosts[2].last()
	if f == nil {
		t.Fatal("no frame")
	}
	if pkt.HasVLAN(f) {
		t.Error("native VLAN must egress untagged on trunk")
	}
	// And untagged ingress on the trunk classifies into native VLAN.
	r.hosts[1].reset()
	r.inject(t, 2, ethFrame(t, macB, pkt.BroadcastMAC, "m"))
	if r.hosts[1].count() != 1 {
		t.Error("native-classified frame not delivered to access port")
	}
}

func TestAccessPortRejectsForeignTag(t *testing.T) {
	r := newRig(t, 2)
	_ = r.sw.SetPortAccess(1, 10)
	_ = r.sw.SetPortAccess(2, 10)
	r.inject(t, 1, taggedFrame(t, macA, pkt.BroadcastMAC, 20, "bad"))
	if r.hosts[2].count() != 0 {
		t.Error("foreign-tagged frame accepted on access port")
	}
	// Matching tag is accepted.
	r.inject(t, 1, taggedFrame(t, macA, pkt.BroadcastMAC, 10, "ok"))
	if r.hosts[2].count() != 1 {
		t.Error("own-VLAN tagged frame rejected on access port")
	}
}

func TestShutdownPort(t *testing.T) {
	r := newRig(t, 2)
	if err := r.sw.SetPortShutdown(1, true); err != nil {
		t.Fatal(err)
	}
	r.inject(t, 1, ethFrame(t, macA, pkt.BroadcastMAC, "x"))
	if r.hosts[2].count() != 0 {
		t.Error("shutdown port forwarded traffic")
	}
	// Egress side: traffic must not exit a shutdown port either.
	r.inject(t, 2, ethFrame(t, macB, pkt.BroadcastMAC, "y"))
	if r.hosts[1].count() != 0 {
		t.Error("traffic egressed a shutdown port")
	}
	if err := r.sw.SetPortShutdown(1, false); err != nil {
		t.Fatal(err)
	}
	r.inject(t, 2, ethFrame(t, macB, pkt.BroadcastMAC, "z"))
	if r.hosts[1].count() != 1 {
		t.Error("re-enabled port did not forward")
	}
}

func TestRuntFrameCountsError(t *testing.T) {
	r := newRig(t, 2)
	r.inject(t, 1, []byte{1, 2, 3})
	if e := r.sw.PortCounters(1).RxErrors.Load(); e != 1 {
		t.Errorf("RxErrors = %d", e)
	}
}

func TestCounters(t *testing.T) {
	r := newRig(t, 2)
	f := ethFrame(t, macA, pkt.BroadcastMAC, "count")
	r.inject(t, 1, f)
	if rx := r.sw.PortCounters(1).RxPackets.Load(); rx != 1 {
		t.Errorf("RxPackets = %d", rx)
	}
	if tx := r.sw.PortCounters(2).TxPackets.Load(); tx != 1 {
		t.Errorf("TxPackets = %d", tx)
	}
	if b := r.sw.PortCounters(2).TxBytes.Load(); b != uint64(len(f)) {
		t.Errorf("TxBytes = %d, want %d", b, len(f))
	}
}

func TestConfigManagement(t *testing.T) {
	sw := NewSwitch("edge-1", 8)
	if sw.NumPorts() != 8 {
		t.Errorf("NumPorts = %d", sw.NumPorts())
	}
	if err := sw.SetPortAccess(99, 10); err == nil {
		t.Error("expected error for unknown port")
	}
	if err := sw.SetPortAccess(1, 0); err == nil {
		t.Error("expected error for VLAN 0")
	}
	if err := sw.SetPortTrunk(1, 1, []uint16{5000}); err == nil {
		t.Error("expected error for out-of-range allowed VLAN")
	}
	if err := sw.DeclareVLAN(101, "harmless-p1"); err != nil {
		t.Fatal(err)
	}
	cfg := sw.Config()
	if cfg.VLANs[101] != "harmless-p1" {
		t.Errorf("VLANs: %v", cfg.VLANs)
	}
	// Config is a copy: mutating it must not affect the switch.
	cfg.VLANs[999] = "ghost"
	if _, ok := sw.Config().VLANs[999]; ok {
		t.Error("Config() returned a live reference")
	}
	sw.SetHostname("edge-renamed")
	if sw.Hostname() != "edge-renamed" {
		t.Error("hostname not applied")
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	sw.RemoveVLAN(101)
	if _, ok := sw.Config().VLANs[101]; ok {
		t.Error("VLAN not removed")
	}
}

func TestFDBAging(t *testing.T) {
	clk := netem.NewManualClock()
	r := newRig(t, 3, WithClock(clk), WithFDBAging(10*time.Second))
	r.inject(t, 1, ethFrame(t, macA, pkt.BroadcastMAC, "l"))
	r.inject(t, 2, ethFrame(t, macB, macA, "to-a"))
	if r.hosts[1].count() != 1 {
		t.Fatal("learned forwarding failed")
	}
	if r.hosts[3].count() != 1 {
		t.Fatal("initial broadcast should reach port 3")
	}
	r.hosts[1].reset()
	r.hosts[3].reset()
	clk.Advance(11 * time.Second)
	// A's entry expired: unicast to A floods again.
	r.inject(t, 2, ethFrame(t, macB, macA, "to-a-again"))
	if r.hosts[3].count() != 1 {
		t.Error("expired entry should cause flooding")
	}
}

func TestFDBOperations(t *testing.T) {
	clk := netem.NewManualClock()
	f := NewFDB(5*time.Second, 2, clk)
	f.Learn(1, macA, 1)
	f.Learn(1, macB, 2)
	if f.Len() != 2 {
		t.Errorf("Len = %d", f.Len())
	}
	// Table full: macC not learned.
	f.Learn(1, macC, 3)
	if _, ok := f.Lookup(1, macC); ok {
		t.Error("macC learned despite full table")
	}
	// After aging, learning evicts an expired entry.
	clk.Advance(6 * time.Second)
	f.Learn(1, macC, 3)
	if p, ok := f.Lookup(1, macC); !ok || p != 3 {
		t.Error("macC not learned after eviction")
	}
	// Static entries survive aging and are not displaced.
	f.AddStatic(2, macA, 7)
	clk.Advance(time.Hour)
	if p, ok := f.Lookup(2, macA); !ok || p != 7 {
		t.Error("static entry lost")
	}
	f.Learn(2, macA, 9)
	if p, _ := f.Lookup(2, macA); p != 7 {
		t.Error("static entry displaced by learning")
	}
	// Broadcast source never learned.
	f.Learn(1, pkt.BroadcastMAC, 1)
	if _, ok := f.Lookup(1, pkt.BroadcastMAC); ok {
		t.Error("broadcast learned")
	}
	// Sweep removes expired dynamics but keeps statics.
	removed := f.Sweep()
	if removed == 0 {
		t.Error("sweep removed nothing")
	}
	if _, ok := f.Lookup(2, macA); !ok {
		t.Error("static swept")
	}
	// FlushVLAN.
	f.Learn(3, macB, 4)
	f.FlushVLAN(3)
	if _, ok := f.Lookup(3, macB); ok {
		t.Error("FlushVLAN did not remove entry")
	}
}

func TestFDBEntriesSorted(t *testing.T) {
	f := NewFDB(0, 0, nil)
	f.Learn(2, macB, 1)
	f.Learn(1, macC, 2)
	f.Learn(1, macA, 3)
	es := f.Entries()
	if len(es) != 3 {
		t.Fatalf("Entries: %d", len(es))
	}
	if es[0].VLAN != 1 || es[0].MAC != macA || es[2].VLAN != 2 {
		t.Errorf("sort order: %+v", es)
	}
}

func TestAttachUnknownPortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	sw := NewSwitch("x", 2)
	l := netem.NewLink(netem.LinkConfig{})
	defer l.Close()
	sw.AttachPort(3, l.A())
}

func TestPortModeString(t *testing.T) {
	if ModeAccess.String() != "access" || ModeTrunk.String() != "trunk" {
		t.Error("mode strings")
	}
	if PortMode(9).String() == "" {
		t.Error("unknown mode string empty")
	}
}

func TestUptimeAndModel(t *testing.T) {
	clk := netem.NewManualClock()
	sw := NewSwitch("u", 1, WithClock(clk), WithModel("TestModel 9000"))
	clk.Advance(90 * time.Second)
	if sw.Uptime() != 90*time.Second {
		t.Errorf("Uptime = %v", sw.Uptime())
	}
	if sw.Model() != "TestModel 9000" {
		t.Errorf("Model = %q", sw.Model())
	}
	if sw.PortAttached(1) {
		t.Error("port should not be attached")
	}
}

func BenchmarkLegacySwitchKnownUnicast(b *testing.B) {
	sw := NewSwitch("bench", 4)
	links := make([]*netem.Link, 5)
	for i := 1; i <= 4; i++ {
		links[i] = netem.NewLink(netem.LinkConfig{})
		defer links[i].Close()
		sw.AttachPort(i, links[i].A())
		links[i].B().SetReceiver(func([]byte) {})
	}
	// Pre-learn.
	fa := ethFrame(b, macA, macB, "w")
	fb := ethFrame(b, macB, macA, "w")
	_ = links[1].B().Send(fa)
	_ = links[2].B().Send(fb)
	frame := ethFrame(b, macA, macB, "payload-bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = links[1].B().Send(frame)
	}
}
