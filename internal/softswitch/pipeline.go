package softswitch

import (
	"encoding/binary"

	"github.com/harmless-sdn/harmless/internal/flowtable"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

// The per-frame entry point Receive and the vector entry point
// ReceiveBatch live in batch.go; both funnel into the walk below with
// a txContext that coalesces egress per port. With the microflow cache
// enabled (the default) a frame's header key is first probed against
// the cache; a valid hit replays the pre-resolved megaflow program, a
// miss takes the full pipeline walk and records a new megaflow.

// replayMicroflow executes a cached megaflow's operation program.
// Credits, meters, groups, TTL checks and packet-ins are re-executed
// per packet in recorded order, so their per-packet semantics — which
// tables get credited before a meter drop, with which frame size —
// are identical to the pipeline walk that was recorded.
func (s *Switch) replayMicroflow(mf *CacheEntry, inPort uint32, frame []byte, tx *txContext) {
	for i := range mf.ops {
		op := &mf.ops[i]
		switch op.kind {
		case opCredit:
			op.table.CreditHit(op.entry, len(frame))
			continue
		case opMeter:
			if !s.meters.Pass(op.meterID, len(frame)) {
				s.drops.Inc()
				return
			}
			continue
		}
		var res applyResult
		frame, res = s.applyActions(op.acts, inPort, frame, op.tableID, op.entry, tx)
		if res != applyRetained {
			return // frame consumed (output, group) or dropped
		}
	}
	// Program ran to completion without consuming the frame: the walk
	// ended with an empty action set or one lacking an output. Drop,
	// exactly as runPipelineKeyed does.
	s.drops.Inc()
}

// runPipeline extracts the frame's key and executes tables from
// startTable onwards (the uncached path; packet-out and OUTPUT:TABLE
// restarts come through here).
func (s *Switch) runPipeline(inPort uint32, frame []byte, startTable uint8, tx *txContext) {
	var key pkt.Key
	if err := pkt.ExtractKey(frame, inPort, &key); err != nil {
		s.drops.Inc()
		return
	}
	s.runPipelineKeyed(&key, inPort, frame, startTable, nil, tx)
}

// runPipelineKeyed executes tables from startTable onwards for an
// already-extracted key. When rec is non-nil every consulted table
// (with its pre-lookup revision) and every executed operation is
// recorded so the walk's decision can be cached; the table's consult
// mask is folded into rec.mask at the same point, so the recording
// also captures the minimal wildcard mask the megaflow tier needs.
// The revision is read *before* the lookup: a flow-mod racing the
// walk then leaves the recording stale-by-revision rather than
// wrongly valid.
func (s *Switch) runPipelineKeyed(key *pkt.Key, inPort uint32, frame []byte, startTable uint8, rec *CacheEntry, tx *txContext) {
	var actionSet []openflow.Action
	tableID := startTable
	for {
		var rev uint64
		if rec != nil {
			rev = s.tables[tableID].Version()
			rec.mask = rec.mask.Union(s.tables[tableID].ConsultMask())
		}
		entry := s.lookup(tableID, key, len(frame))
		if entry == nil {
			// OpenFlow 1.3 table-miss without a miss entry: drop. Not
			// cached — a later flow-add must see the packet's key again.
			if rec != nil {
				rec.uncacheable = true
			}
			s.drops.Inc()
			return
		}
		if rec != nil {
			rec.deps = append(rec.deps, tableDep{table: s.tables[tableID], rev: rev})
			rec.ops = append(rec.ops, microOp{kind: opCredit, table: s.tables[tableID], entry: entry})
		}
		next := int16(-1)
		for _, instr := range entry.Instrs() {
			switch in := instr.(type) {
			case *openflow.InstrMeter:
				if rec != nil {
					rec.ops = append(rec.ops, microOp{kind: opMeter, meterID: in.MeterID})
				}
				if !s.meters.Pass(in.MeterID, len(frame)) {
					// The rest of the walk was never observed; a future
					// packet of this flow may pass the meter, so the
					// truncated program must not be cached.
					if rec != nil {
						rec.uncacheable = true
					}
					s.drops.Inc()
					return
				}
			case *openflow.InstrApplyActions:
				if rec != nil {
					rec.ops = append(rec.ops, microOp{kind: opApply, acts: in.Actions, tableID: tableID, entry: entry})
				}
				var res applyResult
				frame, res = s.applyActions(in.Actions, inPort, frame, tableID, entry, tx)
				if res != applyRetained {
					// A per-packet drop truncates the observed program;
					// consumption by output/group is structural and the
					// recording stays cacheable.
					if rec != nil && res == applyDropped {
						rec.uncacheable = true
					}
					return
				}
			case *openflow.InstrClearActions:
				actionSet = actionSet[:0]
			case *openflow.InstrWriteActions:
				actionSet = mergeActionSet(actionSet, in.Actions)
			case *openflow.InstrGotoTable:
				next = int16(in.TableID)
			}
		}
		if next < 0 || int(next) >= len(s.tables) || uint8(next) <= tableID {
			break // end of pipeline
		}
		tableID = uint8(next)
	}

	// Execute the accumulated action set (spec order: pop, push,
	// set-field/dec-ttl, group, output last).
	if len(actionSet) == 0 {
		s.drops.Inc()
		return
	}
	ordered := orderActionSet(actionSet)
	if rec != nil {
		rec.ops = append(rec.ops, microOp{kind: opApply, acts: ordered, tableID: tableID})
	}
	if frame, res := s.applyActions(ordered, inPort, frame, tableID, nil, tx); res == applyRetained && frame != nil {
		// Action set without output: drop (already accounted inside
		// applyActions when it falls through).
		s.drops.Inc()
	} else if rec != nil && res == applyDropped {
		rec.uncacheable = true
	}
}

// lookup consults the fast path when specialization is enabled,
// falling back to (and recompiling from) the generic table.
func (s *Switch) lookup(tableID uint8, key *pkt.Key, size int) *flowtable.Entry {
	t := s.tables[tableID]
	if !s.specialize {
		return t.Lookup(key, size)
	}
	st := s.fast[tableID].Load()
	if st == nil || (st.fp == nil && st.failedVersion != t.Version()+1) || (st.fp != nil && !st.fp.Valid(t)) {
		// (Re)compile. failedVersion is stored +1 so the zero value
		// never suppresses compilation.
		if fp, ok := flowtable.Compile(t); ok {
			st = &fastState{fp: fp}
		} else {
			st = &fastState{failedVersion: t.Version() + 1}
		}
		s.fast[tableID].Store(st)
	}
	if st.fp == nil {
		return t.Lookup(key, size)
	}
	e := st.fp.Lookup(key)
	if e != nil {
		e.Hit(size, s.clock.Now())
	}
	return e
}

// mergeActionSet implements write-actions semantics: one action per
// type, later writes replace earlier ones.
func mergeActionSet(set, add []openflow.Action) []openflow.Action {
	for _, a := range add {
		replaced := false
		for i, old := range set {
			if old.ActionType() == a.ActionType() {
				// set-field actions are per-field.
				if sf, ok := a.(*openflow.ActionSetField); ok {
					if osf, ok := old.(*openflow.ActionSetField); ok && osf.OXM.Field != sf.OXM.Field {
						continue
					}
				}
				set[i] = a
				replaced = true
				break
			}
		}
		if !replaced {
			set = append(set, a)
		}
	}
	return set
}

// orderActionSet sorts the action set into spec execution order.
func orderActionSet(set []openflow.Action) []openflow.Action {
	rank := func(a openflow.Action) int {
		switch a.ActionType() {
		case openflow.ActionTypePopVLAN:
			return 0
		case openflow.ActionTypePushVLAN:
			return 1
		case openflow.ActionTypeDecNwTTL:
			return 2
		case openflow.ActionTypeSetField:
			return 3
		case openflow.ActionTypeGroup:
			return 4
		case openflow.ActionTypeOutput:
			return 5
		}
		return 3
	}
	out := make([]openflow.Action, len(set))
	copy(out, set)
	// Insertion sort: the set is tiny and must be stable.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && rank(out[j]) < rank(out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// applyResult classifies how an action list left the frame. The
// distinction between consumed and dropped matters to the microflow
// recorder: consumption by output/group is decided by the program
// structure alone (every packet of the flow ends there), while a drop
// is a per-packet condition (TTL reached zero, malformed tag) after
// which the rest of the walk is unknown — such walks must not be
// cached.
type applyResult int

const (
	applyRetained applyResult = iota // caller keeps the (possibly reallocated) frame
	applyConsumed                    // output/group took ownership
	applyDropped                     // frame dropped by a per-packet condition
)

// applyActions executes an action list on the frame. It returns the
// (possibly reallocated) frame and applyRetained if the caller keeps
// ownership; otherwise the frame was consumed or dropped. entry may be
// nil (action-set execution).
func (s *Switch) applyActions(actions []openflow.Action, inPort uint32, frame []byte, tableID uint8, entry *flowtable.Entry, tx *txContext) ([]byte, applyResult) {
	for i, a := range actions {
		switch act := a.(type) {
		case *openflow.ActionPushVLAN:
			nf, err := pkt.PushVLAN(frame, act.EtherType, 0)
			if err != nil {
				s.drops.Inc()
				return nil, applyDropped
			}
			frame = nf
		case *openflow.ActionPopVLAN:
			nf, err := pkt.PopVLAN(frame)
			if err != nil {
				s.drops.Inc()
				return nil, applyDropped
			}
			frame = nf
		case *openflow.ActionDecNwTTL:
			ttl, err := pkt.DecIPv4TTL(frame)
			if err != nil || ttl == 0 {
				s.drops.Inc()
				return nil, applyDropped
			}
		case *openflow.ActionSetField:
			if err := s.applySetField(act, frame); err != nil {
				s.drops.Inc()
				return nil, applyDropped
			}
		case *openflow.ActionGroup:
			s.applyGroup(act.GroupID, inPort, frame, tableID, tx)
			return nil, applyConsumed // group consumes the frame
		case *openflow.ActionOutput:
			last := i == len(actions)-1
			s.output(act, inPort, frame, tableID, entry, last, tx)
			if last {
				return nil, applyConsumed
			}
			// More actions follow: they operate on a fresh copy since
			// output transferred ownership.
			cp := make([]byte, len(frame))
			copy(cp, frame)
			frame = cp
		}
	}
	return frame, applyRetained
}

// applySetField rewrites one field in place.
func (s *Switch) applySetField(act *openflow.ActionSetField, frame []byte) error {
	o := act.OXM
	switch o.Field {
	case openflow.OXMVLANVID:
		vid := binary.BigEndian.Uint16(o.Value) &^ openflow.OXMVIDPresent
		return pkt.SetVLANID(frame, vid)
	case openflow.OXMVLANPCP:
		return pkt.SetVLANPCP(frame, o.Value[0])
	case openflow.OXMEthDst:
		var m pkt.MAC
		copy(m[:], o.Value)
		return pkt.SetEthDst(frame, m)
	case openflow.OXMEthSrc:
		var m pkt.MAC
		copy(m[:], o.Value)
		return pkt.SetEthSrc(frame, m)
	case openflow.OXMIPv4Src:
		var ip pkt.IPv4
		copy(ip[:], o.Value)
		return pkt.SetIPv4Src(frame, ip)
	case openflow.OXMIPv4Dst:
		var ip pkt.IPv4
		copy(ip[:], o.Value)
		return pkt.SetIPv4Dst(frame, ip)
	case openflow.OXMTCPSrc, openflow.OXMUDPSrc:
		return pkt.SetL4Src(frame, binary.BigEndian.Uint16(o.Value))
	case openflow.OXMTCPDst, openflow.OXMUDPDst:
		return pkt.SetL4Dst(frame, binary.BigEndian.Uint16(o.Value))
	}
	return nil // unsupported set-fields are ignored (logged by vet of flow-mods in a real switch)
}

// applyGroup executes a group on the frame (consuming it).
func (s *Switch) applyGroup(groupID, inPort uint32, frame []byte, tableID uint8, tx *txContext) {
	g, ok := s.groups.Get(groupID)
	if !ok {
		s.drops.Inc()
		return
	}
	g.Hit(len(frame))
	switch g.Type {
	case openflow.GroupTypeAll:
		// Replicate to every bucket.
		for i := range g.Buckets {
			cp := make([]byte, len(frame))
			copy(cp, frame)
			if f, res := s.applyActions(g.Buckets[i].Actions, inPort, cp, tableID, nil, tx); res == applyRetained && f != nil {
				s.drops.Inc()
			}
		}
	default:
		var key pkt.Key
		if err := pkt.ExtractKey(frame, inPort, &key); err != nil {
			s.drops.Inc()
			return
		}
		b := g.SelectBucket(flowtable.FlowHash(&key))
		if b == nil {
			s.drops.Inc()
			return
		}
		if f, res := s.applyActions(b.Actions, inPort, frame, tableID, nil, tx); res == applyRetained && f != nil {
			s.drops.Inc()
		}
	}
}

// output realizes the OUTPUT action, including reserved ports. last
// indicates the frame can be transferred without copying.
func (s *Switch) output(act *openflow.ActionOutput, inPort uint32, frame []byte, tableID uint8, entry *flowtable.Entry, last bool, tx *txContext) {
	switch act.Port {
	case openflow.PortController:
		s.sendPacketIn(inPort, frame, act.MaxLen, tableID, entry)
	case openflow.PortFlood, openflow.PortAll:
		s.flood(inPort, frame, tx)
	case openflow.PortInPort:
		if p := s.getPort(inPort); p != nil {
			s.transmit(p, ownedCopy(frame, last), tx)
		}
	case openflow.PortTable:
		// Restart the pipeline (packet-out only).
		s.runPipeline(inPort, ownedCopy(frame, last), 0, tx)
	default:
		p := s.getPort(act.Port)
		if p == nil {
			s.drops.Inc()
			return
		}
		s.transmit(p, ownedCopy(frame, last), tx)
	}
}

// ownedCopy returns frame directly when ownership can transfer, or a
// copy otherwise.
func ownedCopy(frame []byte, canTransfer bool) []byte {
	if canTransfer {
		return frame
	}
	cp := make([]byte, len(frame))
	copy(cp, frame)
	return cp
}

// flood replicates the frame to every port except the ingress.
func (s *Switch) flood(inPort uint32, frame []byte, tx *txContext) {
	s.portMu.RLock()
	targets := make([]*swPort, 0, len(s.ports))
	for no, p := range s.ports {
		if no != inPort {
			targets = append(targets, p)
		}
	}
	s.portMu.RUnlock()
	for i, p := range targets {
		s.transmit(p, ownedCopy(frame, i == len(targets)-1), tx)
	}
}

// sendPacketIn forwards the frame to the controller.
func (s *Switch) sendPacketIn(inPort uint32, frame []byte, maxLen uint16, tableID uint8, entry *flowtable.Entry) {
	s.agentMu.RLock()
	a := s.agent
	s.agentMu.RUnlock()
	if a == nil {
		s.drops.Inc()
		return
	}
	s.pktIns.Inc()

	reason := openflow.PacketInReasonAction
	var cookie uint64
	if entry != nil {
		cookie = entry.Cookie
		// A priority-0 match-all entry is the table-miss entry; the
		// spec reports those packet-ins as NO_MATCH.
		if entry.Priority == 0 {
			reason = openflow.PacketInReasonNoMatch
		}
	}
	bufferID := openflow.NoBuffer
	data := frame
	if maxLen != 0xffff && int(maxLen) < len(frame) {
		bufferID = s.buffers.store(frame)
		data = frame[:maxLen]
	}
	match := openflow.Match{}
	match.WithInPort(inPort)
	a.sendPacketIn(&openflow.PacketIn{
		BufferID: bufferID,
		TotalLen: uint16(len(frame)),
		Reason:   reason,
		TableID:  tableID,
		Cookie:   cookie,
		Match:    match,
		Data:     data,
	})
}

// InjectPacketOut realizes a controller PACKET_OUT: resolve the buffer
// (if referenced) and run the actions through a full dispatch, so its
// outputs coalesce and patch deliveries stay iterative like any other
// ingress.
func (s *Switch) InjectPacketOut(po *openflow.PacketOut) {
	frame := po.Data
	if po.BufferID != openflow.NoBuffer {
		if buffered, ok := s.buffers.take(po.BufferID); ok {
			frame = buffered
		}
	}
	if len(frame) == 0 {
		return
	}
	st := dispatchPool.Get().(*dispatchState)
	if f, res := s.applyActions(po.Actions, po.InPort, frame, 0, nil, &st.tx); res == applyRetained && f != nil {
		s.drops.Inc() // no output action: drop
	}
	s.flushTx(&st.tx)
	runWork(st)
	dispatchPool.Put(st)
}
