package pkt

import (
	"testing"
	"testing/quick"
)

func TestParseMAC(t *testing.T) {
	cases := []struct {
		in      string
		want    MAC
		wantErr bool
	}{
		{"00:11:22:33:44:55", MAC{0x00, 0x11, 0x22, 0x33, 0x44, 0x55}, false},
		{"aa:bb:cc:dd:ee:ff", MAC{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}, false},
		{"AA:BB:CC:DD:EE:FF", MAC{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}, false},
		{"aa-bb-cc-dd-ee-ff", MAC{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}, false},
		{"ff:ff:ff:ff:ff:ff", BroadcastMAC, false},
		{"", MAC{}, true},
		{"aa:bb:cc:dd:ee", MAC{}, true},
		{"aa:bb:cc:dd:ee:fg", MAC{}, true},
		{"aabbccddeeff0011x", MAC{}, true},
		{"aa.bb.cc.dd.ee.ff", MAC{}, true},
	}
	for _, c := range cases {
		got, err := ParseMAC(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseMAC(%q) error = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseMAC(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMACStringRoundTrip(t *testing.T) {
	f := func(m MAC) bool {
		parsed, err := ParseMAC(m.String())
		return err == nil && parsed == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMACPredicates(t *testing.T) {
	if !BroadcastMAC.IsBroadcast() || !BroadcastMAC.IsMulticast() {
		t.Error("broadcast must be broadcast and multicast")
	}
	if BroadcastMAC.IsUnicast() {
		t.Error("broadcast is not unicast")
	}
	m := MustMAC("01:00:5e:00:00:01") // IP multicast MAC
	if !m.IsMulticast() || m.IsBroadcast() || m.IsUnicast() {
		t.Errorf("multicast predicates wrong for %v", m)
	}
	u := MustMAC("02:00:00:00:00:01")
	if !u.IsUnicast() || u.IsMulticast() {
		t.Errorf("unicast predicates wrong for %v", u)
	}
	if !ZeroMAC.IsZero() || ZeroMAC.IsUnicast() {
		t.Error("zero MAC predicates wrong")
	}
}

func TestParseIPv4(t *testing.T) {
	cases := []struct {
		in      string
		want    IPv4
		wantErr bool
	}{
		{"0.0.0.0", IPv4{0, 0, 0, 0}, false},
		{"10.0.0.1", IPv4{10, 0, 0, 1}, false},
		{"255.255.255.255", IPv4{255, 255, 255, 255}, false},
		{"192.168.1.100", IPv4{192, 168, 1, 100}, false},
		{"256.0.0.1", IPv4{}, true},
		{"1.2.3", IPv4{}, true},
		{"1.2.3.4.5", IPv4{}, true},
		{"a.b.c.d", IPv4{}, true},
		{"1..2.3", IPv4{}, true},
		{"", IPv4{}, true},
	}
	for _, c := range cases {
		got, err := ParseIPv4(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseIPv4(%q) error = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseIPv4(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIPv4StringRoundTrip(t *testing.T) {
	f := func(ip IPv4) bool {
		parsed, err := ParseIPv4(ip.String())
		return err == nil && parsed == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIPv4Uint32RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		return IPv4FromUint32(v).Uint32() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIPv4Mask(t *testing.T) {
	ip := MustIPv4("192.168.37.201")
	cases := []struct {
		plen int
		want string
	}{
		{0, "0.0.0.0"},
		{8, "192.0.0.0"},
		{16, "192.168.0.0"},
		{24, "192.168.37.0"},
		{30, "192.168.37.200"},
		{32, "192.168.37.201"},
		{-3, "0.0.0.0"},
		{40, "192.168.37.201"},
	}
	for _, c := range cases {
		if got := ip.Mask(c.plen); got.String() != c.want {
			t.Errorf("Mask(%d) = %s, want %s", c.plen, got, c.want)
		}
	}
}

func TestIPv4Predicates(t *testing.T) {
	if !MustIPv4("255.255.255.255").IsBroadcast() {
		t.Error("broadcast predicate")
	}
	if !MustIPv4("224.0.0.1").IsMulticast() || MustIPv4("223.255.255.255").IsMulticast() {
		t.Error("multicast predicate")
	}
	if !(IPv4{}).IsZero() {
		t.Error("zero predicate")
	}
}
