// Package shardlock is the shardlock fixture: lock/shard copies must
// be diagnosed; pointer passing and hatched lines must not.
package shardlock

import (
	"sync"

	"github.com/harmless-sdn/harmless/internal/stats"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

type shardHolder struct {
	counters stats.ShardedCounter
}

type deepLock struct {
	inner [2]guarded // lock two levels down still poisons the copy
}

var globalGuarded guarded

func byValueParam(g guarded) {} // want "parameter takes shardlock.guarded by value, which contains sync.Mutex"

func byValueReceiver() {
	var g guarded
	g2 := g // want "assignment copies shardlock.guarded by value, which contains sync.Mutex"
	_ = g2
	gp := &g // taking the address is fine
	_ = gp
	byPointerParam(&g)
	c := globalGuarded // want "assignment copies shardlock.guarded by value"
	_ = c
}

func (d deepLock) depth() {} // want "receiver takes shardlock.deepLock by value"

func byPointerParam(*guarded) {}

func copyShards(h *shardHolder) {
	snapshot := h.counters // want "assignment copies stats.ShardedCounter by value, which contains stats.ShardedCounter"
	_ = snapshot
	_ = h.counters.Load() // reading through the pointer receiver is fine
}

func rangeCopies(gs []guarded) {
	for _, g := range gs { // want "range copies shardlock.guarded which contains sync.Mutex"
		_ = g
	}
	for i := range gs { // by index is the fix
		gs[i].mu.Lock()
		gs[i].mu.Unlock()
	}
}

func freshValueOK() {
	g := guarded{} // composite literal constructs in place: no copy
	g.n = 1
	_ = g.n
}

func hatched() {
	var g guarded
	g3 := g //harmless:allow-copy the struct is not yet shared with any goroutine
	_ = g3
}

func hatchedBare() {
	var g guarded
	g4 := g //harmless:allow-copy // want "needs a reason"
	_ = g4
}

func staleHatch() {
	//harmless:allow-copy nothing on the next line copies a lock // want "unused //harmless:allow-copy directive"
	var g guarded
	g.n = 1
	_ = g.n
}
