package controlplane

import (
	"io"
	"net"
	"sync"
	"sync/atomic"

	"github.com/harmless-sdn/harmless/internal/openflow"
)

// Datapath is the switch-side message sink a ChannelSet serves.
// HELLO, ECHO, FEATURES, ROLE and async-config messages never reach
// Handle — the channel state machine consumes them; everything else
// (flow-mods, packet-outs, barriers, multipart requests, ...) is
// delivered with the originating channel so replies and role checks
// can be made per connection. Handle may be called concurrently from
// different channels' read loops.
type Datapath interface {
	// Features returns the FEATURES_REPLY body sent during handshakes.
	Features() openflow.FeaturesReply
	// Handle processes one controller-to-switch message.
	Handle(ch *Channel, m openflow.Message)
}

// ChannelSet is the switch side of the multi-controller control plane:
// it owns one Channel per controller connection and arbitrates the
// OpenFlow 1.3 role state machine across them — at most one MASTER,
// any number of SLAVEs and EQUALs, with a monotonically checked
// generation_id so a partitioned ex-master cannot reclaim mastership
// with a stale election epoch.
type ChannelSet struct {
	cfg Config
	dp  Datapath

	xids atomic.Uint32 // xid space for broadcast async events

	mu         sync.Mutex
	channels   map[*Channel]struct{}
	listeners  []net.Listener
	generation uint64
	genValid   bool
	closed     bool
}

// NewChannelSet creates an empty set serving dp. Attach, Dial and
// Listen add controller connections.
func NewChannelSet(dp Datapath, cfg Config) *ChannelSet {
	return &ChannelSet{
		cfg:      cfg.withDefaults(),
		dp:       dp,
		channels: make(map[*Channel]struct{}),
	}
}

// Attach serves a controller over an established transport (accepted
// TCP conn or net.Pipe end). The channel terminates when the transport
// dies.
func (s *ChannelSet) Attach(rw io.ReadWriteCloser) *Channel {
	c := newChannel(s, "")
	if !s.add(c) {
		c.Close()
		return c
	}
	go c.runAttach(rw)
	return c
}

// Dial keeps an active-connect channel towards addr: connect, serve,
// and on loss redial with exponential backoff until the channel (or
// the set) is closed.
func (s *ChannelSet) Dial(addr string) *Channel {
	c := newChannel(s, addr)
	if !s.add(c) {
		c.Close()
		return c
	}
	go c.runDial()
	return c
}

// Listen serves controllers connecting to l (the switch side of
// passive mode, like an OVS "ptcp:" bridge controller) until l or the
// set closes.
func (s *ChannelSet) Listen(l net.Listener) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			s.Attach(conn)
		}
	}()
}

func (s *ChannelSet) add(c *Channel) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.channels[c] = struct{}{}
	return true
}

func (s *ChannelSet) remove(c *Channel) {
	s.mu.Lock()
	delete(s.channels, c)
	s.mu.Unlock()
}

// Channels snapshots the live channels.
func (s *ChannelSet) Channels() []*Channel {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Channel, 0, len(s.channels))
	for c := range s.channels {
		out = append(out, c)
	}
	return out
}

// Master returns the channel currently holding the MASTER role (nil if
// none).
func (s *ChannelSet) Master() *Channel {
	for _, c := range s.Channels() {
		if c.Role() == openflow.RoleMaster {
			return c
		}
	}
	return nil
}

// GenerationID returns the highest master-election epoch seen, and
// whether any has been seen at all.
func (s *ChannelSet) GenerationID() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.generation, s.genValid
}

// Close terminates every channel and stops all listeners.
func (s *ChannelSet) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	listeners := s.listeners
	s.listeners = nil
	chans := make([]*Channel, 0, len(s.channels))
	for c := range s.channels {
		chans = append(chans, c)
	}
	s.mu.Unlock()
	for _, l := range listeners {
		//harmless:allow-droperr listener teardown fan-out; net.Listener close errors have no consumer here and each channel closes itself below
		l.Close()
	}
	for _, c := range chans {
		c.Close()
	}
}

// Broadcast fans an asynchronous event (packet-in, flow-removed,
// port-status) out to every channel whose role and async masks accept
// the message's reason code; it returns how many channels took it.
// The spec's default masks deliver to masters and equals only (slaves
// still see port-status).
func (s *ChannelSet) Broadcast(m openflow.Message, reason uint8) int {
	if m.XID() == 0 {
		m.SetXID(s.xids.Add(1))
	}
	n := 0
	for _, c := range s.Channels() {
		if c.wantsAsync(m.MsgType(), reason) && c.Send(m) == nil {
			n++
		}
	}
	return n
}

// handleRoleRequest runs the role arbitration state machine for one
// ROLE_REQUEST (OF1.3 §6.3.5): generation_id is checked against the
// highest seen using circular comparison, a new MASTER silently
// demotes the previous one to SLAVE, and the reply reports the role
// actually held.
func (s *ChannelSet) handleRoleRequest(c *Channel, req *openflow.RoleRequest) {
	s.mu.Lock()
	switch req.Role {
	case openflow.RoleNoChange:
		// Query only.
	case openflow.RoleEqual:
		c.setRole(openflow.RoleEqual)
	case openflow.RoleMaster, openflow.RoleSlave:
		if s.genValid && int64(req.GenerationID-s.generation) < 0 {
			s.mu.Unlock()
			c.SendError(req, openflow.ErrTypeRoleRequestFailed, openflow.RoleRequestFailedStale)
			return
		}
		s.generation, s.genValid = req.GenerationID, true
		if req.Role == openflow.RoleMaster {
			for other := range s.channels {
				if other != c && other.Role() == openflow.RoleMaster {
					other.setRole(openflow.RoleSlave)
				}
			}
		}
		c.setRole(req.Role)
	default:
		s.mu.Unlock()
		c.SendError(req, openflow.ErrTypeRoleRequestFailed, openflow.RoleRequestFailedBadRole)
		return
	}
	gen := s.generation
	s.mu.Unlock()
	_ = c.Reply(req, &openflow.RoleReply{Role: c.Role(), GenerationID: gen})
}
