package analysis

import (
	"go/token"
	"path/filepath"
	"testing"
)

func diag(analyzer, file string, line int, msg string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Analyzer: analyzer,
		Message:  msg,
	}
}

func TestBaselineApply(t *testing.T) {
	run := []Diagnostic{
		diag("errdrop", "internal/a/a.go", 10, "dropped error"),
		diag("errdrop", "internal/a/a.go", 40, "dropped error"),
		diag("detorder", "internal/b/b.go", 7, "map order reaches sink"),
	}
	b := NewBaseline(run[:2]) // accept the two errdrop findings only

	fresh, stale := b.Apply(run)
	if len(stale) != 0 {
		t.Fatalf("stale = %v, want none", stale)
	}
	if len(fresh) != 1 || fresh[0].Analyzer != "detorder" {
		t.Fatalf("fresh = %v, want just the detorder finding", fresh)
	}

	// Lines shift, matching must not: the same findings on new lines
	// still count against the same entries.
	moved := []Diagnostic{
		diag("errdrop", "internal/a/a.go", 11, "dropped error"),
		diag("errdrop", "internal/a/a.go", 44, "dropped error"),
	}
	fresh, stale = b.Apply(moved)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("after line drift: fresh=%v stale=%v, want none", fresh, stale)
	}

	// One of the two accepted findings is fixed: its entry is stale,
	// and only one budget slot is consumed.
	fresh, stale = b.Apply(moved[:1])
	if len(fresh) != 0 {
		t.Fatalf("fresh = %v, want none", fresh)
	}
	if len(stale) != 1 || stale[0].Message != "dropped error" {
		t.Fatalf("stale = %v, want exactly one of the two identical entries", stale)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	b := NewBaseline([]Diagnostic{diag("atomicmix", "internal/c/c.go", 3, "plain read")})
	if err := b.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(got.Entries) != 1 || got.Entries[0] != b.Entries[0] {
		t.Fatalf("round trip mismatch: %+v", got.Entries)
	}

	// An empty baseline still round-trips with a non-nil entries list.
	empty := NewBaseline(nil)
	if err := empty.Save(path); err != nil {
		t.Fatalf("save empty: %v", err)
	}
	got, err = LoadBaseline(path)
	if err != nil {
		t.Fatalf("load empty: %v", err)
	}
	if got.Entries == nil || len(got.Entries) != 0 {
		t.Fatalf("empty baseline entries = %v, want []", got.Entries)
	}
}

func TestRelativePath(t *testing.T) {
	root := filepath.FromSlash("/mod/root")
	for in, want := range map[string]string{
		filepath.FromSlash("/mod/root/internal/a/a.go"): "internal/a/a.go",
		filepath.FromSlash("/elsewhere/b.go"):           filepath.FromSlash("/elsewhere/b.go"),
	} {
		if got := RelativePath(root, in); got != want {
			t.Errorf("RelativePath(%q) = %q, want %q", in, got, want)
		}
	}
}
