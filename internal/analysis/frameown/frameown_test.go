package frameown_test

import (
	"testing"

	"github.com/harmless-sdn/harmless/internal/analysis/analysistest"
	"github.com/harmless-sdn/harmless/internal/analysis/frameown"
)

func TestFrameOwn(t *testing.T) {
	analysistest.Run(t, "testdata/src/frameown", "frameown", frameown.Analyzer)
}
