// Package shardlock guards the repo's single-writer shard discipline.
//
// The datapath scales by giving every worker its own shard — a
// stats.ShardedCounter slot, a telemetry shard, a cache shard — and
// the whole point is that shard state synchronizes through its
// address. Copying a struct that embeds a lock or a shard carries the
// mutex/atomic state away from the memory every other goroutine
// synchronizes on; go vet's copylocks catches the stdlib cases, this
// analyzer adds the repo's own no-copy types, stats.ShardedCounter
// first among them.
//
// (Mixed atomic/plain access to the same field — the discipline's
// other failure mode — is atomicmix's department, which checks it
// module-wide rather than per package.)
//
// Diagnostics are suppressed line by line with
// //harmless:allow-copy <reason>.
package shardlock

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/harmless-sdn/harmless/internal/analysis"
)

// Analyzer is the shardlock pass.
var Analyzer = &analysis.Analyzer{
	Name: "shardlock",
	Doc:  "flags copies of lock/shard-holding structs",
	Run:  run,
}

const hatchCopy = "allow-copy"

func run(pass *analysis.Pass) error {
	checkCopies(pass)
	pass.ReportUnused(hatchCopy)
	return nil
}

// --- lock/shard copies ----------------------------------------------

// checkCopies flags by-value movement of no-copy types: value
// receivers, parameters and results; assignments from addressable
// expressions; range over containers of no-copy elements; and call
// arguments.
func checkCopies(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				checkFuncSig(pass, x)
			case *ast.AssignStmt:
				for i, rhs := range x.Rhs {
					// `_ = x` evaluates without copying anywhere shared.
					if i < len(x.Lhs) && isBlank(x.Lhs[i]) {
						continue
					}
					reportCopy(pass, rhs, "assignment copies")
				}
			case *ast.RangeStmt:
				if x.Value == nil {
					return true
				}
				if t := rangeValueType(pass, x.Value); t != nil {
					if c := nocopyComponent(t); c != "" && !pass.Suppressed(x.Value.Pos(), hatchCopy) {
						pass.Reportf(x.Value.Pos(), "range copies %s which contains %s; iterate by index", typeString(t), c)
					}
				}
			case *ast.CallExpr:
				if isConversion(pass, x) {
					return true
				}
				for _, arg := range x.Args {
					reportCopy(pass, arg, "call passes")
				}
			case *ast.ReturnStmt:
				for _, res := range x.Results {
					reportCopy(pass, res, "return copies")
				}
			}
			return true
		})
	}
}

// reportCopy flags expr when it copies a no-copy value out of an
// addressable location. Composite literals and calls construct fresh
// values — moving those is fine.
func reportCopy(pass *analysis.Pass, expr ast.Expr, what string) {
	if !addressable(expr) {
		return
	}
	t := typeOf(pass, expr)
	if t == nil {
		return
	}
	if c := nocopyComponent(t); c != "" && !pass.Suppressed(expr.Pos(), hatchCopy) {
		pass.Reportf(expr.Pos(), "%s %s by value, which contains %s; use a pointer", what, typeString(t), c)
	}
}

// checkFuncSig flags no-copy types moved by value through a function
// signature.
func checkFuncSig(pass *analysis.Pass, fn *ast.FuncDecl) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := typeOf(pass, field.Type)
			if t == nil {
				continue
			}
			if c := nocopyComponent(t); c != "" && !pass.Suppressed(field.Type.Pos(), hatchCopy) {
				pass.Reportf(field.Type.Pos(), "%s %s by value, which contains %s; use a pointer", what, typeString(t), c)
			}
		}
	}
	check(fn.Recv, "receiver takes")
	check(fn.Type.Params, "parameter takes")
	check(fn.Type.Results, "result returns")
}

// addressable approximates "reads an existing memory location":
// identifiers, selectors, indexing and dereferences — not composite
// literals or function calls, whose results are fresh values.
func addressable(expr ast.Expr) bool {
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return x.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// isBlank reports whether expr is the blank identifier.
func isBlank(expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	return ok && id.Name == "_"
}

// isConversion reports whether call is a type conversion.
func isConversion(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	return ok && tv.IsType()
}

// nocopyComponent returns the name of the first no-copy component
// found inside t (descending through named types, struct fields and
// array elements — not pointers, slices or maps, whose copies alias),
// or "".
func nocopyComponent(t types.Type) string {
	return findNocopy(t, make(map[types.Type]bool))
}

func findNocopy(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if name := nocopyNamed(named); name != "" {
			return name
		}
		return findNocopy(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := findNocopy(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return findNocopy(u.Elem(), seen)
	}
	return ""
}

// nocopyNamed classifies a named type itself as no-copy: the sync and
// sync/atomic primitives, this repo's sharded counters, and anything
// with a pointer-receiver Lock method (the go vet copylocks
// heuristic).
func nocopyNamed(named *types.Named) string {
	obj := named.Obj()
	pkg := obj.Pkg()
	if pkg != nil {
		switch pkg.Path() {
		case "sync":
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return "sync." + obj.Name()
			}
		case "sync/atomic":
			return "atomic." + obj.Name()
		}
		if strings.HasSuffix(pkg.Path(), "internal/stats") {
			switch obj.Name() {
			case "ShardedCounter", "Counter":
				return "stats." + obj.Name()
			}
		}
	}
	// Pointer-receiver Lock(): the type synchronizes through its
	// address, so a copy desynchronizes.
	ms := types.NewMethodSet(types.NewPointer(named))
	if lock := ms.Lookup(nil, "Lock"); lock != nil {
		if sig, ok := lock.Type().(*types.Signature); ok &&
			sig.Params().Len() == 0 && sig.Results().Len() == 0 {
			return typeString(named) + " (has Lock)"
		}
	}
	return ""
}

// rangeValueType resolves the type of a range statement's value
// variable, which lives in Defs (for :=) or Uses (for =) rather than
// the Types map.
func rangeValueType(pass *analysis.Pass, expr ast.Expr) types.Type {
	if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return typeOf(pass, expr)
}

// typeOf returns the static type of expr, or nil.
func typeOf(pass *analysis.Pass, expr ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[expr]; ok {
		return tv.Type
	}
	return nil
}

// typeString renders t relative to nothing: short and stable for
// diagnostics.
func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
