package snmp

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// Client issues SNMPv2c requests over a datagram connection (normally
// UDP). It retries on timeout and matches responses by request-id.
// Safe for concurrent use.
type Client struct {
	conn      net.Conn
	community string
	timeout   time.Duration
	retries   int
	reqID     atomic.Int32
}

// ErrTimeout is returned when all retries are exhausted.
var ErrTimeout = errors.New("snmp: request timed out")

// RequestError reports a non-zero error-status in a response.
type RequestError struct {
	Status int
	Index  int
}

// Error implements error.
func (e *RequestError) Error() string {
	return fmt.Sprintf("snmp: error status %d at index %d", e.Status, e.Index)
}

// Dial connects a client to the agent at addr ("host:port", UDP).
func Dial(addr, community string) (*Client, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("snmp: dial %s: %w", addr, err)
	}
	return NewClient(conn, community), nil
}

// NewClient wraps an existing connection (tests use in-memory pipes).
func NewClient(conn net.Conn, community string) *Client {
	c := &Client{conn: conn, community: community, timeout: 2 * time.Second, retries: 2}
	c.reqID.Store(int32(time.Now().UnixNano() & 0x3fffffff))
	return c
}

// SetTimeout adjusts the per-attempt timeout.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// SetRetries adjusts the number of retransmissions after the first
// attempt.
func (c *Client) SetRetries(n int) { c.retries = n }

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends a request and waits for the matching response.
func (c *Client) roundTrip(typ PDUType, vbs []VarBind) (*Message, error) {
	id := c.reqID.Add(1)
	req := &Message{Community: c.community, Type: typ, RequestID: id, VarBinds: vbs}
	wire, err := req.Marshal()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 65535)
	for attempt := 0; attempt <= c.retries; attempt++ {
		if _, err := c.conn.Write(wire); err != nil {
			return nil, err
		}
		deadline := time.Now().Add(c.timeout)
		for {
			if err := c.conn.SetReadDeadline(deadline); err != nil {
				return nil, err
			}
			n, err := c.conn.Read(buf)
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					break // retransmit
				}
				return nil, err
			}
			resp, err := Unmarshal(buf[:n])
			if err != nil {
				continue // garbage datagram; keep waiting
			}
			if resp.RequestID != id || resp.Type != PDUResponse {
				continue // stale response from an earlier retry
			}
			if resp.ErrStatus != ErrNoError {
				return resp, &RequestError{Status: resp.ErrStatus, Index: resp.ErrIndex}
			}
			return resp, nil
		}
	}
	return nil, ErrTimeout
}

// Get fetches the values of the given instance OIDs.
func (c *Client) Get(oids ...OID) ([]VarBind, error) {
	vbs := make([]VarBind, len(oids))
	for i, o := range oids {
		vbs[i] = VarBind{OID: o, Value: Null{}}
	}
	resp, err := c.roundTrip(PDUGetRequest, vbs)
	if err != nil {
		return nil, err
	}
	return resp.VarBinds, nil
}

// GetOne fetches a single scalar and fails on v2c exceptions.
func (c *Client) GetOne(oid OID) (Value, error) {
	vbs, err := c.Get(oid)
	if err != nil {
		return nil, err
	}
	if len(vbs) != 1 {
		return nil, fmt.Errorf("snmp: expected 1 varbind, got %d", len(vbs))
	}
	switch vbs[0].Value.(type) {
	case NoSuchObject, NoSuchInstance:
		return nil, fmt.Errorf("snmp: %s: no such object", oid)
	}
	return vbs[0].Value, nil
}

// GetNext fetches the lexicographic successors of the given OIDs.
func (c *Client) GetNext(oids ...OID) ([]VarBind, error) {
	vbs := make([]VarBind, len(oids))
	for i, o := range oids {
		vbs[i] = VarBind{OID: o, Value: Null{}}
	}
	resp, err := c.roundTrip(PDUGetNext, vbs)
	if err != nil {
		return nil, err
	}
	return resp.VarBinds, nil
}

// Set writes the given varbinds.
func (c *Client) Set(vbs ...VarBind) ([]VarBind, error) {
	resp, err := c.roundTrip(PDUSetRequest, vbs)
	if err != nil {
		return nil, err
	}
	return resp.VarBinds, nil
}

// Walk performs a GETNEXT walk over the subtree rooted at root,
// invoking fn for every instance. fn may return a non-nil error to
// stop the walk early.
func (c *Client) Walk(root OID, fn func(VarBind) error) error {
	cur := root.Clone()
	for {
		vbs, err := c.GetNext(cur)
		if err != nil {
			return err
		}
		if len(vbs) != 1 {
			return fmt.Errorf("snmp: walk: %d varbinds", len(vbs))
		}
		vb := vbs[0]
		if _, end := vb.Value.(EndOfMibView); end {
			return nil
		}
		if !vb.OID.HasPrefix(root) {
			return nil // left the subtree
		}
		if vb.OID.Cmp(cur) <= 0 {
			return fmt.Errorf("snmp: walk: agent did not advance (at %s)", vb.OID)
		}
		if err := fn(vb); err != nil {
			return err
		}
		cur = vb.OID
	}
}
