package dataplane

import (
	"sync"
	"testing"
)

func TestRingFIFO(t *testing.T) {
	r := NewRing(8)
	if r.Cap() != 8 {
		t.Fatalf("cap = %d, want 8", r.Cap())
	}
	for i := 0; i < 8; i++ {
		if !r.Push([]byte{byte(i)}) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if r.Push([]byte{9}) {
		t.Fatal("push accepted on a full ring")
	}
	if r.Len() != 8 {
		t.Fatalf("len = %d, want 8", r.Len())
	}
	for i := 0; i < 8; i++ {
		f, ok := r.Pop()
		if !ok || f[0] != byte(i) {
			t.Fatalf("pop %d = %v,%v — FIFO order broken", i, f, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop succeeded on an empty ring")
	}
}

func TestRingWrapAround(t *testing.T) {
	r := NewRing(4)
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			if !r.Push([]byte{byte(round), byte(i)}) {
				t.Fatalf("round %d: push %d rejected", round, i)
			}
		}
		for i := 0; i < 3; i++ {
			f, ok := r.Pop()
			if !ok || f[0] != byte(round) || f[1] != byte(i) {
				t.Fatalf("round %d: pop %d = %v,%v", round, i, f, ok)
			}
		}
	}
}

func TestRingConcurrent(t *testing.T) {
	const producers = 4
	perProd := 10000
	if testing.Short() {
		perProd = 1000 // keep the CI race matrix fast
	}
	r := NewRing(1024)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				f := []byte{byte(p), byte(i >> 8), byte(i)}
				for !r.Push(f) {
					// ring full: spin until the consumer catches up
				}
			}
		}(p)
	}
	// One consumer checks per-producer ordering.
	next := make([]int, producers)
	seen := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for seen < producers*perProd {
			f, ok := r.Pop()
			if !ok {
				continue
			}
			p := int(f[0])
			i := int(f[1])<<8 | int(f[2])
			if i != next[p] {
				t.Errorf("producer %d: got %d, want %d (per-producer order broken)", p, i, next[p])
				return
			}
			next[p]++
			seen++
		}
	}()
	wg.Wait()
	<-done
	if seen != producers*perProd {
		t.Fatalf("consumed %d of %d frames", seen, producers*perProd)
	}
}

func TestRingDrain(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 10; i++ {
		r.Push([]byte{byte(i)})
	}
	batch := r.Drain(nil, 4)
	if len(batch) != 4 || batch[0][0] != 0 || batch[3][0] != 3 {
		t.Fatalf("bounded drain = %v", batch)
	}
	rest := r.Drain(batch[:0], 0)
	if len(rest) != 6 || rest[0][0] != 4 || rest[5][0] != 9 {
		t.Fatalf("unbounded drain = %v", rest)
	}
	if r.Len() != 0 {
		t.Fatalf("ring not empty after drain: %d", r.Len())
	}
}

func TestBatchAppendReset(t *testing.T) {
	var b Batch
	b.Append([]byte{1}, 3)
	b.Append([]byte{2}, 4)
	if b.Len() != 2 || b.Bytes() != 2 {
		t.Fatalf("len=%d bytes=%d", b.Len(), b.Bytes())
	}
	if b.Meta[0].InPort != 3 || b.Meta[1].InPort != 4 {
		t.Fatalf("meta = %+v", b.Meta)
	}
	if b.Meta[0].Verdict != VerdictPending {
		t.Fatalf("fresh verdict = %v", b.Meta[0].Verdict)
	}
	b.Reset()
	if b.Len() != 0 || len(b.Meta) != 0 {
		t.Fatal("reset did not empty the batch")
	}
}
