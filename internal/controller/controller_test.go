package controller_test

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/harmless-sdn/harmless/internal/controller"
	"github.com/harmless-sdn/harmless/internal/controller/apps"
	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/softswitch"
)

var (
	mac1 = pkt.MustMAC("02:00:00:00:00:01")
	mac2 = pkt.MustMAC("02:00:00:00:00:02")
	mac3 = pkt.MustMAC("02:00:00:00:00:03")
	ip1  = pkt.MustIPv4("10.0.0.1")
	ip2  = pkt.MustIPv4("10.0.0.2")
	ip3  = pkt.MustIPv4("10.0.0.3")
)

type collector struct {
	mu     sync.Mutex
	frames [][]byte
}

func (c *collector) receiver() netem.Receiver {
	return func(f []byte) {
		c.mu.Lock()
		c.frames = append(c.frames, f)
		c.mu.Unlock()
	}
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func (c *collector) all() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([][]byte{}, c.frames...)
}

// rig: a softswitch with n host ports connected to a controller
// running the given apps.
type rig struct {
	sw    *softswitch.Switch
	ctrl  *controller.Controller
	hosts map[uint32]*collector
	far   map[uint32]*netem.Port
}

func newRig(t *testing.T, n int, appList []controller.App) *rig {
	t.Helper()
	r := &rig{
		sw:    softswitch.New("ss2", 0x42),
		hosts: map[uint32]*collector{},
		far:   map[uint32]*netem.Port{},
	}
	for i := uint32(1); i <= uint32(n); i++ {
		l := netem.NewLink(netem.LinkConfig{})
		t.Cleanup(l.Close)
		r.sw.AttachNetPort(i, "p", l.A())
		col := &collector{}
		l.B().SetReceiver(col.receiver())
		r.hosts[i] = col
		r.far[i] = l.B()
	}
	c1, c2 := net.Pipe()
	agent := r.sw.StartAgent(c2, 0)
	t.Cleanup(agent.Stop)
	r.ctrl = controller.New(appList)
	if _, err := r.ctrl.AttachConn(c1); err != nil {
		t.Fatal(err)
	}
	// Fence: all SwitchConnected flow-mods applied.
	r.barrier(t)
	return r
}

// barrier round-trips a barrier so prior flow-mods are applied.
func (r *rig) barrier(t *testing.T) {
	t.Helper()
	h, ok := r.ctrl.Switch(0x42)
	if !ok {
		t.Fatal("switch not connected")
	}
	if err := h.Barrier(); err != nil {
		t.Fatal(err)
	}
	// The barrier reply is consumed by the event loop; give the
	// agent's synchronous apply a moment by polling table state via a
	// short wait.
	waitFor(t, "barrier settle", func() bool { return true })
	time.Sleep(20 * time.Millisecond)
}

func (r *rig) inject(t *testing.T, port uint32, frame []byte) {
	t.Helper()
	if err := r.far[port].Send(frame); err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func udpFrame(t testing.TB, src, dst pkt.MAC, ipSrc, ipDst pkt.IPv4, sport, dport uint16, payload string) []byte {
	t.Helper()
	pl := pkt.Payload([]byte(payload))
	f, err := pkt.Serialize(
		&pkt.Ethernet{Src: src, Dst: dst, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4Header{TTL: 64, Protocol: pkt.IPProtoUDP, Src: ipSrc, Dst: ipDst},
		&pkt.UDP{SrcPort: sport, DstPort: dport},
		&pl,
	)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func tcpFrame(t testing.TB, src, dst pkt.MAC, ipSrc, ipDst pkt.IPv4, sport, dport uint16, payload string) []byte {
	t.Helper()
	pl := pkt.Payload([]byte(payload))
	f, err := pkt.Serialize(
		&pkt.Ethernet{Src: src, Dst: dst, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4Header{TTL: 64, Protocol: pkt.IPProtoTCP, Src: ipSrc, Dst: ipDst},
		&pkt.TCP{SrcPort: sport, DstPort: dport, Flags: pkt.TCPSyn, Window: 64000},
		&pl,
	)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestLearningSwitchEndToEnd(t *testing.T) {
	learning := &apps.Learning{Table: 0}
	r := newRig(t, 3, []controller.App{learning})

	// First frame 1->2: unknown, flooded to 2 and 3.
	r.inject(t, 1, udpFrame(t, mac1, mac2, ip1, ip2, 1, 2, "a"))
	waitFor(t, "flood", func() bool { return r.hosts[2].count() >= 1 && r.hosts[3].count() >= 1 })

	// Reply 2->1: mac1 is known, so packet-out to port 1 only, and a
	// flow gets installed.
	r.inject(t, 2, udpFrame(t, mac2, mac1, ip2, ip1, 2, 1, "b"))
	waitFor(t, "reply", func() bool { return r.hosts[1].count() == 1 })
	if r.hosts[3].count() != 1 {
		t.Errorf("port 3 saw %d frames, want 1 (only the initial flood)", r.hosts[3].count())
	}
	// A third 1->2 frame triggers one more packet-in (mac2 is now
	// known), installing the eth_dst=mac2 flow.
	r.inject(t, 1, udpFrame(t, mac1, mac2, ip1, ip2, 1, 2, "c"))
	waitFor(t, "flow install", func() bool {
		return len(r.sw.FlowStats(openflow.TableAll)) >= 3 // miss + both learned flows
	})
	waitFor(t, "packet-out delivery", func() bool { return r.hosts[2].count() >= 2 })
	// From here on, 1->2 is pure dataplane: no more packet-ins.
	before := r.sw.PacketIns()
	r.inject(t, 1, udpFrame(t, mac1, mac2, ip1, ip2, 1, 2, "d"))
	waitFor(t, "direct delivery", func() bool { return r.hosts[2].count() >= 3 })
	if r.sw.PacketIns() != before {
		t.Errorf("dataplane flow not used: packet-ins %d -> %d", before, r.sw.PacketIns())
	}
	// The app's view of the MAC table.
	if port, ok := learning.Lookup(0x42, mac1); !ok || port != 1 {
		t.Errorf("learned mac1 at %d %v", port, ok)
	}
	if len(learning.MACTable(0x42)) < 2 {
		t.Error("MAC table incomplete")
	}
}

func TestDMZPolicy(t *testing.T) {
	dmz := &apps.DMZ{Table: 0, NextTable: 1}
	dmz.Permit(ip1, ip2)
	learning := &apps.Learning{Table: 1}
	r := newRig(t, 3, []controller.App{dmz, learning})

	// Pre-learn MACs via ARP-like broadcast (ARP is permitted).
	arp := func(src pkt.MAC, sip, tip pkt.IPv4) []byte {
		f, err := pkt.Serialize(
			&pkt.Ethernet{Src: src, Dst: pkt.BroadcastMAC, EtherType: pkt.EtherTypeARP},
			&pkt.ARP{Op: pkt.ARPRequest, SenderHW: src, SenderIP: sip, TargetIP: tip},
		)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	r.inject(t, 1, arp(mac1, ip1, ip2))
	r.inject(t, 2, arp(mac2, ip2, ip1))
	r.inject(t, 3, arp(mac3, ip3, ip1))
	waitFor(t, "arp floods", func() bool { return r.hosts[1].count() >= 2 })

	base2 := r.hosts[2].count()
	// Permitted pair: 1 -> 2 passes.
	r.inject(t, 1, udpFrame(t, mac1, mac2, ip1, ip2, 1000, 80, "ok"))
	waitFor(t, "permitted traffic", func() bool { return r.hosts[2].count() > base2 })

	// Non-permitted: 3 -> 2 must be dropped.
	base2 = r.hosts[2].count()
	r.inject(t, 3, udpFrame(t, mac3, mac2, ip3, ip2, 1000, 80, "no"))
	time.Sleep(50 * time.Millisecond)
	if r.hosts[2].count() != base2 {
		t.Error("unauthorized traffic leaked through the DMZ")
	}
	if !dmz.Permitted(ip1, ip2) || dmz.Permitted(ip3, ip2) {
		t.Error("policy state wrong")
	}

	// Revoke on the fly: 1 -> 2 now drops too.
	dmz.Revoke(ip1, ip2)
	r.barrier(t)
	base2 = r.hosts[2].count()
	r.inject(t, 1, udpFrame(t, mac1, mac2, ip1, ip2, 1000, 80, "late"))
	time.Sleep(50 * time.Millisecond)
	if r.hosts[2].count() != base2 {
		t.Error("revoked pair still passes")
	}
}

func TestLoadBalancerSourcePartitioning(t *testing.T) {
	vip := pkt.MustIPv4("10.0.0.100")
	vmac := pkt.MustMAC("02:00:00:00:01:00")
	lb := &apps.LoadBalancer{
		Table: 0, VIP: vip, VMAC: vmac, ServicePort: 80,
		Backends: []apps.Backend{
			{IP: ip1, MAC: mac1, Port: 1},
			{IP: ip2, MAC: mac2, Port: 2},
		},
	}
	learning := &apps.Learning{Table: 1}
	r := newRig(t, 3, []controller.App{lb, learning})

	// Client on port 3 sends to the VIP from different source IPs.
	for i := 0; i < 32; i++ {
		src := pkt.IPv4{172, 16, 0, byte(i)}
		r.inject(t, 3, tcpFrame(t, mac3, vmac, src, vip, uint16(10000+i), 80, "GET"))
	}
	waitFor(t, "lb distribution", func() bool {
		return r.hosts[1].count()+r.hosts[2].count() == 32
	})
	// Even sources -> backend 1, odd -> backend 2 (low-bit partition).
	if r.hosts[1].count() != 16 || r.hosts[2].count() != 16 {
		t.Errorf("distribution %d/%d, want 16/16", r.hosts[1].count(), r.hosts[2].count())
	}
	// Verify the rewrite.
	f := r.hosts[1].all()[0]
	p := pkt.DecodeEthernet(f)
	if p.IPv4().Dst != ip1 || p.Ethernet().Dst != mac1 {
		t.Errorf("rewrite: %s", p)
	}
	// Checksum integrity after rewrite.
	if pkt.L4Checksum(p.IPv4().Src, p.IPv4().Dst, pkt.IPProtoTCP, p.IPv4().LayerPayload()) != 0 {
		t.Error("TCP checksum broken by DNAT")
	}
}

func TestLoadBalancerARPAndReverse(t *testing.T) {
	vip := pkt.MustIPv4("10.0.0.100")
	vmac := pkt.MustMAC("02:00:00:00:01:00")
	lb := &apps.LoadBalancer{
		Table: 0, VIP: vip, VMAC: vmac, ServicePort: 80,
		Backends: []apps.Backend{{IP: ip1, MAC: mac1, Port: 1}, {IP: ip2, MAC: mac2, Port: 2}},
	}
	learning := &apps.Learning{Table: 1}
	r := newRig(t, 3, []controller.App{lb, learning})

	// ARP who-has VIP from the client.
	arpReq, err := pkt.Serialize(
		&pkt.Ethernet{Src: mac3, Dst: pkt.BroadcastMAC, EtherType: pkt.EtherTypeARP},
		&pkt.ARP{Op: pkt.ARPRequest, SenderHW: mac3, SenderIP: ip3, TargetIP: vip},
	)
	if err != nil {
		t.Fatal(err)
	}
	r.inject(t, 3, arpReq)
	waitFor(t, "arp reply", func() bool { return r.hosts[3].count() >= 1 })
	reply := pkt.DecodeEthernet(r.hosts[3].all()[0])
	arp := reply.ARP()
	if arp == nil || arp.Op != pkt.ARPReply || arp.SenderHW != vmac || arp.SenderIP != vip {
		t.Fatalf("arp reply: %s", reply)
	}

	// Reverse path: backend 1 answers; source must become the VIP.
	// Teach the learning table where the client is first. The client
	// IP has an even low byte so the source partition picks backend 0
	// (port 1).
	clientIP := pkt.MustIPv4("10.0.0.4")
	r.inject(t, 3, tcpFrame(t, mac3, vmac, clientIP, vip, 10000, 80, "req"))
	waitFor(t, "forward", func() bool { return r.hosts[1].count() >= 1 })
	r.inject(t, 1, tcpFrame(t, mac1, mac3, ip1, clientIP, 80, 10000, "resp"))
	waitFor(t, "reverse", func() bool { return r.hosts[3].count() >= 2 })
	var resp *pkt.Packet
	for _, f := range r.hosts[3].all()[1:] {
		p := pkt.DecodeEthernet(f)
		if p.TCP() != nil {
			resp = p
		}
	}
	if resp == nil {
		t.Fatal("no TCP response at client")
	}
	if resp.IPv4().Src != vip {
		t.Errorf("reverse SNAT: src = %s, want %s", resp.IPv4().Src, vip)
	}
	if resp.Ethernet().Src != vmac {
		t.Errorf("reverse SNAT: eth src = %s", resp.Ethernet().Src)
	}
}

func TestLoadBalancerGroupFallback(t *testing.T) {
	vip := pkt.MustIPv4("10.0.0.100")
	lb := &apps.LoadBalancer{
		Table: 0, VIP: vip, VMAC: pkt.MustMAC("02:00:00:00:01:00"), ServicePort: 80, GroupID: 7,
		Backends: []apps.Backend{ // three backends: not a power of two
			{IP: ip1, MAC: mac1, Port: 1},
			{IP: ip2, MAC: mac2, Port: 2},
			{IP: ip3, MAC: mac3, Port: 3},
		},
	}
	learning := &apps.Learning{Table: 1}
	r := newRig(t, 4, []controller.App{lb, learning})
	if _, ok := r.sw.Groups().Get(7); !ok {
		t.Fatal("select group not installed")
	}
	for i := 0; i < 90; i++ {
		src := pkt.IPv4{172, 16, byte(i >> 8), byte(i)}
		r.inject(t, 4, tcpFrame(t, pkt.MustMAC("02:00:00:00:00:04"), lb.VMAC, src, vip, uint16(20000+i), 80, "g"))
	}
	waitFor(t, "group distribution", func() bool {
		return r.hosts[1].count()+r.hosts[2].count()+r.hosts[3].count() == 90
	})
	for p := uint32(1); p <= 3; p++ {
		if r.hosts[p].count() < 10 {
			t.Errorf("backend %d starved: %d", p, r.hosts[p].count())
		}
	}
}

func TestParentalControlDNS(t *testing.T) {
	pc := &apps.ParentalControl{Table: 0, NextTable: 1, UplinkPort: 3}
	pc.BlockDomain(ip1, "blocked.example")
	learning := &apps.Learning{Table: 1}
	r := newRig(t, 3, []controller.App{pc, learning})

	dnsQuery := func(src pkt.MAC, srcIP pkt.IPv4, name string, id uint16) []byte {
		f, err := pkt.Serialize(
			&pkt.Ethernet{Src: src, Dst: mac3, EtherType: pkt.EtherTypeIPv4},
			&pkt.IPv4Header{TTL: 64, Protocol: pkt.IPProtoUDP, Src: srcIP, Dst: ip3},
			&pkt.UDP{SrcPort: 5353, DstPort: 53},
			&pkt.DNS{ID: id, RD: true, Questions: []pkt.DNSQuestion{{Name: name, Type: pkt.DNSTypeA, Class: pkt.DNSClassIN}}},
		)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	// Restricted user (ip1, port 1) asks for the blocked domain: gets
	// NXDOMAIN back on its own port.
	r.inject(t, 1, dnsQuery(mac1, ip1, "www.blocked.example", 1))
	waitFor(t, "nxdomain", func() bool { return r.hosts[1].count() == 1 })
	resp := pkt.DecodeEthernet(r.hosts[1].all()[0])
	d := resp.DNS()
	if d == nil || !d.QR || d.Rcode != pkt.DNSRcodeNXDomain || d.ID != 1 {
		t.Fatalf("response: %s", resp)
	}
	if pc.NXDomainCount() != 1 {
		t.Errorf("nx count %d", pc.NXDomainCount())
	}

	// Same user, different domain: forwarded to the uplink (port 3).
	r.inject(t, 1, dnsQuery(mac1, ip1, "fine.example", 2))
	waitFor(t, "allowed query", func() bool { return r.hosts[3].count() == 1 })

	// Unrestricted user (ip2, port 2) asks for the blocked domain:
	// forwarded to the uplink.
	r.inject(t, 2, dnsQuery(mac2, ip2, "www.blocked.example", 3))
	waitFor(t, "other user", func() bool { return r.hosts[3].count() == 2 })

	// On-the-fly policy change: unblock, the user gets through now.
	pc.UnblockDomain(ip1, "blocked.example")
	r.inject(t, 1, dnsQuery(mac1, ip1, "www.blocked.example", 4))
	waitFor(t, "unblocked", func() bool { return r.hosts[3].count() == 3 })
}

func TestParentalControlIPFallback(t *testing.T) {
	site := pkt.MustIPv4("93.184.216.34")
	pc := &apps.ParentalControl{Table: 0, NextTable: 1, UplinkPort: 3}
	learning := &apps.Learning{Table: 1}
	r := newRig(t, 3, []controller.App{pc, learning})

	// Teach learning where mac2 lives so permitted traffic flows.
	r.inject(t, 2, udpFrame(t, mac2, mac1, ip2, ip1, 1, 1, "hello"))
	time.Sleep(20 * time.Millisecond)

	pc.BlockIP(ip1, site)
	r.barrier(t)
	base := r.hosts[2].count() + r.hosts[3].count()
	r.inject(t, 1, udpFrame(t, mac1, mac2, ip1, site, 1000, 80, "direct"))
	time.Sleep(50 * time.Millisecond)
	if r.hosts[2].count()+r.hosts[3].count() != base {
		t.Error("blocked IP pair leaked")
	}
	// Unblock on the fly.
	pc.UnblockIP(ip1, site)
	r.barrier(t)
	r.inject(t, 1, udpFrame(t, mac1, mac2, ip1, site, 1000, 80, "direct2"))
	waitFor(t, "unblocked ip", func() bool { return r.hosts[2].count()+r.hosts[3].count() > base })
}

func TestControllerOverTCP(t *testing.T) {
	learning := &apps.Learning{Table: 0}
	ctrl := controller.New([]controller.App{learning})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go ctrl.Serve(l) //nolint:errcheck

	sw := softswitch.New("tcp-sw", 0x77)
	link := netem.NewLink(netem.LinkConfig{})
	defer link.Close()
	sw.AttachNetPort(1, "p1", link.A())
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	agent := sw.StartAgent(conn, 0)
	defer agent.Stop()

	waitFor(t, "switch registration", func() bool {
		_, ok := ctrl.Switch(0x77)
		return ok
	})
	if len(ctrl.Switches()) != 1 {
		t.Error("switch count")
	}
	// Table-miss must arrive eventually.
	waitFor(t, "miss entry", func() bool { return sw.Table(0).Len() == 1 })
}
