package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

// HTTP live views: /flows renders the table's current records as JSON
// (top-talkers first, ?n= bounds the count), /stats the telemetry,
// aggregator and any caller-supplied counters. harmlessd mounts these
// on -http; cmd/flowtop is the wire-side equivalent.

// flowJSON is the /flows wire shape of one live flow.
type flowJSON struct {
	InPort  uint32 `json:"in_port"`
	EthSrc  string `json:"eth_src"`
	EthDst  string `json:"eth_dst"`
	EthType string `json:"eth_type"`
	VLAN    uint16 `json:"vlan,omitempty"`
	IPSrc   string `json:"ip_src,omitempty"`
	IPDst   string `json:"ip_dst,omitempty"`
	Proto   uint8  `json:"proto,omitempty"`
	L4Src   uint16 `json:"l4_src,omitempty"`
	L4Dst   uint16 `json:"l4_dst,omitempty"`
	OutPort uint32 `json:"out_port"`
	Packets uint64 `json:"packets"`
	Bytes   uint64 `json:"bytes"`
	AgeMs   int64  `json:"age_ms"`
	IdleMs  int64  `json:"idle_ms"`
}

func snapshotJSON(s FlowSnapshot, now int64) flowJSON {
	j := flowJSON{
		InPort:  s.Key.InPort,
		EthSrc:  s.Key.EthSrc.String(),
		EthDst:  s.Key.EthDst.String(),
		EthType: fmt.Sprintf("0x%04x", s.Key.EthType),
		VLAN:    s.Key.VLANID,
		Proto:   s.Key.Proto,
		L4Src:   s.Key.L4Src,
		L4Dst:   s.Key.L4Dst,
		OutPort: s.OutPort,
		Packets: s.Packets,
		Bytes:   s.Bytes,
		AgeMs:   (now - s.First) / 1e6,
		IdleMs:  (now - s.Last) / 1e6,
	}
	if s.Key.EthType == pkt.EtherTypeIPv4 || s.Key.EthType == pkt.EtherTypeIPv6 {
		j.IPSrc = s.Key.IPSrc.String()
		j.IPDst = s.Key.IPDst.String()
	}
	return j
}

// FlowsHandler serves the live flow table, top talkers first.
// Query parameter n bounds the flow count (default 100). Age and idle
// times are computed against clock so that a table fed from virtual
// time renders consistent ages; nil means wall clock.
func FlowsHandler(t *Table, clock netem.Clock) http.Handler {
	if clock == nil {
		clock = netem.RealClock{}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 100
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		snaps := t.Snapshot()
		if len(snaps) > n {
			snaps = snaps[:n]
		}
		now := clock.Now().UnixNano()
		out := struct {
			Flows int        `json:"flows"`
			Shown int        `json:"shown"`
			Top   []flowJSON `json:"top"`
		}{Flows: t.Len(), Shown: len(snaps)}
		for _, s := range snaps {
			out.Top = append(out.Top, snapshotJSON(s, now))
		}
		writeJSON(w, out)
	})
}

// StatsHandler serves the telemetry counters, the aggregator
// counters, and whatever extra point-in-time state the caller
// contributes (cache counters, worker-pool stats, ...). extra may be
// nil.
func StatsHandler(t *Table, a *Aggregator, extra func() map[string]any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		c := t.Counters()
		out := map[string]any{
			"flows_live": t.Len(),
			"telemetry": map[string]uint64{
				"flows_created":  c.FlowsCreated.Load(),
				"flows_expired":  c.FlowsExpired.Load(),
				"flows_evicted":  c.FlowsEvicted.Load(),
				"records_queued": c.RecordsQueued.Load(),
				"records_lost":   c.RecordsLost.Load(),
				"samples_queued": c.SamplesQueued.Load(),
				"samples_lost":   c.SamplesLost.Load(),
				"sweeps":         c.Sweeps.Load(),
			},
		}
		if a != nil {
			s := a.Stats()
			out["aggregator"] = map[string]uint64{
				"drained":       s.Drained,
				"flow_records":  s.FlowRecords,
				"biflows":       s.Biflows,
				"samples":       s.Samples,
				"messages":      s.Messages,
				"export_errors": s.ExportErrors,
			}
		}
		if extra != nil {
			for k, v := range extra() {
				out[k] = v
			}
		}
		writeJSON(w, out)
	})
}

// NewMux mounts the live views on a fresh ServeMux: /flows and
// /stats. Flow ages are rendered on the aggregator's clock when one
// is supplied, keeping the HTTP view on the same timeline as exports.
func NewMux(t *Table, a *Aggregator, extra func() map[string]any) *http.ServeMux {
	var clock netem.Clock
	if a != nil {
		clock = a.Clock()
	}
	mux := http.NewServeMux()
	mux.Handle("/flows", FlowsHandler(t, clock))
	mux.Handle("/stats", StatsHandler(t, a, extra))
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}
