package openflow

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Instruction type codes (ofp_instruction_type).
const (
	InstrTypeGotoTable    uint16 = 1
	InstrTypeWriteActions uint16 = 3
	InstrTypeApplyActions uint16 = 4
	InstrTypeClearActions uint16 = 5
	InstrTypeMeter        uint16 = 6
)

// Instruction is one flow-entry instruction.
type Instruction interface {
	// InstrType returns the ofp_instruction_type code.
	InstrType() uint16
	// marshal encodes the instruction.
	marshal() ([]byte, error)
	// String renders the instruction.
	String() string
}

// InstrGotoTable continues the pipeline at another table.
type InstrGotoTable struct {
	TableID uint8
}

// InstrType implements Instruction.
func (i *InstrGotoTable) InstrType() uint16 { return InstrTypeGotoTable }

func (i *InstrGotoTable) marshal() ([]byte, error) {
	buf := make([]byte, 8)
	binary.BigEndian.PutUint16(buf[0:2], InstrTypeGotoTable)
	binary.BigEndian.PutUint16(buf[2:4], 8)
	buf[4] = i.TableID
	return buf, nil
}

// String implements Instruction.
func (i *InstrGotoTable) String() string { return fmt.Sprintf("goto_table:%d", i.TableID) }

// InstrApplyActions executes actions immediately.
type InstrApplyActions struct {
	Actions []Action
}

// InstrType implements Instruction.
func (i *InstrApplyActions) InstrType() uint16 { return InstrTypeApplyActions }

func (i *InstrApplyActions) marshal() ([]byte, error) {
	acts, err := marshalActions(i.Actions)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 8+len(acts))
	binary.BigEndian.PutUint16(buf[0:2], InstrTypeApplyActions)
	binary.BigEndian.PutUint16(buf[2:4], uint16(len(buf)))
	copy(buf[8:], acts)
	return buf, nil
}

// String implements Instruction.
func (i *InstrApplyActions) String() string { return "apply(" + actionsString(i.Actions) + ")" }

// InstrWriteActions merges actions into the action set.
type InstrWriteActions struct {
	Actions []Action
}

// InstrType implements Instruction.
func (i *InstrWriteActions) InstrType() uint16 { return InstrTypeWriteActions }

func (i *InstrWriteActions) marshal() ([]byte, error) {
	acts, err := marshalActions(i.Actions)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 8+len(acts))
	binary.BigEndian.PutUint16(buf[0:2], InstrTypeWriteActions)
	binary.BigEndian.PutUint16(buf[2:4], uint16(len(buf)))
	copy(buf[8:], acts)
	return buf, nil
}

// String implements Instruction.
func (i *InstrWriteActions) String() string { return "write(" + actionsString(i.Actions) + ")" }

// InstrClearActions empties the action set.
type InstrClearActions struct{}

// InstrType implements Instruction.
func (i *InstrClearActions) InstrType() uint16 { return InstrTypeClearActions }

func (i *InstrClearActions) marshal() ([]byte, error) {
	buf := make([]byte, 8)
	binary.BigEndian.PutUint16(buf[0:2], InstrTypeClearActions)
	binary.BigEndian.PutUint16(buf[2:4], 8)
	return buf, nil
}

// String implements Instruction.
func (i *InstrClearActions) String() string { return "clear_actions" }

// InstrMeter directs the packet through a meter first.
type InstrMeter struct {
	MeterID uint32
}

// InstrType implements Instruction.
func (i *InstrMeter) InstrType() uint16 { return InstrTypeMeter }

func (i *InstrMeter) marshal() ([]byte, error) {
	buf := make([]byte, 8)
	binary.BigEndian.PutUint16(buf[0:2], InstrTypeMeter)
	binary.BigEndian.PutUint16(buf[2:4], 8)
	binary.BigEndian.PutUint32(buf[4:8], i.MeterID)
	return buf, nil
}

// String implements Instruction.
func (i *InstrMeter) String() string { return fmt.Sprintf("meter:%d", i.MeterID) }

// marshalInstructions concatenates instruction encodings.
func marshalInstructions(instrs []Instruction) ([]byte, error) {
	var buf bytes.Buffer
	for _, in := range instrs {
		b, err := in.marshal()
		if err != nil {
			return nil, err
		}
		buf.Write(b)
	}
	return buf.Bytes(), nil
}

// unmarshalInstructions decodes a packed instruction list.
func unmarshalInstructions(data []byte) ([]Instruction, error) {
	var out []Instruction
	for len(data) > 0 {
		if len(data) < 8 {
			return nil, fmt.Errorf("openflow: truncated instruction header")
		}
		typ := binary.BigEndian.Uint16(data[0:2])
		ilen := int(binary.BigEndian.Uint16(data[2:4]))
		if ilen < 8 || ilen > len(data) {
			return nil, fmt.Errorf("openflow: bad instruction length %d", ilen)
		}
		body := data[:ilen]
		switch typ {
		case InstrTypeGotoTable:
			out = append(out, &InstrGotoTable{TableID: body[4]})
		case InstrTypeApplyActions:
			acts, err := unmarshalActions(body[8:])
			if err != nil {
				return nil, err
			}
			out = append(out, &InstrApplyActions{Actions: acts})
		case InstrTypeWriteActions:
			acts, err := unmarshalActions(body[8:])
			if err != nil {
				return nil, err
			}
			out = append(out, &InstrWriteActions{Actions: acts})
		case InstrTypeClearActions:
			out = append(out, &InstrClearActions{})
		case InstrTypeMeter:
			out = append(out, &InstrMeter{MeterID: binary.BigEndian.Uint32(body[4:8])})
		default:
			return nil, fmt.Errorf("openflow: unsupported instruction type %d", typ)
		}
		data = data[ilen:]
	}
	return out, nil
}

// instructionsString renders an instruction list.
func instructionsString(instrs []Instruction) string {
	var b bytes.Buffer
	for i, in := range instrs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(in.String())
	}
	if b.Len() == 0 {
		return "drop"
	}
	return b.String()
}
