package softswitch

import (
	"sync"
	"testing"
	"time"

	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

func flowMod(cmd uint8, table uint8, priority uint16, m openflow.Match, instrs ...openflow.Instruction) *openflow.FlowMod {
	return &openflow.FlowMod{
		TableID: table, Command: cmd, Priority: priority,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
		Match: m, Instructions: instrs,
	}
}

func TestMicroflowCacheHitCounters(t *testing.T) {
	r := newRig(t, 2)
	m := openflow.Match{}
	m.WithInPort(1)
	addFlow(t, r.sw, 0, 10, m, apply(out(2)))

	f := udpFrame(t, macA, macB, ipA, ipB, 1, 2, "x")
	for i := 0; i < 5; i++ {
		r.inject(t, 1, f)
	}
	if r.hosts[2].count() != 5 {
		t.Fatalf("forwarded %d", r.hosts[2].count())
	}
	cs := r.sw.CacheStats()
	if cs == nil {
		t.Fatal("cache disabled by default")
	}
	if cs.Misses.Load() != 1 || cs.Hits.Load() != 4 || cs.Inserts.Load() != 1 {
		t.Errorf("cache stats: %s", cs)
	}
	// One program, two tiers: the exact-match entry plus the megaflow
	// entry for its mask class.
	if r.sw.CacheLen() != 2 {
		t.Errorf("cache len = %d", r.sw.CacheLen())
	}
	// Flow counters must account every packet, cached or not.
	fs := r.sw.FlowStats(openflow.TableAll)
	if len(fs) != 1 || fs[0].PacketCount != 5 {
		t.Errorf("flow stats: %+v", fs)
	}
	lookups, matched := r.sw.Table(0).Stats()
	if lookups != 5 || matched != 5 {
		t.Errorf("table stats: %d/%d", lookups, matched)
	}
}

// TestCacheInvalidationFlowMod is the acceptance scenario: install a
// flow, forward (populating the cache), then modify/replace/delete the
// flow and assert the very next packet follows the new pipeline state.
func TestCacheInvalidationFlowMod(t *testing.T) {
	r := newRig(t, 4)
	m := openflow.Match{}
	m.WithInPort(1)
	addFlow(t, r.sw, 0, 10, m, apply(out(2)))

	f := udpFrame(t, macA, macB, ipA, ipB, 1, 2, "x")
	r.inject(t, 1, f) // miss: walk + cache fill
	r.inject(t, 1, f) // hit
	if r.hosts[2].count() != 2 {
		t.Fatalf("port2 = %d", r.hosts[2].count())
	}

	// FlowAdd with identical match+priority replaces the entry.
	if _, err := r.sw.ApplyFlowMod(flowMod(openflow.FlowAdd, 0, 10, m, apply(out(3)))); err != nil {
		t.Fatal(err)
	}
	r.inject(t, 1, f)
	if r.hosts[2].count() != 2 || r.hosts[3].count() != 1 {
		t.Fatalf("after replace: port2=%d port3=%d", r.hosts[2].count(), r.hosts[3].count())
	}

	// FlowModify rewrites the instructions in place.
	if _, err := r.sw.ApplyFlowMod(flowMod(openflow.FlowModify, 0, 10, m, apply(out(4)))); err != nil {
		t.Fatal(err)
	}
	r.inject(t, 1, f)
	if r.hosts[3].count() != 1 || r.hosts[4].count() != 1 {
		t.Fatalf("after modify: port3=%d port4=%d", r.hosts[3].count(), r.hosts[4].count())
	}

	// FlowDelete: the very next packet must miss and drop.
	drops := r.sw.Drops()
	if _, err := r.sw.ApplyFlowMod(flowMod(openflow.FlowDelete, 0, 0, openflow.Match{})); err != nil {
		t.Fatal(err)
	}
	r.inject(t, 1, f)
	if r.hosts[4].count() != 1 {
		t.Errorf("forwarded after delete: port4=%d", r.hosts[4].count())
	}
	if r.sw.Drops() != drops+1 {
		t.Errorf("drops = %d, want %d", r.sw.Drops(), drops+1)
	}
	if inv := r.sw.CacheStats().Invalidations.Load(); inv < 3 {
		t.Errorf("invalidations = %d, want >= 3", inv)
	}
}

func TestCacheInvalidationOnExpiry(t *testing.T) {
	clk := netem.NewManualClock()
	r := newRig(t, 2, WithClock(clk))
	m := openflow.Match{}
	m.WithInPort(1)
	if _, err := r.sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowAdd, Priority: 10, IdleTimeout: 5,
		Flags:    openflow.FlowFlagSendFlowRem,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
		Match: m, Instructions: []openflow.Instruction{apply(out(2))},
	}); err != nil {
		t.Fatal(err)
	}
	f := udpFrame(t, macA, macB, ipA, ipB, 1, 2, "x")
	r.inject(t, 1, f)
	r.inject(t, 1, f)
	if r.hosts[2].count() != 2 {
		t.Fatalf("port2 = %d", r.hosts[2].count())
	}
	clk.Advance(6 * time.Second)
	if removed := r.sw.SweepExpired(); len(removed) != 1 {
		t.Fatalf("expired %d", len(removed))
	}
	r.inject(t, 1, f)
	if r.hosts[2].count() != 2 {
		t.Error("cached megaflow survived entry expiry")
	}
}

// TestCacheInvalidationOnGroupMod: a cached program that traverses a
// group must observe a group-mod on the very next packet.
func TestCacheInvalidationOnGroupMod(t *testing.T) {
	r := newRig(t, 3)
	if err := r.sw.Groups().Apply(&openflow.GroupMod{
		Command: openflow.GroupAdd, GroupType: openflow.GroupTypeIndirect, GroupID: 1,
		Buckets: []openflow.Bucket{{Actions: []openflow.Action{out(2)}}},
	}); err != nil {
		t.Fatal(err)
	}
	addFlow(t, r.sw, 0, 10, openflow.Match{}, apply(&openflow.ActionGroup{GroupID: 1}))

	f := udpFrame(t, macA, macB, ipA, ipB, 1, 2, "g")
	r.inject(t, 1, f)
	r.inject(t, 1, f)
	if r.hosts[2].count() != 2 {
		t.Fatalf("port2 = %d", r.hosts[2].count())
	}
	if err := r.sw.Groups().Apply(&openflow.GroupMod{
		Command: openflow.GroupModify, GroupType: openflow.GroupTypeIndirect, GroupID: 1,
		Buckets: []openflow.Bucket{{Actions: []openflow.Action{out(3)}}},
	}); err != nil {
		t.Fatal(err)
	}
	r.inject(t, 1, f)
	if r.hosts[2].count() != 2 || r.hosts[3].count() != 1 {
		t.Errorf("after group-mod: port2=%d port3=%d", r.hosts[2].count(), r.hosts[3].count())
	}
}

// TestCachedMatchesUncached replays the multi-table action-set program
// of the pipeline tests with the cache on and off; the outputs must be
// identical packet for packet.
func TestCachedMatchesUncached(t *testing.T) {
	run := func(cached bool) [2]int {
		r := newRig(t, 3, WithMicroflowCache(cached))
		m := openflow.Match{}
		m.WithInPort(1)
		addFlow(t, r.sw, 0, 10, m,
			&openflow.InstrWriteActions{Actions: []openflow.Action{out(2)}},
			&openflow.InstrGotoTable{TableID: 1},
		)
		m80 := openflow.Match{}
		m80.WithEthType(pkt.EtherTypeIPv4).WithIPProto(pkt.IPProtoUDP).WithUDPDst(80)
		addFlow(t, r.sw, 1, 20, m80,
			&openflow.InstrWriteActions{Actions: []openflow.Action{out(3)}},
		)
		addFlow(t, r.sw, 1, 1, openflow.Match{})
		for i := 0; i < 3; i++ {
			r.inject(t, 1, udpFrame(t, macA, macB, ipA, ipB, 1000, 80, "web"))
			r.inject(t, 1, udpFrame(t, macA, macB, ipA, ipB, 1000, 53, "dns"))
		}
		return [2]int{r.hosts[2].count(), r.hosts[3].count()}
	}
	cached, uncached := run(true), run(false)
	if cached != uncached || cached != [2]int{3, 3} {
		t.Errorf("cached=%v uncached=%v", cached, uncached)
	}
}

func TestCacheEvictionUnderThrash(t *testing.T) {
	// Capacity of one entry per shard per tier: distinct flows fight
	// for slots, forwarding must stay correct throughout. Bypass is off
	// so the chain keeps installing however bad the hit rate gets. The
	// never-matched src-port entry widens table 0's consult mask to
	// include l4_src, so the 200 flows land in 200 distinct megaflow
	// classes rather than collapsing into one match-anything entry.
	r := newRig(t, 2, WithMicroflowCacheSize(cacheShards), WithAdaptiveBypass(false))
	distract := openflow.Match{}
	distract.WithEthType(pkt.EtherTypeIPv4).WithIPProto(pkt.IPProtoUDP).WithUDPSrc(9999)
	addFlow(t, r.sw, 0, 5, distract, apply(out(2)))
	addFlow(t, r.sw, 0, 1, openflow.Match{}, apply(out(2)))
	n := 0
	for i := 0; i < 4; i++ {
		for p := uint16(1); p <= 200; p++ {
			r.inject(t, 1, udpFrame(t, macA, macB, ipA, ipB, p, 80, "t"))
			n++
		}
	}
	if r.hosts[2].count() != n {
		t.Errorf("forwarded %d of %d under thrash", r.hosts[2].count(), n)
	}
	cs := r.sw.CacheStats()
	if cs.Evictions.Load() == 0 {
		t.Errorf("no evictions under thrash: %s", cs)
	}
	if r.sw.CacheLen() > 2*cacheShards {
		t.Errorf("cache grew past capacity: %d", r.sw.CacheLen())
	}
}

// TestCacheMeterDropCreditsLikeWalk: a cached program whose table-0
// meter drops a replayed packet must credit only table 0 — the walk
// returns at the meter without ever consulting table 1, and cached
// counters and idle timeouts must not diverge from that.
func TestCacheMeterDropCreditsLikeWalk(t *testing.T) {
	clk := netem.NewManualClock()
	r := newRig(t, 2, WithClock(clk))
	if err := r.sw.Meters().Apply(&openflow.MeterMod{
		Command: openflow.MeterAdd, Flags: openflow.MeterFlagPktps, MeterID: 1,
		Bands: []openflow.MeterBand{{Type: openflow.MeterBandDrop, Rate: 2, BurstSize: 2}},
	}); err != nil {
		t.Fatal(err)
	}
	m := openflow.Match{}
	m.WithInPort(1)
	addFlow(t, r.sw, 0, 10, m,
		&openflow.InstrMeter{MeterID: 1},
		&openflow.InstrGotoTable{TableID: 1},
	)
	addFlow(t, r.sw, 1, 1, openflow.Match{}, apply(out(2)))

	f := udpFrame(t, macA, macB, ipA, ipB, 1, 2, "m")
	for i := 0; i < 10; i++ {
		r.inject(t, 1, f) // 2 pass the burst, 8 drop at the meter
	}
	if got := r.hosts[2].count(); got != 2 {
		t.Fatalf("passed %d, want 2 (burst)", got)
	}
	l0, _ := r.sw.Table(0).Stats()
	l1, _ := r.sw.Table(1).Stats()
	if l0 != 10 || l1 != 2 {
		t.Errorf("table lookups: t0=%d t1=%d, want 10/2", l0, l1)
	}
	// The table-1 entry saw only the 2 passed packets; after its idle
	// timeout it must expire even while meter-dropped replays continue.
	fs := r.sw.FlowStats(1)
	if len(fs) != 1 || fs[0].PacketCount != 2 {
		t.Errorf("table1 flow stats: %+v", fs)
	}
}

// TestConcurrentReceiveFlowMod hammers the datapath from several
// goroutines while flow-mods (add, modify, delete) and expiry sweeps
// run concurrently. It passes when run under -race and every packet is
// either forwarded or dropped (conservation). Under -short the
// iteration counts shrink 10x so the CI race matrix stays fast.
func TestConcurrentReceiveFlowMod(t *testing.T) {
	sw := New("race", 0x42)
	l := netem.NewLink(netem.LinkConfig{})
	defer l.Close()
	sw.AttachNetPort(2, "out", l.A())
	l.B().SetReceiver(func([]byte) {})

	m := openflow.Match{}
	m.WithInPort(1)
	addFlow(t, sw, 0, 10, m, apply(out(2)))

	const writers = 4
	packets, mods := 2000, 300
	if testing.Short() {
		packets, mods = 200, 30
	}
	frames := make([][]byte, 8)
	for i := range frames {
		frames[i] = udpFrame(t, macA, macB, ipA, ipB, uint16(1000+i), 80, "race")
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < packets; i++ {
				sw.Receive(1, frames[(w+i)%len(frames)])
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < mods; i++ {
			port := uint32(2)
			_, _ = sw.ApplyFlowMod(flowMod(openflow.FlowModify, 0, 10, m, apply(out(port))))
			_, _ = sw.ApplyFlowMod(flowMod(openflow.FlowAdd, 0, 10, m, apply(out(port))))
			if i%10 == 0 {
				_, _ = sw.ApplyFlowMod(flowMod(openflow.FlowDelete, 0, 0, openflow.Match{}))
				_, _ = sw.ApplyFlowMod(flowMod(openflow.FlowAdd, 0, 10, m, apply(out(port))))
			}
			sw.SweepExpired()
		}
	}()
	wg.Wait()

	rx := sw.PortCounters(2).TxPackets.Load() // frames that left port 2
	if rx+sw.Drops() != uint64(writers*packets) {
		t.Errorf("conservation: tx=%d drops=%d, want sum %d", rx, sw.Drops(), writers*packets)
	}
}
