package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/harmless-sdn/harmless/internal/softswitch
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSingleFlow/cached-8         	 3000000	       321 ns/op	   3115264 pps	       0 B/op	       0 allocs/op
BenchmarkSingleFlow/cached-8         	 3200000	       299 ns/op	   3344481 pps	       0 B/op	       0 allocs/op
BenchmarkWorkerScaling/workers=4-8   	 1000000	      1042 ns/op	    959692 pps	       0 B/op	       0 allocs/op
PASS
ok  	github.com/harmless-sdn/harmless/internal/softswitch	2.718s
`

func TestParseBench(t *testing.T) {
	results, panics, fails, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(panics) != 0 || len(fails) != 0 {
		t.Fatalf("clean output flagged: panics=%v fails=%v", panics, fails)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(results))
	}
	// The GOMAXPROCS suffix is stripped and -count runs averaged.
	sf := results["BenchmarkSingleFlow/cached"]
	if sf == nil {
		t.Fatal("BenchmarkSingleFlow/cached not found (name not normalized?)")
	}
	if sf.Iterations != 3100000 {
		t.Errorf("iterations = %d, want the 3.1M average", sf.Iterations)
	}
	if got := sf.Metrics["ns/op"]; got != 310 {
		t.Errorf("ns/op = %v, want 310 (average of 321 and 299)", got)
	}
	ws := results["BenchmarkWorkerScaling/workers=4"]
	if ws == nil || ws.Metrics["pps"] != 959692 {
		t.Errorf("worker scaling row = %+v", ws)
	}
}

func TestParseBenchFailureMarkers(t *testing.T) {
	out := `BenchmarkBroken-8   	       0	       0 ns/op
panic: runtime error: index out of range
--- FAIL: TestSomething
FAIL	github.com/harmless-sdn/harmless/internal/netem	0.1s
`
	results, panics, fails, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(panics) != 1 {
		t.Errorf("panics = %v", panics)
	}
	if len(fails) != 2 {
		t.Errorf("fails = %v", fails)
	}
	if results["BenchmarkBroken"].Iterations != 0 {
		t.Errorf("zero-iteration run not preserved: %+v", results["BenchmarkBroken"])
	}
}

func TestDeltaDirection(t *testing.T) {
	// ns/op: up is a regression.
	if d := delta("ns/op", 100, 150); d != 0.5 {
		t.Errorf("ns/op delta = %v, want +0.5", d)
	}
	// pps: down is a regression.
	if d := delta("pps", 1000, 500); d != 0.5 {
		t.Errorf("pps delta = %v, want +0.5", d)
	}
	if d := delta("pps", 1000, 2000); d != -1.0 {
		t.Errorf("pps improvement delta = %v, want -1.0", d)
	}
	if d := delta("ns/op", 0, 100); d != 0 {
		t.Errorf("zero baseline delta = %v, want 0", d)
	}
}

func res(metrics map[string]float64) *Result {
	return &Result{Iterations: 1, Metrics: metrics}
}

func TestPairCheck(t *testing.T) {
	results := map[string]*Result{
		// Clear win: 2x the uncached throughput.
		"BenchmarkManyFlows/uniform/cached":   res(map[string]float64{"pps": 2.0e6}),
		"BenchmarkManyFlows/uniform/uncached": res(map[string]float64{"pps": 1.0e6}),
		// Within tolerance: 92% of uncached passes at tol=0.15.
		"BenchmarkManyFlows/thrash/cached":   res(map[string]float64{"pps": 0.92e6}),
		"BenchmarkManyFlows/thrash/uncached": res(map[string]float64{"pps": 1.0e6}),
		// No sibling: ignored, not failed.
		"BenchmarkSingleFlow/cached": res(map[string]float64{"pps": 3.0e6}),
	}
	if bad := pairCheck(results, 0.15); bad != 0 {
		t.Errorf("pairCheck = %d failures, want 0", bad)
	}
	// Tighten the tolerance below the thrash ratio: one failure.
	if bad := pairCheck(results, 0.05); bad != 1 {
		t.Errorf("pairCheck(tol=0.05) = %d failures, want 1", bad)
	}
}

func TestPairCheckDerivesFromNsOp(t *testing.T) {
	// pps missing on one side: fall back to 1e9/ns. 500 ns/op cached
	// vs 1000 ns/op uncached is a 2x win.
	results := map[string]*Result{
		"BenchmarkX/cached":   res(map[string]float64{"ns/op": 500}),
		"BenchmarkX/uncached": res(map[string]float64{"ns/op": 1000}),
	}
	if bad := pairCheck(results, 0.15); bad != 0 {
		t.Errorf("pairCheck on ns/op-only results = %d failures, want 0", bad)
	}
}

func TestPairCheckEmptyRunFails(t *testing.T) {
	// A run with no cached/uncached pairs at all must fail: the gate
	// silently passing because the workloads were renamed is exactly
	// the regression it exists to catch.
	results := map[string]*Result{
		"BenchmarkLonely": res(map[string]float64{"pps": 1e6}),
	}
	if bad := pairCheck(results, 0.15); bad != 1 {
		t.Errorf("pairCheck on pairless run = %d failures, want 1", bad)
	}
}

func TestNormalizeName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkSingleFlow/cached-8":       "BenchmarkSingleFlow/cached",
		"BenchmarkWorkerScaling/workers=4-8": "BenchmarkWorkerScaling/workers=4",
		"BenchmarkPlain":                     "BenchmarkPlain",
	} {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
