package harmless_test

// Experiment suite: each TestEn_* function reproduces one experiment
// from DESIGN.md's index (the demo paper's Fig. 1 and its quantitative
// claims). EXPERIMENTS.md records the paper-vs-measured outcome; the
// benches in bench_test.go produce the numeric series.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/harmless-sdn/harmless/internal/controller"
	"github.com/harmless-sdn/harmless/internal/controller/apps"
	"github.com/harmless-sdn/harmless/internal/cost"
	"github.com/harmless-sdn/harmless/internal/fabric"
	"github.com/harmless-sdn/harmless/internal/legacy"
	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/stats"
)

// TestE1_Fig1 reproduces the paper's Figure 1 walk-through: Host 1 and
// Host 2 hang off legacy access ports 1 and 2 (VLANs 101/102); the DMZ
// policy permits exactly this pair. The test verifies the green-dashed
// path hop by hop: tagged 101 on the trunk towards SS_1, untagged
// through SS_2's pipeline, hairpinned back tagged 102, and delivered
// untagged to Host 2 — plus the policy's deny-by-default for a third
// host.
func TestE1_Fig1(t *testing.T) {
	dmz := &apps.DMZ{Table: 0, NextTable: 1}
	dmz.Permit(fabric.HostIP(1), fabric.HostIP(2))
	learning := &apps.Learning{Table: 1}

	d, err := fabric.BuildDeployment(fabric.DeployConfig{
		NumPorts: 4, // ports 1..3 access (hosts), port 4 trunk
		Apps:     []controller.App{dmz, learning},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.WaitConnected(3 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Tap the trunk in both directions.
	cap := fabric.NewCapture()
	fabric.Tap(d.TrunkLink.B(), cap, "legacy->ss1") // frames entering SS_1
	fabric.Tap(d.TrunkLink.A(), cap, "ss1->legacy") // frames hairpinned back

	h1, h2, h3 := d.Hosts[1], d.Hosts[2], d.Hosts[3]
	if err := h1.Ping(h2.IP, 2*time.Second); err != nil {
		t.Fatalf("Fig.1 permitted path broken: %v", err)
	}

	// Hop verification: every trunk frame towards SS_1 is tagged with
	// the sender's port VLAN; every frame back is tagged with the
	// receiver's port VLAN.
	toSS1 := cap.At("legacy->ss1")
	if len(toSS1) == 0 {
		t.Fatal("no frames captured on the trunk towards SS_1")
	}
	for _, f := range toSS1 {
		vid, tagged := pkt.VLANID(f.Data)
		if !tagged || (vid != 101 && vid != 102) {
			t.Errorf("trunk->SS_1 frame not tagged 101/102: %s", f.Summary())
		}
	}
	back := cap.At("ss1->legacy")
	if len(back) == 0 {
		t.Fatal("no hairpinned frames captured")
	}
	seen101, seen102 := false, false
	for _, f := range back {
		vid, tagged := pkt.VLANID(f.Data)
		if !tagged {
			t.Errorf("hairpinned frame untagged: %s", f.Summary())
			continue
		}
		switch vid {
		case 101:
			seen101 = true
		case 102:
			seen102 = true
		}
	}
	// The ping (request to h2, reply to h1) must produce hairpins to
	// both VLANs.
	if !seen101 || !seen102 {
		t.Errorf("hairpin VLANs: 101=%v 102=%v\n%s", seen101, seen102, cap)
	}

	// DMZ row: a third host is denied both ways.
	if err := h3.Ping(h1.IP, 300*time.Millisecond); err == nil {
		t.Error("unpermitted host reached h1 through the DMZ")
	}
	// Every packet traversed the OF pipeline: SS_2 lookups > 0.
	lookups, _ := d.S4.SS2.Table(0).Stats()
	if lookups == 0 {
		t.Error("SS_2 pipeline was bypassed")
	}
	t.Logf("E1: %d frames to SS_1, %d hairpinned, SS_2 lookups=%d",
		len(toSS1), len(back), lookups)
}

// TestE3_LatencyPenalty measures one-way-ish RTT through (i) the bare
// legacy switch (two hosts in one VLAN, no HARMLESS) and (ii) the full
// HARMLESS path, over async links with identical 200µs one-way delay.
// The claim under test: the HARMLESS detour adds wire hops but "no
// major latency penalty" — the penalty must stay within the extra
// propagation the detour necessarily adds (2 extra traversals of the
// trunk per direction) plus processing, far below one order of
// magnitude.
func TestE3_LatencyPenalty(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	const oneWay = 200 * time.Microsecond
	linkCfg := netem.LinkConfig{Async: true, Latency: oneWay}

	// Baseline: two hosts on a plain legacy switch.
	baseRTT := func() time.Duration {
		sw := legacyTwoHostRig(t, linkCfg)
		defer sw.close()
		if err := sw.h1.Ping(sw.h2.IP, 2*time.Second); err != nil { // warm ARP
			t.Fatal(err)
		}
		return medianPingRTT(t, sw.h1, sw.h2.IP, 20)
	}()

	// HARMLESS path.
	harmlessRTT := func() time.Duration {
		d, err := fabric.BuildDeployment(fabric.DeployConfig{
			NumPorts:   4,
			Apps:       []controller.App{&apps.Learning{Table: 0}},
			LinkConfig: linkCfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		if err := d.WaitConnected(3 * time.Second); err != nil {
			t.Fatal(err)
		}
		if err := d.Hosts[1].Ping(d.Hosts[2].IP, 2*time.Second); err != nil { // warm ARP + flows
			t.Fatal(err)
		}
		return medianPingRTT(t, d.Hosts[1], d.Hosts[2].IP, 20)
	}()

	// Baseline RTT crosses 2 host links twice: 4 one-way delays.
	// HARMLESS adds the trunk twice per direction: 8 one-way delays.
	// Expected penalty ≈ 4*oneWay plus processing.
	penalty := harmlessRTT - baseRTT
	t.Logf("E3: base RTT=%v harmless RTT=%v penalty=%v (wire floor %v)",
		baseRTT, harmlessRTT, penalty, 4*oneWay)
	if harmlessRTT > 10*baseRTT {
		t.Errorf("latency penalty out of bounds: %v vs %v", harmlessRTT, baseRTT)
	}
}

// newBareLegacySwitch builds the 2-port baseline switch for E3.
func newBareLegacySwitch(t *testing.T) *legacy.Switch {
	t.Helper()
	return legacy.NewSwitch("baseline", 2)
}

// twoHostRig is the E3 baseline topology.
type twoHostRig struct {
	h1, h2 *fabric.Host
	links  []*netem.Link
}

func (r *twoHostRig) close() {
	for _, l := range r.links {
		l.Close()
	}
}

func legacyTwoHostRig(t *testing.T, linkCfg netem.LinkConfig) *twoHostRig {
	t.Helper()
	sw := newBareLegacySwitch(t)
	r := &twoHostRig{}
	for i := 1; i <= 2; i++ {
		lc := linkCfg
		lc.Name = fmt.Sprintf("base-h%d", i)
		l := netem.NewLink(lc)
		r.links = append(r.links, l)
		sw.AttachPort(i, l.A())
		h := fabric.NewHost(fmt.Sprintf("bh%d", i), fabric.HostMAC(i), fabric.HostIP(i), l.B())
		if i == 1 {
			r.h1 = h
		} else {
			r.h2 = h
		}
	}
	return r
}

// medianPingRTT measures n RTTs, logs the distribution, and returns
// the median.
func medianPingRTT(t *testing.T, h *fabric.Host, dst pkt.IPv4, n int) time.Duration {
	t.Helper()
	hist := stats.NewHistogram()
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := h.Ping(dst, 2*time.Second); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
		hist.RecordDuration(time.Since(start))
	}
	t.Logf("  rtt distribution %s -> %s: %s", h.Name, dst, hist.Summarize())
	return time.Duration(hist.Percentile(50))
}

// TestE4_CostModel regenerates the cost table behind the title claim:
// HARMLESS must be the cheapest strategy at every evaluated scale and
// the per-port cost must sit well under the COTS per-port cost.
func TestE4_CostModel(t *testing.T) {
	catalog := cost.DefaultCatalog2017()
	rows, err := catalog.Sweep([]int{8, 24, 48, 96, 192, 384}, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("E4 cost table (migration, legacy sunk):\n%s", cost.FormatTable(rows))
	for _, r := range rows {
		if r.Winner != cost.HARMLESS {
			t.Errorf("at %d ports: winner %s, want harmless", r.Ports, r.Winner)
		}
		if r.HARMLESS.PerPort >= r.RipAndReplace.PerPort {
			t.Errorf("at %d ports: HARMLESS $%.2f/port >= COTS $%.2f/port",
				r.Ports, r.HARMLESS.PerPort, r.RipAndReplace.PerPort)
		}
	}
	// Sensitivity: the break-even server price at 48 ports must be
	// above the catalog server price (otherwise the claim collapses).
	if be := catalog.BreakEvenServerPrice(48); be <= catalog.ServerPrice {
		t.Errorf("break-even server price $%.0f <= catalog $%.0f", be, catalog.ServerPrice)
	}
	// Greenfield check: even buying the legacy switch new, HARMLESS
	// stays cheaper than COTS at access-edge scales.
	green, err := catalog.Sweep([]int{24, 48, 96}, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range green {
		if r.HARMLESS.Total >= r.RipAndReplace.Total {
			t.Errorf("greenfield at %d ports: HARMLESS $%.0f >= COTS $%.0f",
				r.Ports, r.HARMLESS.Total, r.RipAndReplace.Total)
		}
	}
}

// TestE5_LoadBalancer reproduces demo use case (a) end to end: web
// clients behind one access port address a virtual IP; the LB app
// spreads them across two backends by source IP; a real HTTP-lite GET
// completes through the VIP.
func TestE5_LoadBalancer(t *testing.T) {
	vip := pkt.MustIPv4("10.0.0.100")
	vmac := pkt.MustMAC("02:00:00:00:01:00")
	lb := &apps.LoadBalancer{
		Table: 0, VIP: vip, VMAC: vmac, ServicePort: 80,
		Backends: []apps.Backend{
			{IP: fabric.HostIP(1), MAC: fabric.HostMAC(1), Port: 1},
			{IP: fabric.HostIP(2), MAC: fabric.HostMAC(2), Port: 2},
		},
	}
	learning := &apps.Learning{Table: 1}
	d, err := fabric.BuildDeployment(fabric.DeployConfig{
		NumPorts: 4,
		Apps:     []controller.App{lb, learning},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.WaitConnected(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		d.Hosts[i].ServeTCP(80, func(req []byte) []byte {
			return []byte(fmt.Sprintf("HTTP/1.0 200 OK\r\n\r\nbackend-%d", i))
		})
	}
	client := d.Hosts[3]

	// A real GET through the VIP (exercises controller ARP reply,
	// DNAT, reverse SNAT, and the hairpin path twice per segment).
	resp, err := client.GetTCP(vip, 80, []byte("GET / HTTP/1.0\r\n\r\n"), 3*time.Second)
	if err != nil {
		t.Fatalf("GET via VIP: %v", err)
	}
	if !bytes.Contains(resp, []byte("200 OK")) {
		t.Errorf("response: %q", resp)
	}

	// Distribution: 64 emulated clients (distinct source IPs) behind
	// the client port; backends must split them by source-IP parity.
	rx1a, _ := d.Hosts[1].Stats()
	rx2a, _ := d.Hosts[2].Stats()
	for i := 0; i < 64; i++ {
		src := pkt.IPv4{172, 16, 1, byte(i)}
		pl := pkt.Payload(nil)
		syn, err := pkt.Serialize(
			&pkt.Ethernet{Src: client.MAC, Dst: vmac, EtherType: pkt.EtherTypeIPv4},
			&pkt.IPv4Header{TTL: 64, Protocol: pkt.IPProtoTCP, Src: src, Dst: vip},
			&pkt.TCP{SrcPort: uint16(10000 + i), DstPort: 80, Flags: pkt.TCPSyn, Window: 65535},
			&pl,
		)
		if err != nil {
			t.Fatal(err)
		}
		client.SendRaw(syn)
	}
	waitUntil(t, "lb distribution", func() bool {
		rx1b, _ := d.Hosts[1].Stats()
		rx2b, _ := d.Hosts[2].Stats()
		return (rx1b-rx1a)+(rx2b-rx2a) >= 64
	})
	rx1b, _ := d.Hosts[1].Stats()
	rx2b, _ := d.Hosts[2].Stats()
	got1, got2 := rx1b-rx1a, rx2b-rx2a
	t.Logf("E5: backend shares %d/%d of 64 clients (plus the real GET)", got1, got2)
	if got1 < 24 || got2 < 24 {
		t.Errorf("distribution skewed: %d/%d, want ~32/32", got1, got2)
	}
}

// TestE6_DMZ reproduces demo use case (b): the pairwise access matrix
// over four tenant hosts, enforced in the OF pipeline, with a dynamic
// policy change.
func TestE6_DMZ(t *testing.T) {
	dmz := &apps.DMZ{Table: 0, NextTable: 1}
	learning := &apps.Learning{Table: 1}
	d, err := fabric.BuildDeployment(fabric.DeployConfig{
		NumPorts: 5, // hosts on 1..4, trunk 5
		Apps:     []controller.App{dmz, learning},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.WaitConnected(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Allow 1<->2 and 3<->4 only.
	dmz.Permit(fabric.HostIP(1), fabric.HostIP(2))
	dmz.Permit(fabric.HostIP(3), fabric.HostIP(4))
	fence(t, d)

	type pair struct {
		a, b    int
		allowed bool
	}
	matrix := []pair{
		{1, 2, true}, {2, 1, true}, {3, 4, true}, {4, 3, true},
		{1, 3, false}, {1, 4, false}, {2, 3, false}, {2, 4, false},
	}
	for _, p := range matrix {
		err := d.Hosts[p.a].Ping(fabric.HostIP(p.b), timeoutFor(p.allowed))
		if p.allowed && err != nil {
			t.Errorf("h%d->h%d should pass: %v", p.a, p.b, err)
		}
		if !p.allowed && err == nil {
			t.Errorf("h%d->h%d should be blocked", p.a, p.b)
		}
	}
	// Fine-tune on the fly (the demo's "fine-tune VM-level access
	// policies"): permit 1<->3, revoke 1<->2.
	dmz.Permit(fabric.HostIP(1), fabric.HostIP(3))
	dmz.Revoke(fabric.HostIP(1), fabric.HostIP(2))
	fence(t, d)
	if err := d.Hosts[1].Ping(fabric.HostIP(3), 2*time.Second); err != nil {
		t.Errorf("newly permitted pair fails: %v", err)
	}
	if err := d.Hosts[1].Ping(fabric.HostIP(2), 300*time.Millisecond); err == nil {
		t.Error("revoked pair still passes")
	}
	t.Log("E6: 8-entry access matrix enforced; dynamic permit/revoke verified")
}

// TestE7_ParentalControl reproduces demo use case (c): per-user web
// blocklists applied on the fly, DNS-based with an IP fallback.
func TestE7_ParentalControl(t *testing.T) {
	pc := &apps.ParentalControl{Table: 0, NextTable: 1, UplinkPort: 3}
	learning := &apps.Learning{Table: 1}
	d, err := fabric.BuildDeployment(fabric.DeployConfig{
		NumPorts: 4, // users on 1,2; resolver/uplink on 3; trunk 4
		Apps:     []controller.App{pc, learning},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.WaitConnected(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	user1, user2, resolver := d.Hosts[1], d.Hosts[2], d.Hosts[3]
	siteIP := pkt.MustIPv4("10.0.0.99")
	resolver.ServeDNS(map[string]pkt.IPv4{
		"www.videosite.test": siteIP,
		"www.school.test":    pkt.MustIPv4("10.0.0.88"),
	})

	// Block user1 from the video site.
	pc.BlockDomain(user1.IP, "videosite.test")

	// user1: blocked name -> NXDOMAIN (spoofed by the controller).
	resp, err := user1.QueryDNS(resolver.IP, "www.videosite.test", 2*time.Second)
	if err != nil {
		t.Fatalf("user1 query: %v", err)
	}
	if resp.Rcode != pkt.DNSRcodeNXDomain {
		t.Errorf("user1 rcode = %d, want NXDOMAIN", resp.Rcode)
	}
	// user1: other name resolves.
	resp, err = user1.QueryDNS(resolver.IP, "www.school.test", 2*time.Second)
	if err != nil {
		t.Fatalf("user1 school query: %v", err)
	}
	if resp.Rcode != pkt.DNSRcodeNoError || len(resp.Answers) != 1 {
		t.Errorf("school: %+v", resp)
	}
	// user2: same blocked name resolves fine.
	resp, err = user2.QueryDNS(resolver.IP, "www.videosite.test", 2*time.Second)
	if err != nil {
		t.Fatalf("user2 query: %v", err)
	}
	if resp.Rcode != pkt.DNSRcodeNoError || resp.Answers[0].A != siteIP {
		t.Errorf("user2: %+v", resp)
	}
	if pc.NXDomainCount() != 1 {
		t.Errorf("NXDOMAIN count %d", pc.NXDomainCount())
	}

	// On-the-fly unblock.
	pc.UnblockDomain(user1.IP, "videosite.test")
	resp, err = user1.QueryDNS(resolver.IP, "www.videosite.test", 2*time.Second)
	if err != nil {
		t.Fatalf("user1 after unblock: %v", err)
	}
	if resp.Rcode != pkt.DNSRcodeNoError {
		t.Errorf("after unblock rcode = %d", resp.Rcode)
	}

	// IP fallback: block the site address directly; user1's UDP to it
	// dies in the filter table while user2's passes.
	pc.BlockIP(user1.IP, fabric.HostIP(2))
	fence(t, d)
	if err := user1.Ping(user2.IP, 300*time.Millisecond); err == nil {
		t.Error("IP-blocked pair still passes")
	}
	pc.UnblockIP(user1.IP, fabric.HostIP(2))
	fence(t, d)
	if err := user1.Ping(user2.IP, 2*time.Second); err != nil {
		t.Errorf("after IP unblock: %v", err)
	}
	t.Log("E7: DNS blocklist + IP fallback enforced per user, changed on the fly")
}

// TestE9_IncrementalMigration reproduces the migration story of §1:
// only a subset of ports moves under SDN control first; unmigrated
// ports keep working via classic L2 and stay reachable across the
// boundary, and a later MigratePort extends control with zero
// disturbance to already-migrated traffic.
func TestE9_IncrementalMigration(t *testing.T) {
	learning := &apps.Learning{Table: 0}
	d, err := fabric.BuildDeployment(fabric.DeployConfig{
		NumPorts:    6, // hosts 1..5 possible, trunk 6
		HostPorts:   []int{1, 2, 3, 4},
		AccessPorts: []int{1, 2}, // migrate only 1 and 2 first
		Apps:        []controller.App{learning},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.WaitConnected(3 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Migrated <-> migrated: through HARMLESS.
	if err := d.Hosts[1].Ping(fabric.HostIP(2), 2*time.Second); err != nil {
		t.Fatalf("migrated pair: %v", err)
	}
	// Unmigrated <-> unmigrated: classic L2, must not touch SS_2.
	ss2Before, _ := d.S4.SS2.Table(0).Stats()
	if err := d.Hosts[3].Ping(fabric.HostIP(4), 2*time.Second); err != nil {
		t.Fatalf("legacy pair: %v", err)
	}
	// Cross-boundary: migrated host 1 <-> unmigrated host 3 via the
	// legacy-segment logical port.
	if err := d.Hosts[1].Ping(fabric.HostIP(3), 2*time.Second); err != nil {
		t.Fatalf("cross-boundary: %v", err)
	}
	_ = ss2Before

	// Extend the migration to port 3 while traffic still works.
	if err := d.Manager.MigratePort(3); err != nil {
		t.Fatalf("MigratePort: %v", err)
	}
	// The legacy switch's port 3 is now an access port in VLAN 103.
	cfg := d.Legacy.Config()
	if cfg.Ports[3].PVID != 103 {
		t.Errorf("port 3 PVID = %d after migration", cfg.Ports[3].PVID)
	}
	// Connectivity persists in all directions. The topology change
	// races with the controller's state flush (PORT_STATUS handling),
	// exactly like a real cutover, so allow a couple of retries.
	if err := pingRetry(d.Hosts[3], fabric.HostIP(1), 3); err != nil {
		t.Errorf("migrated h3 -> h1: %v", err)
	}
	if err := pingRetry(d.Hosts[1], fabric.HostIP(2), 3); err != nil {
		t.Errorf("pre-existing pair disturbed: %v", err)
	}
	if err := pingRetry(d.Hosts[3], fabric.HostIP(4), 3); err != nil {
		t.Errorf("h3 -> unmigrated h4: %v", err)
	}
	t.Logf("E9: ports {1,2} migrated, then port 3 added live; plan now %s", d.Manager.Plan())
}

// --- helpers ----------------------------------------------------------

func timeoutFor(allowed bool) time.Duration {
	if allowed {
		return 2 * time.Second
	}
	return 300 * time.Millisecond
}

// fence flushes pending controller->switch messages.
func fence(t *testing.T, d *fabric.Deployment) {
	t.Helper()
	h, ok := d.Ctrl.Switch(d.S4.SS2.DatapathID())
	if !ok {
		t.Fatal("switch not connected")
	}
	if err := h.Barrier(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
}

// pingRetry pings up to attempts times (cutovers race with control-
// plane reconvergence, as on real hardware).
func pingRetry(h *fabric.Host, dst pkt.IPv4, attempts int) error {
	var err error
	for i := 0; i < attempts; i++ {
		if err = h.Ping(dst, time.Second); err == nil {
			return nil
		}
	}
	return err
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}
