package harmless

import (
	"testing"

	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

// Ablation promised by DESIGN.md: the translator realized as real
// OpenFlow rules in an unmodified software switch (the paper's design,
// and this package's implementation) versus a hypothetical native
// translation that pops/pushes tags with direct function calls. The
// difference quantifies what the "SS_1 is just another OF switch"
// architectural choice costs — and shows it is small enough to justify
// the simplicity.

// benchTaggedFrame builds a VLAN-101 frame once.
func benchTaggedFrame(b *testing.B, payloadLen int) []byte {
	b.Helper()
	payload := make(pkt.Payload, payloadLen)
	inner, err := pkt.Serialize(
		&pkt.Ethernet{Src: pkt.MustMAC("02:00:00:00:00:01"), Dst: pkt.MustMAC("02:00:00:00:00:02"), EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4Header{TTL: 64, Protocol: pkt.IPProtoUDP, Src: pkt.MustIPv4("10.0.0.1"), Dst: pkt.MustIPv4("10.0.0.2")},
		&pkt.UDP{SrcPort: 1, DstPort: 2},
		&payload,
	)
	if err != nil {
		b.Fatal(err)
	}
	tagged, err := pkt.PushVLAN(inner, pkt.EtherTypeDot1Q, 101)
	if err != nil {
		b.Fatal(err)
	}
	return tagged
}

func BenchmarkTranslatorAsOpenFlow(b *testing.B) {
	plan, err := PlanMigration(PlanConfig{Hostname: "bench", NumPorts: 9})
	if err != nil {
		b.Fatal(err)
	}
	s4, err := BuildS4(plan, S4Config{})
	if err != nil {
		b.Fatal(err)
	}
	trunk := netem.NewLink(netem.LinkConfig{})
	defer trunk.Close()
	s4.AttachTrunk(trunk.B())
	trunk.A().SetReceiver(func([]byte) {})
	// SS_2 reflects logical 1 -> logical 2 so the frame hairpins.
	m := openflow.Match{}
	m.WithInPort(1)
	if _, err := s4.SS2.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowAdd, Priority: 10,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
		Match: m, Instructions: []openflow.Instruction{&openflow.InstrApplyActions{
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 2, MaxLen: 0xffff}},
		}},
	}); err != nil {
		b.Fatal(err)
	}
	tagged := benchTaggedFrame(b, 100)
	b.SetBytes(int64(len(tagged)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := make([]byte, len(tagged))
		copy(cp, tagged)
		_ = trunk.A().Send(cp)
	}
}

// BenchmarkTranslatorNative measures the same VLAN 101 -> pop ->
// (forwarding decision stub) -> push 102 round, implemented as direct
// packet operations without the OF pipeline.
func BenchmarkTranslatorNative(b *testing.B) {
	tagged := benchTaggedFrame(b, 100)
	vlanToPort := map[uint16]uint32{}
	portToVLAN := map[uint32]uint16{}
	for p := 1; p <= 8; p++ {
		vlanToPort[uint16(100+p)] = uint32(p)
		portToVLAN[uint32(p)] = uint16(100 + p)
	}
	sink := 0
	b.SetBytes(int64(len(tagged)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := make([]byte, len(tagged))
		copy(cp, tagged)
		vid, ok := pkt.VLANID(cp)
		if !ok {
			b.Fatal("untagged")
		}
		if _, ok := vlanToPort[vid]; !ok {
			b.Fatal("unknown vlan")
		}
		inner, err := pkt.PopVLAN(cp)
		if err != nil {
			b.Fatal(err)
		}
		// Forwarding decision stub: logical 1 -> logical 2.
		outVLAN := portToVLAN[2]
		out, err := pkt.PushVLAN(inner, pkt.EtherTypeDot1Q, outVLAN)
		if err != nil {
			b.Fatal(err)
		}
		sink += len(out)
	}
	_ = sink
}
