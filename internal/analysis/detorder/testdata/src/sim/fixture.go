// Package sim is the detorder in-scope fixture ("sim" matches the
// analyzer's scope regexp).
package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"maps"
	"slices"
	"sort"
	"strings"
	"sync"
)

// Direct emission inside a map range: the canonical bug.
func emitDirect(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "map iteration order reaches fmt.Println"
	}
}

// A builder that outlives the loop accumulates bytes in map order.
func emitBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "map iteration order reaches .strings.Builder..WriteString"
	}
	return b.String()
}

// Per-entry buffer inside the loop, collected and sorted: the
// sanctioned pattern, nothing to report.
func emitPerEntrySorted(m map[string]int) string {
	var rows []string
	for k, v := range m {
		var b strings.Builder
		b.WriteString(k)
		fmt.Fprintf(&b, "=%d", v)
		rows = append(rows, b.String())
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

// Collect keys, sort, then emit: clean.
func emitKeysSorted(m map[string]int, w io.Writer) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// Collecting without the sort leaves the aggregate in map order.
func emitKeysUnsorted(m map[string]int, w io.Writer) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	fmt.Fprintf(w, "%v\n", keys) // want "derived from map iteration order reaches fmt.Fprintf"
}

// Ranging over the unsorted aggregate is just as unordered.
func emitKeysUnsortedLoop(m map[string]int, w io.Writer) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	for _, k := range keys {
		fmt.Fprintln(w, k) // want "map iteration order reaches fmt.Fprintln"
	}
}

// Taint survives derivation: join then emit.
func emitJoined(m map[string]int, w io.Writer) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	joined := strings.Join(keys, ",")
	io.WriteString(w, joined) // want "derived from map iteration order reaches io.WriteString"
}

// sync.Map.Range is a map range with a callback.
func emitSyncMap(sm *sync.Map) {
	sm.Range(func(k, v any) bool {
		fmt.Println(k, v) // want "map iteration order reaches fmt.Println"
		return true
	})
}

// maps.Keys yields in map order; slices.Sorted cleanses it.
func keysViaIterSorted(m map[string]int) []string {
	return slices.Sorted(maps.Keys(m))
}

func keysViaIterUnsorted(m map[string]int, w io.Writer) {
	for k := range maps.Keys(m) {
		fmt.Fprintln(w, k) // want "map iteration order reaches fmt.Fprintln"
	}
}

// Float addition rounds, so the sum depends on iteration order
// bitwise; integer addition does not.
func sumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "floating-point accumulation in map iteration order"
	}
	return total
}

func sumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// encoding/json sorts map keys itself: encoding a map value is fine.
func encodeMap(m map[string]int, w io.Writer) error {
	return json.NewEncoder(w).Encode(m)
}

// Marshalling a slice built in map order bakes that order into bytes.
func marshalUnsorted(m map[string]int) ([]byte, error) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return json.Marshal(keys) // want "derived from map iteration order reaches json.Marshal"
}

// The escape hatch with a reason suppresses; a bare hatch is itself a
// diagnostic; a hatch that suppresses nothing rots and is reported.
func emitHatched(m map[string]int) {
	for k := range m {
		//harmless:allow-maporder debug dump, ordering explicitly irrelevant here
		fmt.Println(k)
	}
}

func emitHatchedBare(m map[string]int) {
	for k := range m {
		//harmless:allow-maporder // want "needs a reason"
		fmt.Println(k)
	}
}

func cleanWithStaleHatch() {
	//harmless:allow-maporder nothing on the next line iterates a map // want "unused //harmless:allow-maporder directive"
	x := 1
	_ = x
}
