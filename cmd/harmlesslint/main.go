// Command harmlesslint runs the repo's custom static analyzers over
// the given package patterns (default ./...) and prints one line per
// finding:
//
//	file:line:col: analyzer: message
//
// Exit status: 0 when clean, 1 when any analyzer reported a finding,
// 2 when packages failed to load or typecheck.
//
// The four passes encode invariants the compiler cannot see — clock
// injection, zero-alloc hot paths, shard/lock ownership, and frame
// buffer ownership; see internal/analysis and DESIGN.md. Findings are
// suppressed only with an explained //harmless: directive, and the
// analyzers themselves flag unexplained or unused directives, so a
// clean run means every suppression in the tree carries a reason.
package main

import (
	"fmt"
	"os"

	"github.com/harmless-sdn/harmless/internal/analysis"
	"github.com/harmless-sdn/harmless/internal/analysis/clockinject"
	"github.com/harmless-sdn/harmless/internal/analysis/frameown"
	"github.com/harmless-sdn/harmless/internal/analysis/hotpathalloc"
	"github.com/harmless-sdn/harmless/internal/analysis/shardlock"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := []*analysis.Analyzer{
		clockinject.Analyzer,
		hotpathalloc.Analyzer,
		shardlock.Analyzer,
		frameown.Analyzer,
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "harmlesslint: %v\n", err)
		os.Exit(2)
	}

	diags, err := analysis.Analyze(dir, patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "harmlesslint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s:%d:%d: %s: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "harmlesslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
