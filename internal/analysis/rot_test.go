package analysis_test

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/harmless-sdn/harmless/internal/analysis"
)

// rotFixture exercises one directive name through the shared
// suppression machinery: a bare hatch that suppresses a finding, a
// reasoned hatch that suppresses one silently, a hatch that suppresses
// nothing, and an unsuppressed finding.
const rotFixture = `package fix

func bare() {
	_ = 1 //harmless:%[1]s
}

func covered() {
	//harmless:%[1]s a documented, reasoned suppression
	_ = 2
}

func stale() {
	//harmless:%[1]s nothing below is suppressed

	x := 3
	_ = x
}

func unsuppressed() {
	_ = 4
}
`

// TestDirectiveRot proves the rot rules hold for every escape hatch
// the suite owns, not just the ones whose analyzer fixtures happen to
// cover them: a bare hatch still suppresses but is itself a
// diagnostic, a hatch that suppresses nothing is a diagnostic, and a
// reasoned, used hatch is silent. The per-analyzer fixtures cover the
// same rules end-to-end through each real analyzer; this table pins
// the framework behavior per directive name.
func TestDirectiveRot(t *testing.T) {
	directives := []struct {
		name     string
		analyzer string
	}{
		{"allow-wallclock", "clockinject"},
		{"allow-alloc", "hotpathalloc"},
		{"allow-copy", "shardlock"},
		{"allow-retain", "frameown"},
		{"allow-maporder", "detorder"},
		{"allow-plain", "atomicmix"},
		{"allow-droperr", "errdrop"},
	}
	for _, tc := range directives {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			file := filepath.Join(dir, "fix.go")
			src := fmt.Sprintf(rotFixture, tc.name)
			if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
			fset := token.NewFileSet()
			pkg, err := analysis.CheckPackage(fset, nil, "fix", []string{file})
			if err != nil {
				t.Fatal(err)
			}

			// The stub analyzer stands in for the directive's owner:
			// it "finds" every `_ = <literal>` assignment unless the
			// hatch suppresses it.
			a := &analysis.Analyzer{Name: tc.analyzer, Doc: "rot-test stub"}
			a.Run = func(pass *analysis.Pass) error {
				for _, f := range pass.Files {
					ast.Inspect(f, func(n ast.Node) bool {
						as, ok := n.(*ast.AssignStmt)
						if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
							return true
						}
						if id, ok := as.Lhs[0].(*ast.Ident); !ok || id.Name != "_" {
							return true
						}
						if _, ok := as.Rhs[0].(*ast.BasicLit); !ok {
							return true
						}
						if pass.Suppressed(as.Pos(), tc.name) {
							return true
						}
						pass.Reportf(as.Pos(), "synthetic %s finding", tc.analyzer)
						return true
					})
				}
				pass.ReportUnused(tc.name)
				return nil
			}

			var got []analysis.Diagnostic
			pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info,
				func(d analysis.Diagnostic) { got = append(got, d) })
			if err := a.Run(pass); err != nil {
				t.Fatal(err)
			}
			analysis.SortDiagnostics(got)

			want := []string{
				"//harmless:" + tc.name + " needs a reason",
				"synthetic " + tc.analyzer + " finding",
				"unused //harmless:" + tc.name + " directive",
			}
			if len(got) != len(want) {
				t.Fatalf("got %d diagnostics, want %d:\n%s", len(got), len(want), render(got))
			}
			for _, w := range want {
				if !containsMessage(got, w) {
					t.Errorf("missing diagnostic %q in:\n%s", w, render(got))
				}
			}
			// The reasoned, used hatch (covered) and the suppressed
			// bare-hatch line must not surface as findings.
			for _, d := range got {
				if d.Message == "synthetic "+tc.analyzer+" finding" && d.Pos.Line != 20 {
					t.Errorf("synthetic finding leaked at line %d (only the unsuppressed one at 20 should fire):\n%s", d.Pos.Line, render(got))
				}
			}
		})
	}
}

func containsMessage(ds []analysis.Diagnostic, msg string) bool {
	for _, d := range ds {
		if d.Message == msg {
			return true
		}
	}
	return false
}

func render(ds []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
