package pkt

// SerializeBuffer builds packets back-to-front: each layer's
// SerializeTo PREPENDS its header, treating the bytes already present
// as its payload. This mirrors gopacket's SerializeBuffer and lets
// length and checksum fields be computed naturally.
type SerializeBuffer struct {
	buf     []byte // full backing array
	start   int    // index of first valid byte
	csumCtx checksumContext
}

type checksumContext struct {
	valid bool
	src   IPv4
	dst   IPv4
}

// NewSerializeBuffer returns a buffer with a default amount of
// headroom suitable for a full Ethernet/IP/TCP stack.
func NewSerializeBuffer() *SerializeBuffer {
	return NewSerializeBufferSize(256)
}

// NewSerializeBufferSize returns a buffer with the given initial
// capacity (headroom grows automatically if exceeded).
func NewSerializeBufferSize(capacity int) *SerializeBuffer {
	return &SerializeBuffer{buf: make([]byte, capacity), start: capacity}
}

// Bytes returns the serialized packet so far.
func (b *SerializeBuffer) Bytes() []byte { return b.buf[b.start:] }

// Len returns the number of valid bytes.
func (b *SerializeBuffer) Len() int { return len(b.buf) - b.start }

// Clear resets the buffer for reuse, keeping the backing array.
func (b *SerializeBuffer) Clear() {
	b.start = len(b.buf)
	b.csumCtx = checksumContext{}
}

// PrependBytes makes room for n bytes at the front and returns the
// slice to fill in. The returned slice is only valid until the next
// Prepend call.
func (b *SerializeBuffer) PrependBytes(n int) []byte {
	if n <= b.start {
		b.start -= n
		return b.buf[b.start : b.start+n]
	}
	// Grow: allocate a larger array with fresh headroom.
	needed := b.Len() + n
	newCap := len(b.buf)*2 + n
	if newCap < needed+64 {
		newCap = needed + 64
	}
	nb := make([]byte, newCap)
	newStart := newCap - b.Len() - n
	copy(nb[newStart+n:], b.Bytes())
	b.buf = nb
	b.start = newStart
	return b.buf[b.start : b.start+n]
}

// SetNetworkForChecksum records the IPv4 endpoints so that a TCP or UDP
// layer serialized next can compute its pseudo-header checksum. Call it
// before serializing the transport layer (i.e. after the payload).
func (b *SerializeBuffer) SetNetworkForChecksum(src, dst IPv4) {
	b.csumCtx = checksumContext{valid: true, src: src, dst: dst}
}

// SerializeLayers clears the buffer and serializes the given layers in
// wire order (outermost first), returning the final packet bytes. If an
// IPv4 layer precedes a TCP/UDP layer the transport checksum is
// computed automatically.
func SerializeLayers(b *SerializeBuffer, layers ...SerializableLayer) ([]byte, error) {
	b.Clear()
	// Find IPv4 context for L4 checksums before any serialization.
	for _, l := range layers {
		if ip, ok := l.(*IPv4Header); ok {
			b.SetNetworkForChecksum(ip.Src, ip.Dst)
		}
	}
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b); err != nil {
			return nil, err
		}
	}
	return b.Bytes(), nil
}

// Serialize is a convenience wrapper that allocates a fresh buffer.
func Serialize(layers ...SerializableLayer) ([]byte, error) {
	return SerializeLayers(NewSerializeBuffer(), layers...)
}
