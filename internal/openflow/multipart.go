package openflow

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Multipart types (ofp_multipart_type).
const (
	MultipartDesc      uint16 = 0
	MultipartFlow      uint16 = 1
	MultipartTable     uint16 = 3
	MultipartPortStats uint16 = 4
	MultipartPortDesc  uint16 = 13
)

// MultipartRequest asks for statistics. The Body depends on MPType:
// FlowStatsRequest for MultipartFlow, PortStatsRequest for
// MultipartPortStats; nil for DESC/TABLE/PORT_DESC.
type MultipartRequest struct {
	xid
	MPType uint16
	Flags  uint16
	Flow   *FlowStatsRequest
	Port   *PortStatsRequest
}

// FlowStatsRequest selects the flows to report.
type FlowStatsRequest struct {
	TableID    uint8 // 0xff = all tables
	OutPort    uint32
	OutGroup   uint32
	Cookie     uint64
	CookieMask uint64
	Match      Match
}

// PortStatsRequest selects the port (PortAny = all).
type PortStatsRequest struct {
	PortNo uint32
}

// TableAll addresses all tables in stats requests.
const TableAll uint8 = 0xff

// MsgType implements Message.
func (*MultipartRequest) MsgType() uint8 { return TypeMultipartRequest }

// Marshal implements Message.
func (m *MultipartRequest) Marshal() ([]byte, error) {
	var body []byte
	switch m.MPType {
	case MultipartFlow:
		req := m.Flow
		if req == nil {
			req = &FlowStatsRequest{TableID: TableAll, OutPort: PortAny, OutGroup: GroupAny}
		}
		match, err := req.Match.marshal()
		if err != nil {
			return nil, err
		}
		fixed := make([]byte, 32)
		fixed[0] = req.TableID
		binary.BigEndian.PutUint32(fixed[4:8], req.OutPort)
		binary.BigEndian.PutUint32(fixed[8:12], req.OutGroup)
		binary.BigEndian.PutUint64(fixed[16:24], req.Cookie)
		binary.BigEndian.PutUint64(fixed[24:32], req.CookieMask)
		body = append(fixed, match...)
	case MultipartPortStats:
		req := m.Port
		if req == nil {
			req = &PortStatsRequest{PortNo: PortAny}
		}
		body = make([]byte, 8)
		binary.BigEndian.PutUint32(body[0:4], req.PortNo)
	}
	buf := make([]byte, HeaderLen+8+len(body))
	binary.BigEndian.PutUint16(buf[HeaderLen:], m.MPType)
	binary.BigEndian.PutUint16(buf[HeaderLen+2:], m.Flags)
	copy(buf[HeaderLen+8:], body)
	putHeader(buf, TypeMultipartRequest, m.Xid)
	return buf, nil
}

func (m *MultipartRequest) unmarshalBody(body []byte) error {
	if len(body) < 8 {
		return fmt.Errorf("openflow: truncated multipart request")
	}
	m.MPType = binary.BigEndian.Uint16(body[0:2])
	m.Flags = binary.BigEndian.Uint16(body[2:4])
	rest := body[8:]
	switch m.MPType {
	case MultipartFlow:
		if len(rest) < 32 {
			return fmt.Errorf("openflow: truncated flow stats request")
		}
		req := &FlowStatsRequest{
			TableID:    rest[0],
			OutPort:    binary.BigEndian.Uint32(rest[4:8]),
			OutGroup:   binary.BigEndian.Uint32(rest[8:12]),
			Cookie:     binary.BigEndian.Uint64(rest[16:24]),
			CookieMask: binary.BigEndian.Uint64(rest[24:32]),
		}
		match, _, err := unmarshalMatch(rest[32:])
		if err != nil {
			return err
		}
		req.Match = *match
		m.Flow = req
	case MultipartPortStats:
		if len(rest) < 8 {
			return fmt.Errorf("openflow: truncated port stats request")
		}
		m.Port = &PortStatsRequest{PortNo: binary.BigEndian.Uint32(rest[0:4])}
	}
	return nil
}

// FlowStats is one entry of a flow stats reply.
type FlowStats struct {
	TableID      uint8
	DurationSec  uint32
	Priority     uint16
	IdleTimeout  uint16
	HardTimeout  uint16
	Cookie       uint64
	PacketCount  uint64
	ByteCount    uint64
	Match        Match
	Instructions []Instruction
}

// String renders the entry in ovs-ofctl dump-flows style.
func (f *FlowStats) String() string {
	return fmt.Sprintf("table=%d, priority=%d, n_packets=%d, n_bytes=%d, %s actions=%s",
		f.TableID, f.Priority, f.PacketCount, f.ByteCount, f.Match.String(),
		instructionsString(f.Instructions))
}

func (f *FlowStats) marshal() ([]byte, error) {
	match, err := f.Match.marshal()
	if err != nil {
		return nil, err
	}
	instrs, err := marshalInstructions(f.Instructions)
	if err != nil {
		return nil, err
	}
	total := 48 + len(match) + len(instrs)
	buf := make([]byte, 48, total)
	binary.BigEndian.PutUint16(buf[0:2], uint16(total))
	buf[2] = f.TableID
	binary.BigEndian.PutUint32(buf[4:8], f.DurationSec)
	binary.BigEndian.PutUint16(buf[12:14], f.Priority)
	binary.BigEndian.PutUint16(buf[14:16], f.IdleTimeout)
	binary.BigEndian.PutUint16(buf[16:18], f.HardTimeout)
	binary.BigEndian.PutUint64(buf[24:32], f.Cookie)
	binary.BigEndian.PutUint64(buf[32:40], f.PacketCount)
	binary.BigEndian.PutUint64(buf[40:48], f.ByteCount)
	buf = append(buf, match...)
	buf = append(buf, instrs...)
	return buf, nil
}

func unmarshalFlowStats(data []byte) ([]FlowStats, error) {
	var out []FlowStats
	for len(data) > 0 {
		if len(data) < 48 {
			return nil, fmt.Errorf("openflow: truncated flow stats entry")
		}
		elen := int(binary.BigEndian.Uint16(data[0:2]))
		if elen < 48 || elen > len(data) {
			return nil, fmt.Errorf("openflow: bad flow stats length %d", elen)
		}
		entry := data[:elen]
		f := FlowStats{
			TableID:     entry[2],
			DurationSec: binary.BigEndian.Uint32(entry[4:8]),
			Priority:    binary.BigEndian.Uint16(entry[12:14]),
			IdleTimeout: binary.BigEndian.Uint16(entry[14:16]),
			HardTimeout: binary.BigEndian.Uint16(entry[16:18]),
			Cookie:      binary.BigEndian.Uint64(entry[24:32]),
			PacketCount: binary.BigEndian.Uint64(entry[32:40]),
			ByteCount:   binary.BigEndian.Uint64(entry[40:48]),
		}
		match, consumed, err := unmarshalMatch(entry[48:])
		if err != nil {
			return nil, err
		}
		f.Match = *match
		instrs, err := unmarshalInstructions(entry[48+consumed:])
		if err != nil {
			return nil, err
		}
		f.Instructions = instrs
		out = append(out, f)
		data = data[elen:]
	}
	return out, nil
}

// PortStats is one entry of a port stats reply.
type PortStats struct {
	PortNo    uint32
	RxPackets uint64
	TxPackets uint64
	RxBytes   uint64
	TxBytes   uint64
	RxDropped uint64
	TxDropped uint64
	RxErrors  uint64
}

const portStatsLen = 112

func (p *PortStats) marshal() []byte {
	buf := make([]byte, portStatsLen)
	binary.BigEndian.PutUint32(buf[0:4], p.PortNo)
	binary.BigEndian.PutUint64(buf[8:16], p.RxPackets)
	binary.BigEndian.PutUint64(buf[16:24], p.TxPackets)
	binary.BigEndian.PutUint64(buf[24:32], p.RxBytes)
	binary.BigEndian.PutUint64(buf[32:40], p.TxBytes)
	binary.BigEndian.PutUint64(buf[40:48], p.RxDropped)
	binary.BigEndian.PutUint64(buf[48:56], p.TxDropped)
	binary.BigEndian.PutUint64(buf[56:64], p.RxErrors)
	return buf
}

func unmarshalPortStats(data []byte) ([]PortStats, error) {
	var out []PortStats
	for len(data) > 0 {
		if len(data) < portStatsLen {
			return nil, fmt.Errorf("openflow: truncated port stats entry")
		}
		e := data[:portStatsLen]
		out = append(out, PortStats{
			PortNo:    binary.BigEndian.Uint32(e[0:4]),
			RxPackets: binary.BigEndian.Uint64(e[8:16]),
			TxPackets: binary.BigEndian.Uint64(e[16:24]),
			RxBytes:   binary.BigEndian.Uint64(e[24:32]),
			TxBytes:   binary.BigEndian.Uint64(e[32:40]),
			RxDropped: binary.BigEndian.Uint64(e[40:48]),
			TxDropped: binary.BigEndian.Uint64(e[48:56]),
			RxErrors:  binary.BigEndian.Uint64(e[56:64]),
		})
		data = data[portStatsLen:]
	}
	return out, nil
}

// TableStats is one entry of a table stats reply.
type TableStats struct {
	TableID      uint8
	ActiveCount  uint32
	LookupCount  uint64
	MatchedCount uint64
}

const tableStatsLen = 24

func (t *TableStats) marshal() []byte {
	buf := make([]byte, tableStatsLen)
	buf[0] = t.TableID
	binary.BigEndian.PutUint32(buf[4:8], t.ActiveCount)
	binary.BigEndian.PutUint64(buf[8:16], t.LookupCount)
	binary.BigEndian.PutUint64(buf[16:24], t.MatchedCount)
	return buf
}

func unmarshalTableStats(data []byte) ([]TableStats, error) {
	var out []TableStats
	for len(data) > 0 {
		if len(data) < tableStatsLen {
			return nil, fmt.Errorf("openflow: truncated table stats entry")
		}
		e := data[:tableStatsLen]
		out = append(out, TableStats{
			TableID:      e[0],
			ActiveCount:  binary.BigEndian.Uint32(e[4:8]),
			LookupCount:  binary.BigEndian.Uint64(e[8:16]),
			MatchedCount: binary.BigEndian.Uint64(e[16:24]),
		})
		data = data[tableStatsLen:]
	}
	return out, nil
}

// SwitchDesc is the DESC reply body.
type SwitchDesc struct {
	Manufacturer string
	Hardware     string
	Software     string
	SerialNum    string
	Datapath     string
}

func putFixedString(buf []byte, s string) {
	if len(s) >= len(buf) {
		s = s[:len(buf)-1]
	}
	copy(buf, s)
}

func getFixedString(buf []byte) string {
	for i, b := range buf {
		if b == 0 {
			return string(buf[:i])
		}
	}
	return string(buf)
}

func (d *SwitchDesc) marshal() []byte {
	buf := make([]byte, 1056)
	putFixedString(buf[0:256], d.Manufacturer)
	putFixedString(buf[256:512], d.Hardware)
	putFixedString(buf[512:768], d.Software)
	putFixedString(buf[768:800], d.SerialNum)
	putFixedString(buf[800:1056], d.Datapath)
	return buf
}

func unmarshalSwitchDesc(data []byte) (*SwitchDesc, error) {
	if len(data) < 1056 {
		return nil, fmt.Errorf("openflow: truncated desc reply")
	}
	return &SwitchDesc{
		Manufacturer: getFixedString(data[0:256]),
		Hardware:     getFixedString(data[256:512]),
		Software:     getFixedString(data[512:768]),
		SerialNum:    getFixedString(data[768:800]),
		Datapath:     getFixedString(data[800:1056]),
	}, nil
}

// MultipartReply carries statistics; exactly one of the typed bodies is
// populated according to MPType.
type MultipartReply struct {
	xid
	MPType    uint16
	Flags     uint16
	Desc      *SwitchDesc
	Flows     []FlowStats
	Ports     []PortStats
	Tables    []TableStats
	PortDescs []PortDesc
}

// MsgType implements Message.
func (*MultipartReply) MsgType() uint8 { return TypeMultipartReply }

// Marshal implements Message.
func (m *MultipartReply) Marshal() ([]byte, error) {
	var body bytes.Buffer
	switch m.MPType {
	case MultipartDesc:
		d := m.Desc
		if d == nil {
			d = &SwitchDesc{}
		}
		body.Write(d.marshal())
	case MultipartFlow:
		for i := range m.Flows {
			b, err := m.Flows[i].marshal()
			if err != nil {
				return nil, err
			}
			body.Write(b)
		}
	case MultipartPortStats:
		for i := range m.Ports {
			body.Write(m.Ports[i].marshal())
		}
	case MultipartTable:
		for i := range m.Tables {
			body.Write(m.Tables[i].marshal())
		}
	case MultipartPortDesc:
		for i := range m.PortDescs {
			body.Write(m.PortDescs[i].marshal())
		}
	default:
		return nil, fmt.Errorf("openflow: unsupported multipart type %d", m.MPType)
	}
	buf := make([]byte, HeaderLen+8+body.Len())
	binary.BigEndian.PutUint16(buf[HeaderLen:], m.MPType)
	binary.BigEndian.PutUint16(buf[HeaderLen+2:], m.Flags)
	copy(buf[HeaderLen+8:], body.Bytes())
	putHeader(buf, TypeMultipartReply, m.Xid)
	return buf, nil
}

func (m *MultipartReply) unmarshalBody(body []byte) error {
	if len(body) < 8 {
		return fmt.Errorf("openflow: truncated multipart reply")
	}
	m.MPType = binary.BigEndian.Uint16(body[0:2])
	m.Flags = binary.BigEndian.Uint16(body[2:4])
	rest := body[8:]
	var err error
	switch m.MPType {
	case MultipartDesc:
		m.Desc, err = unmarshalSwitchDesc(rest)
	case MultipartFlow:
		m.Flows, err = unmarshalFlowStats(rest)
	case MultipartPortStats:
		m.Ports, err = unmarshalPortStats(rest)
	case MultipartTable:
		m.Tables, err = unmarshalTableStats(rest)
	case MultipartPortDesc:
		for len(rest) >= portDescLen {
			var d PortDesc
			d, err = unmarshalPortDesc(rest)
			if err != nil {
				return err
			}
			m.PortDescs = append(m.PortDescs, d)
			rest = rest[portDescLen:]
		}
	default:
		return fmt.Errorf("openflow: unsupported multipart type %d", m.MPType)
	}
	return err
}
