// Package harmless implements the paper's contribution: the Hybrid
// ARchitecture to Migrate Legacy Ethernet Switches to SDN.
//
// A migration turns a legacy 802.1Q switch plus a commodity server
// into one OpenFlow switch, with full data-plane transparency:
//
//   - The legacy switch is configured (via the mgmt driver, as the
//     paper does with NAPALM) so every migrated access port is an
//     untagged member of a unique VLAN and one trunk port carries all
//     of them to the server ("tagging").
//   - On the server, two software switch instances form HARMLESS-S4:
//     SS_1, the translator, maps VLAN ids to patch ports and back
//     ("hairpinning"); SS_2 is the controller-facing OpenFlow switch
//     whose port numbers equal the legacy access port numbers, so
//     controller programs need no knowledge of the VLAN mapping.
//
// Ports not (yet) migrated keep classic L2 switching among themselves
// in the legacy switch's native VLAN; their broadcast domain appears
// on SS_2 as one extra logical port (the "legacy segment"), enabling
// the incremental migration strategy the paper's introduction calls
// for. See Manager for the orchestration workflow.
package harmless

import (
	"fmt"
	"sort"

	"github.com/harmless-sdn/harmless/internal/legacy"
)

// Plan is the computed migration layout for one legacy switch.
type Plan struct {
	// Hostname of the device (diagnostics).
	Hostname string
	// TrunkPort is the legacy port cabled to the server.
	TrunkPort int
	// VLANForPort maps each migrated access port to its unique VLAN.
	VLANForPort map[int]uint16
	// NativeVLAN carries the unmigrated segment over the trunk
	// untagged (the legacy switch's default VLAN).
	NativeVLAN uint16
	// LegacySegment is true when unmigrated ports exist and must be
	// represented as a logical port on SS_2.
	LegacySegment bool
	// LegacySegmentPort is the SS_2 logical port number representing
	// the unmigrated broadcast domain (only meaningful when
	// LegacySegment is true). It equals the trunk port number, which
	// can never collide with an access port.
	LegacySegmentPort uint32
}

// PlanConfig parameterizes PlanMigration.
type PlanConfig struct {
	// Hostname for diagnostics.
	Hostname string
	// NumPorts is the legacy switch's port count.
	NumPorts int
	// TrunkPort is the port cabled to the server; 0 selects the
	// highest-numbered port.
	TrunkPort int
	// AccessPorts lists the ports to migrate; nil migrates every port
	// except the trunk.
	AccessPorts []int
	// BaseVLAN: access port p gets VLAN BaseVLAN+p (default 100,
	// giving the 101, 102, ... numbering of Fig. 1).
	BaseVLAN uint16
	// NativeVLAN for the unmigrated segment (default 1).
	NativeVLAN uint16
}

// PlanMigration validates the configuration and computes the layout.
func PlanMigration(cfg PlanConfig) (*Plan, error) {
	if cfg.NumPorts < 2 {
		return nil, fmt.Errorf("harmless: need at least 2 ports, have %d", cfg.NumPorts)
	}
	trunk := cfg.TrunkPort
	if trunk == 0 {
		trunk = cfg.NumPorts
	}
	if trunk < 1 || trunk > cfg.NumPorts {
		return nil, fmt.Errorf("harmless: trunk port %d out of range", trunk)
	}
	base := cfg.BaseVLAN
	if base == 0 {
		base = 100
	}
	native := cfg.NativeVLAN
	if native == 0 {
		native = legacy.DefaultVLAN
	}

	access := cfg.AccessPorts
	if access == nil {
		for p := 1; p <= cfg.NumPorts; p++ {
			if p != trunk {
				access = append(access, p)
			}
		}
	}
	plan := &Plan{
		Hostname:    cfg.Hostname,
		TrunkPort:   trunk,
		VLANForPort: make(map[int]uint16, len(access)),
		NativeVLAN:  native,
	}
	seen := make(map[int]bool, len(access))
	for _, p := range access {
		if p < 1 || p > cfg.NumPorts {
			return nil, fmt.Errorf("harmless: access port %d out of range", p)
		}
		if p == trunk {
			return nil, fmt.Errorf("harmless: port %d is the trunk, cannot migrate it", p)
		}
		if seen[p] {
			return nil, fmt.Errorf("harmless: access port %d listed twice", p)
		}
		seen[p] = true
		vlan := base + uint16(p)
		if vlan > legacy.MaxVLAN {
			return nil, fmt.Errorf("harmless: VLAN %d for port %d exceeds %d", vlan, p, legacy.MaxVLAN)
		}
		if vlan == native {
			return nil, fmt.Errorf("harmless: VLAN %d for port %d collides with the native VLAN", vlan, p)
		}
		plan.VLANForPort[p] = vlan
	}
	if len(plan.VLANForPort) == 0 {
		return nil, fmt.Errorf("harmless: no ports to migrate")
	}
	// Any port that is neither trunk nor migrated forms the legacy
	// segment.
	if len(plan.VLANForPort) < cfg.NumPorts-1 {
		plan.LegacySegment = true
		plan.LegacySegmentPort = uint32(trunk)
	}
	return plan, nil
}

// MigratedPorts returns the migrated access ports in ascending order.
func (p *Plan) MigratedPorts() []int {
	out := make([]int, 0, len(p.VLANForPort))
	for port := range p.VLANForPort {
		out = append(out, port)
	}
	sort.Ints(out)
	return out
}

// TrunkVLANs returns all VLANs the trunk must carry (sorted).
func (p *Plan) TrunkVLANs() []uint16 {
	out := make([]uint16, 0, len(p.VLANForPort)+1)
	for _, v := range p.VLANForPort {
		out = append(out, v)
	}
	if p.LegacySegment {
		out = append(out, p.NativeVLAN)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LogicalPorts returns the SS_2 port numbers the controller will see
// (access ports plus the legacy segment port, ascending).
func (p *Plan) LogicalPorts() []uint32 {
	out := make([]uint32, 0, len(p.VLANForPort)+1)
	for _, port := range p.MigratedPorts() {
		out = append(out, uint32(port))
	}
	if p.LegacySegment {
		out = append(out, p.LegacySegmentPort)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String summarizes the plan.
func (p *Plan) String() string {
	return fmt.Sprintf("plan(%s: trunk=%d, %d migrated ports, legacy-segment=%v)",
		p.Hostname, p.TrunkPort, len(p.VLANForPort), p.LegacySegment)
}
