// Package clockinject flags direct wall-clock reads in packages whose
// time-dependent behavior must run on an injected netem.Clock.
//
// The fleet-scale simulator (internal/sim, cmd/fleetsim) compresses
// hours of fabric time into milliseconds by driving every layer from a
// virtual clock. One stray time.Now or time.Sleep silently splits the
// timeline: timestamps jump between 2017 (the virtual epoch) and the
// host's wall clock, sleeps stall a simulation that never advances
// real time, and determinism — the bitwise-identical verdict digests
// the CI smoke run compares — is gone. So inside the clock-injected
// subtrees (sim, netem, controlplane, telemetry, softswitch, fabric),
// non-test code must not call the time package's clock-reading or
// timer functions directly; it takes a netem.Clock (or Scheduler) and
// uses netem.NewTimer / netem.NewTicker for waits.
//
// The wall clock is still legitimate in a few places — RealClock
// itself, the async real-time link pump, wall-duration run reports —
// and those carry a //harmless:allow-wallclock <reason> escape hatch.
package clockinject

import (
	"go/ast"
	"go/types"
	"regexp"

	"github.com/harmless-sdn/harmless/internal/analysis"
)

// Analyzer is the clockinject pass.
var Analyzer = &analysis.Analyzer{
	Name: "clockinject",
	Doc:  "flags direct time.Now/Sleep/After/... in clock-injected packages",
	Run:  run,
}

// Scope selects the packages the invariant applies to, by import
// path segment. The first six subtrees grew clock injection by PR 6;
// migrate runs campaigns on sim virtual time and joined with PR 9. New
// clock-injected packages join by extending the list.
var Scope = regexp.MustCompile(`(^|/)(sim|netem|controlplane|telemetry|softswitch|fabric|migrate)(/|$)`)

// denied is the set of time-package functions that read or schedule on
// the wall clock. time.Since/Until are included: both read time.Now
// internally.
var denied = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

const hatch = "allow-wallclock"

func run(pass *analysis.Pass) error {
	if !Scope.MatchString(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !denied[sel.Sel.Name] {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			if pass.Suppressed(sel.Pos(), hatch) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"wall clock: time.%s in clock-injected package %q; take a netem.Clock (or add //harmless:allow-wallclock <reason>)",
				sel.Sel.Name, pass.Pkg.Path())
			return true
		})
	}
	pass.ReportUnused(hatch)
	return nil
}
