// Command fleetsim runs a deterministic fleet-scale simulation
// scenario and prints its verdict as JSON. A scenario file describes a
// generated topology (fat-tree or leaf-spine), a statistical workload
// (poisson, diurnal, heavyhitter, incast), and a fault schedule
// (link/switch down/up, controller failover); the whole run advances
// on virtual time, so thousands of switches and millions of flow
// arrivals finish in seconds of wall clock — and the same seed always
// produces the same verdict digest, on any machine.
//
// Usage:
//
//	fleetsim -scenario examples/fleetsim/ci-smoke.json
//	fleetsim -scenario s.json -seed 7 -mode flow -out verdict.json
//
// Exit status: 0 on a passing verdict, 2 when the verdict fails its
// conservation checks, 1 on operational errors (bad scenario, wall
// budget exceeded).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/harmless-sdn/harmless/internal/sim"
)

func main() {
	var (
		scenarioPath = flag.String("scenario", "", "scenario JSON file (required)")
		mode         = flag.String("mode", "", "override scenario mode: flow or packet")
		seed         = flag.Int64("seed", -1, "override scenario seed (-1 keeps the file's)")
		out          = flag.String("out", "", "also write the verdict JSON to this file")
		wallBudget   = flag.Duration("wall-budget", 0, "abort if the run burns more real time than this (0 = unbounded)")
		verbose      = flag.Bool("v", false, "log run progress to stderr")
	)
	flag.Parse()
	if *scenarioPath == "" {
		fmt.Fprintln(os.Stderr, "fleetsim: -scenario is required")
		flag.Usage()
		os.Exit(1)
	}

	sc, err := sim.LoadScenario(*scenarioPath)
	if err != nil {
		fatal(err)
	}
	if *mode != "" {
		sc.Mode = *mode
	}
	if *seed >= 0 {
		sc.Seed = *seed
	}
	if err := sc.Validate(); err != nil {
		fatal(err)
	}

	if *verbose {
		fmt.Fprintf(os.Stderr, "fleetsim: scenario %q seed %d mode %s\n", sc.Name, sc.Seed, sc.Mode)
	}
	start := time.Now()
	var res sim.Result
	switch sc.Mode {
	case "packet":
		ps, err := sim.NewPacketSim(sc)
		if err != nil {
			fatal(err)
		}
		if res, err = ps.Run(*wallBudget); err != nil {
			fatal(err)
		}
	default:
		fs, err := sim.NewFleetSim(sc)
		if err != nil {
			fatal(err)
		}
		if res, err = fs.Run(*wallBudget); err != nil {
			fatal(err)
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "fleetsim: %d switches, %d flows, %d events in %v wall\n",
			res.Switches, res.OfferedFlows, res.Events, time.Since(start).Round(time.Millisecond))
	}

	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatal(err)
	}
	doc = append(doc, '\n')
	if _, err := os.Stdout.Write(doc); err != nil {
		fatal(err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			fatal(err)
		}
	}
	if !res.Pass {
		fmt.Fprintf(os.Stderr, "fleetsim: VERDICT FAILED: %v\n", res.Failures)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fleetsim: %v\n", err)
	os.Exit(1)
}
