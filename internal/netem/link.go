package netem

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/harmless-sdn/harmless/internal/stats"
)

// ErrLinkClosed is returned by Send after Close.
var ErrLinkClosed = errors.New("netem: link closed")

// Receiver consumes frames arriving at a port. The frame slice is owned
// by the receiver after the call (ownership transfer, no copies on the
// fast path).
type Receiver func(frame []byte)

// LinkConfig parameterizes a link. The zero value is a synchronous,
// lossless, zero-latency, infinite-bandwidth link — the configuration
// used by deterministic tests.
type LinkConfig struct {
	// Async selects queued goroutine delivery with the timing model.
	Async bool
	// Latency is the one-way propagation delay (async mode only).
	Latency time.Duration
	// BandwidthBps is the line rate in bits/s; 0 means infinite
	// (async mode only).
	BandwidthBps float64
	// LossProb is the independent per-frame drop probability [0,1).
	LossProb float64
	// QueueLen is the per-direction queue capacity in frames for
	// async mode; 0 means a default of 512. Frames arriving at a full
	// queue are tail-dropped.
	QueueLen int
	// Seed seeds the loss process; links with the same seed drop the
	// same frames.
	Seed int64
	// Name is used in diagnostics.
	Name string
}

// Link is a full-duplex point-to-point link with two Ports.
type Link struct {
	cfg  LinkConfig
	a, b *Port

	lossMu sync.Mutex
	rng    *rand.Rand

	closeOnce sync.Once
	done      chan struct{}
}

// Port is one end of a Link. A device attaches by calling SetReceiver
// and transmits with Send.
type Port struct {
	link     *Link
	peer     *Port
	name     string
	counters stats.PortCounters

	recvMu   sync.RWMutex
	receiver Receiver

	// async state (nil in sync mode)
	queue chan []byte
	// timing model state, owned by the sender side
	timeMu   sync.Mutex
	nextFree time.Time
}

// NewLink creates a link with the given configuration and returns it;
// its two ends are available via A and B.
func NewLink(cfg LinkConfig) *Link {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 512
	}
	l := &Link{cfg: cfg, done: make(chan struct{})}
	if cfg.LossProb > 0 {
		l.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	l.a = &Port{link: l, name: cfg.Name + "/A"}
	l.b = &Port{link: l, name: cfg.Name + "/B"}
	l.a.peer, l.b.peer = l.b, l.a
	if cfg.Async {
		l.a.queue = make(chan []byte, cfg.QueueLen)
		l.b.queue = make(chan []byte, cfg.QueueLen)
		go l.pump(l.a) // drains frames sent BY a, delivers to b
		go l.pump(l.b)
	}
	return l
}

// A returns the first port.
func (l *Link) A() *Port { return l.a }

// B returns the second port.
func (l *Link) B() *Port { return l.b }

// Close shuts the link down; subsequent Sends fail with ErrLinkClosed.
func (l *Link) Close() {
	l.closeOnce.Do(func() { close(l.done) })
}

func (l *Link) dropped() bool {
	if l.rng == nil {
		return false
	}
	l.lossMu.Lock()
	defer l.lossMu.Unlock()
	return l.rng.Float64() < l.cfg.LossProb
}

// pump drains the queue of frames sent by p and delivers them to the
// peer, applying the latency/bandwidth model in real time.
func (l *Link) pump(p *Port) {
	for {
		select {
		case <-l.done:
			return
		case frame := <-p.queue:
			arrival := l.schedule(p, len(frame))
			if d := time.Until(arrival); d > 0 {
				select {
				case <-time.After(d):
				case <-l.done:
					return
				}
			}
			p.peer.deliver(frame)
		}
	}
}

// schedule computes the arrival time of a frame of size n sent by p,
// advancing the sender's serialization horizon.
func (l *Link) schedule(p *Port, n int) time.Time {
	now := time.Now()
	p.timeMu.Lock()
	start := p.nextFree
	if start.Before(now) {
		start = now
	}
	var ser time.Duration
	if l.cfg.BandwidthBps > 0 {
		ser = time.Duration(float64(n*8) / l.cfg.BandwidthBps * float64(time.Second))
	}
	p.nextFree = start.Add(ser)
	dep := p.nextFree
	p.timeMu.Unlock()
	return dep.Add(l.cfg.Latency)
}

// Name returns the port's diagnostic name.
func (p *Port) Name() string { return p.name }

// Counters exposes the port's statistics.
func (p *Port) Counters() *stats.PortCounters { return &p.counters }

// SetReceiver installs the function invoked for every frame arriving
// at this port. It may be called again to replace the receiver.
func (p *Port) SetReceiver(r Receiver) {
	p.recvMu.Lock()
	p.receiver = r
	p.recvMu.Unlock()
}

// WrapReceiver replaces the current receiver with wrap(current) —
// used to interpose taps/captures after a device has attached.
func (p *Port) WrapReceiver(wrap func(Receiver) Receiver) {
	p.recvMu.Lock()
	p.receiver = wrap(p.receiver)
	p.recvMu.Unlock()
}

// Send transmits a frame towards the peer port. In synchronous mode
// the peer's receiver runs on the calling goroutine; in asynchronous
// mode the frame is queued (tail-drop on overflow). The caller
// relinquishes ownership of the slice.
func (p *Port) Send(frame []byte) error {
	select {
	case <-p.link.done:
		return ErrLinkClosed
	default:
	}
	p.counters.RecordTx(len(frame))
	if p.link.dropped() {
		p.counters.TxDropped.Inc()
		return nil
	}
	if p.queue == nil { // synchronous
		p.peer.deliver(frame)
		return nil
	}
	select {
	case p.queue <- frame:
	default:
		p.counters.TxDropped.Inc()
	}
	return nil
}

func (p *Port) deliver(frame []byte) {
	p.counters.RecordRx(len(frame))
	p.recvMu.RLock()
	r := p.receiver
	p.recvMu.RUnlock()
	if r == nil {
		p.counters.RxDropped.Inc()
		return
	}
	r(frame)
}

// String identifies the port.
func (p *Port) String() string { return fmt.Sprintf("port(%s)", p.name) }
