package dataplane

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRingFIFO(t *testing.T) {
	r := NewRing(8)
	if r.Cap() != 8 {
		t.Fatalf("cap = %d, want 8", r.Cap())
	}
	for i := 0; i < 8; i++ {
		if !r.Push([]byte{byte(i)}) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if r.Push([]byte{9}) {
		t.Fatal("push accepted on a full ring")
	}
	if r.Len() != 8 {
		t.Fatalf("len = %d, want 8", r.Len())
	}
	for i := 0; i < 8; i++ {
		f, ok := r.Pop()
		if !ok || f[0] != byte(i) {
			t.Fatalf("pop %d = %v,%v — FIFO order broken", i, f, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop succeeded on an empty ring")
	}
}

func TestRingWrapAround(t *testing.T) {
	r := NewRing(4)
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			if !r.Push([]byte{byte(round), byte(i)}) {
				t.Fatalf("round %d: push %d rejected", round, i)
			}
		}
		for i := 0; i < 3; i++ {
			f, ok := r.Pop()
			if !ok || f[0] != byte(round) || f[1] != byte(i) {
				t.Fatalf("round %d: pop %d = %v,%v", round, i, f, ok)
			}
		}
	}
}

func TestRingConcurrent(t *testing.T) {
	const producers = 4
	perProd := 10000
	if testing.Short() {
		perProd = 1000 // keep the CI race matrix fast
	}
	r := NewRing(1024)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				f := []byte{byte(p), byte(i >> 8), byte(i)}
				for !r.Push(f) {
					// ring full: spin until the consumer catches up
				}
			}
		}(p)
	}
	// One consumer checks per-producer ordering.
	next := make([]int, producers)
	seen := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for seen < producers*perProd {
			f, ok := r.Pop()
			if !ok {
				continue
			}
			p := int(f[0])
			i := int(f[1])<<8 | int(f[2])
			if i != next[p] {
				t.Errorf("producer %d: got %d, want %d (per-producer order broken)", p, i, next[p])
				return
			}
			next[p]++
			seen++
		}
	}()
	wg.Wait()
	<-done
	if seen != producers*perProd {
		t.Fatalf("consumed %d of %d frames", seen, producers*perProd)
	}
}

func TestRingDrain(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 10; i++ {
		r.Push([]byte{byte(i)})
	}
	batch := r.Drain(nil, 4)
	if len(batch) != 4 || batch[0][0] != 0 || batch[3][0] != 3 {
		t.Fatalf("bounded drain = %v", batch)
	}
	rest := r.Drain(batch[:0], 0)
	if len(rest) != 6 || rest[0][0] != 4 || rest[5][0] != 9 {
		t.Fatalf("unbounded drain = %v", rest)
	}
	if r.Len() != 0 {
		t.Fatalf("ring not empty after drain: %d", r.Len())
	}
}

func TestBatchAppendReset(t *testing.T) {
	var b Batch
	b.Append([]byte{1}, 3)
	b.Append([]byte{2}, 4)
	if b.Len() != 2 || b.Bytes() != 2 {
		t.Fatalf("len=%d bytes=%d", b.Len(), b.Bytes())
	}
	if b.Meta[0].InPort != 3 || b.Meta[1].InPort != 4 {
		t.Fatalf("meta = %+v", b.Meta)
	}
	if b.Meta[0].Verdict != VerdictPending {
		t.Fatalf("fresh verdict = %v", b.Meta[0].Verdict)
	}
	b.Reset()
	if b.Len() != 0 || len(b.Meta) != 0 {
		t.Fatal("reset did not empty the batch")
	}
}

// TestDrainBatchWraparound forces the ring's head/tail sequence
// counters through many wraps of a small ring while draining into a
// Batch, checking FIFO order, port tags and exact counts across the
// index wrap — the regime the telemetry drains and the worker RX
// rings run in permanently.
func TestDrainBatchWraparound(t *testing.T) {
	r := NewRing(8)
	var b Batch
	seq := byte(0)    // next value to push
	expect := byte(0) // next value we must pop
	for round := 0; round < 64; round++ {
		// Fill to a varying level so the wrap point lands on every
		// possible slot offset.
		fill := 1 + round%8
		for i := 0; i < fill; i++ {
			if !r.PushFrame([]byte{seq}, uint32(seq)) {
				t.Fatalf("round %d: push %d rejected below capacity", round, seq)
			}
			seq++
		}
		// Drain in two bounded bites to exercise partial drains that
		// straddle the wrap.
		for _, max := range []int{fill / 2, fill - fill/2} {
			if max == 0 {
				continue
			}
			b.Reset()
			if got := r.DrainBatch(&b, max); got != max {
				t.Fatalf("round %d: drained %d, want %d", round, got, max)
			}
			for i := 0; i < max; i++ {
				if b.Frames[i][0] != expect {
					t.Fatalf("round %d: FIFO broken across wrap: got %d want %d", round, b.Frames[i][0], expect)
				}
				if b.Meta[i].InPort != uint32(expect) {
					t.Fatalf("round %d: port tag lost across wrap: got %d want %d", round, b.Meta[i].InPort, expect)
				}
				expect++
			}
		}
		if r.Len() != 0 {
			t.Fatalf("round %d: ring not empty: %d", round, r.Len())
		}
	}
	if seq != expect {
		t.Fatalf("conservation: pushed %d, popped %d", seq, expect)
	}
}

// TestDrainBatchUnboundedAtWrap drains everything (max <= 0) from a
// ring whose contents straddle the wrap boundary.
func TestDrainBatchUnboundedAtWrap(t *testing.T) {
	r := NewRing(4)
	// Advance tail/head to one slot before the wrap.
	for i := 0; i < 3; i++ {
		r.Push([]byte{byte(i)})
		r.Pop()
	}
	// Now fill fully: slots 3,0,1,2 — the batch spans the wrap.
	for i := 0; i < 4; i++ {
		if !r.PushFrame([]byte{byte(10 + i)}, uint32(i)) {
			t.Fatalf("push %d rejected", i)
		}
	}
	if r.PushFrame([]byte{99}, 0) {
		t.Fatal("push accepted on full ring at wrap boundary")
	}
	var b Batch
	if got := r.DrainBatch(&b, 0); got != 4 {
		t.Fatalf("unbounded drain = %d, want 4", got)
	}
	for i := 0; i < 4; i++ {
		if b.Frames[i][0] != byte(10+i) || b.Meta[i].InPort != uint32(i) {
			t.Fatalf("slot %d = %d/%d", i, b.Frames[i][0], b.Meta[i].InPort)
		}
	}
	// The drained ring must be immediately reusable for a full cycle.
	if !r.Push([]byte{42}) {
		t.Fatal("ring unusable after wrap drain")
	}
	if f, ok := r.Pop(); !ok || f[0] != 42 {
		t.Fatal("pop after wrap drain")
	}
}

// TestDrainBatchEmptyAndNegativeMax: edge parameters.
func TestDrainBatchEmptyAndNegativeMax(t *testing.T) {
	r := NewRing(4)
	var b Batch
	if got := r.DrainBatch(&b, -1); got != 0 || b.Len() != 0 {
		t.Fatalf("drain of empty ring = %d/%d", got, b.Len())
	}
	r.Push([]byte{1})
	if got := r.DrainBatch(&b, -5); got != 1 {
		t.Fatalf("negative max must mean unbounded, got %d", got)
	}
}

// TestTypedRingWraparoundValues runs a non-frame payload (the shape
// telemetry exports use) through repeated wraps, checking order and
// the zeroing of vacated slots.
func TestTypedRingWraparoundValues(t *testing.T) {
	type rec struct {
		id  int
		ref *int
	}
	r := NewTypedRing[rec](4)
	if r.Cap() != 4 {
		t.Fatalf("cap = %d", r.Cap())
	}
	next, expect := 0, 0
	for round := 0; round < 32; round++ {
		n := 1 + round%4
		for i := 0; i < n; i++ {
			v := next
			if !r.Push(rec{id: v, ref: &v}) {
				t.Fatalf("push %d rejected", v)
			}
			next++
		}
		for i := 0; i < n; i++ {
			got, ok := r.Pop()
			if !ok || got.id != expect || got.ref == nil || *got.ref != expect {
				t.Fatalf("pop = %+v, %v; want id %d", got, ok, expect)
			}
			expect++
		}
		if _, ok := r.Pop(); ok {
			t.Fatal("pop from empty typed ring succeeded")
		}
	}
}

// TestTypedRingConcurrentMPMC hammers the typed ring from several
// producers and consumers, checking conservation.
func TestTypedRingConcurrentMPMC(t *testing.T) {
	const producers, consumers = 4, 4
	perProducer := 20000
	if testing.Short() {
		perProducer = 2000
	}
	r := NewTypedRing[int](64)
	var sum, want atomic.Int64
	var wg sync.WaitGroup
	var popped atomic.Int64
	total := int64(producers * perProducer)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := p*perProducer + i
				want.Add(int64(v))
				for !r.Push(v) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for popped.Load() < total {
				v, ok := r.Pop()
				if !ok {
					runtime.Gosched()
					continue
				}
				sum.Add(int64(v))
				popped.Add(1)
			}
		}()
	}
	wg.Wait()
	if sum.Load() != want.Load() {
		t.Fatalf("sum %d != pushed %d", sum.Load(), want.Load())
	}
}
