package migrate

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"math"
	"time"

	"github.com/harmless-sdn/harmless/internal/cost"
	"github.com/harmless-sdn/harmless/internal/sim"
)

// WaveReport is one wave's verdict.
type WaveReport struct {
	Index    int      `json:"index"`
	Switches []string `json:"switches"`
	Ports    int      `json:"ports"`

	// PlannedCost is the wave's price from the plan; ActualCost is what
	// the campaign actually booked (0 for a rolled-back wave — its
	// server is returned to the pool).
	PlannedCost float64 `json:"plannedCost"`
	ActualCost  float64 `json:"actualCost"`
	// CumulativeSpend accumulates ActualCost through this wave;
	// the baselines price the same cumulative committed ports under the
	// comparison strategies.
	CumulativeSpend       float64 `json:"cumulativeSpend"`
	BaselineRipAndReplace float64 `json:"baselineRipAndReplace"`
	BaselinePureSoftware  float64 `json:"baselinePureSoftware"`

	DeployAt  sim.Duration `json:"deployAt"`
	DecidedAt sim.Duration `json:"decidedAt"`
	// Outcome is "committed" or "rolledBack".
	Outcome string `json:"outcome"`
	// Fault records an injected mid-wave fault, if any.
	Fault    string       `json:"fault,omitempty"`
	FaultAt  sim.Duration `json:"faultAt"`
	Failover bool         `json:"failover,omitempty"`
	// ConfigConform: committed waves match their plan through the
	// management plane; rolled-back waves restored the exact pre-wave
	// running config.
	ConfigConform bool   `json:"configConform"`
	Reason        string `json:"reason,omitempty"`
}

// Report is a campaign run's verdict. Digest covers every field except
// WallMS and Digest itself, so identical specs and seeds must produce
// identical digests regardless of machine speed (the fleetsim
// convention).
type Report struct {
	Campaign    string `json:"campaign"`
	Seed        int64  `json:"seed"`
	Switches    int    `json:"switches"`
	AccessPorts int    `json:"accessPorts"`

	Waves           []WaveReport `json:"waves"`
	CommittedWaves  int          `json:"committedWaves"`
	RolledBackWaves int          `json:"rolledBackWaves"`
	MigratedPorts   int          `json:"migratedPorts"`

	// PlannedSpend is the full-plan price; ActualSpend books only
	// committed waves. The baselines price the full fabric.
	PlannedSpend          float64 `json:"plannedSpend"`
	ActualSpend           float64 `json:"actualSpend"`
	BaselineRipAndReplace float64 `json:"baselineRipAndReplace"`
	BaselinePureSoftware  float64 `json:"baselinePureSoftware"`
	CrossoverWave         int     `json:"crossoverWave"`
	// CostConform: every wave's planned cost re-derives bitwise from
	// internal/cost and actual spend sums exactly over committed waves.
	CostConform bool `json:"costConform"`

	// Traffic books. CounterExact is the zero-loss invariant: every
	// datagram offered during the whole campaign — including mid-wave
	// faults and rollbacks — was delivered.
	Sent            uint64 `json:"sentDatagrams"`
	Received        uint64 `json:"receivedDatagrams"`
	Lost            uint64 `json:"lostDatagrams"`
	SendErrs        uint64 `json:"sendErrors"`
	DeadTrunkFrames uint64 `json:"deadTrunkFrames"`
	CounterExact    bool   `json:"counterExact"`

	Failures []string `json:"failures,omitempty"`
	Pass     bool     `json:"pass"`

	Events     uint64       `json:"events"`
	VirtualEnd sim.Duration `json:"virtualEnd"`
	WallMS     int64        `json:"wallMS"` // excluded from Digest
	Digest     string       `json:"digest"` // excluded from itself
}

// ComputeDigest is the canonical report digest: SHA-256 over the
// report's JSON with the wall-time and digest fields zeroed.
func (r Report) ComputeDigest() string {
	r.WallMS = 0
	r.Digest = ""
	b, err := json.Marshal(r)
	if err != nil {
		return "marshal-error"
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// finish builds the verified report after the event loop drains.
func (x *Executor) finish(st sim.RunStats, wallStart time.Time) *Report {
	rep := &Report{
		Campaign:              x.spec.Name,
		Seed:                  x.spec.Seed,
		Switches:              len(x.spec.Switches),
		PlannedSpend:          x.plan.TotalSpend,
		BaselineRipAndReplace: x.plan.FinalRipAndReplace,
		BaselinePureSoftware:  x.plan.FinalPureSoftware,
		CrossoverWave:         x.plan.CrossoverWave,
		CostConform:           true,
		Events:                st.Events,
		VirtualEnd:            sim.Duration{Duration: st.VirtualEnd},
	}
	for _, s := range x.spec.Switches {
		rep.AccessPorts += s.AccessPorts()
	}

	committedPorts := 0
	for _, w := range x.waves {
		wr := WaveReport{
			Index:         w.plan.Index,
			Switches:      w.plan.Names(),
			Ports:         w.plan.Ports,
			PlannedCost:   w.plan.Cost.Total,
			DeployAt:      sim.Duration{Duration: w.deployAt},
			DecidedAt:     sim.Duration{Duration: w.decidedAt},
			Outcome:       w.outcome,
			Fault:         string(w.fault),
			FaultAt:       sim.Duration{Duration: w.faultAt},
			Failover:      w.failover,
			ConfigConform: w.configConform,
			Reason:        w.reason,
		}
		if w.outcome == "" {
			wr.Outcome = "undecided"
			x.failf("wave %d never reached a verdict", w.plan.Index)
		}
		// Cost conformance: the planned figure must re-derive bitwise
		// from internal/cost right now — the plan cannot drift from the
		// model it claims to follow.
		if b, err := x.plan.Catalog.WaveCost(len(w.plan.Switches), w.plan.Ports); err != nil || b.Total != w.plan.Cost.Total {
			rep.CostConform = false
			x.failf("wave %d: planned cost $%v does not re-derive from the cost model", w.plan.Index, w.plan.Cost.Total)
		}
		if w.outcome == OutcomeCommitted {
			wr.ActualCost = w.plan.Cost.Total
			rep.CommittedWaves++
			rep.MigratedPorts += w.plan.Ports
			committedPorts += w.plan.Ports
		} else if w.outcome == OutcomeRolledBack {
			rep.RolledBackWaves++
		}
		rep.ActualSpend += wr.ActualCost
		wr.CumulativeSpend = rep.ActualSpend
		if committedPorts > 0 {
			if rr, err := x.plan.Catalog.Cost(cost.RipAndReplace, committedPorts, false); err == nil {
				wr.BaselineRipAndReplace = rr.Total
			}
			if ps, err := x.plan.Catalog.Cost(cost.PureSoftware, committedPorts, false); err == nil {
				wr.BaselinePureSoftware = ps.Total
			}
		}
		rep.Waves = append(rep.Waves, wr)
	}
	if math.Abs(rep.ActualSpend-sumCommitted(rep.Waves)) != 0 {
		rep.CostConform = false
	}

	for _, r := range x.rigs {
		rep.Sent += r.sent
		rep.Received += r.received
		rep.SendErrs += r.sendErrs
		rep.DeadTrunkFrames += r.deadTrunkRx
	}
	if rep.Sent >= rep.Received {
		rep.Lost = rep.Sent - rep.Received
	}
	rep.CounterExact = rep.Lost == 0 && rep.SendErrs == 0 && rep.Sent == rep.Received && rep.Sent > 0

	allConform := true
	for _, wr := range rep.Waves {
		if !wr.ConfigConform || wr.Outcome == "undecided" {
			allConform = false
		}
	}
	rep.Failures = x.failures
	rep.Pass = rep.CounterExact && rep.CostConform && allConform && len(rep.Failures) == 0
	rep.WallMS = time.Since(wallStart).Milliseconds() //harmless:allow-wallclock run-report wall duration
	rep.Digest = rep.ComputeDigest()
	return rep
}

// sumCommitted re-adds the per-wave actuals as a books cross-check.
func sumCommitted(waves []WaveReport) float64 {
	var t float64
	for _, w := range waves {
		t += w.ActualCost
	}
	return t
}
