package softswitch

import "sync"

// bufferPool stores packets referenced by packet-in buffer ids until
// the controller releases them via packet-out (or they are overwritten
// by newer packets — a ring, as in hardware).
type bufferPool struct {
	mu     sync.Mutex
	frames map[uint32][]byte
	next   uint32
	size   uint32
}

func newBufferPool(size int) *bufferPool {
	return &bufferPool{frames: make(map[uint32][]byte, size), size: uint32(size)}
}

// store saves a frame and returns its buffer id. Ids cycle through
// [1, size]; 0 is never allocated so controller helpers can treat a
// zero BufferID as "unset" without colliding with a real buffer.
func (b *bufferPool) store(frame []byte) uint32 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.next++
	if b.next > b.size {
		b.next = 1
	}
	id := b.next
	cp := make([]byte, len(frame))
	copy(cp, frame)
	b.frames[id] = cp
	return id
}

// take removes and returns the frame for id.
func (b *bufferPool) take(id uint32) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	f, ok := b.frames[id]
	if ok {
		delete(b.frames, id)
	}
	return f, ok
}

// Len returns the number of buffered frames.
func (b *bufferPool) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.frames)
}
