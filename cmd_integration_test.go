package harmless_test

// Binary-level integration tests: build the real cmd/ executables and
// drive them the way an operator would.

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildBinaries compiles all cmd/ executables once per test run.
func buildBinaries(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("binary integration test")
	}
	dir := t.TempDir()
	for _, name := range []string{"harmlessd", "ofctl", "costcalc", "trafficgen"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, b)
		}
	}
	return dir
}

func TestBinaryHarmlessdOneshot(t *testing.T) {
	bin := buildBinaries(t)
	cmd := exec.Command(filepath.Join(bin, "harmlessd"), "-ports", "4", "-oneshot")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("harmlessd -oneshot: %v\n%s", err, out)
	}
	for _, want := range []string{"demo PASSED", "h1 -> h2: ok", "migrated"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBinaryCostcalc(t *testing.T) {
	bin := buildBinaries(t)
	out, err := exec.Command(filepath.Join(bin, "costcalc"), "-ports", "48").CombinedOutput()
	if err != nil {
		t.Fatalf("costcalc: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "harmless") || !strings.Contains(string(out), "break-even") {
		t.Errorf("costcalc output:\n%s", out)
	}
}

// TestBinaryOfctlAgainstHarmlessd pairs the two daemons over real TCP:
// ofctl listens as a controller, harmlessd connects SS_2 to it, and
// ofctl dumps the switch description.
func TestBinaryOfctlAgainstHarmlessd(t *testing.T) {
	bin := buildBinaries(t)
	port := freeTCPPort(t)
	addr := fmt.Sprintf("127.0.0.1:%d", port)

	ofctl := exec.Command(filepath.Join(bin, "ofctl"), "-listen", addr, "-timeout", "20s", "show")
	var ofctlOut bytes.Buffer
	ofctl.Stdout = &ofctlOut
	ofctl.Stderr = &ofctlOut
	if err := ofctl.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ofctl.Wait() }()

	// Give ofctl a moment to bind, then point harmlessd at it.
	waitForListen(t, addr)
	hd := exec.Command(filepath.Join(bin, "harmlessd"),
		"-ports", "4", "-controller", addr, "-stats", "0")
	var hdOut bytes.Buffer
	hd.Stdout = &hdOut
	hd.Stderr = &hdOut
	if err := hd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = hd.Process.Kill()
		_, _ = hd.Process.Wait()
	}()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ofctl: %v\nofctl output:\n%s\nharmlessd output:\n%s",
				err, ofctlOut.String(), hdOut.String())
		}
	case <-time.After(30 * time.Second):
		_ = ofctl.Process.Kill()
		t.Fatalf("ofctl timed out\nofctl output:\n%s\nharmlessd output:\n%s",
			ofctlOut.String(), hdOut.String())
	}
	out := ofctlOut.String()
	if !strings.Contains(out, "dpid=") || !strings.Contains(out, "port 1") {
		t.Errorf("ofctl show output:\n%s", out)
	}
}

func freeTCPPort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

func waitForListen(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("nothing listening on %s", addr)
}
