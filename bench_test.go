package harmless_test

// Benchmark harness: one benchmark family per quantitative experiment
// of DESIGN.md's index. Run with
//
//	go test -bench=. -benchmem .
//
// BenchmarkE2_Throughput regenerates the frame-size throughput sweep
// (bare software switch vs the full HARMLESS chain, generic vs
// specialized datapath); BenchmarkE3_PathLatency measures per-packet
// forwarding latency of the same paths; BenchmarkE8_TableScaling
// regenerates the flow-table scaling series (pipeline lookup cost vs
// rule count and vs access-port count).

import (
	"fmt"
	"testing"
	"time"

	"github.com/harmless-sdn/harmless/internal/controller"
	"github.com/harmless-sdn/harmless/internal/controller/apps"
	"github.com/harmless-sdn/harmless/internal/fabric"
	"github.com/harmless-sdn/harmless/internal/harmless"
	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/softswitch"
)

// benchFrameSizes is the RFC 2544 ladder used by E2.
var benchFrameSizes = []int{64, 128, 256, 512, 1024, 1500}

// --- E2: throughput vs frame size -------------------------------------

// bareSwitchPath builds a 2-port software switch with one exact flow
// and returns an injector that pushes one frame through it.
func bareSwitchPath(b *testing.B, specialize bool) (inject func([]byte), cleanup func()) {
	b.Helper()
	sw := softswitch.New("bare", 0xbb, softswitch.WithSpecialization(specialize))
	l1 := netem.NewLink(netem.LinkConfig{})
	l2 := netem.NewLink(netem.LinkConfig{})
	sw.AttachNetPort(1, "in", l1.A())
	sw.AttachNetPort(2, "out", l2.A())
	sink := 0
	l2.B().SetReceiver(func([]byte) { sink++ })
	m := openflow.Match{}
	m.WithInPort(1)
	if _, err := sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowAdd, Priority: 10,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
		Match: m, Instructions: []openflow.Instruction{&openflow.InstrApplyActions{
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 2, MaxLen: 0xffff}},
		}},
	}); err != nil {
		b.Fatal(err)
	}
	return func(f []byte) { _ = l1.B().Send(f) }, func() { l1.Close(); l2.Close() }
}

// harmlessPath builds the full chain (legacy switch + S4 + learning
// controller), pre-warms the flows, and returns an injector sending a
// frame from host 1 towards host 2.
func harmlessPath(b *testing.B, specialize bool) (inject func([]byte), frameFor func(int) []byte, cleanup func()) {
	b.Helper()
	d, err := fabric.BuildDeployment(fabric.DeployConfig{
		NumPorts:   4,
		Apps:       []controller.App{&apps.Learning{Table: 0}},
		Specialize: specialize,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := d.WaitConnected(3 * time.Second); err != nil {
		b.Fatal(err)
	}
	// Warm: ARP + learned flows both ways.
	if err := d.Hosts[1].Ping(d.Hosts[2].IP, 2*time.Second); err != nil {
		b.Fatal(err)
	}
	if err := d.Hosts[1].Ping(d.Hosts[2].IP, 2*time.Second); err != nil {
		b.Fatal(err)
	}
	h1 := d.Hosts[1]
	frameFor = func(size int) []byte {
		payloadLen := size - pkt.EthernetHeaderLen - pkt.IPv4MinHeaderLen - pkt.UDPHeaderLen
		if payloadLen < 0 {
			payloadLen = 0
		}
		payload := make(pkt.Payload, payloadLen)
		f, err := pkt.Serialize(
			&pkt.Ethernet{Src: fabric.HostMAC(1), Dst: fabric.HostMAC(2), EtherType: pkt.EtherTypeIPv4},
			&pkt.IPv4Header{TTL: 64, Protocol: pkt.IPProtoUDP, Src: fabric.HostIP(1), Dst: fabric.HostIP(2)},
			&pkt.UDP{SrcPort: 7777, DstPort: 8888},
			&payload,
		)
		if err != nil {
			b.Fatal(err)
		}
		return f
	}
	return h1.SendRaw, frameFor, d.Close
}

func BenchmarkE2_Throughput(b *testing.B) {
	paths := []struct {
		name       string
		specialize bool
		harmless   bool
	}{
		{"bare-softswitch", false, false},
		{"harmless-generic", false, true},
		{"harmless-specialized", true, true},
	}
	for _, path := range paths {
		for _, size := range benchFrameSizes {
			b.Run(fmt.Sprintf("%s/frame=%d", path.name, size), func(b *testing.B) {
				var inject func([]byte)
				var cleanup func()
				var frame []byte
				if path.harmless {
					var frameFor func(int) []byte
					inject, frameFor, cleanup = harmlessPath(b, path.specialize)
					frame = frameFor(size)
				} else {
					inject, cleanup = bareSwitchPath(b, path.specialize)
					payloadLen := size - pkt.EthernetHeaderLen - pkt.IPv4MinHeaderLen - pkt.UDPHeaderLen
					payload := make(pkt.Payload, payloadLen)
					var err error
					frame, err = pkt.Serialize(
						&pkt.Ethernet{Src: fabric.HostMAC(1), Dst: fabric.HostMAC(2), EtherType: pkt.EtherTypeIPv4},
						&pkt.IPv4Header{TTL: 64, Protocol: pkt.IPProtoUDP, Src: fabric.HostIP(1), Dst: fabric.HostIP(2)},
						&pkt.UDP{SrcPort: 7777, DstPort: 8888},
						&payload,
					)
					if err != nil {
						b.Fatal(err)
					}
				}
				defer cleanup()
				b.SetBytes(int64(size))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// The sync fabric consumes the frame in-line; the
					// legacy switch re-tags a copy, so the original can
					// be resent.
					inject(frame)
				}
			})
		}
	}
}

// --- E2: batch-size sweep ---------------------------------------------

// BenchmarkE2_BatchSweep records the throughput trajectory of the
// batched dataplane API: the same 64-byte many-flow workload pushed
// through ReceiveBatch in vectors of 1/8/32/256 frames, with the ring
// egress backend so nothing but the datapath is in the measured loop.
// batch=1 is the per-frame wrapper baseline the larger vectors are
// judged against.
func BenchmarkE2_BatchSweep(b *testing.B) {
	for _, batch := range []int{1, 8, 32, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			sw := softswitch.New("sweep", 0xe2)
			in := netem.NewLink(netem.LinkConfig{})
			defer in.Close()
			sw.AttachNetPort(1, "in", in.A())
			ring := softswitch.NewRingBackend(4096)
			sw.AttachPort(2, "out", ring)
			m := openflow.Match{}
			m.WithInPort(1)
			if _, err := sw.ApplyFlowMod(&openflow.FlowMod{
				TableID: 0, Command: openflow.FlowAdd, Priority: 10,
				BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
				Match: m, Instructions: []openflow.Instruction{&openflow.InstrApplyActions{
					Actions: []openflow.Action{&openflow.ActionOutput{Port: 2, MaxLen: 0xffff}},
				}},
			}); err != nil {
				b.Fatal(err)
			}
			gen := fabric.NewUDPGenerator(64, 1024, 7)
			// Warm the microflow cache.
			for i := 0; i < gen.Len(); i++ {
				sw.Receive(1, gen.Next())
			}
			var vec, sink [][]byte
			b.SetBytes(64)
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n += batch {
				if batch == 1 {
					sw.Receive(1, gen.Next())
				} else {
					vec = gen.NextBatch(vec, batch)
					sw.ReceiveBatch(1, vec)
				}
				sink = ring.Ring().Drain(sink[:0], 0)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pps")
		})
	}
}

// --- E2 ablation: translator hop alone --------------------------------

func BenchmarkE2_TranslatorOnly(b *testing.B) {
	for _, specialize := range []bool{false, true} {
		name := "generic"
		if specialize {
			name = "specialized"
		}
		b.Run(name, func(b *testing.B) {
			plan, err := harmless.PlanMigration(harmless.PlanConfig{
				Hostname: "bench", NumPorts: 24,
			})
			if err != nil {
				b.Fatal(err)
			}
			s4, err := harmless.BuildS4(plan, harmless.S4Config{Specialize: specialize})
			if err != nil {
				b.Fatal(err)
			}
			trunk := netem.NewLink(netem.LinkConfig{})
			defer trunk.Close()
			s4.AttachTrunk(trunk.B())
			// SS_2 bounces logical 1 -> logical 2.
			m := openflow.Match{}
			m.WithInPort(1)
			if _, err := s4.SS2.ApplyFlowMod(&openflow.FlowMod{
				TableID: 0, Command: openflow.FlowAdd, Priority: 10,
				BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
				Match: m, Instructions: []openflow.Instruction{&openflow.InstrApplyActions{
					Actions: []openflow.Action{&openflow.ActionOutput{Port: 2, MaxLen: 0xffff}},
				}},
			}); err != nil {
				b.Fatal(err)
			}
			trunk.A().SetReceiver(func([]byte) {})
			payload := pkt.Payload(make([]byte, 100))
			inner, err := pkt.Serialize(
				&pkt.Ethernet{Src: fabric.HostMAC(1), Dst: fabric.HostMAC(2), EtherType: pkt.EtherTypeIPv4},
				&pkt.IPv4Header{TTL: 64, Protocol: pkt.IPProtoUDP, Src: fabric.HostIP(1), Dst: fabric.HostIP(2)},
				&pkt.UDP{SrcPort: 1, DstPort: 2},
				&payload,
			)
			if err != nil {
				b.Fatal(err)
			}
			tagged, err := pkt.PushVLAN(inner, pkt.EtherTypeDot1Q, 101)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(tagged)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cp := make([]byte, len(tagged))
				copy(cp, tagged)
				_ = trunk.A().Send(cp)
			}
		})
	}
}

// --- E3: per-packet forwarding latency --------------------------------

// BenchmarkE3_PathLatency measures one traversal of each path with
// sync links: ns/op IS the processing latency added per packet.
func BenchmarkE3_PathLatency(b *testing.B) {
	b.Run("bare-softswitch", func(b *testing.B) {
		inject, cleanup := bareSwitchPath(b, false)
		defer cleanup()
		frame := fabric.NewUDPGenerator(256, 1, 1).CopyNext()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inject(frame)
		}
	})
	b.Run("harmless-chain", func(b *testing.B) {
		inject, frameFor, cleanup := harmlessPath(b, false)
		defer cleanup()
		frame := frameFor(256)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inject(frame)
		}
	})
}

// --- E8: flow-table scaling -------------------------------------------

func BenchmarkE8_TableScaling(b *testing.B) {
	for _, specialize := range []bool{false, true} {
		mode := "generic"
		if specialize {
			mode = "specialized"
		}
		for _, rules := range []int{16, 256, 4096, 16384} {
			b.Run(fmt.Sprintf("%s/rules=%d", mode, rules), func(b *testing.B) {
				sw := softswitch.New("scale", 0xcc, softswitch.WithSpecialization(specialize))
				in := netem.NewLink(netem.LinkConfig{})
				out := netem.NewLink(netem.LinkConfig{})
				defer in.Close()
				defer out.Close()
				sw.AttachNetPort(1, "in", in.A())
				sw.AttachNetPort(2, "out", out.A())
				out.B().SetReceiver(func([]byte) {})
				// Exact-match rules over destination IPs.
				for i := 0; i < rules; i++ {
					m := openflow.Match{}
					m.WithEthType(pkt.EtherTypeIPv4).
						WithIPv4Dst(pkt.IPv4FromUint32(0x0a000000 + uint32(i)))
					if _, err := sw.ApplyFlowMod(&openflow.FlowMod{
						TableID: 0, Command: openflow.FlowAdd, Priority: 100,
						BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
						Match: m, Instructions: []openflow.Instruction{&openflow.InstrApplyActions{
							Actions: []openflow.Action{&openflow.ActionOutput{Port: 2, MaxLen: 0xffff}},
						}},
					}); err != nil {
						b.Fatal(err)
					}
				}
				// Hit the median rule.
				payload := pkt.Payload(make([]byte, 26))
				frame, err := pkt.Serialize(
					&pkt.Ethernet{Src: fabric.HostMAC(1), Dst: fabric.HostMAC(2), EtherType: pkt.EtherTypeIPv4},
					&pkt.IPv4Header{TTL: 64, Protocol: pkt.IPProtoUDP,
						Src: fabric.HostIP(1), Dst: pkt.IPv4FromUint32(0x0a000000 + uint32(rules/2))},
					&pkt.UDP{SrcPort: 1, DstPort: 2},
					&payload,
				)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = in.B().Send(frame)
				}
			})
		}
	}
}

// BenchmarkE8_PortScaling measures the translator cost as the number
// of migrated access ports grows (VLAN fan-out on SS_1).
func BenchmarkE8_PortScaling(b *testing.B) {
	for _, ports := range []int{4, 8, 16, 48} {
		b.Run(fmt.Sprintf("ports=%d", ports), func(b *testing.B) {
			plan, err := harmless.PlanMigration(harmless.PlanConfig{
				Hostname: "scale", NumPorts: ports + 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			s4, err := harmless.BuildS4(plan, harmless.S4Config{Specialize: true})
			if err != nil {
				b.Fatal(err)
			}
			trunk := netem.NewLink(netem.LinkConfig{})
			defer trunk.Close()
			s4.AttachTrunk(trunk.B())
			trunk.A().SetReceiver(func([]byte) {})
			// SS_2: port 1 -> port 2.
			m := openflow.Match{}
			m.WithInPort(1)
			if _, err := s4.SS2.ApplyFlowMod(&openflow.FlowMod{
				TableID: 0, Command: openflow.FlowAdd, Priority: 10,
				BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
				Match: m, Instructions: []openflow.Instruction{&openflow.InstrApplyActions{
					Actions: []openflow.Action{&openflow.ActionOutput{Port: 2, MaxLen: 0xffff}},
				}},
			}); err != nil {
				b.Fatal(err)
			}
			gen := fabric.NewUDPGenerator(128, 8, 7)
			base := gen.CopyNext()
			tagged, err := pkt.PushVLAN(base, pkt.EtherTypeDot1Q, 101)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(tagged)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cp := make([]byte, len(tagged))
				copy(cp, tagged)
				_ = trunk.A().Send(cp)
			}
		})
	}
}
