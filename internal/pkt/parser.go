package pkt

// Parser is a reusable, zero-allocation decoder in the style of
// gopacket's DecodingLayerParser: the caller owns one Parser (it is NOT
// safe for concurrent use) and repeatedly calls DecodeLayers; the
// parser decodes into its own preallocated layer structs and reports
// which layers were found. Hosts and the capture tooling use it to
// avoid per-frame allocations on busy paths.
type Parser struct {
	Eth    Ethernet
	Dot1Q  [2]Dot1Q // outer, inner (QinQ)
	ARP    ARP
	IPv4   IPv4Header
	IPv6   IPv6Header
	TCP    TCP
	UDP    UDP
	ICMPv4 ICMPv4
	DNS    DNS

	// Truncated is set when an inner layer was cut short; the layers
	// decoded before it are still valid.
	Truncated bool
}

// NewParser returns a ready-to-use Parser.
func NewParser() *Parser { return &Parser{} }

// DecodeLayers decodes frame starting at Ethernet, appending each
// decoded LayerType to decoded (which is reset first). Unknown or
// truncated inner layers stop the walk without an error; only a frame
// too short for Ethernet returns one.
func (p *Parser) DecodeLayers(frame []byte, decoded *[]LayerType) error {
	*decoded = (*decoded)[:0]
	p.Truncated = false
	if err := p.Eth.DecodeFromBytes(frame); err != nil {
		return err
	}
	*decoded = append(*decoded, LayerTypeEthernet)
	next := p.Eth.NextLayerType()
	rest := p.Eth.LayerPayload()
	vlanIdx := 0
	for next != LayerTypeNone && next != LayerTypePayload {
		var l Layer
		switch next {
		case LayerTypeDot1Q:
			if vlanIdx >= len(p.Dot1Q) {
				return nil // deeper QinQ nesting than supported: treat as payload
			}
			l = &p.Dot1Q[vlanIdx]
			vlanIdx++
		case LayerTypeARP:
			l = &p.ARP
		case LayerTypeIPv4:
			l = &p.IPv4
		case LayerTypeIPv6:
			l = &p.IPv6
		case LayerTypeTCP:
			l = &p.TCP
		case LayerTypeUDP:
			l = &p.UDP
		case LayerTypeICMPv4:
			l = &p.ICMPv4
		case LayerTypeDNS:
			l = &p.DNS
		default:
			return nil
		}
		if err := l.DecodeFromBytes(rest); err != nil {
			p.Truncated = true
			return nil
		}
		*decoded = append(*decoded, next)
		rest = l.LayerPayload()
		next = l.NextLayerType()
		if len(rest) == 0 && next != LayerTypeNone {
			return nil
		}
	}
	return nil
}

// OuterVLAN returns the outermost decoded VLAN tag. Only valid if
// decoded contains LayerTypeDot1Q.
func (p *Parser) OuterVLAN() *Dot1Q { return &p.Dot1Q[0] }
