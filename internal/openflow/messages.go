package openflow

import (
	"encoding/binary"
	"fmt"

	"github.com/harmless-sdn/harmless/internal/pkt"
)

// --- Hello / Echo / Barrier -----------------------------------------

// Hello opens version negotiation.
type Hello struct{ xid }

// MsgType implements Message.
func (*Hello) MsgType() uint8 { return TypeHello }

// Marshal implements Message.
func (m *Hello) Marshal() ([]byte, error) {
	buf := make([]byte, HeaderLen)
	putHeader(buf, TypeHello, m.Xid)
	return buf, nil
}

func (m *Hello) unmarshalBody(body []byte) error { return nil }

// EchoRequest is a liveness probe; Data is echoed back.
type EchoRequest struct {
	xid
	Data []byte
}

// MsgType implements Message.
func (*EchoRequest) MsgType() uint8 { return TypeEchoRequest }

// Marshal implements Message.
func (m *EchoRequest) Marshal() ([]byte, error) {
	buf := make([]byte, HeaderLen+len(m.Data))
	copy(buf[HeaderLen:], m.Data)
	putHeader(buf, TypeEchoRequest, m.Xid)
	return buf, nil
}

func (m *EchoRequest) unmarshalBody(body []byte) error {
	if len(body) > 0 {
		m.Data = append([]byte{}, body...)
	}
	return nil
}

// EchoReply answers an EchoRequest with the same data.
type EchoReply struct {
	xid
	Data []byte
}

// MsgType implements Message.
func (*EchoReply) MsgType() uint8 { return TypeEchoReply }

// Marshal implements Message.
func (m *EchoReply) Marshal() ([]byte, error) {
	buf := make([]byte, HeaderLen+len(m.Data))
	copy(buf[HeaderLen:], m.Data)
	putHeader(buf, TypeEchoReply, m.Xid)
	return buf, nil
}

func (m *EchoReply) unmarshalBody(body []byte) error {
	if len(body) > 0 {
		m.Data = append([]byte{}, body...)
	}
	return nil
}

// BarrierRequest asks the switch to finish all preceding operations.
type BarrierRequest struct{ xid }

// MsgType implements Message.
func (*BarrierRequest) MsgType() uint8 { return TypeBarrierRequest }

// Marshal implements Message.
func (m *BarrierRequest) Marshal() ([]byte, error) {
	buf := make([]byte, HeaderLen)
	putHeader(buf, TypeBarrierRequest, m.Xid)
	return buf, nil
}

func (m *BarrierRequest) unmarshalBody(body []byte) error { return nil }

// BarrierReply acknowledges a BarrierRequest.
type BarrierReply struct{ xid }

// MsgType implements Message.
func (*BarrierReply) MsgType() uint8 { return TypeBarrierReply }

// Marshal implements Message.
func (m *BarrierReply) Marshal() ([]byte, error) {
	buf := make([]byte, HeaderLen)
	putHeader(buf, TypeBarrierReply, m.Xid)
	return buf, nil
}

func (m *BarrierReply) unmarshalBody(body []byte) error { return nil }

// --- Error -----------------------------------------------------------

// Error type codes (subset).
const (
	ErrTypeHelloFailed       uint16 = 0
	ErrTypeBadRequest        uint16 = 1
	ErrTypeBadAction         uint16 = 2
	ErrTypeBadMatch          uint16 = 4
	ErrTypeFlowModFailed     uint16 = 5
	ErrTypeGroupModFailed    uint16 = 6
	ErrTypeRoleRequestFailed uint16 = 11
	ErrTypeMeterModFailed    uint16 = 12
)

// Flow-mod failed codes (subset).
const (
	FlowModFailedUnknown   uint16 = 0
	FlowModFailedTableFull uint16 = 1
	FlowModFailedBadTable  uint16 = 2
	FlowModFailedOverlap   uint16 = 3
)

// Error reports a failure back to the message originator.
type Error struct {
	xid
	ErrType uint16
	Code    uint16
	Data    []byte // first bytes of the offending message
}

// MsgType implements Message.
func (*Error) MsgType() uint8 { return TypeError }

// Marshal implements Message.
func (m *Error) Marshal() ([]byte, error) {
	buf := make([]byte, HeaderLen+4+len(m.Data))
	binary.BigEndian.PutUint16(buf[HeaderLen:], m.ErrType)
	binary.BigEndian.PutUint16(buf[HeaderLen+2:], m.Code)
	copy(buf[HeaderLen+4:], m.Data)
	putHeader(buf, TypeError, m.Xid)
	return buf, nil
}

func (m *Error) unmarshalBody(body []byte) error {
	if len(body) < 4 {
		return fmt.Errorf("openflow: truncated error body")
	}
	m.ErrType = binary.BigEndian.Uint16(body[0:2])
	m.Code = binary.BigEndian.Uint16(body[2:4])
	if d := body[4:]; len(d) > 0 {
		m.Data = append([]byte{}, d...)
	}
	return nil
}

// Error implements the error interface so an *Error can flow through
// Go error paths.
func (m *Error) Error() string {
	return fmt.Sprintf("openflow: error type=%d code=%d", m.ErrType, m.Code)
}

// --- Features --------------------------------------------------------

// FeaturesRequest asks the switch for its identity.
type FeaturesRequest struct{ xid }

// MsgType implements Message.
func (*FeaturesRequest) MsgType() uint8 { return TypeFeaturesRequest }

// Marshal implements Message.
func (m *FeaturesRequest) Marshal() ([]byte, error) {
	buf := make([]byte, HeaderLen)
	putHeader(buf, TypeFeaturesRequest, m.Xid)
	return buf, nil
}

func (m *FeaturesRequest) unmarshalBody(body []byte) error { return nil }

// Capability bits (ofp_capabilities).
const (
	CapFlowStats  uint32 = 1 << 0
	CapTableStats uint32 = 1 << 1
	CapPortStats  uint32 = 1 << 2
	CapGroupStats uint32 = 1 << 3
)

// FeaturesReply identifies the switch.
type FeaturesReply struct {
	xid
	DatapathID   uint64
	NBuffers     uint32
	NTables      uint8
	AuxiliaryID  uint8
	Capabilities uint32
}

// MsgType implements Message.
func (*FeaturesReply) MsgType() uint8 { return TypeFeaturesReply }

// Marshal implements Message.
func (m *FeaturesReply) Marshal() ([]byte, error) {
	buf := make([]byte, HeaderLen+24)
	binary.BigEndian.PutUint64(buf[HeaderLen:], m.DatapathID)
	binary.BigEndian.PutUint32(buf[HeaderLen+8:], m.NBuffers)
	buf[HeaderLen+12] = m.NTables
	buf[HeaderLen+13] = m.AuxiliaryID
	binary.BigEndian.PutUint32(buf[HeaderLen+16:], m.Capabilities)
	putHeader(buf, TypeFeaturesReply, m.Xid)
	return buf, nil
}

func (m *FeaturesReply) unmarshalBody(body []byte) error {
	if len(body) < 24 {
		return fmt.Errorf("openflow: truncated features reply")
	}
	m.DatapathID = binary.BigEndian.Uint64(body[0:8])
	m.NBuffers = binary.BigEndian.Uint32(body[8:12])
	m.NTables = body[12]
	m.AuxiliaryID = body[13]
	m.Capabilities = binary.BigEndian.Uint32(body[16:20])
	return nil
}

// --- FlowMod ---------------------------------------------------------

// Flow-mod commands (ofp_flow_mod_command).
const (
	FlowAdd          uint8 = 0
	FlowModify       uint8 = 1
	FlowModifyStrict uint8 = 2
	FlowDelete       uint8 = 3
	FlowDeleteStrict uint8 = 4
)

// Flow-mod flags.
const (
	FlowFlagSendFlowRem  uint16 = 1 << 0
	FlowFlagCheckOverlap uint16 = 1 << 1
)

// FlowMod installs, modifies or removes flow entries.
type FlowMod struct {
	xid
	Cookie       uint64
	CookieMask   uint64
	TableID      uint8
	Command      uint8
	IdleTimeout  uint16
	HardTimeout  uint16
	Priority     uint16
	BufferID     uint32
	OutPort      uint32
	OutGroup     uint32
	Flags        uint16
	Match        Match
	Instructions []Instruction
}

// MsgType implements Message.
func (*FlowMod) MsgType() uint8 { return TypeFlowMod }

// Marshal implements Message.
func (m *FlowMod) Marshal() ([]byte, error) {
	match, err := m.Match.marshal()
	if err != nil {
		return nil, err
	}
	instrs, err := marshalInstructions(m.Instructions)
	if err != nil {
		return nil, err
	}
	fixed := make([]byte, 40)
	binary.BigEndian.PutUint64(fixed[0:8], m.Cookie)
	binary.BigEndian.PutUint64(fixed[8:16], m.CookieMask)
	fixed[16] = m.TableID
	fixed[17] = m.Command
	binary.BigEndian.PutUint16(fixed[18:20], m.IdleTimeout)
	binary.BigEndian.PutUint16(fixed[20:22], m.HardTimeout)
	binary.BigEndian.PutUint16(fixed[22:24], m.Priority)
	binary.BigEndian.PutUint32(fixed[24:28], m.BufferID)
	binary.BigEndian.PutUint32(fixed[28:32], m.OutPort)
	binary.BigEndian.PutUint32(fixed[32:36], m.OutGroup)
	binary.BigEndian.PutUint16(fixed[36:38], m.Flags)

	buf := make([]byte, 0, HeaderLen+len(fixed)+len(match)+len(instrs))
	buf = append(buf, make([]byte, HeaderLen)...)
	buf = append(buf, fixed...)
	buf = append(buf, match...)
	buf = append(buf, instrs...)
	putHeader(buf, TypeFlowMod, m.Xid)
	return buf, nil
}

func (m *FlowMod) unmarshalBody(body []byte) error {
	if len(body) < 40 {
		return fmt.Errorf("openflow: truncated flow mod")
	}
	m.Cookie = binary.BigEndian.Uint64(body[0:8])
	m.CookieMask = binary.BigEndian.Uint64(body[8:16])
	m.TableID = body[16]
	m.Command = body[17]
	m.IdleTimeout = binary.BigEndian.Uint16(body[18:20])
	m.HardTimeout = binary.BigEndian.Uint16(body[20:22])
	m.Priority = binary.BigEndian.Uint16(body[22:24])
	m.BufferID = binary.BigEndian.Uint32(body[24:28])
	m.OutPort = binary.BigEndian.Uint32(body[28:32])
	m.OutGroup = binary.BigEndian.Uint32(body[32:36])
	m.Flags = binary.BigEndian.Uint16(body[36:38])
	match, consumed, err := unmarshalMatch(body[40:])
	if err != nil {
		return err
	}
	m.Match = *match
	instrs, err := unmarshalInstructions(body[40+consumed:])
	if err != nil {
		return err
	}
	m.Instructions = instrs
	return nil
}

// String renders the flow mod in ovs-ofctl style.
func (m *FlowMod) String() string {
	return fmt.Sprintf("flow_mod cmd=%d table=%d priority=%d %s -> %s",
		m.Command, m.TableID, m.Priority, m.Match.String(), instructionsString(m.Instructions))
}

// --- PacketIn / PacketOut -------------------------------------------

// Packet-in reasons.
const (
	PacketInReasonNoMatch uint8 = 0
	PacketInReasonAction  uint8 = 1
)

// PacketIn delivers a packet to the controller.
type PacketIn struct {
	xid
	BufferID uint32
	TotalLen uint16
	Reason   uint8
	TableID  uint8
	Cookie   uint64
	Match    Match
	Data     []byte
}

// MsgType implements Message.
func (*PacketIn) MsgType() uint8 { return TypePacketIn }

// InPort extracts the ingress port from the packet-in match (the spec
// guarantees OXM_OF_IN_PORT is present).
func (m *PacketIn) InPort() (uint32, bool) {
	if o := m.Match.Get(OXMInPort); o != nil && len(o.Value) == 4 {
		return binary.BigEndian.Uint32(o.Value), true
	}
	return 0, false
}

// Marshal implements Message.
func (m *PacketIn) Marshal() ([]byte, error) {
	match, err := m.Match.marshal()
	if err != nil {
		return nil, err
	}
	fixed := make([]byte, 16)
	binary.BigEndian.PutUint32(fixed[0:4], m.BufferID)
	binary.BigEndian.PutUint16(fixed[4:6], m.TotalLen)
	fixed[6] = m.Reason
	fixed[7] = m.TableID
	binary.BigEndian.PutUint64(fixed[8:16], m.Cookie)

	buf := make([]byte, 0, HeaderLen+len(fixed)+len(match)+2+len(m.Data))
	buf = append(buf, make([]byte, HeaderLen)...)
	buf = append(buf, fixed...)
	buf = append(buf, match...)
	buf = append(buf, 0, 0) // spec: 2 bytes padding before data
	buf = append(buf, m.Data...)
	putHeader(buf, TypePacketIn, m.Xid)
	return buf, nil
}

func (m *PacketIn) unmarshalBody(body []byte) error {
	if len(body) < 16 {
		return fmt.Errorf("openflow: truncated packet in")
	}
	m.BufferID = binary.BigEndian.Uint32(body[0:4])
	m.TotalLen = binary.BigEndian.Uint16(body[4:6])
	m.Reason = body[6]
	m.TableID = body[7]
	m.Cookie = binary.BigEndian.Uint64(body[8:16])
	match, consumed, err := unmarshalMatch(body[16:])
	if err != nil {
		return err
	}
	m.Match = *match
	rest := body[16+consumed:]
	if len(rest) < 2 {
		return fmt.Errorf("openflow: packet in missing padding")
	}
	if d := rest[2:]; len(d) > 0 {
		m.Data = append([]byte{}, d...)
	}
	return nil
}

// PacketOut injects a packet into the switch datapath.
type PacketOut struct {
	xid
	BufferID uint32
	InPort   uint32
	Actions  []Action
	Data     []byte
}

// MsgType implements Message.
func (*PacketOut) MsgType() uint8 { return TypePacketOut }

// Marshal implements Message.
func (m *PacketOut) Marshal() ([]byte, error) {
	acts, err := marshalActions(m.Actions)
	if err != nil {
		return nil, err
	}
	fixed := make([]byte, 16)
	binary.BigEndian.PutUint32(fixed[0:4], m.BufferID)
	binary.BigEndian.PutUint32(fixed[4:8], m.InPort)
	binary.BigEndian.PutUint16(fixed[8:10], uint16(len(acts)))

	buf := make([]byte, 0, HeaderLen+len(fixed)+len(acts)+len(m.Data))
	buf = append(buf, make([]byte, HeaderLen)...)
	buf = append(buf, fixed...)
	buf = append(buf, acts...)
	buf = append(buf, m.Data...)
	putHeader(buf, TypePacketOut, m.Xid)
	return buf, nil
}

func (m *PacketOut) unmarshalBody(body []byte) error {
	if len(body) < 16 {
		return fmt.Errorf("openflow: truncated packet out")
	}
	m.BufferID = binary.BigEndian.Uint32(body[0:4])
	m.InPort = binary.BigEndian.Uint32(body[4:8])
	actLen := int(binary.BigEndian.Uint16(body[8:10]))
	if 16+actLen > len(body) {
		return fmt.Errorf("openflow: packet out actions overflow")
	}
	acts, err := unmarshalActions(body[16 : 16+actLen])
	if err != nil {
		return err
	}
	m.Actions = acts
	if rest := body[16+actLen:]; len(rest) > 0 {
		m.Data = append([]byte{}, rest...)
	}
	return nil
}

// --- FlowRemoved -----------------------------------------------------

// Flow-removed reasons.
const (
	FlowRemovedIdleTimeout uint8 = 0
	FlowRemovedHardTimeout uint8 = 1
	FlowRemovedDelete      uint8 = 2
)

// FlowRemoved notifies the controller that a flow entry expired or was
// deleted (sent only for entries installed with FlowFlagSendFlowRem).
type FlowRemoved struct {
	xid
	Cookie       uint64
	Priority     uint16
	Reason       uint8
	TableID      uint8
	DurationSec  uint32
	DurationNsec uint32
	IdleTimeout  uint16
	HardTimeout  uint16
	PacketCount  uint64
	ByteCount    uint64
	Match        Match
}

// MsgType implements Message.
func (*FlowRemoved) MsgType() uint8 { return TypeFlowRemoved }

// Marshal implements Message.
func (m *FlowRemoved) Marshal() ([]byte, error) {
	match, err := m.Match.marshal()
	if err != nil {
		return nil, err
	}
	fixed := make([]byte, 40)
	binary.BigEndian.PutUint64(fixed[0:8], m.Cookie)
	binary.BigEndian.PutUint16(fixed[8:10], m.Priority)
	fixed[10] = m.Reason
	fixed[11] = m.TableID
	binary.BigEndian.PutUint32(fixed[12:16], m.DurationSec)
	binary.BigEndian.PutUint32(fixed[16:20], m.DurationNsec)
	binary.BigEndian.PutUint16(fixed[20:22], m.IdleTimeout)
	binary.BigEndian.PutUint16(fixed[22:24], m.HardTimeout)
	binary.BigEndian.PutUint64(fixed[24:32], m.PacketCount)
	binary.BigEndian.PutUint64(fixed[32:40], m.ByteCount)

	buf := make([]byte, 0, HeaderLen+len(fixed)+len(match))
	buf = append(buf, make([]byte, HeaderLen)...)
	buf = append(buf, fixed...)
	buf = append(buf, match...)
	putHeader(buf, TypeFlowRemoved, m.Xid)
	return buf, nil
}

func (m *FlowRemoved) unmarshalBody(body []byte) error {
	if len(body) < 40 {
		return fmt.Errorf("openflow: truncated flow removed")
	}
	m.Cookie = binary.BigEndian.Uint64(body[0:8])
	m.Priority = binary.BigEndian.Uint16(body[8:10])
	m.Reason = body[10]
	m.TableID = body[11]
	m.DurationSec = binary.BigEndian.Uint32(body[12:16])
	m.DurationNsec = binary.BigEndian.Uint32(body[16:20])
	m.IdleTimeout = binary.BigEndian.Uint16(body[20:22])
	m.HardTimeout = binary.BigEndian.Uint16(body[22:24])
	m.PacketCount = binary.BigEndian.Uint64(body[24:32])
	m.ByteCount = binary.BigEndian.Uint64(body[32:40])
	match, _, err := unmarshalMatch(body[40:])
	if err != nil {
		return err
	}
	m.Match = *match
	return nil
}

// --- PortStatus -------------------------------------------------------

// Port-status reasons.
const (
	PortReasonAdd    uint8 = 0
	PortReasonDelete uint8 = 1
	PortReasonModify uint8 = 2
)

// Port state bits.
const (
	PortStateLinkDown uint32 = 1 << 0
	PortStateLive     uint32 = 1 << 2
)

// PortDesc describes one switch port (ofp_port).
type PortDesc struct {
	PortNo    uint32
	HWAddr    pkt.MAC
	Name      string // max 15 chars on the wire
	Config    uint32
	State     uint32
	CurrSpeed uint32 // kbps
	MaxSpeed  uint32 // kbps
}

const portDescLen = 64

func (p *PortDesc) marshal() []byte {
	buf := make([]byte, portDescLen)
	binary.BigEndian.PutUint32(buf[0:4], p.PortNo)
	copy(buf[8:14], p.HWAddr[:])
	name := p.Name
	if len(name) > 15 {
		name = name[:15]
	}
	copy(buf[16:32], name)
	binary.BigEndian.PutUint32(buf[32:36], p.Config)
	binary.BigEndian.PutUint32(buf[36:40], p.State)
	binary.BigEndian.PutUint32(buf[56:60], p.CurrSpeed)
	binary.BigEndian.PutUint32(buf[60:64], p.MaxSpeed)
	return buf
}

func unmarshalPortDesc(body []byte) (PortDesc, error) {
	var p PortDesc
	if len(body) < portDescLen {
		return p, fmt.Errorf("openflow: truncated port desc")
	}
	p.PortNo = binary.BigEndian.Uint32(body[0:4])
	copy(p.HWAddr[:], body[8:14])
	name := body[16:32]
	for i, b := range name {
		if b == 0 {
			name = name[:i]
			break
		}
	}
	p.Name = string(name)
	p.Config = binary.BigEndian.Uint32(body[32:36])
	p.State = binary.BigEndian.Uint32(body[36:40])
	p.CurrSpeed = binary.BigEndian.Uint32(body[56:60])
	p.MaxSpeed = binary.BigEndian.Uint32(body[60:64])
	return p, nil
}

// PortStatus announces a port change.
type PortStatus struct {
	xid
	Reason uint8
	Desc   PortDesc
}

// MsgType implements Message.
func (*PortStatus) MsgType() uint8 { return TypePortStatus }

// Marshal implements Message.
func (m *PortStatus) Marshal() ([]byte, error) {
	buf := make([]byte, 0, HeaderLen+8+portDescLen)
	buf = append(buf, make([]byte, HeaderLen)...)
	buf = append(buf, m.Reason)
	buf = append(buf, pad(7)...)
	buf = append(buf, m.Desc.marshal()...)
	putHeader(buf, TypePortStatus, m.Xid)
	return buf, nil
}

func (m *PortStatus) unmarshalBody(body []byte) error {
	if len(body) < 8+portDescLen {
		return fmt.Errorf("openflow: truncated port status")
	}
	m.Reason = body[0]
	desc, err := unmarshalPortDesc(body[8:])
	if err != nil {
		return err
	}
	m.Desc = desc
	return nil
}
