// Package detorder flags map iteration order leaking into
// order-sensitive output.
//
// The repo's CI gates compare SHA-256 digests of simulator verdicts and
// migration reports bitwise; the HTTP and IPFIX surfaces promise stable
// rendering for diffing. One `for k := range m` feeding a hash writer,
// an fmt stream or an exported record in map order breaks all of that
// nondeterministically — the worst kind of flake, because it passes
// most runs. The discipline is collect-then-sort: append the keys (or
// rows) to a slice, sort it, then emit.
//
// detorder enforces that discipline with the flow package's taint
// engine. Ranging over a map (or sync.Map, or maps.Keys/maps.Values)
// taints the iteration variables and everything derived from them;
// passing a tainted value through sort.* or slices.Sort* cleanses it.
// Two shapes are reported:
//
//   - emission inside the loop: a stream write (fmt.Fprint*/Print*, a
//     Write/WriteString/Encode method on a receiver that outlives the
//     loop) or a floating-point accumulation lexically inside an
//     unordered range body. The bytes hit the stream in map order no
//     matter how clean the arguments are.
//
//   - tainted data reaching a sink: a value derived from map iteration
//     (a slice of keys, a joined string) arrives at fmt, json.Marshal
//     or a Write/Encode call without passing through a sort.
//
// Integer accumulation (sum += v) stays clean — addition over int is
// commutative bitwise — but float accumulation is flagged: rounding
// makes float addition order-sensitive, and the digests compare
// bitwise. Map writes and lookups by key are order-free and never
// taint. encoding/json sorts map keys itself, so encoding a map value
// is fine; encoding a tainted slice is not.
//
// Scope: the deterministic-output packages (internal/sim,
// internal/migrate, internal/telemetry) and cmd/harmlessd, whose
// /stats and /flows handlers promise stable text. Deliberate unordered
// emission carries //harmless:allow-maporder <reason>.
package detorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"github.com/harmless-sdn/harmless/internal/analysis"
	"github.com/harmless-sdn/harmless/internal/analysis/flow"
)

// Analyzer is the detorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "detorder",
	Doc:  "flags map iteration order reaching hashes, streams and encoders without a sort",
	Run:  run,
}

// Scope selects the packages whose output is digest- or diff-compared:
// the simulator, the migration engine, telemetry export, and the
// daemon's HTTP handlers.
var Scope = regexp.MustCompile(`(^|/)(sim|migrate|telemetry|cmd/harmlessd)(/|$)`)

const hatch = "allow-maporder"

// sortCleansers are the sort-package functions that order their
// argument in place. IsSorted/Search only inspect, so they are not
// listed.
var sortCleansers = map[string]bool{
	"Sort":        true,
	"Stable":      true,
	"Slice":       true,
	"SliceStable": true,
	"Strings":     true,
	"Ints":        true,
	"Float64s":    true,
}

// streamMethods are method names that append to an order-sensitive
// receiver: hash.Hash and io.Writer writes, bytes.Buffer/strings.Builder
// appends, and encoder Encode methods (json.Encoder, gob, the repo's
// IPFIX encoder).
var streamMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Encode":      true,
}

// checker carries per-package sink state across the flow hooks.
type checker struct {
	pass *analysis.Pass
	// loops is the stack of open unordered-iteration contexts: range
	// statements over a map (or tainted sequence) and sync.Map Range
	// calls currently being walked.
	loops []ast.Node
	// reported dedups by sink position: one diagnostic per site even
	// when a call is both inside a loop and fed tainted arguments.
	reported map[token.Pos]bool
}

func run(pass *analysis.Pass) error {
	if !Scope.MatchString(pass.Pkg.Path()) {
		return nil
	}
	c := &checker{pass: pass, reported: make(map[token.Pos]bool)}
	cfg := flow.Config{
		SourceRange: func(x ast.Expr) bool { return isUnorderedSource(pass, x) },
		SourceCall:  func(call *ast.CallExpr) bool { return isMapsKeysValues(pass, call) },
		Cleanse:     func(call *ast.CallExpr) bool { return isSortCall(pass, call) },
		Enter:       c.enter,
		Leave:       c.leave,
	}
	flow.Run(pass, cfg)
	pass.ReportUnused(hatch)
	return nil
}

func (c *checker) enter(t *flow.Tracker, n ast.Node) {
	switch x := n.(type) {
	case *ast.RangeStmt:
		if isUnorderedSource(c.pass, x.X) || taintedExpr(t, x.X) {
			c.loops = append(c.loops, x)
		}
	case *ast.CallExpr:
		if c.isSyncMapRange(x) {
			c.loops = append(c.loops, x)
			return
		}
		c.checkCall(t, x)
	case *ast.AssignStmt:
		c.checkFloatAccum(x)
	}
}

func (c *checker) leave(_ *flow.Tracker, n ast.Node) {
	if len(c.loops) > 0 && c.loops[len(c.loops)-1] == n {
		c.loops = c.loops[:len(c.loops)-1]
	}
}

// sink is one classified order-sensitive call.
type sink struct {
	name string
	// dest is the stream the call appends to (writer argument or
	// method receiver); nil for process-global destinations (stdout)
	// and pure serializers.
	dest ast.Expr
	// payload lists the arguments whose data reaches the destination.
	payload []ast.Expr
	// emission: the act of calling inside an unordered loop leaks
	// order even with clean arguments (stream appends). Pure
	// serializers like json.Marshal only leak via tainted payload.
	emission bool
}

// checkCall reports both shapes on one call site. A sink whose
// destination is declared inside the current loop is skipped entirely:
// writing per-entry data into a per-entry buffer is the sanctioned
// collect-then-sort pattern, and the buffer itself picks up taint for
// downstream checking.
func (c *checker) checkCall(t *flow.Tracker, call *ast.CallExpr) {
	s, ok := c.classifySink(call)
	if !ok {
		return
	}
	if s.dest != nil && c.declaredInLoop(s.dest) {
		return
	}
	if s.emission && c.inUnorderedLoop() {
		c.report(call.Pos(), "map iteration order reaches %s: the stream sees entries unordered; collect into a slice, sort, then emit (or add //harmless:allow-maporder <reason>)", s.name)
		return
	}
	for _, arg := range s.payload {
		if !taintedExpr(t, arg) {
			continue
		}
		c.report(call.Pos(), "value derived from map iteration order reaches %s unsorted; sort before emitting (or add //harmless:allow-maporder <reason>)", s.name)
		return
	}
}

// classifySink recognizes the order-sensitive calls. fmt.Sprint* and
// fmt.Errorf are deliberately absent: they build a value, and the flow
// engine propagates taint through them to wherever that value actually
// leaks.
func (c *checker) classifySink(call *ast.CallExpr) (sink, bool) {
	if pkg, fn, ok := pkgFunc(c.pass, call); ok {
		switch {
		case pkg == "fmt" && hasPrefix(fn, "Fprint"):
			if len(call.Args) == 0 {
				return sink{}, false
			}
			return sink{name: "fmt." + fn, dest: call.Args[0], payload: call.Args[1:], emission: true}, true
		case pkg == "fmt" && hasPrefix(fn, "Print"):
			return sink{name: "fmt." + fn, payload: call.Args, emission: true}, true
		case pkg == "encoding/json" && hasPrefix(fn, "Marshal"):
			return sink{name: "json." + fn, payload: call.Args}, true
		case pkg == "io" && fn == "WriteString" && len(call.Args) == 2:
			return sink{name: "io.WriteString", dest: call.Args[0], payload: call.Args[1:], emission: true}, true
		case pkg == "encoding/binary" && fn == "Write" && len(call.Args) == 3:
			return sink{name: "binary.Write", dest: call.Args[0], payload: call.Args[2:], emission: true}, true
		}
		return sink{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !streamMethods[sel.Sel.Name] {
		return sink{}, false
	}
	if _, isMethod := c.pass.TypesInfo.Selections[sel]; !isMethod {
		return sink{}, false
	}
	name := "(" + types.TypeString(typeOf(c.pass, sel.X), shortQualifier) + ")." + sel.Sel.Name
	return sink{name: name, dest: sel.X, payload: call.Args, emission: true}, true
}

// checkFloatAccum flags `sum += v` on a float declared outside an
// unordered loop: float addition rounds, so the total depends on
// iteration order bitwise — exactly what the digest gates compare.
func (c *checker) checkFloatAccum(x *ast.AssignStmt) {
	switch x.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	if !c.inUnorderedLoop() || len(x.Lhs) != 1 {
		return
	}
	basic, ok := typeOf(c.pass, x.Lhs[0]).Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsFloat == 0 {
		return
	}
	if c.declaredInLoop(x.Lhs[0]) {
		return
	}
	c.report(x.Pos(), "floating-point accumulation in map iteration order is not bitwise deterministic; accumulate over a sorted slice (or add //harmless:allow-maporder <reason>)")
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.reported[pos] || c.pass.Suppressed(pos, hatch) {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

func (c *checker) inUnorderedLoop() bool { return len(c.loops) > 0 }

// declaredInLoop reports whether the root object of e is declared
// inside the innermost open unordered loop — a loop-local receiver
// (per-entry buffer) does not leak order beyond its entry.
func (c *checker) declaredInLoop(e ast.Expr) bool {
	if len(c.loops) == 0 {
		return false
	}
	loop := c.loops[len(c.loops)-1]
	obj := rootObject(c.pass, e)
	return obj != nil && obj.Pos() >= loop.Pos() && obj.Pos() <= loop.End()
}

// isSyncMapRange matches `x.Range(func(k, v) bool)` on a source.
func (c *checker) isSyncMapRange(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Range" || len(call.Args) != 1 {
		return false
	}
	if _, ok := call.Args[0].(*ast.FuncLit); !ok {
		return false
	}
	return isUnorderedSource(c.pass, sel.X)
}

// isUnorderedSource reports whether ranging over x iterates in
// unspecified order: map types and sync.Map.
func isUnorderedSource(pass *analysis.Pass, x ast.Expr) bool {
	typ := typeOf(pass, x)
	if typ == nil {
		return false
	}
	if _, isMap := typ.Underlying().(*types.Map); isMap {
		return true
	}
	if ptr, ok := typ.(*types.Pointer); ok {
		typ = ptr.Elem()
	}
	if named, ok := typ.(*types.Named); ok {
		obj := named.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Map"
	}
	return false
}

// isMapsKeysValues matches maps.Keys/maps.Values from the standard
// maps package: their iterators yield in map order.
func isMapsKeysValues(pass *analysis.Pass, call *ast.CallExpr) bool {
	pkg, fn, ok := pkgFunc(pass, call)
	return ok && pkg == "maps" && (fn == "Keys" || fn == "Values")
}

// isSortCall matches the ordering functions of sort and slices.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	pkg, fn, ok := pkgFunc(pass, call)
	if !ok {
		return false
	}
	switch pkg {
	case "sort":
		return sortCleansers[fn]
	case "slices":
		return hasPrefix(fn, "Sort")
	}
	return false
}

// pkgFunc resolves a call to (package path, function name) when its
// callee is a package-level function selected off an import.
func pkgFunc(pass *analysis.Pass, call *ast.CallExpr) (string, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// rootObject digs to the base identifier of a selector/index/call
// chain and resolves it; nil when the root is not a plain object
// (e.g. a call result), which callers treat as "outside any loop".
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return types.Typ[types.Invalid]
}

func taintedExpr(t *flow.Tracker, e ast.Expr) bool {
	_, ok := t.TaintedAt(e)
	return ok
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// shortQualifier renders package-qualified type names with the bare
// package name, keeping messages readable.
func shortQualifier(p *types.Package) string { return p.Name() }
