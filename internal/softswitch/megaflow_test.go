package softswitch

import (
	"sync"
	"testing"

	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/stats"
)

// tierStats finds one tier's snapshot by name.
func tierStats(t *testing.T, sw *Switch, name string) CacheTierStats {
	t.Helper()
	for _, ts := range sw.CacheTierStats() {
		if ts.Name == name {
			return ts
		}
	}
	t.Fatalf("no tier named %q in %+v", name, sw.CacheTierStats())
	return CacheTierStats{}
}

// TestMegaflowSharesMaskClass: with a ruleset that only consults
// in_port, the walk of the first flow must produce a wildcard entry
// that a second, entirely different 5-tuple hits — while a repeat of
// the first flow still hits the exact tier.
func TestMegaflowSharesMaskClass(t *testing.T) {
	r := newRig(t, 2)
	m := openflow.Match{}
	m.WithInPort(1)
	addFlow(t, r.sw, 0, 10, m, apply(out(2)))

	fA := udpFrame(t, macA, macB, ipA, ipB, 1111, 80, "a")
	fB := udpFrame(t, macB, macA, ipB, ipA, 2222, 53, "b")
	r.inject(t, 1, fA) // miss: walk, installs exact + megaflow entries
	r.inject(t, 1, fB) // different flow, same mask class: megaflow hit
	r.inject(t, 1, fA) // exact-tier hit
	if r.hosts[2].count() != 3 {
		t.Fatalf("forwarded %d of 3", r.hosts[2].count())
	}
	if mega := tierStats(t, r.sw, "megaflow"); mega.Hits != 1 {
		t.Errorf("megaflow hits = %d, want 1 (%+v)", mega.Hits, mega)
	}
	if micro := tierStats(t, r.sw, "microflow"); micro.Hits != 1 {
		t.Errorf("microflow hits = %d, want 1 (%+v)", micro.Hits, micro)
	}
	cs := r.sw.CacheStats()
	if cs.Hits.Load() != 2 || cs.Misses.Load() != 1 {
		t.Errorf("chain stats: %s", cs)
	}
}

// TestMegaflowInvalidationOnRevisionChange: a megaflow entry must die
// the moment any table it specialized from changes revision. The
// ruleset consults only in_port, so the first walk records a
// match-anything program; adding a higher-priority UDP-dst entry would
// be masked by that program if revision validation failed.
func TestMegaflowInvalidationOnRevisionChange(t *testing.T) {
	r := newRig(t, 3)
	m := openflow.Match{}
	m.WithInPort(1)
	addFlow(t, r.sw, 0, 10, m, apply(out(2)))

	r.inject(t, 1, udpFrame(t, macA, macB, ipA, ipB, 1111, 80, "a"))
	r.inject(t, 1, udpFrame(t, macB, macA, ipB, ipA, 2222, 80, "b")) // megaflow hit
	if r.hosts[2].count() != 2 {
		t.Fatalf("forwarded %d of 2", r.hosts[2].count())
	}

	// Table 0 changes: dst-80 traffic now goes to port 3.
	m80 := openflow.Match{}
	m80.WithEthType(pkt.EtherTypeIPv4).WithIPProto(pkt.IPProtoUDP).WithUDPDst(80)
	addFlow(t, r.sw, 0, 20, m80, apply(out(3)))

	// A third distinct flow projects onto the stale megaflow entry; it
	// must take the new pipeline state, not the cached program.
	r.inject(t, 1, udpFrame(t, macA, macB, ipA, ipB, 3333, 80, "c"))
	if r.hosts[2].count() != 2 || r.hosts[3].count() != 1 {
		t.Fatalf("after flow-add: port2=%d port3=%d, want 2/1",
			r.hosts[2].count(), r.hosts[3].count())
	}
	if mega := tierStats(t, r.sw, "megaflow"); mega.Invalidations == 0 {
		t.Errorf("revision change produced no megaflow invalidation: %+v", mega)
	}
}

// thrashRig builds a switch + frame set where every packet misses a
// 256-entry cache: 4096 single-packet flows distinguished by a field
// the consult mask includes (the never-matched src-port entry widens
// it to l4_src).
func thrashRig(t *testing.T, opts ...Option) (*Switch, [][]byte) {
	t.Helper()
	sw := New("thrash", 0x7a, append([]Option{WithMicroflowCacheSize(256)}, opts...)...)
	sw.AttachPort(2, "out", &discardBackend{})
	distract := openflow.Match{}
	distract.WithEthType(pkt.EtherTypeIPv4).WithIPProto(pkt.IPProtoUDP).WithUDPSrc(60001)
	addFlow(t, sw, 0, 5, distract, apply(out(2)))
	addFlow(t, sw, 0, 1, openflow.Match{}, apply(out(2)))
	frames := make([][]byte, 4096)
	for i := range frames {
		frames[i] = udpFrame(t, macA, macB, ipA, ipB, uint16(1000+i), 80, "z")
	}
	return sw, frames
}

// TestInstallPathZeroAlloc is the pooling guard: with bypass off,
// sustained thrash (every packet walks, records, installs and evicts)
// must run allocation-free once the pool and scratch state are warm.
func TestInstallPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are meaningless under the race detector")
	}
	sw, frames := thrashRig(t, WithAdaptiveBypass(false))
	for cycle := 0; cycle < 3; cycle++ {
		for _, f := range frames {
			sw.Receive(1, f)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(4096, func() {
		sw.Receive(1, frames[i%len(frames)])
		i++
	})
	if allocs != 0 {
		t.Errorf("install path allocates %.1f per packet, want 0", allocs)
	}
}

// TestAdaptiveBypassEngagesAndRecovers drives the shard state machine
// around its full cycle: thrash until shards give up on the cache,
// then a single cacheable flow until probation readmits its shard.
func TestAdaptiveBypassEngagesAndRecovers(t *testing.T) {
	sw, frames := thrashRig(t)
	// ~6 windows per shard of near-zero hit rate: every shard should
	// trip into bypass (2 consecutive low windows suffice).
	for cycle := 0; cycle < 12; cycle++ {
		for _, f := range frames {
			sw.Receive(1, f)
		}
	}
	cs := sw.CacheStats()
	if cs.Bypassed.Load() == 0 {
		t.Fatalf("thrash never engaged bypass: %s", cs)
	}

	// One flow, repeated: its shard must eventually probe, see a
	// perfect hit rate, and return to active — visible as hit growth.
	f := frames[0]
	base := sw.CacheStats().Hits.Load()
	recovered := false
	for i := 0; i < 3*bypassRetry && !recovered; i++ {
		sw.Receive(1, f)
		recovered = sw.CacheStats().Hits.Load() > base+2*bypassProbeSpan
	}
	if !recovered {
		t.Errorf("shard never recovered from bypass: %s", sw.CacheStats())
	}
}

// fakeTier is a minimal injected CacheTier: an unsharded exact-match
// map. It never releases entries to the pool — the chain must tolerate
// tiers that let dropped entries fall to the GC.
type fakeTier struct {
	mu       sync.Mutex
	m        map[pkt.Key]*CacheEntry
	stats    stats.CacheCounters
	installs int
}

func newFakeTier() *fakeTier { return &fakeTier{m: make(map[pkt.Key]*CacheEntry)} }

func (f *fakeTier) Name() string                   { return "fake" }
func (f *fakeTier) Exact() bool                    { return true }
func (f *fakeTier) Counters() *stats.CacheCounters { return &f.stats }

func (f *fakeTier) Lookup(k *pkt.Key, _ uint64) *CacheEntry {
	f.mu.Lock()
	e := f.m[*k]
	f.mu.Unlock()
	if e == nil || !e.valid() {
		return nil
	}
	f.stats.Hits.Inc()
	return e
}

func (f *fakeTier) ProbeBatch(keys []pkt.Key, skip []bool, out []*CacheEntry, sc *ProbeScratch) {
	for i := range keys {
		if skip[i] || out[i] != nil || sc.ShardBypassed(sc.Hash[i]) {
			continue
		}
		out[i] = f.Lookup(&keys[i], sc.Hash[i])
	}
}

func (f *fakeTier) Install(k *pkt.Key, e *CacheEntry) bool {
	f.mu.Lock()
	f.m[*k] = e
	f.installs++
	f.mu.Unlock()
	f.stats.Inserts.Inc()
	return true
}

func (f *fakeTier) Invalidate() int {
	f.mu.Lock()
	n := len(f.m)
	clear(f.m)
	f.mu.Unlock()
	return n
}

func (f *fakeTier) Sweep() int { return 0 }

func (f *fakeTier) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.m)
}

// TestInjectedCacheTier proves the chain runs a foreign CacheTier as
// its whole stack: lookups, installs and stats flow through it.
func TestInjectedCacheTier(t *testing.T) {
	ft := newFakeTier()
	r := newRig(t, 2, WithCacheTiers(ft))
	m := openflow.Match{}
	m.WithInPort(1)
	addFlow(t, r.sw, 0, 10, m, apply(out(2)))

	f := udpFrame(t, macA, macB, ipA, ipB, 1, 2, "x")
	for i := 0; i < 4; i++ {
		r.inject(t, 1, f)
	}
	if r.hosts[2].count() != 4 {
		t.Fatalf("forwarded %d of 4", r.hosts[2].count())
	}
	if ft.installs != 1 {
		t.Errorf("fake tier installs = %d, want 1", ft.installs)
	}
	cs := r.sw.CacheStats()
	if cs.Hits.Load() != 3 || cs.Misses.Load() != 1 {
		t.Errorf("chain stats through fake tier: %s", cs)
	}
	if ts := tierStats(t, r.sw, "fake"); ts.Len != 1 || !ts.Exact {
		t.Errorf("fake tier stats: %+v", ts)
	}
}
