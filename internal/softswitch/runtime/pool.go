// Package runtime is the poll-mode worker runtime of the softswitch:
// N run-to-completion workers, each owning one RX ring, drain frame
// batches through Switch.ReceiveMixedBatch — the OVS-PMD-style answer
// to "one caller thread, one core of throughput".
//
// # Flow sharding (RSS)
//
// Ingress frames are dispatched to workers by pkt.Key.Hash, so every
// frame of a given microflow lands on the SAME worker, always:
//
//   - per-flow frame order is preserved (one worker, one FIFO ring,
//     run-to-completion draining — no cross-worker reordering within a
//     flow);
//   - the flow's microflow-cache entry, flow-table entry counters and
//     megaflow dependencies stay hot in one core's cache.
//
// Frames whose key cannot be extracted (malformed) are sharded by
// ingress port instead, so they still traverse the datapath and are
// accounted as drops there rather than vanishing at dispatch.
//
// # Ownership rules
//
// The dataplane package rules apply end to end: Dispatch takes
// ownership of each frame; the worker's ring holds it until the worker
// drains it into its private dataplane.Batch and hands it to the
// switch. Each RX ring has exactly one consumer (its worker) while the
// pool runs — producers are many (Dispatch is concurrency-safe), the
// consumer is one, and Stop takes over as the sole consumer only after
// every worker has exited.
//
// # Per-worker statistics
//
// Workers tally frames, bytes, batches and verdicts into per-worker
// shards of stats.ShardedCounter — cache-line-padded, written only by
// their owning worker — so the hot path never touches a contended
// atomic. The shards are exact, not sampled: every frame is counted on
// exactly one shard (its worker's), so the aggregate Stats() equals
// the sum a single contended counter would have seen.
//
// # Idle backoff
//
// An idle worker spins (SpinPolls empty polls), then yields the OS
// thread (YieldPolls polls with a Gosched between), then parks on a
// notification channel. A producer pushing to a parked worker's ring
// wakes it; the parking sequence re-checks the ring after publishing
// the parked flag, so a wakeup can never be lost (both sides use
// sequentially consistent atomics).
package runtime

import (
	stdruntime "runtime"
	"sync"
	"sync/atomic"

	"github.com/harmless-sdn/harmless/internal/dataplane"
	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/softswitch"
	"github.com/harmless-sdn/harmless/internal/stats"
	"github.com/harmless-sdn/harmless/internal/telemetry"
)

// Config parameterizes a Pool. The zero value picks sensible defaults.
type Config struct {
	// Workers is the number of poll-mode workers (default GOMAXPROCS).
	Workers int
	// RingSize is the per-worker RX ring capacity in frames (default
	// 4096, rounded up to a power of two by dataplane.NewRing).
	RingSize int
	// Burst bounds how many frames one worker drains into a single
	// ReceiveMixedBatch call (default 256).
	Burst int
	// SpinPolls is how many consecutive empty polls a worker busy-spins
	// before starting to yield (default 128).
	SpinPolls int
	// YieldPolls is how many further empty polls the worker yields the
	// OS thread between, before parking on a notification (default 32).
	YieldPolls int
	// Observer, when non-nil, is called by each worker with its id and
	// the drained batch BEFORE the batch enters the switch (frames are
	// still intact). Test hook — e.g. the flow-affinity property test;
	// leave nil in production, it is on the hot path.
	Observer func(worker int, b *dataplane.Batch)
	// Telemetry, when non-nil, is the flow-telemetry table attached to
	// the switch this pool drives (also SetTelemetry it on the switch;
	// the pool does not do that). The pool contributes the runtime
	// halves of the telemetry contract: workers run timer sweeps when
	// they go idle — so flows keep expiring while the datapath is
	// quiet — and Stop flushes every remaining record after the final
	// drain, so a stopped pool leaves no unexported counts behind.
	// Size the table with Shards == Workers: the RSS flow pinning then
	// makes every shard effectively single-writer.
	Telemetry *telemetry.Table
	// Clock supplies the timestamps of the telemetry sweeps and the
	// final flush (default: the wall clock). Inject a virtual clock to
	// run the pool's idle-aging timers on simulated time.
	Clock netem.Clock
}

// PoolStats is a point-in-time snapshot of pool (or single-worker)
// statistics. Frames/Bytes/Batches count what entered the switch;
// CacheHits/SlowPath/Dropped split Frames by datapath verdict; RxDrops
// counts frames rejected at Dispatch because the target worker's ring
// was full (tail drop, frame never entered the switch).
type PoolStats struct {
	Frames    uint64
	Bytes     uint64
	Batches   uint64
	CacheHits uint64
	SlowPath  uint64
	Dropped   uint64
	RxDrops   uint64
}

// worker is one run-to-completion poll loop and the RX ring it owns.
type worker struct {
	id     int
	ring   *dataplane.Ring
	parked atomic.Bool
	wake   chan struct{}
	batch  dataplane.Batch
}

// Pool runs N poll-mode workers over one switch.
type Pool struct {
	sw      *softswitch.Switch
	cfg     Config
	workers []*worker

	// Per-worker stats shards; shard i is written by worker i only
	// (RxDrops and accepted by the producer that dispatched to worker
	// i, which contends only among producers of one worker's overflow).
	accepted *stats.ShardedCounter // frames admitted to a ring
	frames   *stats.ShardedCounter
	bytes    *stats.ShardedCounter
	batches  *stats.ShardedCounter
	hits     *stats.ShardedCounter
	slow     *stats.ShardedCounter
	dropped  *stats.ShardedCounter
	rxDrops  *stats.ShardedCounter

	stopping atomic.Bool
	stopC    chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New creates a pool of poll-mode workers over sw. Call Start to spawn
// the workers and Stop to drain and join them.
func New(sw *softswitch.Switch, cfg Config) *Pool {
	if cfg.Workers <= 0 {
		cfg.Workers = stdruntime.GOMAXPROCS(0)
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 4096
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 256
	}
	if cfg.SpinPolls <= 0 {
		cfg.SpinPolls = 128
	}
	if cfg.YieldPolls <= 0 {
		cfg.YieldPolls = 32
	}
	if cfg.Clock == nil {
		cfg.Clock = netem.RealClock{}
	}
	p := &Pool{
		sw:       sw,
		cfg:      cfg,
		accepted: stats.NewShardedCounter(cfg.Workers),
		frames:   stats.NewShardedCounter(cfg.Workers),
		bytes:    stats.NewShardedCounter(cfg.Workers),
		batches:  stats.NewShardedCounter(cfg.Workers),
		hits:     stats.NewShardedCounter(cfg.Workers),
		slow:     stats.NewShardedCounter(cfg.Workers),
		dropped:  stats.NewShardedCounter(cfg.Workers),
		rxDrops:  stats.NewShardedCounter(cfg.Workers),
		stopC:    make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		p.workers = append(p.workers, &worker{
			id:   i,
			ring: dataplane.NewRing(cfg.RingSize),
			wake: make(chan struct{}, 1),
		})
	}
	return p
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return len(p.workers) }

// Switch returns the switch the pool drives.
func (p *Pool) Switch() *softswitch.Switch { return p.sw }

// workerFor selects the worker a frame belongs to: Key.Hash sharding
// for extractable frames (flow affinity), ingress-port sharding for
// the malformed rest.
func (p *Pool) workerFor(inPort uint32, frame []byte) *worker {
	if len(p.workers) == 1 {
		return p.workers[0]
	}
	var key pkt.Key
	if pkt.ExtractKey(frame, inPort, &key) == nil {
		return p.workers[key.Hash()%uint64(len(p.workers))]
	}
	return p.workers[int(inPort)%len(p.workers)]
}

// Dispatch hands one frame arriving on inPort to its flow's worker,
// taking ownership of the frame. It never blocks: when the worker's
// ring is full — or the pool is stopping — the frame is tail-dropped
// (counted in RxDrops) and false is returned; ownership of a rejected
// frame stays with the caller, exactly like dataplane.Ring.Push. Safe
// for any number of concurrent producers.
func (p *Pool) Dispatch(inPort uint32, frame []byte) bool {
	w := p.workerFor(inPort, frame)
	if p.stopping.Load() {
		p.rxDrops.Shard(w.id).Inc()
		return false
	}
	if !w.ring.PushFrame(frame, inPort) {
		p.rxDrops.Shard(w.id).Inc()
		return false
	}
	p.accepted.Shard(w.id).Inc()
	p.wakeWorker(w)
	return true
}

// DispatchBatch dispatches a frame vector arriving on inPort,
// returning how many frames were admitted (the rest tail-dropped on
// full rings). Ownership of each admitted frame transfers to the pool;
// the vector itself is only borrowed, per the dataplane rules.
func (p *Pool) DispatchBatch(inPort uint32, frames [][]byte) int {
	n := 0
	for _, f := range frames {
		if p.Dispatch(inPort, f) {
			n++
		}
	}
	return n
}

// wakeWorker unparks w if it is parked. The parked flag is published
// before the worker's final ring re-check (seq-cst), so a producer
// that pushed after that re-check necessarily observes parked==true.
func (p *Pool) wakeWorker(w *worker) {
	if w.parked.Load() {
		select {
		case w.wake <- struct{}{}:
		default: // a wakeup is already pending
		}
	}
}

// Start spawns the workers. Call it once, before any Dispatch traffic
// that should be processed promptly (frames dispatched before Start
// simply wait in the rings).
func (p *Pool) Start() {
	for _, w := range p.workers {
		p.wg.Add(1)
		go p.run(w)
	}
}

// Stop drains and joins the workers: every frame admitted by Dispatch
// before Stop returns is processed through the switch. Workers empty
// their rings before exiting; Stop then keeps sweeping until the
// processed count has caught up with the admitted count AND every
// ring is empty, so a Dispatch that raced past the stopping check and
// pushed after a worker's final poll is still drained. Dispatch calls
// that begin after Stop has are tail-dropped; a call already past the
// stopping check can in principle land its push after the final sweep
// (a descheduling-width window) — producers that need the drain
// guarantee unconditionally should quiesce before calling Stop. Stop
// is idempotent.
func (p *Pool) Stop() {
	p.stopOnce.Do(func() {
		p.stopping.Store(true)
		close(p.stopC)
		p.wg.Wait()
		for {
			for _, w := range p.workers {
				for w.ring.DrainBatch(&w.batch, p.cfg.Burst) > 0 {
					p.process(w)
				}
			}
			// Both checks are needed: a racing Dispatch publishes the
			// frame (ring non-empty) before it bumps `accepted`, so
			// either the counters disagree or the ring shows the frame.
			if p.frames.Load() >= p.accepted.Load() && p.ringsEmpty() {
				// Every admitted frame has been observed; flush the
				// remaining telemetry records so exported totals catch
				// up with the datapath counters before Stop returns.
				if t := p.cfg.Telemetry; t != nil {
					t.FlushAll(p.cfg.Clock.Now().UnixNano())
				}
				return
			}
			stdruntime.Gosched()
		}
	})
}

// ringsEmpty reports whether every worker ring is drained.
func (p *Pool) ringsEmpty() bool {
	for _, w := range p.workers {
		if w.ring.Len() > 0 {
			return false
		}
	}
	return true
}

// Drain blocks until every frame admitted so far has been processed
// through the switch. Meaningful once the producers have quiesced (a
// concurrent Dispatch can admit new frames while Drain returns).
func (p *Pool) Drain() {
	for p.frames.Load() < p.accepted.Load() {
		stdruntime.Gosched()
	}
}

// run is one worker's poll loop: drain a burst, run it to completion
// through the switch, repeat; back off spin -> yield -> park when the
// ring stays empty.
func (p *Pool) run(w *worker) {
	defer p.wg.Done()
	idle := 0
	for {
		if w.ring.DrainBatch(&w.batch, p.cfg.Burst) > 0 {
			idle = 0
			p.process(w)
			continue
		}
		if p.stopping.Load() {
			return // ring empty and stopping: this worker is drained
		}
		idle++
		switch {
		case idle <= p.cfg.SpinPolls:
			// Busy poll: the cheapest reaction to a burst gap.
		case idle <= p.cfg.SpinPolls+p.cfg.YieldPolls:
			stdruntime.Gosched()
		default:
			// About to park: run the telemetry timer sweep first. A
			// loaded worker sweeps on its batch boundaries; an idle one
			// would otherwise never expire its flows. The sweep is
			// mutex-guarded per shard, so sweeping another worker's
			// shard here is merely redundant, never racy.
			if t := p.cfg.Telemetry; t != nil {
				t.Sweep(p.cfg.Clock.Now().UnixNano())
			}
			// Park. Publish the flag first, then re-check the ring: a
			// producer that pushed after our empty poll must now see
			// parked==true and send the wakeup (seq-cst total order).
			w.parked.Store(true)
			if w.ring.Len() > 0 || p.stopping.Load() {
				w.parked.Store(false)
				idle = 0
				continue
			}
			select {
			case <-w.wake:
			case <-p.stopC:
			}
			w.parked.Store(false)
			idle = 0
		}
	}
}

// process runs the worker's drained batch through the switch and
// tallies the outcome on the worker's stats shards.
func (p *Pool) process(w *worker) {
	b := &w.batch
	if obs := p.cfg.Observer; obs != nil {
		obs(w.id, b)
	}
	// Size the batch before dispatch: frame ownership (and possibly the
	// bytes themselves) transfer to the switch; Meta stays ours.
	nframes := uint64(b.Len())
	nbytes := uint64(b.Bytes())
	p.sw.ReceiveMixedBatch(b)
	var hits, slow, dropped uint64
	for i := range b.Meta {
		switch b.Meta[i].Verdict {
		case dataplane.VerdictCacheHit:
			hits++
		case dataplane.VerdictSlowPath:
			slow++
		case dataplane.VerdictDropped:
			dropped++
		}
	}
	b.Reset()
	id := w.id
	p.frames.Shard(id).Add(nframes)
	p.bytes.Shard(id).Add(nbytes)
	p.batches.Shard(id).Inc()
	if hits > 0 {
		p.hits.Shard(id).Add(hits)
	}
	if slow > 0 {
		p.slow.Shard(id).Add(slow)
	}
	if dropped > 0 {
		p.dropped.Shard(id).Add(dropped)
	}
}

// WorkerStats snapshots one worker's shard.
func (p *Pool) WorkerStats(i int) PoolStats {
	return PoolStats{
		Frames:    p.frames.Shard(i).Load(),
		Bytes:     p.bytes.Shard(i).Load(),
		Batches:   p.batches.Shard(i).Load(),
		CacheHits: p.hits.Shard(i).Load(),
		SlowPath:  p.slow.Shard(i).Load(),
		Dropped:   p.dropped.Shard(i).Load(),
		RxDrops:   p.rxDrops.Shard(i).Load(),
	}
}

// Stats snapshots the aggregate over all workers.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Frames:    p.frames.Load(),
		Bytes:     p.bytes.Load(),
		Batches:   p.batches.Load(),
		CacheHits: p.hits.Load(),
		SlowPath:  p.slow.Load(),
		Dropped:   p.dropped.Load(),
		RxDrops:   p.rxDrops.Load(),
	}
}
