// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface this repo needs: typed AST
// passes over the module's packages, position-attached diagnostics,
// and //harmless: source directives with mandatory justifications.
//
// The repo's performance and determinism claims rest on invariants the
// compiler cannot see — injected clocks, zero-alloc hot paths,
// single-writer stats shards, borrowed dataplane frames, map-order-free
// digests. The analyzers built on this framework (clockinject,
// hotpathalloc, shardlock, frameown, detorder, atomicmix, errdrop —
// one package each next to this one) turn those conventions into
// mechanical gates; cmd/harmlesslint is the multichecker that runs
// them, and `make lint` / CI fail on any diagnostic not burned into
// the committed baseline (see Baseline).
//
// # Directives
//
// Source annotations all share the //harmless: namespace:
//
//	//harmless:hotpath
//	    marks a function whose body must not allocate (checked and,
//	    for the known hot paths, required by hotpathalloc).
//	//harmless:allow-wallclock <reason>
//	//harmless:allow-alloc <reason>
//	//harmless:allow-copy <reason>
//	//harmless:allow-retain <reason>
//	//harmless:allow-maporder <reason>
//	//harmless:allow-plain <reason>
//	//harmless:allow-droperr <reason>
//	    escape hatches suppressing one diagnostic of the owning
//	    analyzer on the same line or the line directly below the
//	    comment. The reason is mandatory: a bare escape hatch is
//	    itself a diagnostic, and so is a hatch that suppresses
//	    nothing (both rot otherwise).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Run inspects a fully typechecked
// package through the Pass and reports diagnostics; it returns an
// error only for internal failures (a broken analyzer), never for
// findings.
//
// An analyzer whose invariant spans package boundaries (atomicmix: a
// field atomically accessed in one package must not be read plainly in
// another) sets RunModule instead: it receives every loaded package at
// once as a ModulePass. Exactly one of Run and RunModule must be set.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass) error
	RunModule func(*ModulePass) error
}

// ModulePass carries every typechecked package of one load into a
// module-level analyzer run. Each element keeps its own directive
// index and Report sink; diagnostics from all of them are combined.
type ModulePass struct {
	Passes []*Pass
}

// Diagnostic is one finding, attached to a resolved source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// SortDiagnostics orders diagnostics by (file, line, column, message)
// so output is stable across runs.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// Pass carries one typechecked package into one analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives each diagnostic as the analyzer finds it.
	Report func(Diagnostic)

	directives map[lineKey][]*Directive
}

// lineKey addresses one source line.
type lineKey struct {
	file string
	line int
}

// Directive is one parsed //harmless:<name> <reason> comment.
type Directive struct {
	Name   string // e.g. "allow-wallclock", "hotpath"
	Reason string
	Pos    token.Pos
	used   bool
}

// DirectivePrefix is the comment namespace all directives live in.
const DirectivePrefix = "//harmless:"

// NewPass assembles a pass and indexes the package's directives.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	p := &Pass{
		Analyzer: a, Fset: fset, Files: files, Pkg: pkg,
		TypesInfo: info, Report: report,
		directives: make(map[lineKey][]*Directive),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d := ParseDirective(c)
				if d == nil {
					continue
				}
				pos := fset.Position(c.Slash)
				k := lineKey{file: pos.Filename, line: pos.Line}
				p.directives[k] = append(p.directives[k], d)
			}
		}
	}
	return p
}

// ParseDirective parses one comment into a directive, or nil. A
// trailing "// want ..." clause (the analysistest expectation syntax)
// is not part of the reason.
func ParseDirective(c *ast.Comment) *Directive {
	text, ok := strings.CutPrefix(c.Text, DirectivePrefix)
	if !ok {
		return nil
	}
	if i := strings.Index(text, "// want"); i >= 0 {
		text = text[:i]
	}
	name, reason, _ := strings.Cut(text, " ")
	return &Directive{Name: name, Reason: strings.TrimSpace(reason), Pos: c.Slash}
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suppressed reports whether a //harmless:<name> escape hatch covers
// pos — on the same line, or on the line directly above (a directive
// on its own line covers the next line). A matching hatch is marked
// used; a matching hatch without a reason still suppresses but is
// reported as its own diagnostic, so no suppression goes unexplained.
func (p *Pass) Suppressed(pos token.Pos, name string) bool {
	position := p.Fset.Position(pos)
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, d := range p.directives[lineKey{file: position.Filename, line: line}] {
			if d.Name != name {
				continue
			}
			if !d.used && d.Reason == "" {
				p.Reportf(d.Pos, "//harmless:%s needs a reason", name)
			}
			d.used = true
			return true
		}
	}
	return false
}

// FuncDirective returns the //harmless:<name> directive attached to a
// function declaration's doc comment, or nil.
func (p *Pass) FuncDirective(fn *ast.FuncDecl, name string) *Directive {
	if fn.Doc == nil {
		return nil
	}
	for _, c := range fn.Doc.List {
		if d := ParseDirective(c); d != nil && d.Name == name {
			d.used = true
			// Alias the indexed copy so unused-checking sees the use.
			pos := p.Fset.Position(c.Slash)
			for _, id := range p.directives[lineKey{file: pos.Filename, line: pos.Line}] {
				if id.Name == name {
					id.used = true
				}
			}
			return d
		}
	}
	return nil
}

// ReportUnused flags every //harmless:<name> directive in the package
// that suppressed nothing. Analyzers call it at the end of Run for the
// directive names they own — but only when the package was actually
// checked, so hatches in out-of-scope packages are not misreported.
func (p *Pass) ReportUnused(names ...string) {
	owned := make(map[string]bool, len(names))
	for _, n := range names {
		owned[n] = true
	}
	var unused []*Directive
	for _, ds := range p.directives {
		for _, d := range ds {
			if owned[d.Name] && !d.used {
				unused = append(unused, d)
			}
		}
	}
	sort.Slice(unused, func(i, j int) bool { return unused[i].Pos < unused[j].Pos })
	for _, d := range unused {
		p.Reportf(d.Pos, "unused //harmless:%s directive", d.Name)
	}
}
