// Package pkt implements wire-format encoding and decoding for the
// protocol layers the HARMLESS dataplane needs: Ethernet, 802.1Q VLAN
// tags, ARP, IPv4, IPv6, TCP, UDP, ICMPv4 and a small DNS codec.
//
// The package follows the layering conventions popularized by gopacket:
// a Packet is decoded into a stack of Layers, each layer knows its own
// wire format, and serialization prepends layers onto a buffer so a
// packet is built back-to-front. Two decode paths are provided:
//
//   - Decode: allocates a full layer stack, convenient for tests,
//     captures and management tooling.
//   - Parser (see parser.go): zero-allocation reusable decoder in the
//     style of gopacket's DecodingLayerParser, used on the datapath.
//
// The datapath additionally uses ExtractKey (see key.go) which pulls
// all OpenFlow-matchable fields out of a frame in a single pass without
// building layer objects at all, and the in-place mutators in mutate.go
// that implement OpenFlow set-field/push/pop actions with incremental
// checksum fixup. Key is a comparable value type with a cheap Hash, so
// it serves directly as the lookup key of the softswitch's exact-match
// microflow cache.
package pkt

import (
	"errors"
	"fmt"
)

// MAC is a 48-bit IEEE 802 MAC address. It is a value type and is
// comparable, so it can be used directly as a map key in forwarding
// tables.
type MAC [6]byte

// Well-known MAC addresses.
var (
	// BroadcastMAC is the all-ones broadcast address.
	BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	// ZeroMAC is the all-zero address (invalid as a source).
	ZeroMAC = MAC{}
)

// ParseMAC parses the canonical colon-separated hexadecimal form
// ("aa:bb:cc:dd:ee:ff"). Dashes are accepted as separators too.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	if len(s) != 17 {
		return m, fmt.Errorf("pkt: invalid MAC %q: wrong length", s)
	}
	for i := 0; i < 6; i++ {
		hi, ok1 := hexVal(s[i*3])
		lo, ok2 := hexVal(s[i*3+1])
		if !ok1 || !ok2 {
			return m, fmt.Errorf("pkt: invalid MAC %q: bad hex digit", s)
		}
		m[i] = hi<<4 | lo
		if i < 5 && s[i*3+2] != ':' && s[i*3+2] != '-' {
			return m, fmt.Errorf("pkt: invalid MAC %q: bad separator", s)
		}
	}
	return m, nil
}

// MustMAC is like ParseMAC but panics on error. Intended for tests and
// package-level variables with literal addresses.
func MustMAC(s string) MAC {
	m, err := ParseMAC(s)
	if err != nil {
		panic(err)
	}
	return m
}

func hexVal(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// String renders the address in canonical colon-separated lowercase hex.
func (m MAC) String() string {
	const hexDigits = "0123456789abcdef"
	buf := make([]byte, 17)
	for i, b := range m {
		buf[i*3] = hexDigits[b>>4]
		buf[i*3+1] = hexDigits[b&0xf]
		if i < 5 {
			buf[i*3+2] = ':'
		}
	}
	return string(buf)
}

// IsBroadcast reports whether m is the all-ones broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// IsMulticast reports whether the group bit (LSB of the first octet) is
// set. Broadcast is a special case of multicast.
func (m MAC) IsMulticast() bool { return m[0]&0x01 != 0 }

// IsZero reports whether m is the all-zero address.
func (m MAC) IsZero() bool { return m == ZeroMAC }

// IsUnicast reports whether m is a valid unicast address (group bit
// clear and not all-zero).
func (m MAC) IsUnicast() bool { return !m.IsMulticast() && !m.IsZero() }

// IPv4 is a 32-bit IPv4 address stored in network byte order. Like MAC
// it is comparable and map-key friendly.
type IPv4 [4]byte

// ParseIPv4 parses dotted-quad notation.
func ParseIPv4(s string) (IPv4, error) {
	var ip IPv4
	n, idx := 0, 0
	sawDigit := false
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			if !sawDigit || idx > 3 {
				return IPv4{}, errors.New("pkt: invalid IPv4 address " + s)
			}
			ip[idx] = byte(n)
			idx++
			n, sawDigit = 0, false
			continue
		}
		c := s[i]
		if c < '0' || c > '9' {
			return IPv4{}, errors.New("pkt: invalid IPv4 address " + s)
		}
		n = n*10 + int(c-'0')
		if n > 255 {
			return IPv4{}, errors.New("pkt: invalid IPv4 address " + s)
		}
		sawDigit = true
	}
	if idx != 4 {
		return IPv4{}, errors.New("pkt: invalid IPv4 address " + s)
	}
	return ip, nil
}

// MustIPv4 is like ParseIPv4 but panics on error.
func MustIPv4(s string) IPv4 {
	ip, err := ParseIPv4(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// String renders the address as a dotted quad.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// Uint32 returns the address as a host-order integer (useful for
// hashing and range checks).
func (ip IPv4) Uint32() uint32 {
	return uint32(ip[0])<<24 | uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3])
}

// IPv4FromUint32 converts a host-order integer into an address.
func IPv4FromUint32(v uint32) IPv4 {
	return IPv4{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// IsBroadcast reports whether ip is the limited broadcast address
// 255.255.255.255.
func (ip IPv4) IsBroadcast() bool { return ip == IPv4{255, 255, 255, 255} }

// IsMulticast reports whether ip is in 224.0.0.0/4.
func (ip IPv4) IsMulticast() bool { return ip[0]&0xf0 == 0xe0 }

// IsZero reports whether ip is 0.0.0.0.
func (ip IPv4) IsZero() bool { return ip == IPv4{} }

// Mask applies a prefix-length mask and returns the network address.
func (ip IPv4) Mask(prefixLen int) IPv4 {
	if prefixLen <= 0 {
		return IPv4{}
	}
	if prefixLen >= 32 {
		return ip
	}
	mask := ^uint32(0) << (32 - uint(prefixLen))
	return IPv4FromUint32(ip.Uint32() & mask)
}

// IPv6 is a 128-bit IPv6 address in network byte order.
type IPv6 [16]byte

// String renders a simple, non-compressed hex representation
// (full 8 groups). Compression is unnecessary for our diagnostics.
func (ip IPv6) String() string {
	return fmt.Sprintf("%x:%x:%x:%x:%x:%x:%x:%x",
		uint16(ip[0])<<8|uint16(ip[1]), uint16(ip[2])<<8|uint16(ip[3]),
		uint16(ip[4])<<8|uint16(ip[5]), uint16(ip[6])<<8|uint16(ip[7]),
		uint16(ip[8])<<8|uint16(ip[9]), uint16(ip[10])<<8|uint16(ip[11]),
		uint16(ip[12])<<8|uint16(ip[13]), uint16(ip[14])<<8|uint16(ip[15]))
}
