package softswitch

import (
	"sync"
	"sync/atomic"

	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/stats"
)

// Cache-tier composition: the datapath flow cache is an ordered chain
// of CacheTier implementations, probed most-specific first. The
// shipped chain is the exact-match microflow tier (cache.go) followed
// by the wildcard megaflow tier (megaflow.go); tests inject fakes via
// WithCacheTiers, and a future conntrack tier slots in the same way.
//
// The chain owns everything the tiers share: the per-packet admission
// decision (adaptive bypass), the entry pool that makes the install
// path allocation-free, the ref-counted entry lifecycle, and the
// chain-level miss/insert accounting. Tiers own their own storage and
// their own hit/invalidation/eviction counters.

const (
	// cacheShards is the number of independently locked shards each
	// tier divides its storage into — also the granularity of the
	// adaptive-bypass hit-rate tracking. A power of two (shard
	// selection is a mask) and at most 32 (the batch probe carries a
	// per-shard bypass bitmask in a uint32).
	cacheShards = 32

	// DefaultMicroflowCacheSize is the default per-tier capacity of
	// the flow cache, in cache entries.
	DefaultMicroflowCacheSize = 1 << 15
)

// CacheTier is one layer of the datapath flow cache. Implementations
// must be safe for concurrent use; the built-in tiers shard their
// storage by pkt.Key hash.
//
// Entry lifecycle: the chain ref-counts entries around Install, so a
// tier never adjusts CacheEntry refs on the way in. On the way out —
// eviction, replacement, invalidation, sweep, flush — the tier hands
// every entry it unpublishes to its release hook (the pool's
// release), which retires the entry for reuse once no tier maps it.
// A tier without a release hook may simply drop entries; they fall to
// the garbage collector, which is always safe, just unpooled.
type CacheTier interface {
	// Name labels the tier in stats output ("microflow", "megaflow").
	Name() string

	// Exact reports whether a Lookup hit implies the packet's full
	// header key equals the installed key. The dispatch uses this to
	// decide whether the entry's cached telemetry record can be
	// trusted for the packet (exact tiers) or must be resolved per
	// packet (wildcard tiers, where one entry serves many flows).
	Exact() bool

	// Lookup returns a still-valid entry for the key, or nil. hash is
	// pkt.Key.Hash(), precomputed by the chain so stacked tiers do not
	// rehash. Tiers account their own hits/misses/invalidations here.
	Lookup(k *pkt.Key, hash uint64) *CacheEntry

	// ProbeBatch fills out[i] for every frame with skip[i] false,
	// out[i] nil, and a shard not marked bypassed in sc — taking each
	// storage shard's lock once per batch where the layout allows.
	// Only hits are accounted and only valid entries returned; misses
	// and stale entries are left nil for the per-frame slow path,
	// which performs the exact accounting (and can legitimately hit
	// an entry an earlier frame of the same batch installed).
	ProbeBatch(keys []pkt.Key, skip []bool, out []*CacheEntry, sc *ProbeScratch)

	// Install publishes a recorded entry for the key, or returns
	// false to decline it (capacity policy, mask-class limits). The
	// chain has already pinned a reference for this tier.
	Install(k *pkt.Key, e *CacheEntry) bool

	// Invalidate unpublishes everything and returns the number of
	// entries dropped.
	Invalidate() int

	// Sweep unpublishes entries that are no longer valid (stale
	// revisions) and returns the number removed.
	Sweep() int

	// Counters exposes the tier's statistics.
	Counters() *stats.CacheCounters

	// Len returns the number of published entries (diagnostics).
	Len() int
}

// ProbeScratch is the chain-prepared shared state of one batch probe:
// per-frame key hashes, the per-shard intrusive frame chains the
// exact tier consumes (shard = low hash bits & cacheShards-1), and
// the bypass shard set. It lives in the pooled dispatch state, so
// batch probes allocate nothing.
type ProbeScratch struct {
	// Hash[i] is keys[i].Hash(), valid where skip[i] is false.
	Hash []uint64
	// Heads/Next chain frame indices per shard: Heads[s] is the first
	// frame of shard s (-1 = none), Next[i] the following one. Shards
	// in bypass have their chains emptied before tiers run.
	Heads [cacheShards]int32
	Next  []int32
	// Bypassed has bit s set when shard s is bypassed this batch.
	Bypassed uint32

	claimed []bool              // out[i] attribution marker (chain internal)
	wins    [cacheShards]uint32 // per-shard hits<<16|lookups accumulator
}

// grow sizes the per-frame slices for a batch of n.
func (sc *ProbeScratch) grow(n int) {
	if cap(sc.Hash) < n {
		sc.Hash = make([]uint64, n)
		sc.Next = make([]int32, n)
		sc.claimed = make([]bool, n)
	}
	sc.Hash = sc.Hash[:n]
	sc.Next = sc.Next[:n]
	sc.claimed = sc.claimed[:n]
}

// ShardBypassed reports whether the frame with the given key hash
// falls into a shard the chain bypassed for this batch.
func (sc *ProbeScratch) ShardBypassed(hash uint64) bool {
	return sc.Bypassed&(1<<(uint32(hash)&(cacheShards-1))) != 0
}

// entryPool recycles CacheEntry recorder state so the install path is
// allocation-free in steady state. Reclamation is epoch-style: every
// dispatch pins the pool for its duration, an entry unmapped from all
// tiers goes to a limbo list, and limbo drains to the free list only
// at a moment provably after every dispatch that could still hold a
// reference:
//
//	holder's pin -> shard RLock -> remover's shard Lock -> limbo push
//	-> reclaimer's limbo Lock -> pins load
//
// The reclaimer drains limbo FIRST and checks pins SECOND: any
// dispatch that might hold a drained entry pinned before that entry
// was pushed to limbo (it found it in a shard map), so at drain time
// it either still shows in pins (the batch is put back) or it has
// unpinned and can no longer touch the entry. Pins that show up after
// the check belong to dispatches that started after the entries were
// already unreachable.
type entryPool struct {
	pins atomic.Int64 // in-flight dispatches

	freeMu sync.Mutex
	free   []*CacheEntry

	limboMu sync.Mutex
	limbo   []*CacheEntry
	spare   []*CacheEntry // recycled limbo buffer (nil when in use)
	limboN  atomic.Int32  // len(limbo), readable without the lock

	max int // free-list cap; overflow falls to the GC
}

const limboMax = 1 << 14 // backlog cap under sustained concurrency

func newEntryPool(totalCap int) *entryPool {
	return &entryPool{max: 2*totalCap + 1024}
}

// pin marks a dispatch in flight. Must precede the first tier probe.
func (p *entryPool) pin() { p.pins.Add(1) }

// unpin ends a dispatch; the last one out drains limbo.
func (p *entryPool) unpin() {
	if p.pins.Add(-1) == 0 && p.limboN.Load() > 0 {
		p.reclaim()
	}
}

// acquire returns a reset entry, reusing a reclaimed one when
// available.
func (p *entryPool) acquire() *CacheEntry {
	p.freeMu.Lock()
	if n := len(p.free); n > 0 {
		e := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.freeMu.Unlock()
		return e
	}
	p.freeMu.Unlock()
	return &CacheEntry{}
}

// giveBack returns an entry that was never published (uncacheable
// walk, every tier declined): no other goroutine can hold it, so it
// goes straight back to the free list.
func (p *entryPool) giveBack(e *CacheEntry) {
	e.reset()
	p.freeMu.Lock()
	if len(p.free) < p.max {
		p.free = append(p.free, e)
	}
	p.freeMu.Unlock()
}

// release drops one tier's reference; the entry is retired to limbo
// when no tier maps it anymore.
func (p *entryPool) release(e *CacheEntry) {
	if e.refs.Add(-1) == 0 {
		p.retire(e)
	}
}

// retire parks an unmapped entry in limbo until reclaim proves no
// dispatch can still hold it.
func (p *entryPool) retire(e *CacheEntry) {
	p.limboMu.Lock()
	if len(p.limbo) >= limboMax {
		// Dispatches never quiesced long enough to drain: hand the
		// backlog to the GC (always safe; holders keep their own
		// references) instead of growing without bound.
		clear(p.limbo)
		p.limbo = p.limbo[:0]
		p.limboN.Store(0)
	}
	p.limbo = append(p.limbo, e)
	p.limboN.Add(1)
	p.limboMu.Unlock()
}

// reclaim moves limbo to the free list if no dispatch is in flight.
// Drain-then-check: see the type comment for why this order is what
// makes reuse safe.
func (p *entryPool) reclaim() {
	p.limboMu.Lock()
	batch := p.limbo
	if p.spare != nil {
		p.limbo = p.spare[:0]
		p.spare = nil
	} else {
		p.limbo = nil
	}
	p.limboN.Store(0)
	p.limboMu.Unlock()

	if len(batch) != 0 && p.pins.Load() != 0 {
		// A dispatch pinned between our unpin and the drain. It cannot
		// reach these entries (they were unmapped before it started),
		// but the proof above only covers pins==0 — put them back.
		p.limboMu.Lock()
		p.limbo = append(p.limbo, batch...)
		p.limboN.Add(int32(len(batch)))
		p.limboMu.Unlock()
		return
	}

	for _, e := range batch {
		e.reset()
	}
	p.freeMu.Lock()
	keep := p.max - len(p.free)
	if keep < 0 {
		keep = 0
	}
	if keep > len(batch) {
		keep = len(batch)
	}
	p.free = append(p.free, batch[:keep]...)
	p.freeMu.Unlock()

	clear(batch)
	p.limboMu.Lock()
	if p.spare == nil {
		p.spare = batch[:0]
	}
	p.limboMu.Unlock()
}

// Adaptive bypass: per-shard hit-rate tracking over sliding windows
// of lookups. A shard whose hit rate collapses (thrash: every flow is
// new, installs buy nothing) stops consulting and feeding the cache
// entirely — packets take the plain uncached walk, which the
// BenchmarkManyFlows baseline shows is ~2x cheaper than paying the
// install path for zero hits. Bypassed shards periodically re-admit a
// probation window of packets; if those hit well (the workload became
// cacheable again), the shard returns to active.
//
//	ACTIVE --(bypassLowStreak consecutive windows below
//	          1/bypassEnterDen hit rate)--> BYPASS
//	BYPASS --(every bypassRetry skipped packets)--> PROBE
//	PROBE  --(probe window >= 1/bypassExitDen)--> ACTIVE
//	PROBE  --(below)--> BYPASS
//
// Hits from ANY tier feed the windows, so a workload served by the
// megaflow tier alone never trips bypass. All transitions are
// heuristic: counters are racy-by-design (plain atomics, no CAS
// loops), a lost sample only defers a window roll.
const (
	bypassWindow    = 256  // lookups per ACTIVE evaluation window
	bypassProbeSpan = 64   // lookups per PROBE window
	bypassLowStreak = 2    // low windows in a row before bypassing
	bypassRetry     = 8192 // skipped packets between probation windows
	bypassEnterDen  = 16   // enter when hits < lookups/16 (6.25%)
	bypassExitDen   = 8    // exit when hits >= lookups/8 (12.5%)
)

// bypassShard mode values.
const (
	modeActive uint32 = iota
	modeBypass
	modeProbe
)

// bypassShard is the admission state of one cache shard.
type bypassShard struct {
	win     atomic.Uint64 // hits<<32 | lookups of the current window
	mode    atomic.Uint32
	low     atomic.Uint32 // consecutive low ACTIVE windows
	skipped atomic.Uint32 // packets skipped since the last probe
}

// admit reports whether the cache should be consulted (and fed) for a
// packet of this shard.
func (b *bypassShard) admit() bool {
	if b.mode.Load() != modeBypass {
		return true
	}
	if b.skipped.Add(1) >= bypassRetry {
		b.skipped.Store(0)
		b.win.Store(0)
		b.mode.Store(modeProbe)
		return true
	}
	return false
}

// note feeds lookups/hits into the current window and rolls it when
// full.
func (b *bypassShard) note(lookups, hits uint32) {
	w := b.win.Add(uint64(hits)<<32 | uint64(lookups))
	span := uint32(bypassWindow)
	if b.mode.Load() == modeProbe {
		span = bypassProbeSpan
	}
	if uint32(w) >= span {
		b.roll(uint32(w>>32), uint32(w))
	}
}

// roll evaluates one full window and advances the state machine.
func (b *bypassShard) roll(hits, lookups uint32) {
	b.win.Store(0)
	switch b.mode.Load() {
	case modeActive:
		if hits*bypassEnterDen < lookups {
			if b.low.Add(1) >= bypassLowStreak {
				b.low.Store(0)
				b.skipped.Store(0)
				b.mode.Store(modeBypass)
			}
		} else {
			b.low.Store(0)
		}
	case modeProbe:
		if hits*bypassExitDen >= lookups {
			b.low.Store(0)
			b.mode.Store(modeActive)
		} else {
			b.skipped.Store(0)
			b.mode.Store(modeBypass)
		}
	}
}

// cacheChain composes the cache tiers and owns the shared machinery:
// bypass admission, the entry pool, chain-level counters.
type cacheChain struct {
	tiers []CacheTier
	exact []bool // tiers[i].Exact(), hoisted off the hot path
	pool  *entryPool

	bypassOn bool
	bypass   [cacheShards]bypassShard

	// Chain-level counters: misses (no tier hit), inserts (one per
	// installed program, regardless of how many tiers accepted it),
	// bypassed (packets not admitted). Hits, invalidations and
	// evictions live in the tiers; statsSnapshot folds both views.
	misses   stats.Counter
	inserts  stats.Counter
	bypassed stats.Counter
}

// newCacheChain assembles the default chain: exact microflow tier,
// then (optionally) the wildcard megaflow tier.
func newCacheChain(totalCap int, megaflow, adaptiveBypass bool, injected []CacheTier) *cacheChain {
	ch := &cacheChain{
		pool:     newEntryPool(totalCap),
		bypassOn: adaptiveBypass,
	}
	if injected != nil {
		ch.tiers = injected
	} else {
		ch.tiers = []CacheTier{newMicroflowTier(totalCap, ch.pool)}
		if megaflow {
			ch.tiers = append(ch.tiers, newMegaflowTier(totalCap, ch.pool))
		}
	}
	ch.exact = make([]bool, len(ch.tiers))
	for i, t := range ch.tiers {
		ch.exact[i] = t.Exact()
	}
	return ch
}

// lookup probes the tiers in order for one frame. exact reports
// whether the hit came from an exact-match tier (telemetry record
// attribution); record is false when the shard is bypassed — the
// caller must walk uncached and must not install.
//
//harmless:hotpath
func (ch *cacheChain) lookup(k *pkt.Key) (e *CacheEntry, exact, record bool) {
	h := k.Hash()
	b := &ch.bypass[uint32(h)&(cacheShards-1)]
	if ch.bypassOn && !b.admit() {
		ch.bypassed.Inc()
		return nil, false, false
	}
	for i, t := range ch.tiers {
		if e := t.Lookup(k, h); e != nil {
			if ch.bypassOn {
				b.note(1, 1)
			}
			return e, ch.exact[i], true
		}
	}
	if ch.bypassOn {
		b.note(1, 0)
	}
	ch.misses.Inc()
	return nil, false, true
}

// probeBatch prepares the shared scratch (hashes, shard chains,
// bypass set) and runs every tier's batch probe over the residue of
// the previous ones. exact[i] is set for frames filled by an
// exact-match tier. Frames of bypassed shards are left nil without
// accounting: they reach classifyAndRun, whose per-frame admit does
// the bypass/probation bookkeeping exactly once.
//
//harmless:hotpath
func (ch *cacheChain) probeBatch(keys []pkt.Key, skip []bool, out []*CacheEntry, exact []bool, sc *ProbeScratch) {
	n := len(keys)
	sc.grow(n)
	for i := range sc.Heads {
		sc.Heads[i] = -1
	}
	sc.Bypassed = 0
	for i := n - 1; i >= 0; i-- {
		out[i] = nil
		exact[i] = false
		sc.claimed[i] = false
		if skip[i] {
			continue
		}
		h := keys[i].Hash()
		sc.Hash[i] = h
		sh := uint32(h) & (cacheShards - 1)
		sc.Next[i] = sc.Heads[sh]
		sc.Heads[sh] = int32(i)
	}
	if ch.bypassOn {
		for si := range sc.Heads {
			if sc.Heads[si] >= 0 && ch.bypass[si].mode.Load() == modeBypass {
				sc.Bypassed |= 1 << si
				sc.Heads[si] = -1
			}
		}
	}
	for ti, t := range ch.tiers {
		t.ProbeBatch(keys, skip, out, sc)
		ex := ch.exact[ti]
		for i := 0; i < n; i++ {
			if out[i] != nil && !sc.claimed[i] {
				sc.claimed[i] = true
				exact[i] = ex
			}
		}
	}
	if !ch.bypassOn {
		return
	}
	// Feed the per-shard windows, one atomic add per touched shard.
	// Frames the batch probe missed are probed again per frame on the
	// slow path and counted there too; that skews bypassed-rate
	// tracking toward the miss side, which only makes bypass engage
	// marginally sooner under thrash — acceptable for a heuristic.
	for i := 0; i < n; i++ {
		if skip[i] {
			continue
		}
		sh := uint32(sc.Hash[i]) & (cacheShards - 1)
		if sc.Bypassed&(1<<sh) != 0 {
			continue
		}
		c := uint32(1)
		if out[i] != nil {
			c |= 1 << 16
		}
		sc.wins[sh] += c
	}
	for sh := range sc.wins {
		if w := sc.wins[sh]; w != 0 {
			sc.wins[sh] = 0
			ch.bypass[sh].note(w&0xffff, w>>16)
		}
	}
}

// install publishes a recorded entry to every tier that will take it.
// References are pinned before each tier sees the entry, so a
// concurrently racing invalidation can never retire it while a later
// tier still expects it live.
func (ch *cacheChain) install(k *pkt.Key, e *CacheEntry) bool {
	installed := false
	for _, t := range ch.tiers {
		e.refs.Add(1)
		if t.Install(k, e) {
			installed = true
		} else {
			e.refs.Add(-1)
		}
	}
	if installed {
		ch.inserts.Inc()
	}
	return installed
}

// sweep removes stale entries from every tier.
func (ch *cacheChain) sweep() int {
	n := 0
	for _, t := range ch.tiers {
		n += t.Sweep()
	}
	return n
}

// flush unpublishes everything from every tier.
func (ch *cacheChain) flush() int {
	n := 0
	for _, t := range ch.tiers {
		n += t.Invalidate()
	}
	return n
}

// len sums the tiers' published entries.
func (ch *cacheChain) len() int {
	n := 0
	for _, t := range ch.tiers {
		n += t.Len()
	}
	return n
}

// statsSnapshot folds the chain-level and per-tier counters into one
// point-in-time CacheCounters view: hits/invalidations/evictions are
// summed over the tiers, misses/inserts/bypassed are the chain's own
// (a packet missing every tier counts one miss; a program accepted by
// both tiers counts one insert).
func (ch *cacheChain) statsSnapshot() *stats.CacheCounters {
	out := &stats.CacheCounters{}
	for _, t := range ch.tiers {
		c := t.Counters()
		out.Hits.Add(c.Hits.Load())
		out.Invalidations.Add(c.Invalidations.Load())
		out.Evictions.Add(c.Evictions.Load())
	}
	out.Misses.Add(ch.misses.Load())
	out.Inserts.Add(ch.inserts.Load())
	out.Bypassed.Add(ch.bypassed.Load())
	return out
}
