package snmp

import (
	"fmt"
	"net"
	"sort"
	"sync"
)

// GetFunc produces the current value of a scalar.
type GetFunc func() Value

// SetFunc applies a write to a scalar; return an SNMP error status
// (ErrWrongType, ErrBadValue, ...) wrapped in *SetError to signal
// specific failures, or any other error for ErrGenErr.
type SetFunc func(Value) error

// SetError carries a specific SNMP error-status from a SetFunc.
type SetError struct {
	Status int
	Reason string
}

// Error implements error.
func (e *SetError) Error() string {
	return fmt.Sprintf("snmp: set failed (status %d): %s", e.Status, e.Reason)
}

// mibNode is one registered scalar instance.
type mibNode struct {
	oid OID
	get GetFunc
	set SetFunc
}

// MIB is the ordered collection of objects an Agent serves. Scalars
// (including table cells, which are just scalars with instance-suffixed
// OIDs) are registered at setup time; their values are produced by
// callbacks so reads always observe live device state.
type MIB struct {
	mu    sync.RWMutex
	nodes []*mibNode // sorted by OID
}

// NewMIB returns an empty MIB.
func NewMIB() *MIB { return &MIB{} }

// Register adds a scalar with the given instance OID. A nil set makes
// the object read-only. Registering an existing OID replaces it.
func (m *MIB) Register(oid OID, get GetFunc, set SetFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := &mibNode{oid: oid.Clone(), get: get, set: set}
	i := sort.Search(len(m.nodes), func(i int) bool { return m.nodes[i].oid.Cmp(oid) >= 0 })
	if i < len(m.nodes) && m.nodes[i].oid.Cmp(oid) == 0 {
		m.nodes[i] = n
		return
	}
	m.nodes = append(m.nodes, nil)
	copy(m.nodes[i+1:], m.nodes[i:])
	m.nodes[i] = n
}

// RegisterReadOnly is Register with no setter.
func (m *MIB) RegisterReadOnly(oid OID, get GetFunc) { m.Register(oid, get, nil) }

// lookup finds the node with exactly the given OID.
func (m *MIB) lookup(oid OID) *mibNode {
	m.mu.RLock()
	defer m.mu.RUnlock()
	i := sort.Search(len(m.nodes), func(i int) bool { return m.nodes[i].oid.Cmp(oid) >= 0 })
	if i < len(m.nodes) && m.nodes[i].oid.Cmp(oid) == 0 {
		return m.nodes[i]
	}
	return nil
}

// next finds the first node with OID strictly greater than oid.
func (m *MIB) next(oid OID) *mibNode {
	m.mu.RLock()
	defer m.mu.RUnlock()
	i := sort.Search(len(m.nodes), func(i int) bool { return m.nodes[i].oid.Cmp(oid) > 0 })
	if i < len(m.nodes) {
		return m.nodes[i]
	}
	return nil
}

// Len returns the number of registered objects.
func (m *MIB) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.nodes)
}

// Agent serves a MIB over a packet connection using SNMPv2c.
type Agent struct {
	mib       *MIB
	community string
}

// NewAgent creates an agent for the MIB guarded by the given community
// string.
func NewAgent(mib *MIB, community string) *Agent {
	return &Agent{mib: mib, community: community}
}

// MIB returns the agent's MIB (for further registration).
func (a *Agent) MIB() *MIB { return a.mib }

// ServePacket handles one request datagram and returns the response
// datagram (nil for silently discarded requests, e.g. bad community —
// per SNMP practice, authentication failures are not answered).
func (a *Agent) ServePacket(req []byte) []byte {
	msg, err := Unmarshal(req)
	if err != nil {
		return nil
	}
	if msg.Community != a.community {
		return nil
	}
	resp := a.handle(msg)
	out, err := resp.Marshal()
	if err != nil {
		return nil
	}
	return out
}

// handle computes the response message for a request.
func (a *Agent) handle(msg *Message) *Message {
	resp := &Message{
		Community: msg.Community,
		Type:      PDUResponse,
		RequestID: msg.RequestID,
		VarBinds:  make([]VarBind, 0, len(msg.VarBinds)),
	}
	switch msg.Type {
	case PDUGetRequest:
		for _, vb := range msg.VarBinds {
			if n := a.mib.lookup(vb.OID); n != nil {
				resp.VarBinds = append(resp.VarBinds, VarBind{OID: vb.OID, Value: n.get()})
			} else {
				resp.VarBinds = append(resp.VarBinds, VarBind{OID: vb.OID, Value: NoSuchObject{}})
			}
		}
	case PDUGetNext:
		for _, vb := range msg.VarBinds {
			if n := a.mib.next(vb.OID); n != nil {
				resp.VarBinds = append(resp.VarBinds, VarBind{OID: n.oid, Value: n.get()})
			} else {
				resp.VarBinds = append(resp.VarBinds, VarBind{OID: vb.OID, Value: EndOfMibView{}})
			}
		}
	case PDUSetRequest:
		// Validate all bindings first (SNMP sets are as-if-atomic).
		for i, vb := range msg.VarBinds {
			n := a.mib.lookup(vb.OID)
			if n == nil {
				return errResponse(msg, ErrNoSuchName, i+1)
			}
			if n.set == nil {
				return errResponse(msg, ErrNotWritable, i+1)
			}
		}
		for i, vb := range msg.VarBinds {
			n := a.mib.lookup(vb.OID)
			if err := n.set(vb.Value); err != nil {
				if se, ok := err.(*SetError); ok {
					return errResponse(msg, se.Status, i+1)
				}
				return errResponse(msg, ErrGenErr, i+1)
			}
			resp.VarBinds = append(resp.VarBinds, VarBind{OID: vb.OID, Value: n.get()})
		}
	default:
		return errResponse(msg, ErrGenErr, 0)
	}
	return resp
}

func errResponse(req *Message, status, index int) *Message {
	return &Message{
		Community: req.Community,
		Type:      PDUResponse,
		RequestID: req.RequestID,
		ErrStatus: status,
		ErrIndex:  index,
		VarBinds:  req.VarBinds,
	}
}

// Serve answers requests arriving on pc until the connection is closed
// or a fatal error occurs. It is typically run in its own goroutine:
//
//	pc, _ := net.ListenPacket("udp", "127.0.0.1:0")
//	go agent.Serve(pc)
func (a *Agent) Serve(pc net.PacketConn) error {
	buf := make([]byte, 65535)
	for {
		n, addr, err := pc.ReadFrom(buf)
		if err != nil {
			return err
		}
		if resp := a.ServePacket(buf[:n]); resp != nil {
			if _, err := pc.WriteTo(resp, addr); err != nil {
				return err
			}
		}
	}
}
