package netem

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSyncLinkDelivers(t *testing.T) {
	l := NewLink(LinkConfig{Name: "t"})
	defer l.Close()
	var got []byte
	l.B().SetReceiver(func(f []byte) { got = f })
	if err := l.A().Send([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 {
		t.Fatalf("got %v", got)
	}
	// Reverse direction.
	var got2 []byte
	l.A().SetReceiver(func(f []byte) { got2 = f })
	if err := l.B().Send([]byte{9}); err != nil {
		t.Fatal(err)
	}
	if len(got2) != 1 || got2[0] != 9 {
		t.Fatalf("got2 %v", got2)
	}
}

func TestSyncLinkCounters(t *testing.T) {
	l := NewLink(LinkConfig{})
	defer l.Close()
	l.B().SetReceiver(func([]byte) {})
	for i := 0; i < 5; i++ {
		if err := l.A().Send(make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if tx := l.A().Counters().TxPackets.Load(); tx != 5 {
		t.Errorf("TxPackets = %d", tx)
	}
	if rx := l.B().Counters().RxBytes.Load(); rx != 500 {
		t.Errorf("RxBytes = %d", rx)
	}
}

func TestNoReceiverCountsDrop(t *testing.T) {
	l := NewLink(LinkConfig{})
	defer l.Close()
	if err := l.A().Send([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if d := l.B().Counters().RxDropped.Load(); d != 1 {
		t.Errorf("RxDropped = %d", d)
	}
}

func TestClosedLink(t *testing.T) {
	l := NewLink(LinkConfig{})
	l.Close()
	if err := l.A().Send([]byte{1}); err != ErrLinkClosed {
		t.Errorf("err = %v", err)
	}
	l.Close() // idempotent
}

func TestLossDeterministic(t *testing.T) {
	countRx := func(seed int64) uint64 {
		l := NewLink(LinkConfig{LossProb: 0.5, Seed: seed})
		defer l.Close()
		var rx atomic.Uint64
		l.B().SetReceiver(func([]byte) { rx.Add(1) })
		for i := 0; i < 1000; i++ {
			_ = l.A().Send([]byte{byte(i)})
		}
		return rx.Load()
	}
	a, b := countRx(42), countRx(42)
	if a != b {
		t.Errorf("same seed must drop identically: %d vs %d", a, b)
	}
	if a < 300 || a > 700 {
		t.Errorf("50%% loss delivered %d/1000", a)
	}
}

func TestAsyncLinkDelivers(t *testing.T) {
	l := NewLink(LinkConfig{Async: true})
	defer l.Close()
	var mu sync.Mutex
	var got [][]byte
	done := make(chan struct{}, 10)
	l.B().SetReceiver(func(f []byte) {
		mu.Lock()
		got = append(got, f)
		mu.Unlock()
		done <- struct{}{}
	})
	for i := 0; i < 10; i++ {
		if err := l.A().Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatal("timeout waiting for async delivery")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 10 {
		t.Fatalf("got %d frames", len(got))
	}
	for i, f := range got {
		if f[0] != byte(i) {
			t.Fatalf("FIFO order violated at %d: %v", i, f[0])
		}
	}
}

func TestAsyncLinkLatency(t *testing.T) {
	const lat = 20 * time.Millisecond
	l := NewLink(LinkConfig{Async: true, Latency: lat})
	defer l.Close()
	arrived := make(chan time.Time, 1)
	l.B().SetReceiver(func([]byte) { arrived <- time.Now() })
	start := time.Now()
	if err := l.A().Send([]byte{1}); err != nil {
		t.Fatal(err)
	}
	select {
	case at := <-arrived:
		if d := at.Sub(start); d < lat {
			t.Errorf("arrived after %v, want >= %v", d, lat)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
}

func TestAsyncLinkBandwidth(t *testing.T) {
	// 1 Mbit/s; 10 frames of 1250 bytes = 10 * 10ms serialization.
	l := NewLink(LinkConfig{Async: true, BandwidthBps: 1e6})
	defer l.Close()
	var rx atomic.Int64
	done := make(chan struct{})
	l.B().SetReceiver(func([]byte) {
		if rx.Add(1) == 10 {
			close(done)
		}
	})
	start := time.Now()
	for i := 0; i < 10; i++ {
		if err := l.A().Send(make([]byte, 1250)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
	if el := time.Since(start); el < 80*time.Millisecond {
		t.Errorf("10x10ms serialization finished in %v, want >= ~100ms", el)
	}
}

func TestAsyncQueueOverflowDrops(t *testing.T) {
	// Tiny queue and huge serialization delay: floods must tail-drop.
	l := NewLink(LinkConfig{Async: true, QueueLen: 4, BandwidthBps: 1000})
	defer l.Close()
	l.B().SetReceiver(func([]byte) {})
	for i := 0; i < 100; i++ {
		_ = l.A().Send(make([]byte, 1000))
	}
	if d := l.A().Counters().TxDropped.Load(); d == 0 {
		t.Error("expected tail drops on overflow")
	}
}

func TestHairpinReentrancy(t *testing.T) {
	// A receiver that sends back out the same port it received on (the
	// hairpin pattern) must not deadlock in sync mode.
	l := NewLink(LinkConfig{})
	defer l.Close()
	hops := 0
	l.B().SetReceiver(func(f []byte) {
		hops++
		if hops < 5 {
			_ = l.B().Send(f) // bounce back
		}
	})
	l.A().SetReceiver(func(f []byte) {
		hops++
		if hops < 5 {
			_ = l.A().Send(f)
		}
	})
	if err := l.A().Send([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if hops != 5 {
		t.Errorf("hops = %d", hops)
	}
}

func TestManualClock(t *testing.T) {
	c := NewManualClock()
	t0 := c.Now()
	c.Advance(5 * time.Second)
	if d := c.Now().Sub(t0); d != 5*time.Second {
		t.Errorf("advanced %v", d)
	}
}

func TestRealClock(t *testing.T) {
	var c Clock = RealClock{}
	if c.Now().IsZero() {
		t.Error("real clock returned zero time")
	}
}

func BenchmarkSyncLinkSend(b *testing.B) {
	l := NewLink(LinkConfig{})
	defer l.Close()
	l.B().SetReceiver(func([]byte) {})
	frame := make([]byte, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.A().Send(frame); err != nil {
			b.Fatal(err)
		}
	}
}
