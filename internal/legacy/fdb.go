// Package legacy emulates the "plain old legacy Ethernet switch" that
// HARMLESS migrates to SDN: an 802.1Q transparent bridge with per-port
// access/trunk VLAN configuration, MAC learning with aging, per-port
// counters, and two remote management planes — a vendor-style CLI (two
// dialects, see cli.go) and an SNMP agent binding (see mib.go).
//
// The dataplane implements exactly the standard behaviours the
// HARMLESS trick depends on (§2 of the paper): untagged frames entering
// an access port are classified into the port's VLAN; frames leaving on
// the trunk carry the 802.1Q tag; frames returning on the trunk tagged
// with an access port's VLAN are forwarded to that port with the tag
// stripped.
package legacy

import (
	"sort"
	"sync"
	"time"

	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

// DefaultFDBAging is the MAC table aging time used when none is
// configured; 300s matches common vendor defaults.
const DefaultFDBAging = 300 * time.Second

// fdbKey identifies a learned entry: learning is per (VLAN, MAC) as in
// an IVL (independent VLAN learning) bridge.
type fdbKey struct {
	vlan uint16
	mac  pkt.MAC
}

// FDBEntry is one visible forwarding-database entry.
type FDBEntry struct {
	VLAN     uint16
	MAC      pkt.MAC
	Port     int
	Static   bool
	LastSeen time.Time
}

// FDB is the filtering/forwarding database of the bridge. It is safe
// for concurrent use. Aging is lazy: expired entries are ignored by
// Lookup and physically removed by Sweep (or by re-learning).
type FDB struct {
	mu      sync.Mutex
	entries map[fdbKey]*FDBEntry
	aging   time.Duration
	clock   netem.Clock
	max     int
}

// NewFDB creates a table with the given aging time and capacity; zero
// values select DefaultFDBAging and an effectively unlimited capacity.
func NewFDB(aging time.Duration, max int, clock netem.Clock) *FDB {
	if aging <= 0 {
		aging = DefaultFDBAging
	}
	if clock == nil {
		clock = netem.RealClock{}
	}
	return &FDB{
		entries: make(map[fdbKey]*FDBEntry),
		aging:   aging,
		clock:   clock,
		max:     max,
	}
}

// Learn records that mac was seen on port within vlan. Static entries
// are never displaced by learning. Learning a full table is a no-op
// (as in hardware, where the entry simply isn't installed).
func (f *FDB) Learn(vlan uint16, mac pkt.MAC, port int) {
	if !mac.IsUnicast() {
		return // never learn multicast/broadcast sources
	}
	now := f.clock.Now()
	k := fdbKey{vlan, mac}
	f.mu.Lock()
	defer f.mu.Unlock()
	if e, ok := f.entries[k]; ok {
		if e.Static {
			return
		}
		e.Port = port
		e.LastSeen = now
		return
	}
	if f.max > 0 && len(f.entries) >= f.max {
		// Opportunistically evict one expired entry to make room.
		if !f.evictExpiredLocked(now) {
			return
		}
	}
	f.entries[k] = &FDBEntry{VLAN: vlan, MAC: mac, Port: port, LastSeen: now}
}

// AddStatic installs a permanent entry (management plane operation).
func (f *FDB) AddStatic(vlan uint16, mac pkt.MAC, port int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.entries[fdbKey{vlan, mac}] = &FDBEntry{
		VLAN: vlan, MAC: mac, Port: port, Static: true, LastSeen: f.clock.Now(),
	}
}

// Lookup returns the egress port for (vlan, mac), or ok=false if the
// address is unknown (or the entry has aged out).
func (f *FDB) Lookup(vlan uint16, mac pkt.MAC) (port int, ok bool) {
	now := f.clock.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.entries[fdbKey{vlan, mac}]
	if !ok {
		return 0, false
	}
	if !e.Static && now.Sub(e.LastSeen) > f.aging {
		delete(f.entries, fdbKey{vlan, mac})
		return 0, false
	}
	return e.Port, true
}

// evictExpiredLocked removes one expired entry if any exists.
func (f *FDB) evictExpiredLocked(now time.Time) bool {
	for k, e := range f.entries {
		if !e.Static && now.Sub(e.LastSeen) > f.aging {
			delete(f.entries, k)
			return true
		}
	}
	return false
}

// Sweep removes all expired entries and returns how many were removed.
func (f *FDB) Sweep() int {
	now := f.clock.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	removed := 0
	for k, e := range f.entries {
		if !e.Static && now.Sub(e.LastSeen) > f.aging {
			delete(f.entries, k)
			removed++
		}
	}
	return removed
}

// FlushPort removes all dynamic entries pointing at port (issued when a
// port goes down or is reconfigured).
func (f *FDB) FlushPort(port int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for k, e := range f.entries {
		if e.Port == port && !e.Static {
			delete(f.entries, k)
		}
	}
}

// FlushVLAN removes all dynamic entries within vlan.
func (f *FDB) FlushVLAN(vlan uint16) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for k, e := range f.entries {
		if e.VLAN == vlan && !e.Static {
			delete(f.entries, k)
		}
	}
}

// Len returns the number of entries currently stored (including any
// not-yet-swept expired entries).
func (f *FDB) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.entries)
}

// Entries returns a snapshot sorted by (VLAN, MAC) for the management
// plane ("show mac address-table").
func (f *FDB) Entries() []FDBEntry {
	f.mu.Lock()
	out := make([]FDBEntry, 0, len(f.entries))
	for _, e := range f.entries {
		out = append(out, *e)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].VLAN != out[j].VLAN {
			return out[i].VLAN < out[j].VLAN
		}
		for b := 0; b < 6; b++ {
			if out[i].MAC[b] != out[j].MAC[b] {
				return out[i].MAC[b] < out[j].MAC[b]
			}
		}
		return false
	})
	return out
}
