package flowtable

import (
	"testing"

	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

func TestMaskOf(t *testing.T) {
	cases := []struct {
		name string
		m    Match
		want MatchMask
	}{
		{"match-all", Match{}, 0},
		{"in-port", Match{InPortSet: true, InPort: 3}, MaskInPort},
		{
			"l2",
			Match{EthDstSet: true, EthDstMask: onesMAC, EthSrcSet: true, EthSrcMask: onesMAC, EthTypeSet: true},
			MaskEthDst | MaskEthSrc | MaskEthType,
		},
		{
			// A prefix constraint still claims the whole field:
			// conservative, never under-reports.
			"masked-ip-prefix",
			Match{IPDstSet: true, IPDst: pkt.IPv4{10, 0, 0, 0}, IPDstMask: pkt.IPv4{255, 0, 0, 0}},
			MaskIPDst,
		},
		{"vlan-exact", Match{VLAN: VLANExact, VLANVID: 5}, MaskVLAN},
		{"vlan-absent", Match{VLAN: VLANAbsent}, MaskVLAN},
		{"vlan-pcp", Match{VLANPCPSet: true, VLANPCP: 3}, MaskVLANPCP},
		{
			"five-tuple",
			Match{
				EthTypeSet: true, IPProtoSet: true,
				IPSrcSet: true, IPSrcMask: onesIPv4, IPDstSet: true, IPDstMask: onesIPv4,
				L4SrcSet: true, L4DstSet: true,
			},
			MaskEthType | MaskIPProto | MaskIPSrc | MaskIPDst | MaskL4Src | MaskL4Dst,
		},
		{
			"arp",
			Match{ARPOpSet: true, ARPSPASet: true, ARPSPAMask: onesIPv4, ARPTPASet: true, ARPTPAMask: onesIPv4},
			MaskARPOp | MaskARPSPA | MaskARPTPA,
		},
		{"icmp", Match{ICMPTypeSet: true, ICMPCodeSet: true}, MaskICMPType | MaskICMPCode},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := MaskOf(&tc.m); got != tc.want {
				t.Fatalf("MaskOf(%s) = %v, want %v", tc.m.String(), got, tc.want)
			}
		})
	}
}

func TestMaskUnionCovers(t *testing.T) {
	cases := []struct {
		name      string
		a, b      MatchMask
		union     MatchMask
		aCoversB  bool
		bCoversA  bool
		unionBoth bool // union covers both operands
	}{
		{"disjoint", MaskInPort, MaskIPDst, MaskInPort | MaskIPDst, false, false, true},
		{"subset", MaskInPort | MaskEthType, MaskEthType, MaskInPort | MaskEthType, true, false, true},
		{"equal", MaskL4Dst, MaskL4Dst, MaskL4Dst, true, true, true},
		{"empty", 0, MaskIPSrc, MaskIPSrc, false, true, true},
		{"both-empty", 0, 0, 0, true, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Union(tc.b); got != tc.union {
				t.Fatalf("Union = %v, want %v", got, tc.union)
			}
			if got := tc.a.Covers(tc.b); got != tc.aCoversB {
				t.Fatalf("a.Covers(b) = %v, want %v", got, tc.aCoversB)
			}
			if got := tc.b.Covers(tc.a); got != tc.bCoversA {
				t.Fatalf("b.Covers(a) = %v, want %v", got, tc.bCoversA)
			}
			u := tc.a.Union(tc.b)
			if u.Covers(tc.a) != tc.unionBoth || u.Covers(tc.b) != tc.unionBoth {
				t.Fatalf("union does not cover operands")
			}
		})
	}
}

func TestMaskApply(t *testing.T) {
	full := pkt.Key{
		InPort: 7,
		EthDst: pkt.MAC{2, 0, 0, 0, 0, 1}, EthSrc: pkt.MAC{2, 0, 0, 0, 0, 2},
		EthType: pkt.EtherTypeIPv4,
		HasVLAN: true, VLANID: 100, VLANPCP: 3,
		HasIPv4: true, IPProto: pkt.IPProtoUDP, IPTOS: 0x2e,
		IPSrc: pkt.IPv4{10, 1, 0, 1}, IPDst: pkt.IPv4{10, 2, 0, 1},
		HasL4: true, L4Src: 4242, L4Dst: 53,
	}

	t.Run("zero-mask-keeps-shape-only", func(t *testing.T) {
		p := MatchMask(0).Apply(&full)
		if !p.HasVLAN || !p.HasIPv4 || !p.HasL4 {
			t.Fatalf("presence bits must survive projection: %+v", p)
		}
		if p.InPort != 0 || p.IPDst != (pkt.IPv4{}) || p.L4Dst != 0 || p.VLANID != 0 || p.IPTOS != 0 {
			t.Fatalf("value fields must be zeroed: %+v", p)
		}
	})

	t.Run("selected-fields-survive", func(t *testing.T) {
		mm := MaskInPort | MaskIPDst | MaskL4Dst
		p := mm.Apply(&full)
		if p.InPort != 7 || p.IPDst != (pkt.IPv4{10, 2, 0, 1}) || p.L4Dst != 53 {
			t.Fatalf("masked fields must be copied: %+v", p)
		}
		if p.IPSrc != (pkt.IPv4{}) || p.L4Src != 0 || p.EthDst != (pkt.MAC{}) {
			t.Fatalf("unmasked fields must be zeroed: %+v", p)
		}
	})

	t.Run("projection-idempotent", func(t *testing.T) {
		mm := MaskEthType | MaskIPProto | MaskL4Dst
		p := mm.Apply(&full)
		q := mm.Apply(&p)
		if p != q {
			t.Fatalf("Apply not idempotent:\n p=%+v\n q=%+v", p, q)
		}
	})

	// The soundness property megaflow caching relies on: if the mask
	// covers a match's fields, keys with equal projections evaluate
	// identically against that match.
	t.Run("class-mates-match-identically", func(t *testing.T) {
		m := Match{
			InPortSet: true, InPort: 7,
			EthTypeSet: true, EthType: pkt.EtherTypeIPv4,
			IPDstSet: true, IPDst: pkt.IPv4{10, 2, 0, 0}, IPDstMask: pkt.IPv4{255, 255, 0, 0},
		}
		mm := MaskOf(&m).Union(MaskL4Dst) // wider than the match: still sound
		other := full
		other.EthSrc = pkt.MAC{2, 9, 9, 9, 9, 9} // outside the mask
		other.L4Src = 9999
		other.IPSrc = pkt.IPv4{172, 16, 0, 1}
		if mm.Apply(&full) != mm.Apply(&other) {
			t.Fatalf("keys differing only outside the mask must project equally")
		}
		if m.Matches(&full) != m.Matches(&other) {
			t.Fatalf("class mates must match identically")
		}
		if !m.Matches(&full) {
			t.Fatalf("sanity: match should accept the key")
		}
	})
}

func TestMaskString(t *testing.T) {
	if got := MatchMask(0).String(); got != "any" {
		t.Fatalf("zero mask String = %q", got)
	}
	if got := (MaskInPort | MaskIPDst).String(); got != "in_port,nw_dst" {
		t.Fatalf("String = %q", got)
	}
}

func TestTableConsultMask(t *testing.T) {
	tab := NewTable(0, netem.RealClock{})
	if got := tab.ConsultMask(); got != 0 {
		t.Fatalf("empty table ConsultMask = %v, want any", got)
	}
	add := func(m Match, prio uint16) {
		t.Helper()
		if err := tab.Add(&Entry{Priority: prio, Match: &m}); err != nil {
			t.Fatal(err)
		}
	}
	add(Match{InPortSet: true, InPort: 1}, 10)
	if got := tab.ConsultMask(); got != MaskInPort {
		t.Fatalf("ConsultMask = %v, want in_port", got)
	}
	// Cached value must refresh after a revision bump.
	add(Match{EthTypeSet: true, EthType: pkt.EtherTypeIPv4, IPDstSet: true,
		IPDst: pkt.IPv4{10, 0, 0, 0}, IPDstMask: pkt.IPv4{255, 0, 0, 0}}, 20)
	want := MaskInPort | MaskEthType | MaskIPDst
	if got := tab.ConsultMask(); got != want {
		t.Fatalf("ConsultMask after add = %v, want %v", got, want)
	}
	// Deleting back down narrows it again.
	tab.Delete(&Match{EthTypeSet: true, EthType: pkt.EtherTypeIPv4, IPDstSet: true,
		IPDst: pkt.IPv4{10, 0, 0, 0}, IPDstMask: pkt.IPv4{255, 0, 0, 0}}, 20, true, 0xffffffff)
	if got := tab.ConsultMask(); got != MaskInPort {
		t.Fatalf("ConsultMask after delete = %v, want in_port", got)
	}
}
