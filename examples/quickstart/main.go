// Quickstart: migrate a 4-port legacy Ethernet switch to SDN with
// HARMLESS and prove that two hosts connected to it now communicate
// through an OpenFlow pipeline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/harmless-sdn/harmless/internal/controller"
	"github.com/harmless-sdn/harmless/internal/controller/apps"
	"github.com/harmless-sdn/harmless/internal/fabric"
	"github.com/harmless-sdn/harmless/internal/openflow"
)

func main() {
	// One call builds the whole Fig. 1 topology: an emulated legacy
	// switch with hosts on ports 1..3, a trunk on port 4, the
	// HARMLESS manager configuring it over its vendor CLI, the
	// HARMLESS-S4 group node, and an SDN controller running an L2
	// learning app.
	d, err := fabric.BuildDeployment(fabric.DeployConfig{
		NumPorts: 4,
		Apps:     []controller.App{&apps.Learning{Table: 0}},
	})
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	defer d.Close()
	if err := d.WaitConnected(5 * time.Second); err != nil {
		log.Fatalf("controller: %v", err)
	}

	plan := d.Manager.Plan()
	fmt.Printf("migrated %q: access ports %v tagged into VLANs %v, trunk on port %d\n",
		plan.Hostname, plan.MigratedPorts(), plan.TrunkVLANs(), plan.TrunkPort)

	// The legacy switch now believes it is doing plain VLAN
	// switching...
	fmt.Println("\nlegacy switch running-config (excerpt): every access port is an")
	fmt.Println("untagged member of its own VLAN; the trunk carries them all.")

	// ...while all forwarding decisions happen in SS_2's OpenFlow
	// pipeline.
	h1, h2 := d.Hosts[1], d.Hosts[2]
	if err := h1.Ping(h2.IP, 2*time.Second); err != nil {
		log.Fatalf("ping: %v", err)
	}
	fmt.Printf("\nh1 (%s) pinged h2 (%s) through the OpenFlow pipeline\n", h1.IP, h2.IP)

	fmt.Println("\nSS_1 translator flows (VLAN <-> logical port adaptation):")
	for _, f := range d.S4.SS1.FlowStats(openflow.TableAll) {
		fmt.Printf("  %s\n", f.String())
	}
	fmt.Println("\nSS_2 flows installed by the learning controller:")
	for _, f := range d.S4.SS2.FlowStats(openflow.TableAll) {
		fmt.Printf("  %s\n", f.String())
	}
}
