package legacy

import (
	"net"
	"testing"

	"github.com/harmless-sdn/harmless/internal/snmp"
)

func newSNMPRig(t *testing.T, sw *Switch, dialect Dialect) *snmp.Client {
	t.Helper()
	mib := snmp.NewMIB()
	BindMIB(sw, mib, dialect)
	agent := snmp.NewAgent(mib, "public")
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go agent.Serve(pc) //nolint:errcheck
	t.Cleanup(func() { pc.Close() })
	c, err := snmp.Dial(pc.LocalAddr().String(), "public")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestMIBSystemGroup(t *testing.T) {
	sw := NewSwitch("snmp-sw", 4, WithModel("LGS-2400"))
	c := newSNMPRig(t, sw, DialectCiscoish)

	v, err := c.GetOne(OIDSysDescr)
	if err != nil {
		t.Fatal(err)
	}
	if s := string(v.(snmp.OctetString)); s == "" || s != "LGS-2400 (ciscoish emulation)" {
		t.Errorf("sysDescr = %q", s)
	}
	v, err = c.GetOne(OIDSysName)
	if err != nil {
		t.Fatal(err)
	}
	if string(v.(snmp.OctetString)) != "snmp-sw" {
		t.Errorf("sysName = %v", v)
	}
	v, err = c.GetOne(OIDIfNumber)
	if err != nil {
		t.Fatal(err)
	}
	if int(v.(snmp.Integer)) != 4 {
		t.Errorf("ifNumber = %v", v)
	}
	// sysName is writable.
	if _, err := c.Set(snmp.VarBind{OID: OIDSysName, Value: snmp.OctetString("renamed")}); err != nil {
		t.Fatal(err)
	}
	if sw.Hostname() != "renamed" {
		t.Errorf("hostname = %q", sw.Hostname())
	}
}

func TestMIBIfTableWalk(t *testing.T) {
	sw := NewSwitch("walk-sw", 3)
	c := newSNMPRig(t, sw, DialectCiscoish)
	var descrs []string
	err := c.Walk(OIDIfTable.Append(2), func(vb snmp.VarBind) error {
		descrs = append(descrs, string(vb.Value.(snmp.OctetString)))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(descrs) != 3 || descrs[0] != "GigabitEthernet0/1" || descrs[2] != "GigabitEthernet0/3" {
		t.Errorf("ifDescr walk: %v", descrs)
	}
}

func TestMIBOperStatus(t *testing.T) {
	sw := NewSwitch("st-sw", 2)
	c := newSNMPRig(t, sw, DialectCiscoish)
	// Unattached port: down.
	v, err := c.GetOne(OIDIfTable.Append(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if int(v.(snmp.Integer)) != 2 {
		t.Errorf("unattached port status = %v", v)
	}
}

func TestMIBVLANConfigViaSNMP(t *testing.T) {
	sw := NewSwitch("cfg-sw", 4)
	c := newSNMPRig(t, sw, DialectCiscoish)

	// Set port 2 PVID to 102 (access).
	if _, err := c.Set(snmp.VarBind{OID: OIDPortPVIDTable.Append(2), Value: snmp.Integer(102)}); err != nil {
		t.Fatal(err)
	}
	if got := sw.Config().Ports[2].PVID; got != 102 {
		t.Errorf("PVID = %d", got)
	}
	// Flip port 4 to trunk and set allowed list.
	if _, err := c.Set(snmp.VarBind{OID: OIDPortModeTable.Append(4), Value: snmp.Integer(2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Set(snmp.VarBind{OID: OIDPortAllowedTable.Append(4), Value: snmp.OctetString("101,102")}); err != nil {
		t.Fatal(err)
	}
	pc := sw.Config().Ports[4]
	if pc.Mode != ModeTrunk {
		t.Errorf("mode = %v", pc.Mode)
	}
	if al := pc.AllowedList(); len(al) != 2 || al[0] != 101 {
		t.Errorf("allowed = %v", al)
	}
	// Read back.
	v, err := c.GetOne(OIDPortAllowedTable.Append(4))
	if err != nil {
		t.Fatal(err)
	}
	if string(v.(snmp.OctetString)) != "101,102" {
		t.Errorf("allowed readback = %v", v)
	}
	// Bad values rejected.
	if _, err := c.Set(snmp.VarBind{OID: OIDPortModeTable.Append(4), Value: snmp.Integer(9)}); err == nil {
		t.Error("mode 9 accepted")
	}
	if _, err := c.Set(snmp.VarBind{OID: OIDPortPVIDTable.Append(2), Value: snmp.Integer(0)}); err == nil {
		t.Error("pvid 0 accepted")
	}
	if _, err := c.Set(snmp.VarBind{OID: OIDPortAllowedTable.Append(4), Value: snmp.OctetString("abc")}); err == nil {
		t.Error("garbage allowed list accepted")
	}
}

func TestMIBCounters(t *testing.T) {
	sw := NewSwitch("ctr-sw", 2)
	sw.PortCounters(1).RecordRx(150)
	c := newSNMPRig(t, sw, DialectAristaish)
	v, err := c.GetOne(OIDIfTable.Append(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	if uint32(v.(snmp.Counter32)) != 150 {
		t.Errorf("ifInOctets = %v", v)
	}
}
