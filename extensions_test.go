package harmless_test

// Extension experiments beyond the demo's single-switch scope: the
// enterprise deployment the paper's introduction motivates (several
// legacy switches migrated under one controller) and failure injection
// (lossy links, controller loss).

import (
	"testing"
	"time"

	"github.com/harmless-sdn/harmless/internal/controller"
	"github.com/harmless-sdn/harmless/internal/controller/apps"
	"github.com/harmless-sdn/harmless/internal/fabric"
	"github.com/harmless-sdn/harmless/internal/netem"
)

// TestExtension_MultiSwitchDeployment migrates TWO legacy switches
// under one controller and verifies connectivity within and across
// them. The inter-switch uplink is just another migrated access port
// on each side — HARMLESS needs no special casing for it.
func TestExtension_MultiSwitchDeployment(t *testing.T) {
	learning := &apps.Learning{Table: 0}
	ctrl := controller.New([]controller.App{learning})

	// Switch A: hosts on ports 1,2; port 3 is the uplink; trunk 4.
	dA, err := fabric.BuildDeployment(fabric.DeployConfig{
		NumPorts:   4,
		HostPorts:  []int{1, 2},
		Hostname:   "edge-a",
		DatapathID: 0xa,
		Controller: ctrl,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dA.Close()
	// Switch B: host on port 1; port 3 is the uplink; trunk 4. Hosts
	// must not collide with A's addressing, so use port 5... but the
	// 4-port switch tops out at 3, so give B's host port 2 and remap
	// its identity below via a dedicated host.
	dB, err := fabric.BuildDeployment(fabric.DeployConfig{
		NumPorts:   4,
		HostPorts:  nil, // no auto hosts; we place them manually
		Hostname:   "edge-b",
		DatapathID: 0xb,
		Controller: ctrl,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dB.Close()
	if err := dA.WaitConnected(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := dB.WaitConnected(3 * time.Second); err != nil {
		t.Fatal(err)
	}

	// B's hosts with non-colliding addresses on its ports 1 and 2.
	hostB1 := attachHost(t, dB, 1, 21)
	_ = attachHost(t, dB, 2, 22)

	// Inter-switch wire: A port 3 <-> B port 3 (both already migrated
	// access ports).
	wire := netem.NewLink(netem.LinkConfig{Name: "inter-switch"})
	defer wire.Close()
	dA.Legacy.AttachPort(3, wire.A())
	dB.Legacy.AttachPort(3, wire.B())

	// Intra-switch connectivity on A.
	if err := dA.Hosts[1].Ping(fabric.HostIP(2), 2*time.Second); err != nil {
		t.Fatalf("intra-A: %v", err)
	}
	// Cross-switch: host on A reaches host on B through two full
	// HARMLESS chains and the uplink.
	if err := dA.Hosts[1].Ping(hostB1.IP, 3*time.Second); err != nil {
		t.Fatalf("cross-switch: %v", err)
	}
	if err := hostB1.Ping(fabric.HostIP(1), 3*time.Second); err != nil {
		t.Fatalf("cross-switch reverse: %v", err)
	}
	// Both datapaths saw traffic, and the controller tracked both.
	if len(ctrl.Switches()) != 2 {
		t.Errorf("controller tracks %d switches", len(ctrl.Switches()))
	}
	lookupsA, _ := dA.S4.SS2.Table(0).Stats()
	lookupsB, _ := dB.S4.SS2.Table(0).Stats()
	if lookupsA == 0 || lookupsB == 0 {
		t.Errorf("pipelines bypassed: A=%d B=%d", lookupsA, lookupsB)
	}
	t.Logf("extension: 2 switches, cross-switch path OK (SS_2 lookups A=%d B=%d)", lookupsA, lookupsB)
}

// attachHost places an extra emulated host on a deployment port that
// was left unwired.
func attachHost(t *testing.T, d *fabric.Deployment, port, id int) *fabric.Host {
	t.Helper()
	link := netem.NewLink(netem.LinkConfig{})
	t.Cleanup(link.Close)
	d.Legacy.AttachPort(port, link.A())
	return fabric.NewHost("hx", fabric.HostMAC(id), fabric.HostIP(id), link.B())
}

// TestExtension_LossyTrunk injects 20% frame loss on the trunk and
// verifies the system degrades gracefully (some pings fail, some
// succeed, nothing wedges) — the failure-injection check from
// DESIGN.md.
func TestExtension_LossyTrunk(t *testing.T) {
	d, err := fabric.BuildDeployment(fabric.DeployConfig{
		NumPorts: 4,
		Apps:     []controller.App{&apps.Learning{Table: 0}},
		// Loss applies to all links incl. the trunk; seed fixed for
		// reproducibility.
		LinkConfig: netem.LinkConfig{LossProb: 0.2, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.WaitConnected(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	okCount, failCount := 0, 0
	for i := 0; i < 40; i++ {
		if err := d.Hosts[1].Ping(d.Hosts[2].IP, 150*time.Millisecond); err != nil {
			failCount++
		} else {
			okCount++
		}
	}
	t.Logf("extension: lossy trunk: %d ok, %d lost of 40 pings", okCount, failCount)
	if okCount == 0 {
		t.Error("no ping survived 20% loss — pipeline wedged?")
	}
	if failCount == 0 {
		t.Error("no ping failed under 20%% loss — loss not applied?")
	}
	// The system still works at full rate once loss is removed:
	// the host/controller state survived the lossy phase.
	if err := d.Hosts[3].Ping(d.Hosts[1].IP, 2*time.Second); err != nil {
		// One attempt may still hit loss on the host links; retry.
		if err := pingRetry(d.Hosts[3], fabric.HostIP(1), 5); err != nil {
			t.Errorf("post-loss connectivity: %v", err)
		}
	}
}

// TestExtension_ControllerLossDataplaneSurvives: once flows are
// installed, killing the controller channel must not stop dataplane
// forwarding (OpenFlow fail-standalone semantics for installed state).
func TestExtension_ControllerLossDataplaneSurvives(t *testing.T) {
	d, err := fabric.BuildDeployment(fabric.DeployConfig{
		NumPorts: 4,
		Apps:     []controller.App{&apps.Learning{Table: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.WaitConnected(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Install flows by pinging both ways (twice to cover both dst
	// flows).
	for i := 0; i < 2; i++ {
		if err := d.Hosts[1].Ping(d.Hosts[2].IP, 2*time.Second); err != nil {
			t.Fatal(err)
		}
		if err := d.Hosts[2].Ping(d.Hosts[1].IP, 2*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// Kill the OpenFlow channel.
	d.S4.Agent().Stop()
	time.Sleep(20 * time.Millisecond)
	// Installed flows keep forwarding (no packet-ins possible now).
	if err := d.Hosts[1].Ping(d.Hosts[2].IP, 2*time.Second); err != nil {
		t.Fatalf("dataplane died with the controller: %v", err)
	}
	t.Log("extension: dataplane survived controller loss with installed flows")
}

// TestExtension_RateLimiting exercises the OpenFlow meter path end to
// end: the parental-control app throttles one user's traffic to a
// fixed packet rate while other users are unaffected.
func TestExtension_RateLimiting(t *testing.T) {
	pc := &apps.ParentalControl{Table: 0, NextTable: 1, UplinkPort: 3}
	learning := &apps.Learning{Table: 1}
	d, err := fabric.BuildDeployment(fabric.DeployConfig{
		NumPorts: 4,
		Apps:     []controller.App{pc, learning},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.WaitConnected(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	user1, user2, sink := d.Hosts[1], d.Hosts[2], d.Hosts[3]
	// Teach the learning table where the sink lives.
	if err := user1.Ping(sink.IP, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := user2.Ping(sink.IP, 2*time.Second); err != nil {
		t.Fatal(err)
	}

	// Throttle user1 to 10 pkt/s (burst 10); user2 unlimited.
	pc.RateLimitUser(user1.IP, 10)
	fence(t, d)

	rxBefore, _ := sink.Stats()
	for i := 0; i < 100; i++ {
		_ = user1.SendUDP(sink.IP, 1000, 9, []byte("limited"))
	}
	for i := 0; i < 100; i++ {
		_ = user2.SendUDP(sink.IP, 1000, 9, []byte("unlimited"))
	}
	time.Sleep(50 * time.Millisecond)
	rxAfter, _ := sink.Stats()
	delivered := rxAfter - rxBefore
	// user2's 100 all arrive; user1's burst allows ~10 (token bucket,
	// plus whatever refills during the loop).
	if delivered < 100 || delivered > 130 {
		t.Errorf("delivered %d frames, want ~110 (100 unlimited + ~10 burst)", delivered)
	}
	t.Logf("extension: rate limit delivered %d/200 (user1 throttled to 10 pkt/s)", delivered)

	// Lift the limit: user1 flows freely again.
	pc.RateLimitUser(user1.IP, 0)
	fence(t, d)
	rxBefore, _ = sink.Stats()
	for i := 0; i < 50; i++ {
		_ = user1.SendUDP(sink.IP, 1000, 9, []byte("free"))
	}
	time.Sleep(50 * time.Millisecond)
	rxAfter, _ = sink.Stats()
	if rxAfter-rxBefore < 50 {
		t.Errorf("after unlimit only %d/50 delivered", rxAfter-rxBefore)
	}
}
