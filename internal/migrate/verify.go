package migrate

// checkConservation is the zero-loss invariant, evaluated after every
// traffic round: all links are synchronous and the round ran inside one
// virtual-time callback, so the fabric is quiescent and every datagram
// sent must already have been received. It runs once per tick for the
// whole campaign and must not allocate.
//
//harmless:hotpath
func (x *Executor) checkConservation() bool {
	var sent, received, errs uint64
	for _, r := range x.rigs {
		sent += r.sent
		received += r.received
		errs += r.sendErrs
	}
	return errs == 0 && sent == received
}

// recordConservationFailure is the cold path: note the first loss with
// its virtual timestamp (once — a conservation breach never heals, so
// repeating it every subsequent tick would only bloat the report).
func (x *Executor) recordConservationFailure() {
	if x.lossNoted {
		return
	}
	x.lossNoted = true
	var sent, received uint64
	for _, r := range x.rigs {
		sent += r.sent
		received += r.received
	}
	x.failf("traffic conservation violated at %v: sent %d, received %d", x.eng.Elapsed(), sent, received)
}
