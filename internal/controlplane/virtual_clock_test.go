package controlplane

import (
	"net"
	"testing"
	"time"

	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/openflow"
)

// Keepalive on virtual time: with a ManualClock in the channel config,
// echo probing and dead-peer detection advance only when the clock
// does — no wall-clock waits anywhere in the liveness state machine.
func TestChannelKeepaliveOnVirtualClock(t *testing.T) {
	clock := netem.NewManualClock()
	swSide, peerSide := net.Pipe()
	set := NewChannelSet(nopDatapath{}, Config{
		EchoInterval: 5 * time.Second,
		EchoTimeout:  15 * time.Second,
		Clock:        clock,
	})
	defer set.Close()
	ch := set.Attach(swSide)

	peer := openflow.NewConn(peerSide)
	defer peer.Close()
	msgs := make(chan openflow.Message, 16)
	readErr := make(chan error, 1)
	go func() {
		for {
			m, err := peer.Recv()
			if err != nil {
				readErr <- err
				return
			}
			msgs <- m
		}
	}()

	// Handshake on the peer side.
	select {
	case m := <-msgs:
		if _, ok := m.(*openflow.Hello); !ok {
			t.Fatalf("first message %T, want Hello", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no HELLO from the switch side")
	}
	if err := peer.Send(&openflow.Hello{}); err != nil {
		t.Fatal(err)
	}

	// No wall-clock echo: nothing arrives while virtual time stands
	// still. Then advancing one interval produces exactly the probe.
	// The ticker is armed by the serve goroutine, so step the clock
	// until the probe shows up rather than assuming it is armed.
	gotEcho := false
	for i := 0; i < 100 && !gotEcho; i++ {
		clock.Advance(5 * time.Second)
		select {
		case m := <-msgs:
			if _, ok := m.(*openflow.EchoRequest); ok {
				gotEcho = true
			}
		case <-time.After(20 * time.Millisecond):
		}
	}
	if !gotEcho {
		t.Fatal("no ECHO_REQUEST after advancing virtual time")
	}

	// The peer goes silent; advancing past EchoTimeout must tear the
	// transport down (the peer's read loop sees the close).
	deadline := time.Now().Add(10 * time.Second)
	for ch.State() == StateUp || ch.State() == StateHandshake {
		clock.Advance(5 * time.Second)
		if time.Now().After(deadline) {
			t.Fatalf("channel still %v long after the virtual timeout", ch.State())
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case <-readErr:
	case <-time.After(5 * time.Second):
		t.Fatal("peer transport not closed by dead-peer teardown")
	}
}

// nopDatapath satisfies Datapath for channel-machinery tests.
type nopDatapath struct{}

func (nopDatapath) Features() openflow.FeaturesReply  { return openflow.FeaturesReply{} }
func (nopDatapath) Handle(*Channel, openflow.Message) {}
