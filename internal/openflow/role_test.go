package openflow

import (
	"strings"
	"testing"
)

func TestRoleMessagesRoundTrip(t *testing.T) {
	roundTrip(t, &RoleRequest{Role: RoleMaster, GenerationID: 0xdeadbeefcafe})
	roundTrip(t, &RoleRequest{Role: RoleNoChange})
	roundTrip(t, &RoleReply{Role: RoleSlave, GenerationID: ^uint64(0)})
}

func TestAsyncMessagesRoundTrip(t *testing.T) {
	cfg := AsyncConfig{
		PacketInMask:    [2]uint32{0x3, 0x0},
		PortStatusMask:  [2]uint32{0x7, 0x7},
		FlowRemovedMask: [2]uint32{0xf, 0x1},
	}
	roundTrip(t, &SetAsync{AsyncConfig: cfg})
	roundTrip(t, &GetAsyncRequest{})
	roundTrip(t, &GetAsyncReply{AsyncConfig: cfg})
}

func TestRoleMessageTruncated(t *testing.T) {
	for _, m := range []Message{&RoleRequest{}, &RoleReply{}, &SetAsync{}, &GetAsyncReply{}} {
		m.SetXID(9)
		wire, err := m.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		// Chop the body and fix up the header length: must error, not
		// panic or misparse.
		short := wire[:HeaderLen+4]
		short[2] = byte(len(short) >> 8)
		short[3] = byte(len(short))
		if _, err := Parse(short); err == nil {
			t.Errorf("%T: truncated body parsed", m)
		}
	}
}

func TestDefaultAsyncConfig(t *testing.T) {
	cfg := DefaultAsyncConfig()
	cases := []struct {
		role   uint32
		typ    uint8
		reason uint8
		want   bool
	}{
		{RoleMaster, TypePacketIn, PacketInReasonNoMatch, true},
		{RoleEqual, TypePacketIn, PacketInReasonAction, true},
		{RoleSlave, TypePacketIn, PacketInReasonNoMatch, false},
		{RoleMaster, TypeFlowRemoved, FlowRemovedIdleTimeout, true},
		{RoleSlave, TypeFlowRemoved, FlowRemovedDelete, false},
		{RoleMaster, TypePortStatus, PortReasonAdd, true},
		{RoleSlave, TypePortStatus, PortReasonModify, true}, // slaves keep port-status
		{RoleSlave, TypeBarrierReply, 0, true},              // non-async types never filtered
	}
	for _, c := range cases {
		if got := cfg.Wants(c.role, c.typ, c.reason); got != c.want {
			t.Errorf("Wants(%s, type %d, reason %d) = %v, want %v",
				RoleName(c.role), c.typ, c.reason, got, c.want)
		}
	}
}

func TestRoleName(t *testing.T) {
	if RoleName(RoleMaster) != "master" || RoleName(RoleSlave) != "slave" ||
		RoleName(RoleEqual) != "equal" || RoleName(RoleNoChange) != "nochange" {
		t.Error("role names wrong")
	}
	if !strings.Contains(RoleName(77), "77") {
		t.Error("unknown role not rendered numerically")
	}
}
