package mgmt

import (
	"strings"
	"sync"
	"testing"

	"github.com/harmless-sdn/harmless/internal/legacy"
)

func TestDriverAristaTrunkConfig(t *testing.T) {
	sw := legacy.NewSwitch("ar-trunk", 6)
	addr := newDeviceRig(t, sw, legacy.DialectAristaish)
	d, err := Connect(addr, "aristaish")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.ConfigureTrunkPort(6, 1, []uint16{101, 102, 103}); err != nil {
		t.Fatal(err)
	}
	pc := sw.Config().Ports[6]
	if pc.Mode != legacy.ModeTrunk || pc.PVID != 1 {
		t.Errorf("trunk: %+v", pc)
	}
	if al := pc.AllowedList(); len(al) != 3 || al[2] != 103 {
		t.Errorf("allowed: %v", al)
	}
	// Trunk with empty allowed list: all VLANs.
	if err := d.ConfigureTrunkPort(5, 1, nil); err != nil {
		t.Fatal(err)
	}
	if got := sw.Config().Ports[5].AllowedList(); got != nil {
		t.Errorf("allowed-all: %v", got)
	}
	rc, err := d.RunningConfig()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rc, "interface Ethernet6") {
		t.Errorf("arista names missing from config:\n%s", rc)
	}
}

// TestConcurrentManagementSessions drives several CLI sessions against
// one switch in parallel — the management plane must serialize safely.
// Under -short only a quarter of the sessions run, so the CI race
// matrix stays fast.
func TestConcurrentManagementSessions(t *testing.T) {
	sessions := 8
	if testing.Short() {
		sessions = 2
	}
	sw := legacy.NewSwitch("conc", 24)
	addr := newDeviceRig(t, sw, legacy.DialectCiscoish)
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for w := 0; w < sessions; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d, err := Connect(addr, "ciscoish")
			if err != nil {
				errs <- err
				return
			}
			defer d.Close()
			for p := w*3 + 1; p <= w*3+3; p++ {
				if err := d.ConfigureAccessPort(p, uint16(200+p)); err != nil {
					errs <- err
					return
				}
			}
			if _, err := d.Facts(); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	cfg := sw.Config()
	for p := 1; p <= sessions*3; p++ {
		if cfg.Ports[p].PVID != uint16(200+p) {
			t.Errorf("port %d PVID = %d", p, cfg.Ports[p].PVID)
		}
	}
}

func TestParseVersionFailures(t *testing.T) {
	if _, err := parseCiscoVersion("garbage"); err == nil {
		t.Error("cisco garbage accepted")
	}
	if _, err := parseAristaVersion("garbage"); err == nil {
		t.Error("arista garbage accepted")
	}
}

func TestProbeUnidentifiableDevice(t *testing.T) {
	// A "device" that answers show version with nonsense: pipe-based
	// fake speaking just enough CLI.
	sw := legacy.NewSwitch("x", 2, legacy.WithModel("Mystery Box"))
	// Both dialects print identifiable banners, so fabricate one by
	// checking that Probe fails when handed a non-CLI endpoint.
	_ = sw
	c1, c2 := newLoopPipe(t)
	go func() {
		buf := make([]byte, 1024)
		// Emit a prompt, then answer everything with an unknown banner.
		_, _ = c2.Write([]byte("box>"))
		for {
			if _, err := c2.Read(buf); err != nil {
				return
			}
			_, _ = c2.Write([]byte("MysteryOS v1\r\nbox>"))
		}
	}()
	if _, err := Probe(c1); err == nil {
		t.Error("unidentifiable device accepted")
	}
}
