// DMZ example — demo use case (b) of the paper and the Fig. 1
// walk-through: VM-level access policies in a multi-tenant setting,
// enforced by the OpenFlow pipeline behind a dumb legacy switch, and
// fine-tuned at runtime.
//
//	go run ./examples/dmz
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/harmless-sdn/harmless/internal/controller"
	"github.com/harmless-sdn/harmless/internal/controller/apps"
	"github.com/harmless-sdn/harmless/internal/fabric"
)

func main() {
	dmz := &apps.DMZ{Table: 0, NextTable: 1}
	// The Fig. 1 policy: Host 1 and Host 2 are "permitted to exchange
	// traffic only with each other".
	dmz.Permit(fabric.HostIP(1), fabric.HostIP(2))

	d, err := fabric.BuildDeployment(fabric.DeployConfig{
		NumPorts: 5, // tenants on 1..4, trunk 5
		Apps:     []controller.App{dmz, &apps.Learning{Table: 1}},
	})
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	defer d.Close()
	if err := d.WaitConnected(5 * time.Second); err != nil {
		log.Fatalf("controller: %v", err)
	}

	check := func(a, b int, want bool) {
		err := d.Hosts[a].Ping(fabric.HostIP(b), timeoutFor(want))
		got := err == nil
		verdict := "BLOCKED"
		if got {
			verdict = "allowed"
		}
		marker := "✓"
		if got != want {
			marker = "✗ UNEXPECTED"
		}
		fmt.Printf("  h%d -> h%d: %-8s %s\n", a, b, verdict, marker)
	}

	fmt.Println("policy: only h1 <-> h2 are permitted (DMZ row of Fig. 1)")
	check(1, 2, true)
	check(2, 1, true)
	check(1, 3, false)
	check(3, 2, false)
	check(3, 4, false)

	fmt.Println("\nfine-tuning at runtime: permit h3 <-> h4, revoke h1 <-> h2")
	dmz.Permit(fabric.HostIP(3), fabric.HostIP(4))
	dmz.Revoke(fabric.HostIP(1), fabric.HostIP(2))
	time.Sleep(50 * time.Millisecond)

	check(3, 4, true)
	check(1, 2, false)

	fmt.Println("\nall decisions were made in SS_2's OpenFlow tables; the legacy")
	fmt.Printf("switch only did VLAN tagging (SS_2 pipeline lookups: %d)\n", lookups(d))
}

func lookups(d *fabric.Deployment) uint64 {
	l, _ := d.S4.SS2.Table(0).Stats()
	return l
}

func timeoutFor(allowed bool) time.Duration {
	if allowed {
		return 2 * time.Second
	}
	return 300 * time.Millisecond
}
