package pkt

import (
	"bytes"
	"testing"
	"testing/quick"
)

// verifyL4 re-validates IP and L4 checksums of an IPv4 frame from
// scratch, failing the test on any inconsistency. This is the oracle
// for all incremental-update tests.
func verifyL4(t *testing.T, frame []byte) {
	t.Helper()
	p := DecodeEthernet(frame)
	if p.Err() != nil {
		t.Fatalf("decode: %v", p.Err())
	}
	ip := p.IPv4()
	if ip == nil {
		t.Fatal("no IPv4 layer")
	}
	// Locate raw IP header within frame (skip VLANs).
	ipOff, _, _ := ipv4Offsets(frame)
	if ipOff < 0 {
		t.Fatal("ipv4Offsets failed")
	}
	if Checksum(frame[ipOff:ipOff+ip.HeaderLen()]) != 0 {
		t.Error("IP checksum invalid")
	}
	switch ip.Protocol {
	case IPProtoUDP, IPProtoTCP:
		if L4Checksum(ip.Src, ip.Dst, ip.Protocol, ip.LayerPayload()) != 0 {
			t.Errorf("L4 checksum invalid (proto %d)", ip.Protocol)
		}
	}
}

func TestPushPopVLANRoundTrip(t *testing.T) {
	orig := buildUDPFrame(t, []byte("data"))
	tagged, err := PushVLAN(orig, EtherTypeDot1Q, 101)
	if err != nil {
		t.Fatal(err)
	}
	if len(tagged) != len(orig)+Dot1QHeaderLen {
		t.Errorf("tagged len = %d", len(tagged))
	}
	vid, ok := VLANID(tagged)
	if !ok || vid != 101 {
		t.Errorf("VLANID = %d, %v", vid, ok)
	}
	popped, err := PopVLAN(tagged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(popped, orig) {
		t.Error("push+pop must reproduce the original frame")
	}
}

func TestPushVLANPropertyRoundTrip(t *testing.T) {
	orig := buildUDPFrame(t, []byte("data"))
	f := func(vid uint16) bool {
		vid &= 0x0fff
		tagged, err := PushVLAN(orig, EtherTypeDot1Q, vid)
		if err != nil {
			return false
		}
		got, ok := VLANID(tagged)
		if !ok || got != vid {
			return false
		}
		popped, err := PopVLAN(tagged)
		return err == nil && bytes.Equal(popped, orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPopVLANUntagged(t *testing.T) {
	orig := buildUDPFrame(t, []byte("data"))
	if _, err := PopVLAN(orig); err != ErrNoVLAN {
		t.Errorf("PopVLAN untagged: %v", err)
	}
}

func TestSetVLANID(t *testing.T) {
	orig := buildUDPFrame(t, []byte("data"))
	tagged, _ := PushVLAN(orig, EtherTypeDot1Q, 101)
	if err := SetVLANPCP(tagged, 6); err != nil {
		t.Fatal(err)
	}
	if err := SetVLANID(tagged, 102); err != nil {
		t.Fatal(err)
	}
	p := DecodeEthernet(tagged)
	v := p.VLAN()
	if v == nil || v.VLANID != 102 {
		t.Fatalf("VLAN after rewrite: %+v", v)
	}
	if v.Priority != 6 {
		t.Errorf("PCP must be preserved across SetVLANID, got %d", v.Priority)
	}
	if err := SetVLANID(orig, 102); err != ErrNoVLAN {
		t.Errorf("SetVLANID untagged: %v", err)
	}
}

func TestSetEthAddrs(t *testing.T) {
	frame := buildUDPFrame(t, []byte("data"))
	newDst := MustMAC("02:00:00:00:00:99")
	newSrc := MustMAC("02:00:00:00:00:98")
	if err := SetEthDst(frame, newDst); err != nil {
		t.Fatal(err)
	}
	if err := SetEthSrc(frame, newSrc); err != nil {
		t.Fatal(err)
	}
	p := DecodeEthernet(frame)
	e := p.Ethernet()
	if e.Dst != newDst || e.Src != newSrc {
		t.Errorf("MACs after rewrite: %v > %v", e.Src, e.Dst)
	}
}

func TestSetIPv4AddrsChecksum(t *testing.T) {
	frame := buildUDPFrame(t, []byte("some longer payload for checksum testing"))
	if err := SetIPv4Src(frame, MustIPv4("172.16.5.5")); err != nil {
		t.Fatal(err)
	}
	if err := SetIPv4Dst(frame, MustIPv4("172.16.9.9")); err != nil {
		t.Fatal(err)
	}
	p := DecodeEthernet(frame)
	ip := p.IPv4()
	if ip.Src.String() != "172.16.5.5" || ip.Dst.String() != "172.16.9.9" {
		t.Errorf("addresses: %s > %s", ip.Src, ip.Dst)
	}
	verifyL4(t, frame)
}

func TestSetIPv4AddrsOnTCP(t *testing.T) {
	pl := Payload([]byte("tcp payload"))
	frame, err := Serialize(
		&Ethernet{Src: testSrcMAC, Dst: testDstMAC, EtherType: EtherTypeIPv4},
		&IPv4Header{TTL: 64, Protocol: IPProtoTCP, Src: testSrcIP, Dst: testDstIP},
		&TCP{SrcPort: 100, DstPort: 200, Window: 1000},
		&pl,
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := SetIPv4Dst(frame, MustIPv4("10.99.99.99")); err != nil {
		t.Fatal(err)
	}
	verifyL4(t, frame)
}

func TestSetIPv4AddrsThroughVLAN(t *testing.T) {
	frame := buildUDPFrame(t, []byte("pp"))
	tagged, _ := PushVLAN(frame, EtherTypeDot1Q, 55)
	if err := SetIPv4Src(tagged, MustIPv4("8.8.8.8")); err != nil {
		t.Fatal(err)
	}
	verifyL4(t, tagged)
	p := DecodeEthernet(tagged)
	if p.IPv4().Src.String() != "8.8.8.8" {
		t.Errorf("src = %s", p.IPv4().Src)
	}
}

func TestSetL4Ports(t *testing.T) {
	frame := buildUDPFrame(t, []byte("data"))
	if err := SetL4Src(frame, 999); err != nil {
		t.Fatal(err)
	}
	if err := SetL4Dst(frame, 888); err != nil {
		t.Fatal(err)
	}
	p := DecodeEthernet(frame)
	u := p.UDP()
	if u.SrcPort != 999 || u.DstPort != 888 {
		t.Errorf("ports: %d/%d", u.SrcPort, u.DstPort)
	}
	verifyL4(t, frame)
}

func TestSetL4PortPropertyChecksum(t *testing.T) {
	f := func(port uint16, payload []byte) bool {
		frame := buildUDPFrame(t, payload)
		if err := SetL4Dst(frame, port); err != nil {
			return false
		}
		p := DecodeEthernet(frame)
		ip := p.IPv4()
		return L4Checksum(ip.Src, ip.Dst, IPProtoUDP, ip.LayerPayload()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSetL4PortsOnARPFails(t *testing.T) {
	frame, err := Serialize(
		&Ethernet{Src: testSrcMAC, Dst: BroadcastMAC, EtherType: EtherTypeARP},
		&ARP{Op: ARPRequest, SenderHW: testSrcMAC, SenderIP: testSrcIP, TargetIP: testDstIP},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := SetL4Src(frame, 1); err == nil {
		t.Error("SetL4Src on ARP must fail")
	}
	if err := SetIPv4Src(frame, testSrcIP); err == nil {
		t.Error("SetIPv4Src on ARP must fail")
	}
}

func TestDecIPv4TTL(t *testing.T) {
	frame := buildUDPFrame(t, []byte("ttl test"))
	ttl, err := DecIPv4TTL(frame)
	if err != nil {
		t.Fatal(err)
	}
	if ttl != 63 {
		t.Errorf("ttl = %d, want 63", ttl)
	}
	p := DecodeEthernet(frame)
	if p.IPv4().TTL != 63 {
		t.Errorf("decoded TTL = %d", p.IPv4().TTL)
	}
	verifyL4(t, frame)
	// Exhaust TTL.
	for i := 0; i < 63; i++ {
		if _, err := DecIPv4TTL(frame); err != nil {
			t.Fatal(err)
		}
	}
	ttl, _ = DecIPv4TTL(frame)
	if ttl != 0 {
		t.Errorf("TTL after exhaustion = %d", ttl)
	}
	verifyL4(t, frame)
}

func TestUDPZeroChecksumStaysDisabled(t *testing.T) {
	// Hand-build a UDP frame with checksum 0 (disabled); mutators must
	// not "fix up" a disabled checksum into garbage.
	pl := Payload([]byte("nocsum"))
	frame, err := Serialize(
		&Ethernet{Src: testSrcMAC, Dst: testDstMAC, EtherType: EtherTypeIPv4},
		&IPv4Header{TTL: 64, Protocol: IPProtoUDP, Src: testSrcIP, Dst: testDstIP},
		&UDP{SrcPort: 10, DstPort: 20},
		&pl,
	)
	if err != nil {
		t.Fatal(err)
	}
	// Zero out the UDP checksum manually.
	_, l4Off, _ := ipv4Offsets(frame)
	frame[l4Off+6], frame[l4Off+7] = 0, 0
	if err := SetIPv4Src(frame, MustIPv4("10.1.2.3")); err != nil {
		t.Fatal(err)
	}
	if frame[l4Off+6] != 0 || frame[l4Off+7] != 0 {
		t.Error("disabled UDP checksum was modified")
	}
	// IP header checksum must still be valid.
	p := DecodeEthernet(frame)
	ipOff, _, _ := ipv4Offsets(frame)
	if Checksum(frame[ipOff:ipOff+p.IPv4().HeaderLen()]) != 0 {
		t.Error("IP checksum invalid")
	}
}

func BenchmarkPushPopVLAN(b *testing.B) {
	frame := buildUDPFrame(b, make([]byte, 1000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tagged, err := PushVLAN(frame, EtherTypeDot1Q, 101)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := PopVLAN(tagged); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSetIPv4Dst(b *testing.B) {
	frame := buildUDPFrame(b, make([]byte, 1400))
	ip := MustIPv4("10.0.0.3")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ip[3] = byte(i) // vary so the fast "no change" path isn't taken
		if err := SetIPv4Dst(frame, ip); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSetL4PortsOnTCPChecksum(t *testing.T) {
	pl := Payload([]byte("tcp body"))
	frame, err := Serialize(
		&Ethernet{Src: testSrcMAC, Dst: testDstMAC, EtherType: EtherTypeIPv4},
		&IPv4Header{TTL: 64, Protocol: IPProtoTCP, Src: testSrcIP, Dst: testDstIP},
		&TCP{SrcPort: 1111, DstPort: 2222, Seq: 1, Window: 100},
		&pl,
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := SetL4Src(frame, 3333); err != nil {
		t.Fatal(err)
	}
	if err := SetL4Dst(frame, 80); err != nil {
		t.Fatal(err)
	}
	p := DecodeEthernet(frame)
	tcp := p.TCP()
	if tcp.SrcPort != 3333 || tcp.DstPort != 80 {
		t.Errorf("ports: %d/%d", tcp.SrcPort, tcp.DstPort)
	}
	verifyL4(t, frame)
}

func TestVLANHelpersOnShortFrames(t *testing.T) {
	if HasVLAN([]byte{1, 2}) {
		t.Error("short frame has VLAN")
	}
	if _, ok := VLANID([]byte{1, 2}); ok {
		t.Error("short frame returned VID")
	}
	if _, err := PushVLAN([]byte{1, 2}, EtherTypeDot1Q, 1); err != ErrTooShort {
		t.Errorf("PushVLAN: %v", err)
	}
	if _, err := PopVLAN([]byte{1, 2}); err != ErrTooShort {
		t.Errorf("PopVLAN: %v", err)
	}
	if err := SetEthDst([]byte{1}, testDstMAC); err != ErrTooShort {
		t.Errorf("SetEthDst: %v", err)
	}
	if err := SetEthSrc(make([]byte, 8), testSrcMAC); err != ErrTooShort {
		t.Errorf("SetEthSrc: %v", err)
	}
	if _, err := DecIPv4TTL([]byte{1, 2, 3}); err != ErrTooShort {
		t.Errorf("DecIPv4TTL: %v", err)
	}
}

func TestIPv6String(t *testing.T) {
	ip := IPv6{0xfe, 0x80, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1}
	if got := ip.String(); got != "fe80:0:0:0:0:0:0:1" {
		t.Errorf("IPv6 string: %q", got)
	}
}
