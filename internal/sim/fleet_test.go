package sim

import (
	"strings"
	"testing"
	"time"
)

// midScenario is the determinism workhorse: a 58-switch leaf-spine
// fabric, a churning heavy-hitter workload and all three fault
// families on one timeline.
func midScenario(seed int64) Scenario {
	return Scenario{
		Name: "determinism-mid",
		Seed: seed,
		Topology: TopologySpec{
			Kind: "leafspine", Spines: 8, Leaves: 50, HostsPerLeaf: 4,
		},
		Workload: WorkloadSpec{
			Kind: "heavyhitter", Flows: 50000, RatePerSec: 50000,
			Elephants: 8, Mice: 256, PacketShare: 0.8,
			ElephantPackets: 64, MousePackets: 4, MouseLife: 16,
		},
		Faults: []FaultSpec{
			{At: Duration{200 * time.Millisecond}, Kind: FaultLinkDown, Node: "leaf-0", Peer: "spine-0"},
			{At: Duration{400 * time.Millisecond}, Kind: FaultSwitchDown, Node: "spine-7"},
			{At: Duration{500 * time.Millisecond}, Kind: FaultCtrlFailover},
			{At: Duration{700 * time.Millisecond}, Kind: FaultLinkUp, Node: "leaf-0", Peer: "spine-0"},
			{At: Duration{800 * time.Millisecond}, Kind: FaultSwitchUp, Node: "spine-7"},
		},
		Reconvergence: Duration{50 * time.Millisecond},
	}.withDefaults()
}

func runFleet(t *testing.T, sc Scenario) Result {
	t.Helper()
	s, err := NewFleetSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The reproducibility contract: two runs of the same scenario and seed
// produce byte-identical digests (this test runs under -race in both
// CI matrix Go versions); a different seed diverges.
func TestFleetSimDeterminism(t *testing.T) {
	a := runFleet(t, midScenario(42))
	b := runFleet(t, midScenario(42))
	if a.Digest != b.Digest {
		t.Fatalf("same-seed digests differ:\n  %s\n  %s", a.Digest, b.Digest)
	}
	if a.EventHash != b.EventHash {
		t.Fatalf("same-seed event hashes differ: %s vs %s", a.EventHash, b.EventHash)
	}
	if !a.Pass {
		t.Fatalf("verdict failed: %v", a.Failures)
	}
	c := runFleet(t, midScenario(43))
	if c.Digest == a.Digest {
		t.Fatal("different seeds produced the same digest")
	}
}

// A faultless fabric delivers everything and the books balance.
func TestFleetSimFaultlessConservation(t *testing.T) {
	sc := Scenario{
		Name:     "faultless",
		Seed:     7,
		Topology: TopologySpec{Kind: "fattree", K: 4},
		Workload: WorkloadSpec{Kind: "poisson", Flows: 20000, RatePerSec: 100000, MeanPackets: 4},
	}.withDefaults()
	res := runFleet(t, sc)
	if !res.Pass || !res.CounterExact {
		t.Fatalf("verdict failed: %v", res.Failures)
	}
	if res.LostFlows != 0 || res.DeliveredFlows != res.OfferedFlows {
		t.Fatalf("faultless run: offered %d delivered %d lost %d",
			res.OfferedFlows, res.DeliveredFlows, res.LostFlows)
	}
	if res.OfferedFlows != 20000 {
		t.Fatalf("offered %d flows, want 20000", res.OfferedFlows)
	}
	if res.MeanHops < 2 || res.MeanHops > 6 {
		t.Fatalf("mean hops %.2f outside the fat-tree 2..6 range", res.MeanHops)
	}
}

// A downed link loses exactly the unconverged window's flows: losses
// stop within the reconvergence time, later flows reroute, and the
// fault's convergence record reflects both.
func TestFleetSimLinkFaultConvergence(t *testing.T) {
	reconv := 50 * time.Millisecond
	sc := Scenario{
		Name:     "linkdown",
		Seed:     11,
		Topology: TopologySpec{Kind: "leafspine", Spines: 4, Leaves: 8, HostsPerLeaf: 4},
		Workload: WorkloadSpec{Kind: "poisson", Flows: 100000, RatePerSec: 100000, MeanPackets: 2},
		Faults: []FaultSpec{
			{At: Duration{300 * time.Millisecond}, Kind: FaultLinkDown, Node: "leaf-0", Peer: "spine-0"},
		},
		Reconvergence: Duration{reconv},
	}.withDefaults()
	res := runFleet(t, sc)
	if !res.Pass {
		t.Fatalf("verdict failed: %v", res.Failures)
	}
	if res.LostFlows == 0 {
		t.Fatal("downed link lost nothing — fault never bit")
	}
	if res.ReroutedFlows == 0 {
		t.Fatal("no flow rerouted after convergence")
	}
	rec := res.Convergence[0]
	if rec.FlowsLost != res.LostFlows {
		t.Fatalf("record attributes %d losses, run counted %d", rec.FlowsLost, res.LostFlows)
	}
	if rec.Convergence.Duration > reconv {
		t.Fatalf("losses continued %v after the fault, want <= %v", rec.Convergence.Duration, reconv)
	}
}

// Downing a leaf partitions its hosts: losses are attributed and
// continue past the reconvergence window (no alternate path exists),
// while the rest of the fabric keeps its books exact.
func TestFleetSimSwitchDownPartition(t *testing.T) {
	sc := Scenario{
		Name:     "leafdown",
		Seed:     13,
		Topology: TopologySpec{Kind: "leafspine", Spines: 2, Leaves: 4, HostsPerLeaf: 4},
		Workload: WorkloadSpec{Kind: "poisson", Flows: 50000, RatePerSec: 100000, MeanPackets: 2},
		Faults: []FaultSpec{
			{At: Duration{100 * time.Millisecond}, Kind: FaultSwitchDown, Node: "leaf-3"},
		},
		Reconvergence: Duration{20 * time.Millisecond},
	}.withDefaults()
	res := runFleet(t, sc)
	if !res.Pass {
		t.Fatalf("verdict failed: %v", res.Failures)
	}
	rec := res.Convergence[0]
	if rec.FlowsLost == 0 {
		t.Fatal("downed leaf lost nothing")
	}
	if rec.Convergence.Duration <= 20*time.Millisecond {
		t.Fatalf("partition losses stopped at %v — they should outlast reconvergence", rec.Convergence.Duration)
	}
}

// Controller failover is loss-free: flows in the window are delayed by
// the new master's setup time, never dropped.
func TestFleetSimCtrlFailoverZeroLoss(t *testing.T) {
	sc := Scenario{
		Name:     "failover",
		Seed:     17,
		Topology: TopologySpec{Kind: "leafspine", Spines: 4, Leaves: 8, HostsPerLeaf: 4},
		Workload: WorkloadSpec{Kind: "poisson", Flows: 50000, RatePerSec: 100000, MeanPackets: 2},
		Faults: []FaultSpec{
			{At: Duration{200 * time.Millisecond}, Kind: FaultCtrlFailover, Node: "ctrl-0"},
		},
		Reconvergence: Duration{50 * time.Millisecond},
	}.withDefaults()
	res := runFleet(t, sc)
	if !res.Pass {
		t.Fatalf("verdict failed: %v", res.Failures)
	}
	if res.LostFlows != 0 {
		t.Fatalf("controller failover lost %d flows, want 0", res.LostFlows)
	}
	if res.FailoverDelayed == 0 {
		t.Fatal("no flow experienced the failover window")
	}
	if res.MaxLatency.Duration < sc.LinkLatency.Duration {
		t.Fatalf("max latency %v below a single hop", res.MaxLatency.Duration)
	}
}

// The horizon stops the run mid-stream: fewer arrivals than the
// workload holds, books still exact.
func TestFleetSimHorizon(t *testing.T) {
	sc := Scenario{
		Name:     "horizon",
		Seed:     19,
		Topology: TopologySpec{Kind: "leafspine", Spines: 2, Leaves: 4, HostsPerLeaf: 2},
		Workload: WorkloadSpec{Kind: "poisson", Flows: 10000, RatePerSec: 10000, MeanPackets: 2},
		Horizon:  Duration{200 * time.Millisecond},
	}.withDefaults()
	res := runFleet(t, sc)
	if !res.Pass {
		t.Fatalf("verdict failed: %v", res.Failures)
	}
	if res.OfferedFlows == 0 || res.OfferedFlows >= 10000 {
		t.Fatalf("offered %d flows, want a strict subset under a 200ms horizon at 10k/s", res.OfferedFlows)
	}
	if res.VirtualEnd.Duration != 200*time.Millisecond {
		t.Fatalf("virtual end %v, want exactly the horizon", res.VirtualEnd.Duration)
	}
}

// smallScenario is shared by the flow/packet cross-check.
func smallScenario(mode string) Scenario {
	return Scenario{
		Name:     "small-" + mode,
		Seed:     23,
		Mode:     mode,
		Topology: TopologySpec{Kind: "leafspine", Spines: 2, Leaves: 3, HostsPerLeaf: 2},
		Workload: WorkloadSpec{Kind: "poisson", Flows: 2000, RatePerSec: 100000, MeanPackets: 4},
	}.withDefaults()
}

// Flow mode and packet mode agree on a faultless small fabric: same
// offered and delivered packet totals, both zero loss — the analytic
// bookkeeping cross-checked against real softswitch datapaths on
// virtual links.
func TestFlowPacketCrossCheck(t *testing.T) {
	flow := runFleet(t, smallScenario("flow"))

	ps, err := NewPacketSim(smallScenario("packet"))
	if err != nil {
		t.Fatal(err)
	}
	packet, err := ps.Run(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !packet.Pass {
		t.Fatalf("packet verdict failed: %v", packet.Failures)
	}
	if flow.OfferedPackets != packet.OfferedPackets {
		t.Fatalf("offered packets: flow %d vs packet %d", flow.OfferedPackets, packet.OfferedPackets)
	}
	if flow.DeliveredPackets != packet.DeliveredPackets {
		t.Fatalf("delivered packets: flow %d vs packet %d", flow.DeliveredPackets, packet.DeliveredPackets)
	}
	if packet.LostPackets != 0 {
		t.Fatalf("packet mode dropped %d packets on a faultless fabric", packet.LostPackets)
	}
}

// Packet-mode reproducibility: same seed, same digest.
func TestPacketSimDeterminism(t *testing.T) {
	run := func() Result {
		ps, err := NewPacketSim(smallScenario("packet"))
		if err != nil {
			t.Fatal(err)
		}
		res, err := ps.Run(2 * time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Digest != b.Digest {
		t.Fatalf("same-seed packet digests differ:\n  %s\n  %s", a.Digest, b.Digest)
	}
}

// Packet-mode controller failover drives the real PR 5 machinery —
// master killed, slave promoted with a bumped generation, barriered —
// with zero packet loss across the takeover.
func TestPacketSimCtrlFailover(t *testing.T) {
	sc := smallScenario("packet")
	sc.Name = "packet-failover"
	sc.Faults = []FaultSpec{
		{At: Duration{5 * time.Millisecond}, Kind: FaultCtrlFailover},
	}
	ps, err := NewPacketSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ps.Run(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("verdict failed: %v", res.Failures)
	}
	if res.LostPackets != 0 {
		t.Fatalf("failover lost %d packets, want 0", res.LostPackets)
	}
	if res.DeliveredPackets != res.OfferedPackets {
		t.Fatalf("delivered %d of %d packets across the failover", res.DeliveredPackets, res.OfferedPackets)
	}
}

// Packet mode refuses what it cannot model faithfully.
func TestPacketSimGuards(t *testing.T) {
	sc := smallScenario("packet")
	sc.Faults = []FaultSpec{{At: Duration{time.Millisecond}, Kind: FaultLinkDown, Node: "leaf-0", Peer: "spine-0"}}
	if _, err := NewPacketSim(sc); err == nil || !strings.Contains(err.Error(), "flow mode") {
		t.Fatalf("link fault accepted in packet mode (err=%v)", err)
	}
	big := smallScenario("packet")
	big.Topology = TopologySpec{Kind: "leafspine", Spines: 16, Leaves: 128, HostsPerLeaf: 4}
	if _, err := NewPacketSim(big); err == nil {
		t.Fatal("144-switch fabric accepted in packet mode")
	}
}

// Scenario documents parse "50ms"-style durations and are validated
// against the generated topology.
func TestScenarioParse(t *testing.T) {
	good := `{
		"name": "parse", "seed": 5,
		"topology": {"kind": "leafspine", "spines": 2, "leaves": 2, "hostsPerLeaf": 2},
		"workload": {"kind": "poisson", "flows": 10, "ratePerSec": 100, "meanPackets": 2},
		"faults": [{"at": "50ms", "kind": "linkDown", "node": "leaf-0", "peer": "spine-1"}],
		"reconvergence": "25ms", "horizon": "1s"
	}`
	sc, err := ParseScenario([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Faults[0].At.Duration != 50*time.Millisecond || sc.Reconvergence.Duration != 25*time.Millisecond {
		t.Fatalf("durations parsed as %v / %v", sc.Faults[0].At.Duration, sc.Reconvergence.Duration)
	}
	bad := strings.Replace(good, `"node": "leaf-0"`, `"node": "leaf-9"`, 1)
	if _, err := ParseScenario([]byte(bad)); err == nil {
		t.Fatal("fault naming a nonexistent node validated")
	}
	if _, err := ParseScenario([]byte(`{"topology": {"kind": "torus"}}`)); err == nil {
		t.Fatal("unknown topology kind validated")
	}
}
