// Package atomicmix enforces all-or-nothing atomicity per struct
// field, module-wide.
//
// A field touched through sync/atomic anywhere in the module —
// atomic.AddUint64(&s.hits, 1) in the softswitch datapath, say — must
// be touched through sync/atomic everywhere. A plain write races every
// atomic reader; a plain read may see a value the race detector only
// catches on schedules that interleave, and both are bugs that sit
// silent until a production core count shakes them out. The old
// shardlock pass checked plain *writes* within one package; this pass
// widens the net on both axes: reads count too, and access from a
// *different* package than the atomic ops (the classic leak, because
// nothing on the screen hints at the discipline) is caught by keying
// fields on their declaration position, which is identical no matter
// which package's typecheck resolved the selector.
//
// Typed atomics (atomic.Uint64 and friends) are the structurally safe
// alternative — plain access to them does not compile — so this pass
// only tracks fields reached through the function-style API. Copies of
// typed atomics remain shardlock's department.
//
// Construction-time initialization before a struct is published is the
// legitimate exception; it carries //harmless:allow-plain <reason>.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"github.com/harmless-sdn/harmless/internal/analysis"
)

// Analyzer is the atomicmix module pass.
var Analyzer = &analysis.Analyzer{
	Name:      "atomicmix",
	Doc:       "flags plain reads/writes of struct fields accessed via sync/atomic anywhere in the module",
	RunModule: runModule,
}

const hatch = "allow-plain"

// fieldInfo describes one field known to be accessed atomically.
type fieldInfo struct {
	name string // field name, for messages
	at   string // file (base name) of the first atomic op seen, for messages
}

func runModule(mp *analysis.ModulePass) error {
	// Pass 1: collect every field passed by address to a sync/atomic
	// operation, keyed by declaration position — the one identity that
	// survives a package being typechecked both as a target and as an
	// import of another target.
	fields := make(map[string]*fieldInfo)
	for _, pass := range mp.Passes {
		collectAtomicFields(pass, fields)
	}
	// Pass 2: report plain access to those fields everywhere.
	for _, pass := range mp.Passes {
		if len(fields) > 0 {
			checkPlainAccess(pass, fields)
		}
		pass.ReportUnused(hatch)
	}
	return nil
}

// fieldKey is a field's declaration position, rendered through the
// pass's fset: file:line:col is the same string in every package that
// sees the field.
func fieldKey(pass *analysis.Pass, fv *types.Var) string {
	return pass.Fset.Position(fv.Pos()).String()
}

func collectAtomicFields(pass *analysis.Pass, fields map[string]*fieldInfo) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isAtomicCall(pass, call) || len(call.Args) == 0 {
				return true
			}
			fv := addressedField(pass, call.Args[0])
			if fv == nil {
				return true
			}
			key := fieldKey(pass, fv)
			if fields[key] == nil {
				fields[key] = &fieldInfo{
					name: fv.Name(),
					at:   filepath.Base(pass.Fset.Position(call.Pos()).Filename),
				}
			}
			return true
		})
	}
}

func checkPlainAccess(pass *analysis.Pass, fields map[string]*fieldInfo) {
	for _, f := range pass.Files {
		// First sweep: the selectors sanctioned as atomic operands, and
		// the selectors that are assignment targets.
		sanctioned := make(map[ast.Node]bool)
		writes := make(map[ast.Node]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if isAtomicCall(pass, x) && len(x.Args) > 0 {
					if sel := addressedSelector(x.Args[0]); sel != nil {
						sanctioned[sel] = true
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
						writes[sel] = true
					}
				}
			case *ast.IncDecStmt:
				if sel, ok := ast.Unparen(x.X).(*ast.SelectorExpr); ok {
					writes[sel] = true
				}
			}
			return true
		})
		// Second sweep: every remaining selector of a tracked field is
		// a plain access. Taking the address outside an atomic op
		// counts as a read — the pointer enables unsynchronized access.
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			fv := fieldOf(pass, sel)
			if fv == nil {
				return true
			}
			info := fields[fieldKey(pass, fv)]
			if info == nil || pass.Suppressed(sel.Pos(), hatch) {
				return true
			}
			if writes[sel] {
				pass.Reportf(sel.Pos(),
					"plain write to field %s, which is accessed via sync/atomic (%s): the write races atomic readers; use the atomic op (or add //harmless:allow-plain <reason>)",
					info.name, info.at)
			} else {
				pass.Reportf(sel.Pos(),
					"plain read of field %s, which is accessed via sync/atomic (%s): the read races atomic writers; use the atomic load (or add //harmless:allow-plain <reason>)",
					info.name, info.at)
			}
			return true
		})
	}
}

// isAtomicCall matches sync/atomic's function-style operations
// (AddUint64, LoadInt32, StoreUint64, SwapPointer, CompareAndSwap...).
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !atomicOp(sel.Sel.Name) {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

func atomicOp(name string) bool {
	for _, p := range []string{"Add", "And", "Or", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// addressedSelector unwraps &x.f to the selector node.
func addressedSelector(arg ast.Expr) *ast.SelectorExpr {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	sel, _ := ast.Unparen(u.X).(*ast.SelectorExpr)
	return sel
}

// addressedField resolves &x.f to the field object, or nil.
func addressedField(pass *analysis.Pass, arg ast.Expr) *types.Var {
	if sel := addressedSelector(arg); sel != nil {
		return fieldOf(pass, sel)
	}
	return nil
}

// fieldOf resolves a selector to the struct field it names, or nil.
func fieldOf(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	fv, _ := s.Obj().(*types.Var)
	return fv
}
