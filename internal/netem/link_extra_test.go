package netem

import (
	"sync/atomic"
	"testing"
)

func TestWrapReceiver(t *testing.T) {
	l := NewLink(LinkConfig{})
	defer l.Close()
	var order []string
	l.B().SetReceiver(func(f []byte) { order = append(order, "device") })
	l.B().WrapReceiver(func(next Receiver) Receiver {
		return func(f []byte) {
			order = append(order, "tap")
			next(f)
		}
	})
	if err := l.A().Send([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "tap" || order[1] != "device" {
		t.Fatalf("order: %v", order)
	}
	// Wrapping a nil receiver must be tolerated by the wrapper itself.
	l2 := NewLink(LinkConfig{})
	defer l2.Close()
	var tapped atomic.Int32
	l2.B().WrapReceiver(func(next Receiver) Receiver {
		return func(f []byte) {
			tapped.Add(1)
			if next != nil {
				next(f)
			}
		}
	})
	if err := l2.A().Send([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if tapped.Load() != 1 {
		t.Error("tap on receiverless port not invoked")
	}
}

// BenchmarkLinkModes quantifies the sync-vs-async ablation called out
// in DESIGN.md: what the deterministic in-caller delivery saves over
// goroutine queueing.
func BenchmarkLinkModes(b *testing.B) {
	frame := make([]byte, 256)
	b.Run("sync", func(b *testing.B) {
		l := NewLink(LinkConfig{})
		defer l.Close()
		l.B().SetReceiver(func([]byte) {})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = l.A().Send(frame)
		}
	})
	b.Run("async", func(b *testing.B) {
		l := NewLink(LinkConfig{Async: true, QueueLen: 4096})
		defer l.Close()
		done := make(chan struct{}, 1)
		var got atomic.Int64
		var want atomic.Int64
		l.B().SetReceiver(func([]byte) {
			if got.Add(1) == want.Load() {
				select {
				case done <- struct{}{}:
				default:
				}
			}
		})
		b.ReportAllocs()
		b.ResetTimer()
		want.Store(int64(b.N))
		for i := 0; i < b.N; i++ {
			for {
				if err := l.A().Send(frame); err != nil {
					b.Fatal(err)
				}
				break
			}
		}
		// Wait for the consumer to drain (bounded: tail drops possible
		// under overload are acceptable for the ablation, so poll).
		for got.Load()+int64(l.A().Counters().TxDropped.Load()) < int64(b.N) {
		}
	})
}
