package softswitch

import (
	"net"
	"testing"

	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

func TestBufferPoolStoreTake(t *testing.T) {
	bp := newBufferPool(4)
	id := bp.store([]byte{1, 2, 3})
	f, ok := bp.take(id)
	if !ok || len(f) != 3 || f[2] != 3 {
		t.Fatalf("take: %v %v", f, ok)
	}
	if _, ok := bp.take(id); ok {
		t.Error("double take succeeded")
	}
	if bp.Len() != 0 {
		t.Errorf("len %d", bp.Len())
	}
}

func TestBufferPoolIsolatesStorage(t *testing.T) {
	bp := newBufferPool(4)
	src := []byte{9, 9, 9}
	id := bp.store(src)
	src[0] = 0 // caller mutates after store
	f, _ := bp.take(id)
	if f[0] != 9 {
		t.Error("buffer shares storage with caller")
	}
}

func TestBufferPoolWraps(t *testing.T) {
	bp := newBufferPool(2)
	id0 := bp.store([]byte{0})
	id1 := bp.store([]byte{1})
	id2 := bp.store([]byte{2}) // overwrites slot 0's id space
	if id0 != id2 {
		t.Fatalf("ring ids: %d %d %d", id0, id1, id2)
	}
	f, ok := bp.take(id2)
	if !ok || f[0] != 2 {
		t.Errorf("wrapped slot: %v %v", f, ok)
	}
}

// TestBufferedPacketInAndRelease covers the miss-with-buffering path:
// a table-miss entry with a small MaxLen buffers the frame; the
// controller answers with a flow-mod referencing the buffer, and the
// switch releases the buffered packet through the new flow.
func TestBufferedPacketInAndRelease(t *testing.T) {
	r := newRig(t, 2)
	c1, c2 := net.Pipe()
	agent := r.sw.StartAgent(c2, 0)
	defer agent.Stop()
	ctrl := openflow.NewConn(c1)
	defer ctrl.Close()
	if _, err := ctrl.Handshake(nil); err != nil {
		t.Fatal(err)
	}

	// Miss entry with MaxLen 32: frames larger than that get buffered.
	miss := &openflow.FlowMod{
		TableID: 0, Command: openflow.FlowAdd, Priority: 0,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
		Instructions: []openflow.Instruction{&openflow.InstrApplyActions{
			Actions: []openflow.Action{&openflow.ActionOutput{Port: openflow.PortController, MaxLen: 32}},
		}},
	}
	if err := ctrl.Send(miss); err != nil {
		t.Fatal(err)
	}
	_ = ctrl.Send(&openflow.BarrierRequest{})
	for {
		m, err := ctrl.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := m.(*openflow.BarrierReply); ok {
			break
		}
	}

	frame := udpFrame(t, macA, macB, ipA, ipB, 1, 2, "a long enough payload to exceed maxlen")
	r.inject(t, 1, frame)

	var pi *openflow.PacketIn
	for pi == nil {
		m, err := ctrl.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if p, ok := m.(*openflow.PacketIn); ok {
			pi = p
		}
	}
	if pi.BufferID == openflow.NoBuffer {
		t.Fatal("expected a buffered packet-in")
	}
	if len(pi.Data) != 32 {
		t.Errorf("truncated data: %d bytes", len(pi.Data))
	}
	if int(pi.TotalLen) != len(frame) {
		t.Errorf("TotalLen %d != %d", pi.TotalLen, len(frame))
	}

	// Flow-mod referencing the buffer: install in_port=1 -> port 2;
	// the buffered frame must be released through the new flow.
	m := openflow.Match{}
	m.WithInPort(1)
	fm := &openflow.FlowMod{
		TableID: 0, Command: openflow.FlowAdd, Priority: 10,
		BufferID: pi.BufferID, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
		Match: m, Instructions: []openflow.Instruction{&openflow.InstrApplyActions{
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 2, MaxLen: 0xffff}},
		}},
	}
	if err := ctrl.Send(fm); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "buffered frame release", func() bool { return r.hosts[2].count() == 1 })
	got := r.hosts[2].last()
	p := pkt.DecodeEthernet(got)
	if string(p.ApplicationPayload()) != "a long enough payload to exceed maxlen" {
		t.Errorf("released frame corrupted: %s", p)
	}
}

// TestPacketOutWithBufferID covers the packet-out release path.
func TestPacketOutWithBufferID(t *testing.T) {
	r := newRig(t, 2)
	frame := udpFrame(t, macA, macB, ipA, ipB, 1, 2, "buffered")
	id := r.sw.buffers.store(frame)
	r.sw.InjectPacketOut(&openflow.PacketOut{
		BufferID: id, InPort: openflow.PortController,
		Actions: []openflow.Action{out(2)},
	})
	if r.hosts[2].count() != 1 {
		t.Fatal("buffered packet-out not delivered")
	}
	// Unknown buffer id with no data: nothing happens.
	r.sw.InjectPacketOut(&openflow.PacketOut{
		BufferID: 12345, InPort: openflow.PortController,
		Actions: []openflow.Action{out(2)},
	})
	if r.hosts[2].count() != 1 {
		t.Error("phantom buffer delivered")
	}
}
