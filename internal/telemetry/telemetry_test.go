package telemetry

import (
	"testing"
	"time"

	"github.com/harmless-sdn/harmless/internal/pkt"
)

// mkKey builds a distinct extracted packet key for flow i.
func mkKey(i int) pkt.Key {
	return pkt.Key{
		InPort:  1,
		EthSrc:  pkt.MAC{0x02, 0x10, 0, 0, byte(i >> 8), byte(i)},
		EthDst:  pkt.MAC{0x02, 0x20, 0, 0, byte(i >> 8), byte(i)},
		EthType: pkt.EtherTypeIPv4,
		HasIPv4: true,
		IPProto: pkt.IPProtoUDP,
		IPSrc:   pkt.IPv4{10, 1, byte(i >> 8), byte(i)},
		IPDst:   pkt.IPv4{10, 2, 0, 1},
		HasL4:   true,
		L4Src:   uint16(1024 + i),
		L4Dst:   80,
	}
}

// drainRing empties the table's export ring, returning flow snapshots
// and samples separately.
func drainRing(t *Table) (flows, samples []Export) {
	for {
		e, ok := t.Ring().Pop()
		if !ok {
			return
		}
		if e.Kind == ExportSample {
			samples = append(samples, e)
		} else {
			flows = append(flows, e)
		}
	}
}

func TestKeyFromPacket(t *testing.T) {
	k := mkKey(3)
	fk := KeyFromPacket(&k)
	if fk.IPSrc != k.IPSrc || fk.L4Src != k.L4Src || fk.Proto != pkt.IPProtoUDP || fk.InPort != 1 {
		t.Fatalf("bad key mapping: %+v", fk)
	}
	icmp := pkt.Key{InPort: 2, EthType: pkt.EtherTypeIPv4, HasIPv4: true, IPProto: pkt.IPProtoICMP,
		HasICMP: true, ICMPType: 8, ICMPCode: 0}
	fi := KeyFromPacket(&icmp)
	if fi.L4Dst != 8<<8 {
		t.Fatalf("ICMP type/code not folded into L4Dst: %d", fi.L4Dst)
	}
}

func TestObserveAccounting(t *testing.T) {
	tab := NewTable(Config{})
	k := mkKey(1)
	rec := tab.Lookup(&k)
	if rec == nil {
		t.Fatal("Lookup returned nil")
	}
	if again := tab.Lookup(&k); again != rec {
		t.Fatal("second Lookup returned a different record")
	}
	now := time.Now().UnixNano()
	tab.Observe(rec, 100, 2, now)
	tab.Observe(rec, 50, 2, now+1)
	snaps := tab.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("snapshot len = %d", len(snaps))
	}
	s := snaps[0]
	if s.Packets != 2 || s.Bytes != 150 || s.OutPort != 2 || s.First != now || s.Last != now+1 {
		t.Fatalf("bad snapshot: %+v", s)
	}
	if c := tab.Counters(); c.FlowsCreated.Load() != 1 {
		t.Fatalf("FlowsCreated = %d", c.FlowsCreated.Load())
	}
}

func TestIdleExpiryAndRevival(t *testing.T) {
	tab := NewTable(Config{IdleTimeout: time.Second, SweepInterval: time.Millisecond})
	k := mkKey(1)
	rec := tab.Lookup(&k)
	tab.Observe(rec, 64, 0, 1e9)
	// Idle for > IdleTimeout: the sweep exports a final record and
	// forgets the flow.
	tab.Sweep(3e9)
	flows, _ := drainRing(tab)
	if len(flows) != 1 || flows[0].EndReason != EndIdle || flows[0].Packets != 1 {
		t.Fatalf("idle export = %+v", flows)
	}
	if tab.Len() != 0 {
		t.Fatalf("table len = %d after idle expiry", tab.Len())
	}
	if tab.Counters().FlowsExpired.Load() != 1 {
		t.Fatal("FlowsExpired not counted")
	}
	// The datapath still holds rec (hung off a cache entry): its next
	// packet revives the flow with a fresh window; nothing is lost.
	tab.Observe(rec, 64, 0, 4e9)
	if tab.Len() != 1 {
		t.Fatal("record not revived")
	}
	snaps := tab.Snapshot()
	if snaps[0].Packets != 1 || snaps[0].First != 4e9 {
		t.Fatalf("revived window wrong: %+v", snaps[0])
	}
}

func TestActiveTimeoutDelta(t *testing.T) {
	tab := NewTable(Config{ActiveTimeout: time.Second, IdleTimeout: time.Hour, SweepInterval: time.Millisecond})
	k := mkKey(1)
	rec := tab.Lookup(&k)
	tab.Observe(rec, 100, 0, 1e9)
	tab.Observe(rec, 100, 0, 2e9)
	tab.Sweep(2_500_000_000) // window open 1.5s > active timeout
	flows, _ := drainRing(tab)
	if len(flows) != 1 || flows[0].EndReason != EndActive || flows[0].Packets != 2 || flows[0].Bytes != 200 {
		t.Fatalf("active export = %+v", flows)
	}
	if tab.Len() != 1 {
		t.Fatal("active export must keep the flow")
	}
	// Next window accumulates independently; totals add up.
	tab.Observe(rec, 100, 0, 3e9)
	tab.FlushAll(4e9)
	flows, _ = drainRing(tab)
	if len(flows) != 1 || flows[0].Packets != 1 || flows[0].First != 3e9 {
		t.Fatalf("second window = %+v", flows)
	}
}

func TestEvictionExportsVictim(t *testing.T) {
	tab := NewTable(Config{MaxFlows: 2})
	var total uint64
	for i := 0; i < 3; i++ {
		k := mkKey(i)
		rec := tab.Lookup(&k)
		tab.Observe(rec, 64, 0, int64(i+1))
		total += 64
	}
	if tab.Len() != 2 {
		t.Fatalf("len = %d, want cap 2", tab.Len())
	}
	if tab.Counters().FlowsEvicted.Load() != 1 {
		t.Fatalf("FlowsEvicted = %d", tab.Counters().FlowsEvicted.Load())
	}
	// Exactness: exported + live == observed.
	flows, _ := drainRing(tab)
	var exported uint64
	for _, e := range flows {
		exported += e.Bytes
	}
	var live uint64
	for _, s := range tab.Snapshot() {
		live += s.Bytes
	}
	if exported+live != total {
		t.Fatalf("exported %d + live %d != observed %d", exported, live, total)
	}
}

func TestSampler(t *testing.T) {
	tab := NewTable(Config{SampleRate: 4})
	k := mkKey(1)
	rec := tab.Lookup(&k)
	for i := 0; i < 16; i++ {
		tab.Observe(rec, 64, 3, int64(i+1))
	}
	_, samples := drainRing(tab)
	if len(samples) != 4 {
		t.Fatalf("samples = %d, want 4 (1-in-4 of 16)", len(samples))
	}
	if samples[0].Packets != 1 || samples[0].Bytes != 64 || samples[0].Key != rec.Key {
		t.Fatalf("bad sample: %+v", samples[0])
	}
	if tab.Counters().SamplesQueued.Load() != 4 {
		t.Fatal("SamplesQueued miscounted")
	}
}

func TestRingOverflowCounted(t *testing.T) {
	tab := NewTable(Config{RingSize: 2})
	for i := 0; i < 8; i++ {
		k := mkKey(i)
		tab.Observe(tab.Lookup(&k), 64, 0, int64(i+1))
	}
	tab.FlushAll(100)
	c := tab.Counters()
	if got := c.RecordsQueued.Load(); got != 2 {
		t.Fatalf("RecordsQueued = %d, want 2 (ring cap)", got)
	}
	if got := c.RecordsLost.Load(); got != 6 {
		t.Fatalf("RecordsLost = %d, want 6", got)
	}
}

func TestSnapshotTopTalkersOrder(t *testing.T) {
	tab := NewTable(Config{Shards: 4})
	for i := 0; i < 8; i++ {
		k := mkKey(i)
		rec := tab.Lookup(&k)
		tab.Observe(rec, 64*(i+1), 0, int64(i+1))
	}
	snaps := tab.Snapshot()
	if len(snaps) != 8 {
		t.Fatalf("len = %d", len(snaps))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Bytes > snaps[i-1].Bytes {
			t.Fatalf("snapshot not sorted by bytes desc at %d", i)
		}
	}
}

func TestObserveBatchMultiShard(t *testing.T) {
	tab := NewTable(Config{Shards: 4})
	const n = 64
	frames := make([][]byte, n)
	recs := make([]*Record, n)
	outs := make([]uint32, n)
	for i := 0; i < n; i++ {
		frames[i] = make([]byte, 60+i)
		k := mkKey(i % 8)
		recs[i] = tab.Lookup(&k)
		outs[i] = 2
	}
	// A nil rec (unclassified frame) must be skipped.
	recs[5] = nil
	tab.ObserveBatch(frames, recs, outs, 1e9)
	var pkts, bytes uint64
	for _, s := range tab.Snapshot() {
		pkts += s.Packets
		bytes += s.Bytes
	}
	var want uint64
	for i := 0; i < n; i++ {
		if i == 5 {
			continue
		}
		want += uint64(60 + i)
	}
	if pkts != n-1 || bytes != want {
		t.Fatalf("pkts=%d bytes=%d, want %d/%d", pkts, bytes, n-1, want)
	}
}

// TestConcurrentObserveFlushSnapshot exercises the shard mutexes under
// the race detector: observers on distinct flows, a flusher, and a
// snapshotter all running concurrently.
func TestConcurrentObserveFlushSnapshot(t *testing.T) {
	iters := 2000
	if testing.Short() {
		iters = 200
	}
	tab := NewTable(Config{Shards: 4, SampleRate: 8, RingSize: 1 << 16})
	done := make(chan uint64)
	for g := 0; g < 4; g++ {
		go func(g int) {
			var sent uint64
			for i := 0; i < iters; i++ {
				k := mkKey(g*16 + i%16)
				rec := tab.Lookup(&k)
				tab.Observe(rec, 64, 0, int64(i+1))
				sent++
			}
			done <- sent
		}(g)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				tab.FlushAll(50)
				tab.Snapshot()
				tab.Sweep(60)
			}
		}
	}()
	var total uint64
	for g := 0; g < 4; g++ {
		total += <-done
	}
	close(stop)
	tab.FlushAll(100)
	flows, _ := drainRing(tab)
	var exported uint64
	for _, e := range flows {
		exported += e.Packets
	}
	lost := tab.Counters().RecordsLost.Load()
	if lost != 0 {
		t.Fatalf("ring overflow (%d lost) — ring sized too small for the test", lost)
	}
	if exported != total {
		t.Fatalf("exported %d packets, observed %d", exported, total)
	}
}

// TestDeadRecordDoesNotOrphanLiveSuccessor: when a dead record's flow
// already has a fresh live record (slow-path Lookup re-created it),
// observing the stale pointer must account to the live record instead
// of re-installing the dead one over it — otherwise the successor's
// counts would never be exported again.
func TestDeadRecordDoesNotOrphanLiveSuccessor(t *testing.T) {
	tab := NewTable(Config{MaxFlows: 1})
	k1, k2 := mkKey(1), mkKey(2)
	rec1 := tab.Lookup(&k1)
	tab.Observe(rec1, 64, 0, 1)
	// Capacity eviction kills rec1 (its delta is exported)...
	tab.Lookup(&k2)
	// ...and a slow-path lookup re-creates flow 1 with a fresh record.
	rec1b := tab.Lookup(&k1)
	if rec1b == rec1 {
		t.Fatal("expected a fresh record after eviction")
	}
	tab.Observe(rec1b, 64, 0, 2)
	// The datapath still holds the stale pointer: its packet must land
	// on the live record.
	tab.Observe(rec1, 64, 0, 3)
	tab.FlushAll(4)
	flows, _ := drainRing(tab)
	var total uint64
	for _, e := range flows {
		total += e.Packets
	}
	if total != 3 {
		t.Fatalf("exported %d packets, observed 3 — a record was orphaned", total)
	}
	if tab.Len() != 0 {
		t.Fatalf("%d records still live after FlushAll", tab.Len())
	}
}

// TestOwnsAndTableSwap: records are table-scoped; a record minted by
// one table must not pass another table's ownership check.
func TestOwnsAndTableSwap(t *testing.T) {
	a := NewTable(Config{Shards: 4})
	b := NewTable(Config{Shards: 1})
	k := mkKey(1)
	rec := a.Lookup(&k)
	if !a.Owns(rec) {
		t.Fatal("table does not own its own record")
	}
	if b.Owns(rec) || a.Owns(nil) {
		t.Fatal("foreign/nil record passed the ownership check")
	}
}

// TestFlushWhereSelective flushes only the matching flows.
func TestFlushWhereSelective(t *testing.T) {
	tab := NewTable(Config{})
	for i := 0; i < 4; i++ {
		k := mkKey(i)
		tab.Observe(tab.Lookup(&k), 64, 0, int64(i+1))
	}
	tab.FlushWhere(func(fk FlowKey) bool { return fk.L4Src == 1024+1 }, 10)
	flows, _ := drainRing(tab)
	if len(flows) != 1 || flows[0].Key.L4Src != 1025 {
		t.Fatalf("selective flush exported %+v", flows)
	}
	if tab.Len() != 3 {
		t.Fatalf("live flows = %d, want 3 untouched", tab.Len())
	}
}

// TestKeyRoundTrip: ToPacketKey inverts KeyFromPacket for the shapes
// the datapath produces.
func TestKeyRoundTrip(t *testing.T) {
	udp := mkKey(5)
	icmp := pkt.Key{InPort: 2, EthSrc: udp.EthSrc, EthDst: udp.EthDst,
		EthType: pkt.EtherTypeIPv4, HasIPv4: true, IPProto: pkt.IPProtoICMP,
		IPSrc: udp.IPSrc, IPDst: udp.IPDst, HasICMP: true, ICMPType: 8, ICMPCode: 0}
	vlan := udp
	vlan.HasVLAN = true
	vlan.VLANID = 101
	for _, k := range []pkt.Key{udp, icmp, vlan} {
		back := KeyFromPacket(&k).ToPacketKey()
		if back != k {
			t.Fatalf("round trip lost fields:\n in  %+v\n out %+v", k, back)
		}
	}
}
