package shardlock_test

import (
	"testing"

	"github.com/harmless-sdn/harmless/internal/analysis/analysistest"
	"github.com/harmless-sdn/harmless/internal/analysis/shardlock"
)

func TestShardLock(t *testing.T) {
	analysistest.Run(t, "testdata/src/shardlock", "shardlock", shardlock.Analyzer)
}
