package telemetry

import (
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"sync"
)

// Collector is an IPFIX-style collector: it decodes exported messages
// (template and data sets) and accumulates per-flow totals. It serves
// three roles:
//
//   - the in-process exporter for tests and harmlessd's /stats view
//     (Collector implements Exporter, so it can sit directly behind an
//     Aggregator);
//   - the decode half of the wire-format round-trip tests;
//   - the engine of cmd/flowtop, fed from a UDP socket via ServeUDP.
//
// Safe for concurrent use.
type Collector struct {
	mu        sync.Mutex
	templates map[uint16][]fieldSpec
	flows     map[FlowKey]*CollectedFlow
	maxFlows  int // 0 = unbounded

	messages   uint64
	records    uint64
	samples    uint64
	sampleByte uint64
	decodeErrs uint64

	totalPackets uint64 // fwd+rev packets over all flow records
	totalBytes   uint64
}

// CollectedFlow is the accumulated state of one exported flow.
type CollectedFlow struct {
	Key        FlowKey
	Packets    uint64
	Bytes      uint64
	RevPackets uint64
	RevBytes   uint64
	FirstMs    uint64
	LastMs     uint64
	OutPort    uint32
	EndReason  uint8
	Records    uint64 // export records merged into this flow
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		templates: make(map[uint16][]fieldSpec),
		flows:     make(map[FlowKey]*CollectedFlow),
	}
}

// SetMaxFlows bounds the per-flow accumulation map (0 = unbounded):
// past the cap a pseudo-random flow is dropped to admit a new one.
// The aggregate Totals/Stats counters are unaffected — only the
// per-flow breakdown is bounded. Long-running daemons facing endless
// flow churn should set this.
func (c *Collector) SetMaxFlows(n int) {
	c.mu.Lock()
	c.maxFlows = n
	c.mu.Unlock()
}

// ExportMessage implements Exporter: consume the message in-process.
func (c *Collector) ExportMessage(msg []byte) error { return c.Consume(msg) }

// Close implements Exporter.
func (c *Collector) Close() error { return nil }

// Consume decodes one exported message and folds its records into the
// collector state.
func (c *Collector) Consume(msg []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.consumeLocked(msg); err != nil {
		c.decodeErrs++
		return err
	}
	c.messages++
	return nil
}

func (c *Collector) consumeLocked(msg []byte) error {
	if len(msg) < ipfixHeaderLen || len(msg) > maxMsgLenForDecoder {
		return errShortMessage
	}
	if v := binary.BigEndian.Uint16(msg[0:2]); v != ipfixVersion {
		return fmt.Errorf("telemetry: unexpected ipfix version %d", v)
	}
	if l := int(binary.BigEndian.Uint16(msg[2:4])); l != len(msg) {
		return fmt.Errorf("telemetry: message length %d != %d", l, len(msg))
	}
	off := ipfixHeaderLen
	for off < len(msg) {
		if off+4 > len(msg) {
			return errShortMessage
		}
		setID := binary.BigEndian.Uint16(msg[off : off+2])
		setLen := int(binary.BigEndian.Uint16(msg[off+2 : off+4]))
		if setLen < 4 || off+setLen > len(msg) {
			return errShortMessage
		}
		body := msg[off+4 : off+setLen]
		switch {
		case setID == TemplateSetID:
			if err := c.parseTemplates(body); err != nil {
				return err
			}
		case setID >= 256:
			if err := c.parseData(setID, body); err != nil {
				return err
			}
		}
		off += setLen
	}
	return nil
}

func (c *Collector) parseTemplates(b []byte) error {
	for len(b) >= 4 {
		tid := binary.BigEndian.Uint16(b[0:2])
		count := int(binary.BigEndian.Uint16(b[2:4]))
		b = b[4:]
		fields := make([]fieldSpec, 0, count)
		for i := 0; i < count; i++ {
			if len(b) < 4 {
				return errShortMessage
			}
			f := fieldSpec{
				id:  binary.BigEndian.Uint16(b[0:2]),
				len: binary.BigEndian.Uint16(b[2:4]),
			}
			b = b[4:]
			if f.id&enterpriseBit != 0 {
				if len(b) < 4 {
					return errShortMessage
				}
				f.pen = binary.BigEndian.Uint32(b[0:4])
				b = b[4:]
			}
			fields = append(fields, f)
		}
		c.templates[tid] = fields
	}
	return nil
}

// parseData decodes a data set against its (previously seen) template.
func (c *Collector) parseData(tid uint16, b []byte) error {
	fields, ok := c.templates[tid]
	if !ok {
		return fmt.Errorf("telemetry: data set %d without template", tid)
	}
	recLen := 0
	for _, f := range fields {
		recLen += int(f.len)
	}
	if recLen == 0 {
		return errShortMessage
	}
	for len(b) >= recLen {
		rec := b[:recLen]
		b = b[recLen:]
		c.foldRecord(tid, fields, rec)
	}
	return nil
}

// foldRecord interprets one data record's fields by IE id and folds it
// into the flow (or sample) totals. Unknown IEs are skipped by length,
// so the collector tolerates richer templates.
func (c *Collector) foldRecord(tid uint16, fields []fieldSpec, rec []byte) {
	var f CollectedFlow
	off := 0
	for _, fs := range fields {
		v := rec[off : off+int(fs.len)]
		off += int(fs.len)
		if fs.pen == ReversePEN {
			switch fs.id &^ enterpriseBit {
			case ieOctetDeltaCount:
				f.RevBytes = binary.BigEndian.Uint64(v)
			case iePacketDeltaCount:
				f.RevPackets = binary.BigEndian.Uint64(v)
			}
			continue
		}
		if fs.pen != 0 {
			continue
		}
		switch fs.id {
		case ieSourceMac:
			copy(f.Key.EthSrc[:], v)
		case ieDestinationMac:
			copy(f.Key.EthDst[:], v)
		case ieEthernetType:
			f.Key.EthType = binary.BigEndian.Uint16(v)
		case ieVlanID:
			f.Key.VLANID = binary.BigEndian.Uint16(v)
		case ieSrcIPv4:
			copy(f.Key.IPSrc[:], v)
		case ieDstIPv4:
			copy(f.Key.IPDst[:], v)
		case ieProtocol:
			f.Key.Proto = v[0]
		case ieSrcPort:
			f.Key.L4Src = binary.BigEndian.Uint16(v)
		case ieDstPort:
			f.Key.L4Dst = binary.BigEndian.Uint16(v)
		case ieIngressInterface:
			f.Key.InPort = binary.BigEndian.Uint32(v)
		case ieEgressInterface:
			f.OutPort = binary.BigEndian.Uint32(v)
		case ieOctetDeltaCount:
			f.Bytes = binary.BigEndian.Uint64(v)
		case iePacketDeltaCount:
			f.Packets = binary.BigEndian.Uint64(v)
		case ieFlowStartMillis:
			f.FirstMs = binary.BigEndian.Uint64(v)
		case ieFlowEndMillis:
			f.LastMs = binary.BigEndian.Uint64(v)
		case ieFlowEndReason:
			f.EndReason = v[0]
		}
	}
	if tid == SampleTemplateID {
		c.samples++
		c.sampleByte += f.Bytes
		return
	}
	c.records++
	c.totalPackets += f.Packets + f.RevPackets
	c.totalBytes += f.Bytes + f.RevBytes
	acc := c.flows[f.Key]
	if acc == nil {
		if c.maxFlows > 0 && len(c.flows) >= c.maxFlows {
			for victim := range c.flows {
				delete(c.flows, victim)
				break
			}
		}
		acc = &CollectedFlow{Key: f.Key, FirstMs: f.FirstMs}
		c.flows[f.Key] = acc
	}
	acc.Packets += f.Packets
	acc.Bytes += f.Bytes
	acc.RevPackets += f.RevPackets
	acc.RevBytes += f.RevBytes
	if f.FirstMs != 0 && (acc.FirstMs == 0 || f.FirstMs < acc.FirstMs) {
		acc.FirstMs = f.FirstMs
	}
	if f.LastMs > acc.LastMs {
		acc.LastMs = f.LastMs
	}
	if f.OutPort != 0 {
		acc.OutPort = f.OutPort
	}
	acc.EndReason = f.EndReason
	acc.Records++
}

// Totals returns the (packets, bytes) sums over every exported flow
// record, forward plus reverse — the figure that must match the
// datapath counters exactly once everything is flushed.
func (c *Collector) Totals() (packets, bytes uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalPackets, c.totalBytes
}

// Stats returns (messages, flow records, samples, decode errors).
func (c *Collector) Stats() (messages, records, samples, errs uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.messages, c.records, c.samples, c.decodeErrs
}

// SampleBytes returns the byte sum over received packet samples.
func (c *Collector) SampleBytes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sampleByte
}

// Flows returns the accumulated flows sorted by total bytes
// (forward + reverse) descending.
func (c *Collector) Flows() []CollectedFlow {
	c.mu.Lock()
	out := make([]CollectedFlow, 0, len(c.flows))
	for _, f := range c.flows {
		out = append(out, *f)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		bi, bj := out[i].Bytes+out[i].RevBytes, out[j].Bytes+out[j].RevBytes
		if bi != bj {
			return bi > bj
		}
		return out[i].Key.String() < out[j].Key.String()
	})
	return out
}

// Top returns the n biggest flows by total bytes.
func (c *Collector) Top(n int) []CollectedFlow {
	fl := c.Flows()
	if len(fl) > n {
		fl = fl[:n]
	}
	return fl
}

// Reset drops all accumulated flows and counters (templates are kept).
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flows = make(map[FlowKey]*CollectedFlow)
	c.messages, c.records, c.samples, c.decodeErrs = 0, 0, 0, 0
	c.totalPackets, c.totalBytes, c.sampleByte = 0, 0, 0
}

// ServeUDP reads exported messages from pc and consumes them until the
// socket is closed — the receive loop of cmd/flowtop. Decode errors
// are counted, not fatal.
func (c *Collector) ServeUDP(pc net.PacketConn) error {
	buf := make([]byte, 1<<16)
	for {
		n, _, err := pc.ReadFrom(buf)
		if err != nil {
			return err
		}
		msg := make([]byte, n)
		copy(msg, buf[:n])
		c.Consume(msg) //nolint:errcheck // counted in decodeErrs
	}
}
