package pkt

import (
	"encoding/binary"
	"fmt"
)

// Key is the set of OpenFlow-matchable header fields extracted from a
// frame in one pass. It is a comparable value type so it can serve
// directly as the key of an exact-match fast-path map (the ESwitch-style
// specialization in internal/flowtable relies on this).
//
// Fields that are not present in the frame are left at their zero
// values and the corresponding Valid* bit is cleared.
type Key struct {
	InPort uint32 // filled in by the datapath, 0 = unset

	EthDst  MAC
	EthSrc  MAC
	EthType uint16 // EtherType after any VLAN tags

	HasVLAN bool
	VLANID  uint16 // 12-bit VID of the outermost tag
	VLANPCP uint8

	HasIPv4 bool
	IPProto uint8
	IPSrc   IPv4
	IPDst   IPv4
	IPTOS   uint8

	HasIPv6 bool // IPv6 parsed for proto only; addresses not matched

	HasARP bool
	ARPOp  uint16
	ARPSPA IPv4
	ARPTPA IPv4

	HasL4 bool
	L4Src uint16
	L4Dst uint16

	HasICMP  bool
	ICMPType uint8
	ICMPCode uint8
}

// ExtractKey parses frame headers into k without allocating. It returns
// an error only for frames too short to carry an Ethernet header;
// deeper truncation simply leaves the affected fields unset, matching
// how a hardware parser degrades.
func ExtractKey(frame []byte, inPort uint32, k *Key) error {
	*k = Key{InPort: inPort}
	if len(frame) < EthernetHeaderLen {
		return errTruncated(LayerTypeEthernet)
	}
	copy(k.EthDst[:], frame[0:6])
	copy(k.EthSrc[:], frame[6:12])
	et := binary.BigEndian.Uint16(frame[12:14])
	off := EthernetHeaderLen
	// Walk VLAN tags; record the outermost, skip inner ones.
	for et == EtherTypeDot1Q || et == EtherTypeQinQ {
		if len(frame) < off+Dot1QHeaderLen {
			return nil
		}
		tci := binary.BigEndian.Uint16(frame[off : off+2])
		if !k.HasVLAN {
			k.HasVLAN = true
			k.VLANID = tci & 0x0fff
			k.VLANPCP = uint8(tci >> 13)
		}
		et = binary.BigEndian.Uint16(frame[off+2 : off+4])
		off += Dot1QHeaderLen
	}
	k.EthType = et
	switch et {
	case EtherTypeIPv4:
		extractIPv4Key(frame[off:], k)
	case EtherTypeIPv6:
		extractIPv6Key(frame[off:], k)
	case EtherTypeARP:
		extractARPKey(frame[off:], k)
	}
	return nil
}

func extractIPv4Key(b []byte, k *Key) {
	if len(b) < IPv4MinHeaderLen || b[0]>>4 != 4 {
		return
	}
	ihl := int(b[0]&0xf) * 4
	if ihl < IPv4MinHeaderLen || len(b) < ihl {
		return
	}
	k.HasIPv4 = true
	k.IPTOS = b[1]
	k.IPProto = b[9]
	copy(k.IPSrc[:], b[12:16])
	copy(k.IPDst[:], b[16:20])
	fragOff := binary.BigEndian.Uint16(b[6:8]) & 0x1fff
	if fragOff != 0 {
		return // non-first fragment: no L4 header
	}
	l4 := b[ihl:]
	switch k.IPProto {
	case IPProtoTCP, IPProtoUDP:
		if len(l4) >= 4 {
			k.HasL4 = true
			k.L4Src = binary.BigEndian.Uint16(l4[0:2])
			k.L4Dst = binary.BigEndian.Uint16(l4[2:4])
		}
	case IPProtoICMP:
		if len(l4) >= 2 {
			k.HasICMP = true
			k.ICMPType = l4[0]
			k.ICMPCode = l4[1]
		}
	}
}

func extractIPv6Key(b []byte, k *Key) {
	if len(b) < IPv6HeaderLen || b[0]>>4 != 6 {
		return
	}
	k.HasIPv6 = true
	k.IPProto = b[6]
	l4 := b[IPv6HeaderLen:]
	switch k.IPProto {
	case IPProtoTCP, IPProtoUDP:
		if len(l4) >= 4 {
			k.HasL4 = true
			k.L4Src = binary.BigEndian.Uint16(l4[0:2])
			k.L4Dst = binary.BigEndian.Uint16(l4[2:4])
		}
	}
}

func extractARPKey(b []byte, k *Key) {
	if len(b) < ARPHeaderLen {
		return
	}
	k.HasARP = true
	k.ARPOp = binary.BigEndian.Uint16(b[6:8])
	copy(k.ARPSPA[:], b[14:18])
	copy(k.ARPTPA[:], b[24:28])
}

// Hash returns a well-mixed 64-bit hash of the key, cheap enough to
// call per packet. The softswitch microflow cache uses it to pick a
// shard; flow-affinity hashing (group SELECT buckets) has its own hash
// in internal/flowtable. Only the fields that commonly differ between
// flows are mixed in — two keys that collide here still compare
// unequal, so collisions only cost a shared shard, never a wrong hit.
func (k *Key) Hash() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix32 := func(v uint32) {
		h = (h ^ uint64(v)) * prime
	}
	mix32(k.InPort)
	mix32(binary.BigEndian.Uint32(k.EthDst[0:4]))
	mix32(uint32(k.EthDst[4])<<8 | uint32(k.EthDst[5]))
	mix32(binary.BigEndian.Uint32(k.EthSrc[0:4]))
	mix32(uint32(k.EthSrc[4])<<8 | uint32(k.EthSrc[5]))
	mix32(uint32(k.EthType)<<16 | uint32(k.VLANID))
	mix32(binary.BigEndian.Uint32(k.IPSrc[:]))
	mix32(binary.BigEndian.Uint32(k.IPDst[:]))
	mix32(uint32(k.IPProto)<<16 | uint32(k.ICMPType)<<8 | uint32(k.ICMPCode))
	mix32(uint32(k.L4Src)<<16 | uint32(k.L4Dst))
	mix32(binary.BigEndian.Uint32(k.ARPSPA[:]) ^ binary.BigEndian.Uint32(k.ARPTPA[:]))
	// Finish with a splitmix64-style scrambler so the low bits (used
	// for shard selection) avalanche properly.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// String summarizes the key for diagnostics.
func (k *Key) String() string {
	s := fmt.Sprintf("in=%d %s>%s 0x%04x", k.InPort, k.EthSrc, k.EthDst, k.EthType)
	if k.HasVLAN {
		s += fmt.Sprintf(" vlan=%d", k.VLANID)
	}
	if k.HasIPv4 {
		s += fmt.Sprintf(" %s>%s proto=%d", k.IPSrc, k.IPDst, k.IPProto)
	}
	if k.HasL4 {
		s += fmt.Sprintf(" %d>%d", k.L4Src, k.L4Dst)
	}
	return s
}
