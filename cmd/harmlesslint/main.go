// Command harmlesslint runs the repo's custom static analyzers over
// the given package patterns (default ./...).
//
// Output formats:
//
//	(default)   file:line:col: analyzer: message
//	-json       a JSON report {tool, findings: [...]} on stdout
//	-github     GitHub Actions workflow commands (::error ...) that
//	            render as inline annotations on the PR diff
//	-out FILE   additionally write the JSON report to FILE, whatever
//	            the stdout format — CI uploads it as an artifact
//
// Baseline workflow:
//
//	-baseline FILE        suppress the findings recorded in FILE; a
//	                      recorded finding that no longer fires is
//	                      *stale* and fails the run, so the baseline
//	                      can only shrink honestly
//	-write-baseline FILE  write the current findings to FILE and exit
//	                      (the `make lint-baseline` target)
//
// Exit status: 0 when clean, 1 on new or stale findings, 2 when
// packages failed to load or typecheck.
//
// The passes encode invariants the compiler cannot see — clock
// injection, zero-alloc hot paths, shard/lock ownership, frame buffer
// ownership, map-iteration-order-free output, module-wide atomic
// discipline, and no dropped errors on teardown paths; see
// internal/analysis and DESIGN.md. Findings are suppressed only with
// an explained //harmless: directive, and the analyzers themselves
// flag unexplained or unused directives, so a clean run means every
// suppression in the tree carries a reason.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/harmless-sdn/harmless/internal/analysis"
	"github.com/harmless-sdn/harmless/internal/analysis/atomicmix"
	"github.com/harmless-sdn/harmless/internal/analysis/clockinject"
	"github.com/harmless-sdn/harmless/internal/analysis/detorder"
	"github.com/harmless-sdn/harmless/internal/analysis/errdrop"
	"github.com/harmless-sdn/harmless/internal/analysis/frameown"
	"github.com/harmless-sdn/harmless/internal/analysis/hotpathalloc"
	"github.com/harmless-sdn/harmless/internal/analysis/shardlock"
)

// report is the JSON document -json and -out emit.
type report struct {
	Tool     string                   `json:"tool"`
	Findings []finding                `json:"findings"`
	Stale    []analysis.BaselineEntry `json:"stale_baseline_entries,omitempty"`
}

// finding is one diagnostic in the JSON report.
type finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	fs := flag.NewFlagSet("harmlesslint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "print the JSON report on stdout")
	github := fs.Bool("github", false, "print GitHub Actions ::error annotations")
	outFile := fs.String("out", "", "also write the JSON report to this file")
	baselineFile := fs.String("baseline", "", "suppress findings recorded in this baseline; fail on stale entries")
	writeBaseline := fs.String("write-baseline", "", "write current findings as a baseline to this file and exit")
	fs.Parse(os.Args[1:])

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := []*analysis.Analyzer{
		clockinject.Analyzer,
		hotpathalloc.Analyzer,
		shardlock.Analyzer,
		frameown.Analyzer,
		detorder.Analyzer,
		atomicmix.Analyzer,
		errdrop.Analyzer,
	}

	dir, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.Analyze(dir, patterns, analyzers)
	if err != nil {
		fatal(err)
	}

	if *writeBaseline != "" {
		b := analysis.NewBaseline(diags)
		if err := b.Save(*writeBaseline); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "harmlesslint: wrote %d entr%s to %s\n",
			len(b.Entries), plural(len(b.Entries), "y", "ies"), *writeBaseline)
		return
	}

	var stale []analysis.BaselineEntry
	if *baselineFile != "" {
		b, err := analysis.LoadBaseline(*baselineFile)
		if err != nil {
			fatal(err)
		}
		diags, stale = b.Apply(diags)
	}

	rep := report{Tool: "harmlesslint", Findings: []finding{}, Stale: stale}
	for _, d := range diags {
		rep.Findings = append(rep.Findings, finding{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	if *outFile != "" {
		if err := writeJSON(*outFile, rep); err != nil {
			fatal(err)
		}
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	case *github:
		for _, d := range diags {
			fmt.Printf("::error file=%s,line=%d,col=%d,title=harmlesslint/%s::%s\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, escapeWorkflow(d.Message))
		}
		for _, e := range stale {
			fmt.Printf("::error file=%s,line=%d,title=harmlesslint/baseline::stale baseline entry (%s: %s) no longer fires; delete it from the baseline\n",
				e.File, e.Line, e.Analyzer, escapeWorkflow(e.Message))
		}
	default:
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
		for _, e := range stale {
			fmt.Printf("%s:%d: %s: stale baseline entry (%s) no longer fires; delete it\n",
				e.File, e.Line, e.Analyzer, e.Message)
		}
	}

	if n := len(diags) + len(stale); n > 0 {
		fmt.Fprintf(os.Stderr, "harmlesslint: %d finding(s)", len(diags))
		if len(stale) > 0 {
			fmt.Fprintf(os.Stderr, ", %d stale baseline entr%s", len(stale), plural(len(stale), "y", "ies"))
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(1)
	}
}

func writeJSON(path string, rep report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(io.Writer(f))
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// escapeWorkflow escapes the characters GitHub's workflow-command
// parser treats specially in the message position.
func escapeWorkflow(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "harmlesslint: %v\n", err)
	os.Exit(2)
}
