// Command harmlessd brings up a complete emulated HARMLESS deployment:
// an emulated legacy Ethernet switch with hosts, the HARMLESS-S4 group
// node, and management endpoints on real sockets:
//
//   - the legacy switch's vendor CLI on -cli-listen (telnet-style),
//   - its SNMP agent on -snmp-listen (SNMPv2c, community "public"),
//   - SS_2's OpenFlow channels towards -controllers (comma-separated
//     endpoints, each dialed actively with exponential-backoff redial
//     and served concurrently under OF1.3 role arbitration), and/or a
//     passive listener on -of-listen controllers can connect to; with
//     neither, an in-process learning controller attaches.
//
// With -oneshot the daemon verifies end-to-end connectivity through
// the migrated switch (hosts ping each other), prints the evidence,
// and exits — the demo of the paper in one command.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"github.com/harmless-sdn/harmless/internal/controller"
	"github.com/harmless-sdn/harmless/internal/controller/apps"
	"github.com/harmless-sdn/harmless/internal/controlplane"
	"github.com/harmless-sdn/harmless/internal/fabric"
	"github.com/harmless-sdn/harmless/internal/harmless"
	"github.com/harmless-sdn/harmless/internal/legacy"
	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/snmp"
	ssruntime "github.com/harmless-sdn/harmless/internal/softswitch/runtime"
	"github.com/harmless-sdn/harmless/internal/telemetry"
)

func main() {
	ports := flag.Int("ports", 8, "legacy switch port count (highest port becomes the trunk)")
	dialectName := flag.String("dialect", "ciscoish", "legacy CLI dialect: ciscoish|aristaish")
	cliListen := flag.String("cli-listen", "", "expose the legacy switch CLI on this TCP address (empty = off)")
	snmpListen := flag.String("snmp-listen", "", "expose the legacy switch SNMP agent on this UDP address (empty = off)")
	controllerAddr := flag.String("controller", "", "one more external OpenFlow controller address (legacy flag, merged with -controllers)")
	controllersFlag := flag.String("controllers", "", "comma-separated external OpenFlow controller addresses, e.g. host1:6653,host2:6653 (empty = in-process learning switch)")
	ofListen := flag.String("of-listen", "", "accept OpenFlow controller connections on this TCP address (passive mode, e.g. for ofctl dialing in)")
	oneshot := flag.Bool("oneshot", false, "run the connectivity demo and exit")
	statsEvery := flag.Duration("stats", 10*time.Second, "status print interval (0 = off)")
	asyncLinks := flag.Bool("async-links", false, "queued (async) netem links with vectored rx delivery instead of synchronous in-line calls")
	rxBatch := flag.Int("rx-batch", 64, "max frames one async link wakeup coalesces into a single batch delivery")
	workers := flag.Int("workers", 0, "poll-mode workers draining SS_1's trunk ingress with RSS flow sharding (0 = deliver inline on the caller thread)")
	telemetryExport := flag.String("telemetry-export", "", "export IPFIX-style flow records to this UDP collector (e.g. the cmd/flowtop listener; empty = no wire export)")
	sampleRate := flag.Int("sample-rate", 64, "sFlow-style 1-in-N packet sampling on the telemetry plane (0 = off)")
	httpListen := flag.String("http", "", "serve the live telemetry endpoints (/flows, /stats) on this address (empty = off)")
	flag.Parse()

	dialect := legacy.DialectCiscoish
	if *dialectName == "aristaish" {
		dialect = legacy.DialectAristaish
	}

	// Collect the external controller endpoints: the -controllers list
	// merged with the legacy single-address -controller flag.
	var ctrlAddrs []string
	for _, a := range strings.Split(*controllersFlag+","+*controllerAddr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			ctrlAddrs = append(ctrlAddrs, a)
		}
	}

	cfg := fabric.DeployConfig{
		NumPorts: *ports,
		Dialect:  dialect,
		LinkConfig: netem.LinkConfig{
			Async:   *asyncLinks,
			RxBatch: *rxBatch,
		},
	}
	// Channel lifecycle diagnostics (dial failures, backoff, dead
	// peers) go to stderr — a daemon silently redialing a typoed
	// controller address forever would be undebuggable.
	cpCfg := controlplane.Config{Logger: log.New(os.Stderr, "harmlessd: ", log.LstdFlags)}
	if len(ctrlAddrs) > 0 || *ofListen != "" {
		cfg.SweepInterval = time.Second
		cfg.ControlPlane = cpCfg
	}
	for _, a := range ctrlAddrs {
		cfg.Controllers = append(cfg.Controllers, controlplane.Endpoint{Addr: a})
	}
	if len(ctrlAddrs) == 0 && *ofListen == "" {
		cfg.Apps = []controller.App{&apps.Learning{Table: 0}}
	}
	d, err := fabric.BuildDeployment(cfg)
	if err != nil {
		fatal("deploy: %v", err)
	}
	defer d.Close()

	if len(ctrlAddrs) > 0 {
		fmt.Printf("harmlessd: SS_2 dialing controllers %v (backoff redial, role arbitration)\n", ctrlAddrs)
	}
	if *ofListen != "" {
		l, err := net.Listen("tcp", *ofListen)
		if err != nil {
			fatal("of-listen: %v", err)
		}
		defer l.Close()
		if d.S4.Agent() == nil {
			d.S4.ConnectControllers(nil, cpCfg, time.Second)
		}
		d.S4.Agent().Listen(l)
		fmt.Printf("harmlessd: SS_2 accepting OpenFlow controllers on %s\n", l.Addr())
	}
	if len(ctrlAddrs) == 0 && *ofListen == "" {
		if err := d.WaitConnected(5 * time.Second); err != nil {
			fatal("in-process controller: %v", err)
		}
		fmt.Println("harmlessd: in-process learning controller attached")
	}

	// Management endpoints.
	if *cliListen != "" {
		l, err := net.Listen("tcp", *cliListen)
		if err != nil {
			fatal("cli listen: %v", err)
		}
		defer l.Close()
		go d.CLI.Serve(l) //nolint:errcheck
		fmt.Printf("harmlessd: legacy CLI (%s) on %s\n", dialect, l.Addr())
	}
	if *snmpListen != "" {
		pc, err := net.ListenPacket("udp", *snmpListen)
		if err != nil {
			fatal("snmp listen: %v", err)
		}
		defer pc.Close()
		mib := snmp.NewMIB()
		legacy.BindMIB(d.Legacy, mib, dialect)
		go snmp.NewAgent(mib, "public").Serve(pc) //nolint:errcheck
		fmt.Printf("harmlessd: SNMP agent on %s (community public)\n", pc.LocalAddr())
	}

	plan := d.Manager.Plan()
	fmt.Printf("harmlessd: migrated %q: trunk=%d ports=%v vlans=%v\n",
		plan.Hostname, plan.TrunkPort, plan.MigratedPorts(), plan.TrunkVLANs())

	// Flow telemetry: attach the telemetry plane to SS_1 (the switch
	// every migrated frame crosses) when any telemetry output — wire
	// export or the HTTP live view — is requested.
	var tel *telemetry.Table
	var agg *telemetry.Aggregator
	telCol := telemetry.NewCollector()
	if *telemetryExport != "" || *httpListen != "" {
		shards := 1
		if *workers > 0 {
			shards = *workers
		}
		tel = telemetry.NewTable(telemetry.Config{
			Shards:     shards,
			SampleRate: *sampleRate,
		})
		// The in-process collector only accumulates when something
		// reads it (the /stats view) — and bounded, so an unattended
		// daemon under endless flow churn cannot grow without limit.
		var exps telemetry.TeeExporter
		if *httpListen != "" {
			telCol.SetMaxFlows(1 << 16)
			exps = append(exps, telCol)
		}
		if *telemetryExport != "" {
			udp, err := telemetry.NewUDPExporter(*telemetryExport)
			if err != nil {
				fatal("telemetry-export: %v", err)
			}
			defer udp.Close()
			exps = append(exps, udp)
			fmt.Printf("harmlessd: exporting flow records to udp://%s (sample 1/%d)\n", *telemetryExport, *sampleRate)
		}
		var exp telemetry.Exporter = exps
		if len(exps) == 1 {
			exp = exps[0]
		}
		agg = telemetry.NewAggregator(tel, exp, time.Second)
		agg.Start()
		defer agg.Stop()
		d.S4.SS1.SetTelemetry(tel)
		// Keep the timers moving even when the datapath is quiet and
		// no worker pool is doing it on its idle path.
		sweep := time.NewTicker(time.Second)
		defer sweep.Stop()
		go func() {
			for range sweep.C {
				tel.Sweep(time.Now().UnixNano())
			}
		}()
		defer func() {
			tel.FlushAll(time.Now().UnixNano())
			agg.Flush()
		}()
	}

	// Poll-mode workers: interpose the RSS-sharded worker pool between
	// the trunk link and SS_1, so trunk rx is dispatched by flow hash
	// to N run-to-completion workers instead of running inline on the
	// link's delivery goroutine.
	var pool *ssruntime.Pool
	if *workers > 0 {
		pool = ssruntime.New(d.S4.SS1, ssruntime.Config{Workers: *workers, Telemetry: tel})
		pool.Start()
		defer pool.Stop()
		trunk := d.TrunkLink.B()
		trunk.SetReceiver(func(frame []byte) { pool.Dispatch(harmless.SS1TrunkPort, frame) })
		trunk.SetBatchReceiver(func(frames [][]byte) { pool.DispatchBatch(harmless.SS1TrunkPort, frames) })
		fmt.Printf("harmlessd: %d poll-mode workers on SS_1 trunk ingress\n", pool.Workers())
	}

	// Live observability endpoints: /flows (top talkers of the live
	// record table) and /stats (telemetry + datapath + worker state).
	if *httpListen != "" {
		l, err := net.Listen("tcp", *httpListen)
		if err != nil {
			fatal("http listen: %v", err)
		}
		defer l.Close()
		mux := telemetry.NewMux(tel, agg, func() map[string]any {
			extra := map[string]any{
				"ss1_cache":       d.S4.SS1.CacheStats().String(),
				"ss1_cache_tiers": d.S4.SS1.CacheTierStats(),
				"ss1_flows":       d.S4.SS1.CacheLen(),
				"ss2_cache":       d.S4.SS2.CacheStats().String(),
				"ss2_cache_tiers": d.S4.SS2.CacheTierStats(),
				"packet_ins":      d.S4.SS2.PacketIns(),
			}
			pkts, bytes := telCol.Totals()
			extra["exported_totals"] = map[string]uint64{"packets": pkts, "bytes": bytes}
			if pool != nil {
				st := pool.Stats()
				extra["workers"] = map[string]uint64{
					"frames": st.Frames, "bytes": st.Bytes, "batches": st.Batches,
					"cache_hits": st.CacheHits, "slow_path": st.SlowPath,
					"dropped": st.Dropped, "rx_drops": st.RxDrops,
				}
			}
			return extra
		})
		srv := &http.Server{Handler: mux}
		go srv.Serve(l) //nolint:errcheck
		defer srv.Close()
		fmt.Printf("harmlessd: telemetry endpoints on http://%s/flows and /stats\n", l.Addr())
	}

	if *oneshot {
		runDemo(d)
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	var tick <-chan time.Time
	if *statsEvery > 0 {
		t := time.NewTicker(*statsEvery)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-sig:
			fmt.Println("harmlessd: shutting down")
			return
		case <-tick:
			printStatus(d)
			printWorkers(pool)
			printTelemetry(tel, agg)
		}
	}
}

// printWorkers renders the pool aggregate plus the per-worker shards,
// so skew across workers (bad sharding, elephant flows) is visible.
func printWorkers(pool *ssruntime.Pool) {
	if pool == nil {
		return
	}
	st := pool.Stats()
	fmt.Printf("status: workers=%d frames=%d bytes=%d batches=%d hits=%d slow=%d drop=%d rxdrop=%d\n",
		pool.Workers(), st.Frames, st.Bytes, st.Batches,
		st.CacheHits, st.SlowPath, st.Dropped, st.RxDrops)
	for i := 0; i < pool.Workers(); i++ {
		ws := pool.WorkerStats(i)
		fmt.Printf("status:   worker %d: frames=%d batches=%d hits=%d slow=%d\n",
			i, ws.Frames, ws.Batches, ws.CacheHits, ws.SlowPath)
	}
}

// printTelemetry renders the telemetry-plane line of the status loop.
func printTelemetry(tel *telemetry.Table, agg *telemetry.Aggregator) {
	if tel == nil {
		return
	}
	as := agg.Stats()
	fmt.Printf("status: telemetry live=%d %s | exported=%d biflows=%d samples=%d msgs=%d errs=%d\n",
		tel.Len(), tel.Counters(),
		as.FlowRecords, as.Biflows, as.Samples, as.Messages, as.ExportErrors)
}

// runDemo proves end-to-end connectivity through the HARMLESS chain.
func runDemo(d *fabric.Deployment) {
	fmt.Println("harmlessd: oneshot demo — pinging across all migrated ports")
	ok := true
	hostPorts := make([]int, 0, len(d.Hosts))
	for p := range d.Hosts {
		hostPorts = append(hostPorts, p)
	}
	sort.Ints(hostPorts)
	for _, a := range hostPorts {
		for _, b := range hostPorts {
			if a >= b {
				continue
			}
			err := d.Hosts[a].Ping(fabric.HostIP(b), 3*time.Second)
			status := "ok"
			if err != nil {
				status = err.Error()
				ok = false
			}
			fmt.Printf("  h%d -> h%d: %s\n", a, b, status)
		}
	}
	printStatus(d)
	if !ok {
		os.Exit(1)
	}
	fmt.Println("harmlessd: demo PASSED — legacy switch is OpenFlow-controlled")
}

func printStatus(d *fabric.Deployment) {
	lookups0, matched0 := d.S4.SS2.Table(0).Stats()
	fmt.Printf("status: SS_1 trunk rx=%d tx=%d | SS_2 table0 lookups=%d matched=%d pktins=%d drops=%d\n",
		d.S4.SS1.PortCounters(1).RxPackets.Load(),
		d.S4.SS1.PortCounters(1).TxPackets.Load(),
		lookups0, matched0, d.S4.SS2.PacketIns(), d.S4.SS2.Drops())
	if c1, c2 := d.S4.SS1.CacheStats(), d.S4.SS2.CacheStats(); c1 != nil && c2 != nil {
		fmt.Printf("status: microflow cache SS_1 %s (%d flows) | SS_2 %s (%d flows)\n",
			c1, d.S4.SS1.CacheLen(), c2, d.S4.SS2.CacheLen())
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "harmlessd: "+format+"\n", args...)
	os.Exit(1)
}
