package softswitch

import (
	"io"
	"time"

	"github.com/harmless-sdn/harmless/internal/flowtable"
	"github.com/harmless-sdn/harmless/internal/openflow"
)

// Agent is the switch side of the OpenFlow channel: it answers the
// handshake, applies controller messages to the datapath, and carries
// asynchronous events (packet-in, flow-removed, port-status) upstream.
type Agent struct {
	sw   *Switch
	conn *openflow.Conn
	done chan struct{}
}

// StartAgent connects the switch to a controller over rw and serves
// the channel until the transport fails or Stop is called. A periodic
// flow-expiry sweep runs while the agent is up (sweepInterval <= 0
// disables it; tests with manual clocks call SweepExpired directly).
func (s *Switch) StartAgent(rw io.ReadWriteCloser, sweepInterval time.Duration) *Agent {
	a := &Agent{sw: s, conn: openflow.NewConn(rw), done: make(chan struct{})}
	s.agentMu.Lock()
	s.agent = a
	s.agentMu.Unlock()
	go a.serve()
	if sweepInterval > 0 {
		go a.sweeper(sweepInterval)
	}
	return a
}

// Stop tears the channel down.
func (a *Agent) Stop() {
	select {
	case <-a.done:
	default:
		close(a.done)
	}
	a.conn.Close()
	a.sw.agentMu.Lock()
	if a.sw.agent == a {
		a.sw.agent = nil
	}
	a.sw.agentMu.Unlock()
}

// Done is closed when the agent terminates.
func (a *Agent) Done() <-chan struct{} { return a.done }

func (a *Agent) sweeper(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-a.done:
			return
		case <-t.C:
			a.sw.SweepExpired()
		}
	}
}

func (a *Agent) serve() {
	defer a.Stop()
	// Both sides open with HELLO.
	if err := a.conn.Send(&openflow.Hello{}); err != nil {
		return
	}
	for {
		m, err := a.conn.Recv()
		if err != nil {
			return
		}
		a.handle(m)
	}
}

// handle dispatches one controller message.
func (a *Agent) handle(m openflow.Message) {
	switch t := m.(type) {
	case *openflow.Hello:
		// Version negotiation done (we only speak 1.3).
	case *openflow.EchoRequest:
		a.reply(m, &openflow.EchoReply{Data: t.Data})
	case *openflow.FeaturesRequest:
		a.reply(m, &openflow.FeaturesReply{
			DatapathID:   a.sw.dpid,
			NBuffers:     a.sw.buffers.size,
			NTables:      uint8(len(a.sw.tables)),
			Capabilities: openflow.CapFlowStats | openflow.CapTableStats | openflow.CapPortStats | openflow.CapGroupStats,
		})
	case *openflow.FlowMod:
		removed, err := a.sw.ApplyFlowMod(t)
		if err != nil {
			a.sendError(m, openflow.ErrTypeFlowModFailed, flowModErrCode(err))
			return
		}
		for _, r := range removed {
			a.sendFlowRemoved(r)
		}
		// A flow-mod referencing a buffered packet releases it through
		// the new state.
		if t.BufferID != openflow.NoBuffer && t.Command == openflow.FlowAdd {
			if frame, ok := a.sw.buffers.take(t.BufferID); ok {
				if inPort := t.Match.Get(openflow.OXMInPort); inPort != nil {
					a.sw.Receive(uint32(inPort.Value[0])<<24|uint32(inPort.Value[1])<<16|
						uint32(inPort.Value[2])<<8|uint32(inPort.Value[3]), frame)
				}
			}
		}
	case *openflow.GroupMod:
		if err := a.sw.groups.Apply(t); err != nil {
			a.sendError(m, openflow.ErrTypeGroupModFailed, 0)
		}
	case *openflow.MeterMod:
		if err := a.sw.meters.Apply(t); err != nil {
			a.sendError(m, openflow.ErrTypeMeterModFailed, 0)
		}
	case *openflow.PacketOut:
		a.sw.InjectPacketOut(t)
	case *openflow.BarrierRequest:
		// The datapath applies messages synchronously, so a barrier
		// needs no draining.
		a.reply(m, &openflow.BarrierReply{})
	case *openflow.MultipartRequest:
		a.handleMultipart(t)
	}
}

func flowModErrCode(err error) uint16 {
	if err == flowtable.ErrTableFull {
		return openflow.FlowModFailedTableFull
	}
	return openflow.FlowModFailedUnknown
}

func (a *Agent) handleMultipart(req *openflow.MultipartRequest) {
	reply := &openflow.MultipartReply{MPType: req.MPType}
	switch req.MPType {
	case openflow.MultipartDesc:
		reply.Desc = &openflow.SwitchDesc{
			Manufacturer: "HARMLESS project",
			Hardware:     "emulated datapath",
			Software:     "softswitch/0.1 (ESwitch-style)",
			SerialNum:    a.sw.name,
			Datapath:     a.sw.name,
		}
	case openflow.MultipartFlow:
		tid := openflow.TableAll
		if req.Flow != nil {
			tid = req.Flow.TableID
		}
		reply.Flows = a.sw.FlowStats(tid)
	case openflow.MultipartPortStats:
		reply.Ports = a.sw.PortStats()
	case openflow.MultipartTable:
		reply.Tables = a.sw.TableStats()
	case openflow.MultipartPortDesc:
		reply.PortDescs = a.sw.PortDescs()
	default:
		a.sendError(req, openflow.ErrTypeBadRequest, 0)
		return
	}
	a.reply(req, reply)
}

// reply sends a response echoing the request's transaction id.
func (a *Agent) reply(req openflow.Message, resp openflow.Message) {
	resp.SetXID(req.XID())
	_ = a.conn.Send(resp)
}

func (a *Agent) sendError(req openflow.Message, errType, code uint16) {
	data, _ := req.Marshal()
	if len(data) > 64 {
		data = data[:64]
	}
	e := &openflow.Error{ErrType: errType, Code: code, Data: data}
	e.SetXID(req.XID())
	_ = a.conn.Send(e)
}

func (a *Agent) sendPacketIn(pi *openflow.PacketIn) {
	_ = a.conn.Send(pi)
}

func (a *Agent) sendFlowRemoved(r flowtable.Removed) {
	_ = a.conn.Send(&openflow.FlowRemoved{
		Cookie:      r.Entry.Cookie,
		Priority:    r.Entry.Priority,
		Reason:      r.Reason,
		TableID:     r.TableID,
		DurationSec: uint32(r.Duration.Seconds()),
		IdleTimeout: r.Entry.IdleTimeout,
		HardTimeout: r.Entry.HardTimeout,
		PacketCount: r.Entry.Packets(),
		ByteCount:   r.Entry.Bytes(),
		Match:       r.Entry.Match.ToOXM(),
	})
}

func (a *Agent) sendPortStatus(reason uint8, desc openflow.PortDesc) {
	_ = a.conn.Send(&openflow.PortStatus{Reason: reason, Desc: desc})
}
