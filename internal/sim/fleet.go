package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"github.com/harmless-sdn/harmless/internal/fabric"
)

// ConvergenceRecord summarizes one fault's blast radius: how many
// flows it cost and how long losses kept appearing after it hit (the
// scenario's reconvergence window bounds this from above in flow
// mode, so the record doubles as a model self-check).
type ConvergenceRecord struct {
	Kind       string   `json:"kind"`
	Node       string   `json:"node,omitempty"`
	Peer       string   `json:"peer,omitempty"`
	At         Duration `json:"at"`
	FlowsLost  uint64   `json:"flowsLost"`
	LastLossAt Duration `json:"lastLossAt,omitempty"`
	// Convergence is LastLossAt - At: how long the fault kept eating
	// flows. Zero when the fault cost nothing.
	Convergence Duration `json:"convergence"`
}

// Result is a run's verdict: what was offered, what arrived, what the
// faults cost, whether the books balance — plus the reproducibility
// digest. Digest covers every field except WallMS and Digest itself,
// so identical seeds must produce identical digests regardless of
// machine speed.
type Result struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Mode     string `json:"mode"`

	Switches int `json:"switches"`
	Hosts    int `json:"hosts"`
	Links    int `json:"links"`

	OfferedFlows   uint64 `json:"offeredFlows"`
	DeliveredFlows uint64 `json:"deliveredFlows"`
	LostFlows      uint64 `json:"lostFlows"`
	ReroutedFlows  uint64 `json:"reroutedFlows"`

	OfferedPackets   uint64 `json:"offeredPackets"`
	DeliveredPackets uint64 `json:"deliveredPackets"`
	LostPackets      uint64 `json:"lostPackets"`
	DeliveredBytes   uint64 `json:"deliveredBytes"`

	// FailoverDelayed counts flows admitted during a ctrlFailover
	// window: delivered, but charged the failover setup delay (the
	// PR 5 zero-loss failover property, asserted by CounterExact).
	FailoverDelayed uint64 `json:"failoverDelayed"`

	LossRate   float64  `json:"lossRate"`
	MeanHops   float64  `json:"meanHops"`
	MaxLatency Duration `json:"maxLatency"`

	Convergence []ConvergenceRecord `json:"convergence,omitempty"`

	// CounterExact is the conservation verdict: offered == delivered +
	// lost at flow and packet granularity, and every switch's in ==
	// out + drop. Any violation is listed in Failures.
	CounterExact bool     `json:"counterExact"`
	Failures     []string `json:"failures,omitempty"`
	Pass         bool     `json:"pass"`

	Events     uint64   `json:"events"`
	VirtualEnd Duration `json:"virtualEnd"`
	EventHash  string   `json:"eventHash"`

	WallMS int64  `json:"wallMS"` // excluded from Digest
	Digest string `json:"digest"` // excluded from itself
}

// digest computes the canonical run digest: SHA-256 over the verdict's
// JSON with the wall-time and digest fields zeroed.
func (r Result) digest() string {
	r.WallMS = 0
	r.Digest = ""
	b, err := json.Marshal(r)
	if err != nil {
		return "marshal-error"
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// mix64 folds x into a running FNV-1a 64 hash.
func mix64(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * fnvPrime
		x >>= 8
	}
	return h
}

// FleetSim is the flow-level simulator: arrivals from a workload
// stream walk analytic ECMP routes over a generated topology, with
// faults flipping elements down and up on the virtual timeline. No
// per-packet state exists, so thousands of switches and millions of
// flows fit one event loop; counters are exact by construction and the
// conservation checks prove the bookkeeping stayed consistent.
type FleetSim struct {
	eng  *Engine
	topo *fabric.Topology
	sc   Scenario
	wl   fabric.Workload

	linkDown    []bool
	linkFault   []int // fault index that downed the link, -1
	swDown      []bool
	swFault     []int
	downAt      []time.Duration // per fault: when it hit
	reconvEnd   []time.Duration // per fault: downAt + reconvergence
	failoverEnd time.Duration   // latest ctrlFailover window end

	records []ConvergenceRecord

	swIn, swOut, swDrop []uint64
	hostTx, hostRx      []uint64

	res       Result
	hopSum    uint64
	eventHash uint64
	pathBuf   []int
}

// NewFleetSim builds the flow-mode simulator for a validated scenario.
func NewFleetSim(sc Scenario) (*FleetSim, error) {
	sc = sc.withDefaults()
	topo, err := sc.Topology.Build()
	if err != nil {
		return nil, err
	}
	wl, err := sc.Workload.Build(len(topo.HostIDs), sc.Seed)
	if err != nil {
		return nil, err
	}
	s := &FleetSim{
		eng:       NewEngine(sc.Seed),
		topo:      topo,
		sc:        sc,
		wl:        wl,
		linkDown:  make([]bool, len(topo.Links)),
		linkFault: make([]int, len(topo.Links)),
		swDown:    make([]bool, len(topo.Nodes)),
		swFault:   make([]int, len(topo.Nodes)),
		swIn:      make([]uint64, len(topo.Nodes)),
		swOut:     make([]uint64, len(topo.Nodes)),
		swDrop:    make([]uint64, len(topo.Nodes)),
		hostTx:    make([]uint64, len(topo.Nodes)),
		hostRx:    make([]uint64, len(topo.Nodes)),
		eventHash: fnvOffset,
		pathBuf:   make([]int, 0, 8),
	}
	for i := range s.linkFault {
		s.linkFault[i] = -1
	}
	for i := range s.swFault {
		s.swFault[i] = -1
	}
	s.res = Result{
		Scenario: sc.Name,
		Seed:     sc.Seed,
		Mode:     "flow",
		Switches: len(topo.SwitchIDs),
		Hosts:    len(topo.HostIDs),
		Links:    len(topo.Links),
	}
	return s, nil
}

// Run executes the scenario and returns its verdict.
func (s *FleetSim) Run(wallBudget time.Duration) (Result, error) {
	wallStart := time.Now() //harmless:allow-wallclock wall budget and run-report timing, not simulation time
	s.scheduleFaults()
	s.scheduleNextArrival()
	st, err := s.eng.Run(RunOpts{Until: s.sc.Horizon.Duration, WallBudget: wallBudget})
	if err != nil {
		return Result{}, err
	}
	s.finish(st, wallStart)
	return s.res, nil
}

// scheduleFaults registers every fault on the virtual timeline.
func (s *FleetSim) scheduleFaults() {
	s.downAt = make([]time.Duration, len(s.sc.Faults))
	s.reconvEnd = make([]time.Duration, len(s.sc.Faults))
	for i, f := range s.sc.Faults {
		i, f := i, f
		s.records = append(s.records, ConvergenceRecord{
			Kind: f.Kind, Node: f.Node, Peer: f.Peer, At: f.At,
		})
		s.eng.At(f.At.Duration, func() { s.applyFault(i, f) })
	}
}

func (s *FleetSim) applyFault(idx int, f FaultSpec) {
	now := s.eng.Elapsed()
	s.downAt[idx] = now
	s.reconvEnd[idx] = now + s.sc.Reconvergence.Duration
	s.eventHash = mix64(s.eventHash, uint64(now))
	s.eventHash = mix64(s.eventHash, uint64(idx)<<8|faultCode(f.Kind))
	switch f.Kind {
	case FaultLinkDown, FaultLinkUp:
		a, _ := s.topo.NodeByName(f.Node)
		b, _ := s.topo.NodeByName(f.Peer)
		l := s.topo.LinkBetween(a, b)
		if f.Kind == FaultLinkDown {
			s.linkDown[l] = true
			s.linkFault[l] = idx
		} else {
			s.linkDown[l] = false
			s.linkFault[l] = -1
		}
	case FaultSwitchDown, FaultSwitchUp:
		n, _ := s.topo.NodeByName(f.Node)
		if f.Kind == FaultSwitchDown {
			s.swDown[n] = true
			s.swFault[n] = idx
		} else {
			s.swDown[n] = false
			s.swFault[n] = -1
		}
	case FaultCtrlFailover:
		// PR 5's failover machinery: a new master takes over within the
		// reconvergence window; flows admitted meanwhile wait out the
		// setup delay but none are lost.
		if end := now + s.sc.Reconvergence.Duration; end > s.failoverEnd {
			s.failoverEnd = end
		}
	}
}

func faultCode(kind string) uint64 {
	switch kind {
	case FaultLinkDown:
		return 1
	case FaultLinkUp:
		return 2
	case FaultSwitchDown:
		return 3
	case FaultSwitchUp:
		return 4
	case FaultCtrlFailover:
		return 5
	}
	return 0
}

// scheduleNextArrival keeps exactly one pending workload arrival on
// the timer heap (pull model): the heap stays tiny no matter how many
// million arrivals the stream holds.
func (s *FleetSim) scheduleNextArrival() {
	a, ok := s.wl.Next()
	if !ok {
		return
	}
	s.eng.At(a.At, func() {
		s.arrive(a)
		s.scheduleNextArrival()
	})
}

// flowHash spreads a flow id into the ECMP hash space.
func (s *FleetSim) flowHash(id uint64) uint64 {
	return mix64(mix64(fnvOffset, uint64(s.sc.Seed)), id)
}

// arrive processes one flow arrival: route, account, attribute loss.
func (s *FleetSim) arrive(a fabric.FlowArrival) {
	now := s.eng.Elapsed()
	pkts := uint64(a.Packets)
	s.res.OfferedFlows++
	s.res.OfferedPackets += pkts

	src, dst := s.topo.HostIDs[a.Src], s.topo.HostIDs[a.Dst]
	s.hostTx[src]++
	h := s.flowHash(a.FlowID)

	outcome, pathLen := s.route(now, src, dst, h, a, pkts)

	s.eventHash = mix64(s.eventHash, uint64(now))
	s.eventHash = mix64(s.eventHash, uint64(a.FlowID))
	s.eventHash = mix64(s.eventHash, uint64(a.Src)<<32|uint64(uint32(a.Dst)))
	s.eventHash = mix64(s.eventHash, pkts<<16|uint64(pathLen)<<4|outcome)
}

// Outcome codes mixed into the event hash.
const (
	outDelivered = 1
	outRerouted  = 2
	outLost      = 3
)

// route walks the flow's path, charging switch counters hop by hop.
// Before the reconvergence deadline of the fault that downed an
// element, flows keep hitting their primary path and die there; after
// it, alternates are tried in deterministic hash order.
func (s *FleetSim) route(now time.Duration, src, dst int, h uint64, a fabric.FlowArrival, pkts uint64) (outcome uint64, pathLen int) {
	choices := s.topo.RouteChoices()
	for c := 0; ; c++ {
		path, ok := s.topo.RouteInto(s.pathBuf, src, dst, h+uint64(c))
		s.pathBuf = path[:0]
		if !ok {
			s.lose(now, -1, pkts)
			return outLost, 0
		}
		blockIdx, faultIdx := s.firstBlock(path)
		if blockIdx < 0 {
			s.deliver(path, a, pkts, now, c > 0)
			if c > 0 {
				return outRerouted, len(path)
			}
			return outDelivered, len(path)
		}
		// Charge the partial walk on the primary attempt only: the flow
		// physically entered those switches. Alternate attempts model
		// the converged control plane steering around the fault, so
		// nothing is charged for candidates never taken.
		if c == 0 {
			s.chargePartial(path, blockIdx, pkts)
			if faultIdx >= 0 && now < s.reconvEnd[faultIdx] {
				// Unconverged: the fabric still forwards into the hole.
				s.lose(now, faultIdx, pkts)
				return outLost, blockIdx
			}
		}
		if c+1 >= choices {
			s.lose(now, faultIdx, pkts)
			return outLost, blockIdx
		}
	}
}

// firstBlock returns the index of the first unreachable element along
// the path (the node a down link or switch prevents the flow from
// leaving), plus the responsible fault, or (-1, -1) when clear.
func (s *FleetSim) firstBlock(path []int) (int, int) {
	for i := 1; i < len(path); i++ {
		prev, n := path[i-1], path[i]
		if l := s.topo.LinkBetween(prev, n); l >= 0 && s.linkDown[l] {
			return i - 1, s.linkFault[l]
		}
		if s.swDown[n] {
			return i - 1, s.swFault[n]
		}
	}
	return -1, -1
}

// chargePartial books switch in/out up to the blocking element and a
// drop there, so per-switch conservation holds for lost flows too.
func (s *FleetSim) chargePartial(path []int, blockIdx int, pkts uint64) {
	for i := 1; i <= blockIdx; i++ {
		if i == blockIdx {
			// The flow reached path[blockIdx] but cannot leave it.
			if s.topo.Nodes[path[i]].Role != fabric.RoleHost {
				s.swIn[path[i]] += pkts
				s.swDrop[path[i]] += pkts
			}
			return
		}
		s.swIn[path[i]] += pkts
		s.swOut[path[i]] += pkts
	}
	// blockIdx == 0: the source host itself cannot transmit (its edge
	// link or edge switch is down); nothing entered the fabric.
}

// deliver books a successful end-to-end walk.
func (s *FleetSim) deliver(path []int, a fabric.FlowArrival, pkts uint64, now time.Duration, rerouted bool) {
	for i := 1; i < len(path)-1; i++ {
		s.swIn[path[i]] += pkts
		s.swOut[path[i]] += pkts
	}
	s.hostRx[path[len(path)-1]]++
	s.res.DeliveredFlows++
	s.res.DeliveredPackets += pkts
	s.res.DeliveredBytes += pkts * uint64(a.FrameSize)
	if rerouted {
		s.res.ReroutedFlows++
	}
	hops := uint64(len(path) - 1)
	s.hopSum += hops
	lat := time.Duration(hops) * s.sc.LinkLatency.Duration
	if now < s.failoverEnd {
		s.res.FailoverDelayed++
		lat += s.failoverEnd - now // wait out the new master's setup
	}
	if lat > s.res.MaxLatency.Duration {
		s.res.MaxLatency = Duration{lat}
	}
}

// lose books a lost flow against its fault's convergence record.
func (s *FleetSim) lose(now time.Duration, faultIdx int, pkts uint64) {
	s.res.LostFlows++
	s.res.LostPackets += pkts
	if faultIdx >= 0 {
		r := &s.records[faultIdx]
		r.FlowsLost++
		r.LastLossAt = Duration{now}
	}
}

// finish runs the conservation checks and seals the verdict.
func (s *FleetSim) finish(st RunStats, wallStart time.Time) {
	r := &s.res
	r.Events = st.Events
	r.VirtualEnd = Duration{st.VirtualEnd}
	if r.OfferedFlows > 0 {
		r.LossRate = float64(r.LostFlows) / float64(r.OfferedFlows)
	}
	if r.DeliveredFlows > 0 {
		r.MeanHops = float64(s.hopSum) / float64(r.DeliveredFlows)
	}
	for i := range s.records {
		if s.records[i].FlowsLost > 0 {
			s.records[i].Convergence = Duration{s.records[i].LastLossAt.Duration - s.records[i].At.Duration}
		}
	}
	r.Convergence = s.records

	r.CounterExact = true
	fail := func(format string, args ...any) {
		r.CounterExact = false
		r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
	}
	if r.OfferedFlows != r.DeliveredFlows+r.LostFlows {
		fail("flow conservation: offered %d != delivered %d + lost %d",
			r.OfferedFlows, r.DeliveredFlows, r.LostFlows)
	}
	if r.OfferedPackets != r.DeliveredPackets+r.LostPackets {
		fail("packet conservation: offered %d != delivered %d + lost %d",
			r.OfferedPackets, r.DeliveredPackets, r.LostPackets)
	}
	for _, id := range s.topo.SwitchIDs {
		if s.swIn[id] != s.swOut[id]+s.swDrop[id] {
			fail("switch %s: in %d != out %d + drop %d",
				s.topo.Nodes[id].Name, s.swIn[id], s.swOut[id], s.swDrop[id])
		}
	}
	var tx, rx uint64
	for _, id := range s.topo.HostIDs {
		tx += s.hostTx[id]
		rx += s.hostRx[id]
	}
	if tx != r.OfferedFlows || rx != r.DeliveredFlows {
		fail("host conservation: tx %d / rx %d vs offered %d / delivered %d",
			tx, rx, r.OfferedFlows, r.DeliveredFlows)
	}
	if len(s.sc.Faults) == 0 && r.LostFlows != 0 {
		fail("faultless run lost %d flows", r.LostFlows)
	}
	r.Pass = r.CounterExact
	r.EventHash = fmt.Sprintf("%016x", s.eventHash)
	r.WallMS = time.Since(wallStart).Milliseconds() //harmless:allow-wallclock run-report wall duration
	r.Digest = r.digest()
}

// SwitchCounters exposes one switch's books (tests cross-check these
// against packet-mode softswitch port counters).
func (s *FleetSim) SwitchCounters(name string) (in, out, drop uint64, ok bool) {
	id, found := s.topo.NodeByName(name)
	if !found {
		return 0, 0, 0, false
	}
	return s.swIn[id], s.swOut[id], s.swDrop[id], true
}
