package apps

import (
	"sync"

	"github.com/harmless-sdn/harmless/internal/controller"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

// HostPair is an unordered pair of host addresses.
type HostPair struct {
	A, B pkt.IPv4
}

// DMZ implements demo use case (b): VM-level pairwise access policy in
// a multi-tenant setting. It owns a filter table with default deny for
// IPv4: only explicitly permitted host pairs pass (both directions);
// ARP passes so hosts can resolve each other before the IP policy
// applies. Permitted traffic continues in the next table (normally the
// learning app), matching the Fig. 1 walk-through where Host 1 and
// Host 2 are "permitted to exchange traffic only with each other".
//
// The policy is dynamic: Permit and Revoke reprogram connected
// switches immediately.
type DMZ struct {
	controller.BaseApp
	// Table is the filter table this app owns.
	Table uint8
	// NextTable receives permitted traffic.
	NextTable uint8

	mu       sync.Mutex
	pairs    map[HostPair]bool
	switches []*controller.SwitchHandle
}

// Name implements controller.App.
func (d *DMZ) Name() string { return "dmz" }

// Permit allows traffic between a and b (in both directions) and
// programs all connected switches.
func (d *DMZ) Permit(a, b pkt.IPv4) {
	d.mu.Lock()
	if d.pairs == nil {
		d.pairs = make(map[HostPair]bool)
	}
	d.pairs[normalizePair(a, b)] = true
	switches := append([]*controller.SwitchHandle{}, d.switches...)
	d.mu.Unlock()
	for _, sw := range switches {
		d.installPair(sw, a, b)
	}
}

// Revoke removes the permission for the pair and deletes the flows.
func (d *DMZ) Revoke(a, b pkt.IPv4) {
	d.mu.Lock()
	delete(d.pairs, normalizePair(a, b))
	switches := append([]*controller.SwitchHandle{}, d.switches...)
	d.mu.Unlock()
	for _, sw := range switches {
		for _, dir := range [][2]pkt.IPv4{{a, b}, {b, a}} {
			match := openflow.Match{}
			match.WithEthType(pkt.EtherTypeIPv4).WithIPv4Src(dir[0]).WithIPv4Dst(dir[1])
			_ = sw.FlowMod(&openflow.FlowMod{
				TableID: d.Table, Command: openflow.FlowDeleteStrict, Priority: 200,
				BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
				Match: match,
			})
		}
	}
}

// Permitted reports whether the pair is currently allowed.
func (d *DMZ) Permitted(a, b pkt.IPv4) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pairs[normalizePair(a, b)]
}

func normalizePair(a, b pkt.IPv4) HostPair {
	if a.Uint32() > b.Uint32() {
		a, b = b, a
	}
	return HostPair{A: a, B: b}
}

// SwitchConnected installs the base policy: ARP passes, IPv4 defaults
// to drop, permitted pairs pass.
func (d *DMZ) SwitchConnected(sw *controller.SwitchHandle) {
	d.mu.Lock()
	d.switches = append(d.switches, sw)
	pairs := make([]HostPair, 0, len(d.pairs))
	for p := range d.pairs {
		pairs = append(pairs, p)
	}
	d.mu.Unlock()

	// ARP flows to the next table so address resolution works.
	arp := openflow.Match{}
	arp.WithEthType(pkt.EtherTypeARP)
	_ = sw.InstallFlow(d.Table, 100, arp, &openflow.InstrGotoTable{TableID: d.NextTable})

	// Default deny: explicit priority-0 drop (no instructions).
	_ = sw.InstallFlow(d.Table, 0, openflow.Match{})

	for _, p := range pairs {
		d.installPair(sw, p.A, p.B)
	}
}

func (d *DMZ) installPair(sw *controller.SwitchHandle, a, b pkt.IPv4) {
	for _, dir := range [][2]pkt.IPv4{{a, b}, {b, a}} {
		match := openflow.Match{}
		match.WithEthType(pkt.EtherTypeIPv4).WithIPv4Src(dir[0]).WithIPv4Dst(dir[1])
		_ = sw.InstallFlow(d.Table, 200, match, &openflow.InstrGotoTable{TableID: d.NextTable})
	}
}
