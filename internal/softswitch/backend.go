package softswitch

import (
	"github.com/harmless-sdn/harmless/internal/dataplane"
	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/stats"
)

// PortBackend is the egress side of a datapath port: where frames go
// once the pipeline has decided to output them. The switch ships with
// three implementations — netem links (AttachNetPort), zero-copy patch
// ports into a peer switch (ConnectPatch), and an in-memory ring
// (NewRingBackend) for load generators that want the switch alone in
// the measured path — and accepts any other via AttachPort.
//
// Ownership follows the dataplane package rules: each frame transfers
// to the backend, the containing slice of TransmitBatch is only
// borrowed and may be reused by the caller after the call returns.
type PortBackend interface {
	// Transmit sends one frame out the port, taking ownership of it.
	Transmit(frame []byte)
	// TransmitBatch sends a frame vector out the port in one call.
	TransmitBatch(frames [][]byte)
}

// netBackend adapts a netem.Port as a PortBackend.
type netBackend struct {
	port *netem.Port
}

func (nb netBackend) Transmit(frame []byte)     { _ = nb.port.Send(frame) }
func (nb netBackend) TransmitBatch(fs [][]byte) { _ = nb.port.SendBatch(fs) }

// BatchForwarder is an optional PortBackend capability: a backend
// whose egress re-enters a peer Switch implements it so the dispatch
// loop can queue the still-grouped batch on its worklist — iterative
// delivery at constant stack depth — instead of transmitting into the
// peer synchronously. Any custom backend that forwards into another
// switch should implement it; without it the batch is delivered via
// TransmitBatch, which recurses one call frame per hop.
type BatchForwarder interface {
	// ForwardTarget returns the peer switch and the ingress port the
	// batch enters it on.
	ForwardTarget() (*Switch, uint32)
}

// patchBackend forwards into a peer switch — the zero-copy wiring
// between SS_1 and SS_2 inside the S4 node. Its BatchForwarder side is
// what the dispatch loop uses on the hot path; Transmit/TransmitBatch
// are the fallback for callers outside a dispatch.
type patchBackend struct {
	peer     *Switch
	peerPort uint32
}

func (pb *patchBackend) ForwardTarget() (*Switch, uint32) {
	return pb.peer, pb.peerPort
}

func (pb *patchBackend) Transmit(frame []byte) {
	pb.peer.Receive(pb.peerPort, frame)
}

func (pb *patchBackend) TransmitBatch(fs [][]byte) {
	pb.peer.ReceiveBatch(pb.peerPort, fs)
}

// RingBackend deposits egress frames into a lock-free dataplane.Ring.
// It is the NIC-queue stand-in for benchmarks and cmd/trafficgen: the
// measurement loop pushes batches into the switch and drains the ring,
// with no netem goroutines or timing model in the measured path. A
// full ring tail-drops, counted in Dropped.
type RingBackend struct {
	ring    *dataplane.Ring
	Dropped stats.Counter
}

// NewRingBackend creates a ring backend with the given capacity.
func NewRingBackend(capacity int) *RingBackend {
	return &RingBackend{ring: dataplane.NewRing(capacity)}
}

// Ring exposes the underlying ring for draining.
func (rb *RingBackend) Ring() *dataplane.Ring { return rb.ring }

// Transmit implements PortBackend.
func (rb *RingBackend) Transmit(frame []byte) {
	if !rb.ring.Push(frame) {
		rb.Dropped.Inc()
	}
}

// TransmitBatch implements PortBackend.
func (rb *RingBackend) TransmitBatch(frames [][]byte) {
	for _, f := range frames {
		rb.Transmit(f)
	}
}
