// Command flowtop is the operator's top-talkers view of the telemetry
// plane: an IPFIX-style UDP collector that decodes the records
// harmlessd (or trafficgen -flows) exports and periodically renders
// the biggest conversations — what `nethogs`/`nfdump -s` give you
// against a hardware switch, pointed at the softswitch instead.
//
//	# terminal 1: the deployment, exporting flow records
//	harmlessd -telemetry-export 127.0.0.1:4739
//
//	# terminal 2: watch the talkers
//	flowtop -listen 127.0.0.1:4739
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"github.com/harmless-sdn/harmless/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:4739", "UDP address to receive IPFIX-style export on")
	top := flag.Int("top", 10, "conversations to show")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	count := flag.Int("count", 0, "exit after this many refreshes (0 = run until interrupted)")
	jsonOut := flag.Bool("json", false, "emit each refresh as JSON instead of a table")
	flag.Parse()

	pc, err := net.ListenPacket("udp", *listen)
	if err != nil {
		fatal("listen: %v", err)
	}
	defer pc.Close()
	col := telemetry.NewCollector()
	go col.ServeUDP(pc) //nolint:errcheck // loop ends when pc closes
	fmt.Printf("flowtop: collecting on udp://%s (refresh %s)\n", pc.LocalAddr(), *interval)

	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for n := 0; *count == 0 || n < *count; n++ {
		<-tick.C
		render(col, *top, *jsonOut)
	}
}

func render(col *telemetry.Collector, top int, jsonOut bool) {
	msgs, records, samples, errs := col.Stats()
	pkts, bytes := col.Totals()
	flows := col.Top(top)
	if jsonOut {
		out := struct {
			Messages uint64                    `json:"messages"`
			Records  uint64                    `json:"records"`
			Samples  uint64                    `json:"samples"`
			Errors   uint64                    `json:"decode_errors"`
			Packets  uint64                    `json:"packets"`
			Bytes    uint64                    `json:"bytes"`
			Top      []telemetry.CollectedFlow `json:"top"`
		}{msgs, records, samples, errs, pkts, bytes, flows}
		json.NewEncoder(os.Stdout).Encode(out) //nolint:errcheck
		return
	}
	fmt.Printf("—— %s | msgs=%d records=%d samples=%d errs=%d | total %d pkts / %d bytes ——\n",
		time.Now().Format("15:04:05"), msgs, records, samples, errs, pkts, bytes)
	if len(flows) == 0 {
		fmt.Println("  (no flows yet)")
		return
	}
	fmt.Printf("  %-3s %-52s %10s %12s %10s %8s\n", "#", "flow (forward direction)", "packets", "bytes", "rev-pkts", "end")
	for i, f := range flows {
		fmt.Printf("  %-3d %-52s %10d %12d %10d %8s\n",
			i+1, f.Key, f.Packets+f.RevPackets, f.Bytes+f.RevBytes, f.RevPackets, endReason(f.EndReason))
	}
}

func endReason(r uint8) string {
	switch r {
	case telemetry.EndIdle:
		return "idle"
	case telemetry.EndActive:
		return "active"
	case telemetry.EndForced:
		return "forced"
	}
	return "-"
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "flowtop: "+format+"\n", args...)
	os.Exit(1)
}
