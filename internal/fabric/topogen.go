package fabric

// Fleet-scale topology generators: the fat-tree and leaf-spine
// fabrics a HARMLESS migration campaign actually runs against. The
// output is an abstract wiring plan — nodes, links, port indices —
// consumed two ways: the flow-level fleet simulator walks it
// analytically (Route/NextHop, hash-based ECMP), and the packet-level
// harness instantiates one softswitch per switch node over netem
// links. Construction is fully deterministic: same parameters, same
// node ids, names, port numbering and link order.

import (
	"fmt"
)

// NodeRole classifies a topology node.
type NodeRole uint8

// Roles. Leaf-spine maps leaves to RoleEdge and spines to RoleCore.
const (
	RoleHost NodeRole = iota
	RoleEdge          // ToR / leaf
	RoleAgg           // fat-tree aggregation
	RoleCore          // fat-tree core / leaf-spine spine
)

// String renders the role.
func (r NodeRole) String() string {
	switch r {
	case RoleHost:
		return "host"
	case RoleEdge:
		return "edge"
	case RoleAgg:
		return "agg"
	case RoleCore:
		return "core"
	}
	return fmt.Sprintf("role(%d)", uint8(r))
}

// TopoPort is one port of a node: index in the node's Ports slice,
// wired to a specific port of a peer node over one link.
type TopoPort struct {
	Peer     int // peer node id
	PeerPort int // port index on the peer
	Link     int // link id
}

// TopoLink is one full-duplex link of the plan.
type TopoLink struct {
	ID           int
	A, B         int // node ids
	APort, BPort int // port indices on each side
}

// TopoNode is one node of the plan.
type TopoNode struct {
	ID    int
	Role  NodeRole
	Name  string
	Pod   int // fat-tree pod, -1 where not applicable
	Ports []TopoPort
}

// Topology is a generated fabric wiring plan.
type Topology struct {
	Kind  string // "fattree" or "leafspine"
	Nodes []TopoNode
	Links []TopoLink

	HostIDs   []int // node ids with RoleHost, in construction order
	SwitchIDs []int // every non-host node id, in construction order

	// generator parameters for analytic routing
	k            int // fat-tree arity
	spines       int
	leaves       int
	hostsPerLeaf int

	byName map[string]int
	// portIdx maps (node<<32|peer) to the node's port index towards
	// peer, for O(1) hop resolution on the fleet-sim hot path.
	portIdx map[uint64]int32
}

// addNode appends a node and returns its id.
func (t *Topology) addNode(role NodeRole, pod int, name string) int {
	id := len(t.Nodes)
	t.Nodes = append(t.Nodes, TopoNode{ID: id, Role: role, Name: name, Pod: pod})
	t.byName[name] = id
	if role == RoleHost {
		t.HostIDs = append(t.HostIDs, id)
	} else {
		t.SwitchIDs = append(t.SwitchIDs, id)
	}
	return id
}

// connect wires a<->b with a fresh link, appending one port to each.
func (t *Topology) connect(a, b int) {
	if a == b {
		panic("fabric: self-loop in topology generator")
	}
	id := len(t.Links)
	ap, bp := len(t.Nodes[a].Ports), len(t.Nodes[b].Ports)
	t.Links = append(t.Links, TopoLink{ID: id, A: a, B: b, APort: ap, BPort: bp})
	t.Nodes[a].Ports = append(t.Nodes[a].Ports, TopoPort{Peer: b, PeerPort: bp, Link: id})
	t.Nodes[b].Ports = append(t.Nodes[b].Ports, TopoPort{Peer: a, PeerPort: ap, Link: id})
	t.portIdx[uint64(a)<<32|uint64(uint32(b))] = int32(ap)
	t.portIdx[uint64(b)<<32|uint64(uint32(a))] = int32(bp)
}

func newTopology(kind string) *Topology {
	return &Topology{
		Kind:    kind,
		byName:  make(map[string]int),
		portIdx: make(map[uint64]int32),
	}
}

// FatTree generates the canonical k-ary fat-tree (Al-Fares et al.):
// k pods of k/2 edge and k/2 aggregation switches, (k/2)^2 cores, and
// k/2 hosts per edge switch — 5k²/4 switches, k³/4 hosts, every
// switch using exactly k ports. k must be even and >= 2.
func FatTree(k int) (*Topology, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("fabric: fat-tree arity k=%d must be even and >= 2", k)
	}
	t := newTopology("fattree")
	t.k = k
	half := k / 2

	cores := make([]int, half*half)
	for c := range cores {
		cores[c] = t.addNode(RoleCore, -1, fmt.Sprintf("core-%d", c))
	}
	aggs := make([][]int, k)  // [pod][i]
	edges := make([][]int, k) // [pod][i]
	for p := 0; p < k; p++ {
		aggs[p] = make([]int, half)
		edges[p] = make([]int, half)
		for i := 0; i < half; i++ {
			aggs[p][i] = t.addNode(RoleAgg, p, fmt.Sprintf("agg-%d-%d", p, i))
		}
		for i := 0; i < half; i++ {
			edges[p][i] = t.addNode(RoleEdge, p, fmt.Sprintf("edge-%d-%d", p, i))
		}
	}
	// Edge -> agg full mesh within each pod (edge ports 0..k/2-1 face
	// aggs, agg ports fill with one per edge).
	for p := 0; p < k; p++ {
		for _, e := range edges[p] {
			for _, a := range aggs[p] {
				t.connect(e, a)
			}
		}
	}
	// Agg i of every pod connects to core group i (cores i*k/2 ..
	// i*k/2 + k/2 - 1); each core ends with one port per pod.
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			for j := 0; j < half; j++ {
				t.connect(aggs[p][i], cores[i*half+j])
			}
		}
	}
	// Hosts last, so edge ports k/2..k-1 face hosts.
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			for h := 0; h < half; h++ {
				host := t.addNode(RoleHost, p, fmt.Sprintf("host-%d-%d-%d", p, i, h))
				t.connect(host, edges[p][i])
			}
		}
	}
	return t, nil
}

// LeafSpine generates a two-tier leaf-spine fabric: every leaf wired
// to every spine, hostsPerLeaf hosts per leaf. Spines take RoleCore,
// leaves RoleEdge.
func LeafSpine(spines, leaves, hostsPerLeaf int) (*Topology, error) {
	if spines < 1 || leaves < 1 || hostsPerLeaf < 1 {
		return nil, fmt.Errorf("fabric: leaf-spine needs spines, leaves, hostsPerLeaf >= 1 (got %d/%d/%d)",
			spines, leaves, hostsPerLeaf)
	}
	t := newTopology("leafspine")
	t.spines, t.leaves, t.hostsPerLeaf = spines, leaves, hostsPerLeaf
	sp := make([]int, spines)
	for i := range sp {
		sp[i] = t.addNode(RoleCore, -1, fmt.Sprintf("spine-%d", i))
	}
	lf := make([]int, leaves)
	for i := range lf {
		lf[i] = t.addNode(RoleEdge, -1, fmt.Sprintf("leaf-%d", i))
	}
	// Leaf ports 0..spines-1 face spines.
	for _, l := range lf {
		for _, s := range sp {
			t.connect(l, s)
		}
	}
	for i, l := range lf {
		for h := 0; h < hostsPerLeaf; h++ {
			host := t.addNode(RoleHost, -1, fmt.Sprintf("host-%d-%d", i, h))
			t.connect(host, l)
		}
	}
	return t, nil
}

// NodeByName resolves a node name (fault schedules target by name).
func (t *Topology) NodeByName(name string) (int, bool) {
	id, ok := t.byName[name]
	return id, ok
}

// PortTo returns the port index on `from` facing `to`, or -1 when the
// nodes are not adjacent.
func (t *Topology) PortTo(from, to int) int {
	if p, ok := t.portIdx[uint64(from)<<32|uint64(uint32(to))]; ok {
		return int(p)
	}
	return -1
}

// LinkBetween returns the link id joining a and b, or -1.
func (t *Topology) LinkBetween(a, b int) int {
	if p := t.PortTo(a, b); p >= 0 {
		return t.Nodes[a].Ports[p].Link
	}
	return -1
}

// HostEdge returns the switch a host hangs off.
func (t *Topology) HostEdge(host int) int {
	return t.Nodes[host].Ports[0].Peer
}

// RouteChoices returns how many distinct equal-cost paths Route can
// pick between two distinct-edge hosts — the ECMP width the fleet
// simulator retries across after a fault.
func (t *Topology) RouteChoices() int {
	switch t.Kind {
	case "leafspine":
		return t.spines
	case "fattree":
		half := t.k / 2
		return half * half // inter-pod; same-pod paths are a subset
	}
	return 1
}

// NextHop returns the neighbor the switch sw forwards towards dstHost,
// with h selecting among equal-cost uphill choices (downhill hops are
// fully determined by the destination). ok is false when sw cannot
// reach dstHost in this topology.
func (t *Topology) NextHop(sw, dstHost int, h uint64) (int, bool) {
	dstEdge := t.HostEdge(dstHost)
	if sw == dstEdge {
		return dstHost, true
	}
	n := &t.Nodes[sw]
	switch t.Kind {
	case "leafspine":
		switch n.Role {
		case RoleEdge: // up: any spine (leaf ports 0..spines-1)
			return n.Ports[int(h%uint64(t.spines))].Peer, true
		case RoleCore: // down: the destination leaf
			return dstEdge, true
		}
	case "fattree":
		half := t.k / 2
		dst := &t.Nodes[dstEdge]
		switch n.Role {
		case RoleEdge: // up: agg i of the pod (edge ports 0..k/2-1)
			return n.Ports[int(h%uint64(half))].Peer, true
		case RoleAgg:
			if n.Pod == dst.Pod { // down to the destination edge
				return dstEdge, true
			}
			// up: one of this agg's k/2 cores (agg ports k/2..k-1)
			return n.Ports[half+int((h/uint64(half))%uint64(half))].Peer, true
		case RoleCore:
			// down: the agg of the destination pod this core attaches
			// to — core ports are one per pod, in pod order.
			return n.Ports[dst.Pod].Peer, true
		}
	}
	return 0, false
}

// Route returns the node path from srcHost to dstHost (hosts
// included), with h selecting deterministically among the equal-cost
// choices. ok is false when no analytic route exists.
func (t *Topology) Route(srcHost, dstHost int, h uint64) ([]int, bool) {
	path := make([]int, 0, 8)
	return t.RouteInto(path, srcHost, dstHost, h)
}

// RouteInto is Route reusing the caller's slice capacity — the
// allocation-free form the fleet simulator's arrival hot path calls.
func (t *Topology) RouteInto(path []int, srcHost, dstHost int, h uint64) ([]int, bool) {
	path = append(path[:0], srcHost)
	if srcHost == dstHost {
		return path, true
	}
	cur := t.HostEdge(srcHost)
	for {
		path = append(path, cur)
		if len(path) > 8 { // analytic routes are <= 7 nodes; guard loops
			return path, false
		}
		next, ok := t.NextHop(cur, dstHost, h)
		if !ok {
			return path, false
		}
		if next == dstHost {
			return append(path, dstHost), true
		}
		cur = next
	}
}

// PathLen returns the BFS hop distance (in links) between two nodes,
// or -1 when disconnected. O(V+E) — a test and validation helper, not
// a hot path.
func (t *Topology) PathLen(a, b int) int {
	if a == b {
		return 0
	}
	dist := make([]int, len(t.Nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[a] = 0
	queue := []int{a}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, p := range t.Nodes[n].Ports {
			if dist[p.Peer] < 0 {
				dist[p.Peer] = dist[n] + 1
				if p.Peer == b {
					return dist[p.Peer]
				}
				queue = append(queue, p.Peer)
			}
		}
	}
	return -1
}

// Validate cross-checks the wiring plan's internal consistency: link
// endpoints exist, port back-references agree, no self-loops, no
// duplicate adjacency. Generators are expected to always produce valid
// plans; tests call this on every generated topology.
func (t *Topology) Validate() error {
	seen := make(map[uint64]bool, len(t.Links))
	for _, l := range t.Links {
		if l.A < 0 || l.A >= len(t.Nodes) || l.B < 0 || l.B >= len(t.Nodes) {
			return fmt.Errorf("link %d endpoints out of range", l.ID)
		}
		if l.A == l.B {
			return fmt.Errorf("link %d is a self-loop on node %d", l.ID, l.A)
		}
		key := uint64(l.A)<<32 | uint64(uint32(l.B))
		if l.A > l.B {
			key = uint64(l.B)<<32 | uint64(uint32(l.A))
		}
		if seen[key] {
			return fmt.Errorf("duplicate link between %d and %d", l.A, l.B)
		}
		seen[key] = true
		pa, pb := t.Nodes[l.A].Ports[l.APort], t.Nodes[l.B].Ports[l.BPort]
		if pa.Peer != l.B || pb.Peer != l.A || pa.Link != l.ID || pb.Link != l.ID ||
			pa.PeerPort != l.BPort || pb.PeerPort != l.APort {
			return fmt.Errorf("link %d port back-references inconsistent", l.ID)
		}
	}
	for _, n := range t.Nodes {
		if n.Role == RoleHost && len(n.Ports) != 1 {
			return fmt.Errorf("host %s has %d ports, want 1", n.Name, len(n.Ports))
		}
	}
	return nil
}
