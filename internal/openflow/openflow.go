// Package openflow implements the OpenFlow 1.3 wire protocol subset
// that HARMLESS needs: the connection handshake (HELLO / FEATURES /
// ECHO), FLOW_MOD with OXM matches, instructions and actions,
// PACKET_IN / PACKET_OUT, GROUP_MOD, METER_MOD, BARRIER, PORT_STATUS,
// FLOW_REMOVED, ERROR, and the multipart (statistics) requests used by
// the ofctl tool (DESC, FLOW, PORT_STATS, PORT_DESC, TABLE).
//
// Messages are plain structs with Marshal/unmarshal symmetric with the
// on-the-wire OpenFlow 1.3.5 encoding; Parse dispatches raw frames to
// the right struct. The Conn type frames messages over any
// io.ReadWriter (TCP in production, net.Pipe in tests).
//
// Vendor neutrality in the paper rests on standards compliance, so the
// encodings here follow the spec byte-for-byte (including padding),
// and the test suite round-trips every message type.
package openflow

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Version is the OpenFlow protocol version implemented (1.3).
const Version uint8 = 0x04

// HeaderLen is the length of the fixed message header.
const HeaderLen = 8

// Message type codes (ofp_type).
const (
	TypeHello            uint8 = 0
	TypeError            uint8 = 1
	TypeEchoRequest      uint8 = 2
	TypeEchoReply        uint8 = 3
	TypeFeaturesRequest  uint8 = 5
	TypeFeaturesReply    uint8 = 6
	TypePacketIn         uint8 = 10
	TypeFlowRemoved      uint8 = 11
	TypePortStatus       uint8 = 12
	TypePacketOut        uint8 = 13
	TypeFlowMod          uint8 = 14
	TypeGroupMod         uint8 = 15
	TypeMultipartRequest uint8 = 18
	TypeMultipartReply   uint8 = 19
	TypeBarrierRequest   uint8 = 20
	TypeBarrierReply     uint8 = 21
	TypeRoleRequest      uint8 = 24
	TypeRoleReply        uint8 = 25
	TypeGetAsyncRequest  uint8 = 26
	TypeGetAsyncReply    uint8 = 27
	TypeSetAsync         uint8 = 28
	TypeMeterMod         uint8 = 29
)

// Reserved port numbers (ofp_port_no).
const (
	PortMax        uint32 = 0xffffff00
	PortInPort     uint32 = 0xfffffff8
	PortTable      uint32 = 0xfffffff9
	PortNormal     uint32 = 0xfffffffa
	PortFlood      uint32 = 0xfffffffb
	PortAll        uint32 = 0xfffffffc
	PortController uint32 = 0xfffffffd
	PortLocal      uint32 = 0xfffffffe
	PortAny        uint32 = 0xffffffff
)

// NoBuffer indicates an unbuffered packet-in/out.
const NoBuffer uint32 = 0xffffffff

// Message is any OpenFlow message. Marshal produces the complete wire
// frame including the header with the correct length.
type Message interface {
	// MsgType returns the ofp_type code.
	MsgType() uint8
	// XID returns the transaction id.
	XID() uint32
	// SetXID sets the transaction id.
	SetXID(uint32)
	// Marshal encodes the complete message.
	Marshal() ([]byte, error)
}

// Header is the fixed OpenFlow header.
type Header struct {
	Version uint8
	Type    uint8
	Length  uint16
	Xid     uint32
}

// ParseHeader decodes the fixed header.
func ParseHeader(data []byte) (Header, error) {
	if len(data) < HeaderLen {
		return Header{}, fmt.Errorf("openflow: short header (%d bytes)", len(data))
	}
	return Header{
		Version: data[0],
		Type:    data[1],
		Length:  binary.BigEndian.Uint16(data[2:4]),
		Xid:     binary.BigEndian.Uint32(data[4:8]),
	}, nil
}

// putHeader writes a header into the first 8 bytes of buf.
func putHeader(buf []byte, typ uint8, xid uint32) {
	buf[0] = Version
	buf[1] = typ
	binary.BigEndian.PutUint16(buf[2:4], uint16(len(buf)))
	binary.BigEndian.PutUint32(buf[4:8], xid)
}

// xid embeds transaction-id handling into every message struct.
type xid struct{ Xid uint32 }

// XID returns the transaction id.
func (x *xid) XID() uint32 { return x.Xid }

// SetXID sets the transaction id.
func (x *xid) SetXID(v uint32) { x.Xid = v }

// Parse decodes one complete OpenFlow frame into its message struct.
func Parse(data []byte) (Message, error) {
	h, err := ParseHeader(data)
	if err != nil {
		return nil, err
	}
	if h.Version != Version {
		return nil, fmt.Errorf("openflow: unsupported version %#x", h.Version)
	}
	if int(h.Length) != len(data) {
		return nil, fmt.Errorf("openflow: header length %d != frame length %d", h.Length, len(data))
	}
	body := data[HeaderLen:]
	var m Message
	switch h.Type {
	case TypeHello:
		m = &Hello{}
	case TypeError:
		m = &Error{}
	case TypeEchoRequest:
		m = &EchoRequest{}
	case TypeEchoReply:
		m = &EchoReply{}
	case TypeFeaturesRequest:
		m = &FeaturesRequest{}
	case TypeFeaturesReply:
		m = &FeaturesReply{}
	case TypePacketIn:
		m = &PacketIn{}
	case TypeFlowRemoved:
		m = &FlowRemoved{}
	case TypePortStatus:
		m = &PortStatus{}
	case TypePacketOut:
		m = &PacketOut{}
	case TypeFlowMod:
		m = &FlowMod{}
	case TypeGroupMod:
		m = &GroupMod{}
	case TypeMeterMod:
		m = &MeterMod{}
	case TypeMultipartRequest:
		m = &MultipartRequest{}
	case TypeMultipartReply:
		m = &MultipartReply{}
	case TypeBarrierRequest:
		m = &BarrierRequest{}
	case TypeBarrierReply:
		m = &BarrierReply{}
	case TypeRoleRequest:
		m = &RoleRequest{}
	case TypeRoleReply:
		m = &RoleReply{}
	case TypeGetAsyncRequest:
		m = &GetAsyncRequest{}
	case TypeGetAsyncReply:
		m = &GetAsyncReply{}
	case TypeSetAsync:
		m = &SetAsync{}
	default:
		return nil, fmt.Errorf("openflow: unsupported message type %d", h.Type)
	}
	if err := unmarshalBody(m, body); err != nil {
		return nil, err
	}
	m.SetXID(h.Xid)
	return m, nil
}

// bodyUnmarshaler is implemented by message structs.
type bodyUnmarshaler interface {
	unmarshalBody(body []byte) error
}

func unmarshalBody(m Message, body []byte) error {
	u, ok := m.(bodyUnmarshaler)
	if !ok {
		return fmt.Errorf("openflow: %T cannot be decoded", m)
	}
	return u.unmarshalBody(body)
}

// ReadMessage reads one framed message from r.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	h, err := ParseHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	if h.Length < HeaderLen {
		return nil, fmt.Errorf("openflow: bad length %d", h.Length)
	}
	frame := make([]byte, h.Length)
	copy(frame, hdr[:])
	if _, err := io.ReadFull(r, frame[HeaderLen:]); err != nil {
		return nil, err
	}
	return Parse(frame)
}

// WriteMessage marshals and writes m to w.
func WriteMessage(w io.Writer, m Message) error {
	frame, err := m.Marshal()
	if err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}

// pad returns n zero bytes (spec-mandated padding).
func pad(n int) []byte { return make([]byte, n) }
