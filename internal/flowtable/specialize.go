package flowtable

import (
	"encoding/binary"
	"sort"

	"github.com/harmless-sdn/harmless/internal/pkt"
)

// Dataplane specialization in the style of ESwitch (Molnár et al.,
// SIGCOMM 2016), the software switch the HARMLESS demo runs on: instead
// of scanning a priority-ordered list per packet, the current table is
// compiled into a small set of exact-match templates — one hash table
// per distinct field signature — plus an optional catch-all default.
// Lookup then probes the (few) templates and picks the best-priority
// hit. The compilation is invalidated by any table change (tracked via
// Table.Version) and simply rebuilt.
//
// Tables qualify when every entry either (a) matches a set of fields
// all exactly (no masks), or (b) is a match-all default. This is
// precisely the shape of the HARMLESS translator (SS_1) program and of
// L2/L3 forwarding tables, which is what makes the ESwitch approach
// effective for the paper's workloads.
//
// Template signatures are MatchMask values — the same field algebra
// the softswitch megaflow cache uses to derive its wildcard classes —
// so "which fields does this table consult" has exactly one definition
// in the tree (see mask.go).

// exactSignature classifies a match for specialization. ok is false
// when the match cannot be expressed as an exact-match template
// (masked fields or unsupported constraints).
func exactSignature(m *Match) (MatchMask, bool) {
	if m.EthDstSet && m.EthDstMask != onesMAC {
		return 0, false
	}
	if m.EthSrcSet && m.EthSrcMask != onesMAC {
		return 0, false
	}
	if m.IPSrcSet && m.IPSrcMask != onesIPv4 {
		return 0, false
	}
	if m.IPDstSet && m.IPDstMask != onesIPv4 {
		return 0, false
	}
	if m.VLANPCPSet || m.ICMPCodeSet || m.ARPSPASet || m.ARPTPASet {
		return 0, false // rare fields: keep the generic path
	}
	return MaskOf(m), true
}

// templateKey is the packed value of the constrained fields. A fixed
// array keeps it comparable (map key) without allocation. 40 bytes
// accommodates the widest prerequisite-legal field combination.
type templateKey struct {
	buf [40]byte
	n   uint8
}

// keyFromMatch packs the constrained field values of a match. The VLAN
// field packs as a presence byte plus VID, so a VLANAbsent constraint
// and a VLANExact one land in the same template without colliding.
func keyFromMatch(sig MatchMask, m *Match) templateKey {
	var k templateKey
	put := func(b []byte) {
		copy(k.buf[k.n:], b)
		k.n += uint8(len(b))
	}
	var tmp [4]byte
	if sig&MaskInPort != 0 {
		binary.BigEndian.PutUint32(tmp[:], m.InPort)
		put(tmp[:4])
	}
	if sig&MaskEthDst != 0 {
		put(m.EthDst[:])
	}
	if sig&MaskEthSrc != 0 {
		put(m.EthSrc[:])
	}
	if sig&MaskEthType != 0 {
		binary.BigEndian.PutUint16(tmp[:2], m.EthType)
		put(tmp[:2])
	}
	if sig&MaskVLAN != 0 {
		if m.VLAN == VLANExact {
			binary.BigEndian.PutUint16(tmp[:2], m.VLANVID)
			put([]byte{1})
		} else { // VLANAbsent
			tmp[0], tmp[1] = 0, 0
			put([]byte{0})
		}
		put(tmp[:2])
	}
	if sig&MaskIPProto != 0 {
		put([]byte{m.IPProto})
	}
	if sig&MaskIPSrc != 0 {
		put(m.IPSrc[:])
	}
	if sig&MaskIPDst != 0 {
		put(m.IPDst[:])
	}
	if sig&MaskL4Src != 0 {
		binary.BigEndian.PutUint16(tmp[:2], m.L4Src)
		put(tmp[:2])
	}
	if sig&MaskL4Dst != 0 {
		binary.BigEndian.PutUint16(tmp[:2], m.L4Dst)
		put(tmp[:2])
	}
	if sig&MaskICMPType != 0 {
		put([]byte{m.ICMPType})
	}
	if sig&MaskARPOp != 0 {
		binary.BigEndian.PutUint16(tmp[:2], m.ARPOp)
		put(tmp[:2])
	}
	return k
}

// keyFromPacket packs the same fields out of a packet key; ok is false
// when the packet lacks a field the template needs (so it cannot match
// any entry of that template).
func keyFromPacket(sig MatchMask, p *pkt.Key) (templateKey, bool) {
	var k templateKey
	put := func(b []byte) {
		copy(k.buf[k.n:], b)
		k.n += uint8(len(b))
	}
	var tmp [4]byte
	if sig&MaskInPort != 0 {
		binary.BigEndian.PutUint32(tmp[:], p.InPort)
		put(tmp[:4])
	}
	if sig&MaskEthDst != 0 {
		put(p.EthDst[:])
	}
	if sig&MaskEthSrc != 0 {
		put(p.EthSrc[:])
	}
	if sig&MaskEthType != 0 {
		binary.BigEndian.PutUint16(tmp[:2], p.EthType)
		put(tmp[:2])
	}
	if sig&MaskVLAN != 0 {
		// Presence byte + VID: an untagged packet packs (0, 0, 0) and
		// can only meet a VLANAbsent entry; a tagged one packs (1, VID).
		if p.HasVLAN {
			binary.BigEndian.PutUint16(tmp[:2], p.VLANID)
			put([]byte{1})
		} else {
			tmp[0], tmp[1] = 0, 0
			put([]byte{0})
		}
		put(tmp[:2])
	}
	if sig&MaskIPProto != 0 {
		if !p.HasIPv4 && !p.HasIPv6 {
			return k, false
		}
		put([]byte{p.IPProto})
	}
	if sig&MaskIPSrc != 0 {
		if !p.HasIPv4 {
			return k, false
		}
		put(p.IPSrc[:])
	}
	if sig&MaskIPDst != 0 {
		if !p.HasIPv4 {
			return k, false
		}
		put(p.IPDst[:])
	}
	if sig&MaskL4Src != 0 {
		if !p.HasL4 {
			return k, false
		}
		binary.BigEndian.PutUint16(tmp[:2], p.L4Src)
		put(tmp[:2])
	}
	if sig&MaskL4Dst != 0 {
		if !p.HasL4 {
			return k, false
		}
		binary.BigEndian.PutUint16(tmp[:2], p.L4Dst)
		put(tmp[:2])
	}
	if sig&MaskICMPType != 0 {
		if !p.HasICMP {
			return k, false
		}
		put([]byte{p.ICMPType})
	}
	if sig&MaskARPOp != 0 {
		if !p.HasARP {
			return k, false
		}
		binary.BigEndian.PutUint16(tmp[:2], p.ARPOp)
		put(tmp[:2])
	}
	return k, true
}

// template is one compiled exact-match table.
type template struct {
	sig     MatchMask
	entries map[templateKey]*Entry
	maxPrio uint16
}

// FastPath is a compiled form of one Table.
type FastPath struct {
	version   uint64
	templates []*template // sorted by maxPrio descending
	catchAll  *Entry      // match-all default, if any
	catchPrio uint16
}

// Compile builds a FastPath for the table's current contents, or
// returns ok=false when the table shape does not qualify.
func Compile(t *Table) (*FastPath, bool) {
	version := t.Version()
	entries := t.Entries()
	fp := &FastPath{version: version}
	bysig := map[MatchMask]*template{}
	for _, e := range entries {
		sig, ok := exactSignature(e.Match)
		if !ok {
			return nil, false
		}
		if sig == 0 {
			// Match-all: acceptable only as a single default entry.
			if fp.catchAll != nil {
				return nil, false
			}
			fp.catchAll = e
			fp.catchPrio = e.Priority
			continue
		}
		tpl := bysig[sig]
		if tpl == nil {
			tpl = &template{sig: sig, entries: make(map[templateKey]*Entry)}
			bysig[sig] = tpl
		}
		k := keyFromMatch(sig, e.Match)
		if old, dup := tpl.entries[k]; dup {
			// Same key at two priorities: keep the higher one (the
			// lower can never win anyway within this template, and
			// cross-template resolution is by priority).
			if e.Priority <= old.Priority {
				continue
			}
		}
		tpl.entries[k] = e
		if e.Priority > tpl.maxPrio {
			tpl.maxPrio = e.Priority
		}
	}
	for _, tpl := range bysig {
		fp.templates = append(fp.templates, tpl)
	}
	sort.Slice(fp.templates, func(i, j int) bool {
		return fp.templates[i].maxPrio > fp.templates[j].maxPrio
	})
	return fp, true
}

// Valid reports whether the compilation still matches the table.
func (fp *FastPath) Valid(t *Table) bool { return fp != nil && fp.version == t.Version() }

// Lookup probes the compiled templates; it returns the same entry the
// generic scan would, or (nil, false) when the packet misses entirely.
// The boolean is true if the fast path is authoritative (it always is
// for a valid compilation).
func (fp *FastPath) Lookup(p *pkt.Key) *Entry {
	var best *Entry
	var bestPrio int32 = -1
	for _, tpl := range fp.templates {
		if int32(tpl.maxPrio) <= bestPrio {
			break // templates sorted by maxPrio: nothing better follows
		}
		k, ok := keyFromPacket(tpl.sig, p)
		if !ok {
			continue
		}
		if e, hit := tpl.entries[k]; hit && int32(e.Priority) > bestPrio {
			best = e
			bestPrio = int32(e.Priority)
		}
	}
	if fp.catchAll != nil && int32(fp.catchPrio) > bestPrio {
		best = fp.catchAll
	}
	return best
}

// Templates returns the number of compiled templates (diagnostics).
func (fp *FastPath) Templates() int { return len(fp.templates) }
