package openflow

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"github.com/harmless-sdn/harmless/internal/pkt"
)

// OXM class and field codes (OpenFlow basic class).
const (
	OXMClassBasic uint16 = 0x8000
)

// OXM field codes within OFPXMC_OPENFLOW_BASIC.
const (
	OXMInPort   uint8 = 0
	OXMEthDst   uint8 = 3
	OXMEthSrc   uint8 = 4
	OXMEthType  uint8 = 5
	OXMVLANVID  uint8 = 6
	OXMVLANPCP  uint8 = 7
	OXMIPProto  uint8 = 10
	OXMIPv4Src  uint8 = 11
	OXMIPv4Dst  uint8 = 12
	OXMTCPSrc   uint8 = 13
	OXMTCPDst   uint8 = 14
	OXMUDPSrc   uint8 = 15
	OXMUDPDst   uint8 = 16
	OXMICMPType uint8 = 19
	OXMICMPCode uint8 = 20
	OXMARPOp    uint8 = 21
	OXMARPSPA   uint8 = 22
	OXMARPTPA   uint8 = 23
)

// OXMVIDPresent is OR-ed into the VLAN_VID value to indicate "a tag is
// present" (OFPVID_PRESENT).
const OXMVIDPresent uint16 = 0x1000

// OXMVIDNone matches only untagged packets (OFPVID_NONE).
const OXMVIDNone uint16 = 0x0000

// oxmValueLen gives the value length of each supported field.
var oxmValueLen = map[uint8]int{
	OXMInPort: 4, OXMEthDst: 6, OXMEthSrc: 6, OXMEthType: 2,
	OXMVLANVID: 2, OXMVLANPCP: 1, OXMIPProto: 1,
	OXMIPv4Src: 4, OXMIPv4Dst: 4,
	OXMTCPSrc: 2, OXMTCPDst: 2, OXMUDPSrc: 2, OXMUDPDst: 2,
	OXMICMPType: 1, OXMICMPCode: 1,
	OXMARPOp: 2, OXMARPSPA: 4, OXMARPTPA: 4,
}

// oxmName maps field codes to display names.
var oxmName = map[uint8]string{
	OXMInPort: "in_port", OXMEthDst: "eth_dst", OXMEthSrc: "eth_src",
	OXMEthType: "eth_type", OXMVLANVID: "vlan_vid", OXMVLANPCP: "vlan_pcp",
	OXMIPProto: "ip_proto", OXMIPv4Src: "ipv4_src", OXMIPv4Dst: "ipv4_dst",
	OXMTCPSrc: "tcp_src", OXMTCPDst: "tcp_dst", OXMUDPSrc: "udp_src",
	OXMUDPDst: "udp_dst", OXMICMPType: "icmpv4_type", OXMICMPCode: "icmpv4_code",
	OXMARPOp: "arp_op", OXMARPSPA: "arp_spa", OXMARPTPA: "arp_tpa",
}

// OXM is one match TLV.
type OXM struct {
	Field   uint8
	HasMask bool
	Value   []byte
	Mask    []byte // nil unless HasMask
}

// String renders the TLV like "eth_dst=02:00:00:00:00:01".
func (o OXM) String() string {
	name, ok := oxmName[o.Field]
	if !ok {
		name = fmt.Sprintf("oxm%d", o.Field)
	}
	v := fmt.Sprintf("%x", o.Value)
	switch o.Field {
	case OXMEthDst, OXMEthSrc:
		var m pkt.MAC
		copy(m[:], o.Value)
		v = m.String()
	case OXMIPv4Src, OXMIPv4Dst, OXMARPSPA, OXMARPTPA:
		var ip pkt.IPv4
		copy(ip[:], o.Value)
		v = ip.String()
	case OXMInPort:
		v = fmt.Sprintf("%d", binary.BigEndian.Uint32(o.Value))
	case OXMEthType, OXMVLANVID, OXMTCPSrc, OXMTCPDst, OXMUDPSrc, OXMUDPDst, OXMARPOp:
		v = fmt.Sprintf("%d", binary.BigEndian.Uint16(o.Value))
	case OXMVLANPCP, OXMIPProto, OXMICMPType, OXMICMPCode:
		v = fmt.Sprintf("%d", o.Value[0])
	}
	if o.HasMask {
		return fmt.Sprintf("%s=%s/%x", name, v, o.Mask)
	}
	return fmt.Sprintf("%s=%s", name, v)
}

// Match is an OpenFlow match: an ordered list of OXM TLVs.
type Match struct {
	OXMs []OXM
}

// Get returns the TLV for a field, or nil.
func (m *Match) Get(field uint8) *OXM {
	for i := range m.OXMs {
		if m.OXMs[i].Field == field {
			return &m.OXMs[i]
		}
	}
	return nil
}

// add appends a field, replacing an existing entry for the same field.
func (m *Match) add(o OXM) *Match {
	for i := range m.OXMs {
		if m.OXMs[i].Field == o.Field {
			m.OXMs[i] = o
			return m
		}
	}
	m.OXMs = append(m.OXMs, o)
	return m
}

// Builder helpers: each sets one field and returns the match for
// chaining, e.g. new(Match).WithInPort(1).WithEthType(0x0800).

// WithInPort matches the ingress port.
func (m *Match) WithInPort(p uint32) *Match {
	v := make([]byte, 4)
	binary.BigEndian.PutUint32(v, p)
	return m.add(OXM{Field: OXMInPort, Value: v})
}

// WithEthDst matches the destination MAC.
func (m *Match) WithEthDst(mac pkt.MAC) *Match {
	return m.add(OXM{Field: OXMEthDst, Value: append([]byte{}, mac[:]...)})
}

// WithEthDstMasked matches a masked destination MAC.
func (m *Match) WithEthDstMasked(mac, mask pkt.MAC) *Match {
	return m.add(OXM{Field: OXMEthDst, HasMask: true,
		Value: append([]byte{}, mac[:]...), Mask: append([]byte{}, mask[:]...)})
}

// WithEthSrc matches the source MAC.
func (m *Match) WithEthSrc(mac pkt.MAC) *Match {
	return m.add(OXM{Field: OXMEthSrc, Value: append([]byte{}, mac[:]...)})
}

// WithEthType matches the (post-VLAN) EtherType.
func (m *Match) WithEthType(et uint16) *Match {
	v := make([]byte, 2)
	binary.BigEndian.PutUint16(v, et)
	return m.add(OXM{Field: OXMEthType, Value: v})
}

// WithVLAN matches a present tag with the given VID.
func (m *Match) WithVLAN(vid uint16) *Match {
	v := make([]byte, 2)
	binary.BigEndian.PutUint16(v, vid|OXMVIDPresent)
	return m.add(OXM{Field: OXMVLANVID, Value: v})
}

// WithNoVLAN matches only untagged packets.
func (m *Match) WithNoVLAN() *Match {
	v := make([]byte, 2)
	binary.BigEndian.PutUint16(v, OXMVIDNone)
	return m.add(OXM{Field: OXMVLANVID, Value: v})
}

// WithVLANPCP matches the tag priority.
func (m *Match) WithVLANPCP(pcp uint8) *Match {
	return m.add(OXM{Field: OXMVLANPCP, Value: []byte{pcp}})
}

// WithIPProto matches the IP protocol number.
func (m *Match) WithIPProto(p uint8) *Match {
	return m.add(OXM{Field: OXMIPProto, Value: []byte{p}})
}

// WithIPv4Src matches the exact IPv4 source.
func (m *Match) WithIPv4Src(ip pkt.IPv4) *Match {
	return m.add(OXM{Field: OXMIPv4Src, Value: append([]byte{}, ip[:]...)})
}

// WithIPv4SrcMasked matches a masked IPv4 source.
func (m *Match) WithIPv4SrcMasked(ip, mask pkt.IPv4) *Match {
	return m.add(OXM{Field: OXMIPv4Src, HasMask: true,
		Value: append([]byte{}, ip[:]...), Mask: append([]byte{}, mask[:]...)})
}

// WithIPv4Dst matches the exact IPv4 destination.
func (m *Match) WithIPv4Dst(ip pkt.IPv4) *Match {
	return m.add(OXM{Field: OXMIPv4Dst, Value: append([]byte{}, ip[:]...)})
}

// WithIPv4DstMasked matches a masked IPv4 destination.
func (m *Match) WithIPv4DstMasked(ip, mask pkt.IPv4) *Match {
	return m.add(OXM{Field: OXMIPv4Dst, HasMask: true,
		Value: append([]byte{}, ip[:]...), Mask: append([]byte{}, mask[:]...)})
}

// WithTCPDst matches the TCP destination port (requires ip_proto=6).
func (m *Match) WithTCPDst(p uint16) *Match {
	v := make([]byte, 2)
	binary.BigEndian.PutUint16(v, p)
	return m.add(OXM{Field: OXMTCPDst, Value: v})
}

// WithTCPSrc matches the TCP source port.
func (m *Match) WithTCPSrc(p uint16) *Match {
	v := make([]byte, 2)
	binary.BigEndian.PutUint16(v, p)
	return m.add(OXM{Field: OXMTCPSrc, Value: v})
}

// WithUDPDst matches the UDP destination port (requires ip_proto=17).
func (m *Match) WithUDPDst(p uint16) *Match {
	v := make([]byte, 2)
	binary.BigEndian.PutUint16(v, p)
	return m.add(OXM{Field: OXMUDPDst, Value: v})
}

// WithUDPSrc matches the UDP source port.
func (m *Match) WithUDPSrc(p uint16) *Match {
	v := make([]byte, 2)
	binary.BigEndian.PutUint16(v, p)
	return m.add(OXM{Field: OXMUDPSrc, Value: v})
}

// WithICMPType matches the ICMPv4 type.
func (m *Match) WithICMPType(t uint8) *Match {
	return m.add(OXM{Field: OXMICMPType, Value: []byte{t}})
}

// WithARPOp matches the ARP opcode.
func (m *Match) WithARPOp(op uint16) *Match {
	v := make([]byte, 2)
	binary.BigEndian.PutUint16(v, op)
	return m.add(OXM{Field: OXMARPOp, Value: v})
}

// WithARPTPA matches the ARP target protocol address.
func (m *Match) WithARPTPA(ip pkt.IPv4) *Match {
	return m.add(OXM{Field: OXMARPTPA, Value: append([]byte{}, ip[:]...)})
}

// WithARPSPA matches the ARP sender protocol address.
func (m *Match) WithARPSPA(ip pkt.IPv4) *Match {
	return m.add(OXM{Field: OXMARPSPA, Value: append([]byte{}, ip[:]...)})
}

// String renders the match like "in_port=1,eth_type=2048".
func (m *Match) String() string {
	if m == nil || len(m.OXMs) == 0 {
		return "any"
	}
	var b bytes.Buffer
	for i, o := range m.OXMs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(o.String())
	}
	return b.String()
}

// Equal reports whether two matches contain the same TLVs in the same
// order.
func (m *Match) Equal(other *Match) bool {
	if len(m.OXMs) != len(other.OXMs) {
		return false
	}
	for i := range m.OXMs {
		a, b := m.OXMs[i], other.OXMs[i]
		if a.Field != b.Field || a.HasMask != b.HasMask ||
			!bytes.Equal(a.Value, b.Value) || !bytes.Equal(a.Mask, b.Mask) {
			return false
		}
	}
	return true
}

// marshal encodes an ofp_match structure including padding to 8 bytes.
func (m *Match) marshal() ([]byte, error) {
	var body bytes.Buffer
	for _, o := range m.OXMs {
		wantLen, ok := oxmValueLen[o.Field]
		if !ok {
			return nil, fmt.Errorf("openflow: unsupported OXM field %d", o.Field)
		}
		if len(o.Value) != wantLen {
			return nil, fmt.Errorf("openflow: OXM %s value length %d, want %d",
				oxmName[o.Field], len(o.Value), wantLen)
		}
		payloadLen := wantLen
		hdr := uint32(OXMClassBasic)<<16 | uint32(o.Field)<<9
		if o.HasMask {
			if len(o.Mask) != wantLen {
				return nil, fmt.Errorf("openflow: OXM %s mask length %d, want %d",
					oxmName[o.Field], len(o.Mask), wantLen)
			}
			hdr |= 1 << 8
			payloadLen *= 2
		}
		hdr |= uint32(payloadLen)
		var h [4]byte
		binary.BigEndian.PutUint32(h[:], hdr)
		body.Write(h[:])
		body.Write(o.Value)
		if o.HasMask {
			body.Write(o.Mask)
		}
	}
	// ofp_match: type(2) | length(2) | oxms | pad to 8.
	length := 4 + body.Len()
	out := make([]byte, 0, length+7)
	var th [4]byte
	binary.BigEndian.PutUint16(th[0:2], 1) // OFPMT_OXM
	binary.BigEndian.PutUint16(th[2:4], uint16(length))
	out = append(out, th[:]...)
	out = append(out, body.Bytes()...)
	if rem := length % 8; rem != 0 {
		out = append(out, pad(8-rem)...)
	}
	return out, nil
}

// unmarshalMatch decodes an ofp_match and returns it together with the
// total number of bytes consumed (including padding).
func unmarshalMatch(data []byte) (*Match, int, error) {
	if len(data) < 4 {
		return nil, 0, fmt.Errorf("openflow: truncated match")
	}
	mtype := binary.BigEndian.Uint16(data[0:2])
	length := int(binary.BigEndian.Uint16(data[2:4]))
	if mtype != 1 {
		return nil, 0, fmt.Errorf("openflow: unsupported match type %d", mtype)
	}
	if length < 4 || length > len(data) {
		return nil, 0, fmt.Errorf("openflow: bad match length %d", length)
	}
	m := &Match{}
	body := data[4:length]
	for len(body) > 0 {
		if len(body) < 4 {
			return nil, 0, fmt.Errorf("openflow: truncated OXM header")
		}
		hdr := binary.BigEndian.Uint32(body[0:4])
		class := uint16(hdr >> 16)
		field := uint8(hdr >> 9 & 0x7f)
		hasMask := hdr&(1<<8) != 0
		plen := int(hdr & 0xff)
		if class != OXMClassBasic {
			return nil, 0, fmt.Errorf("openflow: unsupported OXM class %#x", class)
		}
		if len(body) < 4+plen {
			return nil, 0, fmt.Errorf("openflow: truncated OXM payload")
		}
		wantLen, ok := oxmValueLen[field]
		if !ok {
			return nil, 0, fmt.Errorf("openflow: unsupported OXM field %d", field)
		}
		o := OXM{Field: field, HasMask: hasMask}
		if hasMask {
			if plen != wantLen*2 {
				return nil, 0, fmt.Errorf("openflow: OXM field %d masked length %d", field, plen)
			}
			o.Value = append([]byte{}, body[4:4+wantLen]...)
			o.Mask = append([]byte{}, body[4+wantLen:4+2*wantLen]...)
		} else {
			if plen != wantLen {
				return nil, 0, fmt.Errorf("openflow: OXM field %d length %d", field, plen)
			}
			o.Value = append([]byte{}, body[4:4+wantLen]...)
		}
		m.OXMs = append(m.OXMs, o)
		body = body[4+plen:]
	}
	consumed := length
	if rem := length % 8; rem != 0 {
		consumed += 8 - rem
	}
	if consumed > len(data) {
		return nil, 0, fmt.Errorf("openflow: match padding exceeds buffer")
	}
	return m, consumed, nil
}
