package migrate

import (
	"errors"
	"fmt"
	"time"

	"github.com/harmless-sdn/harmless/internal/sim"
)

// Wave outcomes.
const (
	OutcomeCommitted  = "committed"
	OutcomeRolledBack = "rolledBack"
)

// waveRun is one wave's execution state.
type waveRun struct {
	plan     Wave
	rigs     []*switchRig
	deployAt time.Duration

	outcome       string // "" until decided
	decidedAt     time.Duration
	fault         FaultKind
	faultAt       time.Duration
	failover      bool
	configConform bool
	reason        string
}

// Executor runs a campaign: it owns the virtual-time engine, the live
// switch rigs, and the wave schedule, and enforces the verifier's
// invariants while traffic flows.
type Executor struct {
	spec Spec
	plan *Plan
	eng  *sim.Engine

	rigs      []*switchRig
	rigByName map[string]*switchRig
	waves     []*waveRun

	payload   []byte
	end       time.Duration // last decide + tail: traffic stops here
	failures  []string
	lossNoted bool
}

// NewExecutor plans the campaign and builds the pre-migration fabric:
// every switch in its legacy factory state, hosts attached, traffic
// ready to flow.
func NewExecutor(spec Spec) (*Executor, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	plan, err := PlanCampaign(spec.Switches, spec.ResolveCatalog(), spec.WaveBudget)
	if err != nil {
		return nil, err
	}
	x := &Executor{
		spec:      spec,
		plan:      plan,
		eng:       sim.NewEngine(spec.Seed),
		rigByName: make(map[string]*switchRig, len(spec.Switches)),
		payload:   []byte("harmless"),
	}
	// Rigs are built in planned wave order so rig index (and with it
	// MAC/IP addressing and datapath ids) is a pure function of the
	// plan.
	for _, w := range plan.Waves {
		for _, s := range w.Switches {
			r, err := newSwitchRig(x.eng, len(x.rigs), s)
			if err != nil {
				x.Close()
				return nil, err
			}
			x.rigs = append(x.rigs, r)
			x.rigByName[s.Name] = r
		}
	}
	soak, gap := spec.WaveSoak.Duration, spec.WaveGap.Duration
	for i, w := range plan.Waves {
		wr := &waveRun{plan: w, deployAt: gap + time.Duration(i)*(soak+gap)}
		for _, s := range w.Switches {
			wr.rigs = append(wr.rigs, x.rigByName[s.Name])
		}
		x.waves = append(x.waves, wr)
	}
	last := x.waves[len(x.waves)-1]
	x.end = last.deployAt + soak + spec.Tail.Duration
	return x, nil
}

// Plan exposes the campaign plan the executor runs.
func (x *Executor) Plan() *Plan { return x.plan }

// waveFor returns the wave migrating the named switch.
func (x *Executor) waveFor(name string) *waveRun {
	for _, w := range x.waves {
		for _, s := range w.plan.Switches {
			if s.Name == name {
				return w
			}
		}
	}
	return nil
}

// Run executes the campaign on virtual time and returns the verified
// report. wallBudget bounds real time spent (0 = unbounded).
func (x *Executor) Run(wallBudget time.Duration) (*Report, error) {
	defer x.Close()
	wallStart := time.Now() //harmless:allow-wallclock run-report wall duration, not simulation time

	// Wave schedule: deploy, then decide (commit or roll back) after
	// the soak window.
	for _, w := range x.waves {
		w := w
		x.eng.At(w.deployAt, func() { x.deployWave(w) })
		x.eng.At(w.deployAt+x.spec.WaveSoak.Duration, func() { x.decideWave(w) })
	}
	// Fault schedule: relative to the deploy instant of the wave
	// migrating the targeted switch.
	for _, f := range x.spec.Faults {
		f := f
		w := x.waveFor(f.Switch)
		x.eng.At(w.deployAt+f.AfterDeploy.Duration, func() { x.applyFault(f, w) })
	}
	// Traffic: a self-rescheduling tick until the campaign ends.
	x.eng.At(x.spec.TrafficInterval.Duration, x.trafficTick)

	st, err := x.eng.Run(sim.RunOpts{WallBudget: wallBudget})
	if err != nil {
		return nil, err
	}
	return x.finish(st, wallStart), nil
}

// trafficTick sends one round on every rig, checks conservation, and
// reschedules itself. Links are synchronous and the whole round runs
// in one callback, so the check sees a quiescent fabric.
func (x *Executor) trafficTick() {
	for _, r := range x.rigs {
		r.tick(x.payload)
	}
	if !x.checkConservation() {
		x.recordConservationFailure()
	}
	next := x.eng.Elapsed() + x.spec.TrafficInterval.Duration
	if next <= x.end {
		x.eng.After(x.spec.TrafficInterval.Duration, x.trafficTick)
	}
}

// deployWave migrates every switch of the wave inside one virtual-time
// callback: no traffic interleaves with the retagging, so the cutover
// is atomic from the hosts' point of view.
func (x *Executor) deployWave(w *waveRun) {
	for _, r := range w.rigs {
		if err := r.deploy(x.eng.Clock()); err != nil {
			x.failf("wave %d: deploying %s: %v", w.plan.Index, r.spec.Name, err)
			x.rollbackWave(w, fmt.Sprintf("deploy of %s failed", r.spec.Name))
			return
		}
	}
}

// decideWave is the post-soak verdict: a healthy, plan-conformant wave
// commits; anything else rolls back. A wave already decided (a
// mid-soak fault rolled it back) is left alone.
func (x *Executor) decideWave(w *waveRun) {
	if w.outcome != "" {
		return
	}
	for _, r := range w.rigs {
		if ok, reason := r.healthy(); !ok {
			x.rollbackWave(w, fmt.Sprintf("%s unhealthy at commit: %s", r.spec.Name, reason))
			return
		}
	}
	w.outcome = OutcomeCommitted
	w.decidedAt = x.eng.Elapsed()
	w.configConform = true
	for _, r := range w.rigs {
		if ok, reason := r.conforms(); !ok {
			w.configConform = false
			x.failf("wave %d: %s does not conform to plan: %s", w.plan.Index, r.spec.Name, reason)
		}
	}
}

// applyFault injects one fault and immediately runs the wave's health
// check — detection and rollback happen in the same virtual instant,
// so no traffic tick can land on a half-broken fabric (the zero-loss
// invariant is over host datagrams, and the fabric is quiescent for
// the whole callback).
func (x *Executor) applyFault(f FaultSpec, w *waveRun) {
	if w.outcome != "" {
		return
	}
	rig := x.rigByName[f.Switch]
	w.fault = f.Kind
	w.faultAt = x.eng.Elapsed()
	switch f.Kind {
	case FaultServerDown:
		rig.killServer()
	case FaultTrunkFlap:
		rig.flapped = true
		if err := rig.driver.SetPortShutdown(rig.trunkPort(), true); err != nil {
			x.failf("wave %d: flapping %s trunk: %v", w.plan.Index, rig.spec.Name, err)
		}
		x.eng.After(f.Duration.Duration, func() { x.endFlap(w, rig) })
	case FaultCtrlLoss:
		if err := rig.failover(); err != nil {
			x.failf("wave %d: failover on %s: %v", w.plan.Index, rig.spec.Name, err)
		} else {
			w.failover = true
		}
	}
	if ok, reason := rig.healthy(); !ok {
		x.rollbackWave(w, fmt.Sprintf("%s: %s", rig.spec.Name, reason))
	}
}

// rollbackWave returns every switch of the wave to its pre-wave legacy
// configuration and verifies the restoration. A switch whose trunk is
// still down from an in-flight flap defers its verification to the
// flap-up event (the shutdown line would spoil the comparison).
func (x *Executor) rollbackWave(w *waveRun, reason string) {
	w.outcome = OutcomeRolledBack
	w.decidedAt = x.eng.Elapsed()
	w.reason = reason
	w.configConform = true
	for _, r := range w.rigs {
		if err := r.rollback(); err != nil {
			w.configConform = false
			x.failf("wave %d: rolling back %s: %v", w.plan.Index, r.spec.Name, err)
			continue
		}
		if r.flapped {
			continue
		}
		x.verifyRestored(w, r)
	}
}

// verifyRestored checks one rolled-back switch against its pre-wave
// snapshot and books the verdict on the wave.
func (x *Executor) verifyRestored(w *waveRun, r *switchRig) {
	restored, err := r.restoredExactly()
	if err != nil {
		w.configConform = false
		x.failf("wave %d: verifying rollback of %s: %v", w.plan.Index, r.spec.Name, err)
		return
	}
	if !restored {
		w.configConform = false
		x.failf("wave %d: %s pre-wave config not restored", w.plan.Index, r.spec.Name)
	}
}

// endFlap re-enables a flapped trunk and completes the deferred
// rollback verification for the wave it failed.
func (x *Executor) endFlap(w *waveRun, r *switchRig) {
	r.flapped = false
	if err := r.driver.SetPortShutdown(r.trunkPort(), false); err != nil {
		x.failf("wave %d: re-enabling %s trunk: %v", w.plan.Index, r.spec.Name, err)
		return
	}
	if w.outcome == OutcomeRolledBack {
		x.verifyRestored(w, r)
	}
}

func (x *Executor) failf(format string, args ...any) {
	x.failures = append(x.failures, fmt.Sprintf(format, args...))
}

// Close tears down every rig; the returned error aggregates per-rig
// teardown failures.
func (x *Executor) Close() error {
	var errs []error
	for _, r := range x.rigs {
		if err := r.close(); err != nil {
			errs = append(errs, fmt.Errorf("migrate: closing %s: %w", r.spec.Name, err))
		}
	}
	return errors.Join(errs...)
}

// Run plans and executes a campaign in one call.
func Run(spec Spec, wallBudget time.Duration) (*Report, error) {
	x, err := NewExecutor(spec)
	if err != nil {
		return nil, err
	}
	return x.Run(wallBudget)
}
