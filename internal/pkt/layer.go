package pkt

import "fmt"

// LayerType identifies a protocol layer within a decoded packet.
type LayerType uint8

// Layer types understood by this package.
const (
	LayerTypeNone LayerType = iota
	LayerTypeEthernet
	LayerTypeDot1Q
	LayerTypeARP
	LayerTypeIPv4
	LayerTypeIPv6
	LayerTypeTCP
	LayerTypeUDP
	LayerTypeICMPv4
	LayerTypeDNS
	LayerTypePayload
)

// String returns the conventional protocol name.
func (t LayerType) String() string {
	switch t {
	case LayerTypeNone:
		return "None"
	case LayerTypeEthernet:
		return "Ethernet"
	case LayerTypeDot1Q:
		return "Dot1Q"
	case LayerTypeARP:
		return "ARP"
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeIPv6:
		return "IPv6"
	case LayerTypeTCP:
		return "TCP"
	case LayerTypeUDP:
		return "UDP"
	case LayerTypeICMPv4:
		return "ICMPv4"
	case LayerTypeDNS:
		return "DNS"
	case LayerTypePayload:
		return "Payload"
	}
	return fmt.Sprintf("LayerType(%d)", uint8(t))
}

// Layer is one decoded protocol layer. Implementations are the concrete
// header structs (Ethernet, IPv4, ...). DecodeFromBytes parses the
// layer's own header from data and remembers the remaining payload;
// NextLayerType tells the generic decoder how to continue.
type Layer interface {
	// LayerType identifies the protocol of this layer.
	LayerType() LayerType
	// DecodeFromBytes parses the layer from the start of data.
	DecodeFromBytes(data []byte) error
	// LayerPayload returns the bytes following this layer's header.
	LayerPayload() []byte
	// NextLayerType returns the type of the layer carried in the
	// payload, or LayerTypePayload if opaque/unknown.
	NextLayerType() LayerType
}

// SerializableLayer is a Layer that can write itself to a SerializeBuffer.
// SerializeTo PREPENDS the header (and, for layers with trailers or
// length/checksum fields, fixes those up against the bytes already in
// the buffer, which are treated as this layer's payload).
type SerializableLayer interface {
	Layer
	SerializeTo(b *SerializeBuffer) error
}

// decodeError annotates a parse failure with the layer that failed.
type decodeError struct {
	layer LayerType
	msg   string
}

func (e *decodeError) Error() string {
	return fmt.Sprintf("pkt: decoding %s: %s", e.layer, e.msg)
}

func errTruncated(t LayerType) error {
	return &decodeError{layer: t, msg: "truncated"}
}
