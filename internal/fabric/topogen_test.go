package fabric

import (
	"fmt"
	"testing"
)

// Fat-tree structural invariants, table-driven across arities: node
// counts from the closed forms (5k²/4 switches, k³/4 hosts), uniform
// switch degree k, and wiring validity.
func TestFatTreeInvariants(t *testing.T) {
	for _, k := range []int{2, 4, 6, 8, 16} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			topo, err := FatTree(k)
			if err != nil {
				t.Fatal(err)
			}
			if err := topo.Validate(); err != nil {
				t.Fatal(err)
			}
			if got, want := len(topo.SwitchIDs), 5*k*k/4; got != want {
				t.Errorf("switches = %d, want 5k²/4 = %d", got, want)
			}
			if got, want := len(topo.HostIDs), k*k*k/4; got != want {
				t.Errorf("hosts = %d, want k³/4 = %d", got, want)
			}
			if got, want := len(topo.Links), k*k*k/4+2*(k*k/2)*(k/2); got != want {
				t.Errorf("links = %d, want %d", got, want)
			}
			for _, id := range topo.SwitchIDs {
				if d := len(topo.Nodes[id].Ports); d != k {
					t.Fatalf("switch %s degree %d, want k=%d", topo.Nodes[id].Name, d, k)
				}
			}
			// Role census: (k/2)² cores, k·k/2 aggs and edges.
			counts := map[NodeRole]int{}
			for _, n := range topo.Nodes {
				counts[n.Role]++
			}
			if counts[RoleCore] != k*k/4 || counts[RoleAgg] != k*k/2 || counts[RoleEdge] != k*k/2 {
				t.Errorf("role census %v, want core=%d agg=%d edge=%d",
					counts, k*k/4, k*k/2, k*k/2)
			}
		})
	}
	if _, err := FatTree(3); err == nil {
		t.Error("FatTree(3) accepted an odd arity")
	}
	if _, err := FatTree(0); err == nil {
		t.Error("FatTree(0) accepted")
	}
}

// Leaf-spine structural invariants: leaf degree spines+hostsPerLeaf,
// spine degree leaves, full bipartite core.
func TestLeafSpineInvariants(t *testing.T) {
	cases := []struct{ spines, leaves, hosts int }{
		{1, 1, 1}, {2, 4, 8}, {4, 16, 16}, {8, 64, 4},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%dx%dx%d", c.spines, c.leaves, c.hosts), func(t *testing.T) {
			topo, err := LeafSpine(c.spines, c.leaves, c.hosts)
			if err != nil {
				t.Fatal(err)
			}
			if err := topo.Validate(); err != nil {
				t.Fatal(err)
			}
			if got, want := len(topo.SwitchIDs), c.spines+c.leaves; got != want {
				t.Errorf("switches = %d, want %d", got, want)
			}
			if got, want := len(topo.HostIDs), c.leaves*c.hosts; got != want {
				t.Errorf("hosts = %d, want %d", got, want)
			}
			for _, n := range topo.Nodes {
				switch n.Role {
				case RoleEdge:
					if len(n.Ports) != c.spines+c.hosts {
						t.Fatalf("leaf %s degree %d, want %d", n.Name, len(n.Ports), c.spines+c.hosts)
					}
				case RoleCore:
					if len(n.Ports) != c.leaves {
						t.Fatalf("spine %s degree %d, want %d", n.Name, len(n.Ports), c.leaves)
					}
				}
			}
		})
	}
	if _, err := LeafSpine(0, 4, 4); err == nil {
		t.Error("LeafSpine(0,4,4) accepted")
	}
}

// BFS path lengths match the analytic expectations: fat-tree hosts are
// 2 (same edge), 4 (same pod, different edge) or 6 (different pod)
// links apart; leaf-spine hosts are 2 (same leaf) or 4 apart.
func TestPathLengths(t *testing.T) {
	ft, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	sameEdge := [2]int{ft.HostIDs[0], ft.HostIDs[1]}
	samePod := [2]int{ft.HostIDs[0], ft.HostIDs[2]} // edge-0-0 vs edge-0-1
	crossPod := [2]int{ft.HostIDs[0], ft.HostIDs[len(ft.HostIDs)-1]}
	if ft.HostEdge(sameEdge[0]) != ft.HostEdge(sameEdge[1]) {
		t.Fatal("host construction order: first two hosts should share an edge")
	}
	if ft.HostEdge(samePod[0]) == ft.HostEdge(samePod[1]) ||
		ft.Nodes[ft.HostEdge(samePod[0])].Pod != ft.Nodes[ft.HostEdge(samePod[1])].Pod {
		t.Fatal("host construction order: hosts 0 and 2 should be same pod, different edge")
	}
	for _, c := range []struct {
		name string
		pair [2]int
		want int
	}{
		{"same-edge", sameEdge, 2},
		{"same-pod", samePod, 4},
		{"cross-pod", crossPod, 6},
	} {
		if got := ft.PathLen(c.pair[0], c.pair[1]); got != c.want {
			t.Errorf("fat-tree %s distance = %d, want %d", c.name, got, c.want)
		}
	}

	ls, err := LeafSpine(4, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := ls.PathLen(ls.HostIDs[0], ls.HostIDs[1]); got != 2 {
		t.Errorf("leaf-spine same-leaf distance = %d, want 2", got)
	}
	if got := ls.PathLen(ls.HostIDs[0], ls.HostIDs[len(ls.HostIDs)-1]); got != 4 {
		t.Errorf("leaf-spine cross-leaf distance = %d, want 4", got)
	}
}

// Every analytic route is a real path: consecutive nodes adjacent,
// length matches the BFS distance (routes are shortest paths), and the
// ECMP hash explores more than one path between far-apart hosts.
func TestRouteValidity(t *testing.T) {
	topos := []*Topology{}
	if ft, err := FatTree(4); err == nil {
		topos = append(topos, ft)
	}
	if ls, err := LeafSpine(3, 6, 2); err == nil {
		topos = append(topos, ls)
	}
	for _, topo := range topos {
		t.Run(topo.Kind, func(t *testing.T) {
			hosts := topo.HostIDs
			distinctPaths := map[string]bool{}
			for i := 0; i < len(hosts); i += 3 {
				for j := 1; j < len(hosts); j += 5 {
					src, dst := hosts[i], hosts[(i+j)%len(hosts)]
					if src == dst {
						continue
					}
					for h := uint64(0); h < 8; h++ {
						path, ok := topo.Route(src, dst, h)
						if !ok {
							t.Fatalf("no route %s -> %s (h=%d)",
								topo.Nodes[src].Name, topo.Nodes[dst].Name, h)
						}
						if path[0] != src || path[len(path)-1] != dst {
							t.Fatalf("route endpoints %v, want %d..%d", path, src, dst)
						}
						for n := 1; n < len(path); n++ {
							if topo.PortTo(path[n-1], path[n]) < 0 {
								t.Fatalf("route %v hops across non-adjacent %s -> %s", path,
									topo.Nodes[path[n-1]].Name, topo.Nodes[path[n]].Name)
							}
						}
						if want := topo.PathLen(src, dst); len(path)-1 != want {
							t.Fatalf("route %s->%s length %d links, BFS says %d",
								topo.Nodes[src].Name, topo.Nodes[dst].Name, len(path)-1, want)
						}
						if len(path) > 3 { // beyond the shared edge: ECMP territory
							distinctPaths[fmt.Sprint(path)] = true
						}
					}
				}
			}
			if len(distinctPaths) < 2 {
				t.Errorf("hash ECMP produced %d distinct long paths, want >= 2", len(distinctPaths))
			}
		})
	}
}

// Name lookup and port resolution round-trip.
func TestTopologyLookups(t *testing.T) {
	topo, err := LeafSpine(2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	leaf, ok := topo.NodeByName("leaf-1")
	if !ok {
		t.Fatal("leaf-1 not found by name")
	}
	spine, ok := topo.NodeByName("spine-0")
	if !ok {
		t.Fatal("spine-0 not found by name")
	}
	p := topo.PortTo(leaf, spine)
	if p < 0 {
		t.Fatal("leaf-1 has no port towards spine-0")
	}
	if peer := topo.Nodes[leaf].Ports[p].Peer; peer != spine {
		t.Fatalf("port %d of leaf-1 faces %d, want %d", p, peer, spine)
	}
	if topo.LinkBetween(leaf, spine) < 0 {
		t.Fatal("no link id between adjacent leaf and spine")
	}
	if topo.PortTo(leaf, topo.HostIDs[0]) >= 0 && topo.HostEdge(topo.HostIDs[0]) != leaf {
		t.Fatal("PortTo claims adjacency the host wiring denies")
	}
	if _, ok := topo.NodeByName("nope"); ok {
		t.Fatal("NodeByName invented a node")
	}
}
