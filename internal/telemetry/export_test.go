package telemetry

import (
	"testing"
	"time"
)

// push enqueues a flow export onto the table's drain ring directly —
// aggregator tests drive the ring without a datapath.
func push(t *testing.T, tab *Table, e Export) {
	t.Helper()
	if !tab.Ring().Push(e) {
		t.Fatal("ring full")
	}
}

func TestAggregatorBiflowMerge(t *testing.T) {
	tab := NewTable(Config{})
	col := NewCollector()
	agg := NewAggregator(tab, col, time.Hour)

	fwd := wireKey(1) // 10.1.0.1:1025 -> 10.2.0.1:80
	rev := FlowKey{
		EthSrc: fwd.EthDst, EthDst: fwd.EthSrc,
		EthType: fwd.EthType,
		IPSrc:   fwd.IPDst, IPDst: fwd.IPSrc,
		Proto: fwd.Proto,
		L4Src: fwd.L4Dst, L4Dst: fwd.L4Src,
		InPort: 2,
	}
	push(t, tab, Export{Key: fwd, Packets: 10, Bytes: 640, First: 1e9, Last: 2e9, OutPort: 2})
	push(t, tab, Export{Key: rev, Packets: 4, Bytes: 256, First: 1_500_000_000, Last: 3e9})
	// A second forward delta in the same window merges additively.
	push(t, tab, Export{Key: fwd, Packets: 2, Bytes: 128, First: 2e9, Last: 4e9})
	agg.Flush()

	flows := col.Flows()
	if len(flows) != 1 {
		t.Fatalf("flows = %d, want 1 merged biflow", len(flows))
	}
	f := flows[0]
	if f.Key != fwd {
		t.Fatalf("merged record must carry the first-seen direction, got %v", f.Key)
	}
	if f.Packets != 12 || f.Bytes != 768 || f.RevPackets != 4 || f.RevBytes != 256 {
		t.Fatalf("merged counters wrong: %+v", f)
	}
	if f.FirstMs != 1000 || f.LastMs != 4000 {
		t.Fatalf("merged window wrong: %+v", f)
	}
	st := agg.Stats()
	if st.Drained != 3 || st.FlowRecords != 1 || st.Biflows != 1 || st.Messages != 1 {
		t.Fatalf("aggregator stats = %+v", st)
	}
	pkts, bytes := col.Totals()
	if pkts != 16 || bytes != 1024 {
		t.Fatalf("totals = %d/%d", pkts, bytes)
	}
}

func TestAggregatorDistinctFlowsStaySeparate(t *testing.T) {
	tab := NewTable(Config{})
	col := NewCollector()
	agg := NewAggregator(tab, col, time.Hour)
	push(t, tab, Export{Key: wireKey(1), Packets: 1, Bytes: 64, First: 1, Last: 1})
	push(t, tab, Export{Key: wireKey(2), Packets: 1, Bytes: 64, First: 1, Last: 1})
	agg.Flush()
	if len(col.Flows()) != 2 {
		t.Fatalf("flows = %d, want 2", len(col.Flows()))
	}
}

func TestAggregatorSamplesPassThrough(t *testing.T) {
	tab := NewTable(Config{SampleRate: 64})
	col := NewCollector()
	agg := NewAggregator(tab, col, time.Hour)
	push(t, tab, Export{Kind: ExportSample, Key: wireKey(1), Packets: 1, Bytes: 64, First: 1, Last: 1})
	agg.Flush()
	if _, _, samples, _ := col.Stats(); samples != 1 {
		t.Fatalf("samples = %d", samples)
	}
	if agg.Stats().Samples != 1 {
		t.Fatal("aggregator sample counter")
	}
}

func TestAggregatorStartStop(t *testing.T) {
	tab := NewTable(Config{})
	col := NewCollector()
	agg := NewAggregator(tab, col, time.Millisecond)
	agg.Start()
	push(t, tab, Export{Key: wireKey(1), Packets: 3, Bytes: 192, First: 1, Last: 2})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if pkts, _ := col.Totals(); pkts == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("aggregator loop never exported")
		}
		time.Sleep(time.Millisecond)
	}
	agg.Stop()
	agg.Stop() // idempotent
	// After Stop, a manual Flush still works (shutdown path).
	push(t, tab, Export{Key: wireKey(2), Packets: 1, Bytes: 64, First: 3, Last: 3})
	agg.Flush()
	if pkts, _ := col.Totals(); pkts != 4 {
		t.Fatalf("post-stop flush lost records: %d", pkts)
	}
}

func TestCanonKeyARPFlowsDistinct(t *testing.T) {
	// Two different ARP conversations (all-zero IPs/ports) must not
	// collapse into one biflow bucket.
	a := FlowKey{EthSrc: [6]byte{2, 0, 0, 0, 0, 1}, EthDst: [6]byte{2, 0, 0, 0, 0, 2}, EthType: 0x0806}
	b := FlowKey{EthSrc: [6]byte{2, 0, 0, 0, 0, 3}, EthDst: [6]byte{2, 0, 0, 0, 0, 4}, EthType: 0x0806}
	if canonKey(&a) == canonKey(&b) {
		t.Fatal("distinct ARP conversations share a biflow key")
	}
	// ...while the two directions of ONE conversation must.
	ar := FlowKey{EthSrc: a.EthDst, EthDst: a.EthSrc, EthType: 0x0806}
	if canonKey(&a) != canonKey(&ar) {
		t.Fatal("ARP request/reply directions do not merge")
	}
}
