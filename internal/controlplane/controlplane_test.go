package controlplane

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/harmless-sdn/harmless/internal/openflow"
)

// fakeDatapath answers barriers and records everything else.
type fakeDatapath struct {
	mu   sync.Mutex
	msgs []openflow.Message
}

func (d *fakeDatapath) Features() openflow.FeaturesReply {
	return openflow.FeaturesReply{DatapathID: 0xfeed, NTables: 4, NBuffers: 16}
}

func (d *fakeDatapath) Handle(ch *Channel, m openflow.Message) {
	d.mu.Lock()
	d.msgs = append(d.msgs, m)
	d.mu.Unlock()
	if _, ok := m.(*openflow.BarrierRequest); ok {
		_ = ch.Reply(m, &openflow.BarrierReply{})
	}
}

func testCfg() Config {
	// Keep keepalive quiet during short tests.
	return Config{EchoInterval: time.Minute}
}

// attachPair wires one controller client to a channel set over a pipe.
func attachPair(t *testing.T, set *ChannelSet, events Events) *Controller {
	t.Helper()
	swSide, ctrlSide := net.Pipe()
	set.Attach(swSide)
	ctrl, err := Connect(ctrlSide, testCfg(), events)
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	t.Cleanup(func() { ctrl.Close() })
	return ctrl
}

func ctx(t *testing.T) context.Context {
	c, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return c
}

func TestHandshakeAndTypedRequests(t *testing.T) {
	dp := &fakeDatapath{}
	set := NewChannelSet(dp, testCfg())
	defer set.Close()
	ctrl := attachPair(t, set, Events{})

	if ctrl.DPID() != 0xfeed || ctrl.Features().NTables != 4 {
		t.Fatalf("features: %+v", ctrl.Features())
	}
	if err := ctrl.AwaitBarrier(ctx(t)); err != nil {
		t.Fatalf("barrier: %v", err)
	}
	// Fresh connections are EQUAL until negotiated.
	role, _, err := ctrl.RequestRole(ctx(t), openflow.RoleNoChange, 0)
	if err != nil {
		t.Fatalf("role query: %v", err)
	}
	if role != openflow.RoleEqual {
		t.Fatalf("initial role %s, want equal", openflow.RoleName(role))
	}
	// Async masks round-trip through SET_ASYNC / GET_ASYNC.
	want := openflow.AsyncConfig{PacketInMask: [2]uint32{1, 1}, PortStatusMask: [2]uint32{7, 0}}
	if err := ctrl.SetAsyncConfig(want); err != nil {
		t.Fatal(err)
	}
	got, err := ctrl.AsyncConfig(ctx(t))
	if err != nil {
		t.Fatalf("get async: %v", err)
	}
	if got != want {
		t.Fatalf("async config %+v, want %+v", got, want)
	}
}

func TestRoleArbitration(t *testing.T) {
	dp := &fakeDatapath{}
	set := NewChannelSet(dp, testCfg())
	defer set.Close()
	a := attachPair(t, set, Events{})
	b := attachPair(t, set, Events{})

	// A takes mastership at epoch 1.
	role, gen, err := a.RequestRole(ctx(t), openflow.RoleMaster, 1)
	if err != nil || role != openflow.RoleMaster || gen != 1 {
		t.Fatalf("A master: role=%v gen=%d err=%v", role, gen, err)
	}
	// B overthrows with a higher epoch; the switch demotes A silently.
	role, gen, err = b.RequestRole(ctx(t), openflow.RoleMaster, 2)
	if err != nil || role != openflow.RoleMaster || gen != 2 {
		t.Fatalf("B master: role=%v gen=%d err=%v", role, gen, err)
	}
	role, _, err = a.RequestRole(ctx(t), openflow.RoleNoChange, 0)
	if err != nil || role != openflow.RoleSlave {
		t.Fatalf("A after demotion: role=%s err=%v", openflow.RoleName(role), err)
	}
	// A cannot reclaim mastership with a stale generation id.
	_, _, err = a.RequestRole(ctx(t), openflow.RoleMaster, 1)
	ofErr, ok := err.(*openflow.Error)
	if !ok || ofErr.ErrType != openflow.ErrTypeRoleRequestFailed || ofErr.Code != openflow.RoleRequestFailedStale {
		t.Fatalf("stale generation not rejected: %v", err)
	}
	// The switch still reports B as master, at B's epoch.
	if m := set.Master(); m == nil || m.Role() != openflow.RoleMaster {
		t.Fatal("set lost its master")
	}
	if g, ok := set.GenerationID(); !ok || g != 2 {
		t.Fatalf("generation id %d, want 2", g)
	}
	// A bad role value is rejected cleanly.
	_, _, err = a.RequestRole(ctx(t), 99, 3)
	if ofErr, ok := err.(*openflow.Error); !ok || ofErr.Code != openflow.RoleRequestFailedBadRole {
		t.Fatalf("bad role not rejected: %v", err)
	}
}

func TestAsyncEventFiltering(t *testing.T) {
	dp := &fakeDatapath{}
	set := NewChannelSet(dp, testCfg())
	defer set.Close()

	type rx struct {
		mu        sync.Mutex
		packetIns int
		portStats int
	}
	recv := func(r *rx) Events {
		return Events{
			PacketIn:   func(*openflow.PacketIn) { r.mu.Lock(); r.packetIns++; r.mu.Unlock() },
			PortStatus: func(*openflow.PortStatus) { r.mu.Lock(); r.portStats++; r.mu.Unlock() },
		}
	}
	var ra, rb rx
	a := attachPair(t, set, recv(&ra))
	b := attachPair(t, set, recv(&rb))

	if _, _, err := a.RequestRole(ctx(t), openflow.RoleMaster, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.RequestRole(ctx(t), openflow.RoleSlave, 1); err != nil {
		t.Fatal(err)
	}

	pi := &openflow.PacketIn{Reason: openflow.PacketInReasonNoMatch, BufferID: openflow.NoBuffer}
	pi.Match.WithInPort(1)
	if n := set.Broadcast(pi, pi.Reason); n != 1 {
		t.Fatalf("packet-in fan-out reached %d channels, want 1 (master only)", n)
	}
	ps := &openflow.PortStatus{Reason: openflow.PortReasonAdd}
	if n := set.Broadcast(ps, ps.Reason); n != 2 {
		t.Fatalf("port-status fan-out reached %d channels, want 2 (slaves keep port-status)", n)
	}

	// The slave widens its own filter via SET_ASYNC and starts seeing
	// packet-ins.
	cfg := openflow.DefaultAsyncConfig()
	cfg.PacketInMask[1] = cfg.PacketInMask[0]
	if err := b.SetAsyncConfig(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AsyncConfig(ctx(t)); err != nil { // fences the SetAsync
		t.Fatal(err)
	}
	if n := set.Broadcast(pi, pi.Reason); n != 2 {
		t.Fatalf("packet-in after slave SET_ASYNC reached %d channels, want 2", n)
	}

	// And the events actually landed on the right clients.
	deadline := time.Now().Add(2 * time.Second)
	for {
		ra.mu.Lock()
		rb.mu.Lock()
		ok := ra.packetIns == 2 && ra.portStats == 1 && rb.packetIns == 1 && rb.portStats == 1
		ra.mu.Unlock()
		rb.mu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("event delivery: A{pi:%d ps:%d} B{pi:%d ps:%d}, want A{2,1} B{1,1}",
				ra.packetIns, ra.portStats, rb.packetIns, rb.portStats)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestKeepaliveDeadPeer: a peer that stops reading and replying is
// torn down within EchoTimeout, terminating an attached channel.
func TestKeepaliveDeadPeer(t *testing.T) {
	dp := &fakeDatapath{}
	set := NewChannelSet(dp, Config{EchoInterval: 10 * time.Millisecond, EchoTimeout: 30 * time.Millisecond})
	defer set.Close()

	swSide, peer := net.Pipe()
	ch := set.Attach(swSide)
	// The peer never reads and never speaks: liveness must kill the
	// channel even though the transport itself stays open.
	select {
	case <-ch.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("dead peer never detected")
	}
	peer.Close()
	if got := len(set.Channels()); got != 0 {
		t.Fatalf("dead channel still in set (%d)", got)
	}
}

// TestDialBackoffReconnect: an active-connect channel survives a
// controller restart — it backs off, redials, and completes a fresh
// handshake once the listener returns.
func TestDialBackoffReconnect(t *testing.T) {
	dp := &fakeDatapath{}
	set := NewChannelSet(dp, Config{
		EchoInterval: time.Minute,
		BackoffMin:   5 * time.Millisecond,
		BackoffMax:   50 * time.Millisecond,
	})
	defer set.Close()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	accepted := make(chan *Controller, 2)
	serve := func(l net.Listener) {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			ctrl, err := Connect(conn, testCfg(), Events{})
			if err == nil {
				accepted <- ctrl
			}
		}
	}
	go serve(l)

	ch := set.Dial(addr)
	var first *Controller
	select {
	case first = <-accepted:
	case <-time.After(5 * time.Second):
		t.Fatal("switch never dialed in")
	}
	if first.DPID() != 0xfeed {
		t.Fatalf("dpid %#x", first.DPID())
	}

	// Controller crash: listener and connection both go away. The
	// channel leaves Up and starts redialing into a dead address.
	l.Close()
	first.Close()
	deadline := time.Now().Add(5 * time.Second)
	for ch.State() == StateUp {
		if time.Now().After(deadline) {
			t.Fatal("channel never noticed the controller dying")
		}
		time.Sleep(time.Millisecond)
	}

	// Give the backoff loop a few failed attempts, then restart the
	// listener on the same address.
	time.Sleep(30 * time.Millisecond)
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	go serve(l2)

	var second *Controller
	select {
	case second = <-accepted:
	case <-time.After(10 * time.Second):
		t.Fatal("switch never redialed the restarted controller")
	}
	defer second.Close()
	if second.DPID() != 0xfeed {
		t.Fatalf("redial dpid %#x", second.DPID())
	}
	if ch.Redials() == 0 {
		t.Error("no backoff redials recorded")
	}
	deadline = time.Now().Add(5 * time.Second)
	for ch.State() != StateUp {
		if time.Now().After(deadline) {
			t.Fatalf("channel state %s after reconnect, want up", ch.State())
		}
		time.Sleep(time.Millisecond)
	}
	// The fresh connection renegotiated from scratch.
	if role, _, err := second.RequestRole(ctx(t), openflow.RoleNoChange, 0); err != nil || role != openflow.RoleEqual {
		t.Fatalf("role after reconnect: %s err=%v", openflow.RoleName(role), err)
	}
}

func TestBackoffSchedule(t *testing.T) {
	cfg := Config{BackoffMin: 100 * time.Millisecond, BackoffMax: time.Second}.withDefaults()
	want := []time.Duration{100, 200, 400, 800, 1000, 1000}
	for i, w := range want {
		if got := cfg.backoff(i); got != w*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}
