// Command trafficgen runs the E2 throughput sweep without the Go
// bench harness: it pushes frames of each RFC 2544 size through (a)
// a bare software switch and (b) the full HARMLESS chain, and prints
// packets/s, Gbit/s and the relative penalty — the table behind the
// paper's "no major performance penalty" claim.
//
// -batch N drives the switch through the batched dataplane API
// (ReceiveBatch with N-frame vectors, ring egress backend on the bare
// path) instead of frame-by-frame netem injection; -workers N runs the
// poll-mode worker runtime — N producers feeding N RSS-sharded workers
// on the bare path, and the pool interposed on SS_1's trunk ingress in
// the chain; -cpuprofile writes a pprof profile of the measurement
// loops.
//
// -flows N switches to the telemetry exercise mode instead of the E2
// sweep: a heavy-hitter + mouse-churn flow mix (N concurrently active
// short-lived flows over a few elephants) runs for -duration with the
// flow-telemetry plane attached, so aggregation, the active/idle
// export timers and the 1-in-N sampler face realistic flow dynamics.
// It prints live telemetry state each second, the top talkers at the
// end, and verifies exported totals against the datapath counters;
// -telemetry-export additionally ships the IPFIX records to a real
// collector (see cmd/flowtop).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"github.com/harmless-sdn/harmless/internal/controller"
	"github.com/harmless-sdn/harmless/internal/controller/apps"
	"github.com/harmless-sdn/harmless/internal/fabric"
	"github.com/harmless-sdn/harmless/internal/harmless"
	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/softswitch"
	ssruntime "github.com/harmless-sdn/harmless/internal/softswitch/runtime"
)

func main() {
	duration := flag.Duration("duration", 500*time.Millisecond, "measurement time per cell (or total time in -flows mode)")
	specialize := flag.Bool("specialize", true, "enable the ESwitch-style fast path")
	batch := flag.Int("batch", 1, "frames per ReceiveBatch vector (1 = per-frame Receive)")
	workers := flag.Int("workers", 0, "poll-mode workers (and producers) driving the datapath (0 = single caller thread)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	flows := flag.Int("flows", 0, "telemetry mix mode: N active short-lived flows churning over heavy hitters (0 = run the E2 sweep)")
	elephants := flag.Int("elephants", 4, "long-lived heavy-hitter flows in the -flows mix")
	mouseLife := flag.Int("mouse-life", 32, "packets each short-lived flow emits before being replaced")
	sampleRate := flag.Int("sample-rate", 64, "sFlow-style 1-in-N packet sampling in the -flows mix (0 = off)")
	export := flag.String("telemetry-export", "", "also ship IPFIX records to this UDP collector address in -flows mode")
	flag.Parse()

	if *batch < 1 {
		fatal("-batch must be >= 1")
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	if *flows > 0 {
		runMix(mixConfig{
			flows: *flows, elephants: *elephants, mouseLife: *mouseLife,
			duration: *duration, workers: *workers, batch: *batch,
			sampleRate: *sampleRate, specialize: *specialize, export: *export,
		})
		return
	}

	fmt.Printf("batch=%d workers=%d\n", *batch, *workers)
	fmt.Printf("%-8s %-22s %-22s %-10s\n", "frame", "bare softswitch", "HARMLESS chain", "penalty")
	for _, size := range fabric.FrameSizes {
		var barePPS float64
		if *workers > 0 {
			barePPS = measureBareWorkers(size, *duration, *specialize, *workers)
		} else {
			barePPS = measureBare(size, *duration, *specialize, *batch)
		}
		harmPPS := measureHARMLESS(size, *duration, *specialize, *batch, *workers)
		penalty := 1 - harmPPS/barePPS
		fmt.Printf("%-8d %10.0f pps %5.2f Gb/s %10.0f pps %5.2f Gb/s %8.1f%%\n",
			size,
			barePPS, gbps(barePPS, size),
			harmPPS, gbps(harmPPS, size),
			penalty*100)
	}
}

func gbps(pps float64, size int) float64 { return pps * float64(size) * 8 / 1e9 }

// measureBare drives a two-port switch with the ring egress backend:
// nothing but the datapath in the measured loop.
func measureBare(size int, d time.Duration, specialize bool, batch int) float64 {
	sw := softswitch.New("bare", 1, softswitch.WithSpecialization(specialize))
	in := netem.NewLink(netem.LinkConfig{})
	defer in.Close()
	sw.AttachNetPort(1, "in", in.A())
	ring := softswitch.NewRingBackend(4096)
	sw.AttachPort(2, "out", ring)
	m := openflow.Match{}
	m.WithInPort(1)
	if _, err := sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowAdd, Priority: 10,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
		Match: m, Instructions: []openflow.Instruction{&openflow.InstrApplyActions{
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 2, MaxLen: 0xffff}},
		}},
	}); err != nil {
		fatal("flow: %v", err)
	}
	// At least one distinct flow (and buffer) per batch slot: frames of
	// one vector must not alias, since each frame's ownership transfers
	// to the switch.
	nFlows := 64
	if batch > nFlows {
		nFlows = batch
	}
	gen := fabric.NewUDPGenerator(size, nFlows, 42)
	var vec, sink [][]byte
	return measure(d, batch, func() {
		if batch == 1 {
			sw.Receive(1, gen.Next())
		} else {
			vec = gen.NextBatch(vec, batch)
			sw.ReceiveBatch(1, vec)
		}
		sink = ring.Ring().Drain(sink[:0], 0)
	})
}

// discardBackend swallows egress frames, counting them: the bare
// worker measurement wants nothing but datapath and pool in the
// measured loop (no egress ring to drain from outside).
type discardBackend struct {
	frames atomic.Uint64
}

func (db *discardBackend) Transmit([]byte) { db.frames.Add(1) }
func (db *discardBackend) TransmitBatch(fs [][]byte) {
	db.frames.Add(uint64(len(fs)))
}

// measureBareWorkers drives the bare switch through the poll-mode
// worker pool: `workers` producer goroutines dispatch flows into the
// RSS-sharded rings, `workers` run-to-completion workers drain them.
// Reported pps is aggregate frames processed over wall time.
func measureBareWorkers(size int, d time.Duration, specialize bool, workers int) float64 {
	sw := softswitch.New("bare", 1, softswitch.WithSpecialization(specialize))
	sink := &discardBackend{}
	sw.AttachPort(2, "out", sink)
	m := openflow.Match{}
	m.WithInPort(1)
	if _, err := sw.ApplyFlowMod(&openflow.FlowMod{
		TableID: 0, Command: openflow.FlowAdd, Priority: 10,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
		Match: m, Instructions: []openflow.Instruction{&openflow.InstrApplyActions{
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 2, MaxLen: 0xffff}},
		}},
	}); err != nil {
		fatal("flow: %v", err)
	}
	pool := ssruntime.New(sw, ssruntime.Config{Workers: workers})
	pool.Start()
	defer pool.Stop()

	// Warm the cache with every flow before the clock starts; the
	// warm-up frames are excluded from the reported rate via base.
	warmGen := fabric.NewUDPGenerator(size, 256, 42)
	for i := 0; i < warmGen.Len(); i++ {
		for !pool.Dispatch(1, warmGen.Next()) {
		}
	}
	pool.Drain()
	base := pool.Stats().Frames

	start := time.Now()
	deadline := start.Add(d)
	var wg sync.WaitGroup
	for p := 0; p < workers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			gen := fabric.NewUDPGenerator(size, 256, 42)
			for time.Now().Before(deadline) {
				for i := 0; i < 256; i++ {
					for !pool.Dispatch(1, gen.Next()) {
						// ring full: workers are the bottleneck, retry
					}
				}
			}
		}(p)
	}
	wg.Wait()
	pool.Drain()
	elapsed := time.Since(start)
	return float64(pool.Stats().Frames-base) / elapsed.Seconds()
}

func measureHARMLESS(size int, d time.Duration, specialize bool, batch, workers int) float64 {
	dep, err := fabric.BuildDeployment(fabric.DeployConfig{
		NumPorts:   4,
		Apps:       []controller.App{&apps.Learning{Table: 0}},
		Specialize: specialize,
	})
	if err != nil {
		fatal("deploy: %v", err)
	}
	defer dep.Close()
	if err := dep.WaitConnected(5 * time.Second); err != nil {
		fatal("controller: %v", err)
	}
	// With workers, trunk rx into SS_1 goes through the RSS-sharded
	// pool instead of running inline on the injecting goroutine — the
	// same interposition harmlessd -workers performs.
	var pool *ssruntime.Pool
	if workers > 0 {
		pool = ssruntime.New(dep.S4.SS1, ssruntime.Config{Workers: workers})
		pool.Start()
		defer pool.Stop()
		trunk := dep.TrunkLink.B()
		trunk.SetReceiver(func(frame []byte) { pool.Dispatch(harmless.SS1TrunkPort, frame) })
		trunk.SetBatchReceiver(func(frames [][]byte) { pool.DispatchBatch(harmless.SS1TrunkPort, frames) })
	}
	// Warm flows in both directions.
	for i := 0; i < 2; i++ {
		if err := dep.Hosts[1].Ping(dep.Hosts[2].IP, 2*time.Second); err != nil {
			fatal("warmup: %v", err)
		}
	}
	payloadLen := size - pkt.EthernetHeaderLen - pkt.IPv4MinHeaderLen - pkt.UDPHeaderLen
	if payloadLen < 0 {
		payloadLen = 0
	}
	payload := make(pkt.Payload, payloadLen)
	frame, err := pkt.Serialize(
		&pkt.Ethernet{Src: fabric.HostMAC(1), Dst: fabric.HostMAC(2), EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4Header{TTL: 64, Protocol: pkt.IPProtoUDP, Src: fabric.HostIP(1), Dst: fabric.HostIP(2)},
		&pkt.UDP{SrcPort: 7, DstPort: 8},
		&payload,
	)
	if err != nil {
		fatal("frame: %v", err)
	}
	h1 := dep.Hosts[1]
	// Distinct buffers per batch slot: frames of one vector must not
	// alias (ownership of each transfers to the chain). Resending the
	// same buffers across iterations is fine for this chain — like the
	// E2 bench, the legacy switch re-tags a copy, never the original.
	vec := make([][]byte, batch)
	for i := range vec {
		vec[i] = append([]byte{}, frame...)
	}
	send := func() {
		if batch == 1 {
			h1.SendRaw(frame)
			return
		}
		h1.SendRawBatch(vec)
	}
	if pool == nil {
		return measure(d, batch, send)
	}
	// Worker mode: the send loop only queues into the RSS rings, so
	// count what the workers actually PROCESSED, not what was sent
	// (ring tail drops under overload must not inflate the result).
	pool.Drain()
	base := pool.Stats().Frames
	start := time.Now()
	for time.Since(start) < d {
		for i := 0; i < 64; i++ {
			send()
		}
	}
	pool.Drain()
	elapsed := time.Since(start)
	return float64(pool.Stats().Frames-base) / elapsed.Seconds()
}

// measure runs fn (which moves `batch` frames) in a tight loop for
// duration d and returns frames/s.
func measure(d time.Duration, batch int, fn func()) float64 {
	// Warm up.
	for i := 0; i < 1000/batch+1; i++ {
		fn()
	}
	start := time.Now()
	n := 0
	inner := 256 / batch
	if inner < 1 {
		inner = 1
	}
	for time.Since(start) < d {
		for i := 0; i < inner; i++ {
			fn()
		}
		n += inner * batch
	}
	return float64(n) / time.Since(start).Seconds()
}

func fatal(format string, args ...any) {
	// os.Exit skips the deferred StopCPUProfile; flush the profile so
	// a failing run still leaves a readable one. No-op when profiling
	// never started.
	pprof.StopCPUProfile()
	fmt.Fprintf(os.Stderr, "trafficgen: "+format+"\n", args...)
	os.Exit(1)
}
