package telemetry

import (
	"encoding/binary"
	"fmt"
)

// IPFIX-style export encoding (RFC 7011 message framing, RFC 5103
// reverse information elements for biflows). Each message carries the
// template set followed by data sets, so a collector can decode any
// message in isolation — the simple-and-robust choice for UDP
// transport; real exporters amortize templates over an interval, which
// costs this encoder ~90 bytes per message.
//
// Two templates are exported:
//
//	FlowTemplateID (256): merged (bi)flow records — MACs, ethertype,
//	    VLAN, 5-tuple, interfaces, forward and reverse delta
//	    counters, window timestamps, end reason.
//	SampleTemplateID (257): sFlow-style packet samples — 5-tuple,
//	    interfaces, frame size, sampling interval.

const (
	ipfixVersion   = 10
	ipfixHeaderLen = 16

	// TemplateSetID is the reserved set id carrying templates.
	TemplateSetID = 2
	// FlowTemplateID identifies the (bi)flow record template.
	FlowTemplateID = 256
	// SampleTemplateID identifies the packet-sample template.
	SampleTemplateID = 257

	// ReversePEN is the IANA enterprise number of RFC 5103 reverse
	// information elements.
	ReversePEN = 29305
)

// IANA information element ids used by the templates.
const (
	ieOctetDeltaCount   = 1
	iePacketDeltaCount  = 2
	ieProtocol          = 4
	ieSrcPort           = 7
	ieSrcIPv4           = 8
	ieIngressInterface  = 10
	ieDstPort           = 11
	ieDstIPv4           = 12
	ieEgressInterface   = 14
	ieSamplingInterval  = 34
	ieSourceMac         = 56
	ieVlanID            = 58
	ieDestinationMac    = 80
	ieFlowEndReason     = 136
	ieFlowStartMillis   = 152
	ieFlowEndMillis     = 153
	ieEthernetType      = 256
	enterpriseBit       = 0x8000
	ieRevOctetDelta     = enterpriseBit | ieOctetDeltaCount
	ieRevPacketDelta    = enterpriseBit | iePacketDeltaCount
	maxRecordsPerMsg    = 14 // keeps messages comfortably under 1500B
	maxMsgLenForDecoder = 1 << 16
)

// fieldSpec is one template field: IANA id (with the enterprise bit
// folded in), length, and enterprise number (0 = IANA).
type fieldSpec struct {
	id  uint16
	len uint16
	pen uint32
}

var flowTemplate = []fieldSpec{
	{ieSourceMac, 6, 0},
	{ieDestinationMac, 6, 0},
	{ieEthernetType, 2, 0},
	{ieVlanID, 2, 0},
	{ieSrcIPv4, 4, 0},
	{ieDstIPv4, 4, 0},
	{ieProtocol, 1, 0},
	{ieSrcPort, 2, 0},
	{ieDstPort, 2, 0},
	{ieIngressInterface, 4, 0},
	{ieEgressInterface, 4, 0},
	{ieOctetDeltaCount, 8, 0},
	{iePacketDeltaCount, 8, 0},
	{ieRevOctetDelta, 8, ReversePEN},
	{ieRevPacketDelta, 8, ReversePEN},
	{ieFlowStartMillis, 8, 0},
	{ieFlowEndMillis, 8, 0},
	{ieFlowEndReason, 1, 0},
}

var sampleTemplate = []fieldSpec{
	{ieSrcIPv4, 4, 0},
	{ieDstIPv4, 4, 0},
	{ieProtocol, 1, 0},
	{ieSrcPort, 2, 0},
	{ieDstPort, 2, 0},
	{ieIngressInterface, 4, 0},
	{ieEgressInterface, 4, 0},
	{ieOctetDeltaCount, 8, 0},
	{ieSamplingInterval, 4, 0},
}

// WireRecord is one (possibly bidirectional) flow record bound for the
// wire: the aggregator's merge output. Key carries the forward
// direction; Rev* count the reverse direction when a matching
// opposite-direction record was merged in.
type WireRecord struct {
	Key        FlowKey
	Packets    uint64
	Bytes      uint64
	RevPackets uint64
	RevBytes   uint64
	First      int64 // unixnano
	Last       int64
	OutPort    uint32
	EndReason  uint8
}

// WireSample is one packet sample bound for the wire.
type WireSample struct {
	Key      FlowKey
	Size     uint32
	OutPort  uint32
	Interval uint32
}

// Encoder renders IPFIX-style messages. Not safe for concurrent use;
// the aggregator owns one.
type Encoder struct {
	// Domain is the observation domain id stamped on every message.
	Domain uint32

	seq uint32 // data records exported so far (RFC 7011 sequence semantics)
	buf []byte
}

// appendU16/U32/U64 keep the encoding noise down.
func appendU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

// appendTemplateSet renders the template set declaring both templates.
func appendTemplateSet(b []byte) []byte {
	setStart := len(b)
	b = appendU16(b, TemplateSetID)
	b = appendU16(b, 0) // set length, patched below
	for _, t := range []struct {
		id     uint16
		fields []fieldSpec
	}{{FlowTemplateID, flowTemplate}, {SampleTemplateID, sampleTemplate}} {
		b = appendU16(b, t.id)
		b = appendU16(b, uint16(len(t.fields)))
		for _, f := range t.fields {
			b = appendU16(b, f.id)
			b = appendU16(b, f.len)
			if f.id&enterpriseBit != 0 {
				b = appendU32(b, f.pen)
			}
		}
	}
	binary.BigEndian.PutUint16(b[setStart+2:], uint16(len(b)-setStart))
	return b
}

func appendFlowRecord(b []byte, r *WireRecord) []byte {
	b = append(b, r.Key.EthSrc[:]...)
	b = append(b, r.Key.EthDst[:]...)
	b = appendU16(b, r.Key.EthType)
	b = appendU16(b, r.Key.VLANID)
	b = append(b, r.Key.IPSrc[:]...)
	b = append(b, r.Key.IPDst[:]...)
	b = append(b, r.Key.Proto)
	b = appendU16(b, r.Key.L4Src)
	b = appendU16(b, r.Key.L4Dst)
	b = appendU32(b, r.Key.InPort)
	b = appendU32(b, r.OutPort)
	b = appendU64(b, r.Bytes)
	b = appendU64(b, r.Packets)
	b = appendU64(b, r.RevBytes)
	b = appendU64(b, r.RevPackets)
	b = appendU64(b, uint64(r.First/1e6))
	b = appendU64(b, uint64(r.Last/1e6))
	b = append(b, r.EndReason)
	return b
}

func appendSampleRecord(b []byte, s *WireSample) []byte {
	b = append(b, s.Key.IPSrc[:]...)
	b = append(b, s.Key.IPDst[:]...)
	b = append(b, s.Key.Proto)
	b = appendU16(b, s.Key.L4Src)
	b = appendU16(b, s.Key.L4Dst)
	b = appendU32(b, s.Key.InPort)
	b = appendU32(b, s.OutPort)
	b = appendU64(b, uint64(s.Size))
	b = appendU32(b, s.Interval)
	return b
}

// Encode renders flows and samples into one or more self-contained
// messages (template set + data sets) and hands each to emit. The
// returned slice count is the number of messages produced. exportTime
// is the unix-seconds export timestamp stamped on the headers.
func (e *Encoder) Encode(flows []WireRecord, samples []WireSample, exportTime uint32, emit func(msg []byte) error) (int, error) {
	msgs := 0
	for len(flows) > 0 || len(samples) > 0 {
		nf := len(flows)
		if nf > maxRecordsPerMsg {
			nf = maxRecordsPerMsg
		}
		ns := len(samples)
		if ns > maxRecordsPerMsg-nf {
			ns = maxRecordsPerMsg - nf
		}
		msg := e.encodeOne(flows[:nf], samples[:ns], exportTime)
		if err := emit(msg); err != nil {
			return msgs, err
		}
		msgs++
		flows = flows[nf:]
		samples = samples[ns:]
	}
	return msgs, nil
}

// encodeOne renders one message into the encoder's reusable buffer.
func (e *Encoder) encodeOne(flows []WireRecord, samples []WireSample, exportTime uint32) []byte {
	b := e.buf[:0]
	b = appendU16(b, ipfixVersion)
	b = appendU16(b, 0) // message length, patched below
	b = appendU32(b, exportTime)
	b = appendU32(b, e.seq)
	b = appendU32(b, e.Domain)
	b = appendTemplateSet(b)
	if len(flows) > 0 {
		setStart := len(b)
		b = appendU16(b, FlowTemplateID)
		b = appendU16(b, 0)
		for i := range flows {
			b = appendFlowRecord(b, &flows[i])
		}
		binary.BigEndian.PutUint16(b[setStart+2:], uint16(len(b)-setStart))
		e.seq += uint32(len(flows))
	}
	if len(samples) > 0 {
		setStart := len(b)
		b = appendU16(b, SampleTemplateID)
		b = appendU16(b, 0)
		for i := range samples {
			b = appendSampleRecord(b, &samples[i])
		}
		binary.BigEndian.PutUint16(b[setStart+2:], uint16(len(b)-setStart))
		e.seq += uint32(len(samples))
	}
	binary.BigEndian.PutUint16(b[2:], uint16(len(b)))
	e.buf = b
	return b
}

// Sequence returns the number of data records encoded so far.
func (e *Encoder) Sequence() uint32 { return e.seq }

var errShortMessage = fmt.Errorf("telemetry: truncated ipfix message")
