// Load balancer example — demo use case (a) of the paper: equally
// distribute ingress web traffic between backends based on the source
// IP address, with the legacy switch doing the port fan-out and the
// OpenFlow pipeline doing the balancing.
//
//	go run ./examples/loadbalancer
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/harmless-sdn/harmless/internal/controller"
	"github.com/harmless-sdn/harmless/internal/controller/apps"
	"github.com/harmless-sdn/harmless/internal/fabric"
	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/stats"
)

func main() {
	vip := pkt.MustIPv4("10.0.0.100")
	vmac := pkt.MustMAC("02:00:00:00:01:00")
	lb := &apps.LoadBalancer{
		Table: 0, VIP: vip, VMAC: vmac, ServicePort: 80,
		Backends: []apps.Backend{
			{IP: fabric.HostIP(1), MAC: fabric.HostMAC(1), Port: 1},
			{IP: fabric.HostIP(2), MAC: fabric.HostMAC(2), Port: 2},
		},
	}
	d, err := fabric.BuildDeployment(fabric.DeployConfig{
		NumPorts: 4, // backends on 1,2; client on 3; trunk 4
		Apps:     []controller.App{lb, &apps.Learning{Table: 1}},
	})
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	defer d.Close()
	if err := d.WaitConnected(5 * time.Second); err != nil {
		log.Fatalf("controller: %v", err)
	}

	// Two web servers.
	for i := 1; i <= 2; i++ {
		name := fmt.Sprintf("backend-%d", i)
		d.Hosts[i].ServeTCP(80, func([]byte) []byte {
			return []byte("HTTP/1.0 200 OK\r\nServer: " + name + "\r\n\r\nhello")
		})
	}
	client := d.Hosts[3]

	fmt.Printf("virtual service %s:80 backed by %s and %s\n\n",
		vip, fabric.HostIP(1), fabric.HostIP(2))

	// A real GET through the VIP (controller answers the ARP, the
	// pipeline DNATs to a backend and SNATs the response back).
	resp, err := client.GetTCP(vip, 80, []byte("GET / HTTP/1.0\r\n\r\n"), 3*time.Second)
	if err != nil {
		log.Fatalf("GET: %v", err)
	}
	fmt.Printf("client GET http://%s/ ->\n%s\n\n", vip, resp)

	// Distribution: emulate 32 clients with distinct source addresses
	// behind the client port and count which backend each SYN lands on.
	dist := stats.NewDistribution()
	before1, _ := d.Hosts[1].Stats()
	before2, _ := d.Hosts[2].Stats()
	for i := 0; i < 32; i++ {
		src := pkt.IPv4{172, 16, 0, byte(i)}
		pl := pkt.Payload(nil)
		syn, err := pkt.Serialize(
			&pkt.Ethernet{Src: client.MAC, Dst: vmac, EtherType: pkt.EtherTypeIPv4},
			&pkt.IPv4Header{TTL: 64, Protocol: pkt.IPProtoTCP, Src: src, Dst: vip},
			&pkt.TCP{SrcPort: uint16(10000 + i), DstPort: 80, Flags: pkt.TCPSyn, Window: 65535},
			&pl,
		)
		if err != nil {
			log.Fatal(err)
		}
		client.SendRaw(syn)
	}
	time.Sleep(100 * time.Millisecond)
	after1, _ := d.Hosts[1].Stats()
	after2, _ := d.Hosts[2].Stats()
	dist.Add("backend-1", uint64(after1-before1))
	dist.Add("backend-2", uint64(after2-before2))

	fmt.Println("SYNs from 32 distinct client IPs:")
	for _, s := range dist.Shares() {
		fmt.Printf("  %-10s %3d (%.0f%%)\n", s.Key, s.Count, s.Fraction*100)
	}
	fmt.Println("\neven/odd source addresses split across the two backends —")
	fmt.Println("the source-IP partitioning of demo use case (a)")
}
