package mgmt

import (
	"errors"
	"net"
	"testing"
	"time"

	"github.com/harmless-sdn/harmless/internal/legacy"
	"github.com/harmless-sdn/harmless/internal/snmp"
)

// The error paths a migration-wave executor hits when a device pushes
// back mid-wave: rejected VLAN retags, conflicting trunk configs, and
// an SNMP agent that stops answering. Each must surface a typed,
// actionable error AND leave the device configuration untouched, or
// the executor cannot decide between retry and rollback.

func TestDriverRejectedVLANRetag(t *testing.T) {
	sw := legacy.NewSwitch("retag-sw", 4)
	addr := newDeviceRig(t, sw, legacy.DialectCiscoish)
	d, err := Connect(addr, "ciscoish")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	before := sw.Config()
	// VLAN 5000 is past the 802.1Q range; the CLI rejects the retag.
	err = d.ConfigureAccessPort(1, 5000)
	var cmdErr *CommandError
	if !errors.As(err, &cmdErr) {
		t.Fatalf("want CommandError, got %T: %v", err, err)
	}
	// Declaring the out-of-range VLAN is refused too.
	if err := d.DeclareVLAN(4095, "too-big"); !errors.As(err, &cmdErr) {
		t.Errorf("DeclareVLAN(4095): want CommandError, got %v", err)
	}
	// The device must be exactly where it was: port 1 still an access
	// port in the default VLAN, no stray VLAN declared.
	after := sw.Config()
	if after.Ports[1].PVID != before.Ports[1].PVID || after.Ports[1].Mode != legacy.ModeAccess {
		t.Errorf("rejected retag modified port 1: %+v", after.Ports[1])
	}
	if len(after.VLANs) != len(before.VLANs) {
		t.Errorf("rejected retag declared VLANs: %v", after.VLANs)
	}
}

func TestDriverTrunkPortConflict(t *testing.T) {
	sw := legacy.NewSwitch("trunk-sw", 4)
	addr := newDeviceRig(t, sw, legacy.DialectCiscoish)
	d, err := Connect(addr, "ciscoish")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	var cmdErr *CommandError
	// Trunking a port the chassis does not have.
	if err := d.ConfigureTrunkPort(9, 1, []uint16{101}); !errors.As(err, &cmdErr) {
		t.Fatalf("trunk on missing port: want CommandError, got %v", err)
	}
	// An allowed list carrying an invalid VLAN id conflicts with the
	// 802.1Q range check; the CLI rejects the whole allowed statement.
	if err := d.ConfigureTrunkPort(4, 1, []uint16{101, 0}); !errors.As(err, &cmdErr) {
		t.Fatalf("invalid allowed list: want CommandError, got %v", err)
	}
	// The port flipped to trunk mode (that command succeeded) but the
	// conflicting allowed list must not have been applied.
	pc := sw.Config().Ports[4]
	if pc.Allowed != nil {
		t.Errorf("conflicting allowed list applied: %v", pc.Allowed)
	}
	// A clean retry with a valid list must succeed on the same session.
	if err := d.ConfigureTrunkPort(4, 1, []uint16{101, 102}); err != nil {
		t.Fatalf("valid trunk config after conflict: %v", err)
	}
	if al := sw.Config().Ports[4].AllowedList(); len(al) != 2 {
		t.Errorf("allowed list after retry: %v", al)
	}
}

func TestDriverRemoveVLAN(t *testing.T) {
	sw := legacy.NewSwitch("rm-sw", 4)
	addr := newDeviceRig(t, sw, legacy.DialectCiscoish)
	d, err := Connect(addr, "ciscoish")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if err := d.DeclareVLAN(101, "harmless-p1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := sw.Config().VLANs[101]; !ok {
		t.Fatal("vlan 101 not declared")
	}
	if err := d.RemoveVLAN(101); err != nil {
		t.Fatal(err)
	}
	if _, ok := sw.Config().VLANs[101]; ok {
		t.Error("vlan 101 survived removal")
	}
	// Removing an absent VLAN is a no-op on the device, not an error —
	// rollback must be idempotent.
	if err := d.RemoveVLAN(101); err != nil {
		t.Errorf("second removal: %v", err)
	}
}

// TestSNMPTimeoutFallsBackToCLI covers the mid-wave failure mode where
// the device's SNMP agent goes quiet: the client must time out (not
// hang the wave), DiscoverSNMP must surface the timeout, and a
// CLI-backed facts query on the same device still works — the
// executor's discovery fallback path.
func TestSNMPTimeoutFallsBackToCLI(t *testing.T) {
	// A pipe with a silent peer: requests are read but never answered.
	clientSide, serverSide := net.Pipe()
	defer serverSide.Close()
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := serverSide.Read(buf); err != nil {
				return
			}
		}
	}()
	c := snmp.NewClient(clientSide, "public")
	defer c.Close()
	c.SetTimeout(50 * time.Millisecond)
	c.SetRetries(1)

	start := time.Now()
	_, err := DiscoverSNMP(c)
	if !errors.Is(err, snmp.ErrTimeout) {
		t.Fatalf("want snmp.ErrTimeout, got %v", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("timeout took %v, retries not bounded", waited)
	}

	// Same device, CLI path: still answers.
	sw := legacy.NewSwitch("quiet-snmp-sw", 4)
	addr := newDeviceRig(t, sw, legacy.DialectCiscoish)
	d, err := Connect(addr, "ciscoish")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	f, err := d.Facts()
	if err != nil {
		t.Fatal(err)
	}
	if f.Hostname != "quiet-snmp-sw" || f.PortCount != 4 {
		t.Errorf("cli facts: %+v", f)
	}
}
