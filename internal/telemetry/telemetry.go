// Package telemetry is the flow-visibility plane of the softswitch:
// per-flow accounting records accumulated on the datapath hot path,
// drained over a lock-free ring to an aggregator that merges
// bidirectional flows and exports IPFIX-style records (templates +
// data sets) to a pluggable exporter, plus an sFlow-style 1-in-N
// packet sampler for visibility into cache-hit traffic that never
// reaches the slow path.
//
// # Shards and the zero-alloc hot-path contract
//
// Flow records live in shards selected by pkt.Key.Hash — the same
// hash the poll-mode worker runtime shards ingress with, so with
// Shards == Workers every record of a worker's RSS flow set lands in
// a shard only that worker touches and the shard mutex is never
// contended. Each shard is still mutex-guarded, so inline (non-pool)
// datapaths, HTTP snapshots and management flushes are safe from any
// goroutine; the lock is simply free in the pinned configuration.
//
// The hot-path contract: once a flow's record exists, observing a
// packet is a pointer chase off the microflow-cache entry plus a few
// field updates under the (uncontended) shard lock, taken once per
// batch per shard — no per-packet map lookup, no allocation. New
// flows allocate exactly one Record on the slow path, where the
// pipeline walk already dominates.
//
// # Export pipeline
//
// shard sweep -> TypedRing[Export] -> Aggregator -> Exporter
//
// Shard sweeps run on the observing goroutine (piggybacked on batch
// boundaries), on the worker runtime's idle path, or from any
// management goroutine via Sweep/FlushAll. A sweep applies the
// active/idle timers: active flows export a delta and keep counting;
// idle flows export a final record and leave the table. Removed
// records are marked dead but keep their identity, so a microflow
// cache entry that still points at one revives it on the flow's next
// packet — the pointer stays valid forever and counters are never
// lost.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/harmless-sdn/harmless/internal/dataplane"
	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/stats"
)

// FlowKey identifies one unidirectional flow for accounting: the
// NetFlow/IPFIX-style tuple extracted from the packet key. It is a
// comparable value type and doubles as the record map key.
type FlowKey struct {
	EthSrc  pkt.MAC
	EthDst  pkt.MAC
	EthType uint16
	VLANID  uint16
	IPSrc   pkt.IPv4
	IPDst   pkt.IPv4
	Proto   uint8
	L4Src   uint16
	L4Dst   uint16
	InPort  uint32
}

// KeyFromPacket derives the accounting key from an extracted packet
// key. ICMP type/code are folded into L4Dst the way most NetFlow
// implementations do, so echo requests and replies account as
// distinct flows.
func KeyFromPacket(k *pkt.Key) FlowKey {
	fk := FlowKey{
		EthSrc:  k.EthSrc,
		EthDst:  k.EthDst,
		EthType: k.EthType,
		InPort:  k.InPort,
	}
	if k.HasVLAN {
		fk.VLANID = k.VLANID
	}
	if k.HasIPv4 || k.HasIPv6 {
		fk.IPSrc = k.IPSrc
		fk.IPDst = k.IPDst
		fk.Proto = k.IPProto
	}
	if k.HasL4 {
		fk.L4Src = k.L4Src
		fk.L4Dst = k.L4Dst
	} else if k.HasICMP {
		fk.L4Dst = uint16(k.ICMPType)<<8 | uint16(k.ICMPCode)
	}
	return fk
}

// ToPacketKey reconstructs the pkt.Key shape of the flow — the
// inverse of KeyFromPacket, faithful for everything KeyFromPacket
// preserves (the ICMP type/code folding is undone; a VID-0 priority
// tag is indistinguishable from untagged, like the forward mapping).
// The flow-table expiry flush uses it to evaluate which live records
// an expired entry's match covers.
func (k FlowKey) ToPacketKey() pkt.Key {
	pk := pkt.Key{
		InPort:  k.InPort,
		EthSrc:  k.EthSrc,
		EthDst:  k.EthDst,
		EthType: k.EthType,
	}
	if k.VLANID != 0 {
		pk.HasVLAN = true
		pk.VLANID = k.VLANID
	}
	switch k.EthType {
	case pkt.EtherTypeIPv4:
		pk.HasIPv4 = true
	case pkt.EtherTypeIPv6:
		pk.HasIPv6 = true
	}
	if pk.HasIPv4 || pk.HasIPv6 {
		pk.IPSrc, pk.IPDst, pk.IPProto = k.IPSrc, k.IPDst, k.Proto
		if k.Proto == pkt.IPProtoICMP {
			pk.HasICMP = true
			pk.ICMPType = uint8(k.L4Dst >> 8)
			pk.ICMPCode = uint8(k.L4Dst)
		} else if k.L4Src != 0 || k.L4Dst != 0 {
			pk.HasL4 = true
			pk.L4Src, pk.L4Dst = k.L4Src, k.L4Dst
		}
	}
	return pk
}

// String renders the key for diagnostics and the /flows endpoint.
func (k FlowKey) String() string {
	s := fmt.Sprintf("in=%d %s>%s 0x%04x", k.InPort, k.EthSrc, k.EthDst, k.EthType)
	if k.VLANID != 0 {
		s += fmt.Sprintf(" vlan=%d", k.VLANID)
	}
	if k.EthType == pkt.EtherTypeIPv4 || k.EthType == pkt.EtherTypeIPv6 {
		s += fmt.Sprintf(" %s:%d>%s:%d/%d", k.IPSrc, k.L4Src, k.IPDst, k.L4Dst, k.Proto)
	}
	return s
}

// Record is the live accounting state of one flow. All fields are
// guarded by the owning shard's mutex; the datapath holds a *Record
// (hung off the microflow-cache entry) and updates it through
// Table.Observe/ObserveBatch only.
//
// Packets/Bytes are DELTAS since the last export, per IPFIX delta
// counter semantics; First is the start of the current delta window.
type Record struct {
	Key     FlowKey
	Packets uint64
	Bytes   uint64
	First   int64 // unixnano of the first packet of this window
	Last    int64 // unixnano of the most recent packet
	OutPort uint32

	owner *Table
	shard int32
	dead  bool // removed from the shard map; revived on next Observe
}

// ExportKind discriminates the payloads of the shard-drain ring.
type ExportKind uint8

const (
	// ExportFlow is a flow-record snapshot (delta or final).
	ExportFlow ExportKind = iota
	// ExportSample is one sFlow-style sampled packet.
	ExportSample
)

// Flow-end reasons, per the IPFIX flowEndReason registry.
const (
	EndIdle   uint8 = 1 // idle timeout expired
	EndActive uint8 = 2 // active timeout expired (delta export, flow continues)
	EndForced uint8 = 3 // forced end (flush, eviction, shutdown)
)

// Export is one fixed-size snapshot traveling the shard-drain ring:
// either a flow-record delta/final or a packet sample.
type Export struct {
	Kind      ExportKind
	EndReason uint8
	Key       FlowKey
	Packets   uint64
	Bytes     uint64
	First     int64
	Last      int64
	OutPort   uint32
}

// Config parameterizes a Table. The zero value picks sensible
// defaults.
type Config struct {
	// Shards is the number of record shards (default 1). Set it to the
	// worker count when the table sits behind the poll-mode runtime so
	// RSS flow pinning makes every shard single-writer.
	Shards int
	// MaxFlows bounds the records per shard (default 65536). A full
	// shard evicts a pseudo-random victim — exporting its final record
	// first, so totals stay exact.
	MaxFlows int
	// ActiveTimeout is how long a flow may accumulate before a delta
	// record is exported mid-life (default 60s).
	ActiveTimeout time.Duration
	// IdleTimeout is how long a flow may stay quiet before its final
	// record is exported and the flow forgotten (default 15s).
	IdleTimeout time.Duration
	// SweepInterval is the minimum spacing between timer sweeps of one
	// shard (default 1s).
	SweepInterval time.Duration
	// SampleRate enables the sFlow-style packet sampler: every N-th
	// observed packet is exported as a sample (0 disables).
	SampleRate int
	// RingSize is the shard-drain ring capacity in snapshots (default
	// 8192). When the aggregator falls behind, snapshots are dropped
	// and counted in TelemetryCounters.RecordsLost.
	RingSize int
}

func (c *Config) defaults() {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.MaxFlows <= 0 {
		c.MaxFlows = 1 << 16
	}
	if c.ActiveTimeout <= 0 {
		c.ActiveTimeout = 60 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 15 * time.Second
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = time.Second
	}
	if c.RingSize <= 0 {
		c.RingSize = 8192
	}
}

// shard is one mutex-guarded slice of the flow-record table.
type shard struct {
	mu        sync.Mutex
	flows     map[FlowKey]*Record
	nextSweep int64 // unixnano of the earliest next timer sweep
	sampleCtr int   // countdown to the next packet sample
	_         [24]byte
}

// Table is the datapath-facing flow-record store.
type Table struct {
	cfg      Config
	shards   []shard
	ring     *dataplane.TypedRing[Export]
	counters stats.TelemetryCounters
}

// NewTable creates a flow-record table.
func NewTable(cfg Config) *Table {
	cfg.defaults()
	t := &Table{
		cfg:    cfg,
		shards: make([]shard, cfg.Shards),
		ring:   dataplane.NewTypedRing[Export](cfg.RingSize),
	}
	for i := range t.shards {
		t.shards[i].flows = make(map[FlowKey]*Record)
		t.shards[i].sampleCtr = cfg.SampleRate
	}
	return t
}

// Counters exposes the telemetry statistics.
func (t *Table) Counters() *stats.TelemetryCounters { return &t.counters }

// Ring exposes the shard-drain ring (consumed by the Aggregator).
func (t *Table) Ring() *dataplane.TypedRing[Export] { return t.ring }

// Shards returns the shard count.
func (t *Table) Shards() int { return len(t.shards) }

// Len returns the number of live flow records (diagnostics only).
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		t.shards[i].mu.Lock()
		n += len(t.shards[i].flows)
		t.shards[i].mu.Unlock()
	}
	return n
}

func (t *Table) shardFor(hash uint64) int32 {
	return int32(hash % uint64(len(t.shards)))
}

// Lookup returns the live record for the packet key, creating it if
// absent — the slow-path half of the hot-path contract: the caller
// (the pipeline walk) hangs the returned pointer off its microflow so
// subsequent cache hits skip the map entirely. Counters are NOT
// updated here; Observe/ObserveBatch do that uniformly.
func (t *Table) Lookup(k *pkt.Key) *Record {
	si := t.shardFor(k.Hash())
	sh := &t.shards[si]
	fk := KeyFromPacket(k)
	sh.mu.Lock()
	rec := sh.flows[fk]
	if rec == nil {
		rec = t.insertLocked(sh, si, fk)
	}
	sh.mu.Unlock()
	return rec
}

// Owns reports whether rec belongs to this table. The datapath checks
// it when resolving a cached record pointer, so a record minted by a
// previously attached table is re-resolved instead of being indexed
// into the wrong table's shards.
func (t *Table) Owns(rec *Record) bool { return rec != nil && rec.owner == t }

// insertLocked creates and installs a fresh record, evicting a victim
// if the shard is full. Caller holds sh.mu.
func (t *Table) insertLocked(sh *shard, si int32, fk FlowKey) *Record {
	if len(sh.flows) >= t.cfg.MaxFlows {
		t.evictLocked(sh)
	}
	rec := &Record{Key: fk, owner: t, shard: si}
	sh.flows[fk] = rec
	t.counters.FlowsCreated.Inc()
	return rec
}

// evictLocked exports and removes a pseudo-random victim (map
// iteration order, like the microflow cache's capacity eviction). The
// victim's deltas are exported first so totals stay exact; its Record
// stays valid for any cache entry still holding it and revives on the
// flow's next packet.
func (t *Table) evictLocked(sh *shard) {
	for _, victim := range sh.flows {
		t.exportLocked(victim, EndForced)
		victim.dead = true
		delete(sh.flows, victim.Key)
		t.counters.FlowsEvicted.Inc()
		return
	}
}

// reviveLocked puts a dead record back into its shard map with a
// fresh delta window. Caller holds sh.mu.
func (t *Table) reviveLocked(sh *shard, rec *Record) {
	if len(sh.flows) >= t.cfg.MaxFlows {
		t.evictLocked(sh)
	}
	rec.dead = false
	rec.Packets = 0
	rec.Bytes = 0
	rec.First = 0
	sh.flows[rec.Key] = rec
	t.counters.FlowsCreated.Inc()
}

// Observe accounts one packet of size bytes against rec — the
// single-frame mirror of ObserveBatch.
//
//harmless:hotpath
func (t *Table) Observe(rec *Record, size int, outPort uint32, now int64) {
	sh := &t.shards[rec.shard]
	sh.mu.Lock()
	t.observeLocked(sh, rec, size, outPort, now)
	if now >= sh.nextSweep {
		t.sweepLocked(sh, now)
	}
	sh.mu.Unlock()
}

// ObserveBatch accounts one dispatched batch: recs[i] is the record
// the datapath resolved for frame i (nil = not classified, skip), and
// outs[i] the frame's resolved egress port (0 = unknown). Frame
// lengths are read from the borrowed vector; the shard lock is taken
// once per run of same-shard records, which in the RSS-pinned
// configuration means once per batch. Due timer sweeps piggyback on
// the tail of the batch, so a loaded datapath needs no external
// sweeper.
//
//harmless:hotpath
func (t *Table) ObserveBatch(frames [][]byte, recs []*Record, outs []uint32, now int64) {
	var cur *shard
	for i, rec := range recs {
		if rec == nil {
			continue
		}
		sh := &t.shards[rec.shard]
		if sh != cur {
			if cur != nil {
				cur.mu.Unlock()
			}
			sh.mu.Lock()
			cur = sh
		}
		t.observeLocked(sh, rec, len(frames[i]), outs[i], now)
	}
	if cur != nil {
		if now >= cur.nextSweep {
			t.sweepLocked(cur, now)
		}
		cur.mu.Unlock()
	}
}

// observeLocked is the per-packet accounting step. Caller holds sh.mu
// and guarantees rec.shard maps to sh.
//
//harmless:hotpath
func (t *Table) observeLocked(sh *shard, rec *Record, size int, outPort uint32, now int64) {
	if rec.dead {
		// A live record for the same flow may already exist (created by
		// a slow-path Lookup while this one was dead); account there —
		// installing the dead record over it would orphan the live one
		// and lose its counts forever.
		if existing := sh.flows[rec.Key]; existing != nil {
			rec = existing
		} else {
			t.reviveLocked(sh, rec)
		}
	}
	if rec.Packets == 0 {
		rec.First = now
	}
	rec.Packets++
	rec.Bytes += uint64(size)
	rec.Last = now
	if outPort != 0 {
		rec.OutPort = outPort
	}
	if t.cfg.SampleRate > 0 {
		sh.sampleCtr--
		if sh.sampleCtr <= 0 {
			sh.sampleCtr = t.cfg.SampleRate
			e := Export{
				Kind:    ExportSample,
				Key:     rec.Key,
				Packets: 1,
				Bytes:   uint64(size),
				First:   now,
				Last:    now,
				OutPort: rec.OutPort,
			}
			if t.ring.Push(e) {
				t.counters.SamplesQueued.Inc()
			} else {
				t.counters.SamplesLost.Inc()
			}
		}
	}
}

// exportLocked pushes rec's current delta window onto the drain ring
// and resets the window. A window with zero packets exports nothing.
// Caller holds the record's shard mutex.
func (t *Table) exportLocked(rec *Record, reason uint8) {
	if rec.Packets == 0 {
		return
	}
	e := Export{
		Kind:      ExportFlow,
		EndReason: reason,
		Key:       rec.Key,
		Packets:   rec.Packets,
		Bytes:     rec.Bytes,
		First:     rec.First,
		Last:      rec.Last,
		OutPort:   rec.OutPort,
	}
	if t.ring.Push(e) {
		t.counters.RecordsQueued.Inc()
	} else {
		t.counters.RecordsLost.Inc()
	}
	rec.Packets = 0
	rec.Bytes = 0
	rec.First = 0
}

// sweepLocked applies the active/idle timers to every record of sh.
// Caller holds sh.mu.
func (t *Table) sweepLocked(sh *shard, now int64) {
	sh.nextSweep = now + t.cfg.SweepInterval.Nanoseconds()
	t.counters.Sweeps.Inc()
	idle := t.cfg.IdleTimeout.Nanoseconds()
	active := t.cfg.ActiveTimeout.Nanoseconds()
	for _, rec := range sh.flows {
		switch {
		case now-rec.Last >= idle:
			t.exportLocked(rec, EndIdle)
			rec.dead = true
			delete(sh.flows, rec.Key)
			t.counters.FlowsExpired.Inc()
		case rec.Packets > 0 && now-rec.First >= active:
			t.exportLocked(rec, EndActive)
		}
	}
}

// Sweep runs a timer sweep over every shard that is due. Safe from
// any goroutine; the worker runtime calls it when a worker goes idle
// so flows still expire when the datapath quiesces.
func (t *Table) Sweep(now int64) {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		if now >= sh.nextSweep {
			t.sweepLocked(sh, now)
		}
		sh.mu.Unlock()
	}
}

// FlushAll force-exports a final record for every live flow and
// empties the table. The datapath keeps working throughout: records
// still referenced by microflow-cache entries are revived with fresh
// windows by their next packet. Called on worker pool shutdown, at
// daemon exit, and by tests.
func (t *Table) FlushAll(now int64) {
	t.FlushWhere(nil, now)
}

// FlushWhere force-exports and removes every live flow whose key the
// predicate accepts (nil accepts everything). The flow-table expiry
// path uses it to end exactly the flows an expired entry carried, so
// exported totals track the datapath counters without force-ending
// every unrelated flow's window.
func (t *Table) FlushWhere(pred func(FlowKey) bool, now int64) {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, rec := range sh.flows {
			if pred != nil && !pred(rec.Key) {
				continue
			}
			t.exportLocked(rec, EndForced)
			rec.dead = true
			delete(sh.flows, rec.Key)
			t.counters.FlowsExpired.Inc()
		}
		if pred == nil {
			sh.nextSweep = now + t.cfg.SweepInterval.Nanoseconds()
		}
		sh.mu.Unlock()
	}
}

// FlowSnapshot is one live flow as reported by Snapshot and the
// /flows endpoint.
type FlowSnapshot struct {
	Key     FlowKey
	Packets uint64
	Bytes   uint64
	First   int64
	Last    int64
	OutPort uint32
}

// Snapshot returns the live flows (current delta windows), sorted by
// byte count descending — the top-talkers view.
func (t *Table) Snapshot() []FlowSnapshot {
	var out []FlowSnapshot
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, rec := range sh.flows {
			if rec.Packets == 0 {
				continue
			}
			out = append(out, FlowSnapshot{
				Key:     rec.Key,
				Packets: rec.Packets,
				Bytes:   rec.Bytes,
				First:   rec.First,
				Last:    rec.Last,
				OutPort: rec.OutPort,
			})
		}
		sh.mu.Unlock()
	}
	// Bytes descending, cheap deterministic tie-breaks (a /flows
	// snapshot can be tens of thousands of records — no string
	// rendering in the comparator).
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Bytes != b.Bytes {
			return a.Bytes > b.Bytes
		}
		if a.Packets != b.Packets {
			return a.Packets > b.Packets
		}
		return a.First < b.First
	})
	return out
}
