package snmp

import (
	"fmt"
)

// PDUType identifies the SNMP operation.
type PDUType byte

// PDU types (the SNMPv2c subset we implement).
const (
	PDUGetRequest PDUType = tagGetRequest
	PDUGetNext    PDUType = tagGetNext
	PDUResponse   PDUType = tagResponse
	PDUSetRequest PDUType = tagSetRequest
)

// String implements fmt.Stringer.
func (t PDUType) String() string {
	switch t {
	case PDUGetRequest:
		return "GET"
	case PDUGetNext:
		return "GETNEXT"
	case PDUResponse:
		return "RESPONSE"
	case PDUSetRequest:
		return "SET"
	}
	return fmt.Sprintf("PDUType(%#x)", byte(t))
}

// Error status codes (RFC 3416).
const (
	ErrNoError     = 0
	ErrTooBig      = 1
	ErrNoSuchName  = 2
	ErrBadValue    = 3
	ErrReadOnly    = 4
	ErrGenErr      = 5
	ErrNoAccess    = 6
	ErrWrongType   = 7
	ErrNotWritable = 17
)

// Version2c is the version field value for SNMPv2c.
const Version2c = 1

// VarBind is one (OID, value) pair.
type VarBind struct {
	OID   OID
	Value Value
}

// Message is a full SNMPv2c message.
type Message struct {
	Community string
	Type      PDUType
	RequestID int32
	ErrStatus int
	ErrIndex  int
	VarBinds  []VarBind
}

// Marshal encodes the message to wire format.
func (m *Message) Marshal() ([]byte, error) {
	var vbs []byte
	for _, vb := range m.VarBinds {
		oidBody, err := berEncodeOID(vb.OID)
		if err != nil {
			return nil, err
		}
		val := vb.Value
		if val == nil {
			val = Null{}
		}
		vbody, err := val.encode()
		if err != nil {
			return nil, err
		}
		entry := append(berWrap(tagOID, oidBody), vbody...)
		vbs = append(vbs, berWrap(tagSequence, entry)...)
	}
	pdu := berWrap(tagInteger, berEncodeInt(int64(m.RequestID)))
	pdu = append(pdu, berWrap(tagInteger, berEncodeInt(int64(m.ErrStatus)))...)
	pdu = append(pdu, berWrap(tagInteger, berEncodeInt(int64(m.ErrIndex)))...)
	pdu = append(pdu, berWrap(tagSequence, vbs)...)

	msg := berWrap(tagInteger, berEncodeInt(Version2c))
	msg = append(msg, berWrap(tagOctetString, []byte(m.Community))...)
	msg = append(msg, berWrap(byte(m.Type), pdu)...)
	return berWrap(tagSequence, msg), nil
}

// Unmarshal decodes a wire-format message.
func Unmarshal(data []byte) (*Message, error) {
	r := &berReader{data: data}
	body, err := r.expect(tagSequence)
	if err != nil {
		return nil, err
	}
	mr := &berReader{data: body}
	verBody, err := mr.expect(tagInteger)
	if err != nil {
		return nil, err
	}
	ver, err := berDecodeInt(verBody)
	if err != nil {
		return nil, err
	}
	if ver != Version2c {
		return nil, fmt.Errorf("snmp: unsupported version %d", ver)
	}
	community, err := mr.expect(tagOctetString)
	if err != nil {
		return nil, err
	}
	pduTag, pduBody, err := mr.readTL()
	if err != nil {
		return nil, err
	}
	switch PDUType(pduTag) {
	case PDUGetRequest, PDUGetNext, PDUResponse, PDUSetRequest:
	default:
		return nil, fmt.Errorf("snmp: unsupported PDU type %#x", pduTag)
	}
	m := &Message{Community: string(community), Type: PDUType(pduTag)}

	pr := &berReader{data: pduBody}
	reqBody, err := pr.expect(tagInteger)
	if err != nil {
		return nil, err
	}
	reqID, err := berDecodeInt(reqBody)
	if err != nil {
		return nil, err
	}
	m.RequestID = int32(reqID)
	esBody, err := pr.expect(tagInteger)
	if err != nil {
		return nil, err
	}
	es, err := berDecodeInt(esBody)
	if err != nil {
		return nil, err
	}
	m.ErrStatus = int(es)
	eiBody, err := pr.expect(tagInteger)
	if err != nil {
		return nil, err
	}
	ei, err := berDecodeInt(eiBody)
	if err != nil {
		return nil, err
	}
	m.ErrIndex = int(ei)

	vbsBody, err := pr.expect(tagSequence)
	if err != nil {
		return nil, err
	}
	vr := &berReader{data: vbsBody}
	for !vr.done() {
		entryBody, err := vr.expect(tagSequence)
		if err != nil {
			return nil, err
		}
		er := &berReader{data: entryBody}
		oidBody, err := er.expect(tagOID)
		if err != nil {
			return nil, err
		}
		oid, err := berDecodeOID(oidBody)
		if err != nil {
			return nil, err
		}
		vtag, vcontent, err := er.readTL()
		if err != nil {
			return nil, err
		}
		val, err := decodeValue(vtag, vcontent)
		if err != nil {
			return nil, err
		}
		m.VarBinds = append(m.VarBinds, VarBind{OID: oid, Value: val})
	}
	return m, nil
}
