package openflow

import "testing"

// FuzzParse hardens the wire decoder: arbitrary framed bytes must
// never panic.
func FuzzParse(f *testing.F) {
	for _, m := range []Message{
		&Hello{}, &EchoRequest{Data: []byte("x")},
		&FeaturesReply{DatapathID: 1, NTables: 2},
		&BarrierRequest{},
		&RoleRequest{Role: RoleMaster, GenerationID: 7},
		&RoleReply{Role: RoleSlave, GenerationID: 9},
		&SetAsync{AsyncConfig: DefaultAsyncConfig()},
		&GetAsyncRequest{},
		&GetAsyncReply{AsyncConfig: DefaultAsyncConfig()},
	} {
		m.SetXID(1)
		if frame, err := m.Marshal(); err == nil {
			f.Add(frame)
		}
	}
	fm := &FlowMod{Command: FlowAdd, BufferID: NoBuffer, OutPort: PortAny, OutGroup: GroupAny}
	fm.Match.WithInPort(1).WithVLAN(101)
	fm.Instructions = []Instruction{&InstrApplyActions{Actions: []Action{&ActionOutput{Port: 2, MaxLen: 0xffff}}}}
	fm.SetXID(2)
	if frame, err := fm.Marshal(); err == nil {
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) >= 4 {
			// Force plausible framing so body decoders run.
			data[0] = Version
			data[2] = byte(len(data) >> 8)
			data[3] = byte(len(data))
		}
		m, err := Parse(data)
		if err != nil || m == nil {
			return
		}
		// Whatever decoded must re-marshal without panicking.
		_, _ = m.Marshal()
	})
}
