package flowtable

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

// buildTranslatorTable builds an SS_1-shaped table: trunk ingress rows
// keyed by (in_port, vlan) and patch ingress rows keyed by in_port,
// plus no default.
func buildTranslatorTable(t *testing.T, nPorts int) *Table {
	t.Helper()
	tbl := NewTable(0, nil)
	const trunkPort = 1
	for i := 0; i < nPorts; i++ {
		vid := uint16(101 + i)
		patch := uint32(2 + i)
		// trunk, vlan=vid -> pop, output patch.
		err := tbl.Add(&Entry{
			Priority: 100,
			Match:    &Match{InPortSet: true, InPort: trunkPort, VLAN: VLANExact, VLANVID: vid},
			Instructions: []openflow.Instruction{&openflow.InstrApplyActions{Actions: []openflow.Action{
				&openflow.ActionPopVLAN{}, &openflow.ActionOutput{Port: patch, MaxLen: 0xffff},
			}}},
		})
		if err != nil {
			t.Fatal(err)
		}
		// patch -> push vlan vid, output trunk.
		err = tbl.Add(&Entry{
			Priority: 100,
			Match:    &Match{InPortSet: true, InPort: patch},
			Instructions: []openflow.Instruction{&openflow.InstrApplyActions{Actions: []openflow.Action{
				&openflow.ActionPushVLAN{EtherType: pkt.EtherTypeDot1Q}, &openflow.ActionOutput{Port: trunkPort, MaxLen: 0xffff},
			}}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestCompileTranslatorShape(t *testing.T) {
	tbl := buildTranslatorTable(t, 8)
	fp, ok := Compile(tbl)
	if !ok {
		t.Fatal("translator table must be specializable")
	}
	if fp.Templates() != 2 { // (in_port,vlan) and (in_port)
		t.Errorf("templates = %d, want 2", fp.Templates())
	}
	if !fp.Valid(tbl) {
		t.Error("fresh compilation must be valid")
	}
	// Trunk ingress frame tagged 103 must hit the pop rule for patch 4.
	k := vlanKey(1, 103)
	e := fp.Lookup(k)
	if e == nil {
		t.Fatal("fast path missed")
	}
	if e != tbl.Lookup(k, 0) {
		t.Error("fast path disagrees with generic scan")
	}
	// Patch ingress.
	k2 := udpKey(5, hostA, hostB, ipA, ipB, 1, 2)
	if fp.Lookup(k2) != tbl.Lookup(k2, 0) {
		t.Error("patch lookup disagrees")
	}
	// Unknown VLAN on the trunk: both miss.
	k3 := vlanKey(1, 999)
	if fp.Lookup(k3) != nil || tbl.Lookup(k3, 0) != nil {
		t.Error("unknown vlan should miss on both paths")
	}
}

func TestCompileInvalidation(t *testing.T) {
	tbl := buildTranslatorTable(t, 2)
	fp, ok := Compile(tbl)
	if !ok {
		t.Fatal("compile failed")
	}
	_ = tbl.Add(&Entry{Priority: 50, Match: &Match{InPortSet: true, InPort: 99}})
	if fp.Valid(tbl) {
		t.Error("compilation must be invalid after table change")
	}
	fp2, ok := Compile(tbl)
	if !ok || !fp2.Valid(tbl) {
		t.Error("recompile failed")
	}
}

func TestCompileRejectsMaskedEntries(t *testing.T) {
	tbl := NewTable(0, nil)
	_ = tbl.Add(&Entry{Priority: 1, Match: &Match{
		IPSrcSet: true, IPSrc: pkt.MustIPv4("10.0.0.0"), IPSrcMask: pkt.MustIPv4("255.0.0.0"),
	}})
	if _, ok := Compile(tbl); ok {
		t.Error("masked table compiled")
	}
}

func TestCompileRejectsTwoCatchAlls(t *testing.T) {
	tbl := NewTable(0, nil)
	_ = tbl.Add(&Entry{Priority: 1, Match: &Match{}})
	_ = tbl.Add(&Entry{Priority: 2, Match: &Match{}})
	// Identical matches replace, so force two distinct wildcards via
	// priorities; Add with equal match replaces, so the table has one
	// entry and compiles.
	if tbl.Len() != 2 {
		t.Skip("table collapsed to one entry")
	}
	if _, ok := Compile(tbl); ok {
		t.Error("two catch-alls compiled")
	}
}

func TestCompileWithDefaultEntry(t *testing.T) {
	tbl := NewTable(0, nil)
	_ = tbl.Add(&Entry{Priority: 100, Match: &Match{EthDstSet: true, EthDst: hostB, EthDstMask: onesMAC}, Instructions: outputTo(2)})
	_ = tbl.Add(&Entry{Priority: 0, Match: &Match{}, Instructions: outputTo(openflow.PortController)})
	fp, ok := Compile(tbl)
	if !ok {
		t.Fatal("L2 table with default must compile")
	}
	// Known dst.
	k := udpKey(1, hostA, hostB, ipA, ipB, 1, 2)
	if e := fp.Lookup(k); e == nil || e.Priority != 100 {
		t.Errorf("known dst: %v", e)
	}
	// Unknown dst falls to the default.
	k2 := udpKey(1, hostB, hostA, ipA, ipB, 1, 2)
	if e := fp.Lookup(k2); e == nil || e.Priority != 0 {
		t.Errorf("default: %v", e)
	}
}

func TestCompilePriorityAcrossTemplates(t *testing.T) {
	tbl := NewTable(0, nil)
	// Two templates where the lower-max-priority template contains the
	// winning entry for some packets.
	_ = tbl.Add(&Entry{Priority: 200, Match: &Match{InPortSet: true, InPort: 1, EthTypeSet: true, EthType: pkt.EtherTypeARP}, Instructions: outputTo(3)})
	_ = tbl.Add(&Entry{Priority: 100, Match: &Match{InPortSet: true, InPort: 1}, Instructions: outputTo(2)})
	fp, ok := Compile(tbl)
	if !ok {
		t.Fatal("compile failed")
	}
	// An IPv4 packet on port 1: misses the (in_port, eth_type=ARP)
	// template key, hits the in_port template.
	k := udpKey(1, hostA, hostB, ipA, ipB, 1, 2)
	e := fp.Lookup(k)
	if e == nil || e.Priority != 100 {
		t.Fatalf("wrong entry: %v", e)
	}
	// An ARP packet must hit the higher-priority template.
	arp := &pkt.Key{InPort: 1, EthType: pkt.EtherTypeARP, HasARP: true, ARPOp: 1}
	e = fp.Lookup(arp)
	if e == nil || e.Priority != 200 {
		t.Fatalf("wrong entry for ARP: %v", e)
	}
}

func TestFastPathAgreesWithGenericProperty(t *testing.T) {
	// Random exact-match tables + random packets: the fast path must
	// produce exactly the generic result.
	tbl := NewTable(0, nil)
	for p := uint32(1); p <= 4; p++ {
		for v := uint16(101); v <= 104; v++ {
			_ = tbl.Add(&Entry{
				Priority:     uint16(100 + p),
				Match:        &Match{InPortSet: true, InPort: p, VLAN: VLANExact, VLANVID: v},
				Instructions: outputTo(p),
			})
		}
	}
	_ = tbl.Add(&Entry{Priority: 1, Match: &Match{}, Instructions: outputTo(99)})
	fp, ok := Compile(tbl)
	if !ok {
		t.Fatal("compile failed")
	}
	f := func(port uint8, vid uint16, tagged bool) bool {
		k := udpKey(uint32(port%6), hostA, hostB, ipA, ipB, 1, 2)
		if tagged {
			k.HasVLAN = true
			k.VLANID = vid % 4096
		}
		fpE := fp.Lookup(k)
		genE := tbl.Lookup(k, 0)
		return fpE == genE
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGenericLookup(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			tbl := NewTable(0, nil)
			for i := 0; i < n; i++ {
				_ = tbl.Add(&Entry{
					Priority:     100,
					Match:        &Match{InPortSet: true, InPort: 1, VLAN: VLANExact, VLANVID: uint16(i%4094 + 1)},
					Instructions: outputTo(uint32(i + 2)),
				})
			}
			k := vlanKey(1, uint16(n/2%4094+1))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if e := tbl.Lookup(k, 64); e == nil {
					b.Fatal("miss")
				}
			}
		})
	}
}

func BenchmarkSpecializedLookup(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			tbl := NewTable(0, nil)
			for i := 0; i < n; i++ {
				_ = tbl.Add(&Entry{
					Priority:     100,
					Match:        &Match{InPortSet: true, InPort: 1, VLAN: VLANExact, VLANVID: uint16(i%4094 + 1)},
					Instructions: outputTo(uint32(i + 2)),
				})
			}
			fp, ok := Compile(tbl)
			if !ok {
				b.Fatal("compile failed")
			}
			k := vlanKey(1, uint16(n/2%4094+1))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if e := fp.Lookup(k); e == nil {
					b.Fatal("miss")
				}
			}
		})
	}
}
