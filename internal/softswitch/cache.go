package softswitch

import (
	"sync"
	"sync/atomic"

	"github.com/harmless-sdn/harmless/internal/flowtable"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/stats"
	"github.com/harmless-sdn/harmless/internal/telemetry"
)

// The flow cache: an OVS-style two-tier fast path in front of the
// full pipeline walk. The first packet of a flow traverses the tables
// normally while a recorder captures the resulting program — the flat
// sequence of datapath operations the walk performed (meter checks,
// apply-actions lists, the final ordered action set), the table
// entries to credit for counters and idle timeouts, and the MatchMask
// union of every consulted table. The program installs into two tiers:
//
//   - the exact-match microflow tier (this file) maps the packet's
//     full header key to the program — the cheapest possible hit;
//   - the wildcard megaflow tier (megaflow.go) maps the key PROJECTED
//     through the recorded mask, so one entry serves every flow whose
//     consulted fields agree — the OVS megaflow idea, built on the
//     same flowtable.MatchMask algebra the specializer uses.
//
// Subsequent packets replay the program directly, skipping
// re-classification against every table. Tier composition, admission
// (adaptive bypass) and the entry pool live in tier.go.
//
// Correctness rests on revision validation, not on synchronous
// invalidation: each entry records the revision (Table.Version) of
// every table it consulted — read *before* the lookup, so a racing
// flow-mod can only make the recording stale, never silently valid —
// and the group-table revision when the program executes a group.
// A hit first revalidates all recorded revisions; any mismatch
// discards the entry and takes the slow path, so a flow-mod, expiry,
// or group-mod is visible to the very next packet.
//
// Per-packet state (meters, group bucket selection, TTL checks,
// packet-in delivery) is deliberately kept out of the cached decision:
// the program stores the *operations*, which are re-executed per
// packet, so meters still shed load, SELECT groups still hash, and a
// cached TTL-decrement still drops expiring packets.

// tableDep is one table the recorded walk consulted, with the
// revision it had when the decision was made (validated on every hit).
type tableDep struct {
	table *flowtable.Table
	rev   uint64
}

// opKind discriminates the replayable datapath operations.
type opKind uint8

const (
	opCredit opKind = iota // account the table/entry match
	opMeter                // run the meter
	opApply                // execute an action list
)

// microOp is one replayable datapath operation. Credits are recorded
// in-stream at the position the walk matched the entry, so a replay
// that stops early (meter drop, TTL expiry) credits exactly the
// tables the equivalent walk would have consulted, with the frame
// size the walk would have seen at that point.
type microOp struct {
	kind    opKind
	meterID uint32           // opMeter
	table   *flowtable.Table // opCredit
	acts    []openflow.Action
	tableID uint8
	entry   *flowtable.Entry // opCredit: entry to credit; opApply: packet-in context (nil for the action set)
}

// CacheEntry is one cached flow program: the dependency set to
// revalidate and the operation sequence to replay. It doubles as the
// recorder the pipeline walk fills in, and is shared between tiers —
// the same entry is mapped by the exact tier under the full key and
// by the megaflow tier under the mask-projected key. Entries are
// pooled (tier.go): refs counts the tiers currently mapping the
// entry, and reset must return the struct to a reusable zero state
// while keeping slice capacity.
type CacheEntry struct {
	deps     []tableDep
	ops      []microOp
	groups   *flowtable.GroupTable // non-nil when the program executes a group
	groupRev uint64

	// mask is the union ConsultMask of every table the walk
	// traversed: the fields that could have influenced the decision.
	// The megaflow tier keys its storage by the packet key projected
	// through this mask.
	mask flowtable.MatchMask

	// outPort is the first concrete egress port the recorded program
	// outputs to (0 = none/reserved-only) — the telemetry plane's
	// egressInterface, resolved once at record time so cache hits
	// never re-scan the program.
	outPort uint32

	// tel caches the flow's telemetry record so an exact-tier hit
	// accounts telemetry with a pointer chase instead of a map
	// lookup. Only exact-tier paths read or write it: a megaflow hit
	// serves many flows from one entry, so the dispatch resolves
	// those records per packet instead (see classifyAndRun).
	tel atomic.Pointer[telemetry.Record]

	// refs counts the tiers mapping this entry, maintained by the
	// chain on install and the pool on release. It is touched only on
	// install/unpublish slow paths, never per packet.
	refs atomic.Int32

	// uncacheable marks recorder state that must not be installed: the
	// walk ended in a table miss (a later flow-add must see the key
	// again) or in a per-packet drop mid-walk (the rest of the program
	// was never observed).
	uncacheable bool
}

// reset returns the entry to a reusable zero state, dropping every
// reference it holds but keeping the deps/ops slice capacity — the
// point of pooling: steady-state recording reuses the arrays.
func (mf *CacheEntry) reset() {
	clear(mf.deps)
	mf.deps = mf.deps[:0]
	clear(mf.ops)
	mf.ops = mf.ops[:0]
	mf.groups = nil
	mf.groupRev = 0
	mf.mask = 0
	mf.outPort = 0
	mf.tel.Store(nil)
	mf.refs.Store(0)
	mf.uncacheable = false
}

// valid reports whether every recorded revision still matches the live
// tables (and group table), i.e. replaying cannot disagree with a walk.
func (mf *CacheEntry) valid() bool {
	for i := range mf.deps {
		if mf.deps[i].table.Version() != mf.deps[i].rev {
			return false
		}
	}
	if mf.groups != nil && mf.groups.Version() != mf.groupRev {
		return false
	}
	return true
}

// resolveOutPort scans the recorded program for the first OUTPUT to a
// concrete datapath port and remembers it as the flow's egress
// interface for telemetry. Reserved ports (controller, flood, ...)
// stay 0: the telemetry record then reports "no single egress".
func (mf *CacheEntry) resolveOutPort() {
	for i := range mf.ops {
		for _, a := range mf.ops[i].acts {
			if out, ok := a.(*openflow.ActionOutput); ok && out.Port < openflow.PortMax {
				mf.outPort = out.Port
				return
			}
		}
	}
}

// telRecord returns the flow's telemetry record, resolving and caching
// it on first touch — valid only for exact-tier hits, where the
// packet's key IS the entry's flow. A cached pointer minted by a
// different table (SetTelemetry swapped the plane out mid-flight) is
// re-resolved, so a stale record is never indexed into the wrong
// table's shards.
func (mf *CacheEntry) telRecord(t *telemetry.Table, key *pkt.Key) *telemetry.Record {
	if rec := mf.tel.Load(); t.Owns(rec) {
		return rec
	}
	rec := t.Lookup(key)
	mf.tel.Store(rec)
	return rec
}

// usesGroups reports whether any recorded action executes a group.
// Group contents are resolved live at replay time (applyGroup looks
// the group up per packet), so the revision dependency this feeds is
// defense-in-depth rather than load-bearing: it additionally forces a
// fresh walk after any group-mod, at the cost of re-recording the
// affected megaflows.
func (mf *CacheEntry) usesGroups() bool {
	for i := range mf.ops {
		for _, a := range mf.ops[i].acts {
			if _, ok := a.(*openflow.ActionGroup); ok {
				return true
			}
		}
	}
	return false
}

// cacheShard is one independently locked slice of a tier's storage.
type cacheShard struct {
	mu    sync.RWMutex
	flows map[pkt.Key]*CacheEntry
}

// microflowTier is the sharded exact-match tier: full header key ->
// program. The cheapest hit in the chain, probed first.
type microflowTier struct {
	shards [cacheShards]cacheShard
	cap    int // per-shard entry cap
	pool   *entryPool
	stats  stats.CacheCounters
}

// newMicroflowTier sizes an exact-match tier for totalCap entries.
func newMicroflowTier(totalCap int, pool *entryPool) *microflowTier {
	perShard := totalCap / cacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &microflowTier{cap: perShard, pool: pool}
	for i := range c.shards {
		c.shards[i].flows = make(map[pkt.Key]*CacheEntry)
	}
	return c
}

// Name implements CacheTier.
func (c *microflowTier) Name() string { return "microflow" }

// Exact implements CacheTier: a hit's key equals the installed key.
func (c *microflowTier) Exact() bool { return true }

// Counters implements CacheTier.
func (c *microflowTier) Counters() *stats.CacheCounters { return &c.stats }

// Lookup returns a still-valid entry for the key, or nil. Stale
// entries are removed on the way out; hit/miss/invalidation counters
// are maintained here.
//
//harmless:hotpath
func (c *microflowTier) Lookup(k *pkt.Key, hash uint64) *CacheEntry {
	sh := &c.shards[uint32(hash)&(cacheShards-1)]
	sh.mu.RLock()
	mf := sh.flows[*k]
	sh.mu.RUnlock()
	if mf == nil {
		c.stats.Misses.Inc()
		return nil
	}
	if !mf.valid() {
		sh.mu.Lock()
		// Only remove the exact entry we saw: a racing walk may have
		// installed a fresher replacement already.
		if sh.flows[*k] == mf {
			delete(sh.flows, *k)
			sh.mu.Unlock()
			c.pool.release(mf)
		} else {
			sh.mu.Unlock()
		}
		c.stats.Invalidations.Inc()
		c.stats.Misses.Inc()
		return nil
	}
	c.stats.Hits.Inc()
	return mf
}

// ProbeBatch consumes the chain-prepared per-shard frame chains: each
// shard's read lock is taken ONCE and all of its keys probed under it
// — the per-batch amortization of the per-frame lock in Lookup.
// Stale entries are left nil (no removal) for the slow path.
//
//harmless:hotpath
func (c *microflowTier) ProbeBatch(keys []pkt.Key, skip []bool, out []*CacheEntry, sc *ProbeScratch) {
	for si := range c.shards {
		i := sc.Heads[si]
		if i < 0 {
			continue
		}
		sh := &c.shards[si]
		sh.mu.RLock()
		for ; i >= 0; i = sc.Next[i] {
			out[i] = sh.flows[keys[i]]
		}
		sh.mu.RUnlock()
	}
	var hits uint64
	for i := range out {
		if out[i] == nil {
			continue
		}
		if out[i].valid() {
			hits++
		} else {
			// Leave removal and the invalidation/miss accounting to the
			// slow path's per-frame lookup.
			out[i] = nil
		}
	}
	if hits > 0 {
		c.stats.Hits.Add(hits)
	}
}

// Install publishes a recorded entry, evicting an arbitrary entry of
// the same shard when the shard is at capacity (map iteration order
// gives a cheap pseudo-random victim, which is how the OVS microflow
// cache handles thrash: constant-time displacement, no LRU tracking).
func (c *microflowTier) Install(k *pkt.Key, mf *CacheEntry) bool {
	sh := &c.shards[uint32(k.Hash())&(cacheShards-1)]
	var victim, old *CacheEntry
	sh.mu.Lock()
	if prev, exists := sh.flows[*k]; exists {
		old = prev
	} else if len(sh.flows) >= c.cap {
		for vk, v := range sh.flows {
			delete(sh.flows, vk)
			victim = v
			break
		}
	}
	sh.flows[*k] = mf
	sh.mu.Unlock()
	if old != nil {
		c.pool.release(old)
	}
	if victim != nil {
		c.pool.release(victim)
		c.stats.Evictions.Inc()
	}
	c.stats.Inserts.Inc()
	return true
}

// Invalidate implements CacheTier: drop everything.
func (c *microflowTier) Invalidate() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, mf := range sh.flows {
			delete(sh.flows, k)
			c.pool.release(mf)
			n++
		}
		sh.mu.Unlock()
	}
	if n > 0 {
		c.stats.Invalidations.Add(uint64(n))
	}
	return n
}

// Sweep implements CacheTier: remove entries whose recorded revisions
// went stale, so a quiet cache does not hold dead table references.
func (c *microflowTier) Sweep() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, mf := range sh.flows {
			if !mf.valid() {
				delete(sh.flows, k)
				c.pool.release(mf)
				n++
			}
		}
		sh.mu.Unlock()
	}
	if n > 0 {
		c.stats.Invalidations.Add(uint64(n))
	}
	return n
}

// Len returns the number of cached entries (diagnostics only).
func (c *microflowTier) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].flows)
		c.shards[i].mu.RUnlock()
	}
	return n
}
