// Command ofctl inspects a running HARMLESS switch the way
// ovs-ofctl inspects Open vSwitch: it listens as an OpenFlow
// controller, waits for one switch to connect, issues the requested
// multipart queries, prints the results, and exits.
//
// Usage (pair with harmlessd -controller pointing here):
//
//	ofctl -listen :6653 dump-flows
//	ofctl -listen :6653 dump-ports
//	ofctl -listen :6653 dump-desc
//	ofctl -listen :6653 dump-tables
//	ofctl -listen :6653 show
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"github.com/harmless-sdn/harmless/internal/openflow"
)

func main() {
	listen := flag.String("listen", ":6653", "address to accept the switch connection on")
	timeout := flag.Duration("timeout", 30*time.Second, "how long to wait for the switch")
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "show"
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal("listen: %v", err)
	}
	defer l.Close()
	fmt.Fprintf(os.Stderr, "ofctl: waiting for a switch on %s ...\n", *listen)
	if dl, ok := l.(*net.TCPListener); ok {
		_ = dl.SetDeadline(time.Now().Add(*timeout))
	}
	// Accept until a peer completes the OpenFlow handshake (port
	// probes and health checks are tolerated and skipped).
	var conn *openflow.Conn
	var features *openflow.FeaturesReply
	for conn == nil {
		tcp, err := l.Accept()
		if err != nil {
			fatal("accept: %v", err)
		}
		c := openflow.NewConn(tcp)
		f, err := c.Handshake(nil)
		if err != nil {
			c.Close()
			fmt.Fprintf(os.Stderr, "ofctl: peer %s did not speak OpenFlow (%v), waiting again\n",
				tcp.RemoteAddr(), err)
			continue
		}
		conn, features = c, f
	}
	defer conn.Close()

	switch cmd {
	case "show":
		fmt.Printf("dpid=%#016x n_tables=%d n_buffers=%d capabilities=%#x\n",
			features.DatapathID, features.NTables, features.NBuffers, features.Capabilities)
		reply := multipart(conn, &openflow.MultipartRequest{MPType: openflow.MultipartPortDesc})
		for _, p := range reply.PortDescs {
			fmt.Printf(" port %d (%s): addr=%s state=%#x speed=%dkbps\n",
				p.PortNo, p.Name, p.HWAddr, p.State, p.CurrSpeed)
		}
	case "dump-flows":
		reply := multipart(conn, &openflow.MultipartRequest{MPType: openflow.MultipartFlow})
		for _, f := range reply.Flows {
			fmt.Printf(" %s\n", f.String())
		}
		if len(reply.Flows) == 0 {
			fmt.Println(" (no flows)")
		}
	case "dump-ports":
		reply := multipart(conn, &openflow.MultipartRequest{MPType: openflow.MultipartPortStats})
		for _, p := range reply.Ports {
			fmt.Printf(" port %d: rx pkts=%d bytes=%d drop=%d err=%d, tx pkts=%d bytes=%d drop=%d\n",
				p.PortNo, p.RxPackets, p.RxBytes, p.RxDropped, p.RxErrors,
				p.TxPackets, p.TxBytes, p.TxDropped)
		}
	case "dump-tables":
		reply := multipart(conn, &openflow.MultipartRequest{MPType: openflow.MultipartTable})
		for _, t := range reply.Tables {
			fmt.Printf(" table %d: active=%d lookups=%d matched=%d\n",
				t.TableID, t.ActiveCount, t.LookupCount, t.MatchedCount)
		}
	case "dump-desc":
		reply := multipart(conn, &openflow.MultipartRequest{MPType: openflow.MultipartDesc})
		d := reply.Desc
		fmt.Printf(" manufacturer: %s\n hardware:     %s\n software:     %s\n serial:       %s\n datapath:     %s\n",
			d.Manufacturer, d.Hardware, d.Software, d.SerialNum, d.Datapath)
	default:
		fatal("unknown command %q (want show|dump-flows|dump-ports|dump-tables|dump-desc)", cmd)
	}
}

// multipart sends one request and waits for its reply, answering echo
// requests meanwhile.
func multipart(conn *openflow.Conn, req *openflow.MultipartRequest) *openflow.MultipartReply {
	if err := conn.Send(req); err != nil {
		fatal("send: %v", err)
	}
	for {
		m, err := conn.Recv()
		if err != nil {
			fatal("recv: %v", err)
		}
		switch t := m.(type) {
		case *openflow.MultipartReply:
			return t
		case *openflow.EchoRequest:
			_ = conn.Send(&openflow.EchoReply{Data: t.Data})
		case *openflow.Error:
			fatal("switch error: %v", t)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ofctl: "+format+"\n", args...)
	os.Exit(1)
}
