// Package shardlock is the shardlock fixture: lock/shard copies and
// mixed atomic/plain field access must be diagnosed; pointer passing,
// atomic-only access and hatched lines must not.
package shardlock

import (
	"sync"
	"sync/atomic"

	"github.com/harmless-sdn/harmless/internal/stats"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

type shardHolder struct {
	counters stats.ShardedCounter
}

type deepLock struct {
	inner [2]guarded // lock two levels down still poisons the copy
}

var globalGuarded guarded

func byValueParam(g guarded) {} // want "parameter takes shardlock.guarded by value, which contains sync.Mutex"

func byValueReceiver() {
	var g guarded
	g2 := g // want "assignment copies shardlock.guarded by value, which contains sync.Mutex"
	_ = g2
	gp := &g // taking the address is fine
	_ = gp
	byPointerParam(&g)
	c := globalGuarded // want "assignment copies shardlock.guarded by value"
	_ = c
}

func (d deepLock) depth() {} // want "receiver takes shardlock.deepLock by value"

func byPointerParam(*guarded) {}

func copyShards(h *shardHolder) {
	snapshot := h.counters // want "assignment copies stats.ShardedCounter by value, which contains stats.ShardedCounter"
	_ = snapshot
	_ = h.counters.Load() // reading through the pointer receiver is fine
}

func rangeCopies(gs []guarded) {
	for _, g := range gs { // want "range copies shardlock.guarded which contains sync.Mutex"
		_ = g
	}
	for i := range gs { // by index is the fix
		gs[i].mu.Lock()
		gs[i].mu.Unlock()
	}
}

func freshValueOK() {
	g := guarded{} // composite literal constructs in place: no copy
	g.n = 1
	_ = g.n
}

func hatched() {
	var g guarded
	g3 := g //harmless:allow-copy the struct is not yet shared with any goroutine
	_ = g3
}

// --- mixed atomic / plain access ------------------------------------

type mixed struct {
	hits  uint64
	total uint64
	cold  uint64
}

func (m *mixed) record() {
	atomic.AddUint64(&m.hits, 1)
	atomic.AddUint64(&m.total, 1)
}

func (m *mixed) reset() {
	m.hits = 0 // want "mixed access: field hits is written with sync/atomic"
	m.total++  // want "mixed access: field total is written with sync/atomic"
	m.cold = 0 // never touched atomically: plain writes are fine
}

func (m *mixed) resetHatched() {
	m.hits = 0 //harmless:allow-mixed construction-time reset before the struct is published
}

func (m *mixed) read() uint64 {
	// Plain reads of atomic fields are not flagged (snapshots under a
	// quiesced writer are idiomatic); only plain writes race.
	return m.cold + atomic.LoadUint64(&m.hits)
}
