package pkt

import (
	"bytes"
	"testing"
)

// Native fuzz targets: the decoders must never panic and, where a
// round trip exists, must reproduce their input. `go test` runs the
// seed corpus; `go test -fuzz=FuzzDecodeEthernet ./internal/pkt` digs
// deeper.

func FuzzDecodeEthernet(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, EthernetHeaderLen))
	seed, _ := Serialize(
		&Ethernet{Src: MustMAC("02:00:00:00:00:01"), Dst: MustMAC("02:00:00:00:00:02"), EtherType: EtherTypeIPv4},
		&IPv4Header{TTL: 64, Protocol: IPProtoUDP, Src: MustIPv4("10.0.0.1"), Dst: MustIPv4("10.0.0.2")},
		&UDP{SrcPort: 53, DstPort: 53},
		&DNS{ID: 1, Questions: []DNSQuestion{{Name: "a.b", Type: DNSTypeA, Class: DNSClassIN}}},
	)
	f.Add(seed)
	tagged, _ := PushVLAN(seed, EtherTypeDot1Q, 101)
	f.Add(tagged)

	f.Fuzz(func(t *testing.T, data []byte) {
		p := Decode(data, LayerTypeEthernet)
		_ = p.String() // must not panic either
		var k Key
		_ = ExtractKey(data, 1, &k)
		parser := NewParser()
		var decoded []LayerType
		_ = parser.DecodeLayers(data, &decoded)
	})
}

func FuzzVLANPushPop(f *testing.F) {
	base, _ := Serialize(
		&Ethernet{Src: MustMAC("02:00:00:00:00:01"), Dst: MustMAC("02:00:00:00:00:02"), EtherType: EtherTypeIPv4},
		&IPv4Header{TTL: 64, Protocol: IPProtoUDP, Src: MustIPv4("10.0.0.1"), Dst: MustIPv4("10.0.0.2")},
		&UDP{SrcPort: 1, DstPort: 2},
	)
	f.Add(base, uint16(101))
	f.Fuzz(func(t *testing.T, data []byte, vid uint16) {
		vid &= 0x0fff
		tagged, err := PushVLAN(data, EtherTypeDot1Q, vid)
		if err != nil {
			return // short frames legitimately fail
		}
		got, ok := VLANID(tagged)
		if !ok || got != vid {
			t.Fatalf("VLANID after push: %d %v", got, ok)
		}
		popped, err := PopVLAN(tagged)
		if err != nil {
			t.Fatalf("pop after push: %v", err)
		}
		if !bytes.Equal(popped, data) {
			t.Fatal("push+pop altered the frame")
		}
	})
}

func FuzzDNSDecode(f *testing.F) {
	msg, _ := Serialize(&DNS{ID: 7, QR: true, Questions: []DNSQuestion{{Name: "x.y", Type: DNSTypeA, Class: DNSClassIN}},
		Answers: []DNSAnswer{{Name: "x.y", Type: DNSTypeA, Class: DNSClassIN, TTL: 1, A: IPv4{1, 2, 3, 4}}}})
	f.Add(msg)
	f.Add([]byte{0, 1, 0x81, 0x80, 0, 1, 0, 1, 0, 0, 0, 0, 0xc0, 0x0c})
	f.Fuzz(func(t *testing.T, data []byte) {
		var d DNS
		_ = d.DecodeFromBytes(data) // must not panic or loop forever
	})
}
