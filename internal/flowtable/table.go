package flowtable

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

// Entry is one installed flow. The Instructions field holds the
// program the entry was installed with; after a flow-modify the live
// program is the one Instrs returns, which readers on the datapath
// must use (Modify publishes the replacement atomically so lookups
// racing a flow-mod never observe a torn instruction list).
type Entry struct {
	Priority     uint16
	Match        *Match
	Instructions []openflow.Instruction
	Cookie       uint64
	IdleTimeout  uint16 // seconds; 0 = none
	HardTimeout  uint16
	Flags        uint16

	instrs   atomic.Pointer[[]openflow.Instruction] // set by Modify; nil = Instructions
	created  time.Time
	lastUsed atomic.Int64 // unix nanos
	packets  atomic.Uint64
	bytes    atomic.Uint64
}

// Instrs returns the entry's current instruction program. Unlike
// reading the Instructions field it is safe to call concurrently with
// Table.Modify.
func (e *Entry) Instrs() []openflow.Instruction {
	if p := e.instrs.Load(); p != nil {
		return *p
	}
	return e.Instructions
}

// Packets returns the packet hit counter.
func (e *Entry) Packets() uint64 { return e.packets.Load() }

// Bytes returns the byte hit counter.
func (e *Entry) Bytes() uint64 { return e.bytes.Load() }

// Created returns the installation time.
func (e *Entry) Created() time.Time { return e.created }

// Hit accounts one matched packet of n bytes.
func (e *Entry) Hit(n int, now time.Time) {
	e.packets.Add(1)
	e.bytes.Add(uint64(n))
	e.lastUsed.Store(now.UnixNano())
}

// expired reports whether the entry has timed out, and the reason.
func (e *Entry) expired(now time.Time) (bool, uint8) {
	if e.HardTimeout > 0 && now.Sub(e.created) >= time.Duration(e.HardTimeout)*time.Second {
		return true, openflow.FlowRemovedHardTimeout
	}
	if e.IdleTimeout > 0 {
		last := time.Unix(0, e.lastUsed.Load())
		if now.Sub(last) >= time.Duration(e.IdleTimeout)*time.Second {
			return true, openflow.FlowRemovedIdleTimeout
		}
	}
	return false, 0
}

// outputsTo reports whether any instruction outputs to the given port
// (used by flow-mod out_port filtering).
func (e *Entry) outputsTo(port uint32) bool {
	if port == openflow.PortAny {
		return true
	}
	for _, in := range e.Instrs() {
		var acts []openflow.Action
		switch t := in.(type) {
		case *openflow.InstrApplyActions:
			acts = t.Actions
		case *openflow.InstrWriteActions:
			acts = t.Actions
		}
		for _, a := range acts {
			if out, ok := a.(*openflow.ActionOutput); ok && out.Port == port {
				return true
			}
		}
	}
	return false
}

// String renders the entry for diagnostics.
func (e *Entry) String() string {
	return fmt.Sprintf("priority=%d %s (pkts=%d)", e.Priority, e.Match, e.Packets())
}

// Removed describes an entry that was deleted or expired, for
// flow-removed notifications.
type Removed struct {
	Entry    *Entry
	Reason   uint8
	TableID  uint8
	Duration time.Duration
}

// ErrTableFull is returned when the entry limit is reached.
var ErrTableFull = fmt.Errorf("flowtable: table full")

// Table is one priority-ordered flow table.
type Table struct {
	id       uint8
	clock    netem.Clock
	maxFlows int // 0 = unlimited

	mu      sync.RWMutex
	entries []*Entry // sorted by priority descending

	version atomic.Uint64 // bumped on every modification (specializer invalidation)
	lookups atomic.Uint64
	matched atomic.Uint64

	// consult caches the union MaskOf over all entries, keyed by the
	// version it was computed at (see ConsultMask).
	consult atomic.Pointer[consultState]
}

// consultState is one cached ConsultMask computation.
type consultState struct {
	version uint64
	mask    MatchMask
}

// NewTable creates an empty table.
func NewTable(id uint8, clock netem.Clock) *Table {
	if clock == nil {
		clock = netem.RealClock{}
	}
	return &Table{id: id, clock: clock}
}

// SetMaxFlows bounds the table size (0 = unlimited).
func (t *Table) SetMaxFlows(n int) { t.maxFlows = n }

// ID returns the table id.
func (t *Table) ID() uint8 { return t.id }

// Version returns the table's revision counter. It is bumped on every
// flow-mod (add, modify, delete) and on entry expiry, and is what the
// datapath caches — the ESwitch specializer and the softswitch
// microflow cache — validate against so a cached forwarding decision
// never outlives the rules it was derived from.
func (t *Table) Version() uint64 { return t.version.Load() }

// Len returns the number of installed entries.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Stats returns (lookups, matched) counters.
func (t *Table) Stats() (lookups, matched uint64) {
	return t.lookups.Load(), t.matched.Load()
}

// ConsultMask returns the union of MaskOf over every installed entry:
// the set of header fields a lookup against this table can possibly
// consult. Two keys whose ConsultMask projections are equal
// (mask.Apply) select the same entry here — the per-table step of the
// megaflow soundness argument (see Apply). The result is cached per
// revision, so the steady-state cost on the slow path is one atomic
// load; it is recomputed (under the read lock, so the version and the
// entry set are consistent) only after a flow-mod or expiry.
func (t *Table) ConsultMask() MatchMask {
	if c := t.consult.Load(); c != nil && c.version == t.version.Load() {
		return c.mask
	}
	t.mu.RLock()
	v := t.version.Load()
	var mm MatchMask
	for _, e := range t.entries {
		mm = mm.Union(MaskOf(e.Match))
	}
	t.mu.RUnlock()
	t.consult.Store(&consultState{version: v, mask: mm})
	return mm
}

// Lookup returns the highest-priority matching entry and accounts
// counters (nil on table miss). size is the frame length for byte
// counters.
func (t *Table) Lookup(k *pkt.Key, size int) *Entry {
	t.lookups.Add(1)
	t.mu.RLock()
	var hit *Entry
	for _, e := range t.entries {
		if e.Match.Matches(k) {
			hit = e
			break // entries are priority-sorted
		}
	}
	t.mu.RUnlock()
	if hit != nil {
		t.matched.Add(1)
		hit.Hit(size, t.clock.Now())
	}
	return hit
}

// CreditHit accounts a cache-hit forwarding decision against the table
// and entry counters exactly as the Lookup that produced the cached
// decision would have: one lookup, one match, one entry hit (which
// also refreshes the idle-timeout clock).
func (t *Table) CreditHit(e *Entry, size int) {
	t.lookups.Add(1)
	t.matched.Add(1)
	e.Hit(size, t.clock.Now())
}

// Add installs a flow per OFPFC_ADD semantics: an entry with identical
// match and priority is replaced (counters reset).
func (t *Table) Add(e *Entry) error {
	now := t.clock.Now()
	e.created = now
	e.lastUsed.Store(now.UnixNano())
	if e.Match == nil {
		e.Match = &Match{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	defer t.version.Add(1)
	for i, old := range t.entries {
		if old.Priority == e.Priority && old.Match.Equal(e.Match) {
			t.entries[i] = e
			return nil
		}
	}
	if t.maxFlows > 0 && len(t.entries) >= t.maxFlows {
		return ErrTableFull
	}
	// Insert keeping priority-descending order; new entries go after
	// existing entries of the same priority.
	i := sort.Search(len(t.entries), func(i int) bool {
		return t.entries[i].Priority < e.Priority
	})
	t.entries = append(t.entries, nil)
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = e
	return nil
}

// Modify updates instructions of matching flows (non-strict: all flows
// covered by the request match; strict: exact match + priority).
// Counters and timeouts of modified flows are preserved.
func (t *Table) Modify(match *Match, priority uint16, strict bool, instrs []openflow.Instruction) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, e := range t.entries {
		if strict {
			if e.Priority != priority || !e.Match.Equal(match) {
				continue
			}
		} else if !e.Match.CoveredBy(match) {
			continue
		}
		e.instrs.Store(&instrs)
		n++
	}
	if n > 0 {
		t.version.Add(1)
	}
	return n
}

// Delete removes matching flows and returns them. Non-strict deletes
// remove every flow covered by the request match; strict requires
// exact equality. outPort filters to flows that output to that port
// (PortAny = no filter).
func (t *Table) Delete(match *Match, priority uint16, strict bool, outPort uint32) []Removed {
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	var removed []Removed
	kept := t.entries[:0]
	for _, e := range t.entries {
		del := false
		if strict {
			del = e.Priority == priority && e.Match.Equal(match)
		} else {
			del = e.Match.CoveredBy(match)
		}
		if del && !e.outputsTo(outPort) {
			del = false
		}
		if del {
			removed = append(removed, Removed{
				Entry: e, Reason: openflow.FlowRemovedDelete,
				TableID: t.id, Duration: now.Sub(e.created),
			})
		} else {
			kept = append(kept, e)
		}
	}
	t.entries = kept
	if len(removed) > 0 {
		t.version.Add(1)
	}
	return removed
}

// ExpireEntries removes all timed-out entries and returns them.
func (t *Table) ExpireEntries() []Removed {
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	var removed []Removed
	kept := t.entries[:0]
	for _, e := range t.entries {
		if exp, reason := e.expired(now); exp {
			removed = append(removed, Removed{
				Entry: e, Reason: reason, TableID: t.id, Duration: now.Sub(e.created),
			})
		} else {
			kept = append(kept, e)
		}
	}
	t.entries = kept
	if len(removed) > 0 {
		t.version.Add(1)
	}
	return removed
}

// Entries returns a snapshot of the table contents in priority order.
func (t *Table) Entries() []*Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Entry, len(t.entries))
	copy(out, t.entries)
	return out
}
