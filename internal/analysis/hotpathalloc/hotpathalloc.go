// Package hotpathalloc enforces the datapath's zero-alloc contract.
//
// The repo's headline performance claims are bench-gated at 0
// allocs/op on the cache hit path (TestTelemetryZeroAllocCacheHit,
// BENCH_BASELINE.json). Benchmarks only catch regressions on the
// workloads they run; this analyzer catches them at review time on
// every path through a function annotated //harmless:hotpath by
// flagging the constructs that allocate (or may): map and slice
// literals, &composite literals, make/new, append growth, closures,
// go statements, string<->[]byte conversions, and values boxed into
// interfaces.
//
// Two directions keep the contract honest:
//
//   - any function annotated //harmless:hotpath is checked;
//   - the known zero-alloc entry points (Required below: the microflow
//     cache probe/lookup, the ReceiveBatch dispatch, ObserveBatch, the
//     Ring/TypedRing push/pop) MUST carry the annotation, so nobody
//     quietly drops a hot path out of enforcement.
//
// A cold branch inside a hot function — the megaflow install path on a
// cache miss, say — is excused line by line with
// //harmless:allow-alloc <reason>.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/harmless-sdn/harmless/internal/analysis"
)

// Analyzer is the hotpathalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "flags allocating constructs inside //harmless:hotpath functions",
	Run:  run,
}

// Required maps a package import path to the functions (receiver.name
// or plain name) that must be annotated //harmless:hotpath. These are
// the entry points the bench gates measure at 0 allocs/op; the
// "hotpathalloc/required" key is the analyzer's own test fixture.
var Required = map[string][]string{
	"github.com/harmless-sdn/harmless/internal/softswitch": {
		"cacheChain.lookup",
		"cacheChain.probeBatch",
		"microflowTier.Lookup",
		"microflowTier.ProbeBatch",
		"megaflowTier.Lookup",
		"megaflowTier.probe",
		"megaflowTier.ProbeBatch",
		"Switch.ReceiveBatch",
		"Switch.ReceiveMixedBatch",
		"Switch.processBatch",
		"Switch.classifyAndRun",
	},
	"github.com/harmless-sdn/harmless/internal/telemetry": {
		"Table.Observe",
		"Table.ObserveBatch",
		"Table.observeLocked",
	},
	"github.com/harmless-sdn/harmless/internal/dataplane": {
		"TypedRing.Push",
		"TypedRing.Pop",
		"Ring.PushFrame",
		"Ring.PopFrame",
	},
	"github.com/harmless-sdn/harmless/internal/migrate": {
		"Executor.checkConservation",
	},
	"hotpathalloc/required": {
		"mustBeHot",
	},
}

const (
	annotation = "hotpath"
	hatch      = "allow-alloc"
)

func run(pass *analysis.Pass) error {
	required := make(map[string]bool)
	for _, name := range Required[pass.Pkg.Path()] {
		required[name] = true
	}
	seen := make(map[string]bool)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			name := funcName(fn)
			annotated := pass.FuncDirective(fn, annotation) != nil
			if annotated {
				seen[name] = true
				if fn.Body != nil {
					checkBody(pass, fn)
				}
			}
			if required[name] && !annotated {
				pass.Reportf(fn.Name.Pos(),
					"%s is a declared zero-alloc hot path and must be annotated //harmless:hotpath", name)
				seen[name] = true // reported; not also "missing"
			}
		}
	}
	for name := range required {
		if !seen[name] {
			// The function the contract names no longer exists — that is
			// a rename or removal the Required table must follow.
			pass.Reportf(pass.Files[0].Package,
				"required hot path %s not found in %s (update hotpathalloc.Required)", name, pass.Pkg.Path())
		}
	}
	pass.ReportUnused(hatch)
	return nil
}

// funcName renders a FuncDecl as "Recv.Name" or "Name", dropping
// pointerness and type parameters so "(*TypedRing[T]).Push" is
// "TypedRing.Push".
func funcName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch x := t.(type) {
	case *ast.Ident:
		return x.Name + "." + fn.Name.Name
	case *ast.IndexExpr: // generic receiver: TypedRing[T]
		if id, ok := x.X.(*ast.Ident); ok {
			return id.Name + "." + fn.Name.Name
		}
	case *ast.IndexListExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			return id.Name + "." + fn.Name.Name
		}
	}
	return fn.Name.Name
}

// checkBody walks one annotated function and reports every allocating
// construct that is not excused.
func checkBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	report := func(pos ast.Node, format string, args ...any) {
		if pass.Suppressed(pos.Pos(), hatch) {
			return
		}
		pass.Reportf(pos.Pos(), "hot path: "+format, args...)
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			report(x, "function literal allocates (closure)")
			return false // its body is the closure's problem
		case *ast.GoStmt:
			report(x, "go statement allocates a goroutine")
		case *ast.CompositeLit:
			switch pass.TypesInfo.Types[x].Type.Underlying().(type) {
			case *types.Map:
				report(x, "map literal allocates")
			case *types.Slice:
				report(x, "slice literal allocates")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					report(x, "&composite literal allocates")
				}
			}
		case *ast.CallExpr:
			checkCall(pass, report, x)
		case *ast.AssignStmt:
			checkAssignBoxing(pass, report, x)
		case *ast.ReturnStmt:
			checkReturnBoxing(pass, report, fn, x)
		}
		return true
	})
}

// checkCall classifies one call inside a hot body: allocating builtins,
// allocating conversions, and arguments boxed into interface
// parameters.
func checkCall(pass *analysis.Pass, report func(ast.Node, string, ...any), call *ast.CallExpr) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call, "make allocates")
			case "new":
				report(call, "new allocates")
			case "append":
				report(call, "append may allocate on growth")
			}
			return
		}
	}
	// Conversions: T(x) where Fun is a type.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type.Underlying(), typeOf(pass, call.Args[0])
		if from != nil && conversionAllocates(to, from.Underlying()) {
			report(call, "conversion between string and byte/rune slice allocates")
		}
		return
	}
	// Interface boxing at the call boundary.
	ft := typeOf(pass, call.Fun)
	if ft == nil {
		return
	}
	sig, ok := ft.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				param = sig.Params().At(sig.Params().Len() - 1).Type() // []T passed whole
			} else {
				param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		}
		if boxes(pass, param, arg) {
			report(arg, "argument boxed into interface %s allocates", param)
		}
	}
}

// checkAssignBoxing flags `ifaceVar = concrete` stores.
func checkAssignBoxing(pass *analysis.Pass, report func(ast.Node, string, ...any), as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN {
		return // := infers the concrete type; no boxing
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break // n:=f() multi-assign; conversion happens in the callee
		}
		if boxes(pass, typeOf(pass, lhs), as.Rhs[i]) {
			report(as.Rhs[i], "value boxed into interface %s allocates", typeOf(pass, lhs))
		}
	}
}

// checkReturnBoxing flags concrete values returned as interface
// results.
func checkReturnBoxing(pass *analysis.Pass, report func(ast.Node, string, ...any), fn *ast.FuncDecl, ret *ast.ReturnStmt) {
	sig, ok := pass.TypesInfo.Defs[fn.Name].Type().(*types.Signature)
	if !ok || len(ret.Results) != sig.Results().Len() {
		return
	}
	for i, res := range ret.Results {
		if boxes(pass, sig.Results().At(i).Type(), res) {
			report(res, "value boxed into interface %s allocates", sig.Results().At(i).Type())
		}
	}
}

// boxes reports whether storing expr into a target of type to performs
// an allocating interface conversion: to is an interface, expr's type
// is concrete, and the value is not pointer-shaped (pointers, chans,
// maps and funcs ride in the iface data word without allocating).
func boxes(pass *analysis.Pass, to types.Type, expr ast.Expr) bool {
	if to == nil || !types.IsInterface(to) {
		return false
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() || types.IsInterface(tv.Type) {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if tv.Type.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

// conversionAllocates reports whether a conversion between the two
// underlying types copies memory: string <-> []byte/[]rune either way.
func conversionAllocates(to, from types.Type) bool {
	return (isString(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return e.Kind() == types.Byte || e.Kind() == types.Uint8 || e.Kind() == types.Rune || e.Kind() == types.Int32
}

// typeOf returns the static type of expr, or nil.
func typeOf(pass *analysis.Pass, expr ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[expr]; ok {
		return tv.Type
	}
	return nil
}
