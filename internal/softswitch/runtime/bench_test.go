package runtime_test

// Worker-pool scaling benchmarks. BenchmarkWorkerScaling drives one
// switch through N poll-mode workers from N producers and reports
// aggregate packets/s — near-linear scaling up to the core count is
// the acceptance bar (compare workers=1 vs workers=4 pps on a
// multi-core host; a single-core host serializes everything and shows
// none). Run with
//
//	go test -run '^$' -bench WorkerScaling ./internal/softswitch/runtime
//
// The ruleset installs one exact-match entry per flow, so with RSS
// flow sharding each entry's counters are only ever touched by one
// worker — the per-flow cache lines stay core-local, like a real
// RSS-sharded datapath.

import (
	"fmt"
	"sync"
	"testing"

	"github.com/harmless-sdn/harmless/internal/fabric"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/softswitch"
	ssruntime "github.com/harmless-sdn/harmless/internal/softswitch/runtime"
)

// discardBackend swallows egress with no bookkeeping at all.
type discardBackend struct{}

func (discardBackend) Transmit([]byte)        {}
func (discardBackend) TransmitBatch([][]byte) {}

const benchFlows = 256

// benchFlowSpecs is the shared flow set: every producer emits these
// same 256 flows, and the switch holds one exact-match entry for each.
func benchFlowSpecs() []fabric.FlowSpec {
	specs := make([]fabric.FlowSpec, benchFlows)
	for i := range specs {
		specs[i] = fabric.FlowSpec{
			SrcMAC: pkt.MAC{0x02, 0x10, 0, 0, byte(i >> 8), byte(i)},
			DstMAC: pkt.MAC{0x02, 0x20, 0, 0, byte(i >> 8), byte(i)},
			SrcIP:  pkt.IPv4{10, 1, byte(i >> 8), byte(i)},
			DstIP:  pkt.IPv4{10, 2, byte(i >> 8), byte(i)},
			Sport:  uint16(1024 + i),
			Dport:  uint16(50000 + i),
		}
	}
	return specs
}

// newScalingSwitch installs one exact-match UDP entry per bench flow,
// all outputting to a discard port.
func newScalingSwitch(b *testing.B) *softswitch.Switch {
	b.Helper()
	sw := softswitch.New("scale", 0x5ca1e)
	sw.AttachPort(2, "out", discardBackend{})
	for i := 0; i < benchFlows; i++ {
		m := openflow.Match{}
		m.WithEthType(pkt.EtherTypeIPv4).WithIPProto(pkt.IPProtoUDP).
			WithUDPDst(uint16(50000 + i))
		addFlow(b, sw, 0, 100, m, outputTo(2))
	}
	return sw
}

// BenchmarkWorkerScaling sweeps the worker count. Each of W producers
// pushes its share of b.N frames (retrying on a full ring, which is
// the natural backpressure), then the pool drains; pps is aggregate
// frames over wall time.
func BenchmarkWorkerScaling(b *testing.B) {
	specs := benchFlowSpecs()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sw := newScalingSwitch(b)
			pool := ssruntime.New(sw, ssruntime.Config{Workers: workers})
			pool.Start()
			defer pool.Stop()

			// Warm every flow's megaflow before the clock starts.
			warm := fabric.NewFlowGenerator(64, specs)
			for i := 0; i < warm.Len(); i++ {
				for !pool.Dispatch(1, warm.Next()) {
				}
			}
			pool.Drain()
			base := pool.Stats().Frames // exclude warm-up from the metric

			producers := workers
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				// Split b.N exactly: the first b.N%producers producers
				// carry one extra frame (b.N can be tiny, e.g. CI's
				// -benchtime 1x).
				per := b.N / producers
				if p < b.N%producers {
					per++
				}
				wg.Add(1)
				go func(per int) {
					defer wg.Done()
					gen := fabric.NewFlowGenerator(64, specs)
					for i := 0; i < per; i++ {
						for !pool.Dispatch(1, gen.Next()) {
							// ring full: the workers are the bottleneck, wait
						}
					}
				}(per)
			}
			wg.Wait()
			pool.Drain()
			b.StopTimer()
			processed := pool.Stats().Frames - base
			b.ReportMetric(float64(processed)/b.Elapsed().Seconds(), "pps")
		})
	}
}

// BenchmarkDispatch isolates the producer side: the RSS hash plus the
// ring push, with a running worker consuming. This is the per-frame
// cost a NIC-facing ingress thread pays to feed the pool.
func BenchmarkDispatch(b *testing.B) {
	sw := newScalingSwitch(b)
	pool := ssruntime.New(sw, ssruntime.Config{Workers: 1})
	pool.Start()
	defer pool.Stop()
	gen := fabric.NewFlowGenerator(64, benchFlowSpecs())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for !pool.Dispatch(1, gen.Next()) {
		}
	}
	b.StopTimer()
	pool.Drain()
}
