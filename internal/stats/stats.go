// Package stats provides the lightweight measurement primitives the
// HARMLESS evaluation harness uses: atomic packet/byte counters, a
// log-bucketed latency histogram with percentile queries, and rate
// summaries. Everything is allocation-free on the record path so
// instrumentation does not perturb the experiments.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// ShardedCounter is a counter split across cache-line-padded shards so
// that N writers, each owning one shard, never contend on a shared
// cache line — the shape the poll-mode worker runtime uses for its
// per-worker statistics. Each shard is an ordinary atomic Counter, so
// Load (which sums the shards) is safe at any time from any goroutine;
// the value is exact once the writers have quiesced and a consistent
// point-in-time snapshot otherwise, like any set of independently
// read atomics.
type ShardedCounter struct {
	shards []paddedCounter
}

// paddedCounter pads a Counter out to its own cache line.
type paddedCounter struct {
	Counter
	_ [56]byte
}

// NewShardedCounter creates a counter with n shards (at least 1).
func NewShardedCounter(n int) *ShardedCounter {
	if n < 1 {
		n = 1
	}
	return &ShardedCounter{shards: make([]paddedCounter, n)}
}

// Shard returns shard i's counter; the caller adds to it without
// synchronization against other shards.
func (s *ShardedCounter) Shard(i int) *Counter { return &s.shards[i].Counter }

// Shards returns the shard count.
func (s *ShardedCounter) Shards() int { return len(s.shards) }

// Load returns the sum over all shards.
func (s *ShardedCounter) Load() uint64 {
	var t uint64
	for i := range s.shards {
		t += s.shards[i].Counter.Load()
	}
	return t
}

// PortCounters aggregates the standard per-port statistics every
// dataplane element (legacy switch ports, soft switch ports) exposes;
// the layout mirrors the OpenFlow port-stats body.
type PortCounters struct {
	RxPackets Counter
	TxPackets Counter
	RxBytes   Counter
	TxBytes   Counter
	RxDropped Counter
	TxDropped Counter
	RxErrors  Counter
}

// RecordRx accounts one received frame of n bytes.
func (p *PortCounters) RecordRx(n int) {
	p.RxPackets.Inc()
	p.RxBytes.Add(uint64(n))
}

// RecordTx accounts one transmitted frame of n bytes.
func (p *PortCounters) RecordTx(n int) {
	p.TxPackets.Inc()
	p.TxBytes.Add(uint64(n))
}

// String summarizes the counters.
func (p *PortCounters) String() string {
	return fmt.Sprintf("rx=%d/%dB tx=%d/%dB drop=%d/%d err=%d",
		p.RxPackets.Load(), p.RxBytes.Load(),
		p.TxPackets.Load(), p.TxBytes.Load(),
		p.RxDropped.Load(), p.TxDropped.Load(), p.RxErrors.Load())
}

// CacheCounters aggregates the statistics of a datapath flow cache —
// one softswitch cache tier (exact-match microflow or wildcard
// megaflow), or the whole tier chain: how often a packet was served
// from the cache, how often it had to take the slow pipeline walk,
// and how much churn the cache saw. All fields are atomic, so the
// record path stays allocation- and lock-free.
type CacheCounters struct {
	Hits          Counter // packet served from a valid cached megaflow
	Misses        Counter // packet took the full pipeline walk
	Inserts       Counter // megaflows installed after a walk
	Invalidations Counter // hits discarded because a revision moved
	Evictions     Counter // entries displaced by capacity pressure
	Bypassed      Counter // packets that skipped the cache entirely (adaptive bypass)
}

// HitRate returns the fraction of packets served from the cache, in
// [0,1]; 0 if nothing was recorded yet.
func (c *CacheCounters) HitRate() float64 {
	h, m := c.Hits.Load(), c.Misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// String summarizes the counters.
func (c *CacheCounters) String() string {
	return fmt.Sprintf("hits=%d misses=%d (%.1f%%) inserts=%d inval=%d evict=%d bypass=%d",
		c.Hits.Load(), c.Misses.Load(), c.HitRate()*100,
		c.Inserts.Load(), c.Invalidations.Load(), c.Evictions.Load(), c.Bypassed.Load())
}

// TelemetryCounters aggregates the statistics of the flow-telemetry
// plane: flow-record churn in the datapath shards, the shard-drain
// ring between the shards and the aggregator, and the sFlow-style
// packet sampler. All fields are atomic so the shard sweep path stays
// allocation- and lock-free beyond the shard's own mutex.
type TelemetryCounters struct {
	FlowsCreated  Counter // records created by first-seen packets
	FlowsExpired  Counter // records removed by the idle-timeout sweep
	FlowsEvicted  Counter // records displaced by shard capacity pressure
	RecordsQueued Counter // record snapshots pushed onto the drain ring
	RecordsLost   Counter // snapshots dropped because the drain ring was full
	SamplesQueued Counter // packet samples pushed onto the drain ring
	SamplesLost   Counter // samples dropped because the drain ring was full
	Sweeps        Counter // shard timer sweeps executed
}

// String summarizes the counters.
func (t *TelemetryCounters) String() string {
	return fmt.Sprintf("flows=%d expired=%d evicted=%d records=%d lost=%d samples=%d/%d sweeps=%d",
		t.FlowsCreated.Load(), t.FlowsExpired.Load(), t.FlowsEvicted.Load(),
		t.RecordsQueued.Load(), t.RecordsLost.Load(),
		t.SamplesQueued.Load(), t.SamplesLost.Load(), t.Sweeps.Load())
}

// histogram bucket layout: 64 log2 buckets of 16 linear sub-buckets
// each covers the full uint64 nanosecond range with <6.25% relative
// error, in the spirit of HdrHistogram.
const (
	subBucketBits  = 4
	subBuckets     = 1 << subBucketBits
	histMaxBuckets = 64 * subBuckets
)

// Histogram is a concurrency-safe log-bucketed histogram of
// non-negative int64 samples (typically latencies in nanoseconds).
type Histogram struct {
	buckets [histMaxBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Int64
	max     atomic.Int64
	once    sync.Once
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.init()
	return h
}

func (h *Histogram) init() {
	h.once.Do(func() { h.min.Store(math.MaxInt64) })
}

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	// Position of highest bit determines the log bucket; the next
	// subBucketBits bits select the linear sub-bucket.
	msb := 63 - leadingZeros64(uint64(v))
	shift := msb - subBucketBits
	idx := (msb-subBucketBits+1)*subBuckets + int(uint64(v)>>uint(shift)&(subBuckets-1))
	if idx >= histMaxBuckets {
		idx = histMaxBuckets - 1
	}
	return idx
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// bucketLow returns the lowest value that maps to bucket idx.
func bucketLow(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	log := idx/subBuckets + subBucketBits - 1
	sub := idx % subBuckets
	return int64(1)<<uint(log) + int64(sub)<<uint(log-subBucketBits)
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	h.init()
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// RecordDuration adds one duration sample in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the arithmetic mean of the samples, or 0 if empty.
func (h *Histogram) Mean() float64 {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(c)
}

// Min returns the smallest recorded sample, or 0 if empty.
func (h *Histogram) Min() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest recorded sample, or 0 if empty.
func (h *Histogram) Max() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Percentile returns an upper-bound estimate of the p-th percentile
// (0 < p <= 100). The estimate errs high by at most one sub-bucket
// width (<6.25%).
func (h *Histogram) Percentile(p float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if p <= 0 {
		return h.Min()
	}
	if p >= 100 {
		return h.Max()
	}
	rank := uint64(math.Ceil(p / 100 * float64(total)))
	var seen uint64
	for i := 0; i < histMaxBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return bucketLow(i)
		}
	}
	return h.Max()
}

// Summary holds a rendered percentile summary of a histogram.
type Summary struct {
	Count               uint64
	Mean, P50, P95, P99 float64
	Min, Max            int64
}

// Summarize extracts the standard summary used by the experiment
// reports, values in the unit the samples were recorded in.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   float64(h.Percentile(50)),
		P95:   float64(h.Percentile(95)),
		P99:   float64(h.Percentile(99)),
		Min:   h.Min(),
		Max:   h.Max(),
	}
}

// String renders the summary assuming nanosecond samples.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s max=%s",
		s.Count,
		time.Duration(s.Mean), time.Duration(s.P50),
		time.Duration(s.P95), time.Duration(s.P99), time.Duration(s.Max))
}

// Distribution counts occurrences of arbitrary keys; used by the load
// balancer experiment to report the per-backend share. Safe for
// concurrent use.
type Distribution struct {
	mu sync.Mutex
	m  map[string]uint64
}

// NewDistribution returns an empty distribution.
func NewDistribution() *Distribution {
	return &Distribution{m: make(map[string]uint64)}
}

// Add increments the count of key by n.
func (d *Distribution) Add(key string, n uint64) {
	d.mu.Lock()
	d.m[key] += n
	d.mu.Unlock()
}

// Get returns the count for key.
func (d *Distribution) Get(key string) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.m[key]
}

// Total returns the sum over all keys.
func (d *Distribution) Total() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var t uint64
	for _, v := range d.m {
		t += v
	}
	return t
}

// Shares returns keys sorted lexicographically with their fraction of
// the total.
func (d *Distribution) Shares() []Share {
	d.mu.Lock()
	defer d.mu.Unlock()
	var total uint64
	for _, v := range d.m {
		total += v
	}
	keys := make([]string, 0, len(d.m))
	for k := range d.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Share, 0, len(keys))
	for _, k := range keys {
		frac := 0.0
		if total > 0 {
			frac = float64(d.m[k]) / float64(total)
		}
		out = append(out, Share{Key: k, Count: d.m[k], Fraction: frac})
	}
	return out
}

// Share is one entry of Distribution.Shares.
type Share struct {
	Key      string
	Count    uint64
	Fraction float64
}
