package detorder_test

import (
	"testing"

	"github.com/harmless-sdn/harmless/internal/analysis/analysistest"
	"github.com/harmless-sdn/harmless/internal/analysis/detorder"
)

func TestDetOrder(t *testing.T) {
	analysistest.Run(t, "testdata/src/sim", "sim", detorder.Analyzer)
}

func TestDetOrderOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata/src/outofscope", "outofscope", detorder.Analyzer)
}

// The scope must track the repo's digest- and diff-compared surfaces.
func TestScopeCoversRepoPackages(t *testing.T) {
	for _, path := range []string{
		"github.com/harmless-sdn/harmless/internal/sim",
		"github.com/harmless-sdn/harmless/internal/migrate",
		"github.com/harmless-sdn/harmless/internal/telemetry",
		"github.com/harmless-sdn/harmless/cmd/harmlessd",
	} {
		if !detorder.Scope.MatchString(path) {
			t.Errorf("scope must cover %s", path)
		}
	}
	for _, path := range []string{
		"github.com/harmless-sdn/harmless/internal/openflow",
		"github.com/harmless-sdn/harmless/internal/netem",
		"github.com/harmless-sdn/harmless/cmd/fleetsim",
	} {
		if detorder.Scope.MatchString(path) {
			t.Errorf("scope must not cover %s", path)
		}
	}
}
