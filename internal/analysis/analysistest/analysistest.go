// Package analysistest runs an analyzer over a testdata fixture
// package and checks its diagnostics against // want comments, in the
// style of golang.org/x/tools/go/analysis/analysistest (rebuilt here
// on the standard library: the module deliberately has no external
// dependencies).
//
// A fixture line declares its expected diagnostics as one or more
// quoted regular expressions:
//
//	m := map[int]int{} // want "map literal allocates"
//
// Every want must be matched by a diagnostic on its line and every
// diagnostic must match a want; either mismatch fails the test. A
// want clause may ride at the end of a //harmless: directive comment
// (the directive parser strips it from the reason).
package analysistest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/harmless-sdn/harmless/internal/analysis"
)

// want is one expectation: a regexp that must match a diagnostic
// reported on its line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var quoted = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// Run loads the fixture package in dir (every non-test .go file) under
// the package path pkgPath, runs a, and enforces the // want
// expectations. pkgPath matters: analyzers scope themselves by import
// path, so a fixture named testdata/src/netem loaded as "netem" lands
// in clockinject's scope while "outofscope" does not.
func Run(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture dir: %v", err)
	}
	var filenames []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	if len(filenames) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	fset := token.NewFileSet()
	pkg, err := analysis.CheckFixture(fset, pkgPath, filenames)
	if err != nil {
		t.Fatalf("typecheck fixture %s: %v", dir, err)
	}

	wants := collectWants(t, fset, pkg)

	var diags []analysis.Diagnostic
	pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info,
		func(d analysis.Diagnostic) { diags = append(diags, d) })
	switch {
	case a.RunModule != nil:
		// A module analyzer sees the fixture as a one-package module.
		if err := a.RunModule(&analysis.ModulePass{Passes: []*analysis.Pass{pass}}); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
	default:
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
	}
	analysis.SortDiagnostics(diags)

	for i := range diags {
		d := &diags[i]
		if !matchWant(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// collectWants scans every comment of the fixture for want clauses.
func collectWants(t *testing.T, fset *token.FileSet, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Slash)
				clause := c.Text[idx+len("// want "):]
				matches := quoted.FindAllString(clause, -1)
				if len(matches) == 0 {
					t.Fatalf("%s: want clause with no quoted pattern: %s", pos, c.Text)
				}
				for _, q := range matches {
					raw, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}

// matchWant consumes the first unmatched want on the diagnostic's line
// whose pattern matches.
func matchWant(wants []*want, d *analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
