package pkt

import (
	"encoding/binary"
	"fmt"
)

// EtherType values used by the HARMLESS dataplane.
const (
	EtherTypeIPv4  uint16 = 0x0800
	EtherTypeARP   uint16 = 0x0806
	EtherTypeDot1Q uint16 = 0x8100 // C-VLAN tag (802.1Q)
	EtherTypeQinQ  uint16 = 0x88a8 // S-VLAN tag (802.1ad)
	EtherTypeIPv6  uint16 = 0x86dd
)

// EthernetHeaderLen is the length of an untagged Ethernet II header.
const EthernetHeaderLen = 14

// Dot1QHeaderLen is the length of one 802.1Q tag (TPID is accounted in
// the preceding EtherType position, so a tag adds 4 bytes on the wire).
const Dot1QHeaderLen = 4

// MinFrameLen is the minimum Ethernet frame size (without FCS). The
// emulated fabric does not enforce padding, but traffic generators use
// it to produce realistic size distributions.
const MinFrameLen = 60

// MaxFrameLen is the conventional maximum untagged frame size (without
// FCS): 1500-byte MTU plus the 14-byte header.
const MaxFrameLen = 1514

// Ethernet is an Ethernet II header.
type Ethernet struct {
	Dst       MAC
	Src       MAC
	EtherType uint16 // the type immediately following this header
	payload   []byte
}

// LayerType implements Layer.
func (e *Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// LayerPayload implements Layer.
func (e *Ethernet) LayerPayload() []byte { return e.payload }

// DecodeFromBytes implements Layer.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < EthernetHeaderLen {
		return errTruncated(LayerTypeEthernet)
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	e.payload = data[EthernetHeaderLen:]
	return nil
}

// NextLayerType implements Layer.
func (e *Ethernet) NextLayerType() LayerType {
	return layerTypeForEtherType(e.EtherType)
}

func layerTypeForEtherType(et uint16) LayerType {
	switch et {
	case EtherTypeIPv4:
		return LayerTypeIPv4
	case EtherTypeIPv6:
		return LayerTypeIPv6
	case EtherTypeARP:
		return LayerTypeARP
	case EtherTypeDot1Q, EtherTypeQinQ:
		return LayerTypeDot1Q
	}
	return LayerTypePayload
}

// SerializeTo implements SerializableLayer.
func (e *Ethernet) SerializeTo(b *SerializeBuffer) error {
	hdr := b.PrependBytes(EthernetHeaderLen)
	copy(hdr[0:6], e.Dst[:])
	copy(hdr[6:12], e.Src[:])
	binary.BigEndian.PutUint16(hdr[12:14], e.EtherType)
	return nil
}

// String summarizes the header for diagnostics.
func (e *Ethernet) String() string {
	return fmt.Sprintf("Ethernet %s > %s type=0x%04x", e.Src, e.Dst, e.EtherType)
}

// Dot1Q is one 802.1Q VLAN tag. On the wire the tag sits between the
// source MAC and the encapsulated EtherType; in the layer model the
// Ethernet layer's EtherType is 0x8100 and this layer carries the TCI
// plus the real EtherType.
type Dot1Q struct {
	Priority     uint8  // PCP, 3 bits
	DropEligible bool   // DEI, 1 bit
	VLANID       uint16 // VID, 12 bits
	EtherType    uint16 // encapsulated protocol
	payload      []byte
}

// LayerType implements Layer.
func (d *Dot1Q) LayerType() LayerType { return LayerTypeDot1Q }

// LayerPayload implements Layer.
func (d *Dot1Q) LayerPayload() []byte { return d.payload }

// DecodeFromBytes implements Layer.
func (d *Dot1Q) DecodeFromBytes(data []byte) error {
	if len(data) < Dot1QHeaderLen {
		return errTruncated(LayerTypeDot1Q)
	}
	tci := binary.BigEndian.Uint16(data[0:2])
	d.Priority = uint8(tci >> 13)
	d.DropEligible = tci&0x1000 != 0
	d.VLANID = tci & 0x0fff
	d.EtherType = binary.BigEndian.Uint16(data[2:4])
	d.payload = data[Dot1QHeaderLen:]
	return nil
}

// NextLayerType implements Layer.
func (d *Dot1Q) NextLayerType() LayerType {
	return layerTypeForEtherType(d.EtherType)
}

// SerializeTo implements SerializableLayer.
func (d *Dot1Q) SerializeTo(b *SerializeBuffer) error {
	if d.VLANID > 0x0fff {
		return fmt.Errorf("pkt: VLAN id %d out of range", d.VLANID)
	}
	hdr := b.PrependBytes(Dot1QHeaderLen)
	tci := uint16(d.Priority)<<13 | d.VLANID
	if d.DropEligible {
		tci |= 0x1000
	}
	binary.BigEndian.PutUint16(hdr[0:2], tci)
	binary.BigEndian.PutUint16(hdr[2:4], d.EtherType)
	return nil
}

// String summarizes the tag for diagnostics.
func (d *Dot1Q) String() string {
	return fmt.Sprintf("Dot1Q vid=%d pcp=%d type=0x%04x", d.VLANID, d.Priority, d.EtherType)
}

// Payload is an opaque application layer: the residue after all known
// headers have been decoded.
type Payload []byte

// LayerType implements Layer.
func (p *Payload) LayerType() LayerType { return LayerTypePayload }

// LayerPayload implements Layer.
func (p *Payload) LayerPayload() []byte { return nil }

// DecodeFromBytes implements Layer.
func (p *Payload) DecodeFromBytes(data []byte) error {
	*p = data
	return nil
}

// NextLayerType implements Layer.
func (p *Payload) NextLayerType() LayerType { return LayerTypeNone }

// SerializeTo implements SerializableLayer.
func (p *Payload) SerializeTo(b *SerializeBuffer) error {
	dst := b.PrependBytes(len(*p))
	copy(dst, *p)
	return nil
}
