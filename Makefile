# Local mirror of .github/workflows/ci.yml: `make ci` runs the same
# lint + test + bench-smoke gates the workflow does, so a green local
# run means a green pipeline.

GO ?= go

# Keep in sync with the bench-smoke job in .github/workflows/ci.yml.
BENCH_PATTERN := BenchmarkSingleFlow|BenchmarkReceiveBatch|BenchmarkManyFlows|BenchmarkWorkerScaling|BenchmarkDispatch|BenchmarkTelemetryOverhead
BENCH_PKGS    := ./internal/softswitch ./internal/softswitch/runtime

SHELL := /bin/bash -o pipefail

.PHONY: all lint lint-baseline fuzz-smoke test bench bench-baseline fleetsim-smoke migrate-smoke ci

all: ci

# Keep in sync with the staticcheck step in .github/workflows/ci.yml.
STATICCHECK_VERSION := 2024.1.1

lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/harmlesslint -baseline lint-baseline.json ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; fi
	$(MAKE) fuzz-smoke

# Refresh lint-baseline.json (commit the result deliberately). The
# baseline should normally be empty: burn a finding in only while its
# fix is genuinely deferred — stale entries fail `make lint` so the
# file can only shrink honestly.
lint-baseline:
	$(GO) run ./cmd/harmlesslint -write-baseline lint-baseline.json ./...

# ~10s per openflow fuzz target (keep in sync with the lint job in
# .github/workflows/ci.yml): catches wire decoders that panic on
# near-valid frames as soon as a new codec lands.
fuzz-smoke:
	@for target in $$($(GO) test -list 'Fuzz.*' ./internal/openflow | grep '^Fuzz'); do \
		$(GO) test -run "^$$target$$" -fuzz "^$$target$$" -fuzztime 10s ./internal/openflow || exit 1; \
	done

test:
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race -short ./...

# The smoke run: every key datapath bench must complete (-benchtime 1x,
# -count 2), then benchdiff -check fails on panics / FAILs /
# 0-iteration rows and prints the delta vs the committed baseline.
# The cached-vs-uncached pair gate needs real timings, so it reruns
# BenchmarkManyFlows measured (-benchtime 20000x) and fails if the flow
# cache is a net tax on ANY workload — same-run siblings, so the gate
# holds on any hardware. The whole-repo sweep then proves every other
# bench still runs too.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 1x -count 2 $(BENCH_PKGS) 2>&1 | tee bench.txt
	$(GO) run ./cmd/benchdiff -bench bench.txt -baseline BENCH_BASELINE.json -check
	$(GO) test -run '^$$' -bench 'BenchmarkManyFlows' -benchtime 20000x ./internal/softswitch 2>&1 | tee bench-pairs.txt
	$(GO) run ./cmd/benchdiff -bench bench-pairs.txt -check -pair-check
	$(GO) test -run '^$$' -bench . -benchtime 1x ./... 2>&1 | tee bench-full.txt
	$(GO) run ./cmd/benchdiff -bench bench-full.txt -check > /dev/null

# Refresh BENCH_BASELINE.json on the current machine (commit the
# result deliberately). Same -benchtime 1x regime as the smoke run so
# deltas compare like with like; more -count samples for stability.
bench-baseline:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 1x -count 5 $(BENCH_PKGS) 2>&1 | tee bench.txt
	$(GO) run ./cmd/benchdiff -bench bench.txt -write BENCH_BASELINE.json \
		-note "make bench-baseline snapshot (-benchtime 1x -count 5); deltas vs different hardware are informational"

# Mirror of the fleetsim-smoke CI job: 1040 switches and 1M flow
# arrivals on virtual time, run twice; the digests must match bitwise
# and the packet-mode failover scenario must pass its zero-loss checks.
fleetsim-smoke:
	$(GO) build -o fleetsim ./cmd/fleetsim
	./fleetsim -scenario examples/fleetsim/ci-smoke.json -wall-budget 55s -v -out verdict-a.json > /dev/null
	./fleetsim -scenario examples/fleetsim/ci-smoke.json -wall-budget 55s -out verdict-b.json > /dev/null
	@da="$$(grep -o '"digest": *"[0-9a-f]*"' verdict-a.json)"; \
	db="$$(grep -o '"digest": *"[0-9a-f]*"' verdict-b.json)"; \
	echo "run A: $$da"; echo "run B: $$db"; \
	test -n "$$da" && test "$$da" = "$$db"
	./fleetsim -scenario examples/fleetsim/packet-failover.json -wall-budget 55s > /dev/null

# Mirror of the migrate-smoke CI job: the example three-wave campaign
# (one wave killed by a mid-soak server death and rolled back, one
# controller failover survived) run twice; both runs must pass their
# zero-loss + cost-conformance verdicts and produce bitwise-identical
# digests.
migrate-smoke:
	$(GO) build -o migrate-bin ./cmd/migrate
	./migrate-bin -spec examples/migrate/campaign.json -wall-budget 55s -v -out campaign-a.json > /dev/null
	./migrate-bin -spec examples/migrate/campaign.json -wall-budget 55s -out campaign-b.json > /dev/null
	@da="$$(grep -o '"digest": *"[0-9a-f]*"' campaign-a.json)"; \
	db="$$(grep -o '"digest": *"[0-9a-f]*"' campaign-b.json)"; \
	echo "run A: $$da"; echo "run B: $$db"; \
	test -n "$$da" && test "$$da" = "$$db"

ci: lint test bench fleetsim-smoke migrate-smoke
