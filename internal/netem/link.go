package netem

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/harmless-sdn/harmless/internal/stats"
)

// ErrLinkClosed is returned by Send after Close.
var ErrLinkClosed = errors.New("netem: link closed")

// Receiver consumes frames arriving at a port. The frame slice is owned
// by the receiver after the call (ownership transfer, no copies on the
// fast path).
type Receiver func(frame []byte)

// BatchReceiver consumes a vector of frames arriving at a port
// together. Ownership of each frame transfers to the receiver; the
// containing slice is only borrowed for the duration of the call and
// may be reused by the deliverer afterwards (the dataplane package
// documents these rules).
type BatchReceiver func(frames [][]byte)

// LinkConfig parameterizes a link. The zero value is a synchronous,
// lossless, zero-latency, infinite-bandwidth link — the configuration
// used by deterministic tests.
type LinkConfig struct {
	// Async selects queued goroutine delivery with the timing model.
	Async bool
	// Latency is the one-way propagation delay (async mode only).
	Latency time.Duration
	// BandwidthBps is the line rate in bits/s; 0 means infinite
	// (async mode only).
	BandwidthBps float64
	// LossProb is the independent per-frame drop probability [0,1).
	LossProb float64
	// QueueLen is the per-direction queue capacity in frames for
	// async mode; 0 means a default of 512. Frames arriving at a full
	// queue are tail-dropped.
	QueueLen int
	// RxBatch bounds how many queued frames one async wakeup drains
	// into a single batch delivery; 0 means a default of 64. Only
	// untimed async links (no latency, no bandwidth cap) coalesce:
	// with a timing model each frame keeps its own arrival instant.
	RxBatch int
	// Seed seeds the loss process; links with the same seed drop the
	// same frames.
	Seed int64
	// Scheduler switches async mode to virtual-time delivery: instead
	// of pump goroutines sleeping on the wall clock, every frame is
	// scheduled as a Scheduler callback at its modeled arrival instant
	// (departure per the serialization horizon, plus Latency). FIFO
	// order per direction is preserved — arrival instants are
	// monotonic per sender and equal deadlines fire in registration
	// order. QueueLen bounds the frames in flight per direction
	// (tail-drop beyond it); RxBatch is not used. Ignored unless Async
	// is set.
	Scheduler Scheduler
	// Name is used in diagnostics.
	Name string
}

// Link is a full-duplex point-to-point link with two Ports.
type Link struct {
	cfg   LinkConfig
	sched Scheduler // non-nil: virtual-time async delivery
	a, b  *Port

	lossMu sync.Mutex
	rng    *rand.Rand

	closeOnce sync.Once
	done      chan struct{}
}

// Port is one end of a Link. A device attaches by calling SetReceiver
// and transmits with Send.
type Port struct {
	link     *Link
	peer     *Port
	name     string
	counters stats.PortCounters

	recvMu        sync.RWMutex
	receiver      Receiver
	batchReceiver BatchReceiver

	// async state (nil in sync and virtual modes)
	queue chan []byte
	// inflight counts scheduled-but-undelivered frames sent by this
	// port (virtual mode's queue occupancy, tail-dropped at QueueLen)
	inflight atomic.Int64
	// timing model state, owned by the sender side
	timeMu   sync.Mutex
	nextFree time.Time
}

// NewLink creates a link with the given configuration and returns it;
// its two ends are available via A and B.
func NewLink(cfg LinkConfig) *Link {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 512
	}
	if cfg.RxBatch <= 0 {
		cfg.RxBatch = 64
	}
	l := &Link{cfg: cfg, done: make(chan struct{})}
	if cfg.LossProb > 0 {
		l.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	l.a = &Port{link: l, name: cfg.Name + "/A"}
	l.b = &Port{link: l, name: cfg.Name + "/B"}
	l.a.peer, l.b.peer = l.b, l.a
	switch {
	case cfg.Async && cfg.Scheduler != nil:
		l.sched = cfg.Scheduler // virtual time: no pumps, no queues
	case cfg.Async:
		l.a.queue = make(chan []byte, cfg.QueueLen)
		l.b.queue = make(chan []byte, cfg.QueueLen)
		go l.pump(l.a) // drains frames sent BY a, delivers to b
		go l.pump(l.b)
	}
	return l
}

// A returns the first port.
func (l *Link) A() *Port { return l.a }

// B returns the second port.
func (l *Link) B() *Port { return l.b }

// Close shuts the link down; subsequent Sends fail with ErrLinkClosed.
func (l *Link) Close() {
	l.closeOnce.Do(func() { close(l.done) })
}

func (l *Link) dropped() bool {
	if l.rng == nil {
		return false
	}
	l.lossMu.Lock()
	defer l.lossMu.Unlock()
	return l.rng.Float64() < l.cfg.LossProb
}

// pump drains the queue of frames sent by p and delivers them to the
// peer, applying the latency/bandwidth model in real time. On an
// untimed link (no latency, no bandwidth cap) every frame is due the
// moment it is queued, so one wakeup drains the backlog into a vector
// — up to RxBatch frames — and delivers it as one batch; with a
// timing model each frame keeps its own arrival instant and is
// delivered individually.
func (l *Link) pump(p *Port) {
	untimed := l.cfg.Latency <= 0 && l.cfg.BandwidthBps <= 0
	var batch [][]byte
	if untimed {
		batch = make([][]byte, 0, l.cfg.RxBatch)
	}
	for {
		select {
		case <-l.done:
			return
		case frame := <-p.queue:
			if untimed {
				batch = append(batch[:0], frame)
			drain:
				for len(batch) < l.cfg.RxBatch {
					select {
					case f := <-p.queue:
						batch = append(batch, f)
					default:
						break drain
					}
				}
				p.peer.deliverBatch(batch)
				clear(batch)
				continue
			}
			arrival := l.schedule(p, len(frame))
			//harmless:allow-wallclock async mode paces real goroutines on wall time; virtual mode never reaches here
			if d := time.Until(arrival); d > 0 {
				select {
				case <-time.After(d): //harmless:allow-wallclock same: async-mode pacing
				case <-l.done:
					return
				}
			}
			p.peer.deliver(frame)
		}
	}
}

// now reads the link's timeline: the scheduler's in virtual mode, the
// wall clock otherwise.
func (l *Link) now() time.Time {
	if l.sched != nil {
		return l.sched.Now()
	}
	return time.Now() //harmless:allow-wallclock fallback timeline when no scheduler is injected
}

// schedule computes the arrival time of a frame of size n sent by p,
// advancing the sender's serialization horizon.
func (l *Link) schedule(p *Port, n int) time.Time {
	now := l.now()
	p.timeMu.Lock()
	start := p.nextFree
	if start.Before(now) {
		start = now
	}
	var ser time.Duration
	if l.cfg.BandwidthBps > 0 {
		ser = time.Duration(float64(n*8) / l.cfg.BandwidthBps * float64(time.Second))
	}
	p.nextFree = start.Add(ser)
	dep := p.nextFree
	p.timeMu.Unlock()
	return dep.Add(l.cfg.Latency)
}

// Name returns the port's diagnostic name.
func (p *Port) Name() string { return p.name }

// Counters exposes the port's statistics.
func (p *Port) Counters() *stats.PortCounters { return &p.counters }

// SetReceiver installs the function invoked for every frame arriving
// at this port. It may be called again to replace the receiver; doing
// so also clears any batch receiver, so a device swap cannot leave
// batched deliveries flowing to the previous device (re-install one
// with SetBatchReceiver afterwards, as AttachNetPort does).
func (p *Port) SetReceiver(r Receiver) {
	p.recvMu.Lock()
	p.receiver = r
	p.batchReceiver = nil
	p.recvMu.Unlock()
}

// SetBatchReceiver installs the function invoked when a frame vector
// arrives at this port. Ports without one fall back to the per-frame
// receiver for every frame of a batch, so batch delivery is always
// safe to use; attaching a per-frame wrapper with WrapReceiver clears
// it again.
func (p *Port) SetBatchReceiver(r BatchReceiver) {
	p.recvMu.Lock()
	p.batchReceiver = r
	p.recvMu.Unlock()
}

// WrapReceiver replaces the current receiver with wrap(current) —
// used to interpose taps/captures after a device has attached. The
// batch receiver is cleared so every frame — batched or not — flows
// through the wrapped per-frame chain; a batch short-circuiting past
// the wrapper would blind the tap.
func (p *Port) WrapReceiver(wrap func(Receiver) Receiver) {
	p.recvMu.Lock()
	p.receiver = wrap(p.receiver)
	p.batchReceiver = nil
	p.recvMu.Unlock()
}

// Send transmits a frame towards the peer port. In synchronous mode
// the peer's receiver runs on the calling goroutine; in asynchronous
// mode the frame is queued (tail-drop on overflow). The caller
// relinquishes ownership of the slice.
func (p *Port) Send(frame []byte) error {
	select {
	case <-p.link.done:
		return ErrLinkClosed
	default:
	}
	p.counters.RecordTx(len(frame))
	if p.link.dropped() {
		p.counters.TxDropped.Inc()
		return nil
	}
	if l := p.link; l.sched != nil { // virtual-time async delivery
		if p.inflight.Load() >= int64(l.cfg.QueueLen) {
			p.counters.TxDropped.Inc()
			return nil
		}
		p.inflight.Add(1)
		arrival := l.schedule(p, len(frame))
		l.sched.AfterFunc(arrival.Sub(l.sched.Now()), func() {
			p.inflight.Add(-1)
			select {
			case <-l.done:
				return
			default:
			}
			p.peer.deliver(frame)
		})
		return nil
	}
	if p.queue == nil { // synchronous
		p.peer.deliver(frame)
		return nil
	}
	select {
	case p.queue <- frame:
	default:
		p.counters.TxDropped.Inc()
	}
	return nil
}

// SendBatch transmits a vector of frames towards the peer port in one
// call. Ownership of each frame transfers; the containing slice stays
// the caller's and may be reused after the call returns. On a
// synchronous lossless link the whole vector is delivered as one
// batch; otherwise each frame goes through the per-frame Send path so
// loss sampling and queue tail-drops stay frame-exact.
func (p *Port) SendBatch(frames [][]byte) error {
	if len(frames) == 0 {
		return nil
	}
	select {
	case <-p.link.done:
		return ErrLinkClosed
	default:
	}
	if p.queue == nil && p.link.sched == nil && p.link.rng == nil {
		var bytes uint64
		for _, f := range frames {
			bytes += uint64(len(f))
		}
		p.counters.TxPackets.Add(uint64(len(frames)))
		p.counters.TxBytes.Add(bytes)
		p.peer.deliverBatch(frames)
		return nil
	}
	for _, f := range frames {
		if err := p.Send(f); err != nil {
			return err
		}
	}
	return nil
}

func (p *Port) deliver(frame []byte) {
	p.counters.RecordRx(len(frame))
	p.recvMu.RLock()
	r := p.receiver
	p.recvMu.RUnlock()
	if r == nil {
		p.counters.RxDropped.Inc()
		return
	}
	r(frame)
}

// deliverBatch hands a frame vector to the attached device: to its
// batch receiver when one is installed, frame by frame otherwise.
func (p *Port) deliverBatch(frames [][]byte) {
	var bytes uint64
	for _, f := range frames {
		bytes += uint64(len(f))
	}
	p.counters.RxPackets.Add(uint64(len(frames)))
	p.counters.RxBytes.Add(bytes)
	p.recvMu.RLock()
	br := p.batchReceiver
	r := p.receiver
	p.recvMu.RUnlock()
	if br != nil {
		br(frames)
		return
	}
	if r == nil {
		p.counters.RxDropped.Add(uint64(len(frames)))
		return
	}
	for _, f := range frames {
		r(f)
	}
}

// String identifies the port.
func (p *Port) String() string { return fmt.Sprintf("port(%s)", p.name) }
