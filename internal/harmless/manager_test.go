package harmless

import (
	"net"
	"strings"
	"testing"

	"github.com/harmless-sdn/harmless/internal/legacy"
	"github.com/harmless-sdn/harmless/internal/mgmt"
	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/snmp"
)

// managerRig wires a legacy switch with CLI + SNMP endpoints and
// returns a manager driving it.
type managerRig struct {
	sw     *legacy.Switch
	driver mgmt.Driver
	snmpC  *snmp.Client
	trunk  *netem.Link
}

func newManagerRig(t *testing.T, ports int, withSNMP bool) *managerRig {
	t.Helper()
	r := &managerRig{sw: legacy.NewSwitch("mgr-sw", ports)}
	cli := legacy.NewCLIServer(r.sw, legacy.DialectCiscoish)
	clientSide, serverSide := net.Pipe()
	go func() { _ = cli.ServeConn(serverSide) }()
	driver, err := mgmt.NewDriver(clientSide, "ciscoish")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { driver.Close() })
	r.driver = driver

	if withSNMP {
		mib := snmp.NewMIB()
		legacy.BindMIB(r.sw, mib, legacy.DialectCiscoish)
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pc.Close() })
		go snmp.NewAgent(mib, "public").Serve(pc) //nolint:errcheck
		c, err := snmp.Dial(pc.LocalAddr().String(), "public")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		r.snmpC = c
	}

	r.trunk = netem.NewLink(netem.LinkConfig{Name: "mgr-trunk"})
	t.Cleanup(r.trunk.Close)
	r.sw.AttachPort(ports, r.trunk.A())
	return r
}

func TestManagerDeployConfiguresLegacy(t *testing.T) {
	r := newManagerRig(t, 5, false)
	m := NewManager(r.driver, nil, ManagerConfig{})
	s4, err := m.Deploy(r.trunk.B(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s4 == nil || m.S4() != s4 || m.Plan() == nil {
		t.Fatal("accessors broken")
	}
	cfg := r.sw.Config()
	for p := 1; p <= 4; p++ {
		if cfg.Ports[p].Mode != legacy.ModeAccess || cfg.Ports[p].PVID != uint16(100+p) {
			t.Errorf("port %d: %+v", p, cfg.Ports[p])
		}
	}
	if cfg.Ports[5].Mode != legacy.ModeTrunk {
		t.Errorf("trunk: %+v", cfg.Ports[5])
	}
	if al := cfg.Ports[5].AllowedList(); len(al) != 4 {
		t.Errorf("trunk allowed: %v", al)
	}
	// VLANs got harmless names.
	if !strings.Contains(cfg.VLANs[101], "harmless") {
		t.Errorf("vlan names: %v", cfg.VLANs)
	}
	// SS_2 logical ports mirror the access ports.
	ports := s4.SS2.PortNumbers()
	if len(ports) != 4 || ports[0] != 1 || ports[3] != 4 {
		t.Errorf("logical ports: %v", ports)
	}
}

func TestManagerDiscoverPrefersSNMP(t *testing.T) {
	r := newManagerRig(t, 4, true)
	m := NewManager(r.driver, r.snmpC, ManagerConfig{})
	facts, err := m.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if facts.Hostname != "mgr-sw" || facts.PortCount != 4 || facts.Vendor != "ciscoish" {
		t.Errorf("facts: %+v", facts)
	}
	// Deploy with the SNMP path active.
	if _, err := m.Deploy(r.trunk.B(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestManagerMigratePortErrors(t *testing.T) {
	r := newManagerRig(t, 5, false)
	m := NewManager(r.driver, nil, ManagerConfig{AccessPorts: []int{1, 2}})
	if err := m.MigratePort(3); err == nil {
		t.Error("MigratePort before Deploy accepted")
	}
	if _, err := m.Deploy(r.trunk.B(), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.MigratePort(1); err == nil {
		t.Error("re-migrating port 1 accepted")
	}
	if err := m.MigratePort(5); err == nil {
		t.Error("migrating the trunk accepted")
	}
	// A valid incremental migration extends plan + translator + SS_2.
	if err := m.MigratePort(3); err != nil {
		t.Fatal(err)
	}
	if m.Plan().VLANForPort[3] != 103 {
		t.Errorf("plan: %v", m.Plan().VLANForPort)
	}
	found := false
	for _, p := range m.S4().SS2.PortNumbers() {
		if p == 3 {
			found = true
		}
	}
	if !found {
		t.Error("logical port 3 not wired")
	}
	// Translator gained two rules for the port.
	if got := m.S4().SS1.Table(0).Len(); got != 2*2+2+2 { // 2 initial ports + segment + new port
		t.Errorf("translator rules: %d", got)
	}
	// Idempotent wiring guard.
	softConnectPatch(m.S4(), 3)
}

func TestManagerDeployBadPlan(t *testing.T) {
	r := newManagerRig(t, 4, false)
	m := NewManager(r.driver, nil, ManagerConfig{AccessPorts: []int{9}})
	if _, err := m.Deploy(r.trunk.B(), nil); err == nil {
		t.Error("out-of-range access port accepted")
	}
}
