// Package dataplane holds the batch-oriented I/O primitives the
// HARMLESS dataplane layers share: the frame Batch that travels
// between ports and switches, and a lock-free bounded Ring that lets
// load generators and benchmarks drive a switch at full rate without
// the netem timing machinery in the loop.
//
// # Frame ownership
//
// The rules are uniform across every batch-carrying API in this
// repository (netem.Port.SendBatch, softswitch.Switch.ReceiveBatch,
// softswitch.PortBackend.TransmitBatch):
//
//  1. Ownership of each FRAME (the []byte) transfers to the callee.
//     The caller must not retain or mutate a frame after handing it
//     over; the datapath may rewrite it in place or forward it on.
//  2. The CONTAINING slice ([][]byte) stays with the caller and is
//     only borrowed for the duration of the call. The callee must not
//     retain it; the caller may reuse it — refilling it with fresh
//     frames — as soon as the call returns.
//
// Rule 2 is what makes per-batch amortization free of per-batch
// allocation: one [][]byte vector can carry every batch of a run.
package dataplane

// Verdict records what the datapath decided for one frame of a batch.
// It is diagnostic metadata: the decision is applied as it is made,
// the verdict only reports it.
type Verdict uint8

const (
	// VerdictPending marks a frame not yet classified.
	VerdictPending Verdict = iota
	// VerdictCacheHit marks a frame served by the microflow cache.
	VerdictCacheHit
	// VerdictSlowPath marks a frame that took the full pipeline walk.
	VerdictSlowPath
	// VerdictDropped marks a frame dropped before classification
	// (malformed, key extraction failed).
	VerdictDropped
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictPending:
		return "pending"
	case VerdictCacheHit:
		return "cache-hit"
	case VerdictSlowPath:
		return "slow-path"
	case VerdictDropped:
		return "dropped"
	}
	return "unknown"
}

// Meta is the per-frame metadata of a Batch.
type Meta struct {
	// InPort is the datapath port the frame arrived on.
	InPort uint32
	// Verdict is filled in by the datapath as the frame is classified.
	Verdict Verdict
}

// Batch is a vector of frames traversing the datapath together, with
// per-frame metadata. Frames and Meta are parallel and stay
// equal-length when the batch is built through Append; APIs that
// consume a Batch (softswitch.Switch.ReceiveMixedBatch) require a
// Meta entry for every frame — build batches with Append, not by
// poking Frames directly.
//
// Ownership follows the package rules: the frame bytes belong to
// whoever currently holds the batch, the slices themselves belong to
// the batch's owner and are reusable via Reset.
type Batch struct {
	Frames [][]byte
	Meta   []Meta
}

// Append adds one frame arriving on inPort, taking ownership of it.
func (b *Batch) Append(frame []byte, inPort uint32) {
	b.Frames = append(b.Frames, frame) //harmless:allow-retain Append IS the ownership transfer into the batch
	b.Meta = append(b.Meta, Meta{InPort: inPort, Verdict: VerdictPending})
}

// Len returns the number of frames in the batch.
func (b *Batch) Len() int { return len(b.Frames) }

// Bytes returns the total frame bytes in the batch.
func (b *Batch) Bytes() int {
	n := 0
	for _, f := range b.Frames {
		n += len(f)
	}
	return n
}

// Reset empties the batch for reuse, dropping frame references so the
// backing arrays don't pin consumed frames.
func (b *Batch) Reset() {
	clear(b.Frames)
	b.Frames = b.Frames[:0] //harmless:allow-retain Reset truncates the batch's own vector after clearing references
	b.Meta = b.Meta[:0]
}
