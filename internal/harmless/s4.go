package harmless

import (
	"fmt"
	"io"
	"time"

	"github.com/harmless-sdn/harmless/internal/controlplane"
	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/softswitch"
)

// S4 is the assembled HARMLESS-S4 group node: the translator SS_1 and
// the controller-facing main switch SS_2, joined by one patch port per
// logical port (Fig. 1). Frames cross the patch ports as still-grouped
// batches dispatched iteratively off the softswitch worklist, so the
// SS_1 -> SS_2 hop adds no per-frame call depth: trunk rx vectors
// traverse the whole group node one batch at a time.
type S4 struct {
	Plan *Plan
	SS1  *softswitch.Switch
	SS2  *softswitch.Switch

	agent *softswitch.Agent
}

// S4Config parameterizes BuildS4.
type S4Config struct {
	// Name prefixes the switch names (default "harmless").
	Name string
	// DatapathID for SS_2, the identity the controller sees. SS_1
	// gets DatapathID+1 (it never talks to the controller).
	DatapathID uint64
	// Specialize enables the ESwitch-style fast path on both
	// instances.
	Specialize bool
	// Clock injection for tests.
	Clock netem.Clock
}

// BuildS4 instantiates SS_1 and SS_2, wires the patch ports for every
// logical port of the plan, and installs the translator program.
// The caller attaches the trunk with AttachTrunk and connects the
// controller with ConnectController.
func BuildS4(plan *Plan, cfg S4Config) (*S4, error) {
	if cfg.Name == "" {
		cfg.Name = "harmless"
	}
	if cfg.DatapathID == 0 {
		cfg.DatapathID = 0x00004e554c4c0001 // arbitrary non-zero default
	}
	var opts []softswitch.Option
	if cfg.Specialize {
		opts = append(opts, softswitch.WithSpecialization(true))
	}
	if cfg.Clock != nil {
		opts = append(opts, softswitch.WithClock(cfg.Clock))
	}
	s4 := &S4{
		Plan: plan,
		SS1:  softswitch.New(cfg.Name+"-ss1", cfg.DatapathID+1, opts...),
		SS2:  softswitch.New(cfg.Name+"-ss2", cfg.DatapathID, opts...),
	}
	// One patch pair per logical port: SS_1 side numbered
	// SS1PatchBase+L, SS_2 side numbered L (data-plane transparency:
	// SS_2 port numbers equal legacy access port numbers).
	for _, l := range plan.LogicalPorts() {
		softswitch.ConnectPatch(s4.SS1, SS1PatchBase+l, s4.SS2, l)
	}
	if err := InstallTranslator(s4.SS1, plan); err != nil {
		return nil, err
	}
	return s4, nil
}

// AttachTrunk binds SS_1's trunk uplink to one end of the netem link
// whose other end is the legacy switch's trunk port.
func (s *S4) AttachTrunk(p *netem.Port) {
	s.SS1.AttachNetPort(SS1TrunkPort, "trunk", p)
}

// ConnectController starts SS_2's OpenFlow agent over one established
// transport. sweepInterval controls periodic flow-expiry checks
// (0 disables; tests sweep manually).
func (s *S4) ConnectController(rw io.ReadWriteCloser, sweepInterval time.Duration) {
	s.ConnectControllers([]controlplane.Endpoint{{Conn: rw}}, controlplane.Config{}, sweepInterval)
}

// ConnectControllers brings SS_2's control plane up towards every
// endpoint: Addr endpoints are dialed actively with backoff redial
// across controller restarts, Conn endpoints serve an established
// transport. Calling it again adds channels to the running agent
// (cfg and sweepInterval apply only to the first call).
func (s *S4) ConnectControllers(endpoints []controlplane.Endpoint, cfg controlplane.Config, sweepInterval time.Duration) {
	if s.agent == nil {
		s.agent = s.SS2.NewAgent(cfg, sweepInterval)
	}
	for _, ep := range endpoints {
		if ep.Conn != nil {
			s.agent.Attach(ep.Conn)
		}
		if ep.Addr != "" {
			s.agent.Dial(ep.Addr)
		}
	}
}

// Agent returns SS_2's OpenFlow agent (nil before ConnectController).
func (s *S4) Agent() *softswitch.Agent { return s.agent }

// Stop tears down the controller channel.
func (s *S4) Stop() {
	if s.agent != nil {
		s.agent.Stop()
	}
}

// String identifies the group node.
func (s *S4) String() string {
	return fmt.Sprintf("HARMLESS-S4(%s, %d logical ports)", s.Plan.Hostname, len(s.Plan.LogicalPorts()))
}
