package netem

import (
	"sync"
	"testing"
	"time"
)

func TestSendBatchSyncDeliversVector(t *testing.T) {
	l := NewLink(LinkConfig{Name: "b"})
	defer l.Close()
	var calls int
	var got [][]byte
	l.B().SetBatchReceiver(func(frames [][]byte) {
		calls++
		for _, f := range frames {
			got = append(got, append([]byte{}, f...))
		}
	})
	batch := [][]byte{{1}, {2}, {3}}
	if err := l.A().SendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("batch receiver invoked %d times, want 1 (vector delivery)", calls)
	}
	if len(got) != 3 || got[0][0] != 1 || got[2][0] != 3 {
		t.Fatalf("delivered %v", got)
	}
	if tx := l.A().Counters().TxPackets.Load(); tx != 3 {
		t.Errorf("tx packets = %d, want 3", tx)
	}
	if rx := l.B().Counters().RxPackets.Load(); rx != 3 {
		t.Errorf("rx packets = %d, want 3", rx)
	}
}

func TestSendBatchFallsBackPerFrame(t *testing.T) {
	l := NewLink(LinkConfig{Name: "pf"})
	defer l.Close()
	var got [][]byte
	l.B().SetReceiver(func(f []byte) { got = append(got, f) })
	if err := l.A().SendBatch([][]byte{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0][0] != 1 || got[1][0] != 2 {
		t.Fatalf("per-frame fallback delivered %v", got)
	}
}

func TestWrapReceiverSeesBatchedFrames(t *testing.T) {
	l := NewLink(LinkConfig{Name: "tap"})
	defer l.Close()
	var direct, tapped int
	l.B().SetReceiver(func([]byte) { direct++ })
	l.B().SetBatchReceiver(func(frames [][]byte) { direct += len(frames) })
	l.B().WrapReceiver(func(next Receiver) Receiver {
		return func(f []byte) {
			tapped++
			next(f)
		}
	})
	if err := l.A().SendBatch([][]byte{{1}, {2}, {3}}); err != nil {
		t.Fatal(err)
	}
	// The wrapper must observe every frame: batch delivery may not
	// short-circuit past an installed tap.
	if tapped != 3 {
		t.Errorf("tap saw %d of 3 batched frames", tapped)
	}
	if direct != 3 {
		t.Errorf("receiver saw %d of 3 frames", direct)
	}
}

func TestAsyncUntimedPumpCoalesces(t *testing.T) {
	l := NewLink(LinkConfig{Name: "async", Async: true, QueueLen: 256, RxBatch: 32})
	defer l.Close()
	var mu sync.Mutex
	total, calls := 0, 0
	ready := make(chan struct{}, 1)
	l.B().SetBatchReceiver(func(frames [][]byte) {
		mu.Lock()
		total += len(frames)
		calls++
		done := total == 128
		mu.Unlock()
		if done {
			select {
			case ready <- struct{}{}:
			default:
			}
		}
		// Give the queue time to back up so later wakeups see vectors.
		time.Sleep(time.Millisecond)
	})
	for i := 0; i < 128; i++ {
		if err := l.A().Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-ready:
	case <-time.After(5 * time.Second):
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("timed out: delivered %d of 128", total)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls >= 128 {
		t.Errorf("pump never coalesced: %d deliveries for 128 frames", calls)
	}
}

func TestAsyncTimedPumpStaysPerFrame(t *testing.T) {
	// With a latency model each frame keeps its own arrival instant:
	// frames must still arrive, spaced by the serialization model.
	l := NewLink(LinkConfig{Name: "timed", Async: true, Latency: time.Millisecond})
	defer l.Close()
	got := make(chan []byte, 16)
	l.B().SetReceiver(func(f []byte) { got <- f })
	start := time.Now()
	for i := 0; i < 4; i++ {
		if err := l.A().Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		select {
		case f := <-got:
			if f[0] != byte(i) {
				t.Fatalf("frame %d out of order: %v", i, f)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("timed out waiting for frames")
		}
	}
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Errorf("latency model skipped: delivery took %v", elapsed)
	}
}
