package softswitch

import (
	"sync"

	"github.com/harmless-sdn/harmless/internal/dataplane"
	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/telemetry"
)

// Batch dispatch: the amortized entry point of the datapath.
//
// ReceiveBatch runs a frame vector through the switch paying the
// per-packet costs once per batch instead of once per frame:
//
//   - keys are extracted for the whole vector in one pass;
//   - the cache chain is probed tier by tier, the exact tier grouped
//     by shard so each shard read-lock is taken once per batch
//     (probeBatch);
//   - only the residue of misses walks the full pipeline;
//   - egress is coalesced per port (txContext) and every port backend
//     is flushed once per batch;
//   - frames crossing a patch port into a peer switch stay grouped and
//     are dispatched ITERATIVELY off a worklist — a chain of patched
//     switches (SS_1 -> SS_2 -> ...) runs at constant stack depth
//     instead of deepening the stack per hop per frame.
//
// Receive is the one-frame wrapper over the same machinery, so the
// two entry points cannot diverge semantically: counters, cache
// statistics and drop accounting are exactly equal for the same
// frames sent either way (batch_test.go proves it).
//
// Ownership follows the dataplane package rules: each frame of the
// vector transfers to the switch; the vector itself is borrowed and
// reusable by the caller as soon as ReceiveBatch returns.

// patchWork is one pending cross-switch delivery: a still-grouped
// egress batch that crossed a patch port.
type patchWork struct {
	sw     *Switch
	inPort uint32
	frames [][]byte
}

// txContext coalesces one batch's egress per port and carries the
// iterative patch-delivery worklist. ports/frames are parallel;
// flushed slot buffers are kept (or returned via recycle) so steady
// state dispatch does not allocate.
type txContext struct {
	ports  []*swPort
	frames [][][]byte
	spare  [][][]byte // recycled slot buffers
	work   []patchWork
}

// add coalesces one frame onto the egress vector of port p.
func (tx *txContext) add(p *swPort, frame []byte) {
	for i, q := range tx.ports {
		if q == p {
			tx.frames[i] = append(tx.frames[i], frame)
			return
		}
	}
	i := len(tx.ports)
	tx.ports = append(tx.ports, p)
	if i < cap(tx.frames) {
		tx.frames = tx.frames[:i+1] // revive the slot buffer from a previous flush
	} else {
		tx.frames = append(tx.frames, nil)
	}
	if tx.frames[i] == nil && len(tx.spare) > 0 {
		tx.frames[i] = tx.spare[len(tx.spare)-1]
		tx.spare = tx.spare[:len(tx.spare)-1]
	}
	tx.frames[i] = append(tx.frames[i][:0], frame)
}

// recycle takes back a frame vector whose frames have been consumed.
func (tx *txContext) recycle(frames [][]byte) {
	clear(frames)
	tx.spare = append(tx.spare, frames[:0])
}

// flushTx pushes every coalesced egress vector to its port backend,
// once per port per batch. Vectors for a BatchForwarder backend (patch
// ports and the like) are not delivered here: they go onto the
// worklist so the dispatch loop hands them to the peer switch
// iteratively.
func (s *Switch) flushTx(tx *txContext) {
	for i, p := range tx.ports {
		frames := tx.frames[i]
		var bytes uint64
		for _, f := range frames {
			bytes += uint64(len(f))
		}
		p.counters.TxPackets.Add(uint64(len(frames)))
		p.counters.TxBytes.Add(bytes)
		if fw, ok := p.backend.(BatchForwarder); ok {
			peer, peerPort := fw.ForwardTarget()
			tx.work = append(tx.work, patchWork{sw: peer, inPort: peerPort, frames: frames})
			tx.frames[i] = nil // handed to the worklist; recycled after processing
		} else {
			p.backend.TransmitBatch(frames)
			clear(frames) // drop frame refs, keep the buffer
			tx.frames[i] = frames[:0]
		}
		tx.ports[i] = nil
	}
	tx.ports = tx.ports[:0]
	tx.frames = tx.frames[:0]
}

// dispatchState is the pooled scratch of one dispatch: the egress
// context plus the per-batch classification arrays. recs/outs carry
// the batch's telemetry resolution (flow record and egress port per
// frame) to the single ObserveBatch call at the end of the dispatch —
// the zero-alloc batch-level hook, as opposed to a per-frame callback.
// exact[i] marks cache hits from an exact-match tier, whose entries
// may carry the flow's telemetry record; sc is the probe scratch the
// cache chain and its tiers share.
type dispatchState struct {
	tx    txContext
	keys  []pkt.Key
	mfs   []*CacheEntry
	skip  []bool
	exact []bool
	recs  []*telemetry.Record
	outs  []uint32
	sc    ProbeScratch
	one   [1][]byte // single-frame vector for the Receive wrapper
}

func (st *dispatchState) grow(n int) {
	if cap(st.keys) < n {
		st.keys = make([]pkt.Key, n)
		st.mfs = make([]*CacheEntry, n)
		st.skip = make([]bool, n)
		st.exact = make([]bool, n)
		st.recs = make([]*telemetry.Record, n)
		st.outs = make([]uint32, n)
	}
}

var dispatchPool = sync.Pool{New: func() any { return new(dispatchState) }}

// runWork drains the patch worklist: each entry is a still-grouped
// batch entering a peer switch, which may append further entries —
// the iterative replacement for per-frame cross-switch recursion.
func runWork(st *dispatchState) {
	for i := 0; i < len(st.tx.work); i++ {
		w := st.tx.work[i]
		st.tx.work[i] = patchWork{}
		w.sw.processBatch(w.inPort, w.frames, st, nil)
		st.tx.recycle(w.frames)
	}
	st.tx.work = st.tx.work[:0]
}

// ReceiveBatch runs a frame vector arriving on inPort through the
// datapath. It may be called concurrently, like Receive. Ownership of
// each frame transfers to the switch; the vector itself is borrowed
// and may be reused once the call returns.
//
//harmless:hotpath
func (s *Switch) ReceiveBatch(inPort uint32, frames [][]byte) {
	if len(frames) == 0 {
		return
	}
	st := dispatchPool.Get().(*dispatchState)
	s.processBatch(inPort, frames, st, nil)
	runWork(st)
	dispatchPool.Put(st)
}

// ReceiveMixedBatch dispatches a dataplane.Batch whose frames may have
// arrived on DIFFERENT ports (b.Meta[i].InPort), filling each frame's
// Verdict as the datapath classifies it — the entry point for
// poll-mode drivers that drain several rx queues into one vector.
// Consecutive frames sharing an in-port dispatch as one grouped
// sub-batch, so a port-sorted batch keeps the full amortization.
// Frame ownership transfers to the switch; the Batch's slices remain
// the caller's (Reset to refill and reuse). The batch must carry a
// Meta entry per frame — build it with Batch.Append; a meta-less
// batch is rejected.
//
//harmless:hotpath
func (s *Switch) ReceiveMixedBatch(b *dataplane.Batch) {
	n := b.Len()
	if n == 0 {
		return
	}
	if len(b.Meta) < n {
		// Malformed batch (Frames poked without Append): the frames'
		// ownership already transferred, so account them as drops
		// rather than vanishing them silently.
		s.drops.Add(uint64(n))
		return
	}
	st := dispatchPool.Get().(*dispatchState)
	for lo := 0; lo < n; {
		hi := lo + 1
		for hi < n && b.Meta[hi].InPort == b.Meta[lo].InPort {
			hi++
		}
		s.processBatch(b.Meta[lo].InPort, b.Frames[lo:hi], st, b.Meta[lo:hi])
		lo = hi
	}
	runWork(st)
	dispatchPool.Put(st)
}

// Receive runs one frame through the datapath starting at table 0: the
// one-frame wrapper over the batch dispatch. It is the entry point for
// per-frame physical ingress and may be called concurrently.
func (s *Switch) Receive(inPort uint32, frame []byte) {
	st := dispatchPool.Get().(*dispatchState)
	st.one[0] = frame
	s.processBatch(inPort, st.one[:1], st, nil)
	runWork(st)
	st.one[0] = nil
	dispatchPool.Put(st)
}

// processBatch classifies and executes one batch on one switch,
// flushing its egress at the end. Cross-switch patch deliveries are
// queued on st's worklist rather than executed inline. meta, when
// non-nil, receives the per-frame verdicts (ReceiveMixedBatch).
//
//harmless:hotpath
func (s *Switch) processBatch(inPort uint32, frames [][]byte, st *dispatchState, meta []dataplane.Meta) {
	if p := s.getPort(inPort); p != nil {
		var bytes uint64
		for _, f := range frames {
			bytes += uint64(len(f))
		}
		p.counters.RxPackets.Add(uint64(len(frames)))
		p.counters.RxBytes.Add(bytes)
	}
	tel := s.telemetry.Load()
	var now int64
	if tel != nil {
		now = s.clock.Now().UnixNano()
	}
	// Pin the entry pool for the dispatch's duration: cache entries
	// held in st.mfs (or in locals of classifyAndRun) cannot be
	// recycled while any dispatch is in flight (see entryPool).
	ch := s.cache
	if ch != nil {
		ch.pool.pin()
	}
	n := len(frames)
	if n == 1 {
		// One frame: the classic per-frame walk, minus the batch-probe
		// bookkeeping. The key lives in the pooled scratch, not on the
		// stack: it crosses the CacheTier interface, which would
		// otherwise force a heap allocation per packet.
		st.grow(1)
		v := dataplane.VerdictDropped
		var rec *telemetry.Record
		var out uint32
		key := &st.keys[0]
		if err := pkt.ExtractKey(frames[0], inPort, key); err != nil {
			s.drops.Inc()
		} else {
			v, rec, out = s.classifyAndRun(key, inPort, frames[0], tel, &st.tx)
		}
		if meta != nil {
			meta[0].Verdict = v
		}
		if rec != nil {
			tel.Observe(rec, len(frames[0]), out, now)
		}
		s.flushTx(&st.tx)
		if ch != nil {
			ch.pool.unpin()
		}
		return
	}

	st.grow(n)
	keys, skip, mfs, exact := st.keys[:n], st.skip[:n], st.mfs[:n], st.exact[:n]
	bad := 0
	for i, f := range frames {
		skip[i] = false
		if err := pkt.ExtractKey(f, inPort, &keys[i]); err != nil {
			skip[i] = true
			bad++
		}
	}
	if bad > 0 {
		s.drops.Add(uint64(bad))
	}
	if ch != nil {
		ch.probeBatch(keys, skip, mfs, exact, &st.sc)
	} else {
		clear(mfs)
	}
	recs, outs := st.recs[:n], st.outs[:n]
	for i, f := range frames {
		v := dataplane.VerdictDropped
		recs[i] = nil
		if !skip[i] {
			if mf := mfs[i]; mf != nil {
				mfs[i] = nil
				if tel != nil {
					if exact[i] {
						recs[i] = mf.telRecord(tel, &keys[i])
					} else {
						// Wildcard-tier hit: the shared entry serves many
						// flows, so resolve this packet's record directly.
						recs[i] = tel.Lookup(&keys[i])
					}
					outs[i] = mf.outPort
				}
				s.replayMicroflow(mf, inPort, f, &st.tx)
				v = dataplane.VerdictCacheHit
			} else {
				// Batch probe missed: classifyAndRun re-probes per frame
				// (the exact miss/invalidation accounting, and an entry
				// installed by an earlier frame of this very batch can
				// already hit) before falling back to the pipeline walk.
				v, recs[i], outs[i] = s.classifyAndRun(&keys[i], inPort, f, tel, &st.tx)
			}
		}
		if meta != nil {
			meta[i].Verdict = v
		}
	}
	if tel != nil {
		tel.ObserveBatch(frames, recs, outs, now)
		clear(recs) // drop record refs: dispatchState is pooled
	}
	s.flushTx(&st.tx)
	if ch != nil {
		ch.pool.unpin()
	}
}

// classifyAndRun is the per-frame decision shared by every entry
// point: serve from the cache chain, or walk the pipeline and record
// a new cache entry. It returns the verdict plus the frame's
// telemetry resolution — the flow record to account it against (nil
// when tel is nil or the frame was not classified) and the resolved
// egress port — which the dispatch accumulates for the batch-level
// ObserveBatch call.
//
// The caller must hold a pool pin (processBatch does) so the entry a
// lookup returns cannot be recycled while it is replayed.
//
//harmless:hotpath
func (s *Switch) classifyAndRun(key *pkt.Key, inPort uint32, frame []byte, tel *telemetry.Table, tx *txContext) (dataplane.Verdict, *telemetry.Record, uint32) {
	ch := s.cache
	if ch == nil {
		var trec *telemetry.Record
		if tel != nil {
			trec = tel.Lookup(key)
		}
		s.runPipelineKeyed(key, inPort, frame, 0, nil, tx)
		return dataplane.VerdictSlowPath, trec, 0
	}
	mf, exactHit, record := ch.lookup(key)
	if mf != nil {
		var trec *telemetry.Record
		if tel != nil {
			if exactHit {
				trec = mf.telRecord(tel, key)
			} else {
				// Wildcard-tier hit: the shared entry serves many flows,
				// so resolve this packet's record directly.
				trec = tel.Lookup(key)
			}
		}
		s.replayMicroflow(mf, inPort, frame, tx)
		return dataplane.VerdictCacheHit, trec, mf.outPort
	}
	if !record {
		// Adaptive bypass: the shard's hit rate collapsed, so skip both
		// the recording and the install — a pure slow-path walk.
		var trec *telemetry.Record
		if tel != nil {
			trec = tel.Lookup(key)
		}
		s.runPipelineKeyed(key, inPort, frame, 0, nil, tx)
		return dataplane.VerdictSlowPath, trec, 0
	}
	// Read the group revision before the walk so a group-mod racing
	// the recording leaves it stale-by-revision, like the table revs.
	groupRev := s.groups.Version()
	rec := ch.pool.acquire()
	s.runPipelineKeyed(key, inPort, frame, 0, rec, tx)
	rec.resolveOutPort()
	var trec *telemetry.Record
	if tel != nil {
		trec = tel.Lookup(key)
		rec.tel.Store(trec)
	}
	out := rec.outPort
	if rec.uncacheable {
		ch.pool.giveBack(rec)
	} else {
		if rec.usesGroups() {
			rec.groups = s.groups
			rec.groupRev = groupRev
		}
		if !ch.install(key, rec) {
			ch.pool.giveBack(rec)
		}
	}
	return dataplane.VerdictSlowPath, trec, out
}
