package softswitch

import (
	"io"
	"net"
	"sync"
	"time"

	"github.com/harmless-sdn/harmless/internal/controlplane"
	"github.com/harmless-sdn/harmless/internal/flowtable"
	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/openflow"
)

// Agent is the switch side of the OpenFlow control plane: it serves
// any number of concurrent controller channels through a
// controlplane.ChannelSet (HELLO/FEATURES handshake, echo keepalive,
// MASTER/SLAVE/EQUAL role arbitration), applies controller messages to
// the datapath, and fans asynchronous events (packet-in, flow-removed,
// port-status) out to the channels whose role and async masks accept
// them.
type Agent struct {
	sw       *Switch
	set      *controlplane.ChannelSet
	done     chan struct{}
	stopOnce sync.Once
}

// NewAgent creates the switch's control-plane agent without any
// controller attached; use Attach/Dial/Listen to add channels. A
// periodic flow-expiry sweep runs while the agent is up
// (sweepInterval <= 0 disables it; tests with manual clocks call
// SweepExpired directly).
func (s *Switch) NewAgent(cfg controlplane.Config, sweepInterval time.Duration) *Agent {
	a := &Agent{sw: s, done: make(chan struct{})}
	a.set = controlplane.NewChannelSet(a, cfg)
	s.agentMu.Lock()
	s.agent = a
	s.agentMu.Unlock()
	if sweepInterval > 0 {
		go a.sweeper(sweepInterval)
	}
	return a
}

// StartAgent connects the switch to a single controller over an
// established transport and serves the channel until the transport
// fails or Stop is called (the single-controller convenience around
// NewAgent + Attach).
func (s *Switch) StartAgent(rw io.ReadWriteCloser, sweepInterval time.Duration) *Agent {
	a := s.NewAgent(controlplane.Config{}, sweepInterval)
	a.Attach(rw)
	return a
}

// Attach serves a controller over an established transport (accepted
// TCP conn or net.Pipe end).
func (a *Agent) Attach(rw io.ReadWriteCloser) *controlplane.Channel {
	return a.set.Attach(rw)
}

// Dial keeps an active-connect channel towards a controller address,
// redialing with exponential backoff across controller restarts.
func (a *Agent) Dial(addr string) *controlplane.Channel {
	return a.set.Dial(addr)
}

// Listen accepts controller connections on l (passive mode).
func (a *Agent) Listen(l net.Listener) {
	a.set.Listen(l)
}

// Channels snapshots the live controller channels.
func (a *Agent) Channels() []*controlplane.Channel { return a.set.Channels() }

// ChannelSet exposes the underlying channel set (role queries,
// broadcast).
func (a *Agent) ChannelSet() *controlplane.ChannelSet { return a.set }

// Stop tears every controller channel down. Safe to call multiple
// times and from multiple goroutines.
func (a *Agent) Stop() {
	a.stopOnce.Do(func() {
		close(a.done)
		a.set.Close()
		a.sw.agentMu.Lock()
		if a.sw.agent == a {
			a.sw.agent = nil
		}
		a.sw.agentMu.Unlock()
	})
}

// Done is closed when the agent terminates.
func (a *Agent) Done() <-chan struct{} { return a.done }

// sweeper drives periodic flow expiry on the switch's clock: wall
// time normally, virtual time when the switch was built WithClock on a
// netem.Scheduler (the fleet simulator's idle aging).
func (a *Agent) sweeper(interval time.Duration) {
	t := netem.NewTicker(a.sw.clock, interval)
	defer t.Stop()
	for {
		select {
		case <-a.done:
			return
		case <-t.C:
			a.sw.SweepExpired()
		}
	}
}

// Features implements controlplane.Datapath.
func (a *Agent) Features() openflow.FeaturesReply {
	return openflow.FeaturesReply{
		DatapathID:   a.sw.dpid,
		NBuffers:     a.sw.buffers.size,
		NTables:      uint8(len(a.sw.tables)),
		Capabilities: openflow.CapFlowStats | openflow.CapTableStats | openflow.CapPortStats | openflow.CapGroupStats,
	}
}

// Handle implements controlplane.Datapath: it dispatches one
// controller message against the datapath. State-changing messages
// from a SLAVE controller are rejected with OFPBRC_IS_SLAVE, as the
// role model requires.
func (a *Agent) Handle(ch *controlplane.Channel, m openflow.Message) {
	switch m.(type) {
	case *openflow.FlowMod, *openflow.GroupMod, *openflow.MeterMod, *openflow.PacketOut:
		if ch.Role() == openflow.RoleSlave {
			ch.SendError(m, openflow.ErrTypeBadRequest, openflow.BadRequestIsSlave)
			return
		}
	}
	switch t := m.(type) {
	case *openflow.FlowMod:
		removed, err := a.sw.ApplyFlowMod(t)
		if err != nil {
			ch.SendError(m, openflow.ErrTypeFlowModFailed, flowModErrCode(err))
			return
		}
		for _, r := range removed {
			a.sendFlowRemoved(r)
		}
		// A flow-mod referencing a buffered packet releases it through
		// the new state.
		if t.BufferID != openflow.NoBuffer && t.Command == openflow.FlowAdd {
			if frame, ok := a.sw.buffers.take(t.BufferID); ok {
				if inPort := t.Match.Get(openflow.OXMInPort); inPort != nil {
					a.sw.Receive(uint32(inPort.Value[0])<<24|uint32(inPort.Value[1])<<16|
						uint32(inPort.Value[2])<<8|uint32(inPort.Value[3]), frame)
				}
			}
		}
	case *openflow.GroupMod:
		if err := a.sw.groups.Apply(t); err != nil {
			ch.SendError(m, openflow.ErrTypeGroupModFailed, 0)
		}
	case *openflow.MeterMod:
		if err := a.sw.meters.Apply(t); err != nil {
			ch.SendError(m, openflow.ErrTypeMeterModFailed, 0)
		}
	case *openflow.PacketOut:
		a.sw.InjectPacketOut(t)
	case *openflow.BarrierRequest:
		// The datapath applies messages synchronously, so a barrier
		// needs no draining.
		_ = ch.Reply(m, &openflow.BarrierReply{})
	case *openflow.MultipartRequest:
		a.handleMultipart(ch, t)
	}
}

func flowModErrCode(err error) uint16 {
	if err == flowtable.ErrTableFull {
		return openflow.FlowModFailedTableFull
	}
	return openflow.FlowModFailedUnknown
}

func (a *Agent) handleMultipart(ch *controlplane.Channel, req *openflow.MultipartRequest) {
	reply := &openflow.MultipartReply{MPType: req.MPType}
	switch req.MPType {
	case openflow.MultipartDesc:
		reply.Desc = &openflow.SwitchDesc{
			Manufacturer: "HARMLESS project",
			Hardware:     "emulated datapath",
			Software:     "softswitch/0.1 (ESwitch-style)",
			SerialNum:    a.sw.name,
			Datapath:     a.sw.name,
		}
	case openflow.MultipartFlow:
		tid := openflow.TableAll
		if req.Flow != nil {
			tid = req.Flow.TableID
		}
		reply.Flows = a.sw.FlowStats(tid)
	case openflow.MultipartPortStats:
		reply.Ports = a.sw.PortStats()
	case openflow.MultipartTable:
		reply.Tables = a.sw.TableStats()
	case openflow.MultipartPortDesc:
		reply.PortDescs = a.sw.PortDescs()
	default:
		ch.SendError(req, openflow.ErrTypeBadRequest, 0)
		return
	}
	_ = ch.Reply(req, reply)
}

// sendPacketIn fans a packet-in out to the channels whose role and
// masks accept its reason.
func (a *Agent) sendPacketIn(pi *openflow.PacketIn) {
	a.set.Broadcast(pi, pi.Reason)
}

func (a *Agent) sendFlowRemoved(r flowtable.Removed) {
	a.set.Broadcast(&openflow.FlowRemoved{
		Cookie:      r.Entry.Cookie,
		Priority:    r.Entry.Priority,
		Reason:      r.Reason,
		TableID:     r.TableID,
		DurationSec: uint32(r.Duration.Seconds()),
		IdleTimeout: r.Entry.IdleTimeout,
		HardTimeout: r.Entry.HardTimeout,
		PacketCount: r.Entry.Packets(),
		ByteCount:   r.Entry.Bytes(),
		Match:       r.Entry.Match.ToOXM(),
	}, r.Reason)
}

func (a *Agent) sendPortStatus(reason uint8, desc openflow.PortDesc) {
	a.set.Broadcast(&openflow.PortStatus{Reason: reason, Desc: desc}, reason)
}
