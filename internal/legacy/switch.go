package legacy

import (
	"fmt"
	"sync"
	"time"

	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/stats"
)

// Switch is the emulated legacy Ethernet switch dataplane: an 802.1Q
// IVL transparent bridge. Ports are attached to netem links; all
// configuration goes through the management API used by the CLI, the
// SNMP agent and the HARMLESS manager.
//
// Locking discipline: the configuration lock is held only while
// classifying and learning; it is released before any frame is
// transmitted so hairpinned frames can re-enter the switch on the same
// goroutine (see the netem package comment).
type Switch struct {
	mu    sync.Mutex
	cfg   *Config
	ports map[int]*netem.Port
	fdb   *FDB
	clock netem.Clock

	// per-port dataplane counters, separate from the netem link
	// counters so the SNMP ifTable can expose switch-side numbers
	counters map[int]*stats.PortCounters

	bootTime time.Time
	model    string
}

// Option configures a Switch at construction time.
type Option func(*Switch)

// WithClock injects a clock (tests use netem.ManualClock to exercise
// FDB aging deterministically).
func WithClock(c netem.Clock) Option { return func(s *Switch) { s.clock = c } }

// WithFDBAging overrides the MAC aging time.
func WithFDBAging(d time.Duration) Option {
	return func(s *Switch) { s.fdb = NewFDB(d, 0, s.clock) }
}

// WithModel sets the model string reported by the management planes.
func WithModel(m string) Option { return func(s *Switch) { s.model = m } }

// NewSwitch creates a legacy switch with n ports in factory-default
// configuration (all access, VLAN 1).
func NewSwitch(hostname string, n int, opts ...Option) *Switch {
	s := &Switch{
		cfg:      NewDefaultConfig(hostname, n),
		ports:    make(map[int]*netem.Port, n),
		counters: make(map[int]*stats.PortCounters, n),
		clock:    netem.RealClock{},
		model:    "LGS-2400 Series L2 Switch",
	}
	for _, o := range opts {
		o(s)
	}
	if s.fdb == nil {
		s.fdb = NewFDB(0, 0, s.clock)
	}
	s.bootTime = s.clock.Now()
	for i := 1; i <= n; i++ {
		s.counters[i] = &stats.PortCounters{}
	}
	return s
}

// AttachPort connects physical port number n (1-based) to one end of a
// netem link. It panics on an unknown port number — attaching is
// topology construction, not runtime input.
func (s *Switch) AttachPort(n int, p *netem.Port) {
	s.mu.Lock()
	if _, ok := s.cfg.Ports[n]; !ok {
		s.mu.Unlock()
		panic(fmt.Sprintf("legacy: switch %q has no port %d", s.cfg.Hostname, n))
	}
	s.ports[n] = p
	s.mu.Unlock()
	p.SetReceiver(func(frame []byte) { s.receive(n, frame) })
}

// receive implements the bridge forwarding process for a frame
// arriving on port in.
func (s *Switch) receive(in int, frame []byte) {
	if len(frame) < pkt.EthernetHeaderLen {
		s.mu.Lock()
		if c := s.counters[in]; c != nil {
			c.RxErrors.Inc()
		}
		s.mu.Unlock()
		return
	}

	s.mu.Lock()
	pc, ok := s.cfg.Ports[in]
	if !ok || pc.Shutdown {
		s.mu.Unlock()
		return
	}
	s.counters[in].RecordRx(len(frame))

	// Ingress classification.
	vid, tagged := pkt.VLANID(frame)
	var vlan uint16
	switch pc.Mode {
	case ModeAccess:
		if tagged {
			// Access ports accept a tagged frame only for their own
			// VLAN (common vendor behaviour); anything else is dropped.
			if vid != pc.PVID {
				s.counters[in].RxDropped.Inc()
				s.mu.Unlock()
				return
			}
			vlan = vid
		} else {
			vlan = pc.PVID
		}
	case ModeTrunk:
		if tagged {
			vlan = vid
		} else {
			vlan = pc.PVID // native VLAN
		}
		if !pc.allows(vlan) {
			s.counters[in].RxDropped.Inc()
			s.mu.Unlock()
			return
		}
	}

	// Learning.
	var src, dst pkt.MAC
	copy(dst[:], frame[0:6])
	copy(src[:], frame[6:12])
	s.fdb.Learn(vlan, src, in)

	// Forwarding decision: either a single known port or a flood set.
	var out []egressTarget
	if dst.IsUnicast() {
		if p, ok := s.fdb.Lookup(vlan, dst); ok {
			// Known address on the ingress port itself: filter (drop).
			if p != in {
				if epc, ok := s.cfg.Ports[p]; ok && !epc.Shutdown && epc.allows(vlan) {
					if np := s.ports[p]; np != nil {
						out = append(out, egressTarget{p, np, epc})
					}
				}
			}
		} else {
			out = s.floodSetLocked(in, vlan)
		}
	} else {
		out = s.floodSetLocked(in, vlan)
	}
	s.mu.Unlock()

	// Transmit outside the lock. Each egress gets its own copy only
	// when needed (retag); the last recipient can take ownership.
	for _, e := range out {
		txFrame := s.egressFrame(frame, vlan, e.pc)
		if txFrame == nil {
			continue
		}
		s.countTx(e.port, len(txFrame))
		_ = e.np.Send(txFrame)
	}
}

// egressTarget is one (port, link, config) tuple in a forwarding
// decision.
type egressTarget struct {
	port int
	np   *netem.Port
	pc   *PortConfig
}

// floodSetLocked computes the flood set for vlan excluding the ingress
// port. Caller holds s.mu.
func (s *Switch) floodSetLocked(in int, vlan uint16) []egressTarget {
	var out []egressTarget
	for p, epc := range s.cfg.Ports {
		if p == in || epc.Shutdown || !epc.allows(vlan) {
			continue
		}
		np := s.ports[p]
		if np == nil {
			continue
		}
		out = append(out, egressTarget{p, np, epc})
	}
	return out
}

// egressFrame produces the frame to transmit on a port with config pc
// for traffic in vlan: access ports and the trunk native VLAN send
// untagged, trunks send tagged. A fresh slice is returned whenever the
// frame must differ from the ingress frame.
func (s *Switch) egressFrame(frame []byte, vlan uint16, pc *PortConfig) []byte {
	_, tagged := pkt.VLANID(frame)
	wantTagged := pc.Mode == ModeTrunk && vlan != pc.PVID
	switch {
	case tagged && wantTagged:
		// Copy so parallel egress ports don't share mutable bytes.
		out := make([]byte, len(frame))
		copy(out, frame)
		if err := pkt.SetVLANID(out, vlan); err != nil {
			return nil
		}
		return out
	case tagged && !wantTagged:
		out, err := pkt.PopVLAN(frame)
		if err != nil {
			return nil
		}
		return out
	case !tagged && wantTagged:
		out, err := pkt.PushVLAN(frame, pkt.EtherTypeDot1Q, vlan)
		if err != nil {
			return nil
		}
		return out
	default:
		out := make([]byte, len(frame))
		copy(out, frame)
		return out
	}
}

func (s *Switch) countTx(port, n int) {
	s.mu.Lock()
	if c := s.counters[port]; c != nil {
		c.RecordTx(n)
	}
	s.mu.Unlock()
}

// --- Management API ------------------------------------------------

// Hostname returns the configured hostname.
func (s *Switch) Hostname() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.Hostname
}

// Model returns the model string.
func (s *Switch) Model() string { return s.model }

// Uptime returns time since boot.
func (s *Switch) Uptime() time.Duration {
	return s.clock.Now().Sub(s.bootTime)
}

// NumPorts returns the number of physical ports.
func (s *Switch) NumPorts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cfg.Ports)
}

// Config returns a deep copy of the running configuration.
func (s *Switch) Config() *Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.clone()
}

// SetHostname renames the switch.
func (s *Switch) SetHostname(h string) {
	s.mu.Lock()
	s.cfg.Hostname = h
	s.mu.Unlock()
}

// DeclareVLAN creates (or renames) a VLAN.
func (s *Switch) DeclareVLAN(id uint16, name string) error {
	if id < 1 || id > MaxVLAN {
		return fmt.Errorf("legacy: VLAN %d out of range", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if name == "" {
		name = fmt.Sprintf("VLAN%04d", id)
	}
	s.cfg.VLANs[id] = name
	return nil
}

// RemoveVLAN deletes a VLAN declaration and flushes its FDB entries.
func (s *Switch) RemoveVLAN(id uint16) {
	s.mu.Lock()
	delete(s.cfg.VLANs, id)
	s.mu.Unlock()
	s.fdb.FlushVLAN(id)
}

// SetPortAccess configures port n as an access port in vlan.
func (s *Switch) SetPortAccess(n int, vlan uint16) error {
	if vlan < 1 || vlan > MaxVLAN {
		return fmt.Errorf("legacy: VLAN %d out of range", vlan)
	}
	s.mu.Lock()
	pc, ok := s.cfg.Ports[n]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("legacy: no port %d", n)
	}
	pc.Mode = ModeAccess
	pc.PVID = vlan
	pc.Allowed = nil
	if _, declared := s.cfg.VLANs[vlan]; !declared {
		s.cfg.VLANs[vlan] = fmt.Sprintf("VLAN%04d", vlan)
	}
	s.mu.Unlock()
	s.fdb.FlushPort(n)
	return nil
}

// SetPortTrunk configures port n as a trunk carrying the listed VLANs
// (nil allowed = all) with the given native VLAN.
func (s *Switch) SetPortTrunk(n int, native uint16, allowed []uint16) error {
	if native < 1 || native > MaxVLAN {
		return fmt.Errorf("legacy: native VLAN %d out of range", native)
	}
	s.mu.Lock()
	pc, ok := s.cfg.Ports[n]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("legacy: no port %d", n)
	}
	pc.Mode = ModeTrunk
	pc.PVID = native
	if allowed == nil {
		pc.Allowed = nil
	} else {
		pc.Allowed = make(map[uint16]bool, len(allowed))
		for _, v := range allowed {
			if v < 1 || v > MaxVLAN {
				s.mu.Unlock()
				return fmt.Errorf("legacy: allowed VLAN %d out of range", v)
			}
			pc.Allowed[v] = true
		}
	}
	s.mu.Unlock()
	s.fdb.FlushPort(n)
	return nil
}

// SetPortShutdown administratively disables or enables a port.
func (s *Switch) SetPortShutdown(n int, down bool) error {
	s.mu.Lock()
	pc, ok := s.cfg.Ports[n]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("legacy: no port %d", n)
	}
	pc.Shutdown = down
	s.mu.Unlock()
	if down {
		s.fdb.FlushPort(n)
	}
	return nil
}

// PortCounters returns the dataplane counters of port n (nil if the
// port does not exist).
func (s *Switch) PortCounters(n int) *stats.PortCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[n]
}

// PortAttached reports whether a link is attached to port n.
func (s *Switch) PortAttached(n int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ports[n] != nil
}

// FDB exposes the forwarding database for the management planes.
func (s *Switch) FDB() *FDB { return s.fdb }
