package pkt

import (
	"encoding/binary"
	"fmt"
)

// IP protocol numbers.
const (
	IPProtoICMP uint8 = 1
	IPProtoTCP  uint8 = 6
	IPProtoUDP  uint8 = 17
)

// IPv4MinHeaderLen is the length of an IPv4 header without options.
const IPv4MinHeaderLen = 20

// IPv4Header is an IPv4 header. Options are preserved verbatim.
type IPv4Header struct {
	TOS        uint8
	TotalLen   uint16
	ID         uint16
	Flags      uint8 // 3 bits: reserved, DF, MF
	FragOffset uint16
	TTL        uint8
	Protocol   uint8
	Checksum   uint16
	Src        IPv4
	Dst        IPv4
	Options    []byte
	payload    []byte
}

// IPv4 flag bits.
const (
	IPv4DontFragment  uint8 = 0x2
	IPv4MoreFragments uint8 = 0x1
)

// LayerType implements Layer.
func (h *IPv4Header) LayerType() LayerType { return LayerTypeIPv4 }

// LayerPayload implements Layer.
func (h *IPv4Header) LayerPayload() []byte { return h.payload }

// NextLayerType implements Layer.
func (h *IPv4Header) NextLayerType() LayerType {
	// Fragments other than the first do not contain an L4 header.
	if h.FragOffset != 0 {
		return LayerTypePayload
	}
	switch h.Protocol {
	case IPProtoTCP:
		return LayerTypeTCP
	case IPProtoUDP:
		return LayerTypeUDP
	case IPProtoICMP:
		return LayerTypeICMPv4
	}
	return LayerTypePayload
}

// HeaderLen returns the header length in bytes including options.
func (h *IPv4Header) HeaderLen() int { return IPv4MinHeaderLen + len(h.Options) }

// DecodeFromBytes implements Layer.
func (h *IPv4Header) DecodeFromBytes(data []byte) error {
	if len(data) < IPv4MinHeaderLen {
		return errTruncated(LayerTypeIPv4)
	}
	vihl := data[0]
	if version := vihl >> 4; version != 4 {
		return &decodeError{layer: LayerTypeIPv4, msg: fmt.Sprintf("version %d", version)}
	}
	ihl := int(vihl&0x0f) * 4
	if ihl < IPv4MinHeaderLen || len(data) < ihl {
		return &decodeError{layer: LayerTypeIPv4, msg: "bad IHL"}
	}
	h.TOS = data[1]
	h.TotalLen = binary.BigEndian.Uint16(data[2:4])
	h.ID = binary.BigEndian.Uint16(data[4:6])
	flagsFrag := binary.BigEndian.Uint16(data[6:8])
	h.Flags = uint8(flagsFrag >> 13)
	h.FragOffset = flagsFrag & 0x1fff
	h.TTL = data[8]
	h.Protocol = data[9]
	h.Checksum = binary.BigEndian.Uint16(data[10:12])
	copy(h.Src[:], data[12:16])
	copy(h.Dst[:], data[16:20])
	h.Options = data[IPv4MinHeaderLen:ihl]
	end := int(h.TotalLen)
	if end < ihl || end > len(data) {
		// Tolerate trailers / padding: clamp payload to available bytes.
		end = len(data)
	}
	h.payload = data[ihl:end]
	return nil
}

// SerializeTo implements SerializableLayer. TotalLen and Checksum are
// computed; the bytes already in the buffer are the payload.
func (h *IPv4Header) SerializeTo(b *SerializeBuffer) error {
	optLen := len(h.Options)
	if optLen%4 != 0 {
		return fmt.Errorf("pkt: IPv4 options length %d not multiple of 4", optLen)
	}
	hl := IPv4MinHeaderLen + optLen
	payloadLen := b.Len()
	hdr := b.PrependBytes(hl)
	hdr[0] = 0x40 | uint8(hl/4)
	hdr[1] = h.TOS
	h.TotalLen = uint16(hl + payloadLen)
	binary.BigEndian.PutUint16(hdr[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(hdr[4:6], h.ID)
	binary.BigEndian.PutUint16(hdr[6:8], uint16(h.Flags)<<13|h.FragOffset&0x1fff)
	hdr[8] = h.TTL
	hdr[9] = h.Protocol
	hdr[10], hdr[11] = 0, 0
	copy(hdr[12:16], h.Src[:])
	copy(hdr[16:20], h.Dst[:])
	copy(hdr[20:], h.Options)
	h.Checksum = Checksum(hdr[:hl])
	binary.BigEndian.PutUint16(hdr[10:12], h.Checksum)
	return nil
}

// VerifyChecksum recomputes the header checksum over raw (which must be
// the full header bytes) and reports whether it is consistent.
func (h *IPv4Header) VerifyChecksum(raw []byte) bool {
	hl := h.HeaderLen()
	if len(raw) < hl {
		return false
	}
	return Checksum(raw[:hl]) == 0 // sum including stored checksum folds to 0
}

// String summarizes the header for diagnostics.
func (h *IPv4Header) String() string {
	return fmt.Sprintf("IPv4 %s > %s proto=%d ttl=%d len=%d", h.Src, h.Dst, h.Protocol, h.TTL, h.TotalLen)
}

// IPv6HeaderLen is the length of the fixed IPv6 header.
const IPv6HeaderLen = 40

// IPv6Header is the fixed IPv6 header. Extension headers are treated as
// payload; the HARMLESS dataplane forwards IPv6 on L2 fields only.
type IPv6Header struct {
	TrafficClass uint8
	FlowLabel    uint32
	PayloadLen   uint16
	NextHeader   uint8
	HopLimit     uint8
	Src          IPv6
	Dst          IPv6
	payload      []byte
}

// LayerType implements Layer.
func (h *IPv6Header) LayerType() LayerType { return LayerTypeIPv6 }

// LayerPayload implements Layer.
func (h *IPv6Header) LayerPayload() []byte { return h.payload }

// NextLayerType implements Layer.
func (h *IPv6Header) NextLayerType() LayerType {
	switch h.NextHeader {
	case IPProtoTCP:
		return LayerTypeTCP
	case IPProtoUDP:
		return LayerTypeUDP
	}
	return LayerTypePayload
}

// DecodeFromBytes implements Layer.
func (h *IPv6Header) DecodeFromBytes(data []byte) error {
	if len(data) < IPv6HeaderLen {
		return errTruncated(LayerTypeIPv6)
	}
	vtf := binary.BigEndian.Uint32(data[0:4])
	if version := vtf >> 28; version != 6 {
		return &decodeError{layer: LayerTypeIPv6, msg: fmt.Sprintf("version %d", version)}
	}
	h.TrafficClass = uint8(vtf >> 20)
	h.FlowLabel = vtf & 0xfffff
	h.PayloadLen = binary.BigEndian.Uint16(data[4:6])
	h.NextHeader = data[6]
	h.HopLimit = data[7]
	copy(h.Src[:], data[8:24])
	copy(h.Dst[:], data[24:40])
	end := IPv6HeaderLen + int(h.PayloadLen)
	if end > len(data) {
		end = len(data)
	}
	h.payload = data[IPv6HeaderLen:end]
	return nil
}

// SerializeTo implements SerializableLayer.
func (h *IPv6Header) SerializeTo(b *SerializeBuffer) error {
	payloadLen := b.Len()
	hdr := b.PrependBytes(IPv6HeaderLen)
	vtf := uint32(6)<<28 | uint32(h.TrafficClass)<<20 | h.FlowLabel&0xfffff
	binary.BigEndian.PutUint32(hdr[0:4], vtf)
	h.PayloadLen = uint16(payloadLen)
	binary.BigEndian.PutUint16(hdr[4:6], h.PayloadLen)
	hdr[6] = h.NextHeader
	hdr[7] = h.HopLimit
	copy(hdr[8:24], h.Src[:])
	copy(hdr[24:40], h.Dst[:])
	return nil
}

// String summarizes the header for diagnostics.
func (h *IPv6Header) String() string {
	return fmt.Sprintf("IPv6 %s > %s next=%d hlim=%d", h.Src, h.Dst, h.NextHeader, h.HopLimit)
}
