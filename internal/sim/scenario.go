package sim

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/harmless-sdn/harmless/internal/fabric"
)

// Duration wraps time.Duration with JSON unmarshalling from "50ms"
// strings (or raw nanosecond numbers), the form scenario files use.
type Duration struct {
	time.Duration
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch t := v.(type) {
	case string:
		dd, err := time.ParseDuration(t)
		if err != nil {
			return fmt.Errorf("sim: bad duration %q: %w", t, err)
		}
		d.Duration = dd
	case float64:
		d.Duration = time.Duration(t)
	default:
		return fmt.Errorf("sim: duration must be a string or number, got %T", v)
	}
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.Duration.String())
}

// TopologySpec selects and sizes a generated fabric.
type TopologySpec struct {
	Kind string `json:"kind"` // "fattree" or "leafspine"
	// fat-tree
	K int `json:"k,omitempty"`
	// leaf-spine
	Spines       int `json:"spines,omitempty"`
	Leaves       int `json:"leaves,omitempty"`
	HostsPerLeaf int `json:"hostsPerLeaf,omitempty"`
}

// Build generates the topology.
func (t TopologySpec) Build() (*fabric.Topology, error) {
	switch t.Kind {
	case "fattree":
		return fabric.FatTree(t.K)
	case "leafspine":
		return fabric.LeafSpine(t.Spines, t.Leaves, t.HostsPerLeaf)
	}
	return nil, fmt.Errorf("sim: unknown topology kind %q (want fattree or leafspine)", t.Kind)
}

// WorkloadSpec selects and parameterizes an arrival stream.
type WorkloadSpec struct {
	Kind        string  `json:"kind"` // poisson | diurnal | heavyhitter | incast
	Flows       int     `json:"flows,omitempty"`
	RatePerSec  float64 `json:"ratePerSec,omitempty"`
	MeanPackets int     `json:"meanPackets,omitempty"`
	// diurnal
	Amplitude float64  `json:"amplitude,omitempty"`
	Period    Duration `json:"period,omitempty"`
	// heavyhitter
	Elephants       int     `json:"elephants,omitempty"`
	Mice            int     `json:"mice,omitempty"`
	PacketShare     float64 `json:"packetShare,omitempty"`
	ElephantPackets int     `json:"elephantPackets,omitempty"`
	MousePackets    int     `json:"mousePackets,omitempty"`
	MouseLife       int     `json:"mouseLife,omitempty"`
	// incast
	Bursts      int      `json:"bursts,omitempty"`
	FanIn       int      `json:"fanIn,omitempty"`
	BurstSpread Duration `json:"burstSpread,omitempty"`
	Packets     int      `json:"packets,omitempty"`
}

// Build instantiates the workload over nHosts hosts with the run seed
// (offset so the workload stream is independent of the engine PRNG).
func (w WorkloadSpec) Build(nHosts int, seed int64) (fabric.Workload, error) {
	switch w.Kind {
	case "poisson":
		return fabric.NewPoissonWorkload(nHosts, w.Flows, w.RatePerSec, w.MeanPackets, seed+1)
	case "diurnal":
		return fabric.NewDiurnalWorkload(nHosts, w.Flows, w.RatePerSec, w.Amplitude,
			w.Period.Duration, w.MeanPackets, seed+1)
	case "heavyhitter":
		return fabric.NewHeavyHitterWorkload(nHosts, w.Flows, w.RatePerSec, w.Elephants,
			w.Mice, w.PacketShare, w.ElephantPackets, w.MousePackets, w.MouseLife, seed+1)
	case "incast":
		return fabric.NewIncastWorkload(nHosts, w.Bursts, w.FanIn, w.Period.Duration,
			w.BurstSpread.Duration, w.Packets, seed+1)
	}
	return nil, fmt.Errorf("sim: unknown workload kind %q", w.Kind)
}

// TotalArrivals returns how many arrivals the spec will emit.
func (w WorkloadSpec) TotalArrivals() int {
	if w.Kind == "incast" {
		return w.Bursts * w.FanIn
	}
	return w.Flows
}

// Fault kinds.
const (
	FaultLinkDown     = "linkDown"
	FaultLinkUp       = "linkUp"
	FaultSwitchDown   = "switchDown"
	FaultSwitchUp     = "switchUp"
	FaultCtrlFailover = "ctrlFailover"
)

// FaultSpec is one scheduled fault. Link faults name both endpoints;
// switch faults and controller failover name one node (ctrlFailover's
// Node is informational — the failover is fabric-wide).
type FaultSpec struct {
	At   Duration `json:"at"`
	Kind string   `json:"kind"`
	Node string   `json:"node,omitempty"`
	Peer string   `json:"peer,omitempty"`
}

// Scenario is one reproducible fleet-simulation run: a topology, a
// workload, a fault schedule and the knobs tying them to virtual time.
type Scenario struct {
	Name     string       `json:"name"`
	Seed     int64        `json:"seed"`
	Mode     string       `json:"mode,omitempty"` // "flow" (default) or "packet"
	Topology TopologySpec `json:"topology"`
	Workload WorkloadSpec `json:"workload"`
	Faults   []FaultSpec  `json:"faults,omitempty"`
	// LinkLatency is the per-hop propagation delay (flow mode charges
	// it per path hop; packet mode configures it on every netem link).
	LinkLatency Duration `json:"linkLatency,omitempty"`
	// Reconvergence is how long after a fault the fabric needs before
	// flows are steered around it; primary-path flows hitting the
	// faulted element before then are lost (and attributed to the
	// fault's convergence record).
	Reconvergence Duration `json:"reconvergence,omitempty"`
	// Horizon stops the run at this virtual offset (0 = drain).
	Horizon Duration `json:"horizon,omitempty"`
}

// withDefaults fills unset knobs.
func (s Scenario) withDefaults() Scenario {
	if s.Mode == "" {
		s.Mode = "flow"
	}
	if s.LinkLatency.Duration == 0 {
		s.LinkLatency.Duration = 10 * time.Microsecond
	}
	if s.Reconvergence.Duration == 0 {
		s.Reconvergence.Duration = 50 * time.Millisecond
	}
	return s
}

// Validate rejects malformed scenarios before any simulation state is
// built, resolving fault targets against the generated topology.
func (s Scenario) Validate() error {
	if s.Mode != "" && s.Mode != "flow" && s.Mode != "packet" {
		return fmt.Errorf("sim: mode %q (want flow or packet)", s.Mode)
	}
	topo, err := s.Topology.Build()
	if err != nil {
		return err
	}
	if _, err := s.Workload.Build(len(topo.HostIDs), s.Seed); err != nil {
		return err
	}
	for i, f := range s.Faults {
		switch f.Kind {
		case FaultLinkDown, FaultLinkUp:
			a, ok := topo.NodeByName(f.Node)
			if !ok {
				return fmt.Errorf("sim: fault %d names unknown node %q", i, f.Node)
			}
			b, ok := topo.NodeByName(f.Peer)
			if !ok {
				return fmt.Errorf("sim: fault %d names unknown peer %q", i, f.Peer)
			}
			if topo.LinkBetween(a, b) < 0 {
				return fmt.Errorf("sim: fault %d: no link %s <-> %s", i, f.Node, f.Peer)
			}
		case FaultSwitchDown, FaultSwitchUp:
			if _, ok := topo.NodeByName(f.Node); !ok {
				return fmt.Errorf("sim: fault %d names unknown node %q", i, f.Node)
			}
		case FaultCtrlFailover:
			// fabric-wide; nothing to resolve
		default:
			return fmt.Errorf("sim: fault %d has unknown kind %q", i, f.Kind)
		}
		if f.At.Duration < 0 {
			return fmt.Errorf("sim: fault %d scheduled at negative offset %v", i, f.At.Duration)
		}
	}
	return nil
}

// ParseScenario decodes and validates a scenario document.
func ParseScenario(data []byte) (Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return Scenario{}, fmt.Errorf("sim: scenario parse: %w", err)
	}
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// LoadScenario reads a scenario file.
func LoadScenario(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	return ParseScenario(data)
}
