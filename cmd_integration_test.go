package harmless_test

// Binary-level integration tests: build the real cmd/ executables and
// drive them the way an operator would.

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildBinaries compiles all cmd/ executables once per test run.
func buildBinaries(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("binary integration test")
	}
	dir := t.TempDir()
	for _, name := range []string{"harmlessd", "ofctl", "costcalc", "trafficgen", "flowtop", "migrate"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, b)
		}
	}
	return dir
}

func TestBinaryHarmlessdOneshot(t *testing.T) {
	bin := buildBinaries(t)
	cmd := exec.Command(filepath.Join(bin, "harmlessd"), "-ports", "4", "-oneshot")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("harmlessd -oneshot: %v\n%s", err, out)
	}
	for _, want := range []string{"demo PASSED", "h1 -> h2: ok", "migrated"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBinaryCostcalc(t *testing.T) {
	bin := buildBinaries(t)
	out, err := exec.Command(filepath.Join(bin, "costcalc"), "-ports", "48").CombinedOutput()
	if err != nil {
		t.Fatalf("costcalc: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "harmless") || !strings.Contains(string(out), "break-even") {
		t.Errorf("costcalc output:\n%s", out)
	}
}

// TestBinaryMigrate drives the campaign engine end to end the way the
// CI smoke job does: plan, then run the example campaign twice and
// require identical digests and a passing verdict.
func TestBinaryMigrate(t *testing.T) {
	bin := buildBinaries(t)
	mig := filepath.Join(bin, "migrate")

	plan, err := exec.Command(mig, "-spec", "examples/migrate/campaign.json", "-plan").CombinedOutput()
	if err != nil {
		t.Fatalf("migrate -plan: %v\n%s", err, plan)
	}
	for _, want := range []string{"3 waves", "cum-spend", "crossover vs rip-and-replace: never"} {
		if !strings.Contains(string(plan), want) {
			t.Errorf("plan output missing %q:\n%s", want, plan)
		}
	}

	runOnce := func() string {
		out, err := exec.Command(mig,
			"-spec", "examples/migrate/campaign.json", "-wall-budget", "55s").CombinedOutput()
		if err != nil {
			t.Fatalf("migrate: %v\n%s", err, out)
		}
		return string(out)
	}
	a, b := runOnce(), runOnce()
	digest := func(s string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "\"digest\"") {
				return strings.TrimSpace(line)
			}
		}
		return ""
	}
	da, db := digest(a), digest(b)
	if da == "" || da != db {
		t.Errorf("digests diverge or missing:\n  run1 %s\n  run2 %s", da, db)
	}
	for _, want := range []string{`"pass": true`, `"rolledBackWaves": 1`, `"lostDatagrams": 0`, `"costConform": true`} {
		if !strings.Contains(a, want) {
			t.Errorf("report missing %q:\n%s", want, a)
		}
	}
}

// TestBinaryCostcalcCampaign prices the example campaign through the
// same planner cmd/migrate executes.
func TestBinaryCostcalcCampaign(t *testing.T) {
	bin := buildBinaries(t)
	out, err := exec.Command(filepath.Join(bin, "costcalc"),
		"-campaign", "examples/migrate/campaign.json").CombinedOutput()
	if err != nil {
		t.Fatalf("costcalc -campaign: %v\n%s", err, out)
	}
	for _, want := range []string{"three-rack-pilot", "cum-rip&repl", "crossover"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("campaign table missing %q:\n%s", want, out)
		}
	}
}

// TestBinaryOfctlAgainstHarmlessd pairs the two daemons over real TCP:
// ofctl listens as a controller, harmlessd connects SS_2 to it, and
// ofctl dumps the switch description.
func TestBinaryOfctlAgainstHarmlessd(t *testing.T) {
	bin := buildBinaries(t)
	port := freeTCPPort(t)
	addr := fmt.Sprintf("127.0.0.1:%d", port)

	ofctl := exec.Command(filepath.Join(bin, "ofctl"), "-listen", addr, "-timeout", "20s", "show")
	var ofctlOut bytes.Buffer
	ofctl.Stdout = &ofctlOut
	ofctl.Stderr = &ofctlOut
	if err := ofctl.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ofctl.Wait() }()

	// Give ofctl a moment to bind, then point harmlessd at it.
	waitForListen(t, addr)
	hd := exec.Command(filepath.Join(bin, "harmlessd"),
		"-ports", "4", "-controller", addr, "-stats", "0")
	var hdOut bytes.Buffer
	hd.Stdout = &hdOut
	hd.Stderr = &hdOut
	if err := hd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = hd.Process.Kill()
		_, _ = hd.Process.Wait()
	}()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ofctl: %v\nofctl output:\n%s\nharmlessd output:\n%s",
				err, ofctlOut.String(), hdOut.String())
		}
	case <-time.After(30 * time.Second):
		_ = ofctl.Process.Kill()
		t.Fatalf("ofctl timed out\nofctl output:\n%s\nharmlessd output:\n%s",
			ofctlOut.String(), hdOut.String())
	}
	out := ofctlOut.String()
	if !strings.Contains(out, "dpid=") || !strings.Contains(out, "port 1") {
		t.Errorf("ofctl show output:\n%s", out)
	}
}

func freeTCPPort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

func waitForListen(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("nothing listening on %s", addr)
}

// TestBinaryTelemetryPipeline pairs the export and collection halves
// of the telemetry plane over real UDP: flowtop listens as the IPFIX
// collector, harmlessd runs the oneshot demo exporting flow records
// to it, and flowtop's rendered top-talkers must account the demo's
// traffic.
func TestBinaryTelemetryPipeline(t *testing.T) {
	bin := buildBinaries(t)
	l, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.LocalAddr().String()
	l.Close() // flowtop takes the port over

	ft := exec.Command(filepath.Join(bin, "flowtop"),
		"-listen", addr, "-interval", "500ms", "-count", "6", "-top", "5")
	var ftOut bytes.Buffer
	ft.Stdout = &ftOut
	ft.Stderr = &ftOut
	if err := ft.Start(); err != nil {
		t.Fatal(err)
	}
	ftDone := make(chan error, 1)
	go func() { ftDone <- ft.Wait() }()

	hd := exec.Command(filepath.Join(bin, "harmlessd"),
		"-ports", "4", "-oneshot", "-workers", "2",
		"-telemetry-export", addr, "-sample-rate", "4")
	hdOut, err := hd.CombinedOutput()
	if err != nil {
		t.Fatalf("harmlessd: %v\n%s", err, hdOut)
	}
	if !strings.Contains(string(hdOut), "exporting flow records") {
		t.Fatalf("harmlessd did not announce the exporter:\n%s", hdOut)
	}

	select {
	case err := <-ftDone:
		if err != nil {
			t.Fatalf("flowtop: %v\n%s", err, ftOut.String())
		}
	case <-time.After(30 * time.Second):
		_ = ft.Process.Kill()
		t.Fatalf("flowtop timed out\n%s", ftOut.String())
	}
	out := ftOut.String()
	// The demo's ARP bursts cross SS_1; the collector must have seen
	// real records and nonzero totals.
	if !strings.Contains(out, "0x0806") {
		t.Errorf("flowtop saw no ARP flows:\n%s", out)
	}
	if strings.Contains(out, "total 0 pkts") || !strings.Contains(out, "records=") {
		t.Errorf("flowtop totals missing:\n%s", out)
	}
}

// TestBinaryHarmlessdHTTPEndpoints checks the live /flows and /stats
// observability endpoints of a running daemon.
func TestBinaryHarmlessdHTTPEndpoints(t *testing.T) {
	bin := buildBinaries(t)
	port := freeTCPPort(t)
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	hd := exec.Command(filepath.Join(bin, "harmlessd"),
		"-ports", "4", "-stats", "0", "-http", addr)
	var hdOut bytes.Buffer
	hd.Stdout = &hdOut
	hd.Stderr = &hdOut
	if err := hd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = hd.Process.Kill()
		_, _ = hd.Process.Wait()
	}()
	waitForListen(t, addr)

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v\nharmlessd:\n%s", path, err, hdOut.String())
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d\n%s", path, resp.StatusCode, b)
		}
		return string(b)
	}
	stats := get("/stats")
	for _, want := range []string{"telemetry", "flows_created", "aggregator", "ss1_cache"} {
		if !strings.Contains(stats, want) {
			t.Errorf("/stats missing %q:\n%s", want, stats)
		}
	}
	flows := get("/flows?n=5")
	for _, want := range []string{"\"flows\"", "\"shown\""} {
		if !strings.Contains(flows, want) {
			t.Errorf("/flows missing %q:\n%s", want, flows)
		}
	}
}

// TestBinaryTrafficgenMix runs the telemetry exercise mode briefly and
// checks the exactness verdict it self-reports.
func TestBinaryTrafficgenMix(t *testing.T) {
	bin := buildBinaries(t)
	out, err := exec.Command(filepath.Join(bin, "trafficgen"),
		"-flows", "64", "-duration", "400ms", "-workers", "2", "-sample-rate", "16").CombinedOutput()
	if err != nil {
		t.Fatalf("trafficgen -flows: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"top talkers", "EXACT", "churned="} {
		if !strings.Contains(s, want) {
			t.Errorf("mix output missing %q:\n%s", want, s)
		}
	}
}
