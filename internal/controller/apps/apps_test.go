package apps

import (
	"testing"

	"github.com/harmless-sdn/harmless/internal/pkt"
)

// End-to-end behaviour of these apps is covered by the controller and
// root experiment suites; this file unit-tests the pure policy logic.

func TestDMZNormalizePair(t *testing.T) {
	a, b := pkt.MustIPv4("10.0.0.1"), pkt.MustIPv4("10.0.0.2")
	if normalizePair(a, b) != normalizePair(b, a) {
		t.Error("pair not order-independent")
	}
	d := &DMZ{}
	d.Permit(b, a)
	if !d.Permitted(a, b) {
		t.Error("permit not symmetric")
	}
	d.Revoke(a, b)
	if d.Permitted(b, a) {
		t.Error("revoke not symmetric")
	}
}

func TestParentalControlSuffixMatch(t *testing.T) {
	user := pkt.MustIPv4("10.0.0.1")
	other := pkt.MustIPv4("10.0.0.2")
	pc := &ParentalControl{}
	pc.BlockDomain(user, "Videos.Example")

	cases := []struct {
		who  pkt.IPv4
		name string
		want bool
	}{
		{user, "videos.example", true},
		{user, "VIDEOS.EXAMPLE", true},
		{user, "www.videos.example", true},
		{user, "deep.cdn.videos.example", true},
		{user, "notvideos.example", false}, // suffix must be label-aligned
		{user, "videos.example.evil", false},
		{user, "other.example", false},
		{other, "videos.example", false}, // per-user policy
	}
	for _, c := range cases {
		if got := pc.isBlocked(c.who, c.name); got != c.want {
			t.Errorf("isBlocked(%s, %q) = %v, want %v", c.who, c.name, got, c.want)
		}
	}
	pc.UnblockDomain(user, "videos.example")
	if pc.isBlocked(user, "videos.example") {
		t.Error("unblock ignored")
	}
}

func TestLoadBalancerPartitioningPredicate(t *testing.T) {
	mk := func(n int) *LoadBalancer {
		lb := &LoadBalancer{}
		for i := 0; i < n; i++ {
			lb.Backends = append(lb.Backends, Backend{Port: uint32(i + 1)})
		}
		return lb
	}
	cases := map[int]bool{0: false, 1: true, 2: true, 3: false, 4: true, 6: false, 8: true}
	for n, want := range cases {
		if got := mk(n).usesSourcePartitioning(); got != want {
			t.Errorf("n=%d: %v, want %v", n, got, want)
		}
	}
}

func TestBackendName(t *testing.T) {
	b := Backend{IP: pkt.MustIPv4("10.0.0.5"), Port: 3}
	if BackendName(b) != "10.0.0.5:3" {
		t.Errorf("BackendName = %q", BackendName(b))
	}
}

func TestLearningLookupEmpty(t *testing.T) {
	l := &Learning{}
	if _, ok := l.Lookup(1, pkt.MustMAC("02:00:00:00:00:01")); ok {
		t.Error("lookup on empty app succeeded")
	}
	if len(l.MACTable(1)) != 0 {
		t.Error("non-empty table")
	}
	if l.Name() == "" || (&DMZ{}).Name() == "" || (&ParentalControl{}).Name() == "" || (&LoadBalancer{}).Name() == "" {
		t.Error("empty app names")
	}
}
