// Package migrate is the hybrid-SDN migration campaign engine: the
// layer that sequences the paper's actual story — a fleet of installed
// legacy switches transitioning to HARMLESS-S4, switch by switch,
// under a capital budget, with continuous traffic and a rollback path
// for waves that go wrong.
//
// It composes the repo's existing subsystems instead of reimplementing
// them:
//
//   - the planner orders migration waves under a per-wave budget and
//     prices every wave through internal/cost (Das et al.'s
//     budget-constrained framing: highest-demand switches first);
//   - the executor runs each wave against a live mixed fabric —
//     harmless.Manager drives the emulated vendor CLIs (internal/
//     legacy + internal/mgmt), SS_1/SS_2 pairs attach to real
//     controlplane channels, and hosts exchange real frames on netem
//     links — all on internal/sim virtual time;
//   - the verifier injects faults mid-wave (server death, trunk flap,
//     controller loss with PR 5 failover), checks the zero-traffic-
//     loss and cost-conformance invariants after every wave, and rolls
//     failed waves back to their pre-wave legacy configuration.
//
// A campaign is reproducible: one seed, one goroutine event loop, and
// a report whose digest is byte-identical across runs and machines.
package migrate

import (
	"fmt"
	"sort"
	"strings"

	"github.com/harmless-sdn/harmless/internal/cost"
)

// SwitchSpec is one legacy switch in the fabric inventory.
type SwitchSpec struct {
	// Name identifies the device (unique within a campaign).
	Name string `json:"name"`
	// Ports is the physical port count; the highest-numbered port
	// becomes the HARMLESS trunk, the rest are access ports.
	Ports int `json:"ports"`
	// Demand is the switch's relative traffic demand. The planner
	// migrates high-demand switches first (they profit most from SDN
	// control); ties keep inventory order.
	Demand float64 `json:"demand,omitempty"`
}

// AccessPorts is the number of ports that migrate (one port is
// consumed as the trunk).
func (s SwitchSpec) AccessPorts() int { return s.Ports - 1 }

// Wave is one planned migration step: the switches that flip to
// HARMLESS-S4 together, priced against the cost model.
type Wave struct {
	// Index is 1-based.
	Index int `json:"index"`
	// Switches migrating in this wave, in planned execution order.
	Switches []SwitchSpec `json:"switches"`
	// Ports is the access ports migrated by this wave.
	Ports int `json:"ports"`
	// Cost is this wave's spend (one commodity server per switch,
	// legacy gear sunk), straight from cost.Catalog.WaveCost.
	Cost cost.Breakdown `json:"cost"`
	// CumulativePorts and CumulativeSpend accumulate through this wave.
	CumulativePorts int     `json:"cumulativePorts"`
	CumulativeSpend float64 `json:"cumulativeSpend"`
	// BaselineRipAndReplace / BaselinePureSoftware price serving the
	// same cumulative ports with the two comparison strategies.
	BaselineRipAndReplace float64 `json:"baselineRipAndReplace"`
	BaselinePureSoftware  float64 `json:"baselinePureSoftware"`
}

// Names lists the wave's switch names.
func (w Wave) Names() []string {
	out := make([]string, len(w.Switches))
	for i, s := range w.Switches {
		out[i] = s.Name
	}
	return out
}

// Plan is a full campaign plan.
type Plan struct {
	Catalog    cost.Catalog `json:"catalog"`
	WaveBudget float64      `json:"waveBudget"`
	Waves      []Wave       `json:"waves"`
	// TotalPorts / TotalSpend cover the whole campaign.
	TotalPorts int     `json:"totalPorts"`
	TotalSpend float64 `json:"totalSpend"`
	// FinalRipAndReplace / FinalPureSoftware price the whole fabric
	// under the comparison strategies.
	FinalRipAndReplace float64 `json:"finalRipAndReplace"`
	FinalPureSoftware  float64 `json:"finalPureSoftware"`
	// CrossoverWave is the first wave whose cumulative HARMLESS spend
	// exceeds the rip-and-replace baseline for the same cumulative
	// ports — the point where incremental migration stops being the
	// cheaper path (0 = never crosses; with 2017 street prices it
	// never does, which is the paper's headline).
	CrossoverWave int `json:"crossoverWave"`
}

// PlanCampaign orders the inventory into migration waves under the
// per-wave budget: switches sort by descending demand (stable, so ties
// keep inventory order), and each wave takes as many switches as the
// budget buys servers for. Every wave is priced with
// cost.Catalog.WaveCost, so the executor can later hold the campaign
// to the cost model exactly.
func PlanCampaign(switches []SwitchSpec, catalog cost.Catalog, waveBudget float64) (*Plan, error) {
	if len(switches) == 0 {
		return nil, fmt.Errorf("migrate: empty inventory")
	}
	seen := make(map[string]bool, len(switches))
	for _, s := range switches {
		if s.Name == "" {
			return nil, fmt.Errorf("migrate: switch with empty name")
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("migrate: duplicate switch name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Ports < 2 {
			return nil, fmt.Errorf("migrate: switch %s has %d ports, need at least 2 (one is the trunk)", s.Name, s.Ports)
		}
	}
	if catalog.ServerPrice <= 0 {
		return nil, fmt.Errorf("migrate: catalog server price must be positive")
	}
	perWave := int(waveBudget / catalog.ServerPrice)
	if perWave < 1 {
		return nil, fmt.Errorf("migrate: wave budget $%.0f does not buy one $%.0f server", waveBudget, catalog.ServerPrice)
	}

	ordered := make([]SwitchSpec, len(switches))
	copy(ordered, switches)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Demand > ordered[j].Demand })

	p := &Plan{Catalog: catalog, WaveBudget: waveBudget}
	for start := 0; start < len(ordered); start += perWave {
		end := start + perWave
		if end > len(ordered) {
			end = len(ordered)
		}
		w := Wave{Index: len(p.Waves) + 1, Switches: ordered[start:end]}
		for _, s := range w.Switches {
			w.Ports += s.AccessPorts()
		}
		b, err := catalog.WaveCost(len(w.Switches), w.Ports)
		if err != nil {
			return nil, fmt.Errorf("migrate: pricing wave %d: %w", w.Index, err)
		}
		w.Cost = b
		p.TotalPorts += w.Ports
		p.TotalSpend += b.Total
		w.CumulativePorts = p.TotalPorts
		w.CumulativeSpend = p.TotalSpend

		rr, err := catalog.Cost(cost.RipAndReplace, w.CumulativePorts, false)
		if err != nil {
			return nil, err
		}
		ps, err := catalog.Cost(cost.PureSoftware, w.CumulativePorts, false)
		if err != nil {
			return nil, err
		}
		w.BaselineRipAndReplace = rr.Total
		w.BaselinePureSoftware = ps.Total
		if p.CrossoverWave == 0 && w.CumulativeSpend > w.BaselineRipAndReplace {
			p.CrossoverWave = w.Index
		}
		p.Waves = append(p.Waves, w)
	}
	last := p.Waves[len(p.Waves)-1]
	p.FinalRipAndReplace = last.BaselineRipAndReplace
	p.FinalPureSoftware = last.BaselinePureSoftware
	return p, nil
}

// FormatCampaignTable renders the per-wave cumulative-spend table
// (shared by `costcalc -campaign` and `migrate -plan`).
func FormatCampaignTable(p *Plan) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-5s %-24s %-6s %-11s %-11s %-13s %-13s %-9s\n",
		"wave", "switches", "ports", "wave-cost", "cum-spend", "cum-rip&repl", "cum-puresoft", "$/port")
	for _, w := range p.Waves {
		names := strings.Join(w.Names(), ",")
		if len(names) > 24 {
			names = names[:21] + "..."
		}
		fmt.Fprintf(&sb, "%-5d %-24s %-6d $%-10.0f $%-10.0f $%-12.0f $%-12.0f $%-8.2f\n",
			w.Index, names, w.Ports, w.Cost.Total, w.CumulativeSpend,
			w.BaselineRipAndReplace, w.BaselinePureSoftware,
			w.CumulativeSpend/float64(w.CumulativePorts))
	}
	if p.CrossoverWave == 0 {
		fmt.Fprintf(&sb, "\ncrossover vs rip-and-replace: never (HARMLESS stays cheaper through wave %d: $%.0f vs $%.0f)\n",
			len(p.Waves), p.TotalSpend, p.FinalRipAndReplace)
	} else {
		fmt.Fprintf(&sb, "\ncrossover vs rip-and-replace: wave %d (cumulative HARMLESS spend exceeds the COTS baseline there)\n",
			p.CrossoverWave)
	}
	return sb.String()
}
