// Package hotpath is the hotpathalloc fixture: annotated functions
// must have every allocating construct diagnosed or excused, and
// unannotated functions are left alone.
package hotpath

func sink(any)        {}
func take(p *int) any { return p }

//harmless:hotpath
func hot() any {
	m := map[int]int{} // want "map literal allocates"
	_ = m
	s := []int{1}       // want "slice literal allocates"
	s = append(s, 2)    // want "append may allocate on growth"
	_ = new(int)        // want "new allocates"
	_ = make([]byte, 8) // want "make allocates"
	p := &point{x: 1}   // want "&composite literal allocates"
	_ = p
	b := []byte("conv") // want "conversion between string and byte/rune slice allocates"
	_ = string(b)       // want "conversion between string and byte/rune slice allocates"
	f := func() {}      // want "function literal allocates"
	go f()              // want "go statement allocates a goroutine"
	sink(42)            // want "argument boxed into interface"
	sink(s)             // want "argument boxed into interface"
	var out any
	out = point{} // want "value boxed into interface"
	_ = out
	return point{x: 2} // want "value boxed into interface"
}

//harmless:hotpath
func hotClean(p *point, buf []byte) int {
	// None of this allocates: pointer-shaped values into interfaces,
	// stack struct values, builtin clear/copy/len, arithmetic.
	sink(p)
	sink(nil)
	var local point
	local.x = len(buf)
	clear(buf)
	n := copy(buf, buf)
	return local.x + n
}

//harmless:hotpath
func hotExcused() *point {
	// The install path of a cache miss is cold; the hatch documents it.
	return &point{x: 3} //harmless:allow-alloc install path runs once per new flow, not per packet
}

//harmless:hotpath
func hotBadHatch() {
	_ = make([]int, 1) //harmless:allow-alloc // want "needs a reason"
	//harmless:allow-alloc nothing allocates on the next line // want "unused //harmless:allow-alloc"
	_ = len("x")
}

func cold() map[int]int {
	// Unannotated: allocate freely.
	return map[int]int{1: 1}
}

type point struct{ x int }
