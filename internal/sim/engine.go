// Package sim is the deterministic fleet-scale simulation engine: a
// discrete-event loop over netem's virtual-time ManualClock, a seeded
// PRNG, and scenario machinery (topology, workload, fault schedule)
// that drives the rest of the stack on virtual time. Two execution
// modes share the scenario format: flow mode walks generated fabrics
// analytically and scales to thousands of switches and millions of
// flow arrivals; packet mode instantiates real softswitch datapaths on
// virtual netem links for small-topology cross-checks. Everything runs
// on one goroutine from one seed, so a run's verdict digest is
// byte-reproducible across machines, -race, and GOMAXPROCS settings.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/harmless-sdn/harmless/internal/netem"
)

// Engine couples the deterministic scheduler with the run's seeded
// randomness. All simulation events — workload arrivals, link
// deliveries, fault injections, timer-driven sweeps — are ManualClock
// callbacks; Run drains them in virtual-time order.
type Engine struct {
	clock *netem.ManualClock
	rng   *rand.Rand
	seed  int64
	start time.Time
}

// NewEngine builds an engine seeded for reproducibility.
func NewEngine(seed int64) *Engine {
	c := netem.NewManualClock()
	return &Engine{
		clock: c,
		rng:   rand.New(rand.NewSource(seed)),
		seed:  seed,
		start: c.Now(),
	}
}

// Clock exposes the engine's scheduler for injection into netem links,
// softswitch instances, telemetry aggregators and control channels.
func (e *Engine) Clock() *netem.ManualClock { return e.clock }

// Rand is the run's single PRNG stream. Deterministic use requires all
// draws to happen on the event loop goroutine in event order.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Seed returns the run seed.
func (e *Engine) Seed() int64 { return e.seed }

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.clock.Now() }

// Elapsed returns virtual time since the engine started.
func (e *Engine) Elapsed() time.Duration { return e.clock.Now().Sub(e.start) }

// After schedules f at Now()+d on the virtual timeline.
func (e *Engine) After(d time.Duration, f func()) (cancel func() bool) {
	return e.clock.AfterFunc(d, f)
}

// At schedules f at absolute virtual offset d from run start. Offsets
// already in the past fire on the next step.
func (e *Engine) At(d time.Duration, f func()) (cancel func() bool) {
	return e.clock.AfterFunc(e.start.Add(d).Sub(e.clock.Now()), f)
}

// RunOpts bounds a Run.
type RunOpts struct {
	// Until stops the run once virtual time reaches this offset from
	// run start (0 = run until the event queue drains).
	Until time.Duration
	// WallBudget aborts the run if it burns more than this much real
	// time (0 = unbounded). Checked between events, so one pathological
	// callback can overshoot.
	WallBudget time.Duration
	// MaxEvents aborts the run after this many fired events (0 =
	// unbounded) — a runaway guard for self-rescheduling loops.
	MaxEvents uint64
}

// RunStats reports how a Run ended.
type RunStats struct {
	Events     uint64        // callbacks fired by this Run
	VirtualEnd time.Duration // virtual offset from run start at exit
	Wall       time.Duration // real time burned
	Drained    bool          // event queue empty at exit
}

// ErrWallBudget reports a Run aborted for exceeding RunOpts.WallBudget.
var ErrWallBudget = errors.New("sim: wall-clock budget exceeded")

// ErrMaxEvents reports a Run aborted for exceeding RunOpts.MaxEvents.
var ErrMaxEvents = errors.New("sim: event budget exceeded")

// Run executes the event loop: step to the next timer deadline, fire
// everything due there, repeat. Returns when the queue drains, the
// Until horizon is reached, or a budget trips.
func (e *Engine) Run(opts RunOpts) (RunStats, error) {
	wallStart := time.Now() //harmless:allow-wallclock wall budget and run-report timing, not simulation time
	fired0 := e.clock.Fired()
	var horizon time.Time
	if opts.Until > 0 {
		horizon = e.start.Add(opts.Until)
	}
	step := 0
	for {
		next, ok := e.clock.NextTimer()
		if !ok {
			st := e.stats(fired0, wallStart)
			st.Drained = true
			return st, nil
		}
		if opts.Until > 0 && next.After(horizon) {
			e.clock.AdvanceTo(horizon)
			return e.stats(fired0, wallStart), nil
		}
		e.clock.AdvanceTo(next)
		if opts.MaxEvents > 0 && e.clock.Fired()-fired0 >= opts.MaxEvents {
			return e.stats(fired0, wallStart), fmt.Errorf("%w (%d events)", ErrMaxEvents, opts.MaxEvents)
		}
		if step++; step&0xff == 0 && opts.WallBudget > 0 && time.Since(wallStart) > opts.WallBudget { //harmless:allow-wallclock wall budget check
			return e.stats(fired0, wallStart), fmt.Errorf("%w (%v)", ErrWallBudget, opts.WallBudget)
		}
	}
}

func (e *Engine) stats(fired0 uint64, wallStart time.Time) RunStats {
	return RunStats{
		Events:     e.clock.Fired() - fired0,
		VirtualEnd: e.Elapsed(),
		Wall:       time.Since(wallStart), //harmless:allow-wallclock run-report wall duration
	}
}
