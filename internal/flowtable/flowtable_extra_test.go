package flowtable

import (
	"strings"
	"testing"
	"time"

	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

func TestMeterKbpsMode(t *testing.T) {
	clk := netem.NewManualClock()
	mt := NewMeterTable(clk)
	// 8 kbit/s with 8 kbit burst: one 1000-byte packet per second.
	err := mt.Apply(&openflow.MeterMod{
		Command: openflow.MeterAdd, Flags: openflow.MeterFlagKbps, MeterID: 2,
		Bands: []openflow.MeterBand{{Type: openflow.MeterBandDrop, Rate: 8, BurstSize: 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !mt.Pass(2, 1000) {
		t.Error("first 1000B packet should pass (full bucket)")
	}
	if mt.Pass(2, 1000) {
		t.Error("second immediate packet should drop")
	}
	clk.Advance(time.Second)
	if !mt.Pass(2, 1000) {
		t.Error("after 1s refill the packet should pass")
	}
}

func TestMatchStringAllFields(t *testing.T) {
	m := &Match{
		InPortSet: true, InPort: 3,
		EthDstSet: true, EthDst: hostB, EthDstMask: onesMAC,
		EthSrcSet: true, EthSrc: hostA, EthSrcMask: onesMAC,
		EthTypeSet: true, EthType: 0x800,
		VLAN: VLANExact, VLANVID: 42,
		IPProtoSet: true, IPProto: 6,
		IPSrcSet: true, IPSrc: ipA, IPSrcMask: onesIPv4,
		IPDstSet: true, IPDst: ipB, IPDstMask: onesIPv4,
		L4SrcSet: true, L4Src: 1000,
		L4DstSet: true, L4Dst: 80,
		ARPOpSet: true, ARPOp: 1,
	}
	s := m.String()
	for _, want := range []string{"in_port=3", "eth_dst=", "vlan=42", "nw_src=", "tp_dst=80", "arp_op=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q: %s", want, s)
		}
	}
	absent := &Match{VLAN: VLANAbsent}
	if !strings.Contains(absent.String(), "vlan=none") {
		t.Errorf("absent: %s", absent.String())
	}
}

func TestToOXMMaskedAndUDP(t *testing.T) {
	m := &Match{
		EthDstSet: true, EthDst: hostB, EthDstMask: pkt.MAC{0xff, 0xff, 0, 0, 0, 0},
		IPProtoSet: true, IPProto: pkt.IPProtoUDP,
		IPSrcSet: true, IPSrc: ipA, IPSrcMask: pkt.MustIPv4("255.0.0.0"),
		IPDstSet: true, IPDst: ipB, IPDstMask: pkt.MustIPv4("255.255.0.0"),
		L4SrcSet: true, L4Src: 53,
		L4DstSet: true, L4Dst: 53,
		ICMPTypeSet: true, ICMPType: 8,
		ARPSPASet: true, ARPSPA: ipA, ARPSPAMask: onesIPv4,
		ARPTPASet: true, ARPTPA: ipB, ARPTPAMask: onesIPv4,
		ARPOpSet: true, ARPOp: 2,
		VLANPCPSet: true, VLANPCP: 5,
	}
	wire := m.ToOXM()
	// UDP proto must produce udp_src/udp_dst TLVs.
	if wire.Get(openflow.OXMUDPSrc) == nil || wire.Get(openflow.OXMUDPDst) == nil {
		t.Error("UDP ports not encoded as UDP OXMs")
	}
	if o := wire.Get(openflow.OXMEthDst); o == nil || !o.HasMask {
		t.Error("masked eth_dst lost its mask")
	}
	back, err := FromOXM(&wire)
	if err != nil {
		t.Fatal(err)
	}
	if !back.EthDstSet || back.EthDstMask != m.EthDstMask {
		t.Errorf("mask round trip: %+v", back)
	}
	if back.IPSrcMask != m.IPSrcMask || back.IPDstMask != m.IPDstMask {
		t.Error("ip masks lost")
	}
}

func TestFromOXMRejectsUnknownField(t *testing.T) {
	wire := openflow.Match{OXMs: []openflow.OXM{{Field: 77, Value: []byte{1}}}}
	if _, err := FromOXM(&wire); err == nil {
		t.Error("unknown OXM accepted")
	}
}

func TestSpecializeICMPAndARPTemplates(t *testing.T) {
	tbl := NewTable(0, nil)
	_ = tbl.Add(&Entry{Priority: 50, Match: &Match{
		EthTypeSet: true, EthType: pkt.EtherTypeIPv4,
		IPProtoSet: true, IPProto: pkt.IPProtoICMP,
		ICMPTypeSet: true, ICMPType: 8,
	}, Instructions: outputTo(1)})
	_ = tbl.Add(&Entry{Priority: 40, Match: &Match{
		EthTypeSet: true, EthType: pkt.EtherTypeARP,
		ARPOpSet: true, ARPOp: 1,
	}, Instructions: outputTo(2)})
	fp, ok := Compile(tbl)
	if !ok {
		t.Fatal("icmp/arp table must compile")
	}
	icmpK := &pkt.Key{EthType: pkt.EtherTypeIPv4, HasIPv4: true, IPProto: pkt.IPProtoICMP, HasICMP: true, ICMPType: 8}
	if e := fp.Lookup(icmpK); e == nil || e.Priority != 50 {
		t.Errorf("icmp lookup: %v", e)
	}
	arpK := &pkt.Key{EthType: pkt.EtherTypeARP, HasARP: true, ARPOp: 1}
	if e := fp.Lookup(arpK); e == nil || e.Priority != 40 {
		t.Errorf("arp lookup: %v", e)
	}
	// A UDP packet misses both templates.
	if e := fp.Lookup(udpKey(1, hostA, hostB, ipA, ipB, 1, 2)); e != nil {
		t.Errorf("udp should miss, got %v", e)
	}
}

func TestSpecializeRejectsRareFields(t *testing.T) {
	tbl := NewTable(0, nil)
	_ = tbl.Add(&Entry{Priority: 1, Match: &Match{VLANPCPSet: true, VLANPCP: 3}})
	if _, ok := Compile(tbl); ok {
		t.Error("PCP-matching table compiled")
	}
}

func TestGroupCounters(t *testing.T) {
	g := &Group{ID: 1, Type: openflow.GroupTypeAll, Buckets: []openflow.Bucket{{}}}
	g.Hit(100)
	g.Hit(50)
	if g.Packets() != 2 {
		t.Errorf("packets: %d", g.Packets())
	}
}

func TestEntryString(t *testing.T) {
	e := &Entry{Priority: 9, Match: &Match{InPortSet: true, InPort: 1}}
	if e.String() == "" {
		t.Error("empty entry string")
	}
}

func TestValidatePrerequisites(t *testing.T) {
	cases := []struct {
		name string
		m    Match
		ok   bool
	}{
		{"empty", Match{}, true},
		{"l2 only", Match{EthDstSet: true, EthDst: hostB, EthDstMask: onesMAC}, true},
		{"ip without ethtype", Match{IPDstSet: true, IPDst: ipB, IPDstMask: onesIPv4}, false},
		{"ip with ethtype", Match{EthTypeSet: true, EthType: pkt.EtherTypeIPv4, IPDstSet: true, IPDst: ipB, IPDstMask: onesIPv4}, true},
		{"proto without ethtype", Match{IPProtoSet: true, IPProto: 6}, false},
		{"proto with ipv6", Match{EthTypeSet: true, EthType: pkt.EtherTypeIPv6, IPProtoSet: true, IPProto: 6}, true},
		{"l4 without proto", Match{EthTypeSet: true, EthType: pkt.EtherTypeIPv4, L4DstSet: true, L4Dst: 80}, false},
		{"l4 with icmp proto", Match{EthTypeSet: true, EthType: pkt.EtherTypeIPv4, IPProtoSet: true, IPProto: 1, L4DstSet: true}, false},
		{"icmp without proto", Match{EthTypeSet: true, EthType: pkt.EtherTypeIPv4, ICMPTypeSet: true}, false},
		{"icmp with proto", Match{EthTypeSet: true, EthType: pkt.EtherTypeIPv4, IPProtoSet: true, IPProto: 1, ICMPTypeSet: true}, true},
		{"arp without ethtype", Match{ARPOpSet: true, ARPOp: 1}, false},
		{"arp with ethtype", Match{EthTypeSet: true, EthType: pkt.EtherTypeARP, ARPOpSet: true, ARPOp: 1}, true},
		{"pcp without vid", Match{VLANPCPSet: true, VLANPCP: 3}, false},
		{"pcp with vid", Match{VLAN: VLANExact, VLANVID: 5, VLANPCPSet: true, VLANPCP: 3}, true},
	}
	for _, c := range cases {
		err := c.m.ValidatePrerequisites()
		if (err == nil) != c.ok {
			t.Errorf("%s: err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}
