package pkt

import (
	"bytes"
	"testing"
	"testing/quick"
)

var (
	testSrcMAC = MustMAC("02:00:00:00:00:01")
	testDstMAC = MustMAC("02:00:00:00:00:02")
	testSrcIP  = MustIPv4("10.0.0.1")
	testDstIP  = MustIPv4("10.0.0.2")
)

// buildUDPFrame builds a complete Ethernet/IPv4/UDP frame for use
// throughout the package tests.
func buildUDPFrame(t testing.TB, payload []byte) []byte {
	t.Helper()
	frame, err := Serialize(
		&Ethernet{Src: testSrcMAC, Dst: testDstMAC, EtherType: EtherTypeIPv4},
		&IPv4Header{TTL: 64, Protocol: IPProtoUDP, Src: testSrcIP, Dst: testDstIP},
		&UDP{SrcPort: 1234, DstPort: 5678},
		(*Payload)(&payload),
	)
	if err != nil {
		t.Fatalf("Serialize: %v", err)
	}
	return frame
}

func TestEthernetRoundTrip(t *testing.T) {
	e := &Ethernet{Src: testSrcMAC, Dst: testDstMAC, EtherType: EtherTypeARP}
	raw, err := Serialize(e)
	if err != nil {
		t.Fatal(err)
	}
	var got Ethernet
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got.Src != e.Src || got.Dst != e.Dst || got.EtherType != e.EtherType {
		t.Errorf("round trip mismatch: got %+v want %+v", got, e)
	}
}

func TestEthernetTruncated(t *testing.T) {
	var e Ethernet
	if err := e.DecodeFromBytes(make([]byte, 13)); err == nil {
		t.Error("expected truncation error for 13-byte frame")
	}
}

func TestDot1QRoundTrip(t *testing.T) {
	f := func(vid uint16, pcp uint8, dei bool) bool {
		vid &= 0x0fff
		pcp &= 0x7
		d := &Dot1Q{VLANID: vid, Priority: pcp, DropEligible: dei, EtherType: EtherTypeIPv4}
		raw, err := Serialize(d)
		if err != nil {
			return false
		}
		var got Dot1Q
		if err := got.DecodeFromBytes(raw); err != nil {
			return false
		}
		return got.VLANID == vid && got.Priority == pcp && got.DropEligible == dei && got.EtherType == EtherTypeIPv4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDot1QRejectsOversizeVID(t *testing.T) {
	d := &Dot1Q{VLANID: 5000}
	if _, err := Serialize(d); err == nil {
		t.Error("expected error for 13-bit VLAN id")
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := &ARP{
		Op:       ARPRequest,
		SenderHW: testSrcMAC,
		SenderIP: testSrcIP,
		TargetHW: ZeroMAC,
		TargetIP: testDstIP,
	}
	raw, err := Serialize(a)
	if err != nil {
		t.Fatal(err)
	}
	var got ARP
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got.Op != a.Op || got.SenderHW != a.SenderHW || got.SenderIP != a.SenderIP ||
		got.TargetHW != a.TargetHW || got.TargetIP != a.TargetIP {
		t.Errorf("round trip mismatch: got %+v want %+v", got, a)
	}
	if got.HWType != 1 || got.ProtoType != 0x0800 {
		t.Errorf("wrong HW/proto types: %d/%#x", got.HWType, got.ProtoType)
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	payload := Payload(bytes.Repeat([]byte{0xab}, 100))
	ip := &IPv4Header{
		TOS: 0x10, ID: 4242, Flags: IPv4DontFragment, TTL: 63,
		Protocol: IPProtoUDP, Src: testSrcIP, Dst: testDstIP,
	}
	raw, err := Serialize(ip, &payload)
	if err != nil {
		t.Fatal(err)
	}
	var got IPv4Header
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got.Src != ip.Src || got.Dst != ip.Dst || got.TTL != 63 || got.Protocol != IPProtoUDP ||
		got.TOS != 0x10 || got.ID != 4242 || got.Flags != IPv4DontFragment {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got.TotalLen != uint16(IPv4MinHeaderLen+100) {
		t.Errorf("TotalLen = %d, want %d", got.TotalLen, IPv4MinHeaderLen+100)
	}
	if !got.VerifyChecksum(raw) {
		t.Error("checksum does not verify")
	}
	// Corrupt a byte: checksum must fail.
	raw[15] ^= 0xff
	var bad IPv4Header
	if err := bad.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if bad.VerifyChecksum(raw) {
		t.Error("checksum verified after corruption")
	}
}

func TestIPv4BadVersion(t *testing.T) {
	raw := make([]byte, IPv4MinHeaderLen)
	raw[0] = 0x65 // version 6
	var h IPv4Header
	if err := h.DecodeFromBytes(raw); err == nil {
		t.Error("expected version error")
	}
}

func TestIPv4Fragments(t *testing.T) {
	payload := Payload([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	ip := &IPv4Header{TTL: 64, Protocol: IPProtoUDP, Src: testSrcIP, Dst: testDstIP, FragOffset: 100, Flags: IPv4MoreFragments}
	raw, err := Serialize(ip, &payload)
	if err != nil {
		t.Fatal(err)
	}
	var got IPv4Header
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got.FragOffset != 100 || got.Flags != IPv4MoreFragments {
		t.Errorf("frag fields: off=%d flags=%d", got.FragOffset, got.Flags)
	}
	if got.NextLayerType() != LayerTypePayload {
		t.Error("non-first fragment must not decode an L4 layer")
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	payload := Payload([]byte("hello"))
	ip6 := &IPv6Header{TrafficClass: 7, FlowLabel: 0xbeef, NextHeader: IPProtoUDP, HopLimit: 63,
		Src: IPv6{0xfe, 0x80, 15: 1}, Dst: IPv6{0xfe, 0x80, 15: 2}}
	raw, err := Serialize(ip6, &payload)
	if err != nil {
		t.Fatal(err)
	}
	var got IPv6Header
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got.Src != ip6.Src || got.Dst != ip6.Dst || got.NextHeader != IPProtoUDP ||
		got.HopLimit != 63 || got.TrafficClass != 7 || got.FlowLabel != 0xbeef {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got.PayloadLen != 5 {
		t.Errorf("PayloadLen = %d, want 5", got.PayloadLen)
	}
}

func TestUDPRoundTripWithChecksum(t *testing.T) {
	frame := buildUDPFrame(t, []byte("ping"))
	p := DecodeEthernet(frame)
	if p.Err() != nil {
		t.Fatalf("decode: %v", p.Err())
	}
	u := p.UDP()
	if u == nil {
		t.Fatal("no UDP layer")
	}
	if u.SrcPort != 1234 || u.DstPort != 5678 {
		t.Errorf("ports %d/%d", u.SrcPort, u.DstPort)
	}
	if u.Length != UDPHeaderLen+4 {
		t.Errorf("Length = %d", u.Length)
	}
	if u.Checksum == 0 {
		t.Error("expected computed UDP checksum")
	}
	// Verify the checksum is actually valid per RFC 768.
	ip := p.IPv4()
	seg := append([]byte{}, ip.LayerPayload()...)
	if got := L4Checksum(ip.Src, ip.Dst, IPProtoUDP, seg); got != 0 {
		t.Errorf("UDP checksum verification failed: residual %#x", got)
	}
	if string(p.ApplicationPayload()) != "ping" {
		t.Errorf("payload %q", p.ApplicationPayload())
	}
}

func TestTCPRoundTripWithChecksum(t *testing.T) {
	payload := Payload([]byte("GET / HTTP/1.0\r\n\r\n"))
	frame, err := Serialize(
		&Ethernet{Src: testSrcMAC, Dst: testDstMAC, EtherType: EtherTypeIPv4},
		&IPv4Header{TTL: 64, Protocol: IPProtoTCP, Src: testSrcIP, Dst: testDstIP},
		&TCP{SrcPort: 40000, DstPort: 80, Seq: 1000, Ack: 2000, Flags: TCPPsh | TCPAck, Window: 65535},
		&payload,
	)
	if err != nil {
		t.Fatal(err)
	}
	p := DecodeEthernet(frame)
	tcp := p.TCP()
	if tcp == nil {
		t.Fatalf("no TCP layer in %s", p)
	}
	if tcp.SrcPort != 40000 || tcp.DstPort != 80 || tcp.Seq != 1000 || tcp.Ack != 2000 {
		t.Errorf("fields: %+v", tcp)
	}
	if tcp.Flags != TCPPsh|TCPAck {
		t.Errorf("flags %s", tcp.FlagString())
	}
	ip := p.IPv4()
	if got := L4Checksum(ip.Src, ip.Dst, IPProtoTCP, ip.LayerPayload()); got != 0 {
		t.Errorf("TCP checksum verification failed: residual %#x", got)
	}
}

func TestTCPFlagString(t *testing.T) {
	tcp := &TCP{Flags: TCPSyn | TCPAck}
	if got := tcp.FlagString(); got != "SYN|ACK" {
		t.Errorf("FlagString = %q", got)
	}
	if got := (&TCP{}).FlagString(); got != "none" {
		t.Errorf("FlagString = %q", got)
	}
}

func TestICMPv4RoundTrip(t *testing.T) {
	data := Payload([]byte("abcdefgh"))
	icmp := &ICMPv4{Type: ICMPv4EchoRequest}
	icmp.SetEcho(77, 3)
	frame, err := Serialize(
		&Ethernet{Src: testSrcMAC, Dst: testDstMAC, EtherType: EtherTypeIPv4},
		&IPv4Header{TTL: 64, Protocol: IPProtoICMP, Src: testSrcIP, Dst: testDstIP},
		icmp, &data,
	)
	if err != nil {
		t.Fatal(err)
	}
	p := DecodeEthernet(frame)
	got := p.ICMPv4()
	if got == nil {
		t.Fatalf("no ICMP layer in %s", p)
	}
	if got.Type != ICMPv4EchoRequest || got.ID() != 77 || got.Seq() != 3 {
		t.Errorf("fields: type=%d id=%d seq=%d", got.Type, got.ID(), got.Seq())
	}
	// ICMP checksum covers header+payload; verify residual is zero.
	ip := p.IPv4()
	if Checksum(ip.LayerPayload()) != 0 {
		t.Error("ICMP checksum verification failed")
	}
}

func TestVLANTaggedIPv4Decode(t *testing.T) {
	payload := Payload([]byte("x"))
	frame, err := Serialize(
		&Ethernet{Src: testSrcMAC, Dst: testDstMAC, EtherType: EtherTypeDot1Q},
		&Dot1Q{VLANID: 101, Priority: 5, EtherType: EtherTypeIPv4},
		&IPv4Header{TTL: 64, Protocol: IPProtoUDP, Src: testSrcIP, Dst: testDstIP},
		&UDP{SrcPort: 1, DstPort: 2},
		&payload,
	)
	if err != nil {
		t.Fatal(err)
	}
	p := DecodeEthernet(frame)
	if p.Err() != nil {
		t.Fatalf("decode: %v", p.Err())
	}
	v := p.VLAN()
	if v == nil || v.VLANID != 101 || v.Priority != 5 {
		t.Fatalf("VLAN layer: %+v", v)
	}
	if p.IPv4() == nil || p.UDP() == nil {
		t.Fatalf("inner layers missing: %s", p)
	}
}

func TestQinQDecode(t *testing.T) {
	payload := Payload([]byte("y"))
	frame, err := Serialize(
		&Ethernet{Src: testSrcMAC, Dst: testDstMAC, EtherType: EtherTypeQinQ},
		&Dot1Q{VLANID: 200, EtherType: EtherTypeDot1Q},
		&Dot1Q{VLANID: 101, EtherType: EtherTypeIPv4},
		&IPv4Header{TTL: 64, Protocol: IPProtoUDP, Src: testSrcIP, Dst: testDstIP},
		&UDP{SrcPort: 1, DstPort: 2},
		&payload,
	)
	if err != nil {
		t.Fatal(err)
	}
	p := DecodeEthernet(frame)
	var vlans []*Dot1Q
	for _, l := range p.Layers() {
		if d, ok := l.(*Dot1Q); ok {
			vlans = append(vlans, d)
		}
	}
	if len(vlans) != 2 || vlans[0].VLANID != 200 || vlans[1].VLANID != 101 {
		t.Fatalf("QinQ stack wrong: %s", p)
	}
}

func TestPacketString(t *testing.T) {
	frame := buildUDPFrame(t, []byte("z"))
	s := DecodeEthernet(frame).String()
	for _, want := range []string{"Ethernet", "IPv4", "UDP"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	// Random short garbage must not panic and must set Err or produce
	// payload-only packets.
	f := func(data []byte) bool {
		p := DecodeEthernet(data)
		_ = p.String()
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSerializeBufferGrowth(t *testing.T) {
	b := NewSerializeBufferSize(4) // deliberately tiny: must grow
	payload := Payload(bytes.Repeat([]byte{1}, 300))
	frame, err := SerializeLayers(b,
		&Ethernet{Src: testSrcMAC, Dst: testDstMAC, EtherType: EtherTypeIPv4},
		&IPv4Header{TTL: 1, Protocol: IPProtoUDP, Src: testSrcIP, Dst: testDstIP},
		&UDP{SrcPort: 9, DstPort: 10},
		&payload,
	)
	if err != nil {
		t.Fatal(err)
	}
	want := EthernetHeaderLen + IPv4MinHeaderLen + UDPHeaderLen + 300
	if len(frame) != want {
		t.Errorf("len = %d, want %d", len(frame), want)
	}
	p := DecodeEthernet(frame)
	if p.Err() != nil || p.UDP() == nil {
		t.Fatalf("grown buffer produced bad frame: %s", p)
	}
}

func TestSerializeBufferReuse(t *testing.T) {
	b := NewSerializeBuffer()
	for i := 0; i < 3; i++ {
		pl := Payload([]byte{byte(i)})
		frame, err := SerializeLayers(b,
			&Ethernet{Src: testSrcMAC, Dst: testDstMAC, EtherType: EtherTypeIPv4},
			&IPv4Header{TTL: 64, Protocol: IPProtoUDP, Src: testSrcIP, Dst: testDstIP},
			&UDP{SrcPort: 5, DstPort: 6},
			&pl,
		)
		if err != nil {
			t.Fatal(err)
		}
		p := DecodeEthernet(frame)
		if got := p.ApplicationPayload(); len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("iteration %d: payload %v", i, got)
		}
	}
}

func TestChecksumProperties(t *testing.T) {
	// The Internet checksum of data with its checksum appended must
	// fold to zero.
	f := func(data []byte) bool {
		if len(data)%2 != 0 {
			data = append(data, 0)
		}
		c := Checksum(data)
		full := append(append([]byte{}, data...), byte(c>>8), byte(c))
		return Checksum(full) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIncrementalChecksumMatchesRecompute(t *testing.T) {
	// RFC 1624 incremental update must agree with full recomputation.
	f := func(base [32]byte, old, new uint16) bool {
		data := append([]byte{}, base[:]...)
		data[0], data[1] = byte(old>>8), byte(old)
		// Compute full checksum with field = old, store at end.
		cs := Checksum(data)
		csBytes := []byte{byte(cs >> 8), byte(cs)}
		// Swap field and update incrementally.
		data[0], data[1] = byte(new>>8), byte(new)
		updateChecksum16(csBytes, old, new)
		want := Checksum(data)
		got := uint16(csBytes[0])<<8 | uint16(csBytes[1])
		// One's-complement arithmetic has two representations of zero
		// (0x0000 and 0xffff); both verify identically on the wire.
		if got == want {
			return true
		}
		return (got == 0x0000 || got == 0xffff) && (want == 0x0000 || want == 0xffff)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
