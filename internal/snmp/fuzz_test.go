package snmp

import "testing"

// FuzzUnmarshal hardens the BER decoder against arbitrary datagrams.
func FuzzUnmarshal(f *testing.F) {
	seed, _ := (&Message{Community: "public", Type: PDUGetRequest, RequestID: 1,
		VarBinds: []VarBind{{OID: MustOID("1.3.6.1.2.1.1.1.0"), Value: Null{}}}}).Marshal()
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil || m == nil {
			return
		}
		// Round-trip whatever decoded.
		if _, err := m.Marshal(); err != nil {
			t.Fatalf("decoded message failed to marshal: %v", err)
		}
	})
}
