// Package frameown enforces the dataplane frame-ownership rule.
//
// A dataplane.Batch is a borrowed view: its Frames slices belong to
// the producer (a ring slot, a netem delivery buffer, a pooled
// vector) and are valid only until the receiver returns its verdict —
// after that the producer recycles the backing arrays. Anything that
// needs frame bytes beyond the call (captures, telemetry samples,
// queued work) must copy them; retaining the slice itself aliases
// memory that is about to be rewritten, which corrupts silently and
// only under load.
//
// The analyzer tracks, within each function, every value derived from
// a Batch's Frames — b.Frames itself, b.Frames[i], subslices, range
// variables, and locals assigned from any of those — and reports when
// one escapes the call: stored into a struct field, a package-level
// variable, or an element of either, or sent on a channel. Explicit
// copies (append(nil, f...), and anything routed through a copying
// call — the tracking deliberately does not flow through calls) are
// fine; a deliberate hand-off is excused with
// //harmless:allow-retain <reason>.
package frameown

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/harmless-sdn/harmless/internal/analysis"
)

// Analyzer is the frameown pass.
var Analyzer = &analysis.Analyzer{
	Name: "frameown",
	Doc:  "flags dataplane.Batch frame slices retained past the dispatch call",
	Run:  run,
}

const hatch = "allow-retain"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkFunc(pass, fn)
			}
		}
	}
	pass.ReportUnused(hatch)
	return nil
}

// checkFunc walks one function in source order, growing the set of
// locals known to alias batch frames and reporting escapes.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	tracked := make(map[types.Object]bool)

	isFrameDerived := func(e ast.Expr) bool { return frameDerived(pass, tracked, e) }

	report := func(n ast.Node, what string) {
		if pass.Suppressed(n.Pos(), hatch) {
			return
		}
		pass.Reportf(n.Pos(),
			"frame ownership: %s retains a dataplane.Batch frame without copying; the producer recycles it after the verdict (copy the bytes or add //harmless:allow-retain <reason>)",
			what)
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			if x.Value != nil && framesSource(pass, x.X) {
				if obj := definedObj(pass, x.Value); obj != nil {
					tracked[obj] = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if i >= len(x.Lhs) {
					break
				}
				derived := isFrameDerived(rhs) || appendRetains(pass, tracked, rhs)
				if !derived {
					continue
				}
				lhs := ast.Unparen(x.Lhs[i])
				if id, ok := lhs.(*ast.Ident); ok {
					if id.Name == "_" {
						continue
					}
					if obj := definedObj(pass, id); obj != nil && isLocal(pass, fn, obj) {
						tracked[obj] = true // local alias: fine until it escapes
						continue
					}
					report(rhs, "assignment to package-level variable")
					continue
				}
				if target := escapeTarget(pass, lhs); target != "" {
					report(rhs, "assignment to "+target)
				}
			}
		case *ast.SendStmt:
			if isFrameDerived(x.Value) || appendRetains(pass, tracked, x.Value) {
				report(x.Value, "channel send")
			}
		}
		return true
	})
}

// framesSource reports whether e reads the Frames field of a
// dataplane.Batch (directly or through a pointer).
func framesSource(pass *analysis.Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Frames" {
		return false
	}
	t := typeOf(pass, sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Batch" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/dataplane")
}

// frameDerived reports whether e aliases batch frame memory: the
// Frames field, an index or subslice of a derived value, a tracked
// local, or a composite literal carrying one of those.
func frameDerived(pass *analysis.Pass, tracked map[types.Object]bool, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return tracked[pass.TypesInfo.Uses[x]]
	case *ast.SelectorExpr:
		return framesSource(pass, x)
	case *ast.IndexExpr:
		return frameDerived(pass, tracked, x.X)
	case *ast.SliceExpr:
		return frameDerived(pass, tracked, x.X)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if frameDerived(pass, tracked, elt) {
				return true
			}
		}
	case *ast.UnaryExpr:
		return frameDerived(pass, tracked, x.X)
	}
	return false
}

// appendRetains reports whether e is an append call that places a
// frame slice (not its bytes) into the result: append(dst, frame) is a
// retain, append(dst, frame...) copies the bytes and is fine.
func appendRetains(pass *analysis.Pass, tracked map[types.Object]bool, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	if call.Ellipsis.IsValid() {
		return false // append(dst, frame...) copies the bytes out
	}
	for _, arg := range call.Args[1:] {
		if frameDerived(pass, tracked, arg) {
			return true
		}
	}
	// append(frames, x): growing a tracked vector still aliases it.
	return frameDerived(pass, tracked, call.Args[0])
}

// escapeTarget classifies an assignment destination that outlives the
// call: a struct field, a package-level variable, or an element
// reached through either. Locals (including pointer derefs of local
// pointers) return "".
func escapeTarget(pass *analysis.Pass, lhs ast.Expr) string {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if s, ok := pass.TypesInfo.Selections[x]; ok && s.Kind() == types.FieldVal {
			return "struct field " + s.Obj().Name()
		}
		// Qualified package ident: pkg.Var.
		if _, ok := pass.TypesInfo.Uses[x.Sel].(*types.Var); ok {
			return "package-level variable " + x.Sel.Name
		}
	case *ast.IndexExpr:
		if inner := escapeTarget(pass, x.X); inner != "" {
			return "element of " + inner
		}
		// Indexing a package-level slice/map through a plain ident.
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && isPackageLevel(v) {
				return "element of package-level variable " + id.Name
			}
		}
	}
	return ""
}

// definedObj resolves an identifier to its object, whether this
// statement defines or uses it.
func definedObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// isLocal reports whether obj is declared inside fn (as opposed to a
// package-level variable).
func isLocal(pass *analysis.Pass, fn *ast.FuncDecl, obj types.Object) bool {
	return obj.Pos() >= fn.Pos() && obj.Pos() <= fn.End()
}

// isPackageLevel reports whether v is a package-scoped variable.
func isPackageLevel(v *types.Var) bool {
	return v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// typeOf returns the static type of expr, or nil.
func typeOf(pass *analysis.Pass, expr ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[expr]; ok {
		return tv.Type
	}
	return nil
}
