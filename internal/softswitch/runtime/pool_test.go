package runtime_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/harmless-sdn/harmless/internal/dataplane"
	"github.com/harmless-sdn/harmless/internal/fabric"
	"github.com/harmless-sdn/harmless/internal/openflow"
	"github.com/harmless-sdn/harmless/internal/pkt"
	"github.com/harmless-sdn/harmless/internal/softswitch"
	ssruntime "github.com/harmless-sdn/harmless/internal/softswitch/runtime"
)

// scaled shrinks a stress iteration count under -short so the race
// matrix in CI stays fast.
func scaled(n int) int {
	if testing.Short() {
		return n / 10
	}
	return n
}

// countBackend is a discard egress that only counts, so worker tests
// can check frame conservation without draining anything.
type countBackend struct {
	frames atomic.Uint64
}

func (cb *countBackend) Transmit([]byte) { cb.frames.Add(1) }
func (cb *countBackend) TransmitBatch(fs [][]byte) {
	cb.frames.Add(uint64(len(fs)))
}

func addFlow(t testing.TB, s *softswitch.Switch, table uint8, priority uint16, m openflow.Match, instrs ...openflow.Instruction) {
	t.Helper()
	_, err := s.ApplyFlowMod(&openflow.FlowMod{
		TableID: table, Command: openflow.FlowAdd, Priority: priority,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
		Match: m, Instructions: instrs,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func outputTo(port uint32) openflow.Instruction {
	return &openflow.InstrApplyActions{Actions: []openflow.Action{
		&openflow.ActionOutput{Port: port, MaxLen: 0xffff},
	}}
}

// newForwardSwitch builds a switch forwarding everything from port 1
// to port 2's counting backend.
func newForwardSwitch(t testing.TB, opts ...softswitch.Option) (*softswitch.Switch, *countBackend) {
	t.Helper()
	sw := softswitch.New("pool", 0x70, opts...)
	cb := &countBackend{}
	sw.AttachPort(2, "out", cb)
	m := openflow.Match{}
	m.WithInPort(1)
	addFlow(t, sw, 0, 10, m, outputTo(2))
	return sw, cb
}

// TestDispatchFlowAffinity is the RSS property test: dispatching many
// flows from many producers concurrently, a given 5-tuple must only
// ever be observed on ONE worker — the invariant that preserves
// per-flow ordering and cache locality.
func TestDispatchFlowAffinity(t *testing.T) {
	const (
		workers   = 4
		producers = 4
		nFlows    = 64
	)
	frames := scaled(20000)

	var mu sync.Mutex
	owner := make(map[pkt.Key]int)
	sw, _ := newForwardSwitch(t)
	pool := ssruntime.New(sw, ssruntime.Config{
		Workers: workers,
		Observer: func(worker int, b *dataplane.Batch) {
			mu.Lock()
			defer mu.Unlock()
			for i, f := range b.Frames {
				var key pkt.Key
				if err := pkt.ExtractKey(f, b.Meta[i].InPort, &key); err != nil {
					t.Errorf("observer: extract: %v", err)
					continue
				}
				if prev, ok := owner[key]; ok && prev != worker {
					t.Errorf("flow %v seen on workers %d and %d", key, prev, worker)
				}
				owner[key] = worker
			}
		},
	})
	pool.Start()

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// Same seed: every producer emits the same 64 flows, so each
			// flow reaches the pool from several goroutines at once.
			gen := fabric.NewUDPGenerator(64, nFlows, 7)
			for i := 0; i < frames/producers; i++ {
				for !pool.Dispatch(1, gen.Next()) {
					// ring full: wait for the workers
				}
			}
		}(p)
	}
	wg.Wait()
	pool.Stop()

	mu.Lock()
	defer mu.Unlock()
	if len(owner) != nFlows {
		t.Errorf("observed %d distinct flows, want %d", len(owner), nFlows)
	}
	// The hash must actually spread flows: with 64 flows on 4 workers,
	// every worker should own at least one.
	seen := make(map[int]bool)
	for _, w := range owner {
		seen[w] = true
	}
	if len(seen) < 2 {
		t.Errorf("all flows landed on %d worker(s) — sharding is not spreading", len(seen))
	}
}

// TestStopDrainsInFlight: every frame admitted by Dispatch before Stop
// must have traversed the switch by the time Stop returns — none may
// linger in an RX ring.
func TestStopDrainsInFlight(t *testing.T) {
	sw, cb := newForwardSwitch(t)
	pool := ssruntime.New(sw, ssruntime.Config{Workers: 3, RingSize: 1 << 14})
	pool.Start()

	gen := fabric.NewUDPGenerator(64, 128, 11)
	admitted := 0
	for i := 0; i < scaled(30000); i++ {
		if pool.Dispatch(1, gen.Next()) {
			admitted++
		}
	}
	pool.Stop()

	st := pool.Stats()
	if st.Frames != uint64(admitted) {
		t.Errorf("processed %d of %d admitted frames", st.Frames, admitted)
	}
	if got := cb.frames.Load() + sw.Drops(); got != uint64(admitted) {
		t.Errorf("conservation: egress+drops = %d, want %d", got, admitted)
	}
	if st.CacheHits+st.SlowPath+st.Dropped != st.Frames {
		t.Errorf("verdict split %d+%d+%d != %d frames",
			st.CacheHits, st.SlowPath, st.Dropped, st.Frames)
	}
	// Stop is idempotent.
	pool.Stop()
}

// TestParkAndWake: a worker that has gone through the whole backoff
// ladder and parked must be woken by the next Dispatch.
func TestParkAndWake(t *testing.T) {
	sw, cb := newForwardSwitch(t)
	pool := ssruntime.New(sw, ssruntime.Config{Workers: 2, SpinPolls: 4, YieldPolls: 2})
	pool.Start()
	defer pool.Stop()

	gen := fabric.NewUDPGenerator(64, 8, 3)
	for round := 0; round < 5; round++ {
		// Give the workers ample time to run off the spin/yield budget
		// and park.
		time.Sleep(20 * time.Millisecond)
		want := cb.frames.Load() + 8
		for i := 0; i < 8; i++ {
			if !pool.Dispatch(1, gen.Next()) {
				t.Fatal("dispatch rejected on an idle pool")
			}
		}
		deadline := time.Now().Add(5 * time.Second)
		for cb.frames.Load() < want {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: parked workers never woke (egress %d, want %d)",
					round, cb.frames.Load(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestMalformedFramesStillAccounted: frames whose key cannot be
// extracted shard by ingress port, traverse the switch, and surface as
// datapath drops — dispatch must not silently eat them.
func TestMalformedFramesStillAccounted(t *testing.T) {
	sw, cb := newForwardSwitch(t)
	pool := ssruntime.New(sw, ssruntime.Config{Workers: 2})
	pool.Start()

	const n = 500
	for i := 0; i < n; i++ {
		for !pool.Dispatch(1, []byte{0xde, 0xad}) { // too short for Ethernet
		}
	}
	pool.Stop()

	st := pool.Stats()
	if st.Frames != n {
		t.Errorf("processed %d of %d malformed frames", st.Frames, n)
	}
	if st.Dropped != n {
		t.Errorf("dropped verdicts = %d, want %d", st.Dropped, n)
	}
	if sw.Drops() != n {
		t.Errorf("switch drops = %d, want %d", sw.Drops(), n)
	}
	if cb.frames.Load() != 0 {
		t.Errorf("malformed frames leaked to egress: %d", cb.frames.Load())
	}
}

// TestWorkerStatsShardsExact: the per-worker shards must sum exactly
// to the aggregate — each frame is tallied on exactly one shard.
func TestWorkerStatsShardsExact(t *testing.T) {
	sw, _ := newForwardSwitch(t)
	pool := ssruntime.New(sw, ssruntime.Config{Workers: 4})
	pool.Start()
	gen := fabric.NewUDPGenerator(128, 256, 9)
	admitted := 0
	for i := 0; i < scaled(20000); i++ {
		if pool.Dispatch(1, gen.Next()) {
			admitted++
		}
	}
	pool.Stop()

	var sum ssruntime.PoolStats
	for i := 0; i < pool.Workers(); i++ {
		ws := pool.WorkerStats(i)
		sum.Frames += ws.Frames
		sum.Bytes += ws.Bytes
		sum.Batches += ws.Batches
		sum.CacheHits += ws.CacheHits
		sum.SlowPath += ws.SlowPath
		sum.Dropped += ws.Dropped
		sum.RxDrops += ws.RxDrops
	}
	if agg := pool.Stats(); sum != agg {
		t.Errorf("shard sum %+v != aggregate %+v", sum, agg)
	}
	if sum.Frames != uint64(admitted) {
		t.Errorf("frames = %d, want %d", sum.Frames, admitted)
	}
}

// TestWorkersVsFlowModRace hammers the pool from several producers
// while flow-mods, group-mods and expiry sweeps mutate the pipeline —
// the revision-validation machinery must keep cached replays and walks
// coherent with no data races (run under -race) and conserve every
// frame.
func TestWorkersVsFlowModRace(t *testing.T) {
	sw := softswitch.New("race", 0x99)
	cb := &countBackend{}
	sw.AttachPort(2, "out", cb)
	if err := sw.Groups().Apply(&openflow.GroupMod{
		Command: openflow.GroupAdd, GroupType: openflow.GroupTypeIndirect, GroupID: 1,
		Buckets: []openflow.Bucket{{Actions: []openflow.Action{
			&openflow.ActionOutput{Port: 2, MaxLen: 0xffff},
		}}},
	}); err != nil {
		t.Fatal(err)
	}
	m := openflow.Match{}
	m.WithInPort(1)
	// Table 0 -> table 1 -> group 1 -> port 2: the path touches every
	// revision the cache validates (two tables plus the group table).
	addFlow(t, sw, 0, 10, m, &openflow.InstrGotoTable{TableID: 1})
	addFlow(t, sw, 1, 5, openflow.Match{},
		&openflow.InstrApplyActions{Actions: []openflow.Action{&openflow.ActionGroup{GroupID: 1}}})

	pool := ssruntime.New(sw, ssruntime.Config{Workers: 4})
	pool.Start()

	const producers = 4
	packets := scaled(20000)
	mods := scaled(3000)

	var wg sync.WaitGroup
	var admitted atomic.Uint64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			gen := fabric.NewUDPGenerator(64, 64, int64(100+p))
			for i := 0; i < packets/producers; i++ {
				for !pool.Dispatch(1, gen.Next()) {
				}
				admitted.Add(1)
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < mods; i++ {
			_, _ = sw.ApplyFlowMod(&openflow.FlowMod{
				TableID: 0, Command: openflow.FlowModify, Priority: 10,
				BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, OutGroup: openflow.GroupAny,
				Match: m, Instructions: []openflow.Instruction{&openflow.InstrGotoTable{TableID: 1}},
			})
			if i%7 == 0 {
				_ = sw.Groups().Apply(&openflow.GroupMod{
					Command: openflow.GroupModify, GroupType: openflow.GroupTypeIndirect, GroupID: 1,
					Buckets: []openflow.Bucket{{Actions: []openflow.Action{
						&openflow.ActionOutput{Port: 2, MaxLen: 0xffff},
					}}},
				})
			}
			if i%13 == 0 {
				sw.SweepExpired()
			}
		}
	}()
	wg.Wait()
	pool.Stop()

	if st := pool.Stats(); st.Frames != admitted.Load() {
		t.Errorf("processed %d of %d admitted", st.Frames, admitted.Load())
	}
	if got := cb.frames.Load() + sw.Drops(); got != admitted.Load() {
		t.Errorf("conservation: egress+drops = %d, want %d", got, admitted.Load())
	}
}

// TestRingPortTagRoundTrip covers the dataplane side the pool builds
// on: PushFrame/DrainBatch must carry each frame's ingress port into
// the Batch meta.
func TestRingPortTagRoundTrip(t *testing.T) {
	r := dataplane.NewRing(8)
	for i := 0; i < 5; i++ {
		if !r.PushFrame([]byte{byte(i)}, uint32(100+i)) {
			t.Fatalf("push %d rejected", i)
		}
	}
	var b dataplane.Batch
	if n := r.DrainBatch(&b, 0); n != 5 {
		t.Fatalf("drained %d, want 5", n)
	}
	for i := 0; i < 5; i++ {
		if b.Frames[i][0] != byte(i) || b.Meta[i].InPort != uint32(100+i) {
			t.Fatalf("slot %d: frame %v port %d", i, b.Frames[i], b.Meta[i].InPort)
		}
	}
}
