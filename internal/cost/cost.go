// Package cost implements the capital-expenditure model behind the
// paper's title claim ("Cost-Effective Transitioning to SDN"): given a
// catalog of street prices, it compares the per-SDN-port cost of the
// three migration strategies the introduction discusses —
//
//	RipAndReplace: swap every legacy switch for a COTS OpenFlow switch
//	               (the "full-blown SDN overnight" option).
//	PureSoftware:  serve all ports from commodity servers running
//	               software switches (port density limited by the
//	               blade form factor, as §1 notes).
//	HARMLESS:      keep the installed legacy switches and add one
//	               commodity server per switch.
//
// Prices are parameters, not conclusions: DefaultCatalog2017 encodes
// typical 2017 street prices so the experiment (E4) reproduces the
// paper-era shape, and any catalog can be swapped in.
package cost

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Catalog lists unit prices (USD) and capacities.
type Catalog struct {
	// COTSSDNSwitchPrice per device.
	COTSSDNSwitchPrice float64
	// COTSSDNSwitchPorts usable access ports per device.
	COTSSDNSwitchPorts int
	// ServerPrice per commodity server (incl. NICs) able to run the
	// software switch at line rate.
	ServerPrice float64
	// ServerPorts is the maximum access ports one server can offer
	// directly (blade form-factor limit).
	ServerPorts int
	// LegacySwitchPrice per device (counted only in greenfield
	// scenarios; migrations treat installed gear as sunk).
	LegacySwitchPrice float64
	// LegacySwitchPorts usable access ports per legacy device (one
	// port is consumed as the HARMLESS trunk).
	LegacySwitchPorts int
	// TrunkOversubscription is the access:trunk bandwidth ratio a
	// deployment accepts; it does not change CAPEX but is reported.
	TrunkOversubscription float64
}

// DefaultCatalog2017 approximates 2017 street prices: a 48-port COTS
// OpenFlow switch around $10k (hardware plus NOS license), a dual-
// socket server with multi-queue NICs around $2.5k, and a managed
// 24-port GbE legacy switch around $800.
func DefaultCatalog2017() Catalog {
	return Catalog{
		COTSSDNSwitchPrice:    10000,
		COTSSDNSwitchPorts:    48,
		ServerPrice:           2500,
		ServerPorts:           8,
		LegacySwitchPrice:     800,
		LegacySwitchPorts:     23, // 24 ports, one becomes the trunk
		TrunkOversubscription: 23.0,
	}
}

// Strategy identifies a migration approach.
type Strategy string

// The compared strategies.
const (
	RipAndReplace Strategy = "rip-and-replace"
	PureSoftware  Strategy = "pure-software"
	HARMLESS      Strategy = "harmless"
)

// Breakdown is the cost result for one strategy at one port count.
type Breakdown struct {
	Strategy Strategy
	Ports    int
	// Items maps device kind to (count, unit price).
	Items map[string]Item
	// Total CAPEX.
	Total float64
	// PerPort = Total / Ports.
	PerPort float64
	// Greenfield marks whether legacy gear was purchased (vs. sunk).
	Greenfield bool
}

// Item is one line of a breakdown.
type Item struct {
	Count     int
	UnitPrice float64
}

// Cost computes the breakdown for a strategy serving ports access
// ports. greenfield=true prices legacy hardware in (a from-scratch
// build); false treats installed legacy switches as sunk cost (the
// migration scenario of the paper).
func (c Catalog) Cost(s Strategy, ports int, greenfield bool) (Breakdown, error) {
	if ports <= 0 {
		return Breakdown{}, fmt.Errorf("cost: ports must be positive, got %d", ports)
	}
	b := Breakdown{Strategy: s, Ports: ports, Items: map[string]Item{}, Greenfield: greenfield}
	switch s {
	case RipAndReplace:
		n := ceilDiv(ports, c.COTSSDNSwitchPorts)
		b.Items["cots-sdn-switch"] = Item{Count: n, UnitPrice: c.COTSSDNSwitchPrice}
	case PureSoftware:
		n := ceilDiv(ports, c.ServerPorts)
		b.Items["server"] = Item{Count: n, UnitPrice: c.ServerPrice}
	case HARMLESS:
		nLegacy := ceilDiv(ports, c.LegacySwitchPorts)
		if greenfield {
			b.Items["legacy-switch"] = Item{Count: nLegacy, UnitPrice: c.LegacySwitchPrice}
		} else {
			b.Items["legacy-switch (sunk)"] = Item{Count: nLegacy, UnitPrice: 0}
		}
		b.Items["server"] = Item{Count: nLegacy, UnitPrice: c.ServerPrice}
	default:
		return Breakdown{}, fmt.Errorf("cost: unknown strategy %q", s)
	}
	for _, it := range b.Items {
		b.Total += float64(it.Count) * it.UnitPrice
	}
	b.PerPort = b.Total / float64(ports)
	return b, nil
}

// WaveCost prices one HARMLESS migration wave: nSwitches installed
// legacy switches (sunk cost — this is the migration scenario) each
// gain exactly one commodity server, together serving ports access
// ports. Unlike Cost, which sizes the fleet from a port count via
// ceilDiv, WaveCost takes the switch count as ground truth so a
// campaign over arbitrarily sized switches books exactly what it
// deploys; for inventories made of full catalog-standard switches the
// two agree (see TestWaveCostMatchesCost).
func (c Catalog) WaveCost(nSwitches, ports int) (Breakdown, error) {
	if nSwitches <= 0 {
		return Breakdown{}, fmt.Errorf("cost: wave needs a positive switch count, got %d", nSwitches)
	}
	if ports <= 0 {
		return Breakdown{}, fmt.Errorf("cost: ports must be positive, got %d", ports)
	}
	b := Breakdown{Strategy: HARMLESS, Ports: ports, Items: map[string]Item{}}
	b.Items["legacy-switch (sunk)"] = Item{Count: nSwitches, UnitPrice: 0}
	b.Items["server"] = Item{Count: nSwitches, UnitPrice: c.ServerPrice}
	for _, it := range b.Items {
		b.Total += float64(it.Count) * it.UnitPrice
	}
	b.PerPort = b.Total / float64(ports)
	return b, nil
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// SweepRow is one port count across all strategies.
type SweepRow struct {
	Ports         int
	RipAndReplace Breakdown
	PureSoftware  Breakdown
	HARMLESS      Breakdown
	// Cheapest strategy at this scale.
	Winner Strategy
	// SavingsVsCOTS = 1 - harmless/ripAndReplace.
	SavingsVsCOTS float64
}

// Sweep computes all strategies over the given port counts.
func (c Catalog) Sweep(portCounts []int, greenfield bool) ([]SweepRow, error) {
	rows := make([]SweepRow, 0, len(portCounts))
	for _, p := range portCounts {
		rr, err := c.Cost(RipAndReplace, p, greenfield)
		if err != nil {
			return nil, err
		}
		ps, err := c.Cost(PureSoftware, p, greenfield)
		if err != nil {
			return nil, err
		}
		hl, err := c.Cost(HARMLESS, p, greenfield)
		if err != nil {
			return nil, err
		}
		row := SweepRow{Ports: p, RipAndReplace: rr, PureSoftware: ps, HARMLESS: hl}
		row.Winner = HARMLESS
		best := hl.Total
		if ps.Total < best {
			row.Winner, best = PureSoftware, ps.Total
		}
		if rr.Total < best {
			row.Winner = RipAndReplace
		}
		if rr.Total > 0 {
			row.SavingsVsCOTS = 1 - hl.Total/rr.Total
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// BreakEvenServerPrice returns the server price at which HARMLESS
// stops being cheaper than rip-and-replace for the given port count
// (sensitivity analysis).
func (c Catalog) BreakEvenServerPrice(ports int) float64 {
	nLegacy := ceilDiv(ports, c.LegacySwitchPorts)
	nCOTS := ceilDiv(ports, c.COTSSDNSwitchPorts)
	if nLegacy == 0 {
		return math.Inf(1)
	}
	return float64(nCOTS) * c.COTSSDNSwitchPrice / float64(nLegacy)
}

// FormatTable renders a sweep as the E4 text table.
func FormatTable(rows []SweepRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %-14s %-14s %-14s %-10s %-8s\n",
		"ports", "rip&replace", "pure-soft", "harmless", "$/port(H)", "winner")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8d $%-13.0f $%-13.0f $%-13.0f $%-9.2f %-8s\n",
			r.Ports, r.RipAndReplace.Total, r.PureSoftware.Total, r.HARMLESS.Total,
			r.HARMLESS.PerPort, r.Winner)
	}
	return sb.String()
}

// String renders a breakdown.
func (b Breakdown) String() string {
	kinds := make([]string, 0, len(b.Items))
	for k := range b.Items {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s @ %d ports: total $%.0f ($%.2f/port)", b.Strategy, b.Ports, b.Total, b.PerPort)
	for _, k := range kinds {
		it := b.Items[k]
		fmt.Fprintf(&sb, "; %dx %s @ $%.0f", it.Count, k, it.UnitPrice)
	}
	return sb.String()
}
