package netem

import (
	"testing"
	"time"
)

// A virtual async link delivers nothing until the scheduler reaches
// the modeled arrival instant, then delivers in FIFO order with exact
// serialization + propagation timing.
func TestVirtualLinkTiming(t *testing.T) {
	clock := NewManualClock()
	l := NewLink(LinkConfig{
		Async:        true,
		Scheduler:    clock,
		Latency:      10 * time.Millisecond,
		BandwidthBps: 8000, // 1 byte per millisecond
		Name:         "vt",
	})
	defer l.Close()

	type arrival struct {
		at  time.Time
		len int
	}
	var got []arrival
	l.B().SetReceiver(func(f []byte) { got = append(got, arrival{clock.Now(), len(f)}) })

	start := clock.Now()
	// Two 5-byte frames back to back: serialization 5ms each, so
	// departures at +5ms and +10ms, arrivals at +15ms and +20ms.
	if err := l.A().Send(make([]byte, 5)); err != nil {
		t.Fatal(err)
	}
	if err := l.A().Send(make([]byte, 5)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("delivery before any advance")
	}
	clock.Advance(14 * time.Millisecond)
	if len(got) != 0 {
		t.Fatalf("delivery at +14ms, want first arrival at +15ms (got %d)", len(got))
	}
	clock.Advance(time.Millisecond)
	if len(got) != 1 || !got[0].at.Equal(start.Add(15*time.Millisecond)) {
		t.Fatalf("first arrival = %+v, want 1 frame at +15ms", got)
	}
	clock.Advance(5 * time.Millisecond)
	if len(got) != 2 || !got[1].at.Equal(start.Add(20*time.Millisecond)) {
		t.Fatalf("second arrival = %+v, want 2 frames by +20ms", got)
	}
}

// FIFO order per direction survives bursts: equal-deadline deliveries
// fire in send order on an untimed virtual link.
func TestVirtualLinkFIFO(t *testing.T) {
	clock := NewManualClock()
	l := NewLink(LinkConfig{Async: true, Scheduler: clock, Name: "fifo"})
	defer l.Close()
	var got []byte
	l.B().SetReceiver(func(f []byte) { got = append(got, f[0]) })
	for i := 0; i < 64; i++ {
		if err := l.A().Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	clock.Advance(0)
	if len(got) != 64 {
		t.Fatalf("delivered %d frames, want 64", len(got))
	}
	for i, b := range got {
		if b != byte(i) {
			t.Fatalf("frame %d carries %d: FIFO order violated", i, b)
		}
	}
}

// QueueLen bounds the frames in flight per direction; overflow is
// tail-dropped and counted, exactly like the goroutine-pump mode.
func TestVirtualLinkQueueOverflow(t *testing.T) {
	clock := NewManualClock()
	l := NewLink(LinkConfig{
		Async:     true,
		Scheduler: clock,
		Latency:   time.Millisecond,
		QueueLen:  8,
		Name:      "q",
	})
	defer l.Close()
	delivered := 0
	l.B().SetReceiver(func([]byte) { delivered++ })
	for i := 0; i < 20; i++ {
		if err := l.A().Send([]byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if drops := l.A().Counters().TxDropped.Load(); drops != 12 {
		t.Fatalf("TxDropped = %d, want 12 (20 sent into a queue of 8)", drops)
	}
	clock.Advance(time.Second)
	if delivered != 8 {
		t.Fatalf("delivered %d, want 8", delivered)
	}
	// The queue drained: a fresh burst is admitted again.
	if err := l.A().Send([]byte{1}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Second)
	if delivered != 9 {
		t.Fatalf("delivered %d after drain, want 9", delivered)
	}
}

// Seeded loss drops the same frames on every run of the same seed.
func TestVirtualLinkSeededLossDeterminism(t *testing.T) {
	run := func() []int {
		clock := NewManualClock()
		l := NewLink(LinkConfig{Async: true, Scheduler: clock, LossProb: 0.3, Seed: 99, Name: "loss"})
		defer l.Close()
		var got []int
		l.B().SetReceiver(func(f []byte) { got = append(got, int(f[0])) })
		for i := 0; i < 100; i++ {
			if err := l.A().Send([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		clock.Advance(time.Second)
		return got
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 100 {
		t.Fatalf("loss model delivered %d/100, want some drops and some deliveries", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("two seeded runs delivered %d vs %d frames", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded runs diverge at frame %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Close cancels pending virtual deliveries.
func TestVirtualLinkClose(t *testing.T) {
	clock := NewManualClock()
	l := NewLink(LinkConfig{Async: true, Scheduler: clock, Latency: time.Millisecond, Name: "close"})
	delivered := 0
	l.B().SetReceiver(func([]byte) { delivered++ })
	if err := l.A().Send([]byte{1}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	clock.Advance(time.Second)
	if delivered != 0 {
		t.Fatal("frame delivered after Close")
	}
	if err := l.A().Send([]byte{1}); err != ErrLinkClosed {
		t.Fatalf("Send after Close = %v, want ErrLinkClosed", err)
	}
}
