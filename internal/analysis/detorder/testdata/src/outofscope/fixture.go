// Package outofscope is outside detorder's scope: unordered emission
// here is fine, and even an unused escape hatch must not be reported.
package outofscope

import "fmt"

func emitDirect(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

func clean() {
	//harmless:allow-maporder out of scope, never checked
	x := 1
	_ = x
}
