// Package errdrop flags discarded errors on teardown paths.
//
// Rollback is the product's safety story: the migration engine's whole
// pitch is that a failed step unwinds cleanly. A dropped error in a
// function reachable from Rollback, Stop or Close is exactly the
// failure that gets discovered during an outage — the unwind "worked",
// except the flow-mod never made it to the switch and nobody looked at
// the return value. So on every function reachable from one of those
// roots in the package call graph (flow.Graph: direct calls plus
// function references passed as callbacks), a call whose error result
// is discarded — as a bare statement, a defer, or a blank assignment —
// is a diagnostic. The fix is to handle it, aggregate with
// errors.Join, or carry //harmless:allow-droperr <reason> when the
// error is truly unactionable (closing an already-failed transport).
//
// fmt printing, the log package and strings.Builder/bytes.Buffer
// writes (documented to never return a meaningful error) are exempt.
package errdrop

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"github.com/harmless-sdn/harmless/internal/analysis"
	"github.com/harmless-sdn/harmless/internal/analysis/flow"
)

// Analyzer is the errdrop pass.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc:  "flags discarded error results in functions reachable from Rollback/Stop/Close",
	Run:  run,
}

const hatch = "allow-droperr"

// roots are the teardown entry points, matched case-insensitively so
// unexported variants (close, rollbackLegacy's caller rollback, ...)
// anchor the same paths.
func isRoot(name string) bool {
	switch strings.ToLower(name) {
	case "rollback", "stop", "close", "shutdown":
		return true
	}
	return false
}

func run(pass *analysis.Pass) error {
	g := flow.NewGraph(pass)
	rootOf := reachableFromRoots(g)
	if len(rootOf) > 0 {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				root, reachable := rootOf[fn]
				if !reachable {
					continue
				}
				checkBody(pass, fd.Body, root)
			}
		}
	}
	pass.ReportUnused(hatch)
	return nil
}

// reachableFromRoots maps every function reachable from a teardown
// root to the name of the (first, in source order) root that reaches
// it — deterministic provenance for the message.
func reachableFromRoots(g *flow.Graph) map[*types.Func]string {
	var roots []*types.Func
	for fn := range g.Decls {
		if isRoot(fn.Name()) {
			roots = append(roots, fn)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Pos() < roots[j].Pos() })
	rootOf := make(map[*types.Func]string)
	var visit func(fn *types.Func, root string)
	visit = func(fn *types.Func, root string) {
		if _, seen := rootOf[fn]; seen {
			return
		}
		rootOf[fn] = root
		for _, callee := range g.Callees[fn] {
			visit(callee, root)
		}
	}
	for _, r := range roots {
		visit(r, r.Name())
	}
	return rootOf
}

// checkBody reports every discarded error result in one reachable
// function body. Function literals inside count: they run (or defer)
// on the same teardown path.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, root string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok {
				checkDiscard(pass, call, root)
			}
		case *ast.DeferStmt:
			checkDiscard(pass, x.Call, root)
		case *ast.GoStmt:
			// The goroutine outlives the statement; its result was
			// never observable here.
			return true
		case *ast.AssignStmt:
			checkBlankAssign(pass, x, root)
		}
		return true
	})
}

// checkDiscard flags a call statement whose results include an error.
func checkDiscard(pass *analysis.Pass, call *ast.CallExpr, root string) {
	if !returnsError(pass, call) || exempt(pass, call) {
		return
	}
	report(pass, call, root)
}

// checkBlankAssign flags `_ = f()` and `v, _ := f()` when the blank
// slot holds the error.
func checkBlankAssign(pass *analysis.Pass, x *ast.AssignStmt, root string) {
	if len(x.Rhs) == 1 && len(x.Lhs) > 1 {
		// One call, several targets: the result tuple positions map
		// one-to-one onto the left-hand side.
		call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr)
		if !ok || exempt(pass, call) {
			return
		}
		tuple, ok := pass.TypesInfo.Types[call].Type.(*types.Tuple)
		if !ok || tuple.Len() != len(x.Lhs) {
			return
		}
		for i, lhs := range x.Lhs {
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				report(pass, call, root)
				return
			}
		}
		return
	}
	for i, lhs := range x.Lhs {
		if !isBlank(lhs) || i >= len(x.Rhs) {
			continue
		}
		call, ok := ast.Unparen(x.Rhs[i]).(*ast.CallExpr)
		if !ok || exempt(pass, call) {
			continue
		}
		if tv, ok := pass.TypesInfo.Types[call]; ok && isErrorType(tv.Type) {
			report(pass, call, root)
		}
	}
}

func report(pass *analysis.Pass, call *ast.CallExpr, root string) {
	if pass.Suppressed(call.Pos(), hatch) {
		return
	}
	pass.Reportf(call.Pos(),
		"error from %s discarded on a teardown path (reachable from %s); handle it, aggregate with errors.Join, or add //harmless:allow-droperr <reason>",
		calleeName(pass, call), root)
}

// returnsError reports whether call's (single or last tuple) result is
// an error.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		return tuple.Len() > 0 && isErrorType(tuple.At(tuple.Len()-1).Type())
	}
	return isErrorType(tv.Type)
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}

// exempt lists the callees whose error results are conventionally
// ignored: fmt and log output, and the in-memory writers whose Write
// methods are documented to always succeed.
func exempt(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt", "log":
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(pass, call); fn != nil {
		return fn.Name()
	}
	return "call"
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}
