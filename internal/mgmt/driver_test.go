package mgmt

import (
	"net"
	"strings"
	"testing"

	"github.com/harmless-sdn/harmless/internal/legacy"
	"github.com/harmless-sdn/harmless/internal/snmp"
)

// newDeviceRig starts a legacy switch CLI on a loopback TCP listener
// and returns its address.
func newDeviceRig(t *testing.T, sw *legacy.Switch, dialect legacy.Dialect) string {
	t.Helper()
	srv := legacy.NewCLIServer(sw, dialect)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck
	t.Cleanup(func() { l.Close() })
	return l.Addr().String()
}

func TestDriverFactsCisco(t *testing.T) {
	sw := legacy.NewSwitch("lab-sw", 8)
	addr := newDeviceRig(t, sw, legacy.DialectCiscoish)
	d, err := Connect(addr, "ciscoish")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	f, err := d.Facts()
	if err != nil {
		t.Fatal(err)
	}
	if f.Vendor != "ciscoish" || f.Hostname != "lab-sw" || f.PortCount != 8 {
		t.Errorf("facts: %+v", f)
	}
	if f.OSVersion == "" {
		t.Error("no OS version")
	}
}

func TestDriverFactsArista(t *testing.T) {
	sw := legacy.NewSwitch("ar-sw", 4)
	addr := newDeviceRig(t, sw, legacy.DialectAristaish)
	d, err := Connect(addr, "aristaish")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	f, err := d.Facts()
	if err != nil {
		t.Fatal(err)
	}
	if f.Vendor != "aristaish" || f.PortCount != 4 || f.Hostname != "ar-sw" {
		t.Errorf("facts: %+v", f)
	}
	if d.InterfaceName(2) != "Ethernet2" {
		t.Errorf("ifname: %s", d.InterfaceName(2))
	}
}

func TestDriverConfiguresHARMLESSLayout(t *testing.T) {
	// The exact sequence the HARMLESS manager issues: per-port VLANs
	// plus one trunk.
	sw := legacy.NewSwitch("h-sw", 4)
	addr := newDeviceRig(t, sw, legacy.DialectCiscoish)
	d, err := Connect(addr, "ciscoish")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for p := 1; p <= 3; p++ {
		vlan := uint16(100 + p)
		if err := d.DeclareVLAN(vlan, "harmless"); err != nil {
			t.Fatal(err)
		}
		if err := d.ConfigureAccessPort(p, vlan); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.ConfigureTrunkPort(4, 1, []uint16{101, 102, 103}); err != nil {
		t.Fatal(err)
	}

	cfg := sw.Config()
	for p := 1; p <= 3; p++ {
		if cfg.Ports[p].Mode != legacy.ModeAccess || cfg.Ports[p].PVID != uint16(100+p) {
			t.Errorf("port %d: %+v", p, cfg.Ports[p])
		}
	}
	if cfg.Ports[4].Mode != legacy.ModeTrunk {
		t.Errorf("port 4 not trunk: %+v", cfg.Ports[4])
	}
	if al := cfg.Ports[4].AllowedList(); len(al) != 3 {
		t.Errorf("allowed: %v", al)
	}

	rc, err := d.RunningConfig()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rc, "switchport access vlan 101") {
		t.Errorf("running config missing access stanza:\n%s", rc)
	}
}

func TestDriverShutdown(t *testing.T) {
	sw := legacy.NewSwitch("sd-sw", 2)
	addr := newDeviceRig(t, sw, legacy.DialectCiscoish)
	d, err := Connect(addr, "ciscoish")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.SetPortShutdown(1, true); err != nil {
		t.Fatal(err)
	}
	if !sw.Config().Ports[1].Shutdown {
		t.Error("not shut down")
	}
	if err := d.SetPortShutdown(1, false); err != nil {
		t.Fatal(err)
	}
	if sw.Config().Ports[1].Shutdown {
		t.Error("still shut down")
	}
}

func TestDriverInterfaceStatuses(t *testing.T) {
	sw := legacy.NewSwitch("st-sw", 3)
	_ = sw.SetPortShutdown(2, true)
	addr := newDeviceRig(t, sw, legacy.DialectCiscoish)
	d, err := Connect(addr, "ciscoish")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	sts, err := d.InterfaceStatuses()
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 3 {
		t.Fatalf("statuses: %+v", sts)
	}
	byPort := map[int]InterfaceStatus{}
	for _, s := range sts {
		byPort[s.Port] = s
	}
	if byPort[2].Status != "disabled" {
		t.Errorf("port 2: %+v", byPort[2])
	}
	if byPort[1].Status != "notconnect" {
		t.Errorf("port 1: %+v", byPort[1])
	}
}

func TestDriverRejectsBadCommand(t *testing.T) {
	sw := legacy.NewSwitch("err-sw", 2)
	addr := newDeviceRig(t, sw, legacy.DialectCiscoish)
	d, err := Connect(addr, "ciscoish")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Port 9 does not exist; the CLI rejects it and the driver must
	// surface a CommandError.
	err = d.ConfigureAccessPort(9, 10)
	if err == nil {
		t.Fatal("expected error")
	}
	if _, ok := err.(*CommandError); !ok {
		t.Errorf("want CommandError, got %T: %v", err, err)
	}
}

func TestProbeAutodetect(t *testing.T) {
	for _, tc := range []struct {
		dialect legacy.Dialect
		vendor  string
	}{
		{legacy.DialectCiscoish, "ciscoish"},
		{legacy.DialectAristaish, "aristaish"},
	} {
		sw := legacy.NewSwitch("probe-sw", 2)
		addr := newDeviceRig(t, sw, tc.dialect)
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Probe(conn)
		if err != nil {
			t.Fatalf("%s: %v", tc.vendor, err)
		}
		if d.Vendor() != tc.vendor {
			t.Errorf("detected %s, want %s", d.Vendor(), tc.vendor)
		}
		// The probed driver must be usable.
		if err := d.ConfigureAccessPort(1, 33); err != nil {
			t.Errorf("%s: configure after probe: %v", tc.vendor, err)
		}
		if sw.Config().Ports[1].PVID != 33 {
			t.Errorf("%s: config not applied", tc.vendor)
		}
		d.Close()
	}
}

func TestNewDriverUnknownVendor(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	if _, err := NewDriver(c1, "junosish"); err == nil {
		t.Error("expected error for unknown vendor")
	}
}

func TestDiscoverSNMP(t *testing.T) {
	sw := legacy.NewSwitch("disc-sw", 12)
	mib := snmp.NewMIB()
	legacy.BindMIB(sw, mib, legacy.DialectAristaish)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go snmp.NewAgent(mib, "public").Serve(pc) //nolint:errcheck
	c, err := snmp.Dial(pc.LocalAddr().String(), "public")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f, err := DiscoverSNMP(c)
	if err != nil {
		t.Fatal(err)
	}
	if f.Hostname != "disc-sw" || f.PortCount != 12 || f.Vendor != "aristaish" {
		t.Errorf("facts: %+v", f)
	}
}

func TestPortFromIfName(t *testing.T) {
	cases := map[string]int{
		"GigabitEthernet0/7": 7,
		"Ethernet12":         12,
		"Port":               0,
		"xe-0/0/1":           1,
	}
	for in, want := range cases {
		if got := portFromIfName(in); got != want {
			t.Errorf("portFromIfName(%q) = %d, want %d", in, got, want)
		}
	}
}

// newLoopPipe returns the two ends of an in-memory duplex connection.
func newLoopPipe(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	c1, c2 := net.Pipe()
	t.Cleanup(func() { c1.Close(); c2.Close() })
	return c1, c2
}
