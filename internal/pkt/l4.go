package pkt

import (
	"encoding/binary"
	"fmt"
)

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// UDP is a UDP header.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16
	payload  []byte
}

// LayerType implements Layer.
func (u *UDP) LayerType() LayerType { return LayerTypeUDP }

// LayerPayload implements Layer.
func (u *UDP) LayerPayload() []byte { return u.payload }

// NextLayerType implements Layer.
func (u *UDP) NextLayerType() LayerType {
	if u.SrcPort == 53 || u.DstPort == 53 {
		return LayerTypeDNS
	}
	return LayerTypePayload
}

// DecodeFromBytes implements Layer.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < UDPHeaderLen {
		return errTruncated(LayerTypeUDP)
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	end := int(u.Length)
	if end < UDPHeaderLen || end > len(data) {
		end = len(data)
	}
	u.payload = data[UDPHeaderLen:end]
	return nil
}

// SerializeTo implements SerializableLayer. Length is computed from the
// buffer; the checksum is left zero (i.e. "not computed", legal for
// UDP/IPv4) unless the buffer carries pseudo-header context set by
// SetNetworkForChecksum.
func (u *UDP) SerializeTo(b *SerializeBuffer) error {
	payloadLen := b.Len()
	hdr := b.PrependBytes(UDPHeaderLen)
	binary.BigEndian.PutUint16(hdr[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:4], u.DstPort)
	u.Length = uint16(UDPHeaderLen + payloadLen)
	binary.BigEndian.PutUint16(hdr[4:6], u.Length)
	hdr[6], hdr[7] = 0, 0
	if b.csumCtx.valid {
		u.Checksum = L4Checksum(b.csumCtx.src, b.csumCtx.dst, IPProtoUDP, b.Bytes())
		if u.Checksum == 0 {
			u.Checksum = 0xffff // RFC 768: transmitted as all ones
		}
		binary.BigEndian.PutUint16(hdr[6:8], u.Checksum)
	} else {
		u.Checksum = 0
	}
	return nil
}

// String summarizes the header for diagnostics.
func (u *UDP) String() string {
	return fmt.Sprintf("UDP %d > %d len=%d", u.SrcPort, u.DstPort, u.Length)
}

// TCP flag bits.
const (
	TCPFin uint8 = 1 << 0
	TCPSyn uint8 = 1 << 1
	TCPRst uint8 = 1 << 2
	TCPPsh uint8 = 1 << 3
	TCPAck uint8 = 1 << 4
	TCPUrg uint8 = 1 << 5
)

// TCPMinHeaderLen is the length of a TCP header without options.
const TCPMinHeaderLen = 20

// TCP is a TCP header. Options are preserved verbatim.
type TCP struct {
	SrcPort  uint16
	DstPort  uint16
	Seq      uint32
	Ack      uint32
	Flags    uint8
	Window   uint16
	Checksum uint16
	Urgent   uint16
	Options  []byte
	payload  []byte
}

// LayerType implements Layer.
func (t *TCP) LayerType() LayerType { return LayerTypeTCP }

// LayerPayload implements Layer.
func (t *TCP) LayerPayload() []byte { return t.payload }

// NextLayerType implements Layer.
func (t *TCP) NextLayerType() LayerType { return LayerTypePayload }

// DecodeFromBytes implements Layer.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < TCPMinHeaderLen {
		return errTruncated(LayerTypeTCP)
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	dataOff := int(data[12]>>4) * 4
	if dataOff < TCPMinHeaderLen || dataOff > len(data) {
		return &decodeError{layer: LayerTypeTCP, msg: "bad data offset"}
	}
	t.Flags = data[13] & 0x3f
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	t.Options = data[TCPMinHeaderLen:dataOff]
	t.payload = data[dataOff:]
	return nil
}

// SerializeTo implements SerializableLayer. The checksum is computed if
// the buffer carries pseudo-header context.
func (t *TCP) SerializeTo(b *SerializeBuffer) error {
	if len(t.Options)%4 != 0 {
		return fmt.Errorf("pkt: TCP options length %d not multiple of 4", len(t.Options))
	}
	hl := TCPMinHeaderLen + len(t.Options)
	hdr := b.PrependBytes(hl)
	binary.BigEndian.PutUint16(hdr[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:4], t.DstPort)
	binary.BigEndian.PutUint32(hdr[4:8], t.Seq)
	binary.BigEndian.PutUint32(hdr[8:12], t.Ack)
	hdr[12] = uint8(hl/4) << 4
	hdr[13] = t.Flags & 0x3f
	binary.BigEndian.PutUint16(hdr[14:16], t.Window)
	hdr[16], hdr[17] = 0, 0
	binary.BigEndian.PutUint16(hdr[18:20], t.Urgent)
	copy(hdr[TCPMinHeaderLen:], t.Options)
	if b.csumCtx.valid {
		t.Checksum = L4Checksum(b.csumCtx.src, b.csumCtx.dst, IPProtoTCP, b.Bytes())
		binary.BigEndian.PutUint16(hdr[16:18], t.Checksum)
	} else {
		t.Checksum = 0
	}
	return nil
}

// FlagString renders the flag set like "SYN|ACK".
func (t *TCP) FlagString() string {
	names := []struct {
		bit  uint8
		name string
	}{{TCPSyn, "SYN"}, {TCPAck, "ACK"}, {TCPFin, "FIN"}, {TCPRst, "RST"}, {TCPPsh, "PSH"}, {TCPUrg, "URG"}}
	s := ""
	for _, n := range names {
		if t.Flags&n.bit != 0 {
			if s != "" {
				s += "|"
			}
			s += n.name
		}
	}
	if s == "" {
		s = "none"
	}
	return s
}

// String summarizes the header for diagnostics.
func (t *TCP) String() string {
	return fmt.Sprintf("TCP %d > %d [%s] seq=%d ack=%d", t.SrcPort, t.DstPort, t.FlagString(), t.Seq, t.Ack)
}

// ICMPv4 types.
const (
	ICMPv4EchoReply   uint8 = 0
	ICMPv4Unreachable uint8 = 3
	ICMPv4EchoRequest uint8 = 8
	ICMPv4TimeExceed  uint8 = 11
)

// ICMPv4HeaderLen is the length of the fixed ICMPv4 header.
const ICMPv4HeaderLen = 8

// ICMPv4 is an ICMPv4 header. For echo messages Rest carries the
// identifier (high 16 bits) and sequence number (low 16 bits).
type ICMPv4 struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	Rest     uint32
	payload  []byte
}

// LayerType implements Layer.
func (c *ICMPv4) LayerType() LayerType { return LayerTypeICMPv4 }

// LayerPayload implements Layer.
func (c *ICMPv4) LayerPayload() []byte { return c.payload }

// NextLayerType implements Layer.
func (c *ICMPv4) NextLayerType() LayerType { return LayerTypePayload }

// ID returns the echo identifier.
func (c *ICMPv4) ID() uint16 { return uint16(c.Rest >> 16) }

// Seq returns the echo sequence number.
func (c *ICMPv4) Seq() uint16 { return uint16(c.Rest) }

// SetEcho stores identifier and sequence into Rest.
func (c *ICMPv4) SetEcho(id, seq uint16) { c.Rest = uint32(id)<<16 | uint32(seq) }

// DecodeFromBytes implements Layer.
func (c *ICMPv4) DecodeFromBytes(data []byte) error {
	if len(data) < ICMPv4HeaderLen {
		return errTruncated(LayerTypeICMPv4)
	}
	c.Type = data[0]
	c.Code = data[1]
	c.Checksum = binary.BigEndian.Uint16(data[2:4])
	c.Rest = binary.BigEndian.Uint32(data[4:8])
	c.payload = data[ICMPv4HeaderLen:]
	return nil
}

// SerializeTo implements SerializableLayer; the checksum covers the
// ICMP header plus the payload already in the buffer.
func (c *ICMPv4) SerializeTo(b *SerializeBuffer) error {
	hdr := b.PrependBytes(ICMPv4HeaderLen)
	hdr[0] = c.Type
	hdr[1] = c.Code
	hdr[2], hdr[3] = 0, 0
	binary.BigEndian.PutUint32(hdr[4:8], c.Rest)
	c.Checksum = Checksum(b.Bytes())
	binary.BigEndian.PutUint16(hdr[2:4], c.Checksum)
	return nil
}

// String summarizes the header for diagnostics.
func (c *ICMPv4) String() string {
	switch c.Type {
	case ICMPv4EchoRequest:
		return fmt.Sprintf("ICMP echo request id=%d seq=%d", c.ID(), c.Seq())
	case ICMPv4EchoReply:
		return fmt.Sprintf("ICMP echo reply id=%d seq=%d", c.ID(), c.Seq())
	}
	return fmt.Sprintf("ICMP type=%d code=%d", c.Type, c.Code)
}
