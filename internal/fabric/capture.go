package fabric

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/pkt"
)

// CapturedFrame is one frame observed by a Tap.
type CapturedFrame struct {
	When  time.Time
	Data  []byte
	Point string // capture point name
}

// Summary renders the frame one-line, pcap style.
func (c CapturedFrame) Summary() string {
	return fmt.Sprintf("[%s] %s", c.Point, pkt.DecodeEthernet(c.Data).String())
}

// Capture collects frames from any number of Taps; it plays the role
// of the per-hop packet captures used to verify the Fig. 1 walk-through.
type Capture struct {
	mu     sync.Mutex
	clock  netem.Clock
	frames []CapturedFrame
}

// NewCapture returns an empty capture stamping frames with the wall
// clock.
func NewCapture() *Capture { return &Capture{clock: netem.RealClock{}} }

// SetClock stamps subsequent frames with c — virtual time when c is a
// netem.Scheduler, so captures from a simulated fabric carry the
// simulation's own timestamps. nil is ignored.
func (c *Capture) SetClock(clock netem.Clock) *Capture {
	if clock != nil {
		c.mu.Lock()
		c.clock = clock
		c.mu.Unlock()
	}
	return c
}

// record appends one frame (copying the bytes: taps observe frames
// whose ownership belongs to the receiver).
func (c *Capture) record(point string, frame []byte) {
	cp := make([]byte, len(frame))
	copy(cp, frame)
	c.mu.Lock()
	c.frames = append(c.frames, CapturedFrame{When: c.clock.Now(), Data: cp, Point: point})
	c.mu.Unlock()
}

// Frames returns a snapshot of all captured frames in arrival order.
func (c *Capture) Frames() []CapturedFrame {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]CapturedFrame{}, c.frames...)
}

// At returns the frames captured at one point.
func (c *Capture) At(point string) []CapturedFrame {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []CapturedFrame
	for _, f := range c.frames {
		if f.Point == point {
			out = append(out, f)
		}
	}
	return out
}

// Count returns the number of frames captured at a point.
func (c *Capture) Count(point string) int { return len(c.At(point)) }

// String renders the whole capture.
func (c *Capture) String() string {
	var sb strings.Builder
	for _, f := range c.Frames() {
		sb.WriteString(f.Summary())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Tap interposes a capture point on a netem port's receive path:
// every frame delivered to the port is recorded at the named point and
// then handed to the device's existing receiver. Install it AFTER the
// device has attached to the port. Wrapping switches the port to
// per-frame delivery (netem.Port.WrapReceiver clears the batch
// receiver), so the tap observes batched traffic frame by frame too —
// captures trade the batch amortization for completeness.
func Tap(p *netem.Port, c *Capture, point string) {
	p.WrapReceiver(func(next netem.Receiver) netem.Receiver {
		return func(frame []byte) {
			c.record(point, frame)
			if next != nil {
				next(frame)
			}
		}
	})
}
