// Package controlplane implements the OpenFlow control-plane layer of
// HARMLESS as a first-class API, replacing the single hand-wired
// io.ReadWriteCloser the switch used to hold towards one controller.
//
// The switch side is a Channel — the connection state machine for one
// controller (HELLO handshake, echo-keepalive liveness with dead-peer
// teardown, active-connect mode with exponential-backoff redial,
// passive attach for accepted or in-memory transports) — and a
// ChannelSet that serves many concurrent controllers with OpenFlow 1.3
// role arbitration (ROLE_REQUEST/ROLE_REPLY with generation_id
// checking, MASTER/SLAVE/EQUAL, stale masters demoted) and per-role
// asynchronous-event filtering (SET_ASYNC/GET_ASYNC masks).
//
// The northbound side is Controller, a typed client over the same wire
// protocol: xid-correlated request/await-reply plumbing (AwaitBarrier,
// FlowStats, PortStats, role negotiation) plus async-event callbacks.
//
// Controller redundancy and master/slave handover are what make a
// production hybrid-SDN deployment survivable (Kreutz et al. §V.C);
// this package is what lets a HARMLESS-S4 keep forwarding through a
// controller crash and promote a standby without a flag day.
package controlplane

import (
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/harmless-sdn/harmless/internal/netem"
	"github.com/harmless-sdn/harmless/internal/openflow"
)

// State is the lifecycle position of a channel.
type State int32

// Channel states.
const (
	// StateConnecting: no transport yet (dialing, or between redials).
	StateConnecting State = iota
	// StateHandshake: transport up, our HELLO sent, peer HELLO pending.
	StateHandshake
	// StateUp: HELLO exchanged; the channel is live.
	StateUp
	// StateDown: transport lost; a dial-mode channel will redial.
	StateDown
	// StateClosed: terminal (Close called, or attach transport died).
	StateClosed
)

// String renders the state for logs.
func (s State) String() string {
	switch s {
	case StateConnecting:
		return "connecting"
	case StateHandshake:
		return "handshake"
	case StateUp:
		return "up"
	case StateDown:
		return "down"
	case StateClosed:
		return "closed"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// ErrChannelDown is returned by Send while the channel has no live
// transport.
var ErrChannelDown = fmt.Errorf("controlplane: channel down")

// Config tunes a channel's liveness probing and reconnect behavior.
// The zero value picks the defaults below.
type Config struct {
	// EchoInterval between keepalive ECHO_REQUESTs (default 5s;
	// negative disables keepalive probing entirely).
	EchoInterval time.Duration
	// EchoTimeout declares the peer dead when nothing (echo reply or
	// any other message) has been received for this long (default
	// 3 x EchoInterval).
	EchoTimeout time.Duration
	// BackoffMin is the first redial delay in active-connect mode
	// (default 50ms); each failed attempt doubles it up to BackoffMax
	// (default 5s).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// DialTimeout bounds one TCP connect attempt (default 3s).
	DialTimeout time.Duration
	// Logger for channel lifecycle diagnostics (default: discard).
	Logger *log.Logger
	// Clock drives the keepalive timers, dead-peer idle measurement
	// and redial backoff sleeps (default: the wall clock). Inject a
	// netem.Scheduler to run the channel state machine's liveness
	// probing on virtual time.
	Clock netem.Clock
}

func (c Config) withDefaults() Config {
	if c.EchoInterval == 0 {
		c.EchoInterval = 5 * time.Second
	}
	if c.EchoTimeout <= 0 {
		c.EchoTimeout = 3 * c.EchoInterval
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 3 * time.Second
	}
	if c.Logger == nil {
		c.Logger = log.New(io.Discard, "", 0)
	}
	if c.Clock == nil {
		c.Clock = netem.RealClock{}
	}
	return c
}

// backoff returns the delay before redial attempt n (0-based),
// doubling from BackoffMin and saturating at BackoffMax.
func (c Config) backoff(attempt int) time.Duration {
	d := c.BackoffMin
	for i := 0; i < attempt && d < c.BackoffMax; i++ {
		d *= 2
	}
	if d > c.BackoffMax {
		d = c.BackoffMax
	}
	return d
}

// Endpoint names one controller a switch should keep a channel to:
// either an address to dial (active-connect with backoff redial) or an
// already-established transport (accepted TCP conn, net.Pipe end).
type Endpoint struct {
	Addr string
	Conn io.ReadWriteCloser
}

// Channel is the switch side of one OpenFlow control connection. A
// channel belongs to a ChannelSet, which arbitrates controller roles
// across all channels of the switch; per-channel state is the
// transport, the negotiated role, and the async-event filter masks.
type Channel struct {
	set  *ChannelSet
	cfg  Config
	addr string // non-empty: active-connect mode, redial forever

	state   atomic.Int32
	redials atomic.Uint64 // dial attempts after the first
	lastRx  atomic.Int64  // unixnano of the last received message

	mu    sync.Mutex
	conn  *openflow.Conn // nil while no transport
	role  uint32
	async openflow.AsyncConfig

	done      chan struct{} // closed when the channel is terminal
	closeOnce sync.Once
}

func newChannel(set *ChannelSet, addr string) *Channel {
	c := &Channel{
		set:   set,
		cfg:   set.cfg,
		addr:  addr,
		role:  openflow.RoleEqual,
		async: openflow.DefaultAsyncConfig(),
		done:  make(chan struct{}),
	}
	c.state.Store(int32(StateConnecting))
	return c
}

// State returns the channel's lifecycle state.
func (c *Channel) State() State { return State(c.state.Load()) }

// Role returns the controller role currently held by this connection.
func (c *Channel) Role() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.role
}

// Redials returns the number of reconnect attempts made after the
// initial one (active-connect mode only).
func (c *Channel) Redials() uint64 { return c.redials.Load() }

// RemoteAddr returns the dial address (active mode) or "" for attached
// transports.
func (c *Channel) RemoteAddr() string { return c.addr }

// Done is closed when the channel terminates for good: Close was
// called, or an attached transport died (dial-mode channels never
// finish on their own — they redial).
func (c *Channel) Done() <-chan struct{} { return c.done }

// Send queues m on the channel's transport.
func (c *Channel) Send(m openflow.Message) error {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn == nil {
		return ErrChannelDown
	}
	return conn.Send(m)
}

// Reply sends resp echoing req's transaction id.
func (c *Channel) Reply(req, resp openflow.Message) error {
	resp.SetXID(req.XID())
	return c.Send(resp)
}

// SendError reports a failure for req back to the controller, quoting
// the first bytes of the offending message as the spec asks.
func (c *Channel) SendError(req openflow.Message, errType, code uint16) {
	data, _ := req.Marshal()
	if len(data) > 64 {
		data = data[:64]
	}
	e := &openflow.Error{ErrType: errType, Code: code, Data: data}
	e.SetXID(req.XID())
	_ = c.Send(e)
}

// Close terminates the channel: the transport is torn down and, in
// active-connect mode, no further redials happen.
func (c *Channel) Close() {
	c.closeOnce.Do(func() {
		close(c.done)
		c.state.Store(int32(StateClosed))
		c.mu.Lock()
		conn := c.conn
		c.conn = nil
		c.mu.Unlock()
		if conn != nil {
			//harmless:allow-droperr the channel is already marked closed; the transport close error has no consumer and cannot affect protocol state
			conn.Close()
		}
		c.set.remove(c)
	})
}

func (c *Channel) closed() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// setRole is called under the set's role lock.
func (c *Channel) setRole(role uint32) {
	c.mu.Lock()
	c.role = role
	c.mu.Unlock()
}

// wantsAsync applies the per-role async filter masks.
func (c *Channel) wantsAsync(msgType, reason uint8) bool {
	if c.State() != StateUp {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.async.Wants(c.role, msgType, reason)
}

// runAttach serves one already-established transport; the channel is
// terminal when it dies.
func (c *Channel) runAttach(rw io.ReadWriteCloser) {
	c.serve(rw)
	c.Close()
}

// runDial is the active-connect loop: dial, serve, and on transport
// loss redial with exponential backoff, forever until Close.
func (c *Channel) runDial() {
	attempt := 0
	for !c.closed() {
		c.state.Store(int32(StateConnecting))
		rw, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
		if err != nil {
			c.cfg.Logger.Printf("controlplane: dial %s: %v (retry in %v)", c.addr, err, c.cfg.backoff(attempt))
			if !c.sleep(c.cfg.backoff(attempt)) {
				return
			}
			attempt++
			c.redials.Add(1)
			continue
		}
		attempt = 0
		c.serve(rw)
		if c.closed() {
			return
		}
		c.cfg.Logger.Printf("controlplane: channel to %s lost, redialing", c.addr)
		if !c.sleep(c.cfg.backoff(0)) {
			return
		}
		c.redials.Add(1)
	}
}

// sleep waits d on the configured clock or until the channel closes;
// false means closed.
func (c *Channel) sleep(d time.Duration) bool {
	t := netem.NewTimer(c.cfg.Clock, d)
	defer t.Stop()
	select {
	case <-c.done:
		return false
	case <-t.C:
		return true
	}
}

// serve runs one transport to completion: HELLO, then the read loop
// with keepalive, returning when the transport dies.
func (c *Channel) serve(rw io.ReadWriteCloser) {
	conn := openflow.NewConn(rw)
	c.mu.Lock()
	if c.closed() {
		c.mu.Unlock()
		conn.Close()
		return
	}
	c.conn = conn
	// A fresh transport renegotiates from scratch: EQUAL role and
	// default async masks, per the spec's connection-start state.
	c.role = openflow.RoleEqual
	c.async = openflow.DefaultAsyncConfig()
	c.mu.Unlock()
	c.lastRx.Store(c.cfg.Clock.Now().UnixNano())
	c.state.Store(int32(StateHandshake))

	if err := conn.Send(&openflow.Hello{}); err == nil {
		stopKeep := make(chan struct{})
		go c.keepalive(conn, stopKeep)
		for {
			m, err := conn.Recv()
			if err != nil {
				break
			}
			c.lastRx.Store(c.cfg.Clock.Now().UnixNano())
			c.dispatch(m)
		}
		close(stopKeep)
	}
	conn.Close()
	c.mu.Lock()
	c.conn = nil
	c.mu.Unlock()
	if !c.closed() {
		c.state.Store(int32(StateDown))
	}
}

// keepalive probes the peer with ECHO_REQUEST every EchoInterval and
// tears the transport down when nothing has been received for
// EchoTimeout — the read loop then unblocks and the channel either
// redials (active mode) or terminates (attach mode).
func (c *Channel) keepalive(conn *openflow.Conn, stop <-chan struct{}) {
	if c.cfg.EchoInterval < 0 {
		return
	}
	t := netem.NewTicker(c.cfg.Clock, c.cfg.EchoInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-c.done:
			return
		case <-t.C:
			idle := c.cfg.Clock.Now().Sub(time.Unix(0, c.lastRx.Load()))
			if idle > c.cfg.EchoTimeout {
				c.cfg.Logger.Printf("controlplane: peer dead (%v since last rx), tearing channel down", idle)
				conn.Close()
				return
			}
			_ = conn.Send(&openflow.EchoRequest{})
		}
	}
}

// dispatch handles the messages the channel state machine owns and
// forwards the rest to the datapath.
func (c *Channel) dispatch(m openflow.Message) {
	switch t := m.(type) {
	case *openflow.Hello:
		c.state.Store(int32(StateUp))
	case *openflow.EchoRequest:
		_ = c.Reply(m, &openflow.EchoReply{Data: t.Data})
	case *openflow.EchoReply:
		// Liveness already refreshed by the read loop.
	case *openflow.FeaturesRequest:
		f := c.set.dp.Features()
		_ = c.Reply(m, &f)
	case *openflow.RoleRequest:
		c.set.handleRoleRequest(c, t)
	case *openflow.SetAsync:
		c.mu.Lock()
		c.async = t.AsyncConfig
		c.mu.Unlock()
	case *openflow.GetAsyncRequest:
		c.mu.Lock()
		cfg := c.async
		c.mu.Unlock()
		_ = c.Reply(m, &openflow.GetAsyncReply{AsyncConfig: cfg})
	default:
		c.set.dp.Handle(c, m)
	}
}
