package telemetry

import (
	"net"
	"testing"
	"time"

	"github.com/harmless-sdn/harmless/internal/pkt"
)

func wireKey(i int) FlowKey {
	k := mkKey(i)
	return KeyFromPacket(&k)
}

func TestIPFIXRoundTrip(t *testing.T) {
	enc := &Encoder{Domain: 7}
	recs := []WireRecord{
		{
			Key:     wireKey(1),
			Packets: 10, Bytes: 640,
			RevPackets: 4, RevBytes: 256,
			First: 1e9, Last: 2e9,
			OutPort:   3,
			EndReason: EndIdle,
		},
		{
			Key:     wireKey(2),
			Packets: 1, Bytes: 60,
			First: 3e9, Last: 3e9,
			EndReason: EndForced,
		},
	}
	samples := []WireSample{{Key: wireKey(1), Size: 64, OutPort: 3, Interval: 64}}
	col := NewCollector()
	n, err := enc.Encode(recs, samples, 1234, col.ExportMessage)
	if err != nil || n != 1 {
		t.Fatalf("Encode = %d, %v", n, err)
	}
	if enc.Sequence() != 3 {
		t.Fatalf("sequence = %d, want 3 data records", enc.Sequence())
	}
	msgs, records, samps, errs := col.Stats()
	if msgs != 1 || records != 2 || samps != 1 || errs != 0 {
		t.Fatalf("collector stats = %d msgs %d recs %d samples %d errs", msgs, records, samps, errs)
	}
	pkts, bytes := col.Totals()
	if pkts != 15 || bytes != 956 {
		t.Fatalf("totals = %d pkts %d bytes, want 15/956 (fwd+rev)", pkts, bytes)
	}
	flows := col.Flows()
	if len(flows) != 2 {
		t.Fatalf("flows = %d", len(flows))
	}
	top := flows[0]
	if top.Key != recs[0].Key {
		t.Fatalf("top flow key mismatch:\n got %v\nwant %v", top.Key, recs[0].Key)
	}
	if top.RevPackets != 4 || top.RevBytes != 256 || top.OutPort != 3 || top.EndReason != EndIdle {
		t.Fatalf("reverse/egress fields lost: %+v", top)
	}
	if top.FirstMs != 1000 || top.LastMs != 2000 {
		t.Fatalf("timestamps = %d..%d ms", top.FirstMs, top.LastMs)
	}
	if col.SampleBytes() != 64 {
		t.Fatalf("sample bytes = %d", col.SampleBytes())
	}
}

func TestIPFIXChunking(t *testing.T) {
	enc := &Encoder{Domain: 1}
	var recs []WireRecord
	for i := 0; i < 40; i++ {
		recs = append(recs, WireRecord{Key: wireKey(i), Packets: 1, Bytes: 64, First: 1, Last: 2})
	}
	col := NewCollector()
	n, err := enc.Encode(recs, nil, 0, func(msg []byte) error {
		if len(msg) > 1500 {
			t.Fatalf("message %d bytes exceeds MTU budget", len(msg))
		}
		return col.Consume(append([]byte(nil), msg...))
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 { // 14+14+12
		t.Fatalf("messages = %d, want 3", n)
	}
	if _, records, _, _ := col.Stats(); records != 40 {
		t.Fatalf("records = %d, want 40", records)
	}
	if len(col.Flows()) != 40 {
		t.Fatalf("flows = %d", len(col.Flows()))
	}
}

func TestCollectorAccumulatesDeltas(t *testing.T) {
	enc := &Encoder{}
	col := NewCollector()
	rec := WireRecord{Key: wireKey(1), Packets: 5, Bytes: 320, First: 1e9, Last: 2e9}
	if _, err := enc.Encode([]WireRecord{rec}, nil, 0, col.ExportMessage); err != nil {
		t.Fatal(err)
	}
	rec.Packets, rec.Bytes, rec.First, rec.Last = 3, 192, 3e9, 4e9
	if _, err := enc.Encode([]WireRecord{rec}, nil, 0, col.ExportMessage); err != nil {
		t.Fatal(err)
	}
	flows := col.Flows()
	if len(flows) != 1 || flows[0].Packets != 8 || flows[0].Bytes != 512 || flows[0].Records != 2 {
		t.Fatalf("delta accumulation wrong: %+v", flows)
	}
	if flows[0].FirstMs != 1000 || flows[0].LastMs != 4000 {
		t.Fatalf("window bounds wrong: %+v", flows[0])
	}
}

func TestCollectorRejectsGarbage(t *testing.T) {
	col := NewCollector()
	if err := col.Consume([]byte{1, 2, 3}); err == nil {
		t.Fatal("short message accepted")
	}
	bad := make([]byte, ipfixHeaderLen)
	bad[1] = 9 // version 9, not IPFIX
	bad[3] = ipfixHeaderLen
	if err := col.Consume(bad); err == nil {
		t.Fatal("wrong version accepted")
	}
	// Data set without a template must error, not panic.
	enc := &Encoder{}
	msg := enc.encodeOne([]WireRecord{{Key: wireKey(1), Packets: 1, Bytes: 1}}, nil, 0)
	fresh := NewCollector()
	// Strip the template set: header (16) + template set, then data.
	// Corrupt instead by truncating mid-record.
	if err := fresh.Consume(msg[:len(msg)-3]); err == nil {
		t.Fatal("truncated message accepted")
	}
	if _, _, _, errs := fresh.Stats(); errs != 1 {
		t.Fatal("decode error not counted")
	}
}

func TestUDPExporterToCollector(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	col := NewCollector()
	go col.ServeUDP(pc) //nolint:errcheck

	exp, err := NewUDPExporter(pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	enc := &Encoder{Domain: 2}
	if _, err := enc.Encode([]WireRecord{{Key: wireKey(9), Packets: 7, Bytes: 448, First: 1, Last: 2}}, nil, 0, exp.ExportMessage); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if pkts, bytes := col.Totals(); pkts == 7 && bytes == 448 {
			break
		}
		if time.Now().After(deadline) {
			pkts, bytes := col.Totals()
			t.Fatalf("UDP round-trip timed out: got %d/%d", pkts, bytes)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Sanity: the wire key survived intact.
	flows := col.Flows()
	if len(flows) != 1 || flows[0].Key.IPSrc != (pkt.IPv4{10, 1, 0, 9}) {
		t.Fatalf("wire flow = %+v", flows)
	}
}
