//go:build race

package softswitch

// raceEnabled reports whether the race detector is instrumenting this
// build; allocation-exactness tests skip under it (the instrumentation
// itself allocates).
const raceEnabled = true
