package pkt

import (
	"encoding/binary"
	"errors"
)

// In-place frame mutators implementing OpenFlow actions (push/pop VLAN,
// set-field, dec-TTL). They operate directly on the wire bytes and keep
// IP/L4 checksums consistent via incremental update, so a mutation is
// O(header) regardless of payload size — the property the HARMLESS
// hairpin path depends on for its "no major performance penalty" claim.

// ErrNoVLAN is returned when a VLAN operation targets an untagged frame.
var ErrNoVLAN = errors.New("pkt: frame has no VLAN tag")

// ErrTooShort is returned when a frame is too short for the operation.
var ErrTooShort = errors.New("pkt: frame too short")

// HasVLAN reports whether the frame carries an 802.1Q or 802.1ad tag.
func HasVLAN(frame []byte) bool {
	if len(frame) < EthernetHeaderLen {
		return false
	}
	et := binary.BigEndian.Uint16(frame[12:14])
	return et == EtherTypeDot1Q || et == EtherTypeQinQ
}

// VLANID returns the outermost VLAN id, or (0, false) if untagged.
func VLANID(frame []byte) (uint16, bool) {
	if !HasVLAN(frame) || len(frame) < EthernetHeaderLen+Dot1QHeaderLen {
		return 0, false
	}
	return binary.BigEndian.Uint16(frame[14:16]) & 0x0fff, true
}

// PushVLAN inserts a new outermost 802.1Q tag with the given VID
// (priority 0) and returns the new frame. The input slice is not
// modified; the result is a fresh allocation sized for the tag.
func PushVLAN(frame []byte, tpid uint16, vid uint16) ([]byte, error) {
	if len(frame) < EthernetHeaderLen {
		return nil, ErrTooShort
	}
	out := make([]byte, len(frame)+Dot1QHeaderLen)
	copy(out[0:12], frame[0:12])
	binary.BigEndian.PutUint16(out[12:14], tpid)
	binary.BigEndian.PutUint16(out[14:16], vid&0x0fff)
	copy(out[16:], frame[12:]) // old EtherType becomes the tag's inner type
	return out, nil
}

// PopVLAN removes the outermost VLAN tag and returns the new frame
// (fresh allocation).
func PopVLAN(frame []byte) ([]byte, error) {
	if len(frame) < EthernetHeaderLen+Dot1QHeaderLen {
		return nil, ErrTooShort
	}
	if !HasVLAN(frame) {
		return nil, ErrNoVLAN
	}
	out := make([]byte, len(frame)-Dot1QHeaderLen)
	copy(out[0:12], frame[0:12])
	copy(out[12:], frame[16:]) // inner EtherType slides into place
	return out, nil
}

// SetVLANID rewrites the outermost tag's VID in place, preserving PCP
// and DEI bits.
func SetVLANID(frame []byte, vid uint16) error {
	if len(frame) < EthernetHeaderLen+Dot1QHeaderLen {
		return ErrTooShort
	}
	if !HasVLAN(frame) {
		return ErrNoVLAN
	}
	tci := binary.BigEndian.Uint16(frame[14:16])
	binary.BigEndian.PutUint16(frame[14:16], tci&0xf000|vid&0x0fff)
	return nil
}

// SetVLANPCP rewrites the outermost tag's priority bits in place.
func SetVLANPCP(frame []byte, pcp uint8) error {
	if len(frame) < EthernetHeaderLen+Dot1QHeaderLen {
		return ErrTooShort
	}
	if !HasVLAN(frame) {
		return ErrNoVLAN
	}
	tci := binary.BigEndian.Uint16(frame[14:16])
	binary.BigEndian.PutUint16(frame[14:16], tci&0x1fff|uint16(pcp&0x7)<<13)
	return nil
}

// SetEthDst rewrites the destination MAC in place.
func SetEthDst(frame []byte, mac MAC) error {
	if len(frame) < 6 {
		return ErrTooShort
	}
	copy(frame[0:6], mac[:])
	return nil
}

// SetEthSrc rewrites the source MAC in place.
func SetEthSrc(frame []byte, mac MAC) error {
	if len(frame) < 12 {
		return ErrTooShort
	}
	copy(frame[6:12], mac[:])
	return nil
}

// ipv4Offsets locates the IPv4 header and, when present, the L4 header
// within the frame, skipping VLAN tags. Returns ipOff < 0 if the frame
// is not IPv4.
func ipv4Offsets(frame []byte) (ipOff, l4Off int, proto uint8) {
	if len(frame) < EthernetHeaderLen {
		return -1, -1, 0
	}
	et := binary.BigEndian.Uint16(frame[12:14])
	off := EthernetHeaderLen
	for et == EtherTypeDot1Q || et == EtherTypeQinQ {
		if len(frame) < off+Dot1QHeaderLen {
			return -1, -1, 0
		}
		et = binary.BigEndian.Uint16(frame[off+2 : off+4])
		off += Dot1QHeaderLen
	}
	if et != EtherTypeIPv4 || len(frame) < off+IPv4MinHeaderLen {
		return -1, -1, 0
	}
	ihl := int(frame[off]&0xf) * 4
	if ihl < IPv4MinHeaderLen || len(frame) < off+ihl {
		return -1, -1, 0
	}
	proto = frame[off+9]
	fragOff := binary.BigEndian.Uint16(frame[off+6:off+8]) & 0x1fff
	if fragOff != 0 {
		return off, -1, proto
	}
	return off, off + ihl, proto
}

// l4ChecksumSlice returns the slice holding the L4 checksum for the
// given protocol, or nil when the protocol has no (adjustable) checksum
// or the frame is too short.
func l4ChecksumSlice(frame []byte, l4Off int, proto uint8) []byte {
	switch proto {
	case IPProtoTCP:
		if l4Off >= 0 && len(frame) >= l4Off+18 {
			return frame[l4Off+16 : l4Off+18]
		}
	case IPProtoUDP:
		if l4Off >= 0 && len(frame) >= l4Off+8 {
			cs := frame[l4Off+6 : l4Off+8]
			if cs[0] == 0 && cs[1] == 0 {
				return nil // checksum disabled; keep it disabled
			}
			return cs
		}
	}
	return nil
}

// SetIPv4Src rewrites the IPv4 source address in place, updating the IP
// header checksum and any TCP/UDP checksum incrementally.
func SetIPv4Src(frame []byte, ip IPv4) error { return setIPv4Addr(frame, ip, 12) }

// SetIPv4Dst rewrites the IPv4 destination address in place, updating
// checksums incrementally.
func SetIPv4Dst(frame []byte, ip IPv4) error { return setIPv4Addr(frame, ip, 16) }

func setIPv4Addr(frame []byte, ip IPv4, fieldOff int) error {
	ipOff, l4Off, proto := ipv4Offsets(frame)
	if ipOff < 0 {
		return ErrTooShort
	}
	fo := ipOff + fieldOff
	old := binary.BigEndian.Uint32(frame[fo : fo+4])
	new := ip.Uint32()
	if old == new {
		return nil
	}
	copy(frame[fo:fo+4], ip[:])
	updateChecksum32(frame[ipOff+10:ipOff+12], old, new)
	if cs := l4ChecksumSlice(frame, l4Off, proto); cs != nil {
		updateChecksum32(cs, old, new) // addresses are in the pseudo-header
	}
	return nil
}

// SetL4Src rewrites the TCP/UDP source port in place with checksum
// fixup.
func SetL4Src(frame []byte, port uint16) error { return setL4Port(frame, port, 0) }

// SetL4Dst rewrites the TCP/UDP destination port in place with checksum
// fixup.
func SetL4Dst(frame []byte, port uint16) error { return setL4Port(frame, port, 2) }

func setL4Port(frame []byte, port uint16, fieldOff int) error {
	_, l4Off, proto := ipv4Offsets(frame)
	if l4Off < 0 || (proto != IPProtoTCP && proto != IPProtoUDP) {
		return ErrTooShort
	}
	if len(frame) < l4Off+4 {
		return ErrTooShort
	}
	fo := l4Off + fieldOff
	old := binary.BigEndian.Uint16(frame[fo : fo+2])
	if old == port {
		return nil
	}
	binary.BigEndian.PutUint16(frame[fo:fo+2], port)
	if cs := l4ChecksumSlice(frame, l4Off, proto); cs != nil {
		updateChecksum16(cs, old, port)
	}
	return nil
}

// DecIPv4TTL decrements the TTL in place with incremental checksum
// update. It returns the new TTL; a result of 0 means the packet must
// be dropped (and, in a router, an ICMP time-exceeded generated).
func DecIPv4TTL(frame []byte) (uint8, error) {
	ipOff, _, _ := ipv4Offsets(frame)
	if ipOff < 0 {
		return 0, ErrTooShort
	}
	ttl := frame[ipOff+8]
	if ttl == 0 {
		return 0, nil
	}
	old := binary.BigEndian.Uint16(frame[ipOff+8 : ipOff+10])
	frame[ipOff+8] = ttl - 1
	new := binary.BigEndian.Uint16(frame[ipOff+8 : ipOff+10])
	updateChecksum16(frame[ipOff+10:ipOff+12], old, new)
	return ttl - 1, nil
}
