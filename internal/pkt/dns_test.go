package pkt

import (
	"testing"
)

func TestDNSQueryRoundTrip(t *testing.T) {
	q := &DNS{
		ID: 0x1234, RD: true,
		Questions: []DNSQuestion{{Name: "www.example.com", Type: DNSTypeA, Class: DNSClassIN}},
	}
	raw, err := Serialize(q)
	if err != nil {
		t.Fatal(err)
	}
	var got DNS
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got.ID != 0x1234 || got.QR || !got.RD {
		t.Errorf("header: %+v", got)
	}
	if len(got.Questions) != 1 || got.Questions[0].Name != "www.example.com" ||
		got.Questions[0].Type != DNSTypeA {
		t.Errorf("questions: %+v", got.Questions)
	}
}

func TestDNSResponseRoundTrip(t *testing.T) {
	r := &DNS{
		ID: 7, QR: true, AA: true, RA: true, Rcode: DNSRcodeNoError,
		Questions: []DNSQuestion{{Name: "blocked.example.net", Type: DNSTypeA, Class: DNSClassIN}},
		Answers: []DNSAnswer{{
			Name: "blocked.example.net", Type: DNSTypeA, Class: DNSClassIN,
			TTL: 300, A: MustIPv4("93.184.216.34"),
		}},
	}
	raw, err := Serialize(r)
	if err != nil {
		t.Fatal(err)
	}
	var got DNS
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if !got.QR || !got.AA || got.Rcode != DNSRcodeNoError {
		t.Errorf("flags: %+v", got)
	}
	if len(got.Answers) != 1 || got.Answers[0].A != MustIPv4("93.184.216.34") ||
		got.Answers[0].TTL != 300 {
		t.Errorf("answers: %+v", got.Answers)
	}
}

func TestDNSNXDomain(t *testing.T) {
	r := &DNS{ID: 9, QR: true, Rcode: DNSRcodeNXDomain,
		Questions: []DNSQuestion{{Name: "nope.invalid", Type: DNSTypeA, Class: DNSClassIN}}}
	raw, err := Serialize(r)
	if err != nil {
		t.Fatal(err)
	}
	var got DNS
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got.Rcode != DNSRcodeNXDomain || len(got.Answers) != 0 {
		t.Errorf("%+v", got)
	}
}

func TestDNSCompressionPointers(t *testing.T) {
	// Hand-crafted response using a compression pointer for the answer
	// name (0xc00c points at offset 12, the question name).
	raw := []byte{
		0x00, 0x01, // ID
		0x81, 0x80, // QR|RD|RA
		0x00, 0x01, // QDCOUNT
		0x00, 0x01, // ANCOUNT
		0x00, 0x00, 0x00, 0x00, // NS, AR
		// question: example.com A IN
		7, 'e', 'x', 'a', 'm', 'p', 'l', 'e', 3, 'c', 'o', 'm', 0,
		0x00, 0x01, 0x00, 0x01,
		// answer: pointer to offset 12
		0xc0, 0x0c,
		0x00, 0x01, 0x00, 0x01, // A IN
		0x00, 0x00, 0x00, 0x3c, // TTL 60
		0x00, 0x04, // RDLENGTH
		1, 2, 3, 4,
	}
	var d DNS
	if err := d.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if len(d.Answers) != 1 || d.Answers[0].Name != "example.com" {
		t.Fatalf("answers: %+v", d.Answers)
	}
	if d.Answers[0].A != (IPv4{1, 2, 3, 4}) {
		t.Errorf("A = %v", d.Answers[0].A)
	}
}

func TestDNSCompressionLoopDetected(t *testing.T) {
	raw := []byte{
		0, 1, 0x01, 0x00, 0, 1, 0, 0, 0, 0, 0, 0,
		0xc0, 0x0c, // pointer to itself
		0, 1, 0, 1,
	}
	var d DNS
	if err := d.DecodeFromBytes(raw); err == nil {
		t.Error("expected loop detection error")
	}
}

func TestDNSOverUDPDecode(t *testing.T) {
	dns := &DNS{ID: 42, RD: true,
		Questions: []DNSQuestion{{Name: "site.test", Type: DNSTypeA, Class: DNSClassIN}}}
	frame, err := Serialize(
		&Ethernet{Src: testSrcMAC, Dst: testDstMAC, EtherType: EtherTypeIPv4},
		&IPv4Header{TTL: 64, Protocol: IPProtoUDP, Src: testSrcIP, Dst: testDstIP},
		&UDP{SrcPort: 5353, DstPort: 53},
		dns,
	)
	if err != nil {
		t.Fatal(err)
	}
	p := DecodeEthernet(frame)
	got := p.DNS()
	if got == nil {
		t.Fatalf("no DNS layer: %s", p)
	}
	if got.ID != 42 || got.Questions[0].Name != "site.test" {
		t.Errorf("decoded: %+v", got)
	}
}

func TestDNSBadLabel(t *testing.T) {
	d := &DNS{Questions: []DNSQuestion{{Name: "bad..label", Type: DNSTypeA, Class: DNSClassIN}}}
	if _, err := Serialize(d); err == nil {
		t.Error("expected error for empty label")
	}
}

func TestParserDecodeLayers(t *testing.T) {
	frame := buildUDPFrame(t, []byte("parse me"))
	tagged, _ := PushVLAN(frame, EtherTypeDot1Q, 33)
	p := NewParser()
	var decoded []LayerType
	if err := p.DecodeLayers(tagged, &decoded); err != nil {
		t.Fatal(err)
	}
	want := []LayerType{LayerTypeEthernet, LayerTypeDot1Q, LayerTypeIPv4, LayerTypeUDP}
	if len(decoded) != len(want) {
		t.Fatalf("decoded %v, want %v", decoded, want)
	}
	for i := range want {
		if decoded[i] != want[i] {
			t.Fatalf("decoded %v, want %v", decoded, want)
		}
	}
	if p.OuterVLAN().VLANID != 33 {
		t.Errorf("vlan = %d", p.OuterVLAN().VLANID)
	}
	if p.UDP.SrcPort != 1234 {
		t.Errorf("udp src = %d", p.UDP.SrcPort)
	}
	// Reuse on an untagged ARP frame.
	arp, err := Serialize(
		&Ethernet{Src: testSrcMAC, Dst: BroadcastMAC, EtherType: EtherTypeARP},
		&ARP{Op: ARPRequest, SenderHW: testSrcMAC, SenderIP: testSrcIP, TargetIP: testDstIP},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.DecodeLayers(arp, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 || decoded[1] != LayerTypeARP {
		t.Fatalf("decoded %v", decoded)
	}
	if p.ARP.TargetIP != testDstIP {
		t.Errorf("ARP target = %v", p.ARP.TargetIP)
	}
}

func TestParserTruncated(t *testing.T) {
	frame := buildUDPFrame(t, []byte("x"))
	p := NewParser()
	var decoded []LayerType
	if err := p.DecodeLayers(frame[:EthernetHeaderLen+10], &decoded); err != nil {
		t.Fatal(err)
	}
	if !p.Truncated {
		t.Error("Truncated must be set")
	}
	if len(decoded) != 1 || decoded[0] != LayerTypeEthernet {
		t.Errorf("decoded %v", decoded)
	}
}
