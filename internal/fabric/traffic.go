package fabric

import (
	"math/rand"

	"github.com/harmless-sdn/harmless/internal/pkt"
)

// FrameSizes used by the throughput sweeps (E2): the classic RFC 2544
// ladder.
var FrameSizes = []int{64, 128, 256, 512, 1024, 1500}

// IMIXSizes is the simple IMIX mix (7:4:1 of 64/576/1500-byte frames)
// used where a realistic aggregate matters more than a fixed size.
var IMIXSizes = []int{64, 64, 64, 64, 64, 64, 64, 576, 576, 576, 576, 1500}

// FlowSpec describes one synthetic flow for the generators.
type FlowSpec struct {
	SrcMAC pkt.MAC
	DstMAC pkt.MAC
	SrcIP  pkt.IPv4
	DstIP  pkt.IPv4
	Sport  uint16
	Dport  uint16
}

// Generator produces pre-built frames for benchmark loops. Frames are
// built once so the generator adds no measurable cost to the loop.
// With no explicit order the frames cycle round-robin; generators with
// a skewed popularity (NewZipfGenerator) precompute an order instead.
type Generator struct {
	frames [][]byte
	order  []int // nil = round-robin over frames
	next   int
}

// NewUDPGenerator builds a pool of UDP frames of the given wire size,
// cycling over nFlows distinct 5-tuples (seeded deterministically).
func NewUDPGenerator(size, nFlows int, seed int64) *Generator {
	if size < pkt.EthernetHeaderLen+pkt.IPv4MinHeaderLen+pkt.UDPHeaderLen {
		size = pkt.EthernetHeaderLen + pkt.IPv4MinHeaderLen + pkt.UDPHeaderLen
	}
	rng := rand.New(rand.NewSource(seed))
	g := &Generator{frames: make([][]byte, 0, nFlows)}
	payloadLen := size - pkt.EthernetHeaderLen - pkt.IPv4MinHeaderLen - pkt.UDPHeaderLen
	buf := pkt.NewSerializeBuffer()
	for i := 0; i < nFlows; i++ {
		payload := make(pkt.Payload, payloadLen)
		frame, err := pkt.SerializeLayers(buf,
			&pkt.Ethernet{
				Src:       pkt.MAC{0x02, 0x10, 0, 0, byte(i >> 8), byte(i)},
				Dst:       pkt.MAC{0x02, 0x20, 0, 0, byte(i >> 8), byte(i)},
				EtherType: pkt.EtherTypeIPv4,
			},
			&pkt.IPv4Header{
				TTL: 64, Protocol: pkt.IPProtoUDP,
				Src: pkt.IPv4{10, 1, byte(i >> 8), byte(i)},
				Dst: pkt.IPv4{10, 2, byte(rng.Intn(256)), byte(rng.Intn(256))},
			},
			&pkt.UDP{SrcPort: uint16(1024 + i%40000), DstPort: uint16(1024 + rng.Intn(40000))},
			&payload,
		)
		if err != nil {
			continue
		}
		cp := make([]byte, len(frame))
		copy(cp, frame)
		g.frames = append(g.frames, cp)
	}
	return g
}

// NewFlowGenerator builds one frame per explicit flow spec.
func NewFlowGenerator(size int, flows []FlowSpec) *Generator {
	payloadLen := size - pkt.EthernetHeaderLen - pkt.IPv4MinHeaderLen - pkt.UDPHeaderLen
	if payloadLen < 0 {
		payloadLen = 0
	}
	g := &Generator{frames: make([][]byte, 0, len(flows))}
	buf := pkt.NewSerializeBuffer()
	for _, f := range flows {
		payload := make(pkt.Payload, payloadLen)
		frame, err := pkt.SerializeLayers(buf,
			&pkt.Ethernet{Src: f.SrcMAC, Dst: f.DstMAC, EtherType: pkt.EtherTypeIPv4},
			&pkt.IPv4Header{TTL: 64, Protocol: pkt.IPProtoUDP, Src: f.SrcIP, Dst: f.DstIP},
			&pkt.UDP{SrcPort: f.Sport, DstPort: f.Dport},
			&payload,
		)
		if err != nil {
			continue
		}
		cp := make([]byte, len(frame))
		copy(cp, frame)
		g.frames = append(g.frames, cp)
	}
	return g
}

// NewZipfGenerator builds nFlows distinct UDP flows of the given wire
// size and emits them with Zipf-distributed popularity of skew s > 1
// (flow 0 hottest), the standard model for Internet flow popularity.
// The emission order is precomputed so Next stays allocation-free.
func NewZipfGenerator(size, nFlows int, s float64, seed int64) *Generator {
	g := NewUDPGenerator(size, nFlows, seed)
	if len(g.frames) < 2 {
		return g
	}
	rng := rand.New(rand.NewSource(seed + 1))
	z := rand.NewZipf(rng, s, 1, uint64(len(g.frames)-1))
	order := make([]int, 8*len(g.frames))
	for i := range order {
		order[i] = int(z.Uint64())
	}
	g.order = order
	return g
}

// NewThrashGenerator builds adversarial cache-thrash traffic: nFlows
// distinct flows visited round-robin, so with nFlows larger than an
// exact-match cache's capacity every packet misses and displaces a
// cached entry — the worst case for a microflow-cached datapath.
func NewThrashGenerator(size, nFlows int, seed int64) *Generator {
	return NewUDPGenerator(size, nFlows, seed)
}

// Next returns the next frame in generation order (round-robin, or the
// precomputed popularity order). The returned slice is shared:
// consumers that mutate frames must copy it (CopyNext).
func (g *Generator) Next() []byte {
	if g.order != nil {
		f := g.frames[g.order[g.next]]
		g.next = (g.next + 1) % len(g.order)
		return f
	}
	f := g.frames[g.next]
	g.next = (g.next + 1) % len(g.frames)
	return f
}

// CopyNext returns a private copy of the next frame, for paths that
// mutate in place (VLAN push/pop).
func (g *Generator) CopyNext() []byte {
	f := g.Next()
	cp := make([]byte, len(f))
	copy(cp, f)
	return cp
}

// NextBatch refills into with the next n frames in generation order
// and returns it, reusing into's capacity — the vector shape
// Switch.ReceiveBatch and Port.SendBatch consume. The frames are
// shared like Next's; use CopyBatch for paths that mutate.
func (g *Generator) NextBatch(into [][]byte, n int) [][]byte {
	into = into[:0]
	for i := 0; i < n; i++ {
		into = append(into, g.Next())
	}
	return into
}

// CopyBatch refills into with private copies of the next n frames —
// for batch injection into paths that take frame ownership or rewrite
// headers in place.
func (g *Generator) CopyBatch(into [][]byte, n int) [][]byte {
	into = into[:0]
	for i := 0; i < n; i++ {
		into = append(into, g.CopyNext())
	}
	return into
}

// Len returns the number of distinct frames.
func (g *Generator) Len() int { return len(g.frames) }

// MixGenerator emits the long-lived/short-lived flow mix telemetry
// planes face in production: a small set of heavy-hitter "elephant"
// flows carrying most of the packets, over a churning population of
// short-lived "mouse" flows — each mouse emits for a bounded window,
// then a fresh 5-tuple replaces it. Frames are prebuilt (the mouse
// population is a sliding window over a larger precomputed pool), so
// Next stays allocation-free like the other generators.
type MixGenerator struct {
	elephants     *Generator
	mice          [][]byte // full mouse pool; the active set slides over it
	window        int      // active mice at any instant
	start         int      // first active mouse
	perWindow     int      // mouse frames emitted before the window slides
	emitted       int
	elephantShare float64
	rng           *rand.Rand
	churned       int
}

// NewMixGenerator builds a mix of `elephants` long-lived flows taking
// elephantShare of the packets and `mice` concurrently active
// short-lived flows, each living for roughly `mouseLife` of its own
// packets before being replaced by a brand-new flow. The mouse pool
// holds 8x the active window, so the mix replays ~8*mice distinct
// short-lived flows before reusing a tuple.
func NewMixGenerator(size, elephants, mice, mouseLife int, elephantShare float64, seed int64) *MixGenerator {
	if elephants < 1 {
		elephants = 1
	}
	if mice < 1 {
		mice = 1
	}
	if mouseLife < 1 {
		mouseLife = 16
	}
	if elephantShare <= 0 || elephantShare >= 1 {
		elephantShare = 0.8
	}
	pool := NewUDPGenerator(size, 8*mice, seed+1)
	return &MixGenerator{
		elephants:     NewUDPGenerator(size, elephants, seed),
		mice:          pool.frames,
		window:        mice,
		perWindow:     mouseLife * mice,
		elephantShare: elephantShare,
		rng:           rand.New(rand.NewSource(seed + 2)),
	}
}

// Next returns the next frame: an elephant with probability
// elephantShare, otherwise a random currently-active mouse. The
// returned slice is shared; copy before mutating (CopyNext-style).
func (g *MixGenerator) Next() []byte {
	if g.rng.Float64() < g.elephantShare {
		return g.elephants.Next()
	}
	g.emitted++
	if g.emitted >= g.perWindow {
		// Window expires: this generation of mice dies, fresh tuples
		// become active.
		g.emitted = 0
		g.start = (g.start + g.window) % len(g.mice)
		g.churned += g.window
	}
	i := (g.start + g.rng.Intn(g.window)) % len(g.mice)
	return g.mice[i]
}

// NextBatch refills into with n frames of the mix, reusing capacity.
func (g *MixGenerator) NextBatch(into [][]byte, n int) [][]byte {
	into = into[:0]
	for i := 0; i < n; i++ {
		into = append(into, g.Next())
	}
	return into
}

// Churned returns how many short-lived flows have completed so far.
func (g *MixGenerator) Churned() int { return g.churned }

// DistinctFlows returns the total distinct 5-tuples the generator can
// emit (elephants + mouse pool).
func (g *MixGenerator) DistinctFlows() int { return g.elephants.Len() + len(g.mice) }
